package engage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"engage/internal/fault"
	"engage/internal/telemetry"
)

// chaosPartial is the quickstart OpenMRS stack — the §2 running example
// — used as the chaos-soak workload.
func chaosPartial() *Partial {
	p := NewPartial()
	p.Add("server", ParseKey("Mac-OSX 10.6")).Set("hostname", Str("demo"))
	p.Add("tomcat", ParseKey("Tomcat 6.0.18")).In("server")
	p.Add("openmrs", ParseKey("OpenMRS 1.8")).In("tomcat")
	return p
}

// checkChaosOutcome asserts the soak invariant: a deployment under
// chaos either completes with every driver active, or fails rolled
// back, leaving zero orphan processes and zero claimed ports on every
// machine.
func checkChaosOutcome(t *testing.T, sys *System, d *Deployment, err error, seed int64) {
	t.Helper()
	if err == nil {
		if d == nil || !d.Deployed() {
			t.Errorf("seed %d: deploy returned success but drivers are not all active", seed)
		}
		return
	}
	var derr *DeployError
	if !errors.As(err, &derr) {
		t.Errorf("seed %d: failure should be a structured *DeployError, got %T: %v", seed, err, err)
		return
	}
	if !derr.RolledBack {
		t.Errorf("seed %d: FailRollback deployment failed without rolling back: %v", seed, err)
	}
	if derr.RollbackErr != nil {
		t.Errorf("seed %d: rollback itself failed: %v", seed, derr.RollbackErr)
	}
	for _, name := range sys.World.Machines() {
		m, ok := sys.World.Machine(name)
		if !ok {
			continue
		}
		if procs := m.Processes(); len(procs) != 0 {
			t.Errorf("seed %d: machine %s: %d orphan process(es) after rollback", seed, name, len(procs))
		}
		if ports := m.Ports(); len(ports) != 0 {
			t.Errorf("seed %d: machine %s: orphan port claims %v after rollback", seed, name, ports)
		}
	}
}

// checkChaosTrace asserts the telemetry side of the soak invariant:
// the trace validates against the schema, records exactly the faults
// the plan injected, and — when the deployment failed — contains a
// fault-injection event for the failure's root cause, so a chaos
// failure is always explainable from its trace artifact alone.
func checkChaosTrace(t *testing.T, raw []byte, plan *FaultPlan, deployErr error, seed int64) {
	t.Helper()
	saveChaosTrace(t, raw)
	trace, err := ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Errorf("seed %d: chaos trace does not validate: %v", seed, err)
		return
	}
	faults := trace.Events("fault.inject")
	if len(faults) != plan.Injections() {
		t.Errorf("seed %d: %d fault.inject events, plan injected %d",
			seed, len(faults), plan.Injections())
	}
	if deployErr == nil {
		return
	}
	var derr *DeployError
	if errors.As(deployErr, &derr) && derr.Deadlock {
		return // no failing action; nothing to match
	}
	var ferr *fault.Error
	if !errors.As(deployErr, &ferr) {
		t.Errorf("seed %d: chaos failure does not wrap *fault.Error: %v", seed, deployErr)
		return
	}
	for _, f := range faults {
		if telemetry.FaultOp(f) == ferr.Op.String() {
			return
		}
	}
	t.Errorf("seed %d: failure cause %q has no fault.inject event in the trace",
		seed, ferr.Op)
}

// saveChaosTrace appends a seed's trace to the $ENGAGE_CHAOS_TRACE
// artifact (JSON lines concatenate cleanly), so CI can upload one
// file covering the whole sweep.
func saveChaosTrace(t *testing.T, raw []byte) {
	t.Helper()
	path := os.Getenv("ENGAGE_CHAOS_TRACE")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("chaos trace artifact: %v", err)
	}
	defer f.Close()
	if _, err := f.Write(raw); err != nil {
		t.Fatalf("chaos trace artifact: %v", err)
	}
}

// TestChaosSoakDeploy drives the OpenMRS stack through a seeded sweep
// of randomized fault schedules under the rollback policy. Every seed
// must satisfy the completes-or-rolls-back invariant; at least one seed
// in the sweep must exercise each side of it (so the test cannot
// silently degrade into all-pass or all-fail).
func TestChaosSoakDeploy(t *testing.T) {
	succeeded, rolledBack := 0, 0
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			sys, err := NewSystem()
			if err != nil {
				t.Fatal(err)
			}
			sys.OnFailure = FailRollback
			var buf bytes.Buffer
			tr := sys.StartTrace(&buf)
			plan := ChaosPlan(seed, 0.08, 0)
			sys.InjectFaults(plan)

			full, err := sys.Configure(chaosPartial())
			if err != nil {
				t.Fatal(err)
			}
			d, err := sys.Deploy(full)
			checkChaosOutcome(t, sys, d, err, seed)
			if terr := tr.Err(); terr != nil {
				t.Fatalf("seed %d: tracer error: %v", seed, terr)
			}
			checkChaosTrace(t, buf.Bytes(), plan, err, seed)
			if err == nil {
				succeeded++
			} else {
				rolledBack++
			}
		})
	}
	if succeeded == 0 || rolledBack == 0 {
		t.Errorf("sweep should exercise both outcomes: %d succeeded, %d rolled back", succeeded, rolledBack)
	}
}

// TestChaosSoakConcurrent repeats the soak with the concurrent deployer
// (one goroutine per instance) — under -race this stresses the guard
// coordination and the deadlock detector against injected failures.
func TestChaosSoakConcurrent(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			sys, err := NewSystem()
			if err != nil {
				t.Fatal(err)
			}
			sys.OnFailure = FailRollback
			var buf bytes.Buffer
			tr := sys.StartTrace(&buf)
			plan := ChaosPlan(seed, 0.08, 0)
			sys.InjectFaults(plan)

			full, err := sys.Configure(chaosPartial())
			if err != nil {
				t.Fatal(err)
			}
			d, err := sys.DeployConcurrent(full)
			checkChaosOutcome(t, sys, d, err, seed)
			if terr := tr.Err(); terr != nil {
				t.Fatalf("seed %d: tracer error: %v", seed, terr)
			}
			checkChaosTrace(t, buf.Bytes(), plan, err, seed)
		})
	}
}

// TestChaosReproducible replays one seed twice and demands the exact
// same injected-fault schedule — the property that makes chaos failures
// debuggable.
func TestChaosReproducible(t *testing.T) {
	run := func() ([]Op, error) {
		sys, err := NewSystem()
		if err != nil {
			t.Fatal(err)
		}
		sys.OnFailure = FailRollback
		plan := ChaosPlan(5, 0.1, 0)
		sys.InjectFaults(plan)
		full, err := sys.Configure(chaosPartial())
		if err != nil {
			t.Fatal(err)
		}
		_, derr := sys.Deploy(full)
		var ops []Op
		for _, ev := range plan.Events() {
			ops = append(ops, ev.Op)
		}
		return ops, derr
	}
	opsA, errA := run()
	opsB, errB := run()
	if (errA == nil) != (errB == nil) {
		t.Fatalf("same seed, different outcomes: %v vs %v", errA, errB)
	}
	if len(opsA) != len(opsB) {
		t.Fatalf("same seed, different fault counts: %d vs %d", len(opsA), len(opsB))
	}
	for i := range opsA {
		if opsA[i] != opsB[i] {
			t.Errorf("fault %d differs: %v vs %v", i, opsA[i], opsB[i])
		}
	}
}

// TestMonitorHealsCrashes closes the loop between fault injection and
// monitoring: processes crash on a virtual-time schedule, the monitor
// restarts them with backoff, and a crash-looping service is eventually
// marked degraded rather than restarted forever.
func TestMonitorHealsCrashes(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	full, err := sys.Configure(chaosPartial())
	if err != nil {
		t.Fatal(err)
	}
	d, err := sys.Deploy(full)
	if err != nil {
		t.Fatal(err)
	}
	// Only after a clean deploy, schedule every process started from now
	// on (i.e., the monitor's restarts) to crash after 30 virtual
	// seconds, and crash the running tomcat daemon to start the loop.
	sys.InjectFaults(NewFaultPlan(9).CrashAfter("", "", 30*time.Second))

	mon := sys.Monitor(d)
	if len(mon.Watched()) == 0 {
		t.Fatal("expected daemon-backed services to be watched")
	}
	drv, ok := d.Driver("tomcat")
	if !ok {
		t.Fatal("no tomcat driver")
	}
	pid, ok := drv.Ctx.PID("daemon")
	if !ok {
		t.Fatal("tomcat driver recorded no daemon PID")
	}
	if err := drv.Ctx.Machine.KillProcess(pid); err != nil {
		t.Fatal(err)
	}
	// Each restart is itself scheduled to crash, so the service
	// crash-loops until the monitor gives up and marks it degraded.
	degraded := false
	for sweep := 0; sweep < 2*mon.MaxRestarts+2 && !degraded; sweep++ {
		for _, ev := range mon.Check() {
			if ev.Degraded {
				degraded = true
			}
		}
		sys.World.Clock.Advance(31 * time.Second)
	}
	if !degraded {
		t.Error("crash-looping service should be marked degraded within the restart budget")
	}
	if got := mon.Degraded(); len(got) != 1 || got[0] != "tomcat" {
		t.Errorf("Degraded() should name tomcat, got %v", got)
	}
}
