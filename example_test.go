package engage_test

import (
	"fmt"
	"log"

	"engage"
)

// The §2 walk-through: three partial instances expand to the full
// OpenMRS stack.
func ExampleSystem_Configure() {
	sys, err := engage.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	partial := engage.NewPartial()
	partial.Add("server", engage.ParseKey("Mac-OSX 10.6"))
	partial.Add("tomcat", engage.ParseKey("Tomcat 6.0.18")).In("server")
	partial.Add("openmrs", engage.ParseKey("OpenMRS 1.8")).In("tomcat")

	full, err := sys.Configure(partial)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d instances; derived MySQL config: %s\n",
		len(full.Instances),
		full.MustFind("openmrs").Output["jdbc_url"].AsString())
	// Output:
	// 5 instances; derived MySQL config: jdbc:mysql://localhost:3306/openmrs
}

// Theorem 1's satisfying assignments, enumerated: the OpenMRS partial
// spec admits exactly two full specifications (JDK vs JRE).
func ExampleSystem_Alternatives() {
	sys, err := engage.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	partial := engage.NewPartial()
	partial.Add("server", engage.ParseKey("Mac-OSX 10.6"))
	partial.Add("tomcat", engage.ParseKey("Tomcat 6.0.18")).In("server")
	partial.Add("openmrs", engage.ParseKey("OpenMRS 1.8")).In("tomcat")

	alts, err := sys.Alternatives(partial, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(alts), "alternatives")
	// Output:
	// 2 alternatives
}

// Deploying runs driver state machines in dependency order on the
// simulated substrate.
func ExampleSystem_Deploy() {
	sys, err := engage.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	partial := engage.NewPartial()
	partial.Add("server", engage.ParseKey("Ubuntu 12.04"))
	partial.Add("redis", engage.ParseKey("Redis 2.4")).In("server")

	full, err := sys.Configure(partial)
	if err != nil {
		log.Fatal(err)
	}
	dep, err := sys.Deploy(full)
	if err != nil {
		log.Fatal(err)
	}
	st, _ := dep.StateOf("redis")
	m, _ := sys.World.Machine("server")
	fmt.Printf("redis: %s, listening on 6379: %v\n", st, m.Listening(6379))
	// Output:
	// redis: active, listening on 6379: true
}

// The Django packager extracts deployment metadata from the app's own
// files; RegisterApp generates its resource type.
func ExampleSystem_PackageApp() {
	sys, err := engage.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	arch, err := sys.PackageApp(engage.App{
		Name:    "demo",
		Version: "1.0",
		Files: map[string]string{
			"manage.py":        "#!/usr/bin/env python",
			"settings.py":      `DATABASES = {"default": {"ENGINE": "django.db.backends.sqlite3", "NAME": "demo.db"}}`,
			"requirements.txt": "Markdown==2.1\n",
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	key, err := sys.RegisterApp(arch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (db=%s, packages=%d)\n",
		key, arch.Manifest.DatabaseEngine, len(arch.Manifest.PythonPackages))
	// Output:
	// DjangoApp-demo 1.0 (db=sqlite, packages=1)
}
