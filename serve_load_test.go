package engage

// TestServeLoad is the control plane's load proof (ISSUE 8's tentpole
// acceptance): thousands of concurrent POST /v1/configure submissions
// against a resident api.Server over the bundled library, driven
// through a real HTTP server by internal/api/loadtest. It asserts the
// two architectural claims — sustained in-process throughput (≥1000
// submissions/sec, p99 reported) and the warm-session win (every warm
// response's sat.Stats delta shows strictly fewer propagations than
// every cold solve of the same body) — and persists one row to
// BENCH_serve.json next to the other BENCH_* artifacts.
//
// Set ENGAGE_SERVE_TRACE to a path to attach a tracer; CI validates the
// emitted trace with `engage trace validate`.

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"engage/internal/api"
	"engage/internal/api/loadtest"
	"engage/internal/resource"
	"engage/internal/spec"
	"engage/internal/telemetry"
)

// serveLoadBodies are the request payloads: three distinct bundled-library
// stacks, each with at least one abstract choice (Java's JDK⊕JRE), so
// every cold solve does real search for the warm path to beat.
func serveLoadBodies(t testing.TB) [][]byte {
	t.Helper()
	openmrs := &spec.Partial{}
	openmrs.Add("server", resource.MakeKey("Mac-OSX", "10.6"))
	openmrs.Add("tomcat", resource.MakeKey("Tomcat", "6.0.18")).In("server")
	openmrs.Add("openmrs", resource.MakeKey("OpenMRS", "1.8")).In("tomcat")

	jasper := &spec.Partial{}
	jasper.Add("server", resource.MakeKey("Ubuntu", "12.04"))
	jasper.Add("tomcat", resource.MakeKey("Tomcat", "6.0.18")).In("server")
	jasper.Add("jasper", resource.MakeKey("JasperReports", "4.5")).In("tomcat")

	legacy := &spec.Partial{}
	legacy.Add("server", resource.MakeKey("Ubuntu", "10.04"))
	legacy.Add("tomcat", resource.MakeKey("Tomcat", "5.5")).In("server")
	legacy.Add("openmrs", resource.MakeKey("OpenMRS", "1.8")).In("tomcat")

	var bodies [][]byte
	for _, p := range []*spec.Partial{openmrs, jasper, legacy} {
		b, err := json.Marshal(map[string]any{"partial": p})
		if err != nil {
			t.Fatal(err)
		}
		bodies = append(bodies, b)
	}
	return bodies
}

func TestServeLoad(t *testing.T) {
	var tracer *telemetry.Tracer
	if path := os.Getenv("ENGAGE_SERVE_TRACE"); path != "" {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		tracer = telemetry.New(f, nil)
	}
	srv, err := api.NewBundled(api.Options{Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}

	requests := 6000
	if testing.Short() {
		requests = 2000
	}
	res, err := loadtest.Run(loadtest.Options{
		Handler:     srv.Handler(),
		Bodies:      serveLoadBodies(t),
		Requests:    requests,
		Concurrency: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%d requests @ %d workers: %.0f req/s, p50 %.2fms p95 %.2fms p99 %.2fms, warm %d cold %d (%.1f%% warm)",
		res.Requests, res.Concurrency, res.ReqPerSec,
		float64(res.P50Ns)/1e6, float64(res.P95Ns)/1e6, float64(res.P99Ns)/1e6,
		res.WarmHits, res.Cold, 100*res.WarmHitRate)

	if res.Errors > 0 {
		t.Fatalf("%d of %d requests failed; first: %s", res.Errors, res.Requests, res.FirstError)
	}
	if res.WarmHits == 0 {
		t.Fatal("no request hit a warm session — the pool is not pooling")
	}
	// Every body must have been solved cold at least once and served
	// warm at least once, with every warm delta strictly below every
	// cold one.
	if len(res.PerSpec) != 3 {
		t.Fatalf("expected stats for 3 bodies, got %d", len(res.PerSpec))
	}
	for _, ps := range res.PerSpec {
		if ps.Cold == 0 || ps.WarmHits == 0 {
			t.Errorf("body %d: cold=%d warm=%d — need both paths exercised", ps.Body, ps.Cold, ps.WarmHits)
			continue
		}
		if ps.MinColdProps <= 0 {
			t.Errorf("body %d: cold solve reported %d propagations; the load bodies are chosen to force search",
				ps.Body, ps.MinColdProps)
		}
		if !ps.WarmStrictlyCheaper() {
			t.Errorf("body %d: warm propagations [%d,%d] not strictly below cold [%d,%d]",
				ps.Body, ps.MinWarmProps, ps.MaxWarmProps, ps.MinColdProps, ps.MaxColdProps)
		}
	}
	// The 1000 req/s acceptance floor is for the real binary; the race
	// detector's instrumentation costs roughly an order of magnitude, so
	// race builds only smoke-check that throughput stays three-digit.
	floor := 1000.0
	if raceEnabled {
		floor = 100
	}
	if res.ReqPerSec < floor {
		t.Errorf("throughput %.0f req/s below the %.0f req/s floor", res.ReqPerSec, floor)
	}

	pool := srv.PoolStats()
	if pool.Hits != int64(res.WarmHits) || pool.Misses != int64(res.Cold) {
		t.Errorf("pool accounting (hits=%d misses=%d) disagrees with responses (warm=%d cold=%d)",
			pool.Hits, pool.Misses, res.WarmHits, res.Cold)
	}

	out := struct {
		Benchmark  string          `json:"benchmark"`
		GoMaxProcs int             `json:"gomaxprocs"`
		NumCPU     int             `json:"num_cpu"`
		Short      bool            `json:"short"`
		Result     loadtest.Result `json:"result"`
	}{
		Benchmark:  "TestServeLoad",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Short:      testing.Short(),
		Result:     res,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_serve.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
