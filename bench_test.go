package engage

// Benchmark harness regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results). Absolute numbers come
// from the simulated substrate; the shapes (who wins, by what factor,
// where the crossovers fall) are the reproduction targets.
//
// Run with: go test -bench=. -benchmem

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"engage/internal/certify"
	"engage/internal/config"
	"engage/internal/constraint"
	"engage/internal/deploy"
	"engage/internal/hypergraph"
	"engage/internal/library"
	"engage/internal/machine"
	"engage/internal/packager"
	"engage/internal/pkgmgr"
	"engage/internal/rdl"
	"engage/internal/resource"
	"engage/internal/sat"
	"engage/internal/spec"
	"engage/internal/stack"
	"engage/internal/upgrade"
	"engage/internal/workload"
)

// --- helpers ---

func mustSystem(b *testing.B) *System {
	b.Helper()
	sys, err := NewSystem()
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

func openmrsPartialBench() *Partial {
	p := NewPartial()
	p.Add("server", ParseKey("Mac-OSX 10.6")).
		Set("hostname", Str("localhost")).
		Set("os_user_name", Str("root"))
	p.Add("tomcat", ParseKey("Tomcat 6.0.18")).In("server")
	p.Add("openmrs", ParseKey("OpenMRS 1.8")).In("tomcat")
	return p
}

func jasperPartialBench() *Partial {
	p := NewPartial()
	p.Add("server", ParseKey("Ubuntu 12.04"))
	p.Add("tomcat", ParseKey("Tomcat 6.0.18")).In("server")
	p.Add("jasper", ParseKey("JasperReports 4.5")).In("tomcat")
	return p
}

func appByName(b *testing.B, name string) App {
	b.Helper()
	for _, a := range TableOneApps() {
		if a.Name == name {
			return a
		}
	}
	b.Fatalf("no Table 1 app %q", name)
	return App{}
}

// --- E1: Fig. 1/Fig. 2 and the §2 numbers ---
// Paper: OpenMRS partial spec 22 lines → full spec 204 lines; the
// constraint system picks exactly one of {jdk, jre}.

func BenchmarkE1_OpenMRSConfig(b *testing.B) {
	sys := mustSystem(b)
	partial := openmrsPartialBench()
	var full *Full
	var st config.Stats
	var err error
	for i := 0; i < b.N; i++ {
		full, st, err = sys.ConfigureStats(partial)
		if err != nil {
			b.Fatal(err)
		}
	}
	pl, fl := LineCount(partial), LineCount(full)
	b.ReportMetric(float64(pl), "partial-lines")
	b.ReportMetric(float64(fl), "full-lines")
	b.ReportMetric(float64(fl)/float64(pl), "expansion-x")
	b.ReportMetric(float64(st.Clauses), "clauses")
	b.Logf("E1 row: partial=%d lines, full=%d lines (paper: 22 → 204); instances=%d; sat vars=%d clauses=%d",
		pl, fl, len(full.Instances), st.Vars, st.Clauses)
}

// --- E2: Fig. 3, the Tomcat driver state machine ---
// One iteration deploys the OpenMRS stack (driving each driver
// uninstalled→inactive→active) and shuts it down (active→inactive),
// exercising the guarded transitions exactly as Fig. 3 draws them.

func BenchmarkE2_DriverLifecycle(b *testing.B) {
	sys := mustSystem(b)
	full, err := sys.Configure(openmrsPartialBench())
	if err != nil {
		b.Fatal(err)
	}
	var elapsed time.Duration
	for i := 0; i < b.N; i++ {
		sys.World = NewWorld()
		sys.Cache = nil
		dep, err := sys.Deploy(full)
		if err != nil {
			b.Fatal(err)
		}
		elapsed = dep.Elapsed()
		if err := dep.Shutdown(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(elapsed.Seconds(), "sim-deploy-seconds")
	b.Logf("E2 row: full lifecycle (install→start→stop) of 5 drivers; simulated deploy time %v", elapsed)
}

// --- E3: Fig. 4, the subtyping rules ---
// Checks every ordered pair of library types through the ≤RT derivation.

func BenchmarkE3_Subtyping(b *testing.B) {
	reg, err := library.Registry()
	if err != nil {
		b.Fatal(err)
	}
	keys := reg.Keys()
	positives, checks := 0, 0
	for i := 0; i < b.N; i++ {
		sub := resource.NewSubtyper(reg)
		positives, checks = 0, 0
		for _, k1 := range keys {
			for _, k2 := range keys {
				checks++
				if sub.IsSubtype(k1, k2) {
					positives++
				}
			}
		}
	}
	b.ReportMetric(float64(checks), "pairs-checked")
	b.ReportMetric(float64(positives), "subtype-pairs")
	b.Logf("E3 row: %d type pairs checked, %d in the ≤RT relation", checks, positives)
}

// --- E4: Fig. 5, the generated hypergraph ---
// Paper: 6 nodes (server, tomcat, openmrs, jdk, jre, mysql), inside
// edges, two env hyperedges to {jdk, jre}, one peer edge to mysql.

func BenchmarkE4_Hypergraph(b *testing.B) {
	reg, err := library.Registry()
	if err != nil {
		b.Fatal(err)
	}
	partial := openmrsPartialBench()
	var g *hypergraph.Graph
	for i := 0; i < b.N; i++ {
		g, err = hypergraph.Generate(reg, partial)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(g.Len()), "nodes")
	b.ReportMetric(float64(len(g.Edges)), "hyperedges")
	b.Logf("E4 row: %d nodes, %d hyperedges (paper Fig. 5: 6 nodes)", g.Len(), len(g.Edges))
}

// --- E5: Table 1, the eight Django applications ---
// Every application deploys with zero app-specific deployment code.

func BenchmarkE5_DjangoApps(b *testing.B) {
	for _, app := range TableOneApps() {
		app := app
		b.Run(app.Name, func(b *testing.B) {
			var instances int
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				sys := mustSystem(b)
				sys.Cache = nil
				arch, err := sys.PackageApp(app)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sys.RegisterApp(arch); err != nil {
					b.Fatal(err)
				}
				cfg := DeployConfig{
					OS:        ParseKey("Ubuntu 12.04"),
					WebServer: ParseKey("Gunicorn 0.13"),
					Database:  ParseKey("MySQL 5.1"),
				}
				if arch.Manifest.DatabaseEngine == "sqlite" {
					cfg.Database = ParseKey("SQLite 3.7")
				}
				full, err := sys.Configure(DjangoPartial(cfg, arch.Manifest))
				if err != nil {
					b.Fatal(err)
				}
				dep, err := sys.Deploy(full)
				if err != nil {
					b.Fatal(err)
				}
				instances = len(full.Instances)
				elapsed = dep.Elapsed()
			}
			b.ReportMetric(float64(instances), "instances")
			b.ReportMetric(elapsed.Seconds(), "sim-deploy-seconds")
			b.Logf("E5 row: %-18s deployable with zero app-specific code; %d instances, %v simulated",
				app.Name, instances, elapsed)
		})
	}
}

// --- E6: §6.1 JasperReports install times ---
// Paper: 17 minutes downloading from the internet, 5 minutes from a
// local file cache (3.4x). Partial spec 26 lines → full 434 lines.

func BenchmarkE6_JasperInstall(b *testing.B) {
	run := func(b *testing.B, cache *pkgmgr.Cache) time.Duration {
		var elapsed time.Duration
		for i := 0; i < b.N; i++ {
			sys := mustSystem(b)
			sys.Cache = cache
			full, err := sys.Configure(jasperPartialBench())
			if err != nil {
				b.Fatal(err)
			}
			dep, err := sys.Deploy(full)
			if err != nil {
				b.Fatal(err)
			}
			elapsed = dep.Elapsed()
		}
		return elapsed
	}
	var cold, warm time.Duration
	b.Run("internet", func(b *testing.B) {
		cold = run(b, nil)
		b.ReportMetric(cold.Minutes(), "sim-minutes")
	})
	b.Run("local-cache", func(b *testing.B) {
		cache := pkgmgr.NewCache()
		// Warm the cache with one throwaway install.
		sys := mustSystem(b)
		sys.Cache = cache
		full, err := sys.Configure(jasperPartialBench())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Deploy(full); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		warm = run(b, cache)
		b.ReportMetric(warm.Minutes(), "sim-minutes")
	})
	sys := mustSystem(b)
	partial := jasperPartialBench()
	full, err := sys.Configure(partial)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("E6 rows: internet=%v cache=%v speedup=%.1fx (paper: 17m / 5m = 3.4x); spec %d → %d lines (paper: 26 → 434)",
		cold, warm, float64(cold)/float64(warm), LineCount(partial), LineCount(full))
}

// --- E7: §6.2's 256 distinct deployment configurations ---
// Every point of the OS × webserver × database × options × monit space
// type-checks and solves.

func BenchmarkE7_ConfigSpace(b *testing.B) {
	sys := mustSystem(b)
	arch, err := sys.PackageApp(appByName(b, "areneae"))
	if err != nil {
		b.Fatal(err)
	}
	arch.Manifest.DatabaseEngine = "" // let the solver choose
	if _, err := sys.RegisterApp(arch); err != nil {
		b.Fatal(err)
	}
	cfgs := AllConfigs()
	eng := config.New(sys.Registry)
	solved := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := cfgs[i%len(cfgs)]
		if _, err := eng.Configure(DjangoPartial(cfg, arch.Manifest)); err != nil {
			b.Fatalf("%s: %v", cfg, err)
		}
		solved++
	}
	b.ReportMetric(float64(len(cfgs)), "config-space")
	b.Logf("E7 row: %d/%d configurations sampled from the 256-point space, all solvable", solved, len(cfgs))
}

// --- E8: §6.2 WebApp production expansion ---
// Paper: partial 61 lines / 7 resources → full 1,444 lines / 29
// resources.

func BenchmarkE8_WebAppExpansion(b *testing.B) {
	sys := mustSystem(b)
	arch, err := sys.PackageApp(appByName(b, "webapp"))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sys.RegisterApp(arch); err != nil {
		b.Fatal(err)
	}
	partial := WebAppProductionPartial(arch.Manifest)
	var full *Full
	for i := 0; i < b.N; i++ {
		full, err = sys.Configure(partial)
		if err != nil {
			b.Fatal(err)
		}
	}
	pl, fl := LineCount(partial), LineCount(full)
	b.ReportMetric(float64(len(partial.Instances)), "partial-resources")
	b.ReportMetric(float64(len(full.Instances)), "full-resources")
	b.ReportMetric(float64(fl)/float64(pl), "line-expansion-x")
	b.Logf("E8 row: partial %d resources / %d lines → full %d resources / %d lines (paper: 7/61 → 29/1444)",
		len(partial.Instances), pl, len(full.Instances), fl)
}

// --- E9: §6.2 upgrades with rollback ---
// One iteration: deploy FA v1, upgrade to v2 (succeeds), then attempt a
// failing upgrade and roll back.

func BenchmarkE9_Upgrade(b *testing.B) {
	fa := appByName(b, "fa")
	var upTime time.Duration
	var rolledBack bool
	for i := 0; i < b.N; i++ {
		sys := mustSystem(b)
		archV1, err := sys.PackageApp(fa)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.RegisterApp(archV1); err != nil {
			b.Fatal(err)
		}
		faV2 := fa
		faV2.Version = "2.0"
		archV2, err := sys.PackageApp(faV2)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.RegisterApp(archV2); err != nil {
			b.Fatal(err)
		}
		cfg := DeployConfig{
			OS:        ParseKey("Ubuntu 12.04"),
			WebServer: ParseKey("Gunicorn 0.13"),
			Database:  ParseKey("MySQL 5.1"),
		}
		oldFull, err := sys.Configure(DjangoPartial(cfg, archV1.Manifest))
		if err != nil {
			b.Fatal(err)
		}
		oldDep, err := sys.Deploy(oldFull)
		if err != nil {
			b.Fatal(err)
		}
		newFull, err := sys.Configure(DjangoPartial(cfg, archV2.Manifest))
		if err != nil {
			b.Fatal(err)
		}
		newDep, res, err := sys.Upgrade(oldDep, oldFull, newFull)
		if err != nil || res.RolledBack {
			b.Fatalf("upgrade failed: %v %v", err, res.Cause)
		}
		upTime = res.Elapsed

		// Failing upgrade: squat Redis's port, upgrade to +Redis config.
		m, _ := sys.World.Machine("server")
		if _, err := m.StartProcess("squatter", "nc", 6379); err != nil {
			b.Fatal(err)
		}
		cfgR := cfg
		cfgR.Redis = true
		redisFull, err := sys.Configure(DjangoPartial(cfgR, archV2.Manifest))
		if err != nil {
			b.Fatal(err)
		}
		_, res2, err := sys.Upgrade(newDep, newFull, redisFull)
		if err != nil {
			b.Fatal(err)
		}
		rolledBack = res2.RolledBack
	}
	b.ReportMetric(upTime.Seconds(), "sim-upgrade-seconds")
	if !rolledBack {
		b.Fatal("failing upgrade must roll back")
	}
	b.Logf("E9 rows: v1→v2 upgrade preserved content in %v; injected failure rolled back to prior version", upTime)
}

// --- E10: the spec-compaction claim across all case studies ---
// "usually over an order of magnitude smaller".

func BenchmarkE10_Compaction(b *testing.B) {
	type study struct {
		name    string
		partial *Partial
	}
	sys := mustSystem(b)
	arch, err := sys.PackageApp(appByName(b, "webapp"))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sys.RegisterApp(arch); err != nil {
		b.Fatal(err)
	}
	studies := []study{
		{"openmrs", openmrsPartialBench()},
		{"jasper", jasperPartialBench()},
		{"webapp-prod", WebAppProductionPartial(arch.Manifest)},
	}
	eng := config.New(sys.Registry)
	minRatio := 1e9
	for i := 0; i < b.N; i++ {
		minRatio = 1e9
		for _, s := range studies {
			full, err := eng.Configure(s.partial)
			if err != nil {
				b.Fatal(err)
			}
			r := float64(LineCount(full)) / float64(LineCount(s.partial))
			if r < minRatio {
				minRatio = r
			}
			if i == 0 {
				b.Logf("E10 row: %-12s partial %3d lines → full %4d lines (%.1fx)",
					s.name, LineCount(s.partial), LineCount(full), r)
			}
		}
	}
	b.ReportMetric(minRatio, "min-expansion-x")
}

// --- A1: CDCL vs DPLL on generated install constraints ---
// A synthetic layered dependency graph with wide disjunctions makes the
// solving cost visible; CDCL's learning dominates as width grows.

func layeredGraph(layers, width, fanout int, seed int64) *hypergraph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := hypergraph.NewGraph()
	id := func(l, w int) string { return fmt.Sprintf("n%d_%d", l, w) }
	for l := 0; l < layers; l++ {
		for w := 0; w < width; w++ {
			g.AddNode(&hypergraph.Node{ID: id(l, w), FromSpec: l == 0 && w < 2})
		}
	}
	for l := 0; l < layers-1; l++ {
		for w := 0; w < width; w++ {
			targets := make([]string, 0, fanout)
			seen := map[int]bool{}
			for len(targets) < fanout {
				t := rng.Intn(width)
				if seen[t] {
					continue
				}
				seen[t] = true
				targets = append(targets, id(l+1, t))
			}
			g.AddEdge(hypergraph.Hyperedge{Source: id(l, w), Targets: targets})
		}
	}
	return g
}

func BenchmarkA1_SATSolvers(b *testing.B) {
	// A scaling series over graph width, the "figure" form of the
	// ablation: the CDCL/DPLL gap widens with the constraint width.
	for _, width := range []int{8, 12, 16, 20} {
		g := layeredGraph(6, width, 5, 42)
		prob := constraint.Encode(g, constraint.Pairwise)
		for _, solver := range []sat.Solver{sat.NewCDCL(), sat.NewDPLL()} {
			solver := solver
			b.Run(fmt.Sprintf("%s/width-%d", solver.Name(), width), func(b *testing.B) {
				var res sat.Result
				for i := 0; i < b.N; i++ {
					res = solver.Solve(prob.Formula)
					if res.Status != sat.Sat {
						b.Fatalf("expected SAT, got %v", res.Status)
					}
				}
				b.ReportMetric(float64(res.Stats.Decisions), "decisions")
				b.ReportMetric(float64(res.Stats.Propagations), "propagations")
			})
		}
	}
}

// BenchmarkScaling_ConfigEngine sweeps the configuration engine over
// growing application stacks (a chain of N services, each peering with
// the next), reporting end-to-end configure time per stack size — the
// engine's scalability series.
func BenchmarkScaling_ConfigEngine(b *testing.B) {
	buildRegistry := func(n int) (*resource.Registry, *Partial, error) {
		src := &bytesBuilder{}
		src.writef("abstract resource \"Server\" {}\n")
		src.writef("resource \"Box 1\" extends \"Server\" {}\n")
		for i := 0; i < n; i++ {
			src.writef("resource \"Svc%d 1\" {\n    inside \"Server\"\n", i)
			if i > 0 {
				src.writef("    input { up: string }\n")
				src.writef("    peer \"Svc%d 1\" { down%d -> up }\n", i-1, i-1)
			}
			// A per-type output name keeps the chain's types structurally
			// distinct (they are distinct services, not variants).
			src.writef("    output { down%d: string = \"svc%d\" }\n}\n", i, i)
		}
		reg, err := rdlResolve(src.String())
		if err != nil {
			return nil, nil, err
		}
		p := NewPartial()
		p.Add("box", ParseKey("Box 1"))
		p.Add("top", ParseKey(fmt.Sprintf("Svc%d 1", n-1))).In("box")
		return reg, p, nil
	}
	for _, n := range []int{10, 25, 50, 100} {
		n := n
		b.Run(fmt.Sprintf("services-%d", n), func(b *testing.B) {
			reg, p, err := buildRegistry(n)
			if err != nil {
				b.Fatal(err)
			}
			eng := config.New(reg)
			b.ResetTimer()
			var full *Full
			for i := 0; i < b.N; i++ {
				full, err = eng.Configure(p)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(full.Instances)), "instances")
		})
	}
}

type bytesBuilder struct{ s []byte }

func (b *bytesBuilder) writef(format string, args ...any) {
	b.s = append(b.s, fmt.Sprintf(format, args...)...)
}
func (b *bytesBuilder) String() string { return string(b.s) }

// --- A2: exactly-one encodings, pairwise vs ladder ---
// Clause count is quadratic vs linear in the disjunction width; solve
// times follow.

func BenchmarkA2_ExactlyOne(b *testing.B) {
	width := 48
	nodes := make([]string, width+1)
	nodes[0] = "src"
	targets := make([]string, width)
	for i := 0; i < width; i++ {
		targets[i] = fmt.Sprintf("t%d", i)
		nodes[i+1] = targets[i]
	}
	build := func() *hypergraph.Graph {
		g := hypergraph.NewGraph()
		g.AddNode(&hypergraph.Node{ID: "src", FromSpec: true})
		for _, t := range targets {
			g.AddNode(&hypergraph.Node{ID: t})
		}
		g.AddEdge(hypergraph.Hyperedge{Source: "src", Targets: targets})
		return g
	}
	for _, enc := range []constraint.Encoding{constraint.Pairwise, constraint.Ladder} {
		enc := enc
		b.Run(enc.String(), func(b *testing.B) {
			var clauses int
			solver := sat.NewCDCL()
			for i := 0; i < b.N; i++ {
				prob := constraint.Encode(build(), enc)
				clauses = len(prob.Formula.Clauses)
				if res := solver.Solve(prob.Formula); res.Status != sat.Sat {
					b.Fatal("expected SAT")
				}
			}
			b.ReportMetric(float64(clauses), "clauses")
			b.Logf("A2 row: %s encoding, width %d → %d clauses", enc, width, clauses)
		})
	}
}

// --- Incremental enumeration: warm vs cold solver sessions ---
// The tentpole measurement for the incremental layer: enumerate every
// full installation specification of a constraint system once on a warm
// incremental session (learned clauses, activity, and phases persist
// across the blocking-clause re-solves) and once on the cold baseline
// (each model costs a from-scratch solve of the grown formula). Both
// paths must produce identical model sets; the warm path must do
// measurably less propagation work.

func BenchmarkIncrementalEnumeration(b *testing.B) {
	exactlyOne := func() *hypergraph.Graph {
		width := 48
		g := hypergraph.NewGraph()
		g.AddNode(&hypergraph.Node{ID: "src", FromSpec: true})
		targets := make([]string, width)
		for i := range targets {
			targets[i] = fmt.Sprintf("t%d", i)
			g.AddNode(&hypergraph.Node{ID: targets[i]})
		}
		g.AddEdge(hypergraph.Hyperedge{Source: "src", Targets: targets})
		return g
	}
	cases := []struct {
		name  string
		enc   constraint.Encoding
		build func() *hypergraph.Graph
	}{
		{"exactly-one-48/pairwise", constraint.Pairwise, exactlyOne},
		{"exactly-one-48/ladder", constraint.Ladder, exactlyOne},
		{"layered-3x6/pairwise", constraint.Pairwise, func() *hypergraph.Graph {
			return layeredGraph(3, 6, 2, 7)
		}},
	}
	modelSet := func(models [][]bool, project []int) map[string]bool {
		set := make(map[string]bool, len(models))
		for _, m := range models {
			key := make([]byte, len(project))
			for i, v := range project {
				if m[v] {
					key[i] = '1'
				} else {
					key[i] = '0'
				}
			}
			set[string(key)] = true
		}
		return set
	}
	for _, tc := range cases {
		tc := tc
		prob := constraint.Encode(tc.build(), tc.enc)
		// Project onto instance variables only; the ladder encoding's
		// auxiliaries must not multiply solutions.
		project := make([]int, 0, prob.Formula.NumVars)
		for v := 1; v < len(prob.IDOf); v++ {
			if prob.IDOf[v] != "" {
				project = append(project, v)
			}
		}
		var warmSet, coldSet map[string]bool
		b.Run(tc.name+"/warm", func(b *testing.B) {
			var st sat.Stats
			var models [][]bool
			for i := 0; i < b.N; i++ {
				models, st = sat.EnumerateModelsStats(sat.NewCDCL(), prob.Formula, project, 0)
			}
			warmSet = modelSet(models, project)
			b.ReportMetric(float64(len(models)), "models")
			b.ReportMetric(float64(st.Propagations), "propagations")
		})
		b.Run(tc.name+"/cold", func(b *testing.B) {
			var st sat.Stats
			var models [][]bool
			for i := 0; i < b.N; i++ {
				models, st = sat.EnumerateModelsCold(sat.NewCDCL(), prob.Formula, project, 0)
			}
			coldSet = modelSet(models, project)
			b.ReportMetric(float64(len(models)), "models")
			b.ReportMetric(float64(st.Propagations), "propagations")
		})
		if len(warmSet) == 0 || len(coldSet) != len(warmSet) {
			b.Fatalf("%s: warm and cold model sets differ in size: %d vs %d",
				tc.name, len(warmSet), len(coldSet))
		}
		for k := range warmSet {
			if !coldSet[k] {
				b.Fatalf("%s: warm model %s missing from cold enumeration", tc.name, k)
			}
		}
	}
}

// --- A3: parallel vs serial deployment ---
// Virtual-time parallel deployment approaches the dependency critical
// path; serial pays the sum of all action durations.

func BenchmarkA3_ParallelDeploy(b *testing.B) {
	sys := mustSystem(b)
	arch, err := sys.PackageApp(appByName(b, "webapp"))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sys.RegisterApp(arch); err != nil {
		b.Fatal(err)
	}
	cfg := DeployConfig{
		OS:        ParseKey("Ubuntu 12.04"),
		WebServer: ParseKey("Gunicorn 0.13"),
		Database:  ParseKey("MySQL 5.1"),
		Celery:    true, Redis: true, Memcached: true, Monit: true,
	}
	full, err := sys.Configure(DjangoPartial(cfg, arch.Manifest))
	if err != nil {
		b.Fatal(err)
	}
	var serial, parallel time.Duration
	for _, par := range []bool{false, true} {
		par := par
		name := "serial"
		if par {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				sys.World = NewWorld()
				sys.Cache = nil
				sys.Parallel = par
				dep, err := sys.Deploy(full)
				if err != nil {
					b.Fatal(err)
				}
				elapsed = dep.Elapsed()
			}
			b.ReportMetric(elapsed.Seconds(), "sim-seconds")
			if par {
				parallel = elapsed
			} else {
				serial = elapsed
			}
		})
	}
	if serial > 0 && parallel > 0 {
		b.Logf("A3 rows: serial=%v parallel=%v speedup=%.2fx", serial, parallel,
			float64(serial)/float64(parallel))
	}
}

// --- A4: multi-host master/slave vs flattened single sequence ---

func BenchmarkA4_MultiHost(b *testing.B) {
	sys := mustSystem(b)
	arch, err := sys.PackageApp(appByName(b, "webapp"))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sys.RegisterApp(arch); err != nil {
		b.Fatal(err)
	}
	full, err := sys.Configure(WebAppProductionPartial(arch.Manifest))
	if err != nil {
		b.Fatal(err)
	}
	var flat, coordinated time.Duration
	b.Run("single-sequence", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys.World = NewWorld()
			sys.Cache = nil
			sys.Parallel = false
			dep, err := sys.Deploy(full)
			if err != nil {
				b.Fatal(err)
			}
			flat = dep.Elapsed()
		}
		b.ReportMetric(flat.Seconds(), "sim-seconds")
	})
	b.Run("master-slave-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys.World = NewWorld()
			sys.Cache = nil
			sys.Parallel = true
			mh, err := sys.DeployMultiHost(full)
			if err != nil {
				b.Fatal(err)
			}
			coordinated = mh.Elapsed()
		}
		b.ReportMetric(coordinated.Seconds(), "sim-seconds")
	})
	if flat > 0 && coordinated > 0 {
		b.Logf("A4 rows: single-sequence=%v master/slave(parallel)=%v speedup=%.2fx",
			flat, coordinated, float64(flat)/float64(coordinated))
	}
}

// --- A5: full-redeploy vs incremental upgrade (the paper's future work) ---
// Only the application changes between versions; the incremental
// strategy leaves the database, web server, and runtimes running.

func BenchmarkA5_UpgradeStrategies(b *testing.B) {
	prepare := func(b *testing.B) (*System, *Deployment, *Full, *Full) {
		b.Helper()
		sys := mustSystem(b)
		sys.Cache = nil
		fa := appByName(b, "fa")
		archV1, err := sys.PackageApp(fa)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.RegisterApp(archV1); err != nil {
			b.Fatal(err)
		}
		faV2 := fa
		faV2.Version = "2.0"
		archV2, err := sys.PackageApp(faV2)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.RegisterApp(archV2); err != nil {
			b.Fatal(err)
		}
		cfg := DeployConfig{
			OS:        ParseKey("Ubuntu 12.04"),
			WebServer: ParseKey("Gunicorn 0.13"),
			Database:  ParseKey("MySQL 5.1"),
			Memcached: true, Monit: true,
		}
		oldFull, err := sys.Configure(DjangoPartial(cfg, archV1.Manifest))
		if err != nil {
			b.Fatal(err)
		}
		newFull, err := sys.Configure(DjangoPartial(cfg, archV2.Manifest))
		if err != nil {
			b.Fatal(err)
		}
		oldDep, err := sys.Deploy(oldFull)
		if err != nil {
			b.Fatal(err)
		}
		return sys, oldDep, oldFull, newFull
	}

	var fullTime, incrTime time.Duration
	b.Run("full-redeploy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys, oldDep, oldFull, newFull := prepare(b)
			_, res, err := sys.Upgrade(oldDep, oldFull, newFull)
			if err != nil || res.RolledBack {
				b.Fatalf("upgrade failed: %v %v", err, res.Cause)
			}
			fullTime = res.Elapsed
		}
		b.ReportMetric(fullTime.Seconds(), "sim-seconds")
	})
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys, oldDep, oldFull, newFull := prepare(b)
			_, res, err := sys.UpgradeIncremental(oldDep, oldFull, newFull)
			if err != nil || res.RolledBack {
				b.Fatalf("upgrade failed: %v %v", err, res.Cause)
			}
			incrTime = res.Elapsed
		}
		b.ReportMetric(incrTime.Seconds(), "sim-seconds")
	})
	if fullTime > 0 && incrTime > 0 {
		b.Logf("A5 rows: full-redeploy=%v incremental=%v speedup=%.1fx (paper: 'all upgrades experience the worst case upgrade time' — fixed)",
			fullTime, incrTime, float64(fullTime)/float64(incrTime))
	}
}

// --- sanity: virtual time and specs referenced above stay consistent ---

func BenchmarkSpecRenderThroughput(b *testing.B) {
	sys := mustSystem(b)
	full, err := sys.Configure(openmrsPartialBench())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spec.Render(full); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = machine.NewWorld // keep import for helper use in future benches
var _ = upgrade.Compute
var _ = packager.Validate

// rdlResolve parses one RDL source into a registry (bench helper).
func rdlResolve(src string) (*resource.Registry, error) {
	return rdl.ParseAndResolve(map[string]string{"bench.rdl": src})
}

// --- Scale: synthetic fleets through the whole parallel pipeline ---
// Sweeps fleet size × worker count over the full pipeline — hypergraph
// generation + constraint emission (front), portfolio SAT (solve),
// port propagation (propagate, a slice of build), spec build (build),
// deployment preparation + concurrent deploy (deploy), and the true
// end-to-end wall (e2e) — on seeded synthetic fleets from
// internal/workload, and writes per-stage rows to BENCH_scale.json so
// the perf trajectory has a checked-in baseline. Parallelism 0 is the
// sequential reference path; ≥ 1 is the parallel pipeline, whose
// output the differential suites (internal/workload) prove
// byte-identical across widths. The big fleets (fleet2000, fleet5000)
// skip -short runs and the quadratic sequential reference: their
// speedups are reported against P=1.

// --- Health: probe overhead on the monitor sweep ---
// The health subsystem's cost model: one monitor sweep over fleet570
// with 0 (baseline: no health blocks declared), 1, and 4 probes per
// instance. Probes read the simulated world's tables, so the measured
// wall time is pure scheduler + state-machine overhead — the number the
// EXPERIMENTS.md probe-overhead table records.

func BenchmarkHealthProbeOverhead(b *testing.B) {
	shape := workload.Spec{Seed: 1, Families: 28, Versions: 5,
		EnvFanout: 3, PeerFanout: 2, Machines: 24, Instances: 6} // fleet570
	for _, probes := range []int{0, 1, 4} {
		probes := probes
		b.Run(fmt.Sprintf("probes-%d", probes), func(b *testing.B) {
			sp := shape
			sp.Probes = probes
			reg, partial, err := workload.Generate(sp)
			if err != nil {
				b.Fatal(err)
			}
			ctl := &stack.Controller{Options: deploy.Options{
				Registry:         reg,
				Drivers:          deploy.NewDriverRegistry(),
				World:            machine.NewWorld(),
				Index:            pkgmgr.NewIndex(),
				Parallelism:      4,
				ProvisionMissing: true,
			}}
			a, err := ctl.Apply("bench", partial)
			if err != nil {
				b.Fatal(err)
			}
			clock := ctl.Options.World.Clock
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				clock.Advance(30 * time.Second)
				a.Monitor.Check()
			}
			b.ReportMetric(float64(len(a.Health.Tracked())), "probed-instances")
		})
	}
}

// BenchmarkProofOverhead prices DRAT-style proof logging on the fleet
// ladder's solve stage: the same CDCL search with and without a proof
// sink. The acceptance bar is proof-on solve wall ≤ 2× proof-off at
// fleet570 (EXPERIMENTS.md "Certified solving").
func BenchmarkProofOverhead(b *testing.B) {
	for _, sh := range workload.FleetShapes() {
		sh := sh
		if sh.Big {
			continue
		}
		b.Run(sh.Name, func(b *testing.B) {
			reg, partial, err := workload.Generate(sh.Spec)
			if err != nil {
				b.Fatal(err)
			}
			g, err := hypergraph.GenerateOpts(reg, partial, hypergraph.Options{Parallelism: 4})
			if err != nil {
				b.Fatal(err)
			}
			prob := constraint.EncodeParallel(g, constraint.Pairwise, 4)
			for _, logProof := range []bool{false, true} {
				name := "proof-off"
				if logProof {
					name = "proof-on"
				}
				b.Run(name, func(b *testing.B) {
					b.ReportAllocs()
					var res sat.Result
					for i := 0; i < b.N; i++ {
						res = (&sat.CDCL{LogProof: logProof}).Solve(prob.Formula)
						if res.Status != sat.Sat {
							b.Fatalf("expected SAT, got %v", res.Status)
						}
					}
					// SAT results carry a model, not a proof; the
					// logged-step count still prices the bookkeeping.
					if logProof {
						b.ReportMetric(float64(res.Stats.ProofSteps), "proof-steps")
					}
				})
			}
			// The checker's side of the ledger: certifying the model by
			// direct clause evaluation.
			b.Run("check-model", func(b *testing.B) {
				res := sat.NewCDCL().Solve(prob.Formula)
				if res.Status != sat.Sat {
					b.Fatalf("expected SAT, got %v", res.Status)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := certify.CheckModel(prob.Formula, res.Model); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}

	// A conflict-heavy control: random 3-CNF at the phase transition,
	// where nearly every step is a learned clause. This is the honest
	// upper bound — fleet encodings learn a few dozen clauses, this
	// learns thousands.
	b.Run("hard3sat", func(b *testing.B) {
		rng := rand.New(rand.NewSource(7))
		n, m := 140, 616 // ratio 4.4, UNSAT for this seed
		f := sat.NewFormula(n)
		for i := 0; i < m; i++ {
			vs := rng.Perm(n)[:3]
			cl := make([]sat.Lit, 3)
			for j, v := range vs {
				cl[j] = sat.Lit(v + 1)
				if rng.Intn(2) == 0 {
					cl[j] = -cl[j]
				}
			}
			f.Add(cl...)
		}
		for _, logProof := range []bool{false, true} {
			name := "proof-off"
			if logProof {
				name = "proof-on"
			}
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				var res sat.Result
				for i := 0; i < b.N; i++ {
					res = (&sat.CDCL{LogProof: logProof}).Solve(f)
					if res.Status != sat.Unsat {
						b.Fatalf("expected UNSAT, got %v", res.Status)
					}
				}
				if logProof {
					b.ReportMetric(float64(res.Stats.ProofSteps), "proof-steps")
				}
			})
		}
		// The checker's side: full RUP replay of the UNSAT proof.
		b.Run("check-proof", func(b *testing.B) {
			res := (&sat.CDCL{LogProof: true}).Solve(f)
			if res.Status != sat.Unsat {
				b.Fatalf("expected UNSAT, got %v", res.Status)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := certify.CheckUnsat(f, res.Proof); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

func BenchmarkScaleFleet(b *testing.B) {
	parallelisms := []int{0, 1, 2, 4, 8}
	bigParallelisms := []int{1, 8}
	stages := []string{"front", "solve", "propagate", "build", "deploy", "e2e"}

	type row struct {
		Fleet         string  `json:"fleet"`
		Shape         string  `json:"shape"`
		Stage         string  `json:"stage"`
		Parallelism   int     `json:"parallelism"`
		NsPerOp       float64 `json:"ns_per_op"`
		GraphNodes    int     `json:"graph_nodes"`
		GraphEdges    int     `json:"graph_edges"`
		Clauses       int     `json:"clauses"`
		FullInstances int     `json:"full_instances"`
		SpeedupVsSeq  float64 `json:"speedup_vs_seq"`
	}
	// b.Run invokes each sub-benchmark more than once while
	// calibrating b.N; key rows by fleet/stage/parallelism so the final
	// run wins.
	rowByName := make(map[string]row)
	var order []string

	for _, sh := range workload.FleetShapes() {
		sh := sh
		if sh.Big && testing.Short() {
			continue
		}
		// The fleet group exists so -bench filters skip unselected
		// fleets entirely: generation and shape metadata for a big
		// fleet cost tens of seconds, paid only when a sub-bench runs.
		b.Run(sh.Name, func(b *testing.B) {
			reg, partial, err := workload.Generate(sh.Spec)
			if err != nil {
				b.Fatal(err)
			}
			// Shape metadata, measured once outside the timed loops
			// (through the parallel path: the sequential front half is
			// quadratic and the differential suites prove the outputs
			// identical).
			g, err := hypergraph.GenerateOpts(reg, partial, hypergraph.Options{Parallelism: 4})
			if err != nil {
				b.Fatal(err)
			}
			prob := constraint.EncodeParallel(g, constraint.Pairwise, 4)
			eMeta := config.New(reg)
			eMeta.Parallelism = 4
			fullMeta, err := eMeta.Configure(partial)
			if err != nil {
				b.Fatal(err)
			}

			pars := parallelisms
			if sh.Big {
				pars = bigParallelisms
			}
			for _, par := range pars {
				par := par
				b.Run(fmt.Sprintf("p%d", par), func(b *testing.B) {
					b.ReportAllocs()
					var front, solve, prop, build, dep, e2e time.Duration
					for i := 0; i < b.N; i++ {
						start := time.Now()
						e := config.New(reg)
						e.Parallelism = par
						full, st, err := e.ConfigureStats(partial)
						if err != nil {
							b.Fatal(err)
						}
						if len(full.Instances) != len(fullMeta.Instances) {
							b.Fatalf("output drifted: %d instances, want %d",
								len(full.Instances), len(fullMeta.Instances))
						}
						dstart := time.Now()
						d, err := deploy.New(full, deploy.Options{
							Registry:         reg,
							Drivers:          deploy.NewDriverRegistry(),
							World:            machine.NewWorld(),
							Index:            pkgmgr.NewIndex(),
							Parallelism:      par,
							ProvisionMissing: true,
						})
						if err != nil {
							b.Fatal(err)
						}
						if err := d.DeployConcurrent(); err != nil {
							b.Fatal(err)
						}
						front += st.GraphWall + st.EncodeWall
						solve += st.SolveWall
						prop += st.PropagateWall
						build += st.BuildWall
						dep += time.Since(dstart)
						e2e += time.Since(start)
					}
					b.ReportMetric(float64(len(fullMeta.Instances)), "instances")
					perOp := func(d time.Duration) float64 {
						return float64(d.Nanoseconds()) / float64(b.N)
					}
					stageNs := map[string]float64{
						"front": perOp(front), "solve": perOp(solve),
						"propagate": perOp(prop), "build": perOp(build),
						"deploy": perOp(dep), "e2e": perOp(e2e),
					}
					for _, stg := range stages {
						key := fmt.Sprintf("%s/%s/p%d", sh.Name, stg, par)
						if _, seen := rowByName[key]; !seen {
							order = append(order, key)
						}
						rowByName[key] = row{
							Fleet:         sh.Name,
							Shape:         sh.Spec.String(),
							Stage:         stg,
							Parallelism:   par,
							NsPerOp:       stageNs[stg],
							GraphNodes:    g.Len(),
							GraphEdges:    len(g.Edges),
							Clauses:       len(prob.Formula.Clauses),
							FullInstances: len(fullMeta.Instances),
						}
					}
				})
			}
		})
	}

	// Fill speedups against each fleet+stage's sequential row (P=0, or
	// P=1 for big fleets that skip the sequential reference) and
	// persist.
	rows := make([]row, 0, len(order))
	for _, name := range order {
		rows = append(rows, rowByName[name])
	}
	baseNs := make(map[string]float64)
	for _, r := range rows {
		key := r.Fleet + "/" + r.Stage
		if r.Parallelism == 0 {
			baseNs[key] = r.NsPerOp
		} else if r.Parallelism == 1 {
			if _, ok := baseNs[key]; !ok {
				baseNs[key] = r.NsPerOp
			}
		}
	}
	for i := range rows {
		if base := baseNs[rows[i].Fleet+"/"+rows[i].Stage]; base > 0 && rows[i].NsPerOp > 0 {
			rows[i].SpeedupVsSeq = base / rows[i].NsPerOp
		}
	}
	if len(rows) == 0 {
		return
	}
	out := struct {
		Benchmark  string `json:"benchmark"`
		Stage      string `json:"stage"`
		GoMaxProcs int    `json:"gomaxprocs"`
		NumCPU     int    `json:"num_cpu"`
		Rows       []row  `json:"rows"`
	}{
		Benchmark:  "BenchmarkScaleFleet",
		Stage:      "full pipeline: front (graph+encode), solve (portfolio), propagate, build, deploy, e2e",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Rows:       rows,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_scale.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
