package engage

import (
	"testing"
)

func TestProvisionPartialFillsHostDetails(t *testing.T) {
	sys := newSys(t)
	provider, err := sys.NewProvider("rackspace")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPartial()
	p.Add("web1", ParseKey("Ubuntu 12.04")) // no config details → provision
	p.Add("db1", ParseKey("Ubuntu 12.04")).
		Set("hostname", Str("db.example.com")) // configured → leave alone
	p.Add("mysql", ParseKey("MySQL 5.1")).In("db1")

	ids, err := sys.ProvisionPartial(p, provider)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "web1" {
		t.Fatalf("provisioned = %v", ids)
	}
	web1, _ := p.Find("web1")
	if web1.Config["hostname"].Str != "web1" {
		t.Errorf("hostname not merged: %v", web1.Config)
	}
	if web1.Config["ip"].Str == "" {
		t.Error("ip not merged")
	}
	if _, ok := sys.World.Machine("web1"); !ok {
		t.Error("node should exist in the world")
	}
	// The provisioned spec configures and deploys.
	full, err := sys.Configure(p)
	if err != nil {
		t.Fatal(err)
	}
	srv := full.MustFind("web1")
	host, _ := srv.Output["host"].Field("hostname")
	if host.Str != "web1" {
		t.Errorf("host output = %v", srv.Output["host"])
	}
	if _, err := sys.Deploy(full); err != nil {
		t.Fatal(err)
	}
}

func TestProvisionPartialIdempotent(t *testing.T) {
	sys := newSys(t)
	provider, err := sys.NewProvider("aws")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPartial()
	p.Add("node", ParseKey("Mac-OSX 10.7"))
	if _, err := sys.ProvisionPartial(p, provider); err != nil {
		t.Fatal(err)
	}
	// Second pass: hostname now set, nothing to do.
	ids, err := sys.ProvisionPartial(p, provider)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Errorf("second pass should provision nothing: %v", ids)
	}
}

func TestProvisionPartialUnknownType(t *testing.T) {
	sys := newSys(t)
	provider, _ := sys.NewProvider("aws")
	p := NewPartial()
	p.Add("x", ParseKey("Mystery 9"))
	if _, err := sys.ProvisionPartial(p, provider); err == nil {
		t.Error("unknown type should error")
	}
}

func TestDiscover(t *testing.T) {
	sys := newSys(t)
	if _, err := sys.World.AddMachine("lab-3", "ubuntu-10.04"); err != nil {
		t.Fatal(err)
	}
	p := NewPartial()
	inst, err := sys.Discover(p, "server", "lab-3")
	if err != nil {
		t.Fatal(err)
	}
	if inst.Key.String() != "Ubuntu 10.04" {
		t.Errorf("discovered key = %v", inst.Key)
	}
	if inst.Config["hostname"].Str != "lab-3" || inst.Config["ip"].Str == "" {
		t.Errorf("discovered config = %v", inst.Config)
	}
	// The discovered instance anchors a deployable spec.
	p.Add("redis", ParseKey("Redis 2.4")).In("server")
	full, err := sys.Configure(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Deploy(full); err != nil {
		t.Fatal(err)
	}
}

func TestDiscoverErrors(t *testing.T) {
	sys := newSys(t)
	p := NewPartial()
	if _, err := sys.Discover(p, "x", "ghost"); err == nil {
		t.Error("unknown machine should error")
	}
	if _, err := sys.World.AddMachine("weird", "plan9"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Discover(p, "x", "weird"); err == nil {
		t.Error("unmatchable OS should error")
	}
}
