//go:build race

package engage

// raceEnabled reports whether this test binary was built with the race
// detector; perf floors scale down under its instrumentation overhead.
const raceEnabled = true
