package engage

import (
	"strings"
	"testing"
)

func newSys(t *testing.T) *System {
	t.Helper()
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestQuickstartFlow(t *testing.T) {
	sys := newSys(t)
	if err := sys.Check(); err != nil {
		t.Fatal(err)
	}
	p := NewPartial()
	p.Add("server", ParseKey("Mac-OSX 10.6")).Set("hostname", Str("demo"))
	p.Add("tomcat", ParseKey("Tomcat 6.0.18")).In("server")
	p.Add("openmrs", ParseKey("OpenMRS 1.8")).In("tomcat")

	full, err := sys.Configure(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckSpec(full); err != nil {
		t.Fatal(err)
	}
	if LineCount(full) <= LineCount(p) {
		t.Error("full spec should be larger than partial")
	}
	d, err := sys.Deploy(full)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Deployed() {
		t.Error("deployment incomplete")
	}
	mon := sys.Monitor(d)
	if len(mon.Watched()) == 0 {
		t.Error("monitor should auto-register daemons")
	}
	if err := d.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

func TestSystemFromRDL(t *testing.T) {
	src := `
abstract resource "Server" {}
resource "Box 1" extends "Server" {}
resource "Thing 1" { inside "Server" }`
	sys, err := NewSystemFromRDL(map[string]string{"x.rdl": src})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPartial()
	p.Add("box", ParseKey("Box 1"))
	p.Add("thing", ParseKey("Thing 1")).In("box")
	full, err := sys.Configure(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Deploy(full); err != nil {
		t.Fatal(err)
	}
}

func TestSystemFromBadRDL(t *testing.T) {
	if _, err := NewSystemFromRDL(map[string]string{"x.rdl": `resource {`}); err == nil {
		t.Error("parse error should propagate")
	}
	// Well-formedness failures propagate too.
	if _, err := NewSystemFromRDL(map[string]string{"x.rdl": `resource "A 1" { inside "Ghost" }`}); err == nil {
		t.Error("typecheck error should propagate")
	}
}

func TestPackageAndDeployApp(t *testing.T) {
	sys := newSys(t)
	apps := TableOneApps()
	arch, err := sys.PackageApp(apps[0]) // areneae
	if err != nil {
		t.Fatal(err)
	}
	key, err := sys.RegisterApp(arch)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(key.Name, "DjangoApp-") {
		t.Errorf("app key = %v", key)
	}
	cfg := DeployConfig{
		OS:        ParseKey("Ubuntu 12.04"),
		WebServer: ParseKey("Gunicorn 0.13"),
		Database:  ParseKey("SQLite 3.7"),
	}
	full, err := sys.Configure(DjangoPartial(cfg, arch.Manifest))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Deploy(full); err != nil {
		t.Fatal(err)
	}
}

func TestProviders(t *testing.T) {
	sys := newSys(t)
	for _, kind := range []string{"rackspace", "aws"} {
		p, err := sys.NewProvider(kind)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Provision("node-"+kind, "ubuntu-12.04"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.NewProvider("azure"); err == nil {
		t.Error("unknown provider should error")
	}
}

func TestSolverAndEncodingFactories(t *testing.T) {
	for _, name := range []string{"cdcl", "dpll"} {
		if _, err := SolverFor(name); err != nil {
			t.Error(err)
		}
	}
	if _, err := SolverFor("z3"); err == nil {
		t.Error("unknown solver should error")
	}
	for _, name := range []string{"pairwise", "ladder"} {
		if _, err := EncodingFor(name); err != nil {
			t.Error(err)
		}
	}
	if _, err := EncodingFor("tree"); err == nil {
		t.Error("unknown encoding should error")
	}
}

func TestAllConfigsExposed(t *testing.T) {
	if len(AllConfigs()) != 256 {
		t.Error("256 configurations expected")
	}
}

func TestMultiHostViaFacade(t *testing.T) {
	sys := newSys(t)
	var webapp App
	for _, a := range TableOneApps() {
		if a.Name == "webapp" {
			webapp = a
		}
	}
	arch, err := sys.PackageApp(webapp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RegisterApp(arch); err != nil {
		t.Fatal(err)
	}
	full, err := sys.Configure(WebAppProductionPartial(arch.Manifest))
	if err != nil {
		t.Fatal(err)
	}
	mh, err := sys.DeployMultiHost(full)
	if err != nil {
		t.Fatal(err)
	}
	if !mh.Deployed() {
		t.Error("multi-host deployment incomplete")
	}
}

func TestUpgradeViaFacade(t *testing.T) {
	sys := newSys(t)
	var fa App
	for _, a := range TableOneApps() {
		if a.Name == "fa" {
			fa = a
		}
	}
	archV1, err := sys.PackageApp(fa)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RegisterApp(archV1); err != nil {
		t.Fatal(err)
	}
	faV2 := fa
	faV2.Version = "2.0"
	archV2, err := sys.PackageApp(faV2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RegisterApp(archV2); err != nil {
		t.Fatal(err)
	}

	cfg := DeployConfig{
		OS:        ParseKey("Ubuntu 12.04"),
		WebServer: ParseKey("Gunicorn 0.13"),
		Database:  ParseKey("MySQL 5.1"),
	}
	oldFull, err := sys.Configure(DjangoPartial(cfg, archV1.Manifest))
	if err != nil {
		t.Fatal(err)
	}
	old, err := sys.Deploy(oldFull)
	if err != nil {
		t.Fatal(err)
	}
	newFull, err := sys.Configure(DjangoPartial(cfg, archV2.Manifest))
	if err != nil {
		t.Fatal(err)
	}
	next, res, err := sys.Upgrade(old, oldFull, newFull)
	if err != nil {
		t.Fatal(err)
	}
	if res.RolledBack {
		t.Fatalf("unexpected rollback: %v", res.Cause)
	}
	if !next.Deployed() {
		t.Error("upgraded system should be running")
	}
	if len(res.Diff.Changed) == 0 {
		t.Errorf("diff should mark the app changed: %+v", res.Diff)
	}
}

func TestFacadeCoverageSweep(t *testing.T) {
	sys := newSys(t)
	if MakeKey("Redis", "2.4") != ParseKey("Redis 2.4") {
		t.Error("MakeKey/ParseKey disagree")
	}
	if NewWorld() == nil {
		t.Error("NewWorld nil")
	}

	p := NewPartial()
	p.Add("server", ParseKey("Ubuntu 12.04"))
	p.Add("redis", ParseKey("Redis 2.4")).In("server")

	full, st, err := sys.ConfigureStats(p)
	if err != nil || st.GraphNodes == 0 {
		t.Fatalf("ConfigureStats: %v %+v", err, st)
	}
	if _, err := Render(full); err != nil {
		t.Fatal(err)
	}
	minimal, err := sys.ConfigureMinimal(p)
	if err != nil || len(minimal.Instances) != 2 {
		t.Fatalf("ConfigureMinimal: %v, %d instances", err, len(minimal.Instances))
	}

	dep, err := sys.DeployConcurrent(full)
	if err != nil {
		t.Fatal(err)
	}
	if !dep.Deployed() {
		t.Error("concurrent deploy incomplete")
	}
}

func TestFacadeUpgradeIncremental(t *testing.T) {
	sys := newSys(t)
	apps := TableOneApps()
	archV1, err := sys.PackageApp(apps[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RegisterApp(archV1); err != nil {
		t.Fatal(err)
	}
	v2 := apps[0]
	v2.Version = "2.0"
	archV2, err := sys.PackageApp(v2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RegisterApp(archV2); err != nil {
		t.Fatal(err)
	}
	cfg := DeployConfig{
		OS:        ParseKey("Ubuntu 12.04"),
		WebServer: ParseKey("Gunicorn 0.13"),
		Database:  ParseKey("SQLite 3.7"),
	}
	oldFull, err := sys.Configure(DjangoPartial(cfg, archV1.Manifest))
	if err != nil {
		t.Fatal(err)
	}
	old, err := sys.Deploy(oldFull)
	if err != nil {
		t.Fatal(err)
	}
	newFull, err := sys.Configure(DjangoPartial(cfg, archV2.Manifest))
	if err != nil {
		t.Fatal(err)
	}
	next, res, err := sys.UpgradeIncremental(old, oldFull, newFull)
	if err != nil || res.RolledBack {
		t.Fatalf("incremental upgrade: %v %+v", err, res)
	}
	if !next.Deployed() {
		t.Error("upgraded system down")
	}
	// Untouched services kept running through the upgrade.
	if len(res.Diff.Kept) == 0 {
		t.Error("expected kept instances")
	}
}

func TestFacadeErrorPaths(t *testing.T) {
	sys := newSys(t)
	bad := NewPartial()
	bad.Add("x", ParseKey("Mystery 1"))
	if _, err := sys.Configure(bad); err == nil {
		t.Error("Configure should fail on unknown type")
	}
	if _, err := sys.Deploy(&Full{Instances: nil}); err != nil {
		t.Errorf("empty spec should deploy trivially: %v", err)
	}
	if _, err := sys.DeployConcurrent(&Full{}); err != nil {
		t.Errorf("empty concurrent deploy: %v", err)
	}
	if _, err := sys.RegisterApp(Archive{}); err == nil {
		t.Error("empty archive should fail registration")
	}
}
