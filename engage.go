// Package engage is a Go implementation of Engage, the deployment
// management system of Fischer, Majumdar, and Esmaeilsabzali (PLDI
// 2012). Engage configures, installs, and manages complex application
// stacks from three ingredients:
//
//   - a declarative resource definition language (RDL) describing
//     component metadata — configuration ports and inside / environment
//     / peer dependencies — with abstraction and subtyping;
//   - a constraint-based configuration engine that expands a partial
//     installation specification into a full one by hypergraph
//     generation, Boolean constraint solving (a built-in CDCL SAT
//     solver), and topological port propagation;
//   - a runtime that deploys the resulting specification by driving
//     per-resource lifecycle state machines in dependency order, with
//     monitoring, multi-host coordination, and upgrade/rollback.
//
// This package is the public facade; it wires the engine to the bundled
// resource library and a simulated machine/cloud substrate. A System
// owns the moving parts:
//
//	sys, _ := engage.NewSystem()
//	partial := engage.NewPartial()
//	partial.Add("server", engage.ParseKey("Mac-OSX 10.6"))
//	partial.Add("tomcat", engage.ParseKey("Tomcat 6.0.18")).In("server")
//	partial.Add("openmrs", engage.ParseKey("OpenMRS 1.8")).In("tomcat")
//	full, _ := sys.Configure(partial)
//	dep, _ := sys.Deploy(full)
package engage

import (
	"fmt"
	"io"
	"time"

	"engage/internal/cloud"
	"engage/internal/config"
	"engage/internal/constraint"
	"engage/internal/deploy"
	"engage/internal/fault"
	"engage/internal/library"
	"engage/internal/machine"
	"engage/internal/monitor"
	"engage/internal/packager"
	"engage/internal/pkgmgr"
	"engage/internal/rdl"
	"engage/internal/resource"
	"engage/internal/sat"
	"engage/internal/spec"
	"engage/internal/stack"
	"engage/internal/telemetry"
	"engage/internal/typecheck"
	"engage/internal/upgrade"
)

// Re-exported core types, so typical callers need only this package.
type (
	// Key identifies a resource type ("Tomcat 6.0.18").
	Key = resource.Key
	// Value is a configuration value carried on a port.
	Value = resource.Value
	// Registry holds resource types.
	Registry = resource.Registry
	// Partial is a partial installation specification (Fig. 2).
	Partial = spec.Partial
	// Full is a full installation specification.
	Full = spec.Full
	// Instance is a resource instance in a full specification.
	Instance = spec.Instance
	// Deployment is a managed deployment.
	Deployment = deploy.Deployment
	// MultiHost is a master/slave multi-machine deployment.
	MultiHost = deploy.MultiHost
	// Monitor is a monit-style process watcher.
	Monitor = monitor.Monitor
	// Machine is a simulated machine.
	Machine = machine.Machine
	// World is the collection of simulated machines.
	World = machine.World
	// App is a Django application source tree for the packager.
	App = packager.App
	// Archive is a packaged application.
	Archive = packager.Archive
	// Manifest is a packaged application's extracted metadata.
	Manifest = packager.Manifest
	// DeployConfig is one point of the §6.2 configuration space.
	DeployConfig = library.DeployConfig
	// UpgradeResult reports an upgrade's diff, rollback state and cause.
	UpgradeResult = upgrade.Result
	// FaultPlan is a seeded, reproducible schedule of injectable
	// failures (see InjectFaults).
	FaultPlan = fault.Plan
	// FaultRule is one failure rule of a FaultPlan.
	FaultRule = fault.Rule
	// RetryPolicy bounds per-action retries during deployment.
	RetryPolicy = deploy.RetryPolicy
	// FailurePolicy selects abort / retry / rollback on deploy failure.
	FailurePolicy = deploy.FailurePolicy
	// DeployError is the structured error of a failed deployment.
	DeployError = deploy.DeployError
	// Op identifies one injectable substrate operation.
	Op = machine.Op
	// Tracer emits the JSON-lines telemetry trace (see System.StartTrace).
	Tracer = telemetry.Tracer
	// MetricsRegistry holds counters, gauges, and histograms.
	MetricsRegistry = telemetry.Registry
	// Trace is a parsed JSON-lines trace with lookup helpers.
	Trace = telemetry.Trace
	// TraceLine is one span or event record of a trace.
	TraceLine = telemetry.Line
	// Stack is a named, versioned desired-state record (see ApplyStack).
	Stack = stack.Stack
	// StackBinding records where one desired instance landed in the world.
	StackBinding = stack.Binding
	// AppliedStack is a stack applied to a live world, with its warm
	// configuration session and monitor; Reconcile drives it back to the
	// desired state after drift.
	AppliedStack = stack.Applied
	// Drift is one detected divergence between a stack record and the
	// observed world.
	Drift = stack.Drift
	// ReconcileReport is what one reconcile round found and did.
	ReconcileReport = stack.RoundReport
	// DriftRule is one drift-injection rule of a FaultPlan.
	DriftRule = fault.DriftRule
	// DriftTarget names a deployed binding a FaultPlan may drift.
	DriftTarget = fault.DriftTarget
)

// ReadTrace parses and validates a JSON-lines telemetry trace.
func ReadTrace(r io.Reader) (*Trace, error) { return telemetry.ReadTrace(r) }

// WriteTraceReport renders a parsed trace as a human-readable report:
// stage summary, per-machine deployment timeline, fault injections
// matched to the actions they hit, and the virtual-time critical path
// (the same report as `engage trace report`).
func WriteTraceReport(w io.Writer, t *Trace) { telemetry.WriteReport(w, t) }

// Failure policies for System.OnFailure, re-exported.
const (
	// FailAbort stops at the first error, leaving partial state.
	FailAbort = deploy.FailAbort
	// FailRetry retries failed actions with backoff, then aborts.
	FailRetry = deploy.FailRetry
	// FailRollback retries, then restores the pre-deploy world.
	FailRollback = deploy.FailRollback
)

// Injectable operation kinds, re-exported for fault rules.
const (
	OpStartProcess = machine.OpStartProcess
	OpWriteFile    = machine.OpWriteFile
	OpConnect      = machine.OpConnect
	OpPkgInstall   = machine.OpPkgInstall
	OpProvision    = machine.OpProvision
)

// Value constructors, re-exported.
var (
	Str     = resource.Str
	Int     = resource.IntV
	Port    = resource.PortV
	Bool    = resource.BoolV
	Secret  = resource.SecretV
	StructV = resource.StructV
	ListV   = resource.ListV
)

// ParseKey parses "Name Version" into a Key.
func ParseKey(s string) Key { return resource.ParseKey(s) }

// MakeKey builds a Key from name and version.
func MakeKey(name, version string) Key { return resource.MakeKey(name, version) }

// NewPartial returns an empty partial installation specification.
func NewPartial() *Partial { return &spec.Partial{} }

// NewWorld returns a fresh simulated world (an empty set of machines
// with a new clock); assign it to System.World to redeploy from scratch.
func NewWorld() *World { return machine.NewWorld() }

// System bundles a resource registry, driver registry, simulated world,
// and package index into one deployable site.
type System struct {
	Registry *resource.Registry
	Drivers  *deploy.DriverRegistry
	World    *machine.World
	Index    *pkgmgr.Index
	Cache    *pkgmgr.Cache
	// Parallel enables virtual-time parallel deployment.
	Parallel bool
	// Parallelism bounds the real (wall-clock) worker pools across the
	// whole pipeline: hypergraph generation, constraint emission, the
	// SAT portfolio width, spec build and port propagation, and
	// deployment preparation. ≤ 0 runs the sequential reference path.
	Parallelism int
	// OnFailure selects what a failing deployment does: abort (default),
	// retry with backoff, or retry then roll the world back.
	OnFailure FailurePolicy
	// Retry bounds per-action retries; zero values take policy defaults.
	Retry RetryPolicy
	// ActionTimeout fails any single driver action whose virtual-time
	// cost exceeds it (0 = no limit).
	ActionTimeout time.Duration
	// Tracer, when non-nil, traces every stage — configuration,
	// deployment actions with retries and rollbacks, fault injections,
	// monitor restarts — as JSON lines stamped with the world's virtual
	// clock. Attach one with StartTrace, or construct your own and also
	// call World.SetTracer to capture substrate events.
	Tracer *telemetry.Tracer
	// Metrics, when non-nil, aggregates counters/gauges/histograms
	// across configuration and deployment.
	Metrics *telemetry.Registry
}

// StartTrace attaches a tracer writing JSON lines to w, stamped with
// the system world's virtual clock, to every subsystem: configuration,
// deployment, the machine substrate (provisioning, process crashes),
// and monitors created via System.Monitor. It returns the tracer so
// callers can check Err when done.
func (s *System) StartTrace(w io.Writer) *Tracer {
	tr := telemetry.New(w, s.World.Clock)
	s.Tracer = tr
	s.World.SetTracer(tr)
	if s.Metrics == nil {
		s.Metrics = telemetry.NewRegistry()
	}
	return tr
}

// NewSystem builds a System over the bundled resource library (the
// paper's Java and Django stacks), a fresh simulated world, and the
// simulated package index with a shared download cache.
func NewSystem() (*System, error) {
	reg, err := library.Registry()
	if err != nil {
		return nil, err
	}
	return &System{
		Registry: reg,
		Drivers:  library.Drivers(),
		World:    machine.NewWorld(),
		Index:    library.PackageIndex(),
		Cache:    pkgmgr.NewCache(),
	}, nil
}

// NewSystemFromRDL builds a System from caller-provided RDL sources
// (file name → source). Drivers default to bookkeeping-only state
// machines; register real ones on Drivers.
func NewSystemFromRDL(sources map[string]string) (*System, error) {
	reg, err := rdl.ParseAndResolve(sources)
	if err != nil {
		return nil, err
	}
	if err := typecheck.CheckTypes(reg); err != nil {
		return nil, err
	}
	return &System{
		Registry: reg,
		Drivers:  deploy.NewDriverRegistry(),
		World:    machine.NewWorld(),
		Index:    pkgmgr.NewIndex(),
		Cache:    pkgmgr.NewCache(),
	}, nil
}

// engine returns a configuration engine wired to the system's
// telemetry.
func (s *System) engine() *config.Engine {
	e := config.New(s.Registry)
	e.Parallelism = s.Parallelism
	e.Tracer = s.Tracer
	e.Metrics = s.Metrics
	return e
}

// Check runs the static well-formedness checks over the registry.
func (s *System) Check() error { return typecheck.CheckTypes(s.Registry) }

// CheckSpec statically validates a full installation specification.
func (s *System) CheckSpec(f *Full) error { return typecheck.CheckSpec(s.Registry, f) }

// Configure runs the configuration engine: partial specification in,
// full specification out (§4).
func (s *System) Configure(p *Partial) (*Full, error) {
	return s.engine().Configure(p)
}

// ConfigureStats is Configure with solver statistics.
func (s *System) ConfigureStats(p *Partial) (*Full, config.Stats, error) {
	return s.engine().ConfigureStats(p)
}

// ConfigureMinimal is Configure with a subset-minimality guarantee: no
// instance of the result can be removed while still satisfying every
// constraint (the "optimal install" flavor of OPIUM/apt-pbo, which the
// paper cites as related work).
func (s *System) ConfigureMinimal(p *Partial) (*Full, error) {
	return s.engine().ConfigureMinimal(p)
}

// Alternatives enumerates up to limit distinct full installation
// specifications extending the partial specification — Theorem 1's
// satisfying assignments, materialized. For the §2 OpenMRS spec this
// yields exactly two (JDK vs JRE). limit ≤ 0 enumerates everything.
func (s *System) Alternatives(p *Partial, limit int) ([]*Full, error) {
	return s.engine().Alternatives(p, limit)
}

func (s *System) options() deploy.Options {
	return deploy.Options{
		Registry:         s.Registry,
		Drivers:          s.Drivers,
		World:            s.World,
		Index:            s.Index,
		Cache:            s.Cache,
		Parallel:         s.Parallel,
		Parallelism:      s.Parallelism,
		ProvisionMissing: true,
		OSOf:             library.OSOf,
		OnFailure:        s.OnFailure,
		Retry:            s.Retry,
		ActionTimeout:    s.ActionTimeout,
		Tracer:           s.Tracer,
		Metrics:          s.Metrics,
	}
}

// NewFaultPlan returns an empty fault plan seeded for reproducible
// probabilistic rules; wire it in with InjectFaults.
func NewFaultPlan(seed int64) *FaultPlan { return fault.NewPlan(seed) }

// ChaosPlan returns a randomized but reproducible fault plan: every
// process spawn, file write, package install, and connect fails
// independently with probability prob, and started processes crash
// after crashAfter of virtual time with the same probability (0
// disables crashes).
func ChaosPlan(seed int64, prob float64, crashAfter time.Duration) *FaultPlan {
	return fault.Chaos(seed, prob, crashAfter)
}

// InjectFaults attaches a fault plan to the system's world; every
// subsequent substrate operation consults it. Pass nil to detach.
func (s *System) InjectFaults(p *FaultPlan) {
	if p == nil {
		s.World.SetInjector(nil)
		return
	}
	if s.Tracer != nil {
		p.Instrument(s.Tracer)
	}
	s.World.SetInjector(p)
}

// Deploy installs and starts a full specification on the system's world,
// provisioning simulated machines as needed, and returns the managed
// deployment with every driver in its active state.
func (s *System) Deploy(f *Full) (*Deployment, error) {
	d, err := deploy.New(f, s.options())
	if err != nil {
		return nil, err
	}
	if err := d.Deploy(); err != nil {
		return nil, err
	}
	return d, nil
}

// DeployConcurrent is Deploy with one goroutine per instance: drivers
// fire as soon as their ↑/↓ guards allow, with no global plan — the
// §5.1 blocking-transition semantics realized with real concurrency.
// The outcome and virtual-time accounting match the Parallel option.
func (s *System) DeployConcurrent(f *Full) (*Deployment, error) {
	d, err := deploy.New(f, s.options())
	if err != nil {
		return nil, err
	}
	if err := d.DeployConcurrent(); err != nil {
		return nil, err
	}
	return d, nil
}

// DeployMultiHost deploys a specification spanning several machines in
// master/slave style (§5.2), ordering the machines by their dependency
// partial order.
func (s *System) DeployMultiHost(f *Full) (*MultiHost, error) {
	mh, err := deploy.NewMultiHost(f, s.options())
	if err != nil {
		return nil, err
	}
	if err := mh.Deploy(); err != nil {
		return nil, err
	}
	return mh, nil
}

// Monitor returns a monit-style watcher over a deployment with every
// daemon-backed service auto-registered.
func (s *System) Monitor(d *Deployment) *Monitor {
	m := monitor.New(d)
	m.Tracer = s.Tracer
	m.Metrics = s.Metrics
	m.AutoRegister()
	return m
}

// Upgrade moves a running deployment to a new specification with backup
// and rollback-on-failure (§5.2). Every component is stopped and
// redeployed — the paper's baseline strategy, which "experiences the
// worst case upgrade time".
func (s *System) Upgrade(old *Deployment, oldSpec, newSpec *Full) (*Deployment, *UpgradeResult, error) {
	u := &upgrade.Upgrader{Options: s.options()}
	return u.Upgrade(old, oldSpec, newSpec)
}

// UpgradeIncremental is the optimized upgrade strategy the paper leaves
// as future work: only changed/added/removed instances and their
// transitive dependents are touched; everything else keeps running and
// is adopted by the new deployment. Failures still roll the whole
// system back from backup.
func (s *System) UpgradeIncremental(old *Deployment, oldSpec, newSpec *Full) (*Deployment, *UpgradeResult, error) {
	u := &upgrade.Upgrader{Options: s.options()}
	return u.UpgradeIncremental(old, oldSpec, newSpec)
}

// ApplyStack configures and deploys a partial specification as a named
// stack: a versioned desired-state record whose bindings (daemon PIDs,
// ports, config manifests) the returned AppliedStack can continuously
// reconcile against the live world (detect drift, replan minimally on
// the warm SAT session, repair or roll back).
func (s *System) ApplyStack(name string, p *Partial) (*AppliedStack, error) {
	c := &stack.Controller{Options: s.options()}
	return c.Apply(name, p)
}

// ReadStackRecord parses a stack record written by Stack.WriteJSON.
func ReadStackRecord(r io.Reader) (*Stack, error) { return stack.ReadStack(r) }

// PackageApp validates and packages a Django application (§6.2).
func (s *System) PackageApp(app App) (Archive, error) {
	return packager.Package(app)
}

// RegisterApp installs a packaged application's generated resource type
// and generic driver, after which the app deploys "without requiring
// any application-specific deployment code".
func (s *System) RegisterApp(arch Archive) (Key, error) {
	if err := library.RegisterApp(s.Registry, s.Drivers, arch); err != nil {
		return Key{}, err
	}
	return library.AppKey(arch.Manifest), nil
}

// NewProvider returns a simulated cloud provider attached to the
// system's world ("rackspace" or "aws", per the paper's integrations).
func (s *System) NewProvider(kind string) (*cloud.Provider, error) {
	switch kind {
	case "rackspace":
		return cloud.NewRackspaceSim(s.World), nil
	case "aws":
		return cloud.NewAWSSim(s.World), nil
	default:
		return nil, fmt.Errorf("engage: unknown provider %q (want rackspace or aws)", kind)
	}
}

// AllConfigs enumerates the §6.2 single-node Django configuration space
// (256 configurations).
func AllConfigs() []DeployConfig { return library.AllConfigs() }

// TableOneApps returns the eight Django applications of Table 1 as
// synthetic fixtures with the paper's structural features.
func TableOneApps() []App { return library.TableOneApps() }

// WebAppProductionPartial builds the §6.2 production three-machine
// topology for a packaged application.
func WebAppProductionPartial(man Manifest) *Partial {
	return library.WebAppProductionPartial(man)
}

// DjangoPartial builds a single-node partial specification for a
// packaged application under one configuration.
func DjangoPartial(cfg DeployConfig, man Manifest) *Partial { return cfg.Partial(man) }

// LineCount reports the canonical rendered size of a specification in
// lines, the metric behind the paper's spec-compaction numbers.
func LineCount(f interface{ MarshalJSON() ([]byte, error) }) int { return spec.LineCount(f) }

// Render returns a specification's canonical JSON text.
func Render(f interface{ MarshalJSON() ([]byte, error) }) (string, error) { return spec.Render(f) }

// SolverFor returns a named SAT solver ("cdcl" or "dpll") for use with
// the lower-level configuration engine; the ablation benches use it.
func SolverFor(name string) (sat.Solver, error) {
	switch name {
	case "cdcl":
		return sat.NewCDCL(), nil
	case "dpll":
		return sat.NewDPLL(), nil
	default:
		return nil, fmt.Errorf("engage: unknown solver %q", name)
	}
}

// EncodingFor returns a named exactly-one encoding ("pairwise" or
// "ladder").
func EncodingFor(name string) (constraint.Encoding, error) {
	switch name {
	case "pairwise":
		return constraint.Pairwise, nil
	case "ladder":
		return constraint.Ladder, nil
	default:
		return 0, fmt.Errorf("engage: unknown encoding %q", name)
	}
}
