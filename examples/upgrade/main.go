// Upgrades with rollback (§5.2 and the §6.2 FA case study): deploy FA
// v1, seed database content, upgrade to v2 with a South schema
// migration, then demonstrate that an injected failure during an
// upgrade automatically rolls the system back to the prior version with
// content intact. Also shows monit-style failure recovery.
package main

import (
	"fmt"
	"log"

	"engage"
)

func main() {
	sys, err := engage.NewSystem()
	if err != nil {
		log.Fatal(err)
	}

	var fa engage.App
	for _, a := range engage.TableOneApps() {
		if a.Name == "fa" {
			fa = a
		}
	}
	archV1, err := sys.PackageApp(fa)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.RegisterApp(archV1); err != nil {
		log.Fatal(err)
	}

	faV2 := fa
	faV2.Version = "2.0"
	faV2.Files["fa/migrations/0003_reviewers.py"] = "# split reviewers table"
	archV2, err := sys.PackageApp(faV2)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.RegisterApp(archV2); err != nil {
		log.Fatal(err)
	}

	cfg := engage.DeployConfig{
		OS:        engage.ParseKey("Ubuntu 12.04"),
		WebServer: engage.ParseKey("Gunicorn 0.13"),
		Database:  engage.ParseKey("MySQL 5.1"),
		Monit:     true,
	}

	oldFull, err := sys.Configure(engage.DjangoPartial(cfg, archV1.Manifest))
	if err != nil {
		log.Fatal(err)
	}
	oldDep, err := sys.Deploy(oldFull)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FA 1.0 deployed: %d instances in %v\n", len(oldFull.Instances), oldDep.Elapsed())

	// Monit-style failure recovery: kill the database daemon and let the
	// monitor restart it.
	mon := sys.Monitor(oldDep)
	m, _ := sys.World.Machine("server")
	if proc, ok := m.FindProcess("mysql"); ok {
		fmt.Printf("\ninjecting failure: killing mysql (pid %d)\n", proc.PID)
		if err := m.KillProcess(proc.PID); err != nil {
			log.Fatal(err)
		}
	}
	for _, ev := range mon.Check() {
		fmt.Printf("monitor: instance %s dead (pid %d), restarted=%v\n",
			ev.Instance, ev.PID, ev.Restarted)
	}

	// Upgrade to v2.
	newFull, err := sys.Configure(engage.DjangoPartial(cfg, archV2.Manifest))
	if err != nil {
		log.Fatal(err)
	}
	newDep, res, err := sys.Upgrade(oldDep, oldFull, newFull)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nupgrade to FA 2.0: rolled_back=%v changed=%v elapsed=%v\n",
		res.RolledBack, res.Diff.Changed, res.Elapsed)
	if !newDep.Deployed() {
		log.Fatal("upgrade left system down")
	}

	// Now break an upgrade on purpose: the next configuration adds
	// Redis, but a rogue process is squatting Redis's port, so the new
	// system cannot deploy — Engage must roll back to FA 2.0.
	squatter, err := m.StartProcess("squatter", "nc -l 6379", 6379)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninjecting failure: port 6379 squatted by pid %d\n", squatter.PID)

	cfgRedis := cfg
	cfgRedis.Redis = true
	redisFull, err := sys.Configure(engage.DjangoPartial(cfgRedis, archV2.Manifest))
	if err != nil {
		log.Fatal(err)
	}
	back, res2, err := sys.Upgrade(newDep, newFull, redisFull)
	if err != nil {
		log.Fatal(err)
	}
	if res2.RolledBack {
		fmt.Printf("upgrade failed as intended (%v)\n", res2.Cause)
		fmt.Println("system automatically rolled back; status:")
		for id, st := range back.Status() {
			fmt.Printf("  %-24s %s\n", id, st)
		}
	} else {
		fmt.Println("note: upgrade unexpectedly succeeded")
	}
}
