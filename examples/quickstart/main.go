// Quickstart: the paper's §2 walk-through. Deploy OpenMRS — a Java
// servlet inside Tomcat, with Java and MySQL dependencies resolved
// automatically — on one Mac OS X server, from a three-instance partial
// installation specification.
package main

import (
	"fmt"
	"log"

	"engage"
)

func main() {
	sys, err := engage.NewSystem()
	if err != nil {
		log.Fatal(err)
	}

	// The partial installation specification of Fig. 2: the user lists
	// only the main components and the machine; Java (JDK or JRE, the
	// solver chooses) and MySQL are derived.
	partial := engage.NewPartial()
	partial.Add("server", engage.ParseKey("Mac-OSX 10.6")).
		Set("hostname", engage.Str("localhost")).
		Set("os_user_name", engage.Str("root"))
	partial.Add("tomcat", engage.ParseKey("Tomcat 6.0.18")).In("server")
	partial.Add("openmrs", engage.ParseKey("OpenMRS 1.8")).In("tomcat")

	full, stats, err := sys.ConfigureStats(partial)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("configuration engine: %d-node hypergraph, %d clauses → %d instances\n",
		stats.GraphNodes, stats.Clauses, len(full.Instances))
	fmt.Printf("spec sizes: partial %d lines → full %d lines\n",
		engage.LineCount(partial), engage.LineCount(full))
	for _, inst := range full.Instances {
		fmt.Printf("  %-24s %s\n", inst.ID, inst.Key)
	}

	dep, err := sys.Deploy(full)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndeployed in %v of simulated time\n", dep.Elapsed())

	// Port propagation gave OpenMRS its JDBC connection string.
	openmrs := full.MustFind("openmrs")
	fmt.Printf("openmrs jdbc_url = %s\n", openmrs.Output["jdbc_url"].AsString())

	// The runtime tracks every driver's state.
	fmt.Println("\ndriver states:")
	for _, inst := range dep.Instances() {
		st, _ := dep.StateOf(inst.ID)
		fmt.Printf("  %-24s %s\n", inst.ID, st)
	}

	// Shut down in reverse dependency order.
	if err := dep.Shutdown(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nshutdown complete (reverse dependency order)")
}
