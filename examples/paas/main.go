// Platform-as-a-service (§6.2): the commercial story behind Engage.
// Start the PaaS web service over the simulated cloud, upload a packaged
// Django application over HTTP, inspect its status, upgrade it, and tear
// it down — the developer never sees Engage's internals.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"

	"engage/internal/paas"
	"engage/internal/packager"
)

func main() {
	platform, err := paas.NewPlatform()
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	server := &http.Server{Handler: platform.Handler()}
	go func() { _ = server.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("PaaS listening on %s\n\n", base)

	// The developer packages their app locally…
	app := packager.App{
		Name:    "notes",
		Version: "1.0",
		Files: map[string]string{
			"manage.py": "#!/usr/bin/env python",
			"settings.py": `
DATABASES = {"default": {"ENGINE": "django.db.backends.mysql", "NAME": "notes"}}
INSTALLED_APPS = ["django.contrib.auth", "notes"]
`,
			"requirements.txt": "Markdown==2.1\n",
		},
	}
	arch, err := packager.Package(app)
	if err != nil {
		log.Fatal(err)
	}
	payload, err := arch.Bytes()
	if err != nil {
		log.Fatal(err)
	}

	// …and uploads it.
	resp, err := http.Post(base+"/apps?monit=1", "application/json", bytes.NewReader(payload))
	if err != nil {
		log.Fatal(err)
	}
	show("POST /apps", resp)

	resp, err = http.Get(base + "/apps/notes/status")
	if err != nil {
		log.Fatal(err)
	}
	show("GET /apps/notes/status", resp)

	// Upgrade to 1.1.
	app.Version = "1.1"
	arch2, err := packager.Package(app)
	if err != nil {
		log.Fatal(err)
	}
	payload2, _ := arch2.Bytes()
	resp, err = http.Post(base+"/apps/notes/upgrade", "application/json", bytes.NewReader(payload2))
	if err != nil {
		log.Fatal(err)
	}
	show("POST /apps/notes/upgrade", resp)

	// Tear down.
	req, _ := http.NewRequest(http.MethodDelete, base+"/apps/notes", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	show("DELETE /apps/notes", resp)

	_ = server.Close()
}

func show(label string, resp *http.Response) {
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var pretty bytes.Buffer
	if json.Indent(&pretty, body, "  ", "  ") == nil {
		fmt.Printf("%s → %s\n  %s\n\n", label, resp.Status, pretty.String())
	} else {
		fmt.Printf("%s → %s\n  %s\n\n", label, resp.Status, body)
	}
}
