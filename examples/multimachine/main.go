// Multi-machine production deployment (§5.2, §6.2): the WebApp
// production topology — application server, database server, and worker
// node — provisioned from a simulated cloud, configured from a
// seven-resource partial specification, and deployed by the master/slave
// coordinator in machine dependency order.
package main

import (
	"fmt"
	"log"

	"engage"
)

func main() {
	sys, err := engage.NewSystem()
	if err != nil {
		log.Fatal(err)
	}

	// Package the production application (Table 1's WebApp: async
	// messaging, cron jobs, caching).
	var webapp engage.App
	for _, a := range engage.TableOneApps() {
		if a.Name == "webapp" {
			webapp = a
		}
	}
	arch, err := sys.PackageApp(webapp)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.RegisterApp(arch); err != nil {
		log.Fatal(err)
	}

	// Provision the three nodes from the simulated cloud; the paper's
	// runtime merges provider metadata into the specification the same
	// way.
	provider, err := sys.NewProvider("rackspace")
	if err != nil {
		log.Fatal(err)
	}
	for _, node := range []string{"appserver", "dbserver", "worker"} {
		m, err := provider.Provision(node, "ubuntu-12.04")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("provisioned %-10s ip=%s os=%s\n", m.Name, m.IP, m.OS)
	}

	partial := engage.WebAppProductionPartial(arch.Manifest)
	full, err := sys.Configure(partial)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npartial spec: %d resources, %d lines\n",
		len(partial.Instances), engage.LineCount(partial))
	fmt.Printf("full spec:    %d resources, %d lines\n",
		len(full.Instances), engage.LineCount(full))

	mh, err := sys.DeployMultiHost(full)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmachine deployment order: %v\n", mh.Order)
	fmt.Printf("deployed in %v of simulated time\n\n", mh.Elapsed())

	for _, node := range []string{"appserver", "dbserver", "worker"} {
		m, _ := sys.World.Machine(node)
		fmt.Printf("%s:\n", node)
		for _, p := range m.Processes() {
			fmt.Printf("  pid %-4d %-14s ports %v\n", p.PID, p.Name, p.Ports)
		}
	}

	// Shut the whole site down, machines in reverse order.
	if err := mh.Shutdown(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsite shut down in reverse machine order")
}
