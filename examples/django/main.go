// Django platform (§6.2): package a Django application from its source
// tree, register it (generating its resource type — no app-specific
// deployment code), and deploy it under several of the 256 supported
// single-node configurations: different OS, web server, database, and
// optional components.
package main

import (
	"fmt"
	"log"

	"engage"
)

func main() {
	// A small Django application, as a developer would hand it to the
	// platform: manage.py, settings.py, requirements.txt.
	app := engage.App{
		Name:    "guestbook",
		Version: "1.0",
		Files: map[string]string{
			"manage.py": "#!/usr/bin/env python",
			"settings.py": `
DEBUG = False
DATABASES = {"default": {"ENGINE": "django.db.backends.mysql", "NAME": "guestbook"}}
INSTALLED_APPS = ["django.contrib.auth", "south", "guestbook"]
CACHES = {"default": {"BACKEND": "django.core.cache.backends.memcached.MemcachedCache"}}
CRON_JOBS = ["0 4 * * * purge_spam"]
`,
			"requirements.txt":                     "south==0.7.3\npython-memcached==1.48\nMarkdown==2.1\n",
			"guestbook/models.py":                  "class Entry: pass",
			"guestbook/migrations/0001_initial.py": "# initial",
		},
	}

	sys, err := engage.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	arch, err := sys.PackageApp(app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("packaged %s %s: packages=%v db=%s memcached=%v migrations=%v\n",
		arch.Manifest.Name, arch.Manifest.Version, arch.Manifest.PythonPackages,
		arch.Manifest.DatabaseEngine, arch.Manifest.UsesMemcached, arch.Manifest.HasMigrations)

	key, err := sys.RegisterApp(arch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated resource type: %s\n\n", key)

	// Deploy the same application under three different configurations —
	// the paper's development-to-production migration story.
	configs := []struct {
		label string
		cfg   engage.DeployConfig
	}{
		{"development (mac, gunicorn, monit off)", engage.DeployConfig{
			OS:        engage.ParseKey("Mac-OSX 10.7"),
			WebServer: engage.ParseKey("Gunicorn 0.13"),
			Database:  engage.ParseKey("MySQL 5.1"),
		}},
		{"staging (ubuntu, gunicorn, memcached)", engage.DeployConfig{
			OS:        engage.ParseKey("Ubuntu 12.04"),
			WebServer: engage.ParseKey("Gunicorn 0.13"),
			Database:  engage.ParseKey("MySQL 5.1"),
			Memcached: true,
		}},
		{"production (ubuntu, apache, memcached, monit)", engage.DeployConfig{
			OS:        engage.ParseKey("Ubuntu 12.04"),
			WebServer: engage.ParseKey("Apache 2.2"),
			Database:  engage.ParseKey("MySQL 5.1"),
			Memcached: true,
			Monit:     true,
		}},
	}

	for _, c := range configs {
		// Each configuration gets a fresh world (a fresh set of
		// machines) but the same registry and app type.
		sys.World = engage.NewWorld()
		partial := engage.DjangoPartial(c.cfg, arch.Manifest)
		full, err := sys.Configure(partial)
		if err != nil {
			log.Fatalf("%s: %v", c.label, err)
		}
		dep, err := sys.Deploy(full)
		if err != nil {
			log.Fatalf("%s: %v", c.label, err)
		}
		appInst := full.MustFind("app")
		fmt.Printf("%-48s %2d instances, %6v, url=%s\n",
			c.label, len(full.Instances), dep.Elapsed(), appInst.Output["url"].AsString())
	}

	fmt.Printf("\nconfiguration space: %d distinct single-node configurations\n",
		len(engage.AllConfigs()))
}
