// JasperReports (§6.1): automate the 77-page manual install. The same
// partial specification is deployed twice — once downloading every
// package from the simulated internet, once against a warm local file
// cache — reproducing the paper's 17-minute vs 5-minute contrast in
// shape.
package main

import (
	"fmt"
	"log"
	"time"

	"engage"
)

func jasperPartial() *engage.Partial {
	p := engage.NewPartial()
	p.Add("server", engage.ParseKey("Ubuntu 12.04"))
	p.Add("tomcat", engage.ParseKey("Tomcat 6.0.18")).In("server")
	p.Add("jasper", engage.ParseKey("JasperReports 4.5")).In("tomcat")
	return p
}

func install(warmCache bool, sysTemplate *engage.System) (time.Duration, int, int) {
	sys, err := engage.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	if warmCache && sysTemplate != nil {
		// Share the file cache from the previous install: the paper's
		// "obtained from a local file cache" scenario.
		sys.Cache = sysTemplate.Cache
	}
	partial := jasperPartial()
	full, err := sys.Configure(partial)
	if err != nil {
		log.Fatal(err)
	}
	dep, err := sys.Deploy(full)
	if err != nil {
		log.Fatal(err)
	}
	if sysTemplate != nil {
		sysTemplate.Cache = sys.Cache
	}
	return dep.Elapsed(), engage.LineCount(partial), engage.LineCount(full)
}

func main() {
	shared, err := engage.NewSystem()
	if err != nil {
		log.Fatal(err)
	}

	cold, pLines, fLines := install(true, shared) // first run fills the shared cache
	warm, _, _ := install(true, shared)           // second run hits it

	fmt.Println("JasperReports Server automated install (simulated):")
	fmt.Printf("  partial spec: %d lines → full spec: %d lines\n", pLines, fLines)
	fmt.Printf("  install, packages from internet:    %v\n", cold)
	fmt.Printf("  install, packages from local cache: %v\n", warm)
	fmt.Printf("  speedup: %.1fx (paper: 17 min → 5 min, 3.4x)\n",
		float64(cold)/float64(warm))

	// The installed system is managed: status checks come from the
	// runtime, not ad hoc scripts.
	sys, err := engage.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	full, err := sys.Configure(jasperPartial())
	if err != nil {
		log.Fatal(err)
	}
	dep, err := sys.Deploy(full)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmanaged services after install:")
	mon := sys.Monitor(dep)
	for _, st := range mon.Status() {
		fmt.Printf("  %-24s running=%v pid=%d\n", st.Instance, st.Running, st.PID)
	}
}
