package engage

import (
	"bytes"
	"fmt"
	"testing"

	"engage/internal/fault"
	"engage/internal/machine"
)

// TestReconcileChaosSoak drives the OpenMRS stack through a seeded
// sweep of drift disturbances: each round the fault plan kills daemons,
// corrupts config manifests, and moves processes off their recorded
// ports, plus one transient substrate failure per disturbance aimed at
// the repair itself. The reconciler must restore the stack invariant —
// every desired instance live, bindings matching the record — within
// three repair rounds per disturbance, touching only the damaged cone,
// with every failed round rolled back.
func TestReconcileChaosSoak(t *testing.T) {
	totalDrifts, totalRolledBack := 0, 0
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			sys, err := NewSystem()
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			tr := sys.StartTrace(&buf)
			a, err := sys.ApplyStack("web", chaosPartial())
			if err != nil {
				t.Fatal(err)
			}
			if drifts := a.Verify(); len(drifts) != 0 {
				t.Fatalf("fresh stack should verify clean: %v", drifts)
			}

			// Attach chaos only after the clean apply, à la the monitor
			// soak: the reconciler, not the deployer, absorbs it.
			plan := NewFaultPlan(seed).DriftWithProbability(0.5)
			sys.InjectFaults(plan)

			for disturbance := 1; disturbance <= 3; disturbance++ {
				before := plan.Injections()
				for _, tgt := range a.DriftTargets() {
					plan.InjectDrift(tgt)
				}
				totalDrifts += plan.Injections() - before
				// When this disturbance took a daemon down, arm one
				// transient spawn failure: the repair's restart fails once,
				// forcing a rollback round before the repair lands. (Armed
				// only when a restart is sure to consume it — unconsumed
				// rules would accumulate across disturbances and stack
				// several rollback rounds onto a later one.)
				for _, ev := range plan.Events()[before:] {
					if ev.Op.Kind == fault.OpDriftKill || ev.Op.Kind == fault.OpDriftPort {
						plan.Add(fault.Rule{Op: machine.OpStartProcess, Mode: fault.Transient, Times: 1})
						break
					}
				}

				pidsBefore := map[string]int{}
				for id, b := range a.Stack.Bindings {
					if b.PID != 0 {
						pidsBefore[id] = b.PID
					}
				}

				reps, converged := a.ReconcileUntilConverged(4)
				if !converged {
					t.Fatalf("disturbance %d: no convergence in %d rounds: %+v",
						disturbance, len(reps), reps[len(reps)-1])
				}
				if repairRounds := len(reps) - 1; repairRounds > 3 {
					t.Errorf("disturbance %d: took %d repair rounds, want <= 3",
						disturbance, repairRounds)
				}
				touched := map[string]bool{}
				for _, rep := range reps {
					if rep.RolledBack {
						totalRolledBack++
					}
					if rep.Err != nil && !rep.RolledBack {
						t.Errorf("disturbance %d round %d: failed without rollback: %v",
							disturbance, rep.Round, rep.Err)
					}
					for _, id := range rep.Cone {
						touched[id] = true
					}
				}

				// The stack invariant: every desired instance live on its
				// recorded bindings, manifests matching the record.
				if drifts := a.Verify(); len(drifts) != 0 {
					t.Errorf("disturbance %d: stack does not verify after convergence: %v",
						disturbance, drifts)
				}
				for id, b := range a.Stack.Bindings {
					if b.PID == 0 {
						continue
					}
					m, ok := sys.World.Machine(b.Machine)
					if !ok {
						t.Fatalf("machine %s vanished", b.Machine)
					}
					if !m.Running(b.PID) {
						t.Errorf("disturbance %d: %s recorded pid %d not running", disturbance, id, b.PID)
					}
					for _, port := range b.Ports {
						if !m.Listening(port) {
							t.Errorf("disturbance %d: %s port %d not served", disturbance, id, port)
						}
					}
					// Minimality, observed at the process table: daemons
					// outside every round's cone keep their PIDs.
					if !touched[id] && pidsBefore[id] != b.PID {
						t.Errorf("disturbance %d: untouched %s daemon was replaced (pid %d -> %d)",
							disturbance, id, pidsBefore[id], b.PID)
					}
				}
			}

			if terr := tr.Err(); terr != nil {
				t.Fatalf("seed %d: tracer error: %v", seed, terr)
			}
			saveChaosTrace(t, buf.Bytes())
			trace, err := ReadTrace(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("reconcile trace does not validate: %v", err)
			}
			rounds := trace.Spans("reconcile.round")
			if len(rounds) == 0 {
				t.Error("trace should carry reconcile.round spans")
			}
			for _, r := range rounds {
				if len(trace.ChildSpans(r.ID)) == 0 {
					t.Errorf("round span %d has no detect/plan/repair children", r.Int("round"))
				}
			}
			if faults := trace.Events("fault.inject"); len(faults) != plan.Injections() {
				t.Errorf("%d fault.inject events, plan injected %d", len(faults), plan.Injections())
			}
		})
	}
	if totalDrifts == 0 {
		t.Error("sweep never injected drift; the soak is vacuous")
	}
	if totalRolledBack == 0 {
		t.Error("sweep never exercised a rolled-back repair round")
	}
}

// TestReconcileReproducible replays one soak seed twice and demands the
// exact same drift schedule and round-by-round reconcile story.
func TestReconcileReproducible(t *testing.T) {
	run := func() ([]Op, []string) {
		sys, err := NewSystem()
		if err != nil {
			t.Fatal(err)
		}
		a, err := sys.ApplyStack("web", chaosPartial())
		if err != nil {
			t.Fatal(err)
		}
		plan := NewFaultPlan(7).DriftWithProbability(0.5)
		sys.InjectFaults(plan)
		var story []string
		for disturbance := 0; disturbance < 3; disturbance++ {
			for _, tgt := range a.DriftTargets() {
				plan.InjectDrift(tgt)
			}
			reps, converged := a.ReconcileUntilConverged(4)
			if !converged {
				t.Fatal("no convergence")
			}
			for _, rep := range reps {
				story = append(story, fmt.Sprintf("round %d: drifts=%v cone=%v pinned=%d repaired=%v rolledback=%v",
					rep.Round, rep.Drifts, rep.Cone, rep.Pinned, rep.Repaired, rep.RolledBack))
			}
		}
		var ops []Op
		for _, ev := range plan.Events() {
			ops = append(ops, ev.Op)
		}
		return ops, story
	}
	opsA, storyA := run()
	opsB, storyB := run()
	if len(opsA) != len(opsB) {
		t.Fatalf("same seed, different drift counts: %d vs %d", len(opsA), len(opsB))
	}
	for i := range opsA {
		if opsA[i] != opsB[i] {
			t.Errorf("drift %d differs: %v vs %v", i, opsA[i], opsB[i])
		}
	}
	if len(storyA) != len(storyB) {
		t.Fatalf("same seed, different round counts: %d vs %d", len(storyA), len(storyB))
	}
	for i := range storyA {
		if storyA[i] != storyB[i] {
			t.Errorf("round %d differs:\n  %s\n  %s", i, storyA[i], storyB[i])
		}
	}
}
