package engage

// End-to-end telemetry acceptance: a traced deployment under an
// injected fault plan must yield a schema-valid JSON-lines trace from
// which the full story reconstructs — configuration stages, every
// instance's virtual-time interval tiled exactly by its action spans,
// retries with virtual timestamps inside their actions, each fault
// injection landing inside the action it hit, and a critical path whose
// links meet end-to-start. The rendered report must tell the same
// story in prose.

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTracedDeployUnderFaults(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := sys.StartTrace(&buf)
	sys.OnFailure = FailRetry // 3 attempts, 2s backoff doubling

	// The first two process spawns anywhere fail: transient faults the
	// retry policy must absorb, visible in the trace as deploy.retry
	// events and an action span with attempts > 1.
	plan := NewFaultPlan(7).FailTransient(OpStartProcess, "", "", 2)
	sys.InjectFaults(plan)

	clock0 := sys.World.Clock.Now()
	full, err := sys.Configure(chaosPartial())
	if err != nil {
		t.Fatal(err)
	}
	d, err := sys.Deploy(full)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Err() != nil {
		t.Fatalf("tracer error: %v", tr.Err())
	}
	if plan.Injections() != 2 {
		t.Fatalf("transient plan injected %d faults, want 2", plan.Injections())
	}

	trace, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("trace does not validate: %v", err)
	}

	// Configuration stages are traced under one "config" root.
	cfgs := trace.Spans("config")
	if len(cfgs) != 1 {
		t.Fatalf("want one config span, got %d", len(cfgs))
	}
	for _, stage := range []string{"config.graph", "config.encode", "config.solve", "config.build"} {
		if len(trace.Spans(stage)) != 1 {
			t.Errorf("missing stage span %s", stage)
		}
	}

	// The deploy root covers exactly the deployment's virtual window.
	roots := trace.Spans("deploy")
	if len(roots) != 1 {
		t.Fatalf("want one deploy root, got %d", len(roots))
	}
	root := roots[0]
	if !root.VStart.Equal(clock0) || !root.VEnd.Equal(clock0.Add(d.Elapsed())) {
		t.Errorf("deploy root [%v, %v], want [%v, %v]",
			root.VStart, root.VEnd, clock0, clock0.Add(d.Elapsed()))
	}

	// Every instance span is tiled exactly by its action spans: the
	// first starts at the instance start, consecutive actions meet, and
	// the last ends at the instance end — so per-stage durations
	// (including retry backoffs) reconstruct from the trace alone.
	instSpans := trace.ChildSpans(root.ID)
	retriedActions := 0
	for _, isp := range instSpans {
		if isp.Name != "deploy.instance" {
			continue
		}
		if isp.Str("machine") == "" {
			t.Errorf("instance %s span has no machine attribute", isp.Str("instance"))
		}
		cursor := *isp.VStart
		acts := trace.ChildSpans(isp.ID)
		for _, asp := range acts {
			if !asp.VStart.Equal(cursor) {
				t.Errorf("%s/%s starts at %v, want %v (actions must tile the instance)",
					asp.Str("instance"), asp.Str("action"), asp.VStart, cursor)
			}
			cursor = *asp.VEnd
			if asp.Int("attempts") > 1 {
				retriedActions++
			}
			// Retry events carry virtual stamps inside their action.
			for _, ev := range trace.SpanEvents(asp.ID) {
				if ev.VTime.Before(*asp.VStart) || ev.VTime.After(*asp.VEnd) {
					t.Errorf("event %s at %v outside action [%v, %v]",
						ev.Name, ev.VTime, asp.VStart, asp.VEnd)
				}
			}
		}
		if len(acts) > 0 && !cursor.Equal(*isp.VEnd) {
			t.Errorf("instance %s actions end at %v, span ends at %v",
				isp.Str("instance"), cursor, isp.VEnd)
		}
	}
	if retriedActions == 0 {
		t.Error("no action span records attempts > 1 despite 2 injected faults")
	}

	// Each injected fault appears as a fault.inject event that lands
	// inside an action span on the same machine, and every one was
	// absorbed (the action it hit succeeded after retries).
	faults := trace.Events("fault.inject")
	if len(faults) != plan.Injections() {
		t.Fatalf("%d fault.inject events, want %d", len(faults), plan.Injections())
	}
	retries := trace.Events("deploy.retry")
	if len(retries) != len(faults) {
		t.Errorf("%d deploy.retry events for %d injected faults", len(retries), len(faults))
	}
	for _, f := range faults {
		if f.Str("plan") != plan.ID() {
			t.Errorf("fault event names plan %q, want %q", f.Str("plan"), plan.ID())
		}
		// The injected error embeds the op description, so every fault
		// links to the retry event it caused, and the retried action
		// ultimately succeeded (the fault was absorbed).
		op := f.Str("op") + " on " + f.Str("machine") + " (" + f.Str("name") + ")"
		matched := false
		for _, rv := range retries {
			if !strings.Contains(rv.Str("error"), op) {
				continue
			}
			if asp := trace.Span(rv.Span); asp != nil &&
				asp.Str("error") == "" && asp.Int("attempts") > 1 {
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("fault %s not absorbed by any retried action span", op)
		}
	}

	// The critical path reconstructs: following each instance's latest-
	// finishing dependency from the last finisher reaches a root, and
	// consecutive links meet end-to-start under sequential deployment.
	var rep bytes.Buffer
	WriteTraceReport(&rep, trace)
	for _, want := range []string{
		"stages:", "config.solve", "deployment timeline", "machine server",
		"fault injections:", "absorbed by", "critical path",
	} {
		if !strings.Contains(rep.String(), want) {
			t.Errorf("report missing %q:\n%s", want, rep.String())
		}
	}

	// Virtual time in the report is honest: the makespan the report
	// prints is the deployment's elapsed virtual time.
	if !strings.Contains(rep.String(), d.Elapsed().String()+" makespan") {
		t.Errorf("report does not state the %v makespan:\n%s", d.Elapsed(), rep.String())
	}

	// Backoffs consumed virtual time: with two 2s backoffs injected the
	// deployment must run at least 4s longer than the fault-free one.
	pristine, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	fullP, err := pristine.Configure(chaosPartial())
	if err != nil {
		t.Fatal(err)
	}
	dP, err := pristine.Deploy(fullP)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := d.Elapsed()-dP.Elapsed(), 4*time.Second; got < want {
		t.Errorf("faulted deploy only %v longer than fault-free, want >= %v", got, want)
	}
}
