package engage

import (
	"fmt"

	"engage/internal/cloud"
	"engage/internal/library"
	"engage/internal/machine"
	"engage/internal/resource"
	"engage/internal/spec"
)

// This file implements the provisioning workflows of §5.2:
//
//   - Discover: "Engage provides a set of runtime tools to determine
//     properties of servers, such as hostname, IP address, operating
//     system … These tools automatically create a resource instance for
//     the server, and in practice, are used to start writing a new
//     partial installation specification when the servers are known."
//   - ProvisionPartial: "If a machine resource instance in the partial
//     installation specification does not include configuration details,
//     and Engage is being run in a cloud environment, a new virtual
//     server is provisioned … the additional host configuration details
//     are added to the installation specification before passing it to
//     the configuration engine."

// Discover inspects an existing machine of the system's world and
// appends a fully configured machine instance for it to the partial
// specification. The resource key is matched against the machine's OS
// identifier among the registry's concrete Server subtypes.
func (s *System) Discover(p *Partial, id, machineName string) (*spec.PartialInstance, error) {
	m, ok := s.World.Machine(machineName)
	if !ok {
		return nil, fmt.Errorf("engage: no machine %q in world", machineName)
	}
	key, err := s.machineKeyForOS(m.OS)
	if err != nil {
		return nil, err
	}
	inst := p.Add(id, key).
		Set("hostname", Str(m.Hostname)).
		Set("ip", Str(m.IP))
	return inst, nil
}

// machineKeyForOS finds the concrete Server subtype whose OS identifier
// matches.
func (s *System) machineKeyForOS(os string) (Key, error) {
	sub := resource.NewSubtyper(s.Registry)
	server := resource.Key{Name: "Server"}
	for _, k := range s.Registry.Keys() {
		t := s.Registry.MustLookup(k)
		if t.Abstract || !t.IsMachine() {
			continue
		}
		if !sub.IsSubtype(k, server) {
			continue
		}
		if library.OSName(k) == os {
			return k, nil
		}
	}
	return Key{}, fmt.Errorf("engage: no machine resource type for OS %q", os)
}

// ProvisionPartial scans a partial specification for machine instances
// without host configuration details (no hostname), provisions a node
// for each from the given cloud provider, and merges the provider's
// host metadata (hostname, IP) into the instance's configuration. It
// returns the IDs of the instances it provisioned.
func (s *System) ProvisionPartial(p *Partial, provider *cloud.Provider) ([]string, error) {
	var provisioned []string
	for _, inst := range p.Instances {
		t, ok := s.Registry.Lookup(inst.Key)
		if !ok {
			return provisioned, fmt.Errorf("engage: instance %q: unknown resource type %q", inst.ID, inst.Key)
		}
		if !t.IsMachine() || inst.Inside != "" {
			continue
		}
		if _, has := inst.Config["hostname"]; has {
			continue // already configured (given set of servers)
		}
		if _, exists := s.World.Machine(inst.ID); exists {
			continue // already present in the world
		}
		m, err := s.provisionWithRetry(provider, inst.ID, library.OSName(inst.Key))
		if err != nil {
			return provisioned, fmt.Errorf("engage: provisioning %q: %w", inst.ID, err)
		}
		inst.Set("hostname", Str(m.Hostname))
		inst.Set("ip", Str(m.IP))
		provisioned = append(provisioned, inst.ID)
	}
	return provisioned, nil
}

// provisionWithRetry retries transient provisioning failures per the
// system's retry policy, charging each backoff to the world clock (a
// cloud API hiccup should not abort a whole site bring-up).
func (s *System) provisionWithRetry(provider *cloud.Provider, name, os string) (*machine.Machine, error) {
	policy := s.Retry.Resolved(s.OnFailure)
	for attempt := 1; ; attempt++ {
		m, err := provider.Provision(name, os)
		if err == nil {
			return m, nil
		}
		if attempt >= policy.MaxAttempts {
			return nil, err
		}
		s.World.Clock.Advance(policy.Wait(attempt))
	}
}
