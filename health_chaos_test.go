package engage

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"engage/internal/health"
)

// TestHealthChaosSoak drives the OpenMRS stack through a seeded sweep
// of sickness injections: daemons that keep running and keep serving
// their ports but fail their declared health probes (persistent, flap,
// or brownout — the PRNG picks per target). The health subsystem must
// detect every sick daemon as Unhealthy within FailureThreshold ×
// Interval of virtual time, the reconciler must escalate Unhealthy to
// replacement within three repair rounds, and the replaced daemons must
// re-prove themselves Healthy — all of it recorded in a trace that
// validates and accounts for every injection.
func TestHealthChaosSoak(t *testing.T) {
	const (
		interval         = 30 * time.Second // the library's declared probe interval
		failureThreshold = 3                // and its failure threshold
	)
	detectBound := failureThreshold * interval

	totalSick := 0
	kindSeen := map[string]bool{}
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			sys, err := NewSystem()
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			tr := sys.StartTrace(&buf)
			a, err := sys.ApplyStack("web", chaosPartial())
			if err != nil {
				t.Fatal(err)
			}

			// One sweep proves the fresh fleet healthy: the library
			// declares probes on its daemons (tomcat, mysql), so both are
			// tracked and must pass their first round.
			sys.World.Clock.Advance(interval)
			a.Monitor.Check()
			if got := a.Health.Tracked(); len(got) != 2 {
				t.Fatalf("tracked = %v, want the two daemons", got)
			}
			for _, ih := range a.Health.States() {
				if ih.HealthState() != health.Healthy {
					t.Fatalf("fresh %s = %s, want healthy", ih.Instance, ih.State)
				}
			}

			// Sicken daemons with seeded rules; the plan answers the
			// synthetic "check" probe from here on.
			plan := NewFaultPlan(seed).SickenWithProbability(0.7)
			sys.InjectFaults(plan)
			a.Health.Source = plan
			sick := map[string]bool{}
			for _, tgt := range a.DriftTargets() {
				if kind, ok := plan.InjectSickness(tgt, sys.World.Clock.Now()); ok {
					sick[tgt.Instance] = true
					kindSeen[kind.String()] = true
				}
			}
			totalSick += len(sick)

			// Detection: every sick daemon reaches Unhealthy within the
			// virtual bound, while its process keeps running (only probes
			// see the sickness — this is exactly what "process" and "port"
			// drift detection cannot catch).
			t0 := sys.World.Clock.Now()
			detected := map[string]bool{}
			for sweep := 0; sweep < failureThreshold && len(detected) < len(sick); sweep++ {
				sys.World.Clock.Advance(interval)
				a.Monitor.Check()
				for id := range sick {
					if st, _ := a.Health.State(id); st == health.Unhealthy && !detected[id] {
						if elapsed := sys.World.Clock.Now().Sub(t0); elapsed > detectBound {
							t.Errorf("%s detected after %v, bound %v", id, elapsed, detectBound)
						}
						detected[id] = true
					}
				}
			}
			for id := range sick {
				if !detected[id] {
					t.Errorf("sick %s not Unhealthy within %v", id, detectBound)
				}
				b := a.Stack.Bindings[id]
				m, ok := sys.World.Machine(b.Machine)
				if !ok || !m.Running(b.PID) {
					t.Errorf("sick %s daemon should still be running", id)
				}
			}

			if len(sick) > 0 {
				// Repair: Unhealthy is drift; the reconciler replaces the
				// sick daemons within three repair rounds and converges.
				pidsBefore := map[string]int{}
				for id, b := range a.Stack.Bindings {
					pidsBefore[id] = b.PID
				}
				reps, converged := a.ReconcileUntilConverged(4)
				if !converged {
					t.Fatalf("no convergence in %d rounds: %+v", len(reps), reps[len(reps)-1])
				}
				if repairRounds := len(reps) - 1; repairRounds > 3 {
					t.Errorf("took %d repair rounds, want <= 3", repairRounds)
				}
				sawHealthDrift := false
				for _, d := range reps[0].Drifts {
					if d.Kind == "health" && sick[d.Instance] {
						sawHealthDrift = true
					}
				}
				if !sawHealthDrift {
					t.Errorf("first round drifts carry no health drift: %v", reps[0].Drifts)
				}
				for id, b := range a.Stack.Bindings {
					if sick[id] && b.PID == pidsBefore[id] {
						t.Errorf("sick %s was not replaced", id)
					}
					if !sick[id] && b.PID != pidsBefore[id] {
						t.Errorf("healthy %s was replaced (pid %d -> %d)", id, pidsBefore[id], b.PID)
					}
				}

				// Re-proof: replacement cured the PID-keyed sicknesses, so
				// one more sweep takes the whole fleet back to Healthy and
				// the stack stays converged.
				sys.World.Clock.Advance(interval)
				a.Monitor.Check()
				for _, ih := range a.Health.States() {
					if ih.HealthState() != health.Healthy {
						t.Errorf("%s = %s after repair + sweep, want healthy", ih.Instance, ih.State)
					}
				}
				if left := plan.Sickened(); len(left) != 0 {
					t.Errorf("replacement should cure all sicknesses, still sick: %v", left)
				}
				if rep := a.Reconcile(); !rep.Converged() {
					t.Errorf("healed stack should stay converged: %+v", rep)
				}
			}

			if terr := tr.Err(); terr != nil {
				t.Fatalf("tracer error: %v", terr)
			}
			saveChaosTrace(t, buf.Bytes())
			trace, err := ReadTrace(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("health chaos trace does not validate: %v", err)
			}
			if faults := trace.Events("fault.inject"); len(faults) != plan.Injections() {
				t.Errorf("%d fault.inject events, plan injected %d", len(faults), plan.Injections())
			}
			if len(trace.Events("health.probe")) == 0 {
				t.Error("trace carries no health.probe events")
			}
			if len(sick) > 0 && len(trace.Events("health.transition")) == 0 {
				t.Error("trace carries no health.transition events despite sickness")
			}
		})
	}
	if totalSick == 0 {
		t.Error("sweep never injected sickness; the soak is vacuous")
	}
	for _, kind := range []string{"persistent-sick", "flap", "brownout"} {
		if !kindSeen[kind] {
			t.Errorf("sweep never drew a %s sickness", kind)
		}
	}
}
