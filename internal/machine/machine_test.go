package machine

import (
	"testing"
	"testing/quick"
	"time"
)

func world(t *testing.T) (*World, *Machine) {
	t.Helper()
	w := NewWorld()
	m, err := w.AddMachine("server", "macosx-10.6")
	if err != nil {
		t.Fatal(err)
	}
	return w, m
}

func TestClock(t *testing.T) {
	c := NewClock()
	t0 := c.Now()
	c.Advance(5 * time.Minute)
	if got := c.Since(t0); got != 5*time.Minute {
		t.Errorf("Since = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative advance should panic")
		}
	}()
	c.Advance(-time.Second)
}

func TestAddMachine(t *testing.T) {
	w, m := world(t)
	if m.OS != "macosx-10.6" || m.Hostname != "server" || m.IP == "" {
		t.Errorf("machine fields: %+v", m)
	}
	if _, err := w.AddMachine("server", "ubuntu"); err == nil {
		t.Error("duplicate machine should fail")
	}
	m2, err := w.AddMachine("other", "ubuntu-12.04")
	if err != nil {
		t.Fatal(err)
	}
	if m2.IP == m.IP {
		t.Error("machines must get distinct IPs")
	}
	names := w.Machines()
	if len(names) != 2 || names[0] != "other" || names[1] != "server" {
		t.Errorf("Machines() = %v", names)
	}
	w.Remove("other")
	if _, ok := w.Machine("other"); ok {
		t.Error("removed machine still present")
	}
}

func TestFilesystem(t *testing.T) {
	_, m := world(t)
	m.WriteFile("/etc/app.conf", "port=8080")
	if !m.Exists("/etc/app.conf") {
		t.Error("file should exist")
	}
	content, err := m.ReadFile("etc/app.conf") // path normalization
	if err != nil || content != "port=8080" {
		t.Errorf("ReadFile = %q, %v", content, err)
	}
	if _, err := m.ReadFile("/missing"); err == nil {
		t.Error("missing file should error")
	}
	m.WriteFile("/opt/app/a.txt", "a")
	m.WriteFile("/opt/app/sub/b.txt", "b")
	files := m.List("/opt/app")
	if len(files) != 2 {
		t.Errorf("List = %v", files)
	}
	if n := m.RemoveTree("/opt/app"); n != 2 {
		t.Errorf("RemoveTree removed %d", n)
	}
	if m.Exists("/opt/app/a.txt") {
		t.Error("tree removal incomplete")
	}
	m.RemoveFile("/etc/app.conf")
	if m.Exists("/etc/app.conf") {
		t.Error("RemoveFile failed")
	}
}

func TestSnapshotRestore(t *testing.T) {
	_, m := world(t)
	m.WriteFile("/data/db", "v1")
	snap := m.Snapshot()
	m.WriteFile("/data/db", "v2")
	m.WriteFile("/data/extra", "x")
	m.Restore(snap)
	content, err := m.ReadFile("/data/db")
	if err != nil || content != "v1" {
		t.Errorf("restore failed: %q %v", content, err)
	}
	if m.Exists("/data/extra") {
		t.Error("restore should drop files created after snapshot")
	}
	// Snapshot isolation: mutating after snapshot must not affect it.
	snap2 := m.Snapshot()
	m.WriteFile("/data/db", "v3")
	if snap2["/data/db"].Content != "v1" {
		t.Error("snapshot must be a deep copy")
	}
}

func TestProcessesAndPorts(t *testing.T) {
	_, m := world(t)
	p1, err := m.StartProcess("mysqld", "/usr/sbin/mysqld", 3306)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Running(p1.PID) || !m.Listening(3306) {
		t.Error("process should be running and listening")
	}
	if _, err := m.StartProcess("other", "x", 3306); err == nil {
		t.Error("port collision should fail")
	}
	if got, ok := m.FindProcess("mysqld"); !ok || got.PID != p1.PID {
		t.Error("FindProcess failed")
	}
	if err := m.StopProcess(p1.PID); err != nil {
		t.Fatal(err)
	}
	if m.Running(p1.PID) || m.Listening(3306) {
		t.Error("stop should release port")
	}
	if err := m.StopProcess(p1.PID); err == nil {
		t.Error("double stop should error")
	}
	if _, ok := m.FindProcess("mysqld"); ok {
		t.Error("dead process should not be found")
	}
	// Port now free again.
	if _, err := m.StartProcess("mysqld2", "x", 3306); err != nil {
		t.Errorf("port should be reusable: %v", err)
	}
	if len(m.Processes()) != 1 {
		t.Errorf("Processes() = %v", m.Processes())
	}
}

func TestFindProcessNewest(t *testing.T) {
	_, m := world(t)
	if _, err := m.StartProcess("worker", "w"); err != nil {
		t.Fatal(err)
	}
	p2, err := m.StartProcess("worker", "w")
	if err != nil {
		t.Fatal(err)
	}
	got, ok := m.FindProcess("worker")
	if !ok || got.PID != p2.PID {
		t.Errorf("FindProcess should return newest: got %v", got)
	}
}

func TestConnect(t *testing.T) {
	w, m := world(t)
	if w.Connect("server", 8080) {
		t.Error("nothing listening yet")
	}
	if _, err := m.StartProcess("tomcat", "catalina", 8080); err != nil {
		t.Fatal(err)
	}
	if !w.Connect("server", 8080) {
		t.Error("should connect by hostname")
	}
	if !w.Connect(m.IP, 8080) {
		t.Error("should connect by IP")
	}
	if w.Connect("localhost", 8080) {
		t.Error("localhost has no meaning at world scope")
	}
	if !m.Connect("localhost", 8080) {
		t.Error("localhost from the machine itself should reach its own port")
	}
	if !m.Connect("127.0.0.1", 8080) {
		t.Error("loopback IP from the machine itself should reach its own port")
	}
	if !m.Connect("server", 8080) {
		t.Error("a machine can connect to itself by hostname")
	}
	if w.Connect("ghost", 8080) {
		t.Error("unknown host should fail")
	}
	w2 := NewWorld()
	a, err := w2.AddMachine("a", "x")
	if err != nil {
		t.Fatal(err)
	}
	b, err := w2.AddMachine("b", "x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.StartProcess("svc", "svc", 1); err != nil {
		t.Fatal(err)
	}
	if !a.Connect("localhost", 1) {
		t.Error("localhost from a should reach a's port")
	}
	if b.Connect("localhost", 1) {
		t.Error("localhost from b must not reach a's port")
	}
	if !b.Connect("a", 1) {
		t.Error("b should reach a by hostname")
	}
}

func TestEnv(t *testing.T) {
	_, m := world(t)
	if m.Getenv("PATH") == "" {
		t.Error("default PATH missing")
	}
	m.Setenv("JAVA_HOME", "/usr/java")
	if m.Getenv("JAVA_HOME") != "/usr/java" {
		t.Error("Setenv/Getenv failed")
	}
}

func TestKillProcessForMonitoring(t *testing.T) {
	_, m := world(t)
	p, err := m.StartProcess("celery", "celery worker", 5672)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.KillProcess(p.PID); err != nil {
		t.Fatal(err)
	}
	if m.Running(p.PID) {
		t.Error("killed process should not run")
	}
	if m.Listening(5672) {
		t.Error("kill should release ports")
	}
	status, killed, ok := m.ExitInfo(p.PID)
	if !ok || !killed || status == 0 {
		t.Errorf("ExitInfo after kill = (%d, %v, %v); want non-zero killed exit", status, killed, ok)
	}
}

func TestStopProcessExitsCleanly(t *testing.T) {
	_, m := world(t)
	p, err := m.StartProcess("svc", "svc")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.StopProcess(p.PID); err != nil {
		t.Fatal(err)
	}
	status, killed, ok := m.ExitInfo(p.PID)
	if !ok || killed || status != 0 {
		t.Errorf("ExitInfo after stop = (%d, %v, %v); want clean zero exit", status, killed, ok)
	}
	if _, _, ok := m.ExitInfo(999); ok {
		t.Error("ExitInfo of an unknown pid must not report")
	}
}

// crashInjector schedules every started process to die after a fixed
// virtual-time delay (a test stand-in for the fault package, which the
// machine package cannot import).
type crashInjector struct{ delay time.Duration }

func (crashInjector) Inject(Op) error               { return nil }
func (c crashInjector) CrashDelay(Op) time.Duration { return c.delay }

func TestScheduledCrashBecomesVisibleWithClock(t *testing.T) {
	w, m := world(t)
	w.SetInjector(crashInjector{delay: 3 * time.Second})
	p, err := m.StartProcess("flaky", "flakyd", 7070)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Running(p.PID) || !m.Listening(7070) {
		t.Fatal("process should run until the clock passes its death time")
	}
	w.Clock.Advance(3 * time.Second)
	if m.Running(p.PID) {
		t.Error("overdue process should be reaped on observation")
	}
	if m.Listening(7070) {
		t.Error("reaped crash should release ports")
	}
	if got := m.Ports(); len(got) != 0 {
		t.Errorf("Ports() = %v, want none", got)
	}
}

// Property: WriteFile/ReadFile round-trips arbitrary contents at
// arbitrary cleaned paths.
func TestFileRoundTripProperty(t *testing.T) {
	_, m := world(t)
	f := func(name, content string) bool {
		if name == "" {
			name = "f"
		}
		p := "/prop/" + name
		m.WriteFile(p, content)
		got, err := m.ReadFile(p)
		return err == nil && got == content
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: starting then stopping N processes leaves all ports free.
func TestPortConservation(t *testing.T) {
	f := func(portsRaw []uint16) bool {
		w := NewWorld()
		m, _ := w.AddMachine("m", "os")
		seen := map[int]bool{}
		var pids []int
		for i, pr := range portsRaw {
			port := int(pr)%1000 + 1024
			if seen[port] {
				continue
			}
			seen[port] = true
			p, err := m.StartProcess("p", "cmd", port)
			if err != nil {
				return false
			}
			pids = append(pids, p.PID)
			if i > 8 {
				break
			}
		}
		for _, pid := range pids {
			if err := m.StopProcess(pid); err != nil {
				return false
			}
		}
		for port := range seen {
			if m.Listening(port) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
