// Package machine implements the simulated machine substrate on which
// Engage deploys. The paper deploys to real servers (local, Rackspace,
// AWS); this package provides deterministic virtual machines with a
// filesystem, a process table, a TCP port table, and environment
// variables, all sharing a simulated clock — so resource drivers perform
// the same sequence of observable effects (install files, spawn daemons,
// claim ports) and hit the same failure modes (port collisions, missing
// files, dead processes) as on real hardware, reproducibly and fast.
package machine

import (
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
	"time"
)

// Clock is a simulated clock shared by a World. All durations in the
// substrate advance this clock rather than sleeping.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// NewClock returns a clock at a fixed epoch.
func NewClock() *Clock {
	return &Clock{now: time.Date(2012, 6, 11, 0, 0, 0, 0, time.UTC)} // PLDI'12 day one
}

// Now returns the current simulated time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic("machine: clock cannot go backwards")
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Since reports the simulated time elapsed since t.
func (c *Clock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

// TimeSink receives simulated durations. The deployment engine charges
// action durations to per-instance sinks so parallel deployment can be
// modeled as critical-path time; outside a deployment, the world clock
// itself is the sink.
type TimeSink interface {
	Charge(d time.Duration)
}

// Charge implements TimeSink by advancing the clock.
func (c *Clock) Charge(d time.Duration) { c.Advance(d) }

// World is a collection of machines sharing a clock and a network.
type World struct {
	Clock *Clock

	mu       sync.Mutex
	machines map[string]*Machine
	nextIP   int
}

// NewWorld returns an empty world.
func NewWorld() *World {
	return &World{Clock: NewClock(), machines: make(map[string]*Machine), nextIP: 10}
}

// AddMachine creates a machine with the given name and OS and registers
// it on the network with a fresh IP; the hostname defaults to the name.
func (w *World) AddMachine(name, os string) (*Machine, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.machines[name]; dup {
		return nil, fmt.Errorf("machine: duplicate machine %q", name)
	}
	m := &Machine{
		Name:     name,
		OS:       os,
		Arch:     "x86_64",
		Hostname: name,
		IP:       fmt.Sprintf("10.0.0.%d", w.nextIP),
		world:    w,
		fs:       make(map[string]*File),
		procs:    make(map[int]*Process),
		ports:    make(map[int]int),
		env:      map[string]string{"PATH": "/usr/bin:/bin", "HOME": "/root"},
		nextPID:  100,
	}
	w.nextIP++
	w.machines[name] = m
	return m, nil
}

// Machine returns the machine with the given name.
func (w *World) Machine(name string) (*Machine, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	m, ok := w.machines[name]
	return m, ok
}

// Machines lists machine names in sorted order.
func (w *World) Machines() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, 0, len(w.machines))
	for n := range w.machines {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Remove deletes a machine from the world.
func (w *World) Remove(name string) {
	w.mu.Lock()
	delete(w.machines, name)
	w.mu.Unlock()
}

// Connect simulates a TCP connection to hostname:port; it reports
// whether some process on the target machine is listening.
func (w *World) Connect(hostname string, port int) bool {
	w.mu.Lock()
	var target *Machine
	for _, m := range w.machines {
		if m.Hostname == hostname || m.IP == hostname || (hostname == "localhost" && len(w.machines) == 1) {
			target = m
			break
		}
	}
	w.mu.Unlock()
	if target == nil {
		return false
	}
	return target.Listening(port)
}

// File is a file on a simulated machine.
type File struct {
	Content string
	Mode    uint32
	ModTime time.Time
}

// Process is a running (or exited) process.
type Process struct {
	PID     int
	Name    string
	Command string
	Started time.Time
	Ports   []int
	// MemMB is the process's simulated resident memory; drivers set it
	// so monitoring can report per-service resource usage.
	MemMB   int
	running bool
}

// Machine is a simulated machine.
type Machine struct {
	Name     string
	OS       string // e.g. "macosx-10.6", "ubuntu-12.04"
	Arch     string
	Hostname string
	IP       string

	world   *World
	mu      sync.Mutex
	fs      map[string]*File
	procs   map[int]*Process
	ports   map[int]int // port → pid
	env     map[string]string
	nextPID int
}

// Clock returns the world clock this machine observes.
func (m *Machine) Clock() *Clock { return m.world.Clock }

// World returns the machine's world.
func (m *Machine) World() *World { return m.world }

// --- Filesystem ---

// WriteFile creates or replaces a file.
func (m *Machine) WriteFile(p, content string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fs[cleanPath(p)] = &File{Content: content, Mode: 0o644, ModTime: m.world.Clock.Now()}
}

// ReadFile returns a file's content.
func (m *Machine) ReadFile(p string) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.fs[cleanPath(p)]
	if !ok {
		return "", fmt.Errorf("machine %s: no such file %q", m.Name, p)
	}
	return f.Content, nil
}

// Exists reports whether a file exists.
func (m *Machine) Exists(p string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.fs[cleanPath(p)]
	return ok
}

// RemoveFile deletes a file (no error if absent).
func (m *Machine) RemoveFile(p string) {
	m.mu.Lock()
	delete(m.fs, cleanPath(p))
	m.mu.Unlock()
}

// RemoveTree deletes every file under a directory prefix and returns the
// number removed.
func (m *Machine) RemoveTree(dir string) int {
	prefix := strings.TrimSuffix(cleanPath(dir), "/") + "/"
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for p := range m.fs {
		if strings.HasPrefix(p, prefix) || p == strings.TrimSuffix(prefix, "/") {
			delete(m.fs, p)
			n++
		}
	}
	return n
}

// List returns the paths under a directory prefix, sorted.
func (m *Machine) List(dir string) []string {
	prefix := strings.TrimSuffix(cleanPath(dir), "/") + "/"
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for p := range m.fs {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Snapshot returns a deep copy of the filesystem; Restore reinstates it.
// The upgrade framework uses these for backup/rollback.
func (m *Machine) Snapshot() map[string]File {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]File, len(m.fs))
	for p, f := range m.fs {
		out[p] = *f
	}
	return out
}

// Restore replaces the filesystem with a snapshot.
func (m *Machine) Restore(snap map[string]File) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fs = make(map[string]*File, len(snap))
	for p, f := range snap {
		cp := f
		m.fs[p] = &cp
	}
}

// --- Environment ---

// Setenv sets an environment variable.
func (m *Machine) Setenv(k, v string) {
	m.mu.Lock()
	m.env[k] = v
	m.mu.Unlock()
}

// Getenv reads an environment variable.
func (m *Machine) Getenv(k string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.env[k]
}

// --- Processes and ports ---

// StartProcess spawns a named daemon claiming the given TCP ports. It
// fails if any port is already claimed (the paper's "required TCP/IP
// ports are available" environment check exercises this).
func (m *Machine) StartProcess(name, command string, ports ...int) (*Process, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range ports {
		if pid, busy := m.ports[p]; busy {
			return nil, fmt.Errorf("machine %s: port %d already in use by pid %d (%s)",
				m.Name, p, pid, m.procs[pid].Name)
		}
	}
	proc := &Process{
		PID:     m.nextPID,
		Name:    name,
		Command: command,
		Started: m.world.Clock.Now(),
		Ports:   ports,
		running: true,
	}
	m.nextPID++
	m.procs[proc.PID] = proc
	for _, p := range ports {
		m.ports[p] = proc.PID
	}
	return proc, nil
}

// StopProcess terminates a process and releases its ports.
func (m *Machine) StopProcess(pid int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	proc, ok := m.procs[pid]
	if !ok || !proc.running {
		return fmt.Errorf("machine %s: no running process %d", m.Name, pid)
	}
	proc.running = false
	for _, p := range proc.Ports {
		delete(m.ports, p)
	}
	return nil
}

// KillProcess is StopProcess for failure injection: the process dies but
// is not deregistered, so monitors can observe the corpse.
func (m *Machine) KillProcess(pid int) error { return m.StopProcess(pid) }

// SetUsage records a running process's simulated memory footprint.
func (m *Machine) SetUsage(pid, memMB int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.procs[pid]
	if !ok || !p.running {
		return fmt.Errorf("machine %s: no running process %d", m.Name, pid)
	}
	p.MemMB = memMB
	return nil
}

// TotalMemMB sums the memory of all running processes.
func (m *Machine) TotalMemMB() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	total := 0
	for _, p := range m.procs {
		if p.running {
			total += p.MemMB
		}
	}
	return total
}

// FindProcess returns the newest running process with the given name.
func (m *Machine) FindProcess(name string) (*Process, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var best *Process
	for _, p := range m.procs {
		if p.Name == name && p.running && (best == nil || p.PID > best.PID) {
			best = p
		}
	}
	return best, best != nil
}

// Running reports whether the process with the given PID is running.
func (m *Machine) Running(pid int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.procs[pid]
	return ok && p.running
}

// Processes returns the running processes sorted by PID.
func (m *Machine) Processes() []*Process {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []*Process
	for _, p := range m.procs {
		if p.running {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

// Listening reports whether some process has claimed the port.
func (m *Machine) Listening(port int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.ports[port]
	return ok
}

// PortFree reports whether a port is unclaimed.
func (m *Machine) PortFree(port int) bool { return !m.Listening(port) }

func cleanPath(p string) string {
	cp := path.Clean("/" + strings.TrimPrefix(p, "/"))
	return cp
}
