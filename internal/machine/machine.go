// Package machine implements the simulated machine substrate on which
// Engage deploys. The paper deploys to real servers (local, Rackspace,
// AWS); this package provides deterministic virtual machines with a
// filesystem, a process table, a TCP port table, and environment
// variables, all sharing a simulated clock — so resource drivers perform
// the same sequence of observable effects (install files, spawn daemons,
// claim ports) and hit the same failure modes (port collisions, missing
// files, dead processes) as on real hardware, reproducibly and fast.
package machine

import (
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
	"time"

	"engage/internal/telemetry"
)

// Clock is a simulated clock shared by a World. All durations in the
// substrate advance this clock rather than sleeping.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// NewClock returns a clock at a fixed epoch.
func NewClock() *Clock {
	return &Clock{now: time.Date(2012, 6, 11, 0, 0, 0, 0, time.UTC)} // PLDI'12 day one
}

// Now returns the current simulated time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic("machine: clock cannot go backwards")
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Since reports the simulated time elapsed since t.
func (c *Clock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

// TimeSink receives simulated durations. The deployment engine charges
// action durations to per-instance sinks so parallel deployment can be
// modeled as critical-path time; outside a deployment, the world clock
// itself is the sink.
type TimeSink interface {
	Charge(d time.Duration)
}

// Charge implements TimeSink by advancing the clock.
func (c *Clock) Charge(d time.Duration) { c.Advance(d) }

// OpKind names a class of fallible substrate operation that fault
// injection can intercept.
type OpKind string

// The injectable operation kinds.
const (
	OpStartProcess OpKind = "start-process" // Name = process name, Port = first claimed port
	OpWriteFile    OpKind = "write-file"    // Name = file path
	OpConnect      OpKind = "connect"       // Name = target hostname, Port = target port
	OpPkgInstall   OpKind = "pkg-install"   // Name = package name
	OpProvision    OpKind = "provision"     // Name = node name (cloud provisioning)
)

// Op describes one fallible substrate operation presented to an
// Injector. Machine is the name of the machine performing the operation
// ("" for world-level operations with no originating machine).
type Op struct {
	Kind    OpKind
	Machine string
	Name    string
	Port    int
}

func (op Op) String() string {
	s := string(op.Kind)
	if op.Machine != "" {
		s += " on " + op.Machine
	}
	if op.Name != "" {
		s += " (" + op.Name + ")"
	}
	if op.Port != 0 {
		s += fmt.Sprintf(" port %d", op.Port)
	}
	return s
}

// Injector decides the fate of substrate operations; the fault package
// provides a deterministic, seeded implementation. Implementations must
// not call back into the World or Machine they are attached to (they
// are consulted under substrate locks).
type Injector interface {
	// Inject returns a non-nil error to make the operation fail.
	Inject(op Op) error
	// CrashDelay is consulted after a successful OpStartProcess; a
	// positive duration schedules the new process to crash after that
	// much virtual time.
	CrashDelay(op Op) time.Duration
}

// World is a collection of machines sharing a clock and a network.
type World struct {
	Clock *Clock

	mu       sync.Mutex
	machines map[string]*Machine
	nextIP   int

	injMu    sync.RWMutex
	injector Injector

	trMu   sync.RWMutex
	tracer *telemetry.Tracer
}

// SetTracer attaches a tracer that records world-level events — machine
// provisioning and process crashes — stamped with the virtual clock;
// nil detaches it.
func (w *World) SetTracer(tr *telemetry.Tracer) {
	w.trMu.Lock()
	w.tracer = tr
	w.trMu.Unlock()
}

// Tracer returns the attached tracer (nil if none).
func (w *World) Tracer() *telemetry.Tracer {
	w.trMu.RLock()
	defer w.trMu.RUnlock()
	return w.tracer
}

// SetInjector attaches a fault injector consulted by machine and world
// operations; nil detaches it.
func (w *World) SetInjector(inj Injector) {
	w.injMu.Lock()
	w.injector = inj
	w.injMu.Unlock()
}

// Injector returns the attached fault injector (nil if none).
func (w *World) Injector() Injector {
	w.injMu.RLock()
	defer w.injMu.RUnlock()
	return w.injector
}

// NewWorld returns an empty world.
func NewWorld() *World {
	return &World{Clock: NewClock(), machines: make(map[string]*Machine), nextIP: 10}
}

// AddMachine creates a machine with the given name and OS and registers
// it on the network with a fresh IP; the hostname defaults to the name.
func (w *World) AddMachine(name, os string) (*Machine, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.machines[name]; dup {
		return nil, fmt.Errorf("machine: duplicate machine %q", name)
	}
	m := &Machine{
		Name:     name,
		OS:       os,
		Arch:     "x86_64",
		Hostname: name,
		IP:       fmt.Sprintf("10.0.0.%d", w.nextIP),
		world:    w,
		fs:       make(map[string]*File),
		procs:    make(map[int]*Process),
		ports:    make(map[int]int),
		env:      map[string]string{"PATH": "/usr/bin:/bin", "HOME": "/root"},
		nextPID:  100,
	}
	w.nextIP++
	w.machines[name] = m
	if tr := w.Tracer(); tr != nil {
		tr.Event("machine.provision").
			Str("machine", name).Str("os", os).Str("ip", m.IP).Emit()
	}
	return m, nil
}

// Machine returns the machine with the given name.
func (w *World) Machine(name string) (*Machine, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	m, ok := w.machines[name]
	return m, ok
}

// Machines lists machine names in sorted order.
func (w *World) Machines() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, 0, len(w.machines))
	for n := range w.machines {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Remove deletes a machine from the world.
func (w *World) Remove(name string) {
	w.mu.Lock()
	delete(w.machines, name)
	w.mu.Unlock()
}

// Connect simulates a TCP connection to hostname:port from outside the
// world (an external observer); it reports whether some process on the
// target machine is listening. Loopback names ("localhost", "127.0.0.1")
// do not resolve at world scope — they are caller-relative; use
// Machine.Connect for connections originating on a machine.
func (w *World) Connect(hostname string, port int) bool {
	return w.connectFrom(nil, hostname, port)
}

// Connect simulates a TCP connection from this machine to
// hostname:port. Loopback names ("localhost", "127.0.0.1") and the
// machine's own hostname or IP resolve to the machine itself, so
// connectivity checks in multi-machine worlds are scoped to the caller
// rather than guessing a target globally.
func (m *Machine) Connect(hostname string, port int) bool {
	return m.world.connectFrom(m, hostname, port)
}

func isLoopback(host string) bool { return host == "localhost" || host == "127.0.0.1" }

func (w *World) connectFrom(from *Machine, hostname string, port int) bool {
	if inj := w.Injector(); inj != nil {
		fromName := ""
		if from != nil {
			fromName = from.Name
		}
		if err := inj.Inject(Op{Kind: OpConnect, Machine: fromName, Name: hostname, Port: port}); err != nil {
			return false
		}
	}
	var target *Machine
	if from != nil && (isLoopback(hostname) || hostname == from.Hostname || hostname == from.IP) {
		target = from
	} else if !isLoopback(hostname) {
		w.mu.Lock()
		for _, m := range w.machines {
			if m.Hostname == hostname || m.IP == hostname {
				target = m
				break
			}
		}
		w.mu.Unlock()
	}
	if target == nil {
		return false
	}
	return target.Listening(port)
}

// File is a file on a simulated machine.
type File struct {
	Content string
	Mode    uint32
	ModTime time.Time
}

// Process is a running (or exited) process.
type Process struct {
	PID     int
	Name    string
	Command string
	Started time.Time
	Ports   []int
	// MemMB is the process's simulated resident memory; drivers set it
	// so monitoring can report per-service resource usage.
	MemMB int
	// ExitStatus is the exit status once the process has died: 0 for a
	// clean stop, non-zero for a crash (kill or scheduled fault).
	ExitStatus int
	// Killed reports that the process died by crash rather than a clean
	// StopProcess; monitors use it to distinguish the two.
	Killed  bool
	running bool
	// diesAt schedules a fault-injected crash in virtual time (zero =
	// never); the machine reaps overdue processes lazily on every
	// process-table observation.
	diesAt time.Time
}

// crashExitStatus is the exit status of killed processes (128+SIGKILL,
// as a POSIX shell would report it).
const crashExitStatus = 137

// Machine is a simulated machine.
type Machine struct {
	Name     string
	OS       string // e.g. "macosx-10.6", "ubuntu-12.04"
	Arch     string
	Hostname string
	IP       string

	world   *World
	mu      sync.Mutex
	fs      map[string]*File
	procs   map[int]*Process
	ports   map[int]int // port → pid
	env     map[string]string
	nextPID int
}

// Clock returns the world clock this machine observes.
func (m *Machine) Clock() *Clock { return m.world.Clock }

// World returns the machine's world.
func (m *Machine) World() *World { return m.world }

// Inject consults the world's fault injector for an operation performed
// by this machine (filling in the machine name); nil injector means no
// failure. Substrate operations call it themselves; it is exported so
// higher layers (package manager, cloud) can present their own
// operation kinds through the same hook.
func (m *Machine) Inject(op Op) error {
	inj := m.world.Injector()
	if inj == nil {
		return nil
	}
	op.Machine = m.Name
	return inj.Inject(op)
}

// --- Filesystem ---

// WriteFile creates or replaces a file. It is fallible: an attached
// fault injector can make it fail (disk errors), in which case the
// filesystem is unchanged.
func (m *Machine) WriteFile(p, content string) error {
	if err := m.Inject(Op{Kind: OpWriteFile, Name: p}); err != nil {
		return fmt.Errorf("machine %s: write %s: %w", m.Name, p, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fs[cleanPath(p)] = &File{Content: content, Mode: 0o644, ModTime: m.world.Clock.Now()}
	return nil
}

// ReadFile returns a file's content.
func (m *Machine) ReadFile(p string) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.fs[cleanPath(p)]
	if !ok {
		return "", fmt.Errorf("machine %s: no such file %q", m.Name, p)
	}
	return f.Content, nil
}

// Exists reports whether a file exists.
func (m *Machine) Exists(p string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.fs[cleanPath(p)]
	return ok
}

// RemoveFile deletes a file (no error if absent).
func (m *Machine) RemoveFile(p string) {
	m.mu.Lock()
	delete(m.fs, cleanPath(p))
	m.mu.Unlock()
}

// RemoveTree deletes every file under a directory prefix and returns the
// number removed.
func (m *Machine) RemoveTree(dir string) int {
	prefix := strings.TrimSuffix(cleanPath(dir), "/") + "/"
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for p := range m.fs {
		if strings.HasPrefix(p, prefix) || p == strings.TrimSuffix(prefix, "/") {
			delete(m.fs, p)
			n++
		}
	}
	return n
}

// List returns the paths under a directory prefix, sorted.
func (m *Machine) List(dir string) []string {
	prefix := strings.TrimSuffix(cleanPath(dir), "/") + "/"
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for p := range m.fs {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Snapshot returns a deep copy of the filesystem; Restore reinstates it.
// The upgrade framework uses these for backup/rollback.
func (m *Machine) Snapshot() map[string]File {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]File, len(m.fs))
	for p, f := range m.fs {
		out[p] = *f
	}
	return out
}

// Restore replaces the filesystem with a snapshot.
func (m *Machine) Restore(snap map[string]File) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fs = make(map[string]*File, len(snap))
	for p, f := range snap {
		cp := f
		m.fs[p] = &cp
	}
}

// --- Environment ---

// Setenv sets an environment variable.
func (m *Machine) Setenv(k, v string) {
	m.mu.Lock()
	m.env[k] = v
	m.mu.Unlock()
}

// Getenv reads an environment variable.
func (m *Machine) Getenv(k string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.env[k]
}

// --- Processes and ports ---

// crashLocked marks a running process crashed: non-zero exit status,
// killed flag set, ports released. Caller holds m.mu.
func (m *Machine) crashLocked(proc *Process) {
	proc.running = false
	proc.Killed = true
	proc.ExitStatus = crashExitStatus
	for _, p := range proc.Ports {
		if m.ports[p] == proc.PID {
			delete(m.ports, p)
		}
	}
	if tr := m.world.Tracer(); tr != nil {
		ev := tr.Event("process.crash").
			Str("machine", m.Name).Str("process", proc.Name).Int("pid", int64(proc.PID))
		// Fault-injected crashes happened at their scheduled death time,
		// which may be earlier than the clock instant that observed them.
		if !proc.diesAt.IsZero() {
			ev.At(proc.diesAt).Bool("injected", true)
		}
		ev.Emit()
	}
}

// reapLocked crashes every running process whose scheduled
// fault-injection death time has passed in virtual time. Caller holds
// m.mu; every process-table observation calls it first, so crashes
// become visible exactly when the clock reaches them.
func (m *Machine) reapLocked() {
	now := m.world.Clock.Now()
	for _, p := range m.procs {
		if p.running && !p.diesAt.IsZero() && !p.diesAt.After(now) {
			m.crashLocked(p)
		}
	}
}

// StartProcess spawns a named daemon claiming the given TCP ports. It
// fails if any port is already claimed (the paper's "required TCP/IP
// ports are available" environment check exercises this) or if an
// attached fault injector fails the spawn.
func (m *Machine) StartProcess(name, command string, ports ...int) (*Process, error) {
	op := Op{Kind: OpStartProcess, Name: name}
	if len(ports) > 0 {
		op.Port = ports[0]
	}
	if err := m.Inject(op); err != nil {
		return nil, fmt.Errorf("machine %s: start %s: %w", m.Name, name, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reapLocked()
	for _, p := range ports {
		if pid, busy := m.ports[p]; busy {
			return nil, fmt.Errorf("machine %s: port %d already in use by pid %d (%s)",
				m.Name, p, pid, m.procs[pid].Name)
		}
	}
	proc := &Process{
		PID:     m.nextPID,
		Name:    name,
		Command: command,
		Started: m.world.Clock.Now(),
		Ports:   ports,
		running: true,
	}
	if inj := m.world.Injector(); inj != nil {
		op.Machine = m.Name
		if d := inj.CrashDelay(op); d > 0 {
			proc.diesAt = proc.Started.Add(d)
		}
	}
	m.nextPID++
	m.procs[proc.PID] = proc
	for _, p := range ports {
		m.ports[p] = proc.PID
	}
	return proc, nil
}

// StopProcess cleanly terminates a process (exit status 0) and releases
// its ports.
func (m *Machine) StopProcess(pid int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reapLocked()
	proc, ok := m.procs[pid]
	if !ok || !proc.running {
		return fmt.Errorf("machine %s: no running process %d", m.Name, pid)
	}
	proc.running = false
	proc.ExitStatus = 0
	for _, p := range proc.Ports {
		delete(m.ports, p)
	}
	return nil
}

// KillProcess crashes a process for failure injection: it dies with a
// non-zero exit status and its killed flag set, releasing its ports, and
// stays in the process table so monitors can observe the corpse and
// distinguish the crash from a clean stop.
func (m *Machine) KillProcess(pid int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reapLocked()
	proc, ok := m.procs[pid]
	if !ok || !proc.running {
		return fmt.Errorf("machine %s: no running process %d", m.Name, pid)
	}
	m.crashLocked(proc)
	return nil
}

// ExitInfo reports how a dead process exited. ok is false for unknown
// PIDs and for processes still running.
func (m *Machine) ExitInfo(pid int) (exitStatus int, killed bool, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reapLocked()
	p, found := m.procs[pid]
	if !found || p.running {
		return 0, false, false
	}
	return p.ExitStatus, p.Killed, true
}

// SetUsage records a running process's simulated memory footprint.
func (m *Machine) SetUsage(pid, memMB int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reapLocked()
	p, ok := m.procs[pid]
	if !ok || !p.running {
		return fmt.Errorf("machine %s: no running process %d", m.Name, pid)
	}
	p.MemMB = memMB
	return nil
}

// TotalMemMB sums the memory of all running processes.
func (m *Machine) TotalMemMB() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reapLocked()
	total := 0
	for _, p := range m.procs {
		if p.running {
			total += p.MemMB
		}
	}
	return total
}

// FindProcess returns the newest running process with the given name.
func (m *Machine) FindProcess(name string) (*Process, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reapLocked()
	var best *Process
	for _, p := range m.procs {
		if p.Name == name && p.running && (best == nil || p.PID > best.PID) {
			best = p
		}
	}
	return best, best != nil
}

// Running reports whether the process with the given PID is running.
func (m *Machine) Running(pid int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reapLocked()
	p, ok := m.procs[pid]
	return ok && p.running
}

// Processes returns the running processes sorted by PID.
func (m *Machine) Processes() []*Process {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reapLocked()
	var out []*Process
	for _, p := range m.procs {
		if p.running {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

// Listening reports whether some process has claimed the port.
func (m *Machine) Listening(port int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reapLocked()
	_, ok := m.ports[port]
	return ok
}

// PortFree reports whether a port is unclaimed.
func (m *Machine) PortFree(port int) bool { return !m.Listening(port) }

// Ports returns the claimed TCP ports, sorted; chaos tests use it to
// assert that rollback leaves no orphaned claims.
func (m *Machine) Ports() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reapLocked()
	out := make([]int, 0, len(m.ports))
	for p := range m.ports {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

func cleanPath(p string) string {
	cp := path.Clean("/" + strings.TrimPrefix(p, "/"))
	return cp
}
