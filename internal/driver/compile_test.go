package driver

import (
	"strings"
	"testing"

	"engage/internal/resource"
)

func fig3Spec() *resource.DriverSpec {
	return &resource.DriverSpec{
		States: []string{"uninstalled", "inactive", "active"},
		Transitions: []resource.DriverTransition{
			{Name: "install", From: "uninstalled", To: "inactive", Action: "install"},
			{Name: "start", From: "inactive", To: "active",
				Guards: []resource.DriverGuard{{Up: true, State: "active"}}, Action: "start"},
			{Name: "stop", From: "active", To: "inactive",
				Guards: []resource.DriverGuard{{Up: false, State: "inactive"}}, Action: "stop"},
			{Name: "uninstall", From: "inactive", To: "uninstalled", Action: "noop"},
		},
	}
}

func TestCompileSpecFig3(t *testing.T) {
	ran := map[string]int{}
	actions := Actions{
		"install": func(*Context) error { ran["install"]++; return nil },
		"start":   func(*Context) error { ran["start"]++; return nil },
		"stop":    func(*Context) error { ran["stop"]++; return nil },
	}
	sm, err := CompileSpec(fig3Spec(), actions)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDriver(sm, testCtx(t))
	env := fakeEnv{up: []State{Active}, down: []State{Inactive}}
	for _, a := range []string{"install", "start", "stop", "uninstall"} {
		if err := d.Fire(a, env); err != nil {
			t.Fatalf("Fire(%q): %v", a, err)
		}
	}
	if d.State() != Uninstalled {
		t.Errorf("final state = %v", d.State())
	}
	if ran["install"] != 1 || ran["start"] != 1 || ran["stop"] != 1 {
		t.Errorf("actions ran = %v", ran)
	}
}

func TestCompileSpecGuardSemantics(t *testing.T) {
	sm, err := CompileSpec(fig3Spec(), Actions{
		"install": nil, "start": nil, "stop": nil,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDriver(sm, testCtx(t))
	if err := d.Fire("install", fakeEnv{}); err != nil {
		t.Fatal(err)
	}
	if err := d.Fire("start", fakeEnv{up: []State{Inactive}}); err == nil {
		t.Error("↑active guard should block")
	}
	if err := d.Fire("start", fakeEnv{up: []State{Active}}); err != nil {
		t.Error(err)
	}
}

func TestCompileSpecImpliesBasicStates(t *testing.T) {
	spec := &resource.DriverSpec{
		Transitions: []resource.DriverTransition{
			{Name: "install", From: "uninstalled", To: "active"},
		},
	}
	sm, err := CompileSpec(spec, Actions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sm.States) != 3 {
		t.Errorf("basic states should be implied: %v", sm.States)
	}
}

func TestCompileSpecErrors(t *testing.T) {
	if _, err := CompileSpec(nil, Actions{}); err == nil {
		t.Error("nil spec should error")
	}
	dup := &resource.DriverSpec{States: []string{"active", "active"}}
	if _, err := CompileSpec(dup, Actions{}); err == nil {
		t.Error("duplicate state should error")
	}
	unknown := &resource.DriverSpec{
		Transitions: []resource.DriverTransition{
			{Name: "install", From: "uninstalled", To: "active", Action: "conjure"},
		},
	}
	if _, err := CompileSpec(unknown, Actions{}); err == nil ||
		!strings.Contains(err.Error(), "unknown action") {
		t.Errorf("unknown action should error: %v", err)
	}
	unreachable := &resource.DriverSpec{
		Transitions: []resource.DriverTransition{
			{Name: "stop", From: "active", To: "inactive"},
		},
	}
	if _, err := CompileSpec(unreachable, Actions{}); err == nil {
		t.Error("unreachable active should fail validation")
	}
}
