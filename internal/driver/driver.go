// Package driver implements Engage resource drivers (§5.1 of the
// paper): state machines that manage the lifecycle of resource
// instances. A driver is a state machine (Q, uninstalled, inactive,
// active, A, δ) with guarded actions between states; guards are
// conjunctions of basic-state predicates ↑s ("all upstream dependencies
// are in state s") and ↓s ("all downstream dependents are in state s").
// Actions are implemented in the host language (Go here, Python in the
// paper) and mutate the simulated machine.
package driver

import (
	"fmt"
	"sort"
	"time"

	"engage/internal/machine"
	"engage/internal/pkgmgr"
	"engage/internal/spec"
)

// State is a driver state. Drivers may define extra states, but every
// driver includes the three basic states.
type State string

// The basic states (§5.1).
const (
	Uninstalled State = "uninstalled"
	Inactive    State = "inactive"
	Active      State = "active"
)

// Direction selects which neighbours a basic-state predicate ranges
// over.
type Direction int

// Predicate directions.
const (
	Upstream   Direction = iota // ↑s: all instances this one depends on
	Downstream                  // ↓s: all instances depending on this one
)

func (d Direction) String() string {
	if d == Upstream {
		return "↑"
	}
	return "↓"
}

// Pred is a basic-state predicate: ↑s or ↓s.
type Pred struct {
	Dir   Direction
	State State
}

// String renders e.g. "↑active".
func (p Pred) String() string { return p.Dir.String() + string(p.State) }

// Guard is a conjunction of predicates; the empty guard is true.
type Guard []Pred

// String renders the guard.
func (g Guard) String() string {
	if len(g) == 0 {
		return "true"
	}
	s := ""
	for i, p := range g {
		if i > 0 {
			s += " ∧ "
		}
		s += p.String()
	}
	return s
}

// GuardEnv supplies the neighbour states needed to evaluate guards; the
// deployment engine implements it.
type GuardEnv interface {
	// NeighbourStates returns the states of the instance's upstream
	// dependencies or downstream dependents.
	NeighbourStates(id string, dir Direction) []State
}

// rank orders the basic states: uninstalled < inactive < active.
// Non-basic states have no rank.
func rank(s State) (int, bool) {
	switch s {
	case Uninstalled:
		return 0, true
	case Inactive:
		return 1, true
	case Active:
		return 2, true
	default:
		return 0, false
	}
}

// holds evaluates one predicate against one neighbour state. Basic-state
// predicates use ordering semantics: ↑s holds when every upstream state
// is at least s, ↓s when every downstream state is at most s. (Fig. 3's
// stop guard ↓inactive thus accepts uninstalled dependents — a dependent
// that is not even installed certainly is not using the service.)
// Predicates over non-basic states require exact equality.
func (p Pred) holds(s State) bool {
	ps, pok := rank(p.State)
	ss, sok := rank(s)
	if !pok || !sok {
		return s == p.State
	}
	if p.Dir == Upstream {
		return ss >= ps
	}
	return ss <= ps
}

// Holds reports whether the guard holds for instance id under env.
func (g Guard) Holds(id string, env GuardEnv) bool {
	for _, p := range g {
		for _, s := range env.NeighbourStates(id, p.Dir) {
			if !p.holds(s) {
				return false
			}
		}
	}
	return true
}

// Context is the runtime context handed to driver actions: the instance
// being managed (with its propagated port values), its machine, the
// machine's package manager, and a scratch store persisted across
// actions (e.g., daemon PIDs).
type Context struct {
	Instance *spec.Instance
	Machine  *machine.Machine
	PkgMgr   *pkgmgr.Manager
	Scratch  map[string]any
	// Sink receives the simulated durations of driver work (service
	// start-up, configuration, migrations); nil charges the world clock.
	Sink machine.TimeSink
}

// Charge records simulated time spent by a driver action.
func (c *Context) Charge(d time.Duration) {
	if c.Sink != nil {
		c.Sink.Charge(d)
		return
	}
	c.Machine.Clock().Advance(d)
}

// PutPID stores a daemon PID under a name.
func (c *Context) PutPID(name string, pid int) { c.Scratch["pid:"+name] = pid }

// PID retrieves a stored daemon PID.
func (c *Context) PID(name string) (int, bool) {
	v, ok := c.Scratch["pid:"+name]
	if !ok {
		return 0, false
	}
	pid, ok := v.(int)
	return pid, ok
}

// ActionFunc is the implementation of a guarded action.
type ActionFunc func(*Context) error

// Action is a guarded transition of a driver state machine.
type Action struct {
	Name  string
	From  State
	To    State
	Guard Guard
	Run   ActionFunc // nil = bookkeeping-only transition
}

// StateMachine describes a driver: its states and guarded actions. The
// same description is shared by every instance of a resource type; each
// instance gets its own Driver.
type StateMachine struct {
	States  []State
	Actions []Action
}

// Validate checks the machine: the basic states are present, every
// action connects declared states, action names are unique per source
// state, and active is reachable from uninstalled.
func (sm *StateMachine) Validate() error {
	have := make(map[State]bool, len(sm.States))
	for _, s := range sm.States {
		have[s] = true
	}
	for _, b := range []State{Uninstalled, Inactive, Active} {
		if !have[b] {
			return fmt.Errorf("driver: state machine missing basic state %q", b)
		}
	}
	seen := make(map[string]bool)
	for _, a := range sm.Actions {
		if !have[a.From] || !have[a.To] {
			return fmt.Errorf("driver: action %q connects undeclared states %q → %q", a.Name, a.From, a.To)
		}
		k := string(a.From) + "/" + a.Name
		if seen[k] {
			return fmt.Errorf("driver: duplicate action %q from state %q", a.Name, a.From)
		}
		seen[k] = true
	}
	if sm.PathTo(Uninstalled, Active) == nil {
		return fmt.Errorf("driver: active unreachable from uninstalled")
	}
	return nil
}

// PathTo returns the names of a shortest action sequence from one state
// to another (BFS over transitions, ignoring guards), or nil if
// unreachable. An empty non-nil slice means from == to.
func (sm *StateMachine) PathTo(from, to State) []string {
	if from == to {
		return []string{}
	}
	type hop struct {
		state State
		via   []string
	}
	visited := map[State]bool{from: true}
	queue := []hop{{state: from}}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		for _, a := range sm.Actions {
			if a.From != h.state || visited[a.To] {
				continue
			}
			via := append(append([]string(nil), h.via...), a.Name)
			if a.To == to {
				return via
			}
			visited[a.To] = true
			queue = append(queue, hop{state: a.To, via: via})
		}
	}
	return nil
}

// find returns the action with the given name leaving the given state.
func (sm *StateMachine) find(from State, name string) (Action, bool) {
	for _, a := range sm.Actions {
		if a.From == from && a.Name == name {
			return a, true
		}
	}
	return Action{}, false
}

// ActionNames lists distinct action names, sorted; for introspection.
func (sm *StateMachine) ActionNames() []string {
	set := make(map[string]bool)
	for _, a := range sm.Actions {
		set[a.Name] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Driver is a state machine instance bound to a resource instance's
// runtime context.
type Driver struct {
	SM  *StateMachine
	Ctx *Context
	cur State
}

// NewDriver returns a driver in the initial uninstalled state.
func NewDriver(sm *StateMachine, ctx *Context) *Driver {
	if ctx.Scratch == nil {
		ctx.Scratch = make(map[string]any)
	}
	return &Driver{SM: sm, Ctx: ctx, cur: Uninstalled}
}

// State returns the current state.
func (d *Driver) State() State { return d.cur }

// SetState forces the state; used by the upgrade framework when
// adopting an already-deployed instance.
func (d *Driver) SetState(s State) { d.cur = s }

// BlockedError reports a transition whose guard does not (yet) hold.
type BlockedError struct {
	ID     string
	Action string
	Guard  Guard
}

func (e *BlockedError) Error() string {
	return fmt.Sprintf("driver: instance %q: action %q blocked on guard %s", e.ID, e.Action, e.Guard)
}

// Fire executes the named action from the current state. If the guard
// does not hold it returns a *BlockedError without running the action
// (the paper's semantics: "the transition blocks until the guard
// becomes true" — the deployment engine retries).
func (d *Driver) Fire(name string, env GuardEnv) error {
	a, ok := d.SM.find(d.cur, name)
	if !ok {
		return fmt.Errorf("driver: instance %q: no action %q from state %q", d.Ctx.Instance.ID, name, d.cur)
	}
	if !a.Guard.Holds(d.Ctx.Instance.ID, env) {
		return &BlockedError{ID: d.Ctx.Instance.ID, Action: name, Guard: a.Guard}
	}
	if a.Run != nil {
		if err := a.Run(d.Ctx); err != nil {
			return fmt.Errorf("driver: instance %q: action %q: %w", d.Ctx.Instance.ID, name, err)
		}
	}
	d.cur = a.To
	return nil
}

// --- Standard machine shapes ---

// ServiceMachine builds the Fig. 3 state machine: install takes
// uninstalled→inactive; start takes inactive→active guarded on ↑active;
// stop takes active→inactive guarded on ↓inactive; restart loops on
// active; uninstall takes inactive→uninstalled.
func ServiceMachine(install, start, stop, restart, uninstall ActionFunc) *StateMachine {
	return &StateMachine{
		States: []State{Uninstalled, Inactive, Active},
		Actions: []Action{
			{Name: "install", From: Uninstalled, To: Inactive, Run: install},
			{Name: "start", From: Inactive, To: Active, Guard: Guard{{Upstream, Active}}, Run: start},
			{Name: "stop", From: Active, To: Inactive, Guard: Guard{{Downstream, Inactive}}, Run: stop},
			{Name: "restart", From: Active, To: Active, Run: restart},
			{Name: "uninstall", From: Inactive, To: Uninstalled, Run: uninstall},
		},
	}
}

// LibraryMachine builds the degenerate machine for passive resources
// (libraries, language runtimes, data files) where inactive and active
// coincide operationally: install goes straight to active (guarded on
// upstream active so containers are ready), and stop is a free
// transition so shutdown can pass through.
func LibraryMachine(install, uninstall ActionFunc) *StateMachine {
	return &StateMachine{
		States: []State{Uninstalled, Inactive, Active},
		Actions: []Action{
			{Name: "install", From: Uninstalled, To: Active, Guard: Guard{{Upstream, Active}}, Run: install},
			{Name: "stop", From: Active, To: Inactive, Guard: Guard{{Downstream, Inactive}}},
			{Name: "start", From: Inactive, To: Active, Guard: Guard{{Upstream, Active}}},
			{Name: "uninstall", From: Inactive, To: Uninstalled, Run: uninstall},
		},
	}
}

// MachineMachine builds the machine for machine resources (servers):
// they are "installed" by provisioning, which the runtime performs
// before deployment, so install and start are free transitions.
func MachineMachine() *StateMachine {
	return &StateMachine{
		States: []State{Uninstalled, Inactive, Active},
		Actions: []Action{
			{Name: "install", From: Uninstalled, To: Inactive},
			{Name: "start", From: Inactive, To: Active},
			{Name: "stop", From: Active, To: Inactive, Guard: Guard{{Downstream, Inactive}}},
			{Name: "uninstall", From: Inactive, To: Uninstalled},
		},
	}
}
