package driver

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"engage/internal/machine"
	"engage/internal/resource"
	"engage/internal/spec"
)

// fakeEnv supplies fixed neighbour states.
type fakeEnv struct {
	up   []State
	down []State
}

func (f fakeEnv) NeighbourStates(_ string, dir Direction) []State {
	if dir == Upstream {
		return f.up
	}
	return f.down
}

func testCtx(t *testing.T) *Context {
	t.Helper()
	w := machine.NewWorld()
	m, err := w.AddMachine("server", "macosx-10.6")
	if err != nil {
		t.Fatal(err)
	}
	return &Context{
		Instance: &spec.Instance{ID: "tomcat", Key: resource.MakeKey("Tomcat", "6.0.18")},
		Machine:  m,
	}
}

func TestFig3Lifecycle(t *testing.T) {
	var log []string
	record := func(name string) ActionFunc {
		return func(*Context) error {
			log = append(log, name)
			return nil
		}
	}
	sm := ServiceMachine(record("install"), record("start"), record("stop"), record("restart"), record("uninstall"))
	if err := sm.Validate(); err != nil {
		t.Fatal(err)
	}
	d := NewDriver(sm, testCtx(t))
	env := fakeEnv{up: []State{Active}, down: []State{Inactive}}

	if d.State() != Uninstalled {
		t.Fatalf("initial state = %v", d.State())
	}
	steps := []struct {
		action string
		want   State
	}{
		{"install", Inactive},
		{"start", Active},
		{"restart", Active},
		{"stop", Inactive},
		{"start", Active},
		{"stop", Inactive},
		{"uninstall", Uninstalled},
	}
	for _, s := range steps {
		if err := d.Fire(s.action, env); err != nil {
			t.Fatalf("Fire(%q): %v", s.action, err)
		}
		if d.State() != s.want {
			t.Fatalf("after %q state = %v, want %v", s.action, d.State(), s.want)
		}
	}
	want := "install,start,restart,stop,start,stop,uninstall"
	if got := strings.Join(log, ","); got != want {
		t.Errorf("action log = %s, want %s", got, want)
	}
}

func TestStartBlockedUntilUpstreamActive(t *testing.T) {
	sm := ServiceMachine(nil, nil, nil, nil, nil)
	d := NewDriver(sm, testCtx(t))
	if err := d.Fire("install", fakeEnv{}); err != nil {
		t.Fatal(err)
	}
	// Upstream not yet active: start must block.
	err := d.Fire("start", fakeEnv{up: []State{Inactive}})
	var blocked *BlockedError
	if !errors.As(err, &blocked) {
		t.Fatalf("expected BlockedError, got %v", err)
	}
	if blocked.Action != "start" || !strings.Contains(blocked.Error(), "↑active") {
		t.Errorf("blocked error = %v", blocked)
	}
	if d.State() != Inactive {
		t.Error("blocked action must not change state")
	}
	// Once upstream is active the same action fires.
	if err := d.Fire("start", fakeEnv{up: []State{Active, Active}}); err != nil {
		t.Fatal(err)
	}
	if d.State() != Active {
		t.Error("start should reach active")
	}
}

func TestStopBlockedUntilDownstreamInactive(t *testing.T) {
	sm := ServiceMachine(nil, nil, nil, nil, nil)
	d := NewDriver(sm, testCtx(t))
	env := fakeEnv{up: []State{Active}}
	if err := d.Fire("install", env); err != nil {
		t.Fatal(err)
	}
	if err := d.Fire("start", env); err != nil {
		t.Fatal(err)
	}
	err := d.Fire("stop", fakeEnv{down: []State{Active}})
	var blocked *BlockedError
	if !errors.As(err, &blocked) {
		t.Fatalf("expected BlockedError, got %v", err)
	}
	// ↓inactive has ordering semantics: uninstalled dependents are fine
	// (they certainly are not using the service), active ones block.
	if err := d.Fire("stop", fakeEnv{down: []State{Inactive, Uninstalled}}); err != nil {
		t.Fatalf("uninstalled dependents must not block stop: %v", err)
	}
}

func TestStartBlockedByUninstalledUpstream(t *testing.T) {
	sm := ServiceMachine(nil, nil, nil, nil, nil)
	d := NewDriver(sm, testCtx(t))
	if err := d.Fire("install", fakeEnv{}); err != nil {
		t.Fatal(err)
	}
	// ↑active: upstream below active blocks.
	if err := d.Fire("start", fakeEnv{up: []State{Uninstalled}}); err == nil {
		t.Fatal("uninstalled upstream must block start")
	}
	if err := d.Fire("start", fakeEnv{up: []State{"custom"}}); err == nil {
		t.Fatal("non-basic upstream state must block an ↑active guard")
	}
}

func TestUnknownAction(t *testing.T) {
	sm := ServiceMachine(nil, nil, nil, nil, nil)
	d := NewDriver(sm, testCtx(t))
	if err := d.Fire("dance", fakeEnv{}); err == nil {
		t.Error("unknown action should error")
	}
	// start is not available from uninstalled.
	if err := d.Fire("start", fakeEnv{up: []State{Active}}); err == nil {
		t.Error("start from uninstalled should error")
	}
}

func TestActionErrorPropagates(t *testing.T) {
	boom := func(*Context) error { return fmt.Errorf("disk full") }
	sm := ServiceMachine(boom, nil, nil, nil, nil)
	d := NewDriver(sm, testCtx(t))
	err := d.Fire("install", fakeEnv{})
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Errorf("action error should propagate: %v", err)
	}
	if d.State() != Uninstalled {
		t.Error("failed action must not change state")
	}
}

func TestValidate(t *testing.T) {
	bad := &StateMachine{States: []State{Uninstalled, Active}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "missing basic state") {
		t.Errorf("missing basic state: %v", err)
	}

	bad2 := &StateMachine{
		States:  []State{Uninstalled, Inactive, Active},
		Actions: []Action{{Name: "x", From: "ghost", To: Active}},
	}
	if err := bad2.Validate(); err == nil || !strings.Contains(err.Error(), "undeclared states") {
		t.Errorf("undeclared state: %v", err)
	}

	bad3 := &StateMachine{
		States: []State{Uninstalled, Inactive, Active},
		Actions: []Action{
			{Name: "a", From: Uninstalled, To: Inactive},
			{Name: "a", From: Uninstalled, To: Active},
		},
	}
	if err := bad3.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate action") {
		t.Errorf("duplicate action: %v", err)
	}

	bad4 := &StateMachine{
		States:  []State{Uninstalled, Inactive, Active},
		Actions: []Action{{Name: "stop", From: Active, To: Inactive}},
	}
	if err := bad4.Validate(); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("unreachable active: %v", err)
	}

	for _, sm := range []*StateMachine{
		ServiceMachine(nil, nil, nil, nil, nil),
		LibraryMachine(nil, nil),
		MachineMachine(),
	} {
		if err := sm.Validate(); err != nil {
			t.Errorf("standard machine invalid: %v", err)
		}
	}
}

func TestPathTo(t *testing.T) {
	sm := ServiceMachine(nil, nil, nil, nil, nil)
	path := sm.PathTo(Uninstalled, Active)
	if strings.Join(path, ",") != "install,start" {
		t.Errorf("PathTo(uninstalled, active) = %v", path)
	}
	if got := sm.PathTo(Active, Uninstalled); strings.Join(got, ",") != "stop,uninstall" {
		t.Errorf("PathTo(active, uninstalled) = %v", got)
	}
	if got := sm.PathTo(Active, Active); got == nil || len(got) != 0 {
		t.Errorf("PathTo(x, x) should be empty non-nil: %v", got)
	}
	lonely := &StateMachine{States: []State{Uninstalled, Inactive, Active, "island"},
		Actions: []Action{{Name: "install", From: Uninstalled, To: Inactive}, {Name: "start", From: Inactive, To: Active}}}
	if lonely.PathTo(Uninstalled, "island") != nil {
		t.Error("unreachable state should give nil path")
	}
}

func TestLibraryMachineShape(t *testing.T) {
	sm := LibraryMachine(nil, nil)
	d := NewDriver(sm, testCtx(t))
	env := fakeEnv{up: []State{Active}, down: []State{Inactive}}
	if err := d.Fire("install", env); err != nil {
		t.Fatal(err)
	}
	if d.State() != Active {
		t.Errorf("library install should reach active directly, got %v", d.State())
	}
	if err := d.Fire("stop", env); err != nil {
		t.Fatal(err)
	}
	if err := d.Fire("uninstall", env); err != nil {
		t.Fatal(err)
	}
	if d.State() != Uninstalled {
		t.Error("library uninstall failed")
	}
}

func TestGuardString(t *testing.T) {
	g := Guard{{Upstream, Active}, {Downstream, Inactive}}
	if g.String() != "↑active ∧ ↓inactive" {
		t.Errorf("Guard.String() = %q", g.String())
	}
	if (Guard{}).String() != "true" {
		t.Error("empty guard should render true")
	}
}

func TestScratchPIDs(t *testing.T) {
	ctx := testCtx(t)
	d := NewDriver(ServiceMachine(nil, nil, nil, nil, nil), ctx)
	_ = d
	ctx.PutPID("daemon", 42)
	pid, ok := ctx.PID("daemon")
	if !ok || pid != 42 {
		t.Errorf("PID = %d, %v", pid, ok)
	}
	if _, ok := ctx.PID("ghost"); ok {
		t.Error("missing PID should not resolve")
	}
}

func TestSetState(t *testing.T) {
	d := NewDriver(ServiceMachine(nil, nil, nil, nil, nil), testCtx(t))
	d.SetState(Active)
	if d.State() != Active {
		t.Error("SetState failed")
	}
}

func TestActionNames(t *testing.T) {
	sm := ServiceMachine(nil, nil, nil, nil, nil)
	names := sm.ActionNames()
	want := []string{"install", "restart", "start", "stop", "uninstall"}
	if len(names) != len(want) {
		t.Fatalf("ActionNames = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("ActionNames[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}
