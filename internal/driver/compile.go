package driver

import (
	"fmt"

	"engage/internal/resource"
)

// Actions maps action names to implementations; the deployment engine's
// action registry. Declarative drivers (resource.DriverSpec) reference
// actions by name — the paper's split between the state machine (data,
// written by the component developer in the resource definition) and the
// guarded actions ("implemented in an underlying programming language").
type Actions map[string]ActionFunc

// CompileSpec turns a declarative driver specification into an
// executable state machine, resolving action names against the action
// registry. The special action name "" (or "noop") is a
// bookkeeping-only transition. The compiled machine is validated.
func CompileSpec(spec *resource.DriverSpec, actions Actions) (*StateMachine, error) {
	if spec == nil {
		return nil, fmt.Errorf("driver: nil driver spec")
	}
	sm := &StateMachine{}
	seen := make(map[State]bool)
	for _, s := range spec.States {
		st := State(s)
		if seen[st] {
			return nil, fmt.Errorf("driver: duplicate state %q", s)
		}
		seen[st] = true
		sm.States = append(sm.States, st)
	}
	// The basic states are implied if unlisted.
	for _, b := range []State{Uninstalled, Inactive, Active} {
		if !seen[b] {
			sm.States = append(sm.States, b)
			seen[b] = true
		}
	}

	for _, tr := range spec.Transitions {
		a := Action{
			Name: tr.Name,
			From: State(tr.From),
			To:   State(tr.To),
		}
		for _, g := range tr.Guards {
			dir := Downstream
			if g.Up {
				dir = Upstream
			}
			a.Guard = append(a.Guard, Pred{Dir: dir, State: State(g.State)})
		}
		switch tr.Action {
		case "", "noop":
		default:
			fn, ok := actions[tr.Action]
			if !ok {
				return nil, fmt.Errorf("driver: transition %q references unknown action %q", tr.Name, tr.Action)
			}
			a.Run = fn
		}
		sm.Actions = append(sm.Actions, a)
	}
	if err := sm.Validate(); err != nil {
		return nil, err
	}
	return sm, nil
}
