package library

// This file holds the RDL sources of the resource library — the
// counterpart of the paper's ~5K lines of resource metadata. The
// library covers the two case-study stacks: the Java stack (§2 OpenMRS
// and §6.1 JasperReports) and the Django platform stack (§6.2).

// baseRDL defines machines: the abstract Server and the four concrete
// operating systems the Django platform supports (two Mac OS X versions
// and two Ubuntu versions, per §6.2).
const baseRDL = `
// A physical or virtual machine. Concrete subclasses fix the operating
// system; the configuration ports carry host identity and credentials.
abstract resource "Server" {
    config {
        hostname: string = "localhost"
        ip: string = "127.0.0.1"
        os_user_name: string = "root"
    }
    output {
        host: struct { hostname: string, ip: string, os_user: string } = {
            hostname: config.hostname, ip: config.ip, os_user: config.os_user_name
        }
    }
}

resource "Mac-OSX 10.6" extends "Server" {
    output { os: string = "macosx-10.6" }
}
resource "Mac-OSX 10.7" extends "Server" {
    output { os: string = "macosx-10.7" }
}
resource "Ubuntu 10.04" extends "Server" {
    output { os: string = "ubuntu-10.04" }
}
resource "Ubuntu 12.04" extends "Server" {
    output { os: string = "ubuntu-12.04" }
}
resource "Windows 7" extends "Server" {
    output { os: string = "windows-7" }
}
`

// javaRDL defines the Java application stack: the Java runtime
// abstraction, the Tomcat servlet container (two versions, so the
// paper's "[5.5, 6.0.29)" range constraint has something to choose
// from), MySQL, the JDBC connector, OpenMRS, and JasperReports Server.
const javaRDL = `
// The Java runtime, abstract over the development kit and the bare
// runtime; OpenMRS and Tomcat accept either (the paper's jdk ⊕ jre).
abstract resource "Java" {
    inside "Server"
    output {
        java: struct { home: string, version: string } = {
            home: "/usr/java", version: "1.6"
        }
    }
}

resource "JDK 1.6" extends "Java" {
    output { jdk_tools: string = "/usr/java/bin" }
}
resource "JRE 1.6" extends "Java" {
    output { jre_lib: string = "/usr/java/lib" }
}

// The Tomcat servlet container. Servlets (OpenMRS, Jasper) nest inside
// it; it requires Java on the same machine.
abstract resource "Tomcat" {
    inside "Server"
    input  { java: struct { home: string, version: string } }
    config { manager_port: tcp_port = 8080 }
    output {
        tomcat: struct { host: string, port: tcp_port } = {
            host: "localhost", port: config.manager_port
        }
    }
    env "Java" { java -> java }
    health {
        probe "port-open"
        probe "proc-alive"
        probe "check"
        interval "30s"
        timeout "2s"
        failures 3
        successes 2
    }
}

resource "Tomcat 5.5" extends "Tomcat" {}
resource "Tomcat 6.0.18" extends "Tomcat" {}
resource "Tomcat 7.0" extends "Tomcat" {}

// A Django-compatible database, abstract over SQLite and MySQL (§6.2:
// "Database: SQLite or MySQL").
abstract resource "DjangoDatabase" {
    inside "Server"
    output {
        dj_db: struct { engine: string, host: string, port: tcp_port } = {
            engine: "unknown", host: "localhost", port: 0
        }
    }
}

resource "SQLite 3.7" extends "DjangoDatabase" {
    config { db_path: string = "/var/db/sqlite" }
    output {
        dj_db: struct { engine: string, host: string, port: tcp_port } = {
            engine: "sqlite", host: "localhost", port: 0
        }
    }
}

// MySQL serves both stacks: the Java stack maps its mysql output, the
// Django stack its dj_db output.
resource "MySQL 5.1" extends "DjangoDatabase" {
    config {
        port: tcp_port = 3306
        admin_user: string = "root"
        admin_password: secret = secret("engage-default")
    }
    output {
        mysql: struct { host: string, port: tcp_port, user: string, password: secret } = {
            host: "localhost", port: config.port,
            user: config.admin_user, password: config.admin_password
        }
        dj_db: struct { engine: string, host: string, port: tcp_port } = {
            engine: "mysql", host: "localhost", port: config.port
        }
    }
    health {
        probe "port-open"
        probe "proc-alive"
        probe "config-digest"
        probe "check"
        interval "30s"
        timeout "2s"
        failures 3
        successes 2
    }
}

// PostgreSQL, the paper's §3.4 example of a database alternative
// ("an environment dependency on … one of R2 (MySQL) or R3 (Postgres)").
resource "Postgres 9.1" extends "DjangoDatabase" {
    config { port: tcp_port = 5433 }
    output {
        postgres: struct { host: string, port: tcp_port } = {
            host: "localhost", port: config.port
        }
        dj_db: struct { engine: string, host: string, port: tcp_port } = {
            engine: "postgres", host: "localhost", port: config.port
        }
    }
}

// The MySQL JDBC connector required by JasperReports (§6.1); a passive
// library resource whose driver reuses the generic download-and-extract
// code.
resource "MySQL JDBC Connector 5.1.18" {
    inside "Server"
    output { jdbc_jar: string = "/opt/jdbc/mysql-connector.jar" }
}

// OpenMRS (§2): a servlet inside Tomcat before 6.0.29, Java 5+, MySQL 5+.
resource "OpenMRS 1.8" {
    inside "Tomcat [5.5, 6.0.29)"
    input {
        java:  struct { home: string, version: string }
        mysql: struct { host: string, port: tcp_port, user: string, password: secret }
    }
    config { db_name: string = "openmrs" }
    output {
        jdbc_url: string = concat("jdbc:mysql://", input.mysql.host, ":", input.mysql.port, "/", config.db_name)
    }
    env  "Java" { java -> java }
    peer "MySQL 5.1" { mysql -> mysql }
}

// JasperReports Server (§6.1): a servlet inside Tomcat, requiring Java,
// the JDBC connector on the same machine, and a MySQL database.
resource "JasperReports 4.5" {
    inside "Tomcat [5.5, 7.0]"
    input {
        java:  struct { home: string, version: string }
        jdbc:  string
        mysql: struct { host: string, port: tcp_port, user: string, password: secret }
    }
    config { repository_db: string = "jasperserver" }
    output {
        repo_url: string = concat("jdbc:mysql://", input.mysql.host, ":", input.mysql.port, "/", config.repository_db)
    }
    env  "Java" { java -> java }
    env  "MySQL JDBC Connector 5.1.18" { jdbc_jar -> jdbc }
    peer "MySQL 5.1" { mysql -> mysql }
}
`

// pythonRDL defines the Django platform stack (§6.2): Python, Django,
// the WSGI server choice (Gunicorn or Apache), optional components
// (RabbitMQ/Celery, Redis, Memcached), South, and Monit.
const pythonRDL = `
resource "Python 2.7" {
    inside "Server"
    output {
        python: struct { home: string, version: string } = {
            home: "/usr/bin/python", version: "2.7"
        }
    }
}

// The Python package installer; everything from PyPI flows through it.
resource "pip 1.0" {
    inside "Server"
    input { python: struct { home: string, version: string } }
    output { pip: struct { bin: string } = { bin: "/usr/bin/pip" } }
    env "Python 2.7" { python -> python }
}

// Isolated Python environments for application servers.
resource "Virtualenv 1.7" {
    inside "Server"
    input {
        python: struct { home: string, version: string }
        pip:    struct { bin: string }
    }
    output { venv: struct { root: string } = { root: "/srv/venv" } }
    env "Python 2.7" { python -> python }
    env "pip 1.0" { pip -> pip }
}

resource "Django 1.3" {
    inside "Server"
    input {
        python: struct { home: string, version: string }
        pip:    struct { bin: string }
    }
    output { django: struct { admin: string } = { admin: "/usr/bin/django-admin" } }
    env "Python 2.7" { python -> python }
    env "pip 1.0" { pip -> pip }
}

// A WSGI application server, abstract over Gunicorn and Apache
// (§6.2: "Web server: Gunicorn or Apache HTTP server").
abstract resource "WSGIServer" {
    inside "Server"
    input  {
        python: struct { home: string, version: string }
        venv:   struct { root: string }
    }
    config { http_port: tcp_port = 8000 }
    output {
        wsgi: struct { host: string, port: tcp_port } = {
            host: "localhost", port: config.http_port
        }
    }
    env "Python 2.7" { python -> python }
    env "Virtualenv 1.7" { venv -> venv }
}

resource "Gunicorn 0.13" extends "WSGIServer" {}

resource "Apache 2.2" extends "WSGIServer" {
    config { http_port: tcp_port = 80 }
    output { mod_wsgi: string = "/etc/apache2/mods/wsgi.so" }
}

resource "Redis 2.4" {
    inside "Server"
    config { port: tcp_port = 6379 }
    output {
        redis: struct { host: string, port: tcp_port } = {
            host: "localhost", port: config.port
        }
    }
}

resource "RabbitMQ 2.7" {
    inside "Server"
    config { port: tcp_port = 5672 }
    output {
        amqp: struct { url: string } = {
            url: concat("amqp://guest@localhost:", config.port, "//")
        }
    }
}

resource "Celery 2.4" {
    inside "Server"
    input {
        python: struct { home: string, version: string }
        amqp:   struct { url: string }
    }
    config { concurrency: int = 2 }
    output { celery: struct { broker: string } = { broker: input.amqp.url } }
    env  "Python 2.7" { python -> python }
    peer "RabbitMQ 2.7" { amqp -> amqp }
}

// Memcached declares its driver declaratively — the state machine lives
// in the resource definition (exactly Fig. 3's shape), and the named
// actions are the library's generic implementations.
resource "Memcached 1.4" {
    inside "Server"
    config { port: tcp_port = 11211 }
    output {
        memcached: struct { host: string, port: tcp_port } = {
            host: "localhost", port: config.port
        }
    }
    driver {
        states { uninstalled, inactive, active }
        install:   uninstalled -> inactive                   exec "pkg_install"
        start:     inactive -> active   when up(active)      exec "spawn_daemon"
        stop:      active -> inactive   when down(inactive)  exec "kill_daemon"
        restart:   active -> active                          exec "spawn_daemon"
        uninstall: inactive -> uninstalled                   exec "pkg_remove"
    }
}

// South, the Django schema-migration framework used by the upgrade case
// study (§6.2).
resource "South 0.7" {
    inside "Server"
    input { python: struct { home: string, version: string } }
    output { south: struct { version: string } = { version: "0.7" } }
    env "Python 2.7" { python -> python }
}

// Monit, the process monitor the runtime's plugin installs per host.
resource "Monit 5.3" {
    inside "Server"
    config { poll_interval: int = 30 }
    output { monit: struct { config_dir: string } = { config_dir: "/etc/monit" } }
}
`

// Sources returns the RDL sources of the library, keyed by file name.
func Sources() map[string]string {
	return map[string]string{
		"base.rdl":   baseRDL,
		"java.rdl":   javaRDL,
		"python.rdl": pythonRDL,
	}
}
