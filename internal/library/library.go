// Package library is Engage's resource library: the RDL resource types,
// the Go driver implementations, and the simulated package index for the
// two case-study stacks of the paper — the Java stack (OpenMRS §2,
// JasperReports §6.1) and the Django platform stack (§6.2). It is the
// counterpart of the paper's 5K lines of metadata plus the reusable
// parts of its 26K lines of Python driver code.
package library

import (
	"fmt"
	"strings"
	"time"

	"engage/internal/deploy"
	"engage/internal/driver"
	"engage/internal/pkgmgr"
	"engage/internal/rdl"
	"engage/internal/resource"
	"engage/internal/spec"
	"engage/internal/typecheck"
)

// Registry parses and resolves the library's RDL sources and verifies
// well-formedness.
func Registry() (*resource.Registry, error) {
	reg, err := rdl.ParseAndResolve(Sources())
	if err != nil {
		return nil, fmt.Errorf("library: %w", err)
	}
	if err := typecheck.CheckTypes(reg); err != nil {
		return nil, fmt.Errorf("library: %w", err)
	}
	return reg, nil
}

// OSName maps a machine resource key to its simulated OS identifier,
// e.g. "Mac-OSX 10.6" → "mac-osx-10.6".
func OSName(k resource.Key) string {
	name := strings.ToLower(strings.ReplaceAll(k.Name, " ", "-"))
	name = strings.ReplaceAll(name, "--", "-")
	if k.Version == "" {
		return name
	}
	return name + "-" + k.Version
}

// OSOf maps a machine instance to its simulated OS identifier; used as
// deploy.Options.OSOf.
func OSOf(inst *spec.Instance) string { return OSName(inst.Key) }

// pkgName derives the simulated package name for a resource key:
// "MySQL JDBC Connector 5.1.18" → "mysql-jdbc-connector".
func pkgName(k resource.Key) string {
	return strings.ToLower(strings.ReplaceAll(k.Name, " ", "-"))
}

// pkgEntry describes one package of the index with its simulated
// durations; the shapes (not the absolute values) drive experiment E6.
type pkgEntry struct {
	name, version string
	download      time.Duration
	install       time.Duration
}

var packages = []pkgEntry{
	{"jdk", "1.6", 3 * time.Minute, 60 * time.Second},
	{"jre", "1.6", 2 * time.Minute, 40 * time.Second},
	{"tomcat", "5.5", 2 * time.Minute, 40 * time.Second},
	{"tomcat", "6.0.18", 2 * time.Minute, 40 * time.Second},
	{"tomcat", "7.0", 2 * time.Minute, 40 * time.Second},
	{"mysql", "5.1", 150 * time.Second, 50 * time.Second},
	{"postgres", "9.1", 140 * time.Second, 55 * time.Second},
	{"mysql-jdbc-connector", "5.1.18", 30 * time.Second, 10 * time.Second},
	{"openmrs", "1.8", 3 * time.Minute, 80 * time.Second},
	{"jasperreports", "4.5", 4 * time.Minute, 80 * time.Second},
	{"python", "2.7", 90 * time.Second, 30 * time.Second},
	{"pip", "1.0", 15 * time.Second, 5 * time.Second},
	{"virtualenv", "1.7", 10 * time.Second, 5 * time.Second},
	{"django", "1.3", 45 * time.Second, 20 * time.Second},
	{"gunicorn", "0.13", 20 * time.Second, 10 * time.Second},
	{"apache", "2.2", 80 * time.Second, 30 * time.Second},
	{"sqlite", "3.7", 20 * time.Second, 5 * time.Second},
	{"redis", "2.4", 30 * time.Second, 10 * time.Second},
	{"rabbitmq", "2.7", 60 * time.Second, 25 * time.Second},
	{"celery", "2.4", 25 * time.Second, 10 * time.Second},
	{"memcached", "1.4", 20 * time.Second, 8 * time.Second},
	{"south", "0.7", 15 * time.Second, 5 * time.Second},
	{"monit", "5.3", 25 * time.Second, 10 * time.Second},
}

// pypiPackageTime is the per-package simulated cost of a PyPI install
// performed by the Django application driver.
const pypiPackageTime = 12 * time.Second

// PackageIndex builds the simulated package index for the library.
func PackageIndex() *pkgmgr.Index {
	idx := pkgmgr.NewIndex()
	for _, p := range packages {
		idx.Publish(&pkgmgr.Package{
			Name:    p.name,
			Version: p.version,
			Files: map[string]string{
				"/opt/" + p.name + "/VERSION": p.version,
			},
			DownloadTime: p.download,
			InstallTime:  p.install,
		})
	}
	return idx
}

// servicePort names the config port carrying a service's TCP port, per
// resource name; services without an entry claim no port.
var servicePort = map[string]string{
	"Tomcat":    "manager_port",
	"MySQL":     "port",
	"Postgres":  "port",
	"Gunicorn":  "http_port",
	"Apache":    "http_port",
	"Redis":     "port",
	"RabbitMQ":  "port",
	"Memcached": "port",
}

// serviceStart is the simulated daemon start-up duration per resource
// name; the deployment engine's guard discipline (↑active) is what
// makes these delays safe to overlap.
var serviceStart = map[string]time.Duration{
	"Tomcat":        20 * time.Second,
	"MySQL":         15 * time.Second,
	"Postgres":      18 * time.Second,
	"Gunicorn":      5 * time.Second,
	"Apache":        8 * time.Second,
	"Redis":         3 * time.Second,
	"RabbitMQ":      10 * time.Second,
	"Memcached":     2 * time.Second,
	"Celery":        6 * time.Second,
	"Monit":         3 * time.Second,
	"OpenMRS":       25 * time.Second,
	"JasperReports": 30 * time.Second,
}

// serviceMem is the simulated resident memory per service daemon, in
// MB; the monitor reports it as the paper's per-service resource usage.
var serviceMem = map[string]int{
	"Tomcat":    512,
	"MySQL":     384,
	"Postgres":  320,
	"Gunicorn":  96,
	"Apache":    128,
	"Redis":     64,
	"RabbitMQ":  128,
	"Memcached": 64,
	"Celery":    160,
	"Monit":     16,
}

// installFromIndex is the generic install action: install the package
// matching the instance's key from the index.
func installFromIndex(c *driver.Context) error {
	return c.PkgMgr.Install(pkgName(c.Instance.Key), c.Instance.Key.Version)
}

func removeFromIndex(c *driver.Context) error {
	return c.PkgMgr.Remove(pkgName(c.Instance.Key))
}

// spawnDaemon is the generic service-start action: after the §6.1
// environment check that the required TCP port is free, it spawns the
// daemon process, records its memory footprint, and stores the PID.
func spawnDaemon(c *driver.Context) error {
	name := c.Instance.Key.Name
	procName := pkgName(c.Instance.Key)
	c.Charge(serviceStart[name])
	var ports []int
	if cfgPort, ok := servicePort[name]; ok {
		port := c.Instance.Config[cfgPort].Int
		if port > 0 {
			if !c.Machine.PortFree(port) {
				return fmt.Errorf("library: %s: required TCP port %d is not available", c.Instance.ID, port)
			}
			ports = append(ports, port)
		}
	}
	p, err := c.Machine.StartProcess(procName, procName+"d", ports...)
	if err != nil {
		return err
	}
	if mem := serviceMem[name]; mem > 0 {
		_ = c.Machine.SetUsage(p.PID, mem)
	}
	c.PutPID("daemon", p.PID)
	return nil
}

// killDaemon stops the recorded daemon process.
func killDaemon(c *driver.Context) error {
	pid, ok := c.PID("daemon")
	if !ok {
		return fmt.Errorf("library: %s: no recorded daemon pid", c.Instance.ID)
	}
	return c.Machine.StopProcess(pid)
}

// genericService builds the standard daemon driver: install from the
// package index; start spawns a process claiming the configured port;
// stop kills it; restart respawns.
func genericService() deploy.Factory {
	return func(ctx *driver.Context) *driver.StateMachine {
		return driver.ServiceMachine(installFromIndex, spawnDaemon, killDaemon, spawnDaemon, removeFromIndex)
	}
}

// genericLibrary builds the passive-resource driver (the paper's
// reusable "generic driver code for downloading and extracting
// archives").
func genericLibrary() deploy.Factory {
	return func(ctx *driver.Context) *driver.StateMachine {
		return driver.LibraryMachine(installFromIndex, removeFromIndex)
	}
}

// machineDriver is the driver for server resources: provisioning is
// handled by the runtime before deployment, so transitions are free.
func machineDriver() deploy.Factory {
	return func(ctx *driver.Context) *driver.StateMachine {
		return driver.MachineMachine()
	}
}

// Drivers builds the library's driver registry.
func Drivers() *deploy.DriverRegistry {
	dr := deploy.NewDriverRegistry()
	for _, name := range []string{"Mac-OSX", "Ubuntu", "Windows"} {
		dr.RegisterName(name, machineDriver())
	}
	// Memcached is intentionally absent: its driver is declared in the
	// RDL (driver clause) and compiled against the named actions below.
	for _, name := range []string{"Tomcat", "MySQL", "Postgres", "Gunicorn", "Apache", "Redis", "RabbitMQ"} {
		dr.RegisterName(name, genericService())
	}
	dr.RegisterAction("pkg_install", installFromIndex)
	dr.RegisterAction("pkg_remove", removeFromIndex)
	dr.RegisterAction("spawn_daemon", spawnDaemon)
	dr.RegisterAction("kill_daemon", killDaemon)
	for _, name := range []string{"JDK", "JRE", "MySQL JDBC Connector", "Python", "pip", "Virtualenv", "Django", "SQLite", "South"} {
		dr.RegisterName(name, genericLibrary())
	}
	dr.RegisterName("Celery", celeryDriver())
	dr.RegisterName("Monit", monitDriver())
	dr.RegisterName("OpenMRS", servletDriver("openmrs"))
	dr.RegisterName("JasperReports", servletDriver("jasperreports"))
	return dr
}

// servletDriver deploys a webapp into its Tomcat container: install
// places the package and a WAR marker under the container's webapps
// directory; start charges warm-up time (the servlet runs inside the
// container's process, so no new daemon is spawned).
func servletDriver(war string) deploy.Factory {
	return func(ctx *driver.Context) *driver.StateMachine {
		name := ctx.Instance.Key.Name
		install := func(c *driver.Context) error {
			if err := installFromIndex(c); err != nil {
				return err
			}
			return c.Machine.WriteFile("/opt/tomcat/webapps/"+war+".war", war)
		}
		start := func(c *driver.Context) error {
			c.Charge(serviceStart[name])
			return c.Machine.WriteFile("/opt/tomcat/webapps/"+war+"/DEPLOYED", "ok")
		}
		stop := func(c *driver.Context) error {
			c.Machine.RemoveFile("/opt/tomcat/webapps/" + war + "/DEPLOYED")
			return nil
		}
		uninstall := func(c *driver.Context) error {
			c.Machine.RemoveFile("/opt/tomcat/webapps/" + war + ".war")
			return removeFromIndex(c)
		}
		return driver.ServiceMachine(install, start, stop, start, uninstall)
	}
}

// celeryDriver runs the task-queue worker: a daemon without a port,
// connected to the broker URL from its input.
func celeryDriver() deploy.Factory {
	return func(ctx *driver.Context) *driver.StateMachine {
		spawn := func(c *driver.Context) error {
			c.Charge(serviceStart["Celery"])
			broker := ""
			if amqp, ok := c.Instance.Input["amqp"]; ok {
				if u, ok := amqp.Field("url"); ok {
					broker = u.Str
				}
			}
			p, err := c.Machine.StartProcess("celery", "celery worker --broker="+broker)
			if err != nil {
				return err
			}
			c.PutPID("daemon", p.PID)
			return nil
		}
		stop := func(c *driver.Context) error {
			pid, _ := c.PID("daemon")
			return c.Machine.StopProcess(pid)
		}
		return driver.ServiceMachine(installFromIndex, spawn, stop, spawn, removeFromIndex)
	}
}

// monitDriver installs and runs the monitoring daemon.
func monitDriver() deploy.Factory {
	return func(ctx *driver.Context) *driver.StateMachine {
		spawn := func(c *driver.Context) error {
			c.Charge(serviceStart["Monit"])
			p, err := c.Machine.StartProcess("monit", "monit -d")
			if err != nil {
				return err
			}
			c.PutPID("daemon", p.PID)
			return nil
		}
		stop := func(c *driver.Context) error {
			pid, _ := c.PID("daemon")
			return c.Machine.StopProcess(pid)
		}
		return driver.ServiceMachine(installFromIndex, spawn, stop, spawn, removeFromIndex)
	}
}
