package library

import (
	"strings"
	"testing"

	"engage/internal/config"
	"engage/internal/deploy"
	"engage/internal/machine"
	"engage/internal/monitor"
	"engage/internal/packager"
	"engage/internal/resource"
	"engage/internal/spec"
	"engage/internal/typecheck"
)

func TestRegistryWellFormed(t *testing.T) {
	reg, err := Registry()
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() < 25 {
		t.Errorf("library should define at least 25 resource types, got %d", reg.Len())
	}
	// Spot checks.
	for _, key := range []string{
		"Server", "Mac-OSX 10.6", "Ubuntu 12.04", "Java", "JDK 1.6",
		"Tomcat 6.0.18", "MySQL 5.1", "OpenMRS 1.8", "JasperReports 4.5",
		"Python 2.7", "Django 1.3", "Gunicorn 0.13", "Apache 2.2",
		"SQLite 3.7", "Redis 2.4", "RabbitMQ 2.7", "Celery 2.4",
		"Memcached 1.4", "South 0.7", "Monit 5.3",
	} {
		if _, ok := reg.Lookup(resource.ParseKey(key)); !ok {
			t.Errorf("missing library type %q", key)
		}
	}
}

func TestOSOf(t *testing.T) {
	inst := &spec.Instance{Key: resource.MakeKey("Mac-OSX", "10.6")}
	if got := OSOf(inst); got != "mac-osx-10.6" {
		t.Errorf("OSOf = %q", got)
	}
	if got := OSOf(&spec.Instance{Key: resource.Key{Name: "Server"}}); got != "server" {
		t.Errorf("OSOf unversioned = %q", got)
	}
}

func TestPackageIndexComplete(t *testing.T) {
	idx := PackageIndex()
	for _, p := range []struct{ name, ver string }{
		{"tomcat", "6.0.18"}, {"mysql", "5.1"}, {"jdk", "1.6"},
		{"jasperreports", "4.5"}, {"python", "2.7"}, {"gunicorn", "0.13"},
	} {
		if _, ok := idx.Lookup(p.name, p.ver); !ok {
			t.Errorf("index missing %s %s", p.name, p.ver)
		}
	}
}

// stackOptions builds deploy options with the library's drivers/index.
func stackOptions(reg *resource.Registry) (deploy.Options, *machine.World) {
	w := machine.NewWorld()
	return deploy.Options{
		Registry:         reg,
		Drivers:          Drivers(),
		World:            w,
		Index:            PackageIndex(),
		ProvisionMissing: true,
		OSOf:             OSOf,
	}, w
}

func TestOpenMRSEndToEnd(t *testing.T) {
	reg, err := Registry()
	if err != nil {
		t.Fatal(err)
	}
	p := &spec.Partial{}
	p.Add("server", resource.MakeKey("Mac-OSX", "10.6"))
	p.Add("tomcat", resource.MakeKey("Tomcat", "6.0.18")).In("server")
	p.Add("openmrs", resource.MakeKey("OpenMRS", "1.8")).In("tomcat")

	full, err := config.New(reg).Configure(p)
	if err != nil {
		t.Fatal(err)
	}
	// server + tomcat + openmrs + java + mysql = 5.
	if len(full.Instances) != 5 {
		t.Fatalf("full spec: %d instances", len(full.Instances))
	}
	om := full.MustFind("openmrs")
	if !strings.HasPrefix(om.Output["jdbc_url"].Str, "jdbc:mysql://localhost:3306/") {
		t.Errorf("jdbc_url = %v", om.Output["jdbc_url"])
	}

	opts, w := stackOptions(reg)
	d, err := deploy.New(full, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Deploy(); err != nil {
		t.Fatal(err)
	}
	m, _ := w.Machine("server")
	if !m.Listening(3306) || !m.Listening(8080) {
		t.Error("mysql and tomcat should be up")
	}
	if !m.Exists("/opt/tomcat/webapps/openmrs/DEPLOYED") {
		t.Error("openmrs servlet should be deployed in tomcat")
	}
}

func TestJasperEndToEnd(t *testing.T) {
	reg, err := Registry()
	if err != nil {
		t.Fatal(err)
	}
	p := &spec.Partial{}
	p.Add("server", resource.MakeKey("Ubuntu", "12.04"))
	p.Add("tomcat", resource.MakeKey("Tomcat", "6.0.18")).In("server")
	p.Add("jasper", resource.MakeKey("JasperReports", "4.5")).In("tomcat")

	full, err := config.New(reg).Configure(p)
	if err != nil {
		t.Fatal(err)
	}
	// server, tomcat, jasper, java, jdbc connector, mysql = 6.
	if len(full.Instances) != 6 {
		ids := make([]string, 0)
		for _, i := range full.Instances {
			ids = append(ids, i.ID)
		}
		t.Fatalf("full spec: %v", ids)
	}
	jasper := full.MustFind("jasper")
	if jasper.Input["jdbc"].Str != "/opt/jdbc/mysql-connector.jar" {
		t.Errorf("jdbc input = %v", jasper.Input["jdbc"])
	}

	opts, w := stackOptions(reg)
	d, err := deploy.New(full, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Deploy(); err != nil {
		t.Fatal(err)
	}
	m, _ := w.Machine("server")
	if !m.Exists("/opt/tomcat/webapps/jasperreports/DEPLOYED") {
		t.Error("jasper servlet should be deployed")
	}
}

func TestAppTypeGeneration(t *testing.T) {
	apps := TableOneApps()
	if len(apps) != 8 {
		t.Fatalf("Table 1 has 8 apps, got %d", len(apps))
	}
	reg, err := Registry()
	if err != nil {
		t.Fatal(err)
	}
	drivers := Drivers()
	for _, a := range apps {
		arch, err := packager.Package(a)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if err := RegisterApp(reg, drivers, arch); err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
	}
	if err := typecheck.CheckTypes(reg); err != nil {
		t.Errorf("registry with app types should stay well-formed: %v", err)
	}
	// Spot-check the WebApp manifest-driven structure.
	webapp := reg.MustLookup(resource.MakeKey("DjangoApp-webapp", "3.4"))
	wantInputs := map[string]bool{"wsgi": true, "django": true, "dj_db": true,
		"redis": true, "memcached": true, "celery": true, "south": true}
	for _, in := range webapp.Input {
		if !wantInputs[in.Name] {
			t.Errorf("unexpected webapp input %q", in.Name)
		}
		delete(wantInputs, in.Name)
	}
	for missing := range wantInputs {
		t.Errorf("webapp missing input %q", missing)
	}
}

// TestTableOneDeployability is experiment E5's core claim: every app
// deploys with zero app-specific deployment code — only the generated
// type and the generic app driver.
func TestTableOneDeployability(t *testing.T) {
	defaultCfg := DeployConfig{
		OS:        resource.MakeKey("Ubuntu", "12.04"),
		WebServer: resource.MakeKey("Gunicorn", "0.13"),
		Database:  resource.MakeKey("MySQL", "5.1"),
	}
	for _, a := range TableOneApps() {
		reg, err := Registry()
		if err != nil {
			t.Fatal(err)
		}
		drivers := Drivers()
		arch, err := packager.Package(a)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if err := RegisterApp(reg, drivers, arch); err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		cfg := defaultCfg
		if arch.Manifest.DatabaseEngine == "sqlite" {
			cfg.Database = resource.MakeKey("SQLite", "3.7")
		}
		partial := cfg.Partial(arch.Manifest)
		full, err := config.New(reg).Configure(partial)
		if err != nil {
			t.Fatalf("%s: configure: %v", a.Name, err)
		}
		w := machine.NewWorld()
		d, err := deploy.New(full, deploy.Options{
			Registry: reg, Drivers: drivers, World: w,
			Index: PackageIndex(), ProvisionMissing: true, OSOf: OSOf,
		})
		if err != nil {
			t.Fatalf("%s: new deployment: %v", a.Name, err)
		}
		if err := d.Deploy(); err != nil {
			t.Fatalf("%s: deploy: %v", a.Name, err)
		}
		m, _ := w.Machine("server")
		if !m.Exists("/srv/" + a.Name + "/SERVING") {
			t.Errorf("%s: app not serving", a.Name)
		}
		if !m.Listening(8000) {
			t.Errorf("%s: gunicorn not listening", a.Name)
		}
	}
}

func TestWebAppCronAndPackages(t *testing.T) {
	reg, err := Registry()
	if err != nil {
		t.Fatal(err)
	}
	drivers := Drivers()
	var webapp packager.App
	for _, a := range TableOneApps() {
		if a.Name == "webapp" {
			webapp = a
		}
	}
	arch, err := packager.Package(webapp)
	if err != nil {
		t.Fatal(err)
	}
	if err := RegisterApp(reg, drivers, arch); err != nil {
		t.Fatal(err)
	}
	cfg := DeployConfig{
		OS:        resource.MakeKey("Ubuntu", "12.04"),
		WebServer: resource.MakeKey("Gunicorn", "0.13"),
		Database:  resource.MakeKey("MySQL", "5.1"),
		Celery:    true, Redis: true, Memcached: true, Monit: true,
	}
	full, err := config.New(reg).Configure(cfg.Partial(arch.Manifest))
	if err != nil {
		t.Fatal(err)
	}
	w := machine.NewWorld()
	d, err := deploy.New(full, deploy.Options{
		Registry: reg, Drivers: drivers, World: w,
		Index: PackageIndex(), ProvisionMissing: true, OSOf: OSOf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Deploy(); err != nil {
		t.Fatal(err)
	}
	m, _ := w.Machine("server")
	cron, err := m.ReadFile("/etc/cron.d/webapp")
	if err != nil || !strings.Contains(cron, "backup_database") {
		t.Errorf("cron jobs missing: %q %v", cron, err)
	}
	if !m.Exists("/usr/lib/python2.7/site-packages/celery/PKG-INFO") {
		t.Error("pypi packages should be installed")
	}
	for _, port := range []int{8000, 3306, 6379, 5672, 11211} {
		if !m.Listening(port) {
			t.Errorf("port %d should be claimed", port)
		}
	}
}

func TestPostgresAsDjangoDatabase(t *testing.T) {
	// §3.4's MySQL-or-Postgres alternative: an app with no pinned
	// engine deploys against an explicitly placed Postgres.
	reg, err := Registry()
	if err != nil {
		t.Fatal(err)
	}
	drivers := Drivers()
	var areneae packager.App
	for _, a := range TableOneApps() {
		if a.Name == "areneae" {
			areneae = a
		}
	}
	arch, err := packager.Package(areneae)
	if err != nil {
		t.Fatal(err)
	}
	arch.Manifest.DatabaseEngine = ""
	if err := RegisterApp(reg, drivers, arch); err != nil {
		t.Fatal(err)
	}
	cfg := DeployConfig{
		OS:        resource.MakeKey("Ubuntu", "12.04"),
		WebServer: resource.MakeKey("Gunicorn", "0.13"),
		Database:  resource.MakeKey("Postgres", "9.1"),
	}
	full, err := config.New(reg).Configure(cfg.Partial(arch.Manifest))
	if err != nil {
		t.Fatal(err)
	}
	app := full.MustFind("app")
	if eng, _ := app.Input["dj_db"].Field("engine"); eng.Str != "postgres" {
		t.Errorf("app should connect to postgres: %v", app.Input["dj_db"])
	}
	w := machine.NewWorld()
	d, err := deploy.New(full, deploy.Options{
		Registry: reg, Drivers: drivers, World: w,
		Index: PackageIndex(), ProvisionMissing: true, OSOf: OSOf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Deploy(); err != nil {
		t.Fatal(err)
	}
	m, _ := w.Machine("server")
	if !m.Listening(5433) {
		t.Error("postgres should listen on 5433")
	}
}

func TestWindowsMachineType(t *testing.T) {
	reg, err := Registry()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Lookup(resource.MakeKey("Windows", "7")); !ok {
		t.Fatal("Windows 7 missing from library")
	}
	if OSName(resource.MakeKey("Windows", "7")) != "windows-7" {
		t.Error("OSName for Windows 7 wrong")
	}
}

func TestAllConfigsCount(t *testing.T) {
	cfgs := AllConfigs()
	if len(cfgs) != 256 {
		t.Fatalf("§6.2 promises 256 configurations, got %d", len(cfgs))
	}
	seen := make(map[string]bool, len(cfgs))
	for _, c := range cfgs {
		s := c.String()
		if seen[s] {
			t.Fatalf("duplicate configuration %s", s)
		}
		seen[s] = true
	}
}

// TestConfigSpaceSample solves a deterministic sample of the 256
// configurations end-to-end (the full sweep is bench E7).
func TestConfigSpaceSample(t *testing.T) {
	var areneae packager.App
	for _, a := range TableOneApps() {
		if a.Name == "areneae" {
			areneae = a
		}
	}
	arch, err := packager.Package(areneae)
	if err != nil {
		t.Fatal(err)
	}
	// Clear the engine pin so the abstract DjangoDatabase exercises the
	// solver's choice.
	arch.Manifest.DatabaseEngine = ""

	cfgs := AllConfigs()
	for i := 0; i < len(cfgs); i += 37 { // deterministic stride sample
		cfg := cfgs[i]
		reg, err := Registry()
		if err != nil {
			t.Fatal(err)
		}
		drivers := Drivers()
		if err := RegisterApp(reg, drivers, arch); err != nil {
			t.Fatal(err)
		}
		full, err := config.New(reg).Configure(cfg.Partial(arch.Manifest))
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		// The chosen web server and database are in the solution.
		found := map[string]bool{}
		for _, inst := range full.Instances {
			found[inst.Key.String()] = true
		}
		if !found[cfg.WebServer.String()] || !found[cfg.Database.String()] {
			t.Errorf("%s: chosen components missing from solution", cfg)
		}
		if cfg.Monit && !found["Monit 5.3"] {
			t.Errorf("%s: monit missing", cfg)
		}
	}
}

func TestWebAppProductionPartialShape(t *testing.T) {
	var webapp packager.App
	for _, a := range TableOneApps() {
		if a.Name == "webapp" {
			webapp = a
		}
	}
	arch, err := packager.Package(webapp)
	if err != nil {
		t.Fatal(err)
	}
	partial := WebAppProductionPartial(arch.Manifest)
	if len(partial.Instances) != 7 {
		t.Fatalf("production partial should have 7 resources (paper §6.2), got %d", len(partial.Instances))
	}

	reg, err := Registry()
	if err != nil {
		t.Fatal(err)
	}
	drivers := Drivers()
	if err := RegisterApp(reg, drivers, arch); err != nil {
		t.Fatal(err)
	}
	full, err := config.New(reg).Configure(partial)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Instances) < 14 {
		t.Errorf("production full spec should expand well past 7 resources, got %d", len(full.Instances))
	}
	pl, fl := spec.LineCount(partial), spec.LineCount(full)
	if fl < 5*pl {
		t.Errorf("full (%d lines) should dwarf partial (%d lines)", fl, pl)
	}

	// Deploys across the three machines via the multi-host coordinator.
	w := machine.NewWorld()
	mh, err := deploy.NewMultiHost(full, deploy.Options{
		Registry: reg, Drivers: drivers, World: w,
		Index: PackageIndex(), ProvisionMissing: true, OSOf: OSOf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mh.Deploy(); err != nil {
		t.Fatal(err)
	}
	if !mh.Deployed() {
		t.Fatalf("status: %v", mh.Status())
	}
	app, _ := w.Machine("appserver")
	db, _ := w.Machine("dbserver")
	worker, _ := w.Machine("worker")
	if !app.Listening(8000) {
		t.Error("gunicorn should listen on appserver")
	}
	if !db.Listening(3306) {
		t.Error("mysql should listen on dbserver")
	}
	if _, ok := worker.FindProcess("celery"); !ok {
		t.Error("celery worker should run on worker node")
	}
}

func TestServiceResourceUsage(t *testing.T) {
	// The monitor reports per-service memory ("status and resource
	// usage of each installed service").
	reg, err := Registry()
	if err != nil {
		t.Fatal(err)
	}
	p := &spec.Partial{}
	p.Add("server", resource.MakeKey("Ubuntu", "12.04"))
	p.Add("db", resource.MakeKey("MySQL", "5.1")).In("server")
	full, err := config.New(reg).Configure(p)
	if err != nil {
		t.Fatal(err)
	}
	w := machine.NewWorld()
	plugin := &monitor.Plugin{}
	d, err := deploy.New(full, deploy.Options{
		Registry: reg, Drivers: Drivers(), World: w,
		Index: PackageIndex(), ProvisionMissing: true, OSOf: OSOf,
		Plugins: []deploy.Plugin{plugin},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Deploy(); err != nil {
		t.Fatal(err)
	}
	sts := plugin.Monitor.Status()
	if len(sts) != 1 {
		t.Fatalf("Status = %v", sts)
	}
	if sts[0].MemMB != 384 {
		t.Errorf("mysql MemMB = %d, want 384", sts[0].MemMB)
	}
	m, _ := w.Machine("server")
	if m.TotalMemMB() != 384 {
		t.Errorf("TotalMemMB = %d", m.TotalMemMB())
	}
}

// TestMonitorRecoversCascade: several daemons die at once; a single
// monitoring sweep restarts all of them.
func TestMonitorRecoversCascade(t *testing.T) {
	reg, err := Registry()
	if err != nil {
		t.Fatal(err)
	}
	p := &spec.Partial{}
	p.Add("server", resource.MakeKey("Ubuntu", "12.04"))
	p.Add("db", resource.MakeKey("MySQL", "5.1")).In("server")
	p.Add("redis", resource.MakeKey("Redis", "2.4")).In("server")
	p.Add("mq", resource.MakeKey("RabbitMQ", "2.7")).In("server")
	full, err := config.New(reg).Configure(p)
	if err != nil {
		t.Fatal(err)
	}
	w := machine.NewWorld()
	d, err := deploy.New(full, deploy.Options{
		Registry: reg, Drivers: Drivers(), World: w,
		Index: PackageIndex(), ProvisionMissing: true, OSOf: OSOf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Deploy(); err != nil {
		t.Fatal(err)
	}
	mon := monitor.New(d)
	if n := mon.AutoRegister(); n != 3 {
		t.Fatalf("AutoRegister = %d", n)
	}
	m, _ := w.Machine("server")
	killed := 0
	for _, proc := range m.Processes() {
		if err := m.KillProcess(proc.PID); err != nil {
			t.Fatal(err)
		}
		killed++
	}
	if killed != 3 {
		t.Fatalf("killed %d daemons", killed)
	}
	events := mon.Check()
	if len(events) != 3 {
		t.Fatalf("events = %v", events)
	}
	for _, ev := range events {
		if !ev.Restarted || ev.Err != nil {
			t.Errorf("event = %+v", ev)
		}
	}
	for _, port := range []int{3306, 6379, 5672} {
		if !m.Listening(port) {
			t.Errorf("port %d should be re-claimed after recovery", port)
		}
	}
}
