package library

import (
	"fmt"
	"strings"

	"engage/internal/packager"
	"engage/internal/resource"
	"engage/internal/spec"
)

// This file provides the eight Django applications of Table 1 as
// synthetic fixtures. The paper's apps are third-party code we do not
// have; what experiment E5 reproduces is the structural claim — "all
// eight applications were deployable by Engage without requiring any
// application-specific deployment code" — which depends only on each
// app's deployment-relevant structure (package dependencies, database
// engine, optional components, migrations, cron jobs), recreated here
// from the paper's descriptions.

func app(name, version, settings, requirements string, extra map[string]string) packager.App {
	files := map[string]string{
		"manage.py":   "#!/usr/bin/env python\n# Django management script",
		"settings.py": settings,
	}
	if requirements != "" {
		files["requirements.txt"] = requirements
	}
	for p, c := range extra {
		files[p] = c
	}
	return packager.App{Name: name, Version: version, Files: files}
}

// TableOneApps returns the eight applications of Table 1.
func TableOneApps() []packager.App {
	// Django-Blog "installs 18 Python package dependencies".
	blogReqs := make([]string, 18)
	for i := range blogReqs {
		blogReqs[i] = fmt.Sprintf("blog-dep-%02d==1.%d", i+1, i)
	}

	return []packager.App{
		// Areneae: simple test app from a beta tester.
		app("areneae", "1.0", `
DEBUG = True
DATABASES = {"default": {"ENGINE": "django.db.backends.sqlite3", "NAME": "areneae.db"}}
INSTALLED_APPS = ["django.contrib.auth", "areneae"]
`, "", nil),

		// Buzzfire: Twitter bookmark and ranking app; uses Redis.
		app("buzzfire", "1.2", `
DEBUG = False
DATABASES = {"default": {"ENGINE": "django.db.backends.mysql", "NAME": "buzzfire"}}
INSTALLED_APPS = ["django.contrib.auth", "buzzfire"]
REDIS_HOST = "localhost"
`, "redis==2.4.9\ntweepy==1.9\n", nil),

		// Codespeed: web application performance monitor.
		app("codespeed", "0.8", `
DEBUG = False
DATABASES = {"default": {"ENGINE": "django.db.backends.sqlite3", "NAME": "codespeed.db"}}
INSTALLED_APPS = ["django.contrib.admin", "codespeed"]
`, "matplotlib==1.1\n", nil),

		// Django-Blog: blogging platform with 18 package dependencies.
		app("django-blog", "2.0", `
DEBUG = False
DATABASES = {"default": {"ENGINE": "django.db.backends.mysql", "NAME": "blog"}}
INSTALLED_APPS = ["django.contrib.admin", "south", "blog"]
`, strings.Join(blogReqs, "\n")+"\n", nil),

		// Django-CMS: content management system.
		app("django-cms", "2.2", `
DEBUG = False
DATABASES = {"default": {"ENGINE": "django.db.backends.mysql", "NAME": "cms"}}
INSTALLED_APPS = ["django.contrib.admin", "cms", "menus", "south"]
CACHES = {"default": {"BACKEND": "django.core.cache.backends.memcached.MemcachedCache"}}
`, "django-cms==2.2\nPIL==1.1.7\nsouth\n", nil),

		// FA: faculty/student/postdoc application management; the
		// production app of the upgrade case study, with migrations.
		app("fa", "1.0", `
DEBUG = False
DATABASES = {"default": {"ENGINE": "django.db.backends.mysql", "NAME": "fa"}}
INSTALLED_APPS = ["django.contrib.admin", "south", "fa"]
`, "south==0.7.3\nxlwt==0.7.2\n", map[string]string{
			"fa/migrations/0001_initial.py": "# initial schema",
			"fa/migrations/0002_status.py":  "# add status column",
		}),

		// Feature Collector: gathers software feature requests.
		app("feature-collector", "1.1", `
DEBUG = False
DATABASES = {"default": {"ENGINE": "django.db.backends.sqlite3", "NAME": "features.db"}}
INSTALLED_APPS = ["django.contrib.auth", "collector"]
`, "", nil),

		// WebApp: the production PaaS site — asynchronous messaging
		// (Celery), cron jobs, and caching, per §6.2.
		app("webapp", "3.4", `
DEBUG = False
DATABASES = {"default": {"ENGINE": "django.db.backends.mysql", "NAME": "webapp"}}
INSTALLED_APPS = ["django.contrib.admin", "south", "djcelery", "webapp"]
CACHES = {"default": {"BACKEND": "django.core.cache.backends.memcached.MemcachedCache"}}
BROKER_URL = "amqp://guest@localhost//"
REDIS_HOST = "localhost"
CRON_JOBS = ["0 2 * * * backup_database", "*/10 * * * * collect_metrics", "0 6 * * 1 weekly_report"]
`, "south==0.7.3\ncelery==2.4.6\nredis==2.4.9\npython-memcached==1.48\n", nil),
	}
}

// WebAppProductionPartial builds the production WebApp topology of §6.2:
// seven resources across three machines — the application server
// (Gunicorn + app), the database server (MySQL), and the worker node
// (Celery). The configuration engine derives the rest (Python, Django,
// South, RabbitMQ, Redis, Memcached, per-machine runtimes). This is
// experiment E8's partial specification.
func WebAppProductionPartial(man packager.Manifest) *spec.Partial {
	p := &spec.Partial{}
	p.Add("appserver", resource.MakeKey("Ubuntu", "12.04")).
		Set("hostname", resource.Str("app.example.com"))
	p.Add("dbserver", resource.MakeKey("Ubuntu", "12.04")).
		Set("hostname", resource.Str("db.example.com"))
	p.Add("worker", resource.MakeKey("Ubuntu", "12.04")).
		Set("hostname", resource.Str("worker.example.com"))
	p.Add("webserver", resource.MakeKey("Gunicorn", "0.13")).In("appserver")
	p.Add("database", resource.MakeKey("MySQL", "5.1")).In("dbserver").
		Set("admin_password", resource.SecretV("prod-db-secret"))
	p.Add("celery", resource.MakeKey("Celery", "2.4")).In("worker")
	p.Add("app", AppKey(man)).In("webserver")
	return p
}
