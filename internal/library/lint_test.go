package library_test

import (
	"testing"

	"engage/internal/library"
	"engage/internal/lint"
)

// TestBundledLibraryLint documents the diagnostic profile of the
// shipped resource library: zero errors, and every warning is an
// unused-output on a port that is exported for consumers outside the
// RDL sources — generated Django app types bind MySQL's "dj_db" at
// registration time, and the simulated machine substrate reads the
// "os"/"host" exports of machine types. Keeping them is deliberate;
// this test pins that the set never silently grows a new error class.
func TestBundledLibraryLint(t *testing.T) {
	reg, err := library.Registry()
	if err != nil {
		t.Fatal(err)
	}
	rep := lint.Library(reg, lint.Options{})
	if rep.HasErrors() {
		t.Fatalf("bundled library has lint errors:\n%v", rep.Diagnostics)
	}
	for _, d := range rep.Diagnostics {
		if d.Code != lint.CodeUnusedOutput {
			t.Errorf("unexpected diagnostic class %s: %s", d.Code, d)
		}
	}
	if n := rep.Count(lint.Warning); n != 10 {
		t.Errorf("bundled library warning count = %d, want 10 (update this "+
			"test and DESIGN.md §10 if the library changed)", n)
	}
}
