package library

import (
	"fmt"
	"strings"

	"engage/internal/deploy"
	"engage/internal/driver"
	"engage/internal/migrate"
	"engage/internal/packager"
	"engage/internal/resource"
	"engage/internal/spec"
)

// This file implements the Django platform support of §6.2: resource
// types generated from packaged application manifests, the application
// driver (including declarative PyPI package installation, South
// migrations, and cron jobs), and the configuration-space builder behind
// the paper's "256 distinct deployment configurations".

// AppKey returns the resource key generated for a packaged application.
func AppKey(man packager.Manifest) resource.Key {
	return resource.MakeKey("DjangoApp-"+man.Name, man.Version)
}

// AppType builds the resource type for a packaged Django application.
// The type nests inside a WSGI server (Gunicorn or Apache via the
// abstract WSGIServer), requires Django (and transitively Python) in its
// environment, peers with a Django-compatible database, and — per the
// manifest — peers with Redis/Memcached, requires Celery (and
// transitively RabbitMQ), and requires South for migrations.
func AppType(man packager.Manifest) *resource.Type {
	str := func(s string) resource.Expr { return resource.Lit{V: resource.Str(s)} }
	wsgiStruct := resource.StructType(map[string]resource.PortType{
		"host": resource.T(resource.KindString),
		"port": resource.T(resource.KindPort),
	})
	djStruct := resource.StructType(map[string]resource.PortType{
		"admin": resource.T(resource.KindString),
	})
	dbStruct := resource.StructType(map[string]resource.PortType{
		"engine": resource.T(resource.KindString),
		"host":   resource.T(resource.KindString),
		"port":   resource.T(resource.KindPort),
	})

	pkgList := make([]resource.Value, len(man.PythonPackages))
	for i, p := range man.PythonPackages {
		pkgList[i] = resource.Str(p)
	}
	cronList := make([]resource.Value, len(man.CronJobs))
	for i, c := range man.CronJobs {
		cronList[i] = resource.Str(c)
	}

	t := &resource.Type{
		Key: AppKey(man),
		Doc: "Generated resource type for the packaged Django application " + man.Name + ".",
		Inside: &resource.Dependency{
			Alternatives: []resource.Key{{Name: "WSGIServer"}},
			PortMap:      map[string]string{"wsgi": "wsgi"},
		},
		Input: []resource.Port{
			{Name: "wsgi", Type: wsgiStruct},
			{Name: "django", Type: djStruct},
			{Name: "dj_db", Type: dbStruct},
		},
		Config: []resource.Port{
			{Name: "app_name", Type: resource.T(resource.KindString), Def: str(man.Name)},
			{Name: "packages", Type: resource.ListType(resource.T(resource.KindString)),
				Def: resource.Lit{V: resource.ListV(pkgList...)}},
			{Name: "cron_jobs", Type: resource.ListType(resource.T(resource.KindString)),
				Def: resource.Lit{V: resource.ListV(cronList...)}},
		},
		Output: []resource.Port{
			{Name: "url", Type: resource.T(resource.KindString), Def: resource.Concat{Args: []resource.Expr{
				str("http://"),
				resource.Ref{Sec: resource.SecInput, Name: "wsgi", Path: []string{"host"}},
				str(":"),
				resource.Ref{Sec: resource.SecInput, Name: "wsgi", Path: []string{"port"}},
				str("/"),
				resource.Ref{Sec: resource.SecConfig, Name: "app_name"},
			}}},
		},
		Env: []resource.Dependency{
			{Alternatives: []resource.Key{resource.MakeKey("Django", "1.3")},
				PortMap: map[string]string{"django": "django"}},
		},
		Peer: []resource.Dependency{},
	}

	// Database choice: a fixed engine pins the peer to the concrete
	// type; otherwise the abstract DjangoDatabase lets the constraint
	// solver (or the user's partial spec) choose.
	dbKey := resource.Key{Name: "DjangoDatabase"}
	switch man.DatabaseEngine {
	case "mysql":
		dbKey = resource.MakeKey("MySQL", "5.1")
	case "sqlite":
		dbKey = resource.MakeKey("SQLite", "3.7")
	}
	t.Peer = append(t.Peer, resource.Dependency{
		Alternatives: []resource.Key{dbKey},
		PortMap:      map[string]string{"dj_db": "dj_db"},
	})

	if man.UsesRedis {
		t.Input = append(t.Input, resource.Port{Name: "redis", Type: resource.StructType(map[string]resource.PortType{
			"host": resource.T(resource.KindString),
			"port": resource.T(resource.KindPort),
		})})
		t.Peer = append(t.Peer, resource.Dependency{
			Alternatives: []resource.Key{resource.MakeKey("Redis", "2.4")},
			PortMap:      map[string]string{"redis": "redis"},
		})
	}
	if man.UsesMemcached {
		t.Input = append(t.Input, resource.Port{Name: "memcached", Type: resource.StructType(map[string]resource.PortType{
			"host": resource.T(resource.KindString),
			"port": resource.T(resource.KindPort),
		})})
		t.Peer = append(t.Peer, resource.Dependency{
			Alternatives: []resource.Key{resource.MakeKey("Memcached", "1.4")},
			PortMap:      map[string]string{"memcached": "memcached"},
		})
	}
	if man.UsesCelery {
		// Celery workers may run on a different node (the production
		// WebApp topology does exactly that), so this is a peer
		// dependency: the app only needs the broker URL.
		t.Input = append(t.Input, resource.Port{Name: "celery", Type: resource.StructType(map[string]resource.PortType{
			"broker": resource.T(resource.KindString),
		})})
		t.Peer = append(t.Peer, resource.Dependency{
			Alternatives: []resource.Key{resource.MakeKey("Celery", "2.4")},
			PortMap:      map[string]string{"celery": "celery"},
		})
	}
	if man.HasMigrations {
		t.Input = append(t.Input, resource.Port{Name: "south", Type: resource.StructType(map[string]resource.PortType{
			"version": resource.T(resource.KindString),
		})})
		t.Env = append(t.Env, resource.Dependency{
			Alternatives: []resource.Key{resource.MakeKey("South", "0.7")},
			PortMap:      map[string]string{"south": "south"},
		})
	}
	return t
}

// AppDriver builds the deployment driver for a packaged application.
// Install writes the archive files under /srv/<app>, installs the PyPI
// requirements declaratively (each charged pypiPackageTime), creates the
// application database, runs South migrations when present, and
// registers cron jobs. Start marks the app served by its WSGI container.
func AppDriver(arch packager.Archive) deploy.Factory {
	man := arch.Manifest
	root := "/srv/" + man.Name
	return func(ctx *driver.Context) *driver.StateMachine {
		install := func(c *driver.Context) error {
			for path, content := range arch.Files {
				if err := c.Machine.WriteFile(root+"/"+path, content); err != nil {
					return err
				}
			}
			for _, pkg := range pythonPackages(c) {
				c.Charge(pypiPackageTime)
				if err := c.Machine.WriteFile("/usr/lib/python2.7/site-packages/"+pkgBase(pkg)+"/PKG-INFO", pkg); err != nil {
					return err
				}
			}
			db := migrate.Open(c.Machine, "/var/db/"+man.Name)
			if !db.Exists() {
				if err := db.Init(1); err != nil {
					return err
				}
			}
			if man.HasMigrations {
				if _, err := db.SchemaVersion(); err != nil {
					return err
				}
			}
			if jobs := c.Instance.Config["cron_jobs"]; len(jobs.List) > 0 {
				var lines []string
				for _, j := range jobs.List {
					lines = append(lines, j.Str)
				}
				if err := c.Machine.WriteFile("/etc/cron.d/"+man.Name, strings.Join(lines, "\n")); err != nil {
					return err
				}
			}
			return nil
		}
		start := func(c *driver.Context) error {
			return c.Machine.WriteFile(root+"/SERVING", c.Instance.Output["url"].AsString())
		}
		stop := func(c *driver.Context) error {
			c.Machine.RemoveFile(root + "/SERVING")
			return nil
		}
		uninstall := func(c *driver.Context) error {
			c.Machine.RemoveTree(root)
			c.Machine.RemoveFile("/etc/cron.d/" + man.Name)
			return nil
		}
		return driver.ServiceMachine(install, start, stop, start, uninstall)
	}
}

func pythonPackages(c *driver.Context) []string {
	v, ok := c.Instance.Config["packages"]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(v.List))
	for _, p := range v.List {
		out = append(out, p.Str)
	}
	return out
}

func pkgBase(req string) string {
	return strings.ToLower(strings.SplitN(req, "==", 2)[0])
}

// RegisterApp adds a packaged application's generated resource type to a
// registry and its driver to a driver registry; the common path for
// deploying a packaged app ("deployable by Engage without requiring any
// application-specific deployment code").
func RegisterApp(reg *resource.Registry, drivers *deploy.DriverRegistry, arch packager.Archive) error {
	if arch.Manifest.Name == "" {
		return fmt.Errorf("library: archive has no application name")
	}
	t := AppType(arch.Manifest)
	if err := reg.Add(t); err != nil {
		return fmt.Errorf("library: registering app %q: %w", arch.Manifest.Name, err)
	}
	drivers.RegisterKey(t.Key, AppDriver(arch))
	return nil
}

// DeployConfig is one point in the Django deployment configuration
// space of §6.2: OS × web server × database × optional components ×
// monitoring — 4 × 2 × 2 × 2³ × 2 = 256 single-node configurations.
type DeployConfig struct {
	OS        resource.Key // one of the four Server subclasses
	WebServer resource.Key // Gunicorn 0.13 or Apache 2.2
	Database  resource.Key // SQLite 3.7 or MySQL 5.1
	Celery    bool
	Redis     bool
	Memcached bool
	Monit     bool
}

// OSChoices, WebServerChoices, DatabaseChoices enumerate the §6.2 axes.
var (
	OSChoices = []resource.Key{
		resource.MakeKey("Mac-OSX", "10.6"),
		resource.MakeKey("Mac-OSX", "10.7"),
		resource.MakeKey("Ubuntu", "10.04"),
		resource.MakeKey("Ubuntu", "12.04"),
	}
	WebServerChoices = []resource.Key{
		resource.MakeKey("Gunicorn", "0.13"),
		resource.MakeKey("Apache", "2.2"),
	}
	DatabaseChoices = []resource.Key{
		resource.MakeKey("SQLite", "3.7"),
		resource.MakeKey("MySQL", "5.1"),
	}
)

// AllConfigs enumerates the full single-node configuration space (256
// entries), in deterministic order.
func AllConfigs() []DeployConfig {
	var out []DeployConfig
	for _, os := range OSChoices {
		for _, ws := range WebServerChoices {
			for _, db := range DatabaseChoices {
				for c := 0; c < 2; c++ {
					for r := 0; r < 2; r++ {
						for m := 0; m < 2; m++ {
							for mon := 0; mon < 2; mon++ {
								out = append(out, DeployConfig{
									OS: os, WebServer: ws, Database: db,
									Celery: c == 1, Redis: r == 1,
									Memcached: m == 1, Monit: mon == 1,
								})
							}
						}
					}
				}
			}
		}
	}
	return out
}

// Partial builds the partial installation specification deploying a
// packaged application under one configuration: the machine, the chosen
// web server, the chosen database, the app, and the selected optional
// components — everything else (Python, Django, South, RabbitMQ, …) is
// derived by the configuration engine.
func (cfg DeployConfig) Partial(man packager.Manifest) *spec.Partial {
	p := &spec.Partial{}
	p.Add("server", cfg.OS)
	p.Add("webserver", cfg.WebServer).In("server")
	p.Add("database", cfg.Database).In("server")
	p.Add("app", AppKey(man)).In("webserver")
	if cfg.Celery {
		p.Add("celery", resource.MakeKey("Celery", "2.4")).In("server")
	}
	if cfg.Redis {
		p.Add("redis", resource.MakeKey("Redis", "2.4")).In("server")
	}
	if cfg.Memcached {
		p.Add("memcached", resource.MakeKey("Memcached", "1.4")).In("server")
	}
	if cfg.Monit {
		p.Add("monit", resource.MakeKey("Monit", "5.3")).In("server")
	}
	return p
}

// String renders the configuration compactly, e.g.
// "ubuntu-12.04/gunicorn/mysql+celery+monit".
func (cfg DeployConfig) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s/%s",
		strings.ToLower(cfg.OS.Name+"-"+cfg.OS.Version),
		strings.ToLower(cfg.WebServer.Name),
		strings.ToLower(cfg.Database.Name))
	if cfg.Celery {
		b.WriteString("+celery")
	}
	if cfg.Redis {
		b.WriteString("+redis")
	}
	if cfg.Memcached {
		b.WriteString("+memcached")
	}
	if cfg.Monit {
		b.WriteString("+monit")
	}
	return b.String()
}
