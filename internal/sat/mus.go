package sat

// This file implements minimal-unsatisfiable-subset (MUS) extraction
// over assumption literals: given a set of assumptions that is jointly
// inconsistent with the clause set, shrink it to a subset from which no
// single assumption can be removed without restoring satisfiability.
// This is the classic deletion-based algorithm run on an incremental
// session, so every trial solve is a warm SolveAssuming — the same
// machinery Engage's enumeration and minimization loops use. The lint
// engine turns the resulting core into a human-readable conflict story
// ("A requires B ≥ 3.1, but C pins B to 2.x") by mapping each surviving
// assumption back to the constraint that introduced it.

// ShrinkStats reports the effort of one ShrinkCore call.
type ShrinkStats struct {
	// Solves is the number of trial SolveAssuming calls made.
	Solves int
	// InitialSize and FinalSize are the core sizes before and after
	// shrinking.
	InitialSize int
	FinalSize   int
}

// ShrinkCore reduces an unsatisfiable assumption set to a minimal one
// by deletion: each assumption is tentatively dropped and the rest
// re-solved; if still unsatisfiable the drop is committed (and the
// working set is further pruned to the solver's returned core), else
// the assumption is marked necessary and kept. The result is a MUS: a
// subset of core that is still jointly inconsistent with the clause
// set, from which removing any single element makes it consistent.
//
// The caller must pass an assumption set that SolveAssuming already
// answered Unsat for (typically Result.Core); passing a satisfiable set
// returns it unchanged. Order is preserved from the input.
func ShrinkCore(inc IncrementalSolver, core []Lit) ([]Lit, ShrinkStats) {
	mus, _, st := ShrinkCoreWitnessed(inc, core)
	return mus, st
}

// ShrinkCoreWitnessed is ShrinkCore, additionally returning the
// minimality witnesses certification needs: witnesses[probe] is the
// model of a Sat trial solve that proved probe necessary. Because the
// final MUS is a subset of every working set the loop ever held, a
// model satisfying the clause set plus (work \ {probe}) also satisfies
// the clause set plus (mus \ {probe}) — so each witness independently
// certifies that dropping its assumption restores satisfiability. An
// assumption absent from the map (possible only when the solver gave
// up mid-shrink) has unverified minimality.
func ShrinkCoreWitnessed(inc IncrementalSolver, core []Lit) ([]Lit, map[Lit][]bool, ShrinkStats) {
	st := ShrinkStats{InitialSize: len(core)}
	work := append([]Lit(nil), core...)
	needed := make(map[Lit]bool, len(work))
	witnesses := make(map[Lit][]bool, len(work))

	for i := 0; i < len(work); {
		probe := work[i]
		if needed[probe] {
			i++
			continue
		}
		trial := make([]Lit, 0, len(work)-1)
		for _, l := range work {
			if l != probe {
				trial = append(trial, l)
			}
		}
		res := inc.SolveAssuming(trial)
		st.Solves++
		switch res.Status {
		case Unsat:
			// probe is redundant. The solver's refined core is a subset
			// of trial; intersecting against it prunes several
			// assumptions per solve instead of one.
			if res.Core != nil {
				work = intersectPreservingOrder(trial, res.Core)
			} else {
				work = trial
			}
			i = 0 // restart the scan over the (smaller) working set
		case Sat:
			// probe is necessary: every remaining assumption set
			// without it is satisfiable — and this model is the
			// checkable evidence.
			needed[probe] = true
			witnesses[probe] = res.Model
			i++
		default:
			// Solver gave up: keep the current (sound, possibly
			// non-minimal) working set.
			st.FinalSize = len(work)
			return work, witnesses, st
		}
	}
	st.FinalSize = len(work)
	return work, witnesses, st
}

// intersectPreservingOrder returns the elements of a that are in b, in
// a's order.
func intersectPreservingOrder(a, b []Lit) []Lit {
	inB := make(map[Lit]bool, len(b))
	for _, l := range b {
		inB[l] = true
	}
	out := make([]Lit, 0, len(b))
	for _, l := range a {
		if inB[l] {
			out = append(out, l)
		}
	}
	return out
}
