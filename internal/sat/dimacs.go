package sat

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// ParseDimacs reads a formula in DIMACS CNF format: an optional
// `p cnf <vars> <clauses>` header, `c` comment lines, and clauses as
// whitespace-separated literals terminated by 0 (clauses may span
// lines). The header's counts are validated when present; without a
// header, NumVars is the largest variable mentioned.
func ParseDimacs(src string) (*Formula, error) {
	f := &Formula{}
	declaredVars, declaredClauses := -1, -1
	var current Clause
	maxVar := 0

	sc := bufio.NewScanner(strings.NewReader(src))
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "c") {
			continue
		}
		if strings.HasPrefix(text, "p") {
			fields := strings.Fields(text)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("dimacs line %d: malformed problem line %q", line, text)
			}
			v, err1 := strconv.Atoi(fields[2])
			c, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || v < 0 || c < 0 {
				return nil, fmt.Errorf("dimacs line %d: bad counts in %q", line, text)
			}
			declaredVars, declaredClauses = v, c
			continue
		}
		for _, tok := range strings.Fields(text) {
			n, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("dimacs line %d: bad literal %q", line, tok)
			}
			if n == 0 {
				f.Clauses = append(f.Clauses, current)
				current = nil
				continue
			}
			l := Lit(n)
			if l.Var() > maxVar {
				maxVar = l.Var()
			}
			current = append(current, l)
		}
	}
	if len(current) > 0 {
		return nil, fmt.Errorf("dimacs: final clause not terminated by 0")
	}
	f.NumVars = maxVar
	if declaredVars >= 0 {
		if maxVar > declaredVars {
			return nil, fmt.Errorf("dimacs: variable %d exceeds declared count %d", maxVar, declaredVars)
		}
		f.NumVars = declaredVars
	}
	if declaredClauses >= 0 && len(f.Clauses) != declaredClauses {
		return nil, fmt.Errorf("dimacs: %d clauses found, header declares %d", len(f.Clauses), declaredClauses)
	}
	return f, nil
}
