package sat

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func TestSolveAssumingBasics(t *testing.T) {
	inc := NewIncremental(2)
	if !inc.AddClause(Clause{1, 2}) {
		t.Fatal("AddClause failed")
	}
	r := inc.SolveAssuming([]Lit{-1})
	if r.Status != Sat || r.Model[1] || !r.Model[2] {
		t.Fatalf("assume ¬1: want SAT with 2 true, got %v %v", r.Status, r.Model)
	}
	r = inc.SolveAssuming([]Lit{-1, -2})
	if r.Status != Unsat {
		t.Fatalf("assume ¬1∧¬2: want UNSAT, got %v", r.Status)
	}
	if len(r.Core) == 0 {
		t.Fatal("UNSAT under assumptions must report a core")
	}
	// The session is unharmed: solving without assumptions succeeds.
	r = inc.SolveAssuming(nil)
	if r.Status != Sat {
		t.Fatalf("no assumptions: want SAT, got %v", r.Status)
	}
}

// coreIsSound checks that the reported core is a subset of the
// assumptions and genuinely inconsistent with the formula.
func coreIsSound(t *testing.T, f *Formula, assumps, core []Lit) {
	t.Helper()
	in := make(map[Lit]bool, len(assumps))
	for _, a := range assumps {
		in[a] = true
	}
	for _, c := range core {
		if !in[c] {
			t.Fatalf("core literal %d is not an assumption %v", c, assumps)
		}
	}
	work := &Formula{NumVars: f.NumVars, Clauses: append([]Clause(nil), f.Clauses...)}
	for _, c := range core {
		if c.Var() > work.NumVars {
			work.NumVars = c.Var()
		}
		work.Clauses = append(work.Clauses, Clause{c})
	}
	if r := NewCDCL().Solve(work); r.Status != Unsat {
		t.Fatalf("formula ∧ core %v should be UNSAT, got %v", core, r.Status)
	}
}

func TestSolveAssumingCore(t *testing.T) {
	// 1 → 2 → 3, plus an irrelevant variable 4: assuming {1, ¬3, 4}
	// is UNSAT and the core must not be forced to include 4.
	f := NewFormula(4)
	f.AddImplies(1, 2)
	f.AddImplies(2, 3)
	inc := StartIncremental(NewCDCL(), f)
	assumps := []Lit{1, -3, 4}
	r := inc.SolveAssuming(assumps)
	if r.Status != Unsat {
		t.Fatalf("want UNSAT, got %v", r.Status)
	}
	coreIsSound(t, f, assumps, r.Core)
	for _, c := range r.Core {
		if c == 4 {
			t.Errorf("core %v includes the irrelevant assumption 4", r.Core)
		}
	}
}

func TestSolveAssumingRootUnsatHasNilCore(t *testing.T) {
	f := NewFormula(2)
	f.AddUnit(1)
	f.AddUnit(-1)
	inc := StartIncremental(NewCDCL(), f)
	r := inc.SolveAssuming([]Lit{2})
	if r.Status != Unsat {
		t.Fatalf("want UNSAT, got %v", r.Status)
	}
	if len(r.Core) != 0 {
		t.Errorf("root-level UNSAT should have empty core, got %v", r.Core)
	}
}

func TestSolveAssumingContradictoryAssumptions(t *testing.T) {
	f := NewFormula(1)
	inc := StartIncremental(NewCDCL(), f)
	assumps := []Lit{1, -1}
	r := inc.SolveAssuming(assumps)
	if r.Status != Unsat {
		t.Fatalf("assuming x ∧ ¬x: want UNSAT, got %v", r.Status)
	}
	coreIsSound(t, f, assumps, r.Core)
}

func TestSolveAssumingFalsifiedAtLevelZero(t *testing.T) {
	f := NewFormula(2)
	f.AddUnit(-1)
	inc := StartIncremental(NewCDCL(), f)
	r := inc.SolveAssuming([]Lit{1})
	if r.Status != Unsat {
		t.Fatalf("want UNSAT, got %v", r.Status)
	}
	coreIsSound(t, f, []Lit{1}, r.Core)
}

func TestIncrementalAddClauseBetweenSolves(t *testing.T) {
	// Enumerate by hand: 2 free variables, block each model as a new
	// clause; exactly 4 solves succeed, the 5th is UNSAT.
	inc := NewIncremental(2)
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		r := inc.SolveAssuming(nil)
		if r.Status != Sat {
			t.Fatalf("solve %d: want SAT, got %v", i, r.Status)
		}
		key := fmt.Sprintf("%v%v", r.Model[1], r.Model[2])
		if seen[key] {
			t.Fatalf("solve %d repeated model %s", i, key)
		}
		seen[key] = true
		block := Clause{}
		for v := 1; v <= 2; v++ {
			if r.Model[v] {
				block = append(block, Lit(-v))
			} else {
				block = append(block, Lit(v))
			}
		}
		inc.AddClause(block)
	}
	if r := inc.SolveAssuming(nil); r.Status != Unsat {
		t.Fatalf("after blocking all 4 models: want UNSAT, got %v", r.Status)
	}
}

func TestIncrementalNewVariablesGrowSession(t *testing.T) {
	inc := NewIncremental(1)
	inc.AddClause(Clause{1})
	inc.AddClause(Clause{-1, 5}) // variable 5 appears only now
	r := inc.SolveAssuming(nil)
	if r.Status != Sat || !r.Model[5] {
		t.Fatalf("want SAT with var 5 true, got %v %v", r.Status, r.Model)
	}
	r = inc.SolveAssuming([]Lit{-5})
	if r.Status != Unsat {
		t.Fatalf("¬5 contradicts 1→5: want UNSAT, got %v", r.Status)
	}
}

// modelKeys projects models onto the given variables and returns a
// sorted, canonical representation for set comparison.
func modelKeys(models [][]bool, project []int) []string {
	keys := make([]string, 0, len(models))
	for _, m := range models {
		var b strings.Builder
		for _, v := range project {
			if v >= 1 && v < len(m) && m[v] {
				fmt.Fprintf(&b, "%d,", v)
			}
		}
		keys = append(keys, b.String())
	}
	sort.Strings(keys)
	return keys
}

// TestIncrementalVsOneShotEnumeration: the warm incremental path and
// the cold one-shot path must enumerate exactly the same model sets on
// exhaustive runs (order may differ; the sets may not).
func TestIncrementalVsOneShotEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(2012))
	for trial := 0; trial < 40; trial++ {
		nVars := 4 + rng.Intn(6)
		nClauses := 3 + rng.Intn(4*nVars)
		f := randomFormula(rng, nVars, nClauses)
		project := make([]int, nVars)
		for v := 1; v <= nVars; v++ {
			project[v-1] = v
		}
		warm, _ := EnumerateModelsStats(NewCDCL(), f, project, 0)
		cold, _ := EnumerateModelsCold(NewCDCL(), f, project, 0)
		wk, ck := modelKeys(warm, project), modelKeys(cold, project)
		if len(wk) != len(ck) {
			t.Fatalf("trial %d: warm found %d models, cold %d\n%s",
				trial, len(wk), len(ck), Dimacs(f))
		}
		for i := range wk {
			if wk[i] != ck[i] {
				t.Fatalf("trial %d: model sets differ at %d: %q vs %q",
					trial, i, wk[i], ck[i])
			}
		}
		// Each enumerated model must verify against the input formula.
		for _, m := range warm {
			if i := Verify(f, m); i >= 0 {
				t.Fatalf("trial %d: warm model falsifies clause %d", trial, i)
			}
		}
	}
}

// TestWarmEnumerationDoesLessWork: on a structured exactly-one space,
// total propagations across the enumeration must be strictly lower on
// the warm path than on the cold path (the tentpole's raison d'être).
func TestWarmEnumerationDoesLessWork(t *testing.T) {
	f := NewFormula(32)
	lits := make([]Lit, 32)
	for i := range lits {
		lits[i] = Lit(i + 1)
	}
	f.AddExactlyOne(lits...)
	warm, warmStats := EnumerateModelsStats(NewCDCL(), f, nil, 0)
	cold, coldStats := EnumerateModelsCold(NewCDCL(), f, nil, 0)
	if len(warm) != 32 || len(cold) != 32 {
		t.Fatalf("⊕ over 32 vars has 32 models: warm=%d cold=%d", len(warm), len(cold))
	}
	if warmStats.Propagations >= coldStats.Propagations {
		t.Errorf("warm enumeration should propagate less: warm=%d cold=%d",
			warmStats.Propagations, coldStats.Propagations)
	}
}

func TestColdAdapterForDPLL(t *testing.T) {
	f := NewFormula(2)
	f.AddExactlyOne(1, 2)
	inc := StartIncremental(NewDPLL(), f)
	if _, warm := inc.(*Incremental); warm {
		t.Fatal("DPLL must get the cold adapter, not a warm session")
	}
	r := inc.SolveAssuming(nil)
	if r.Status != Sat {
		t.Fatalf("want SAT, got %v", r.Status)
	}
	assumps := []Lit{1, 2}
	r = inc.SolveAssuming(assumps)
	if r.Status != Unsat {
		t.Fatalf("both of an exactly-one: want UNSAT, got %v", r.Status)
	}
	coreIsSound(t, f, assumps, r.Core)
}

func TestIncrementalSolverAgreesWithOneShot(t *testing.T) {
	// Repeated SolveAssuming over random assumption sets must agree
	// with one-shot solving of formula+assumptions, on one session.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		nVars := 8 + rng.Intn(8)
		f := randomFormula(rng, nVars, int(float64(nVars)*3.5))
		inc := StartIncremental(NewCDCL(), f)
		for probe := 0; probe < 8; probe++ {
			var assumps []Lit
			for v := 1; v <= nVars; v++ {
				switch rng.Intn(4) {
				case 0:
					assumps = append(assumps, Lit(v))
				case 1:
					assumps = append(assumps, Lit(-v))
				}
			}
			got := inc.SolveAssuming(assumps)
			work := &Formula{NumVars: f.NumVars, Clauses: append([]Clause(nil), f.Clauses...)}
			for _, a := range assumps {
				work.Clauses = append(work.Clauses, Clause{a})
			}
			want := NewCDCL().Solve(work)
			if got.Status != want.Status {
				t.Fatalf("trial %d probe %d: incremental=%v one-shot=%v assumps=%v\n%s",
					trial, probe, got.Status, want.Status, assumps, Dimacs(f))
			}
			if got.Status == Sat {
				if i := Verify(work, got.Model); i >= 0 {
					t.Fatalf("trial %d probe %d: model falsifies clause %d", trial, probe, i)
				}
			} else if got.Status == Unsat && len(got.Core) > 0 {
				coreIsSound(t, f, assumps, got.Core)
			}
		}
	}
}

func TestIncrementalTotalStatsAccumulate(t *testing.T) {
	f := pigeonhole(4)
	src := NewCDCL().StartIncremental(f)
	inc := src.(*Incremental)
	r1 := inc.SolveAssuming(nil)
	if r1.Status != Unsat {
		t.Fatalf("PHP(4) is UNSAT, got %v", r1.Status)
	}
	total := inc.TotalStats()
	if total.Propagations < r1.Stats.Propagations || total.Conflicts < r1.Stats.Conflicts {
		t.Errorf("session totals %+v must cover the call delta %+v", total, r1.Stats)
	}
}
