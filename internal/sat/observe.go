package sat

// Observe wraps an incremental session so that fn sees every
// SolveAssuming call together with its Result — assumptions, status,
// and the per-call effort Stats. Telemetry uses it to emit one
// "sat.solve" event per re-solve of the enumeration and minimization
// loops without the solver knowing anything about tracing. A nil fn
// returns the session unwrapped.
func Observe(in IncrementalSolver, fn func(assumps []Lit, res Result)) IncrementalSolver {
	if fn == nil {
		return in
	}
	return &observed{in: in, fn: fn}
}

type observed struct {
	in IncrementalSolver
	fn func(assumps []Lit, res Result)
}

func (o *observed) AddClause(c Clause) bool { return o.in.AddClause(c) }

func (o *observed) SolveAssuming(assumps []Lit) Result {
	res := o.in.SolveAssuming(assumps)
	o.fn(assumps, res)
	return res
}

// EnumerateModelsOn is EnumerateModelsStats running on a caller-provided
// incremental session — typically one wrapped with Observe, so each
// enumeration re-solve is visible to the caller.
func EnumerateModelsOn(inc IncrementalSolver, f *Formula, project []int, limit int) ([][]bool, Stats) {
	return enumerate(inc, f, project, limit)
}
