package sat

import (
	"math/rand"
	"testing"
)

func TestParseDimacsBasic(t *testing.T) {
	src := `c example
p cnf 3 2
1 -2 0
3 0
`
	f, err := ParseDimacs(src)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 3 || len(f.Clauses) != 2 {
		t.Fatalf("parsed %d vars %d clauses", f.NumVars, len(f.Clauses))
	}
	if f.Clauses[0][1] != Lit(-2) {
		t.Errorf("clause payload wrong: %v", f.Clauses[0])
	}
}

func TestParseDimacsMultilineClause(t *testing.T) {
	f, err := ParseDimacs("1 2\n-3 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Clauses) != 1 || len(f.Clauses[0]) != 3 {
		t.Errorf("multiline clause wrong: %v", f.Clauses)
	}
	if f.NumVars != 3 {
		t.Errorf("headerless NumVars = %d", f.NumVars)
	}
}

func TestParseDimacsErrors(t *testing.T) {
	for _, src := range []string{
		"p cnf x 2\n1 0\n",
		"p dnf 1 1\n1 0\n",
		"p cnf 1\n",
		"1 2\n", // unterminated
		"1 a 0\n",
		"p cnf 1 1\n2 0\n", // var exceeds header
		"p cnf 3 2\n1 0\n", // clause count mismatch
	} {
		if _, err := ParseDimacs(src); err == nil {
			t.Errorf("ParseDimacs(%q): expected error", src)
		}
	}
}

// Property: Dimacs → ParseDimacs round-trips random formulas and the
// solver agrees on satisfiability.
func TestDimacsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		f := randomFormula(rng, 8+rng.Intn(10), 20+rng.Intn(30))
		g, err := ParseDimacs(Dimacs(f))
		if err != nil {
			t.Fatal(err)
		}
		if g.NumVars != f.NumVars || len(g.Clauses) != len(f.Clauses) {
			t.Fatalf("round trip shape changed")
		}
		r1 := NewCDCL().Solve(f)
		r2 := NewCDCL().Solve(g)
		if r1.Status != r2.Status {
			t.Fatalf("status changed through round trip: %v vs %v", r1.Status, r2.Status)
		}
	}
}
