package sat

import (
	"bytes"
	"runtime"
	"testing"
	"time"
)

// unsatFormula returns a small root-unsatisfiable formula that needs
// real conflict analysis (not just clause-add simplification): the
// pigeonhole principle PHP(n+1, n) for n = 4.
func unsatFormula() *Formula {
	const holes = 4
	const pigeons = holes + 1
	f := NewFormula(pigeons * holes)
	v := func(p, h int) Lit { return Lit(p*holes + h + 1) }
	for p := 0; p < pigeons; p++ {
		c := make(Clause, holes)
		for h := 0; h < holes; h++ {
			c[h] = v(p, h)
		}
		f.Clauses = append(f.Clauses, c)
	}
	for h := 0; h < holes; h++ {
		for p := 0; p < pigeons; p++ {
			for q := p + 1; q < pigeons; q++ {
				f.Add(v(p, h).Neg(), v(q, h).Neg())
			}
		}
	}
	return f
}

func TestProofJSONLRoundTrip(t *testing.T) {
	p := NewProof(0)
	p.append(ProofAdd, []Lit{1, -3, 2})
	p.append(ProofInput, []Lit{-2})
	p.append(ProofDelete, []Lit{1, -3, 2})
	p.append(ProofAdd, nil)

	var buf bytes.Buffer
	if err := p.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	q, err := ReadProofJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadProofJSONL: %v", err)
	}
	if q.Len() != p.Len() {
		t.Fatalf("round trip: got %d steps, want %d", q.Len(), p.Len())
	}
	for i := 0; i < p.Len(); i++ {
		op1, lits1 := p.Step(i)
		op2, lits2 := q.Step(i)
		if op1 != op2 || len(lits1) != len(lits2) {
			t.Fatalf("step %d: got (%c, %v), want (%c, %v)", i, op2, lits2, op1, lits1)
		}
		for j := range lits1 {
			if lits1[j] != lits2[j] {
				t.Fatalf("step %d lit %d: got %d, want %d", i, j, lits2[j], lits1[j])
			}
		}
	}
}

func TestSolveUnsatCarriesProof(t *testing.T) {
	f := unsatFormula()
	res := (&CDCL{LogProof: true}).Solve(f)
	if res.Status != Unsat {
		t.Fatalf("status = %v, want Unsat", res.Status)
	}
	if res.Proof == nil || res.Proof.Len() == 0 {
		t.Fatalf("UNSAT result carries no proof steps")
	}
	if res.Stats.ProofSteps != int64(res.Proof.Len()) {
		t.Errorf("Stats.ProofSteps = %d, proof has %d steps", res.Stats.ProofSteps, res.Proof.Len())
	}
	// The proof must end in the empty clause (root conflict terminator).
	op, lits := res.Proof.Step(res.Proof.Len() - 1)
	if op != ProofAdd || len(lits) != 0 {
		t.Errorf("last step = (%c, %v), want empty lemma", op, lits)
	}
}

func TestSolveSatCarriesNoProof(t *testing.T) {
	f := NewFormula(3)
	f.Add(1, 2)
	f.Add(-1, 3)
	res := (&CDCL{LogProof: true}).Solve(f)
	if res.Status != Sat {
		t.Fatalf("status = %v, want Sat", res.Status)
	}
	if res.Proof != nil {
		t.Errorf("SAT result should carry a model, not a proof")
	}
	if Verify(f, res.Model) != -1 {
		t.Errorf("model does not satisfy the formula")
	}
}

func TestProofCapTruncates(t *testing.T) {
	f := unsatFormula()
	res := (&CDCL{LogProof: true, ProofCap: 3}).Solve(f)
	if res.Status != Unsat {
		t.Fatalf("status = %v, want Unsat", res.Status)
	}
	if res.Proof == nil {
		t.Fatalf("no proof attached")
	}
	if !res.Proof.Truncated() {
		t.Fatalf("proof with cap 3 not marked truncated")
	}
	if res.Proof.Len() != 3 {
		t.Errorf("proof len = %d, want cap 3", res.Proof.Len())
	}
	if res.Stats.ProofSteps != 3 {
		t.Errorf("Stats.ProofSteps = %d, want 3 accepted steps", res.Stats.ProofSteps)
	}
}

func TestIncrementalCoreClaimLogged(t *testing.T) {
	f := NewFormula(4)
	f.Add(-1, 3)
	f.Add(-2, -3)
	inc := (&CDCL{LogProof: true}).StartIncremental(f).(*Incremental)
	res := inc.SolveAssuming([]Lit{1, 2, 4})
	if res.Status != Unsat || res.Core == nil {
		t.Fatalf("status = %v core = %v, want assumption Unsat", res.Status, res.Core)
	}
	if res.Proof == nil {
		t.Fatalf("assumption-UNSAT result carries no proof")
	}
	// The last step must be the core claim: the negation of each core
	// literal.
	op, lits := res.Proof.Step(res.Proof.Len() - 1)
	if op != ProofAdd || len(lits) != len(res.Core) {
		t.Fatalf("last step = (%c, %v), want core claim over %v", op, lits, res.Core)
	}
	got := map[Lit]bool{}
	for _, l := range lits {
		got[l] = true
	}
	for _, l := range res.Core {
		if !got[l.Neg()] {
			t.Errorf("core claim %v missing ¬%v", lits, l)
		}
	}
}

func TestIncrementalAddClauseLogsInput(t *testing.T) {
	f := NewFormula(2)
	f.Add(1, 2)
	inc := (&CDCL{LogProof: true}).StartIncremental(f).(*Incremental)
	inc.AddClause(Clause{-1})
	inc.AddClause(Clause{-2})
	res := inc.SolveAssuming(nil)
	if res.Status != Unsat {
		t.Fatalf("status = %v, want Unsat", res.Status)
	}
	p := inc.Proof()
	inputs := 0
	for i := 0; i < p.Len(); i++ {
		if op, _ := p.Step(i); op == ProofInput {
			inputs++
		}
	}
	if inputs != 2 {
		t.Errorf("proof has %d input steps, want 2", inputs)
	}
}

// TestPortfolioLoserDiscardsPending is the regression test for the
// portfolio proof-buffer fix: cancelled losers must drop their staged
// steps at the stop-flag check rather than holding them until the
// goroutine exits, and no worker goroutine may outlive the solve.
func TestPortfolioLoserDiscardsPending(t *testing.T) {
	defer func() { testPortfolioHook = nil }()
	var captured []*cdclState
	testPortfolioHook = func(states []*cdclState) { captured = states }

	before := runtime.NumGoroutine()
	f := unsatFormula()
	pr := SolvePortfolioCertified(f, 4, 0)
	if pr.Result.Status != Unsat {
		t.Fatalf("status = %v, want Unsat", pr.Result.Status)
	}
	if pr.Result.Proof == nil {
		t.Fatalf("certified portfolio UNSAT carries no proof")
	}
	if len(captured) != 4 {
		t.Fatalf("hook saw %d states, want 4", len(captured))
	}
	for i, s := range captured {
		if s == nil {
			continue
		}
		if s.cancelled && s.proofPending != nil {
			t.Errorf("worker %d: cancelled but still holds %d pending proof steps", i, len(s.proofPending))
		}
	}
	// All worker goroutines must be gone (allow the runtime a moment to
	// retire them).
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, now)
	}
}

func TestPortfolioCertifiedSharedProofNoDeletes(t *testing.T) {
	f := unsatFormula()
	pr := SolvePortfolioCertified(f, 4, 0)
	if pr.Result.Status != Unsat || pr.Result.Proof == nil {
		t.Fatalf("want certified Unsat, got %v", pr.Result.Status)
	}
	p := pr.Result.Proof
	for i := 0; i < p.Len(); i++ {
		if op, lits := p.Step(i); op == ProofDelete {
			t.Fatalf("shared-mode proof contains a delete step at %d: %v", i, lits)
		}
	}
	if got := pr.TotalStats().ProofSteps; got != int64(p.Len()) {
		t.Errorf("TotalStats.ProofSteps = %d, proof has %d steps", got, p.Len())
	}
}
