package sat

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func solvers() []Solver { return []Solver{NewCDCL(), NewDPLL()} }

func TestLitBasics(t *testing.T) {
	l := Lit(3)
	if l.Var() != 3 || l.Neg() != -3 || l.Neg().Var() != 3 {
		t.Error("Lit ops wrong")
	}
}

func TestTrivial(t *testing.T) {
	for _, s := range solvers() {
		f := NewFormula(1)
		f.AddUnit(1)
		r := s.Solve(f)
		if r.Status != Sat || !r.Model[1] {
			t.Errorf("%s: unit positive: %v", s.Name(), r)
		}

		f2 := NewFormula(1)
		f2.AddUnit(-1)
		r2 := s.Solve(f2)
		if r2.Status != Sat || r2.Model[1] {
			t.Errorf("%s: unit negative: %v", s.Name(), r2)
		}

		f3 := NewFormula(1)
		f3.AddUnit(1)
		f3.AddUnit(-1)
		if r3 := s.Solve(f3); r3.Status != Unsat {
			t.Errorf("%s: x ∧ ¬x should be UNSAT, got %v", s.Name(), r3.Status)
		}

		f4 := NewFormula(0)
		f4.Add() // empty clause
		if r4 := s.Solve(f4); r4.Status != Unsat {
			t.Errorf("%s: empty clause should be UNSAT", s.Name())
		}

		f5 := NewFormula(2) // empty formula: SAT
		if r5 := s.Solve(f5); r5.Status != Sat {
			t.Errorf("%s: empty formula should be SAT", s.Name())
		}
	}
}

func TestImplicationChain(t *testing.T) {
	for _, s := range solvers() {
		f := NewFormula(50)
		f.AddUnit(1)
		for i := 1; i < 50; i++ {
			f.AddImplies(Lit(i), Lit(i+1))
		}
		r := s.Solve(f)
		if r.Status != Sat {
			t.Fatalf("%s: chain should be SAT", s.Name())
		}
		for v := 1; v <= 50; v++ {
			if !r.Model[v] {
				t.Fatalf("%s: var %d should be true by propagation", s.Name(), v)
			}
		}
	}
}

func TestExactlyOne(t *testing.T) {
	for _, s := range solvers() {
		f := NewFormula(4)
		f.AddExactlyOne(1, 2, 3, 4)
		r := s.Solve(f)
		if r.Status != Sat {
			t.Fatalf("%s: exactly-one should be SAT", s.Name())
		}
		if n := len(TrueVars(r.Model)); n != 1 {
			t.Errorf("%s: exactly one var should be true, got %d", s.Name(), n)
		}
	}
}

func TestExactlyOneConflict(t *testing.T) {
	for _, s := range solvers() {
		f := NewFormula(2)
		f.AddExactlyOne(1, 2)
		f.AddUnit(1)
		f.AddUnit(2)
		if r := s.Solve(f); r.Status != Unsat {
			t.Errorf("%s: forcing two of an exactly-one should be UNSAT", s.Name())
		}
	}
}

func TestImpliesExactlyOne(t *testing.T) {
	// The paper's openmrs → ⊕{jdk, jre} constraint shape: guard false
	// means no obligation.
	for _, s := range solvers() {
		f := NewFormula(3)
		f.AddImpliesExactlyOne(1, 2, 3)
		f.AddUnit(-1)
		f.AddUnit(-2)
		f.AddUnit(-3)
		if r := s.Solve(f); r.Status != Sat {
			t.Errorf("%s: unguarded exactly-one should allow all-false", s.Name())
		}

		f2 := NewFormula(3)
		f2.AddImpliesExactlyOne(1, 2, 3)
		f2.AddUnit(1)
		r2 := s.Solve(f2)
		if r2.Status != Sat {
			t.Fatalf("%s: guarded exactly-one should be SAT", s.Name())
		}
		if r2.Model[2] == r2.Model[3] {
			t.Errorf("%s: exactly one of {2,3} must hold, model=%v", s.Name(), r2.Model)
		}
	}
}

func TestPaperSection2Constraints(t *testing.T) {
	// The exact constraint system from §2 of the paper:
	// vars: server=1 tomcat=2 openmrs=3 jdk=4 jre=5 mysql=6
	for _, s := range solvers() {
		f := NewFormula(6)
		f.AddUnit(1)                    // server from install spec
		f.AddUnit(2)                    // tomcat from install spec
		f.AddUnit(3)                    // openmrs from install spec
		f.AddImpliesExactlyOne(3, 4, 5) // openmrs → ⊕{jdk, jre}
		f.AddImpliesExactlyOne(2, 4, 5) // tomcat → ⊕{jdk, jre}
		f.AddImplies(3, 6)              // openmrs → mysql
		f.AddImplies(2, 1)              // tomcat → server (inside)
		f.AddImplies(3, 2)              // openmrs → tomcat (inside)
		f.AddImplies(6, 1)              // mysql → server (inside)
		f.AddImplies(4, 1)              // jdk → server (inside)
		f.AddImplies(5, 1)              // jre → server (inside)
		r := s.Solve(f)
		if r.Status != Sat {
			t.Fatalf("%s: §2 constraints should be SAT", s.Name())
		}
		m := r.Model
		if !m[1] || !m[2] || !m[3] || !m[6] {
			t.Errorf("%s: server, tomcat, openmrs, mysql must all be deployed: %v", s.Name(), m)
		}
		if m[4] == m[5] {
			t.Errorf("%s: exactly one of jdk/jre: %v", s.Name(), m)
		}
		if i := Verify(f, m); i >= 0 {
			t.Errorf("%s: model falsifies clause %d", s.Name(), i)
		}
	}
}

// pigeonhole(n) is unsatisfiable for n+1 pigeons into n holes — a
// classic hard family for resolution-based solvers; small instances
// exercise conflict analysis thoroughly.
func pigeonhole(n int) *Formula {
	varOf := func(p, h int) Lit { return Lit(p*n + h + 1) }
	f := NewFormula((n + 1) * n)
	for p := 0; p <= n; p++ {
		c := make([]Lit, n)
		for h := 0; h < n; h++ {
			c[h] = varOf(p, h)
		}
		f.Add(c...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				f.Add(varOf(p1, h).Neg(), varOf(p2, h).Neg())
			}
		}
	}
	return f
}

func TestPigeonholeUnsat(t *testing.T) {
	for _, s := range solvers() {
		for n := 2; n <= 5; n++ {
			if r := s.Solve(pigeonhole(n)); r.Status != Unsat {
				t.Errorf("%s: PHP(%d) should be UNSAT, got %v", s.Name(), n, r.Status)
			}
		}
	}
}

func TestPigeonholeLargerCDCL(t *testing.T) {
	if r := NewCDCL().Solve(pigeonhole(7)); r.Status != Unsat {
		t.Errorf("PHP(7) should be UNSAT, got %v", r.Status)
	}
}

// randomFormula builds a random 3-SAT instance with the given
// clause/variable ratio seedable for reproducibility.
func randomFormula(rng *rand.Rand, nVars, nClauses int) *Formula {
	f := NewFormula(nVars)
	for i := 0; i < nClauses; i++ {
		c := make([]Lit, 3)
		for j := range c {
			v := rng.Intn(nVars) + 1
			if rng.Intn(2) == 0 {
				c[j] = Lit(v)
			} else {
				c[j] = Lit(-v)
			}
		}
		f.Add(c...)
	}
	return f
}

func TestSolversAgreeOnRandom3SAT(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cdcl, dpll := NewCDCL(), NewDPLL()
	for trial := 0; trial < 60; trial++ {
		nVars := 10 + rng.Intn(20)
		nClauses := int(float64(nVars) * (3.0 + rng.Float64()*2.0))
		f := randomFormula(rng, nVars, nClauses)
		r1 := cdcl.Solve(f)
		r2 := dpll.Solve(f)
		if r1.Status != r2.Status {
			t.Fatalf("trial %d: CDCL=%v DPLL=%v\n%s", trial, r1.Status, r2.Status, Dimacs(f))
		}
		if r1.Status == Sat {
			if i := Verify(f, r1.Model); i >= 0 {
				t.Fatalf("trial %d: CDCL model falsifies clause %d", trial, i)
			}
			if i := Verify(f, r2.Model); i >= 0 {
				t.Fatalf("trial %d: DPLL model falsifies clause %d", trial, i)
			}
		}
	}
}

func TestCDCLModelAlwaysVerifies(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewCDCL()
	for trial := 0; trial < 100; trial++ {
		nVars := 20 + rng.Intn(40)
		nClauses := int(float64(nVars) * 3.5)
		f := randomFormula(rng, nVars, nClauses)
		r := s.Solve(f)
		if r.Status == Sat {
			if i := Verify(f, r.Model); i >= 0 {
				t.Fatalf("trial %d: model falsifies clause %d\n%s", trial, i, Dimacs(f))
			}
		}
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	for _, s := range solvers() {
		f := NewFormula(2)
		f.Add(1, -1)   // tautology
		f.Add(2, 2, 2) // duplicates
		f.AddUnit(-2)  // conflicts with above
		if r := s.Solve(f); r.Status != Unsat {
			t.Errorf("%s: want UNSAT, got %v", s.Name(), r.Status)
		}
	}
}

func TestLadderEncodingEquivalent(t *testing.T) {
	// Exactly-one via ladder must admit exactly the same projections on
	// the original variables as the pairwise encoding.
	for n := 2; n <= 8; n++ {
		lits := make([]Lit, n)
		for i := range lits {
			lits[i] = Lit(i + 1)
		}
		for forced := 1; forced <= n; forced++ {
			f := NewFormula(n)
			f.AddExactlyOneLadder(lits...)
			f.AddUnit(Lit(forced))
			r := NewCDCL().Solve(f)
			if r.Status != Sat {
				t.Fatalf("ladder n=%d forced=%d: want SAT", n, forced)
			}
			count := 0
			for v := 1; v <= n; v++ {
				if r.Model[v] {
					count++
				}
			}
			if count != 1 {
				t.Errorf("ladder n=%d forced=%d: %d originals true", n, forced, count)
			}
		}
		// Forcing two originals must be UNSAT.
		if n >= 2 {
			f := NewFormula(n)
			f.AddExactlyOneLadder(lits...)
			f.AddUnit(1)
			f.AddUnit(2)
			if r := NewCDCL().Solve(f); r.Status != Unsat {
				t.Errorf("ladder n=%d: two true originals should be UNSAT", n)
			}
		}
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestDimacs(t *testing.T) {
	f := NewFormula(3)
	f.Add(1, -2)
	f.Add(3)
	d := Dimacs(f)
	if !strings.HasPrefix(d, "p cnf 3 2\n") {
		t.Errorf("Dimacs header wrong: %q", d)
	}
	if !strings.Contains(d, "1 -2 0\n") || !strings.Contains(d, "3 0\n") {
		t.Errorf("Dimacs clauses wrong: %q", d)
	}
}

func TestStatusString(t *testing.T) {
	if Sat.String() != "SAT" || Unsat.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Error("status strings wrong")
	}
}

func TestDPLLMaxDecisions(t *testing.T) {
	d := &DPLL{MaxDecisions: 1}
	r := d.Solve(pigeonhole(6))
	if r.Status != Unknown {
		t.Errorf("bounded DPLL should give up with Unknown, got %v", r.Status)
	}
}

func TestVerifyDetectsBadModel(t *testing.T) {
	f := NewFormula(2)
	f.Add(1)
	f.Add(2)
	bad := []bool{false, true, false}
	if i := Verify(f, bad); i != 1 {
		t.Errorf("Verify should flag clause 1, got %d", i)
	}
}

// Property: for random small formulas, if CDCL reports SAT the model
// verifies; if it reports UNSAT, brute force agrees.
func TestCDCLAgainstBruteForce(t *testing.T) {
	brute := func(f *Formula) bool {
		n := f.NumVars
		for mask := 0; mask < 1<<n; mask++ {
			model := make([]bool, n+1)
			for v := 1; v <= n; v++ {
				model[v] = mask&(1<<(v-1)) != 0
			}
			if Verify(f, model) < 0 {
				return true
			}
		}
		return false
	}
	rng := rand.New(rand.NewSource(99))
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		nVars := 3 + r.Intn(6) // ≤ 8 vars: brute force is 256 models max
		nClauses := 2 + r.Intn(25)
		f := randomFormula(r, nVars, nClauses)
		res := NewCDCL().Solve(f)
		want := brute(f)
		if want != (res.Status == Sat) {
			return false
		}
		if res.Status == Sat && Verify(f, res.Model) >= 0 {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStatsPopulated(t *testing.T) {
	r := NewCDCL().Solve(pigeonhole(5))
	if r.Stats.Conflicts == 0 || r.Stats.Decisions == 0 {
		t.Errorf("PHP(5) should record decisions and conflicts: %+v", r.Stats)
	}
}
