package sat

// This file implements DRAT-style proof logging for the CDCL solver.
// While solving, the solver appends every learned clause ("a"), every
// reduceDB deletion ("d"), and every clause added to an incremental
// session after logging started ("i") to a Proof. An UNSAT answer then
// carries a machine-checkable derivation: each "a" lemma is a reverse
// unit propagation (RUP) consequence of the original formula plus the
// preceding lemmas, so an independent checker (internal/certify) that
// knows nothing about CDCL can replay the proof with a dumb
// unit-propagator and confirm the verdict.
//
// Three logging sites make every UNSAT path self-certifying:
//
//   - learned clauses (first-UIP, possibly minimized) are RUP at learn
//     time — they are logged before they are attached or exported;
//   - a root-level conflict logs the empty clause, the classic DRAT
//     terminator;
//   - an assumption failure logs the *core claim*: the clause
//     ¬a1 ∨ … ∨ ¬ak over the final-conflict core, which is RUP at that
//     moment (asserting the core assumptions and propagating reproduces
//     the conflict). The claim persists in the clause DB across later
//     solves and deletions, so a MUS extracted over many SolveAssuming
//     calls stays checkable against the finished proof.
//
// Portfolio mode shares ONE Proof across all workers. Each worker
// stages steps in a private pending buffer and flushes it under the
// proof mutex before publishing any clause to the exchange
// (flush-before-publish): an imported clause is therefore always
// already in the shared log ahead of any lemma derived from it, and
// because RUP is monotone in the clause DB, every logged lemma remains
// RUP with respect to its log prefix even though the prefix interleaves
// clauses the deriving worker never saw. Deletions are suppressed in
// shared mode — worker A deleting its private copy must not delete the
// logged clause worker B's lemmas still lean on. Cancelled losers
// discard their pending buffers promptly at the stop-flag check; a
// pending step is by construction unpublished, so dropping it never
// invalidates the log.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// ProofOp is one proof step kind.
type ProofOp byte

// Proof step kinds.
const (
	// ProofAdd is a RUP lemma: implied by the original formula plus the
	// preceding accepted lemmas, checkable by unit propagation alone.
	ProofAdd ProofOp = 'a'
	// ProofDelete removes a previously present clause from the checker's
	// working set (logged by reduceDB in non-shared solves).
	ProofDelete ProofOp = 'd'
	// ProofInput is a clause added to an incremental session after
	// logging started. It is trusted, not derived: the checker installs
	// it as an axiom, and callers must account for it when judging what
	// the proof proves.
	ProofInput ProofOp = 'i'
)

// proofStep is one staged step in a worker's pending buffer.
type proofStep struct {
	op   ProofOp
	lits []Lit
}

// Proof is a compact in-memory derivation log. Steps are stored flat
// (one byte of op plus a literal range per step) and appended under a
// mutex so portfolio workers can share one sink. A step cap bounds
// memory on runaway solves; once hit, further appends are dropped and
// the proof is marked truncated (checkers must reject it).
type Proof struct {
	mu        sync.Mutex
	ops       []byte
	ends      []int32 // ends[i] = end offset of step i's literals in lits
	lits      []Lit
	capSteps  int // 0 = unlimited
	truncated bool
}

// NewProof returns an empty proof bounded to capSteps steps
// (0 = unlimited).
func NewProof(capSteps int) *Proof {
	return &Proof{capSteps: capSteps}
}

// Len reports the number of accepted steps.
func (p *Proof) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.ops)
}

// Truncated reports whether the step cap was hit; a truncated proof is
// incomplete and must be rejected by checkers.
func (p *Proof) Truncated() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.truncated
}

// Step returns step i. The returned slice aliases the proof's storage
// and must not be mutated.
func (p *Proof) Step(i int) (ProofOp, []Lit) {
	p.mu.Lock()
	defer p.mu.Unlock()
	start := int32(0)
	if i > 0 {
		start = p.ends[i-1]
	}
	return ProofOp(p.ops[i]), p.lits[start:p.ends[i]]
}

// Append records one step outside the solver (tools and tests that
// construct or mutate proofs); it reports whether the step was accepted
// (false once the cap is hit). The literal slice is not retained.
func (p *Proof) Append(op ProofOp, lits []Lit) bool {
	return p.append(op, append([]Lit(nil), lits...))
}

// append records one step; it reports whether the step was accepted
// (false once the cap is hit).
func (p *Proof) append(op ProofOp, lits []Lit) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.appendLocked(op, lits)
}

func (p *Proof) appendLocked(op ProofOp, lits []Lit) bool {
	if p.capSteps > 0 && len(p.ops) >= p.capSteps {
		p.truncated = true
		return false
	}
	p.ops = append(p.ops, byte(op))
	p.lits = append(p.lits, lits...)
	p.ends = append(p.ends, int32(len(p.lits)))
	return true
}

// appendSteps records a batch under one lock acquisition, preserving
// order; it returns how many steps were accepted.
func (p *Proof) appendSteps(steps []proofStep) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, st := range steps {
		if !p.appendLocked(st.op, st.lits) {
			break
		}
		n++
	}
	return n
}

// proofLine is the JSON-lines wire form of one step.
type proofLine struct {
	Op   string `json:"op"`
	Lits []int  `json:"lits"`
}

// WriteJSONL writes the proof as JSON lines, one step per line:
//
//	{"op":"a","lits":[1,-3]}
func (p *Proof) WriteJSONL(w io.Writer) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	start := int32(0)
	for i, op := range p.ops {
		lits := p.lits[start:p.ends[i]]
		start = p.ends[i]
		line := proofLine{Op: string(rune(op)), Lits: make([]int, len(lits))}
		for j, l := range lits {
			line.Lits[j] = int(l)
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadProofJSONL parses a proof in the WriteJSONL format.
func ReadProofJSONL(r io.Reader) (*Proof, error) {
	p := NewProof(0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	n := 0
	for sc.Scan() {
		n++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var line proofLine
		if err := json.Unmarshal(raw, &line); err != nil {
			return nil, fmt.Errorf("proof line %d: %w", n, err)
		}
		var op ProofOp
		switch line.Op {
		case "a":
			op = ProofAdd
		case "d":
			op = ProofDelete
		case "i":
			op = ProofInput
		default:
			return nil, fmt.Errorf("proof line %d: unknown op %q", n, line.Op)
		}
		lits := make([]Lit, len(line.Lits))
		for j, l := range line.Lits {
			if l == 0 {
				return nil, fmt.Errorf("proof line %d: zero literal", n)
			}
			lits[j] = Lit(l)
		}
		p.appendLocked(op, lits)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return p, nil
}

// proofPendingMax bounds a portfolio worker's pending buffer: past it,
// the buffer is flushed even without a publish, so worker memory stays
// bounded regardless of how rarely short clauses are exported.
const proofPendingMax = 256

// logStep records a step: directly into the proof in solo mode, or into
// the worker's pending buffer in shared (portfolio) mode. lits must be
// owned by the caller (not alias solver state that later mutates).
func (s *cdclState) logStep(op ProofOp, lits []Lit) {
	if s.proof == nil {
		return
	}
	if !s.proofShared {
		if s.proof.append(op, lits) {
			s.stats.ProofSteps++
		}
		return
	}
	s.proofPending = append(s.proofPending, proofStep{op: op, lits: lits})
	if len(s.proofPending) >= proofPendingMax {
		s.flushProof()
	}
}

// flushProof publishes the pending buffer to the shared proof in order.
// It must run before any clause is published to the exchange
// (flush-before-publish) and at the end of an uncancelled solve.
func (s *cdclState) flushProof() {
	if s.proof == nil || len(s.proofPending) == 0 {
		return
	}
	s.stats.ProofSteps += int64(s.proof.appendSteps(s.proofPending))
	s.proofPending = s.proofPending[:0]
}

// discardProofPending drops staged steps without publishing them. Sound
// for cancelled portfolio losers: a pending step was never visible to
// siblings, so nothing in the shared log can depend on it.
func (s *cdclState) discardProofPending() {
	s.proofPending = nil
}

// logLemma records a just-derived clause (internal literals) as a RUP
// lemma.
func (s *cdclState) logLemma(lits []ilit) {
	if s.proof == nil {
		return
	}
	ext := make([]Lit, len(lits))
	for i, l := range lits {
		ext[i] = toExternal(l)
	}
	s.logStep(ProofAdd, ext)
}

// logEmptyLemma records the empty clause — the DRAT terminator — and
// flushes, so the finished proof certifies UNSAT immediately.
func (s *cdclState) logEmptyLemma() {
	if s.proof == nil {
		return
	}
	s.logStep(ProofAdd, nil)
	s.flushProof()
}

// logCoreClaim records the clause ¬a1 ∨ … ∨ ¬ak over a final-conflict
// core: RUP at claim time, and the persistent witness that the core
// assumptions are jointly inconsistent with the clause set.
func (s *cdclState) logCoreClaim(core []Lit) {
	if s.proof == nil {
		return
	}
	neg := make([]Lit, len(core))
	for i, l := range core {
		neg[i] = l.Neg()
	}
	s.logStep(ProofAdd, neg)
	s.flushProof()
}

// logDeleteClause records a reduceDB deletion. Suppressed in shared
// mode: the logged copy may still support another worker's lemmas.
func (s *cdclState) logDeleteClause(c cref) {
	if s.proof == nil || s.proofShared {
		return
	}
	lits := s.ar.lits(c)
	ext := make([]Lit, len(lits))
	for i, l := range lits {
		ext[i] = toExternal(l)
	}
	s.logStep(ProofDelete, ext)
}
