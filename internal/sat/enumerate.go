package sat

// EnumerateModels returns up to limit satisfying assignments of f,
// distinct on the projection variables (nil projects onto all
// variables). After each model a blocking clause over the projection is
// added, so the enumeration never repeats a projected assignment.
// Auxiliary variables (e.g., from the ladder encoding) are typically
// excluded via the projection.
//
// limit ≤ 0 means "no limit"; enumeration is then bounded only by the
// projected model count, which can be exponential — callers should
// project and bound accordingly.
func EnumerateModels(s Solver, f *Formula, project []int, limit int) [][]bool {
	if project == nil {
		project = make([]int, f.NumVars)
		for v := 1; v <= f.NumVars; v++ {
			project[v-1] = v
		}
	}
	// Work on a private copy so the caller's formula is untouched.
	work := &Formula{NumVars: f.NumVars, Clauses: append([]Clause(nil), f.Clauses...)}

	var models [][]bool
	for limit <= 0 || len(models) < limit {
		res := s.Solve(work)
		if res.Status != Sat {
			break
		}
		model := make([]bool, len(res.Model))
		copy(model, res.Model)
		models = append(models, model)

		block := make(Clause, 0, len(project))
		for _, v := range project {
			if v < 1 || v >= len(model) {
				continue
			}
			if model[v] {
				block = append(block, Lit(-v))
			} else {
				block = append(block, Lit(v))
			}
		}
		if len(block) == 0 {
			break // empty projection: one model class only
		}
		work.Clauses = append(work.Clauses, block)
	}
	return models
}

// CountModels counts satisfying assignments distinct on the projection,
// up to max (0 = unbounded).
func CountModels(s Solver, f *Formula, project []int, max int) int {
	return len(EnumerateModels(s, f, project, max))
}
