package sat

// EnumerateModels returns up to limit satisfying assignments of f,
// distinct on the projection variables (nil projects onto all
// variables). After each model a blocking clause over the projection is
// added, so the enumeration never repeats a projected assignment.
// Auxiliary variables (e.g., from the ladder encoding) are typically
// excluded via the projection.
//
// Enumeration runs on an incremental session (StartIncremental): with
// a warm-capable solver such as CDCL, each blocking clause is a single
// AddClause and the re-solve keeps all learned clauses, variable
// activity, and saved phases — the growing formula is never re-solved
// from a cold start. One-shot solvers (DPLL) fall back to the cold
// adapter transparently. The input formula is never mutated.
//
// limit ≤ 0 means "no limit"; enumeration is then bounded only by the
// projected model count, which can be exponential — callers should
// project and bound accordingly.
func EnumerateModels(s Solver, f *Formula, project []int, limit int) [][]bool {
	models, _ := EnumerateModelsStats(s, f, project, limit)
	return models
}

// EnumerateModelsStats is EnumerateModels plus the total solver effort
// summed over every solve of the enumeration.
func EnumerateModelsStats(s Solver, f *Formula, project []int, limit int) ([][]bool, Stats) {
	return enumerate(StartIncremental(s, f), f, project, limit)
}

// EnumerateModelsCold enumerates with the cold-start strategy — every
// model re-solves the grown formula from scratch — regardless of the
// solver's incremental support. It exists as the measured ablation
// baseline for the incremental path (BenchmarkIncrementalEnumeration);
// the model set is identical to EnumerateModels on exhaustive runs.
func EnumerateModelsCold(s Solver, f *Formula, project []int, limit int) ([][]bool, Stats) {
	return enumerate(newColdIncremental(s, f), f, project, limit)
}

func enumerate(inc IncrementalSolver, f *Formula, project []int, limit int) ([][]bool, Stats) {
	if project == nil {
		project = make([]int, f.NumVars)
		for v := 1; v <= f.NumVars; v++ {
			project[v-1] = v
		}
	}
	var models [][]bool
	var total Stats
	for limit <= 0 || len(models) < limit {
		res := inc.SolveAssuming(nil)
		total = addStats(total, res.Stats)
		if res.Status != Sat {
			break
		}
		model := make([]bool, len(res.Model))
		copy(model, res.Model)
		models = append(models, model)

		block := make(Clause, 0, len(project))
		for _, v := range project {
			if v < 1 || v >= len(model) {
				continue
			}
			if model[v] {
				block = append(block, Lit(-v))
			} else {
				block = append(block, Lit(v))
			}
		}
		if len(block) == 0 {
			break // empty projection: one model class only
		}
		if !inc.AddClause(block) {
			break // blocking clause closed the space at level 0
		}
	}
	return models, total
}

func addStats(a, b Stats) Stats {
	return Stats{
		Decisions:    a.Decisions + b.Decisions,
		Propagations: a.Propagations + b.Propagations,
		Conflicts:    a.Conflicts + b.Conflicts,
		Learned:      a.Learned + b.Learned,
		Restarts:     a.Restarts + b.Restarts,
	}
}

// CountModels counts satisfying assignments distinct on the projection,
// up to max (0 = unbounded).
func CountModels(s Solver, f *Formula, project []int, max int) int {
	return len(EnumerateModels(s, f, project, max))
}
