// Package sat implements Boolean satisfiability solving for Engage's
// configuration engine. The paper uses MiniSat; this package provides a
// from-scratch CDCL solver (conflict-driven clause learning with
// two-literal watching, VSIDS branching, first-UIP learning, and Luby
// restarts) plus a simple DPLL solver used as an ablation baseline.
//
// Formulas are in CNF. Variables are numbered 1..NumVars; a literal is a
// non-zero int whose sign gives polarity (DIMACS convention).
package sat

import (
	"fmt"
	"sort"
	"strings"
)

// Lit is a DIMACS-style literal: +v or -v for variable v ≥ 1.
type Lit int

// Var returns the literal's variable.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Neg returns the negated literal.
func (l Lit) Neg() Lit { return -l }

// Clause is a disjunction of literals.
type Clause []Lit

// Formula is a CNF formula.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// NewFormula returns an empty formula over n variables.
func NewFormula(n int) *Formula { return &Formula{NumVars: n} }

// AddVar allocates a fresh variable and returns it.
func (f *Formula) AddVar() int {
	f.NumVars++
	return f.NumVars
}

// Add appends a clause. Empty clauses are legal and make the formula
// trivially unsatisfiable.
func (f *Formula) Add(lits ...Lit) {
	c := make(Clause, len(lits))
	copy(c, lits)
	f.Clauses = append(f.Clauses, c)
}

// AddUnit appends a unit clause.
func (f *Formula) AddUnit(l Lit) { f.Add(l) }

// AddImplies appends a → b as the clause (¬a ∨ b).
func (f *Formula) AddImplies(a, b Lit) { f.Add(a.Neg(), b) }

// AddExactlyOne appends the pairwise "exactly one" encoding of the
// paper's ⊕S predicate: at-least-one (S as a clause) plus at-most-one
// (¬p ∨ ¬q for all distinct p,q ∈ S).
func (f *Formula) AddExactlyOne(lits ...Lit) {
	f.Add(lits...)
	for i := 0; i < len(lits); i++ {
		for j := i + 1; j < len(lits); j++ {
			f.Add(lits[i].Neg(), lits[j].Neg())
		}
	}
}

// AddImpliesExactlyOne encodes the paper's dependency constraint (1):
// rsrc(v) → ⊕{rsrc(v1), …, rsrc(vn)}. At-least-one becomes
// (¬v ∨ v1 ∨ … ∨ vn); at-most-one pairs are guarded by v.
func (f *Formula) AddImpliesExactlyOne(v Lit, lits ...Lit) {
	c := make(Clause, 0, len(lits)+1)
	c = append(c, v.Neg())
	c = append(c, lits...)
	f.Clauses = append(f.Clauses, c)
	for i := 0; i < len(lits); i++ {
		for j := i + 1; j < len(lits); j++ {
			f.Add(v.Neg(), lits[i].Neg(), lits[j].Neg())
		}
	}
}

// AddExactlyOneLadder appends the sequential ("ladder" / commander-free
// BDD-style) exactly-one encoding using auxiliary variables: linear in
// |S| clauses instead of quadratic. Used by the A2 ablation bench.
func (f *Formula) AddExactlyOneLadder(lits ...Lit) {
	n := len(lits)
	if n <= 3 {
		f.AddExactlyOne(lits...)
		return
	}
	// s_i ≡ "some literal among lits[0..i] is true".
	f.Add(lits...) // at least one
	s := make([]Lit, n-1)
	for i := range s {
		s[i] = Lit(f.AddVar())
	}
	// lits[0] → s_0 ; s_{i-1} → s_i ; lits[i] → s_i ; lits[i] → ¬s_{i-1}
	f.AddImplies(lits[0], s[0])
	for i := 1; i < n-1; i++ {
		f.AddImplies(s[i-1], s[i])
		f.AddImplies(lits[i], s[i])
		f.Add(lits[i].Neg(), s[i-1].Neg())
	}
	f.Add(lits[n-1].Neg(), s[n-2].Neg())
}

// Status is the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// Stats reports solver effort.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Learned      int64
	Restarts     int64
	// ProofSteps counts proof steps accepted into the derivation log
	// (zero when proof logging is off; stops growing once the log's
	// step cap is hit and the proof is marked truncated).
	ProofSteps int64
}

// Result is the outcome of a Solve call. Model is indexed by variable
// (Model[v] for v in 1..NumVars; index 0 unused) and valid iff Status is
// Sat.
type Result struct {
	Status Status
	Model  []bool
	// Core is set only by IncrementalSolver.SolveAssuming when Status
	// is Unsat and the assumptions caused the conflict: a subset of
	// the assumptions that is jointly inconsistent with the clause
	// set. Nil on Unsat means the clause set is unsatisfiable on its
	// own.
	Core  []Lit
	Stats Stats
	// Proof is the derivation log backing an Unsat verdict, set when
	// proof logging was enabled (CDCL.LogProof, Incremental.StartProof,
	// SolvePortfolioCertified). internal/certify replays it against the
	// original formula with an independent unit-propagator.
	Proof *Proof
}

// Solver solves CNF formulas. Implementations: *CDCL, *DPLL.
type Solver interface {
	Solve(f *Formula) Result
	// Name identifies the implementation in benchmarks.
	Name() string
}

// Verify checks that an assignment satisfies the formula; it returns the
// index of the first falsified clause, or -1.
func Verify(f *Formula, model []bool) int {
	for i, c := range f.Clauses {
		ok := false
		for _, l := range c {
			v := l.Var()
			if v < len(model) && (model[v] == (l > 0)) {
				ok = true
				break
			}
		}
		if !ok {
			return i
		}
	}
	return -1
}

// Dimacs renders the formula in DIMACS CNF format, for debugging and for
// golden tests.
func Dimacs(f *Formula) string {
	var b strings.Builder
	fmt.Fprintf(&b, "p cnf %d %d\n", f.NumVars, len(f.Clauses))
	for _, c := range f.Clauses {
		parts := make([]string, 0, len(c)+1)
		for _, l := range c {
			parts = append(parts, fmt.Sprintf("%d", int(l)))
		}
		parts = append(parts, "0")
		b.WriteString(strings.Join(parts, " "))
		b.WriteByte('\n')
	}
	return b.String()
}

// TrueVars lists the variables assigned true in a model, sorted.
func TrueVars(model []bool) []int {
	var out []int
	for v := 1; v < len(model); v++ {
		if model[v] {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}
