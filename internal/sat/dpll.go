package sat

// DPLL is a plain Davis–Putnam–Logemann–Loveland solver: recursive
// backtracking with unit propagation and pure-literal elimination, no
// learning, no watched literals. It exists as the ablation baseline
// (bench A1) contrasting with the CDCL engine the configuration engine
// uses, mirroring the paper's choice of a modern SAT solver (MiniSat).
type DPLL struct {
	// MaxDecisions bounds the search (0 = unbounded); if exceeded the
	// result status is Unknown. Benchmarks use this to keep pathological
	// cases bounded.
	MaxDecisions int64
}

// NewDPLL returns a DPLL solver.
func NewDPLL() *DPLL { return &DPLL{} }

// Name implements Solver.
func (*DPLL) Name() string { return "dpll" }

type dpllState struct {
	nVars   int
	clauses []Clause
	assign  []int8 // by var, 1-based
	trail   []int
	stats   Stats
	maxDec  int64
	aborted bool
}

// Solve implements Solver.
func (d *DPLL) Solve(f *Formula) Result {
	s := &dpllState{
		nVars:   f.NumVars,
		clauses: f.Clauses,
		assign:  make([]int8, f.NumVars+1),
		maxDec:  d.MaxDecisions,
	}
	sat := s.solve()
	if s.aborted {
		return Result{Status: Unknown, Stats: s.stats}
	}
	if !sat {
		return Result{Status: Unsat, Stats: s.stats}
	}
	model := make([]bool, f.NumVars+1)
	for v := 1; v <= f.NumVars; v++ {
		model[v] = s.assign[v] == valTrue
	}
	return Result{Status: Sat, Model: model, Stats: s.stats}
}

func (s *dpllState) litVal(l Lit) int8 {
	a := s.assign[l.Var()]
	if a == valUnassigned {
		return valUnassigned
	}
	if l < 0 {
		return -a
	}
	return a
}

func (s *dpllState) set(l Lit) {
	if l < 0 {
		s.assign[l.Var()] = valFalse
	} else {
		s.assign[l.Var()] = valTrue
	}
	s.trail = append(s.trail, l.Var())
}

func (s *dpllState) undoTo(mark int) {
	for len(s.trail) > mark {
		v := s.trail[len(s.trail)-1]
		s.trail = s.trail[:len(s.trail)-1]
		s.assign[v] = valUnassigned
	}
}

// propagate applies unit propagation and pure-literal elimination to a
// fixpoint. It returns false on conflict.
func (s *dpllState) propagate() bool {
	for {
		changed := false
		// Unit propagation.
		for _, c := range s.clauses {
			var unit Lit
			unsat := true
			nUnassigned := 0
			for _, l := range c {
				switch s.litVal(l) {
				case valTrue:
					unsat = false
					nUnassigned = -1
				case valUnassigned:
					nUnassigned++
					unit = l
				}
				if nUnassigned < 0 {
					break
				}
			}
			if nUnassigned < 0 {
				continue // satisfied
			}
			if nUnassigned == 0 && unsat {
				return false // falsified clause
			}
			if nUnassigned == 1 {
				s.stats.Propagations++
				s.set(unit)
				changed = true
			}
		}
		if changed {
			continue
		}
		// Pure-literal elimination.
		polarity := make(map[int]int8, s.nVars)
		for _, c := range s.clauses {
			satisfied := false
			for _, l := range c {
				if s.litVal(l) == valTrue {
					satisfied = true
					break
				}
			}
			if satisfied {
				continue
			}
			for _, l := range c {
				if s.litVal(l) != valUnassigned {
					continue
				}
				v := l.Var()
				var pol int8 = 1
				if l < 0 {
					pol = -1
				}
				if prev, ok := polarity[v]; !ok {
					polarity[v] = pol
				} else if prev != pol {
					polarity[v] = 0
				}
			}
		}
		for v, pol := range polarity {
			switch pol {
			case 1:
				s.set(Lit(v))
				changed = true
			case -1:
				s.set(Lit(-v))
				changed = true
			}
		}
		if !changed {
			return true
		}
	}
}

func (s *dpllState) solve() bool {
	mark := len(s.trail)
	if !s.propagate() {
		s.undoTo(mark)
		return false
	}
	// Pick the first unassigned variable appearing in an unsatisfied
	// clause.
	branch := 0
	for _, c := range s.clauses {
		satisfied := false
		candidate := 0
		for _, l := range c {
			switch s.litVal(l) {
			case valTrue:
				satisfied = true
			case valUnassigned:
				if candidate == 0 {
					candidate = l.Var()
				}
			}
			if satisfied {
				break
			}
		}
		if !satisfied && candidate != 0 {
			branch = candidate
			break
		}
	}
	if branch == 0 {
		return true // every clause satisfied
	}
	if s.maxDec > 0 && s.stats.Decisions >= s.maxDec {
		s.aborted = true
		s.undoTo(mark)
		return false
	}
	s.stats.Decisions++
	inner := len(s.trail)
	s.set(Lit(branch))
	if s.solve() {
		return true
	}
	if s.aborted {
		s.undoTo(mark)
		return false
	}
	s.undoTo(inner)
	s.set(Lit(-branch))
	if s.solve() {
		return true
	}
	s.undoTo(mark)
	return false
}
