package sat

import "testing"

func TestEnumerateModelsExactlyOne(t *testing.T) {
	f := NewFormula(3)
	f.AddExactlyOne(1, 2, 3)
	models := EnumerateModels(NewCDCL(), f, nil, 0)
	if len(models) != 3 {
		t.Fatalf("⊕{1,2,3} has 3 models, got %d", len(models))
	}
	seen := map[int]bool{}
	for _, m := range models {
		trues := TrueVars(m)
		if len(trues) != 1 {
			t.Fatalf("model %v should have exactly one true var", m)
		}
		if seen[trues[0]] {
			t.Fatalf("duplicate model for var %d", trues[0])
		}
		seen[trues[0]] = true
	}
}

func TestEnumerateModelsLimit(t *testing.T) {
	f := NewFormula(4) // free variables: 16 models
	models := EnumerateModels(NewCDCL(), f, nil, 5)
	if len(models) != 5 {
		t.Errorf("limit 5, got %d", len(models))
	}
	all := EnumerateModels(NewCDCL(), f, nil, 0)
	if len(all) != 16 {
		t.Errorf("4 free vars should give 16 models, got %d", len(all))
	}
}

func TestEnumerateModelsProjection(t *testing.T) {
	// Var 2 is free, but projecting onto var 1 only yields 2 classes.
	f := NewFormula(2)
	models := EnumerateModels(NewCDCL(), f, []int{1}, 0)
	if len(models) != 2 {
		t.Errorf("projection onto one var should give 2 models, got %d", len(models))
	}
}

func TestEnumerateModelsUnsat(t *testing.T) {
	f := NewFormula(1)
	f.AddUnit(1)
	f.AddUnit(-1)
	if models := EnumerateModels(NewCDCL(), f, nil, 0); len(models) != 0 {
		t.Errorf("UNSAT formula has no models, got %d", len(models))
	}
}

func TestEnumerateDoesNotMutateInput(t *testing.T) {
	f := NewFormula(2)
	f.AddExactlyOne(1, 2)
	before := len(f.Clauses)
	EnumerateModels(NewCDCL(), f, nil, 0)
	if len(f.Clauses) != before {
		t.Error("EnumerateModels must not mutate the input formula")
	}
}

func TestCountModels(t *testing.T) {
	f := NewFormula(3)
	f.AddExactlyOne(1, 2, 3)
	if n := CountModels(NewCDCL(), f, nil, 0); n != 3 {
		t.Errorf("CountModels = %d", n)
	}
	if n := CountModels(NewCDCL(), f, nil, 2); n != 2 {
		t.Errorf("bounded CountModels = %d", n)
	}
}

func TestEnumerateWithDPLL(t *testing.T) {
	f := NewFormula(2)
	f.AddExactlyOne(1, 2)
	if n := CountModels(NewDPLL(), f, nil, 0); n != 2 {
		t.Errorf("DPLL enumeration = %d", n)
	}
}
