package sat

import "fmt"

// CanonicalModel strengthens an incremental session until its clause
// set has exactly one model restricted to the variables in order: the
// lexicographically smallest one, preferring false, with order[0] most
// significant. Starting from any satisfying model, it walks order and
// commits one unit clause per variable:
//
//   - current model has v false → ¬v is consistent with everything
//     committed so far (the model witnesses it), commit ¬v without
//     solving;
//   - current model has v true → SolveAssuming(¬v): satisfiable means
//     v was not forced, so commit ¬v and adopt the new model;
//     unsatisfiable means v is forced by the committed prefix, so
//     commit v and keep the current model.
//
// Each committed literal is a pure function of the clause set and the
// prefix committed before it — never of the starting model — so two
// calls over the same clause set and order agree on every variable in
// order regardless of which models they started from. This is what
// makes portfolio solving reproducible: whichever worker wins,
// canonicalizing its model on its warm session yields the same
// assignment. It also subsumes the minimal-configuration guarantee on
// the ordered variables (no true variable can be flipped false, which
// is exactly the shed loop's post-condition).
//
// The session is permanently strengthened by the committed units.
// Solve effort is one SolveAssuming per variable that is true in the
// running model — for Engage's configurations, roughly one warm solve
// per deployed instance. The returned model is the canonical one; n is
// the number of solver calls spent. model must satisfy the session's
// clause set (Model from a Sat Result).
func CanonicalModel(in IncrementalSolver, model []bool, order []int) (canon []bool, n int, err error) {
	cur := append([]bool(nil), model...)
	for _, v := range order {
		if v <= 0 {
			return nil, n, fmt.Errorf("sat: canonical: bad variable %d", v)
		}
		if v >= len(cur) || !cur[v] {
			// cur witnesses that ¬v is consistent with the committed
			// prefix; commit it without a solve.
			if !in.AddClause(Clause{Lit(-v)}) {
				return nil, n, fmt.Errorf("sat: canonical: session became unsatisfiable committing ¬%d", v)
			}
			continue
		}
		n++
		res := in.SolveAssuming([]Lit{Lit(-v)})
		switch res.Status {
		case Sat:
			if !in.AddClause(Clause{Lit(-v)}) {
				return nil, n, fmt.Errorf("sat: canonical: session became unsatisfiable committing ¬%d", v)
			}
			cur = append(cur[:0], res.Model...)
		case Unsat:
			if !in.AddClause(Clause{Lit(v)}) {
				return nil, n, fmt.Errorf("sat: canonical: session became unsatisfiable committing %d", v)
			}
		default:
			return nil, n, fmt.Errorf("sat: canonical: solver gave up at variable %d", v)
		}
	}
	return cur, n, nil
}
