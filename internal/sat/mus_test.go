package sat

import "testing"

// assumeUnsat solves under assumptions and returns the reported core,
// failing the test unless the status is Unsat.
func assumeUnsat(t *testing.T, inc IncrementalSolver, assumps []Lit) []Lit {
	t.Helper()
	res := inc.SolveAssuming(assumps)
	if res.Status != Unsat {
		t.Fatalf("SolveAssuming(%v) = %v, want Unsat", assumps, res.Status)
	}
	if res.Core == nil {
		t.Fatalf("SolveAssuming(%v): Unsat with nil core", assumps)
	}
	return res.Core
}

// checkMUS verifies the defining property: mus is jointly unsat, and
// dropping any single element restores satisfiability.
func checkMUS(t *testing.T, inc IncrementalSolver, mus []Lit) {
	t.Helper()
	if res := inc.SolveAssuming(mus); res.Status != Unsat {
		t.Fatalf("MUS %v is not unsat (%v)", mus, res.Status)
	}
	for i := range mus {
		trial := make([]Lit, 0, len(mus)-1)
		trial = append(trial, mus[:i]...)
		trial = append(trial, mus[i+1:]...)
		if res := inc.SolveAssuming(trial); res.Status != Sat {
			t.Fatalf("MUS %v is not minimal: dropping %v stays %v", mus, mus[i], res.Status)
		}
	}
}

func TestShrinkCoreMinimal(t *testing.T) {
	// Variables 1..3 are selectors; 4..6 carry the conflict.
	// s1 → x, s2 → ¬x, s3 → y (irrelevant): the only conflict is
	// {s1, s2}, but a naive core may include s3.
	f := NewFormula(6)
	f.Add(Lit(-1), Lit(4))
	f.Add(Lit(-2), Lit(-4))
	f.Add(Lit(-3), Lit(5))

	for _, warm := range []bool{true, false} {
		name := "warm"
		var inc IncrementalSolver
		if warm {
			inc = NewCDCL().StartIncremental(f)
		} else {
			name = "cold"
			inc = newColdIncremental(NewDPLL(), f)
		}
		t.Run(name, func(t *testing.T) {
			core := assumeUnsat(t, inc, []Lit{1, 2, 3})
			mus, st := ShrinkCore(inc, core)
			if len(mus) != 2 {
				t.Fatalf("MUS = %v, want the 2-element conflict {1,2}", mus)
			}
			if (mus[0] != 1 || mus[1] != 2) && (mus[0] != 2 || mus[1] != 1) {
				t.Fatalf("MUS = %v, want {1, 2}", mus)
			}
			if st.FinalSize != 2 || st.InitialSize != len(core) || st.Solves == 0 {
				t.Fatalf("stats = %+v, want initial %d, final 2, >0 solves", st, len(core))
			}
			checkMUS(t, inc, mus)
		})
	}
}

// TestShrinkCoreChain exercises a longer implication chain where the
// first-UIP core is typically non-minimal: s1..s4 each force a link of
// x1 → x2 → x3 → x4, s5 forces ¬x4, and s6..s9 are clutter. The MUS
// must keep the whole chain plus the contradiction.
func TestShrinkCoreChain(t *testing.T) {
	f := NewFormula(0)
	nv := func() Lit { return Lit(f.AddVar()) }
	s := make([]Lit, 10)
	for i := 1; i <= 9; i++ {
		s[i] = nv()
	}
	x := make([]Lit, 5)
	for i := 1; i <= 4; i++ {
		x[i] = nv()
	}
	f.Add(s[1].Neg(), x[1])
	f.Add(s[2].Neg(), x[1].Neg(), x[2])
	f.Add(s[3].Neg(), x[2].Neg(), x[3])
	f.Add(s[4].Neg(), x[3].Neg(), x[4])
	f.Add(s[5].Neg(), x[4].Neg())
	// Clutter: satisfiable side constraints.
	for i := 6; i <= 9; i++ {
		f.Add(s[i].Neg(), nv())
	}

	inc := NewCDCL().StartIncremental(f)
	core := assumeUnsat(t, inc, s[1:])
	mus, _ := ShrinkCore(inc, core)
	if len(mus) != 5 {
		t.Fatalf("MUS = %v, want exactly the 5 chain selectors", mus)
	}
	for _, l := range mus {
		if l.Var() > 5 {
			t.Fatalf("MUS %v contains clutter selector %v", mus, l)
		}
	}
	checkMUS(t, inc, mus)
}

// TestShrinkCoreSatInput documents the contract: a satisfiable
// assumption set comes back unchanged.
func TestShrinkCoreSatInput(t *testing.T) {
	f := NewFormula(2)
	f.Add(Lit(-1), Lit(2))
	inc := NewCDCL().StartIncremental(f)
	in := []Lit{1}
	out, st := ShrinkCore(inc, in)
	if len(out) != 1 || out[0] != 1 {
		t.Fatalf("ShrinkCore(sat) = %v, want input unchanged", out)
	}
	if st.Solves != 1 {
		t.Fatalf("stats = %+v, want exactly one probe", st)
	}
}

// TestShrinkCoreEmptyClauseSet: when the clause set itself is unsat
// (nil core from SolveAssuming), shrinking reduces to the empty MUS.
func TestShrinkCoreClauseSetUnsat(t *testing.T) {
	f := NewFormula(2)
	f.Add(Lit(1))
	f.Add(Lit(-1))
	inc := NewCDCL().StartIncremental(f)
	mus, _ := ShrinkCore(inc, []Lit{2})
	if len(mus) != 0 {
		t.Fatalf("MUS = %v, want empty (clause set is unsat on its own)", mus)
	}
}
