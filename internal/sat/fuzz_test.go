package sat

import (
	"math/rand"
	"testing"
)

// FuzzCDCLvsDPLL cross-checks the CDCL engine against the DPLL
// baseline on small random formulas: identical SAT/UNSAT verdicts, and
// every reported model must verify. The fuzzer drives the generator
// parameters (seed, size, density) rather than raw clause bytes so
// every input is a well-formed CNF and the search space stays dense in
// interesting instances.
func FuzzCDCLvsDPLL(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(30))
	f.Add(int64(42), uint8(12), uint8(50))
	f.Add(int64(7), uint8(3), uint8(9))
	f.Add(int64(2012), uint8(15), uint8(70))
	f.Fuzz(func(t *testing.T, seed int64, nv, nc uint8) {
		nVars := int(nv%16) + 1
		nClauses := int(nc%64) + 1
		rng := rand.New(rand.NewSource(seed))
		formula := randomFormula(rng, nVars, nClauses)

		cdcl := NewCDCL().Solve(formula)
		dpll := (&DPLL{MaxDecisions: 1 << 20}).Solve(formula)
		if dpll.Status == Unknown {
			t.Skip("DPLL hit its decision bound")
		}
		if cdcl.Status != dpll.Status {
			t.Fatalf("verdicts differ: CDCL=%v DPLL=%v\n%s", cdcl.Status, dpll.Status, Dimacs(formula))
		}
		if cdcl.Status == Sat {
			if i := Verify(formula, cdcl.Model); i >= 0 {
				t.Fatalf("CDCL model falsifies clause %d\n%s", i, Dimacs(formula))
			}
			if i := Verify(formula, dpll.Model); i >= 0 {
				t.Fatalf("DPLL model falsifies clause %d\n%s", i, Dimacs(formula))
			}
		}
	})
}

// FuzzIncrementalEnumeration cross-checks warm incremental enumeration
// against the cold one-shot baseline: both must enumerate exactly the
// same projected model set.
func FuzzIncrementalEnumeration(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(12))
	f.Add(int64(9), uint8(7), uint8(25))
	f.Fuzz(func(t *testing.T, seed int64, nv, nc uint8) {
		nVars := int(nv%8) + 2 // ≤ 9 vars keeps full enumeration small
		nClauses := int(nc%32) + 1
		rng := rand.New(rand.NewSource(seed))
		formula := randomFormula(rng, nVars, nClauses)
		project := make([]int, nVars)
		for v := 1; v <= nVars; v++ {
			project[v-1] = v
		}
		warm, _ := EnumerateModelsStats(NewCDCL(), formula, project, 0)
		cold, _ := EnumerateModelsCold(NewCDCL(), formula, project, 0)
		wk, ck := modelKeys(warm, project), modelKeys(cold, project)
		if len(wk) != len(ck) {
			t.Fatalf("warm=%d cold=%d models\n%s", len(wk), len(ck), Dimacs(formula))
		}
		for i := range wk {
			if wk[i] != ck[i] {
				t.Fatalf("model sets differ: %q vs %q\n%s", wk[i], ck[i], Dimacs(formula))
			}
		}
	})
}

// FuzzParseDIMACS hardens the DIMACS reader: arbitrary input must
// either error out or produce a well-formed formula that survives a
// render/re-parse round trip.
func FuzzParseDIMACS(f *testing.F) {
	f.Add("p cnf 3 2\n1 -2 0\n3 0\n")
	f.Add("c comment\np cnf 2 1\n1 2 0\n")
	f.Add("1 2 0\n-1 0\n")
	f.Add("p cnf 0 0\n")
	f.Add("p cnf 1 1\n1\n0\n")
	f.Add("p cnf bad\n")
	f.Add("1 999999999999999999999 0\n")
	f.Fuzz(func(t *testing.T, src string) {
		formula, err := ParseDimacs(src)
		if err != nil {
			return // rejected input is fine; crashing is not
		}
		if formula.NumVars < 0 {
			t.Fatalf("negative NumVars %d from %q", formula.NumVars, src)
		}
		for i, c := range formula.Clauses {
			for _, l := range c {
				if l == 0 || l.Var() > formula.NumVars {
					t.Fatalf("clause %d has literal %d out of range 1..%d from %q",
						i, l, formula.NumVars, src)
				}
			}
		}
		// Round trip: rendering and re-parsing preserves the formula.
		again, err := ParseDimacs(Dimacs(formula))
		if err != nil {
			t.Fatalf("re-parse of rendered formula failed: %v\nsrc=%q", err, src)
		}
		if again.NumVars != formula.NumVars || len(again.Clauses) != len(formula.Clauses) {
			t.Fatalf("round trip changed shape: %d/%d vars, %d/%d clauses",
				formula.NumVars, again.NumVars, len(formula.Clauses), len(again.Clauses))
		}
	})
}
