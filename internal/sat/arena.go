package sat

import "math"

// cref addresses a clause inside the arena: the index of its header
// word in the backing slice. crefUndef marks "no clause" — a decision
// or unassigned variable in the reason array, or "no conflict" from
// propagate.
type cref int32

const crefUndef cref = -1

// clauseArena is a flat backing store for all clauses of one solver
// state. Replacing per-clause heap objects with integer offsets into a
// single slice removes pointer-chasing from propagate's inner loop and
// takes the clause database out of the garbage collector's view
// entirely (one allocation amortized over all clauses, no per-clause
// scan work).
//
// Clause layout: [header, activity, lit0, …, litN-1].
//   - header packs the literal count and the learned flag:
//     size<<hdrSizeShift | learnedBit.
//   - activity holds float32 bits (meaningful only for learned
//     clauses; problem clauses carry a zero word so the layout stays
//     uniform and literal access needs no branch).
//
// Freed clauses are not reused in place; free only accounts the waste,
// and the owning state compacts the arena (garbageCollect) when the
// wasted fraction grows too large.
type clauseArena struct {
	data   []ilit
	wasted int // words lost to freed clauses, reclaimed by compaction
}

const (
	hdrLearnedBit  = 1
	hdrSizeShift   = 1
	clauseOverhead = 2 // header + activity words
)

// alloc appends a clause and returns its reference.
func (a *clauseArena) alloc(lits []ilit, learned bool) cref {
	c := cref(len(a.data))
	hdr := ilit(len(lits)) << hdrSizeShift
	if learned {
		hdr |= hdrLearnedBit
	}
	a.data = append(a.data, hdr, 0)
	a.data = append(a.data, lits...)
	return c
}

func (a *clauseArena) size(c cref) int     { return int(a.data[c] >> hdrSizeShift) }
func (a *clauseArena) learned(c cref) bool { return a.data[c]&hdrLearnedBit != 0 }

// lits returns the clause's literals, aliasing the arena — callers may
// reorder them in place (watch maintenance does).
func (a *clauseArena) lits(c cref) []ilit {
	start := int(c) + clauseOverhead
	return a.data[start : start+a.size(c)]
}

func (a *clauseArena) activity(c cref) float32 {
	return math.Float32frombits(uint32(a.data[c+1]))
}

func (a *clauseArena) setActivity(c cref, v float32) {
	a.data[c+1] = ilit(math.Float32bits(v))
}

// free retires a clause. The words stay in place (references may still
// be in flight during a sweep) until the next compaction.
func (a *clauseArena) free(c cref) {
	a.wasted += a.size(c) + clauseOverhead
}
