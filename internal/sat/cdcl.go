package sat

import "sort"

// CDCL is a conflict-driven clause-learning solver in the MiniSat
// lineage: two-literal watching, VSIDS variable activity with phase
// saving, first-UIP conflict analysis, Luby-sequence restarts, and
// activity-based learned-clause deletion.
type CDCL struct{}

// NewCDCL returns a CDCL solver.
func NewCDCL() *CDCL { return &CDCL{} }

// Name implements Solver.
func (*CDCL) Name() string { return "cdcl" }

// Internal literal encoding: lit = 2*v for +v, 2*v+1 for ¬v, with v in
// [0, nVars).
type ilit int32

func toInternal(l Lit) ilit {
	v := ilit(l.Var() - 1)
	if l < 0 {
		return 2*v + 1
	}
	return 2 * v
}

func (l ilit) ivar() int32 { return int32(l) >> 1 }
func (l ilit) neg() ilit   { return l ^ 1 }
func (l ilit) sign() bool  { return l&1 == 1 } // true for negated

type clause struct {
	lits     []ilit
	learned  bool
	activity float64
}

const (
	valUnassigned int8 = 0
	valTrue       int8 = 1
	valFalse      int8 = -1
)

type cdclState struct {
	nVars   int
	clauses []*clause // problem clauses
	learnts []*clause
	watches [][]*clause // per internal literal

	assign   []int8 // per var
	level    []int32
	reason   []*clause
	trail    []ilit
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	order    varHeap
	polarity []bool // saved phase: true means last assigned false
	seen     []bool

	claInc float64
	stats  Stats
	ok     bool
}

// Solve implements Solver.
func (*CDCL) Solve(f *Formula) Result {
	s := newState(f.NumVars)
	for _, c := range f.Clauses {
		if !s.addClause(c) {
			return Result{Status: Unsat, Stats: s.stats}
		}
	}
	return s.search()
}

func newState(nVars int) *cdclState {
	s := &cdclState{
		nVars:    nVars,
		watches:  make([][]*clause, 2*nVars),
		assign:   make([]int8, nVars),
		level:    make([]int32, nVars),
		reason:   make([]*clause, nVars),
		activity: make([]float64, nVars),
		polarity: make([]bool, nVars),
		seen:     make([]bool, nVars),
		varInc:   1,
		claInc:   1,
		ok:       true,
	}
	// Default branching polarity is false (MiniSat's default): in
	// Engage's configuration problems this yields minimal models —
	// resources not forced by a constraint stay undeployed.
	for i := range s.polarity {
		s.polarity[i] = true
	}
	s.order.init(s, nVars)
	return s
}

func (s *cdclState) value(l ilit) int8 {
	v := s.assign[l.ivar()]
	if v == valUnassigned {
		return valUnassigned
	}
	if l.sign() {
		return -v
	}
	return v
}

// addClause installs a problem clause, handling duplicates, tautologies,
// and already-satisfied/falsified literals at level 0.
func (s *cdclState) addClause(c Clause) bool {
	if !s.ok {
		return false
	}
	lits := make([]ilit, 0, len(c))
	for _, l := range c {
		lits = append(lits, toInternal(l))
	}
	sort.Slice(lits, func(i, j int) bool { return lits[i] < lits[j] })
	out := lits[:0]
	var prev ilit = -1
	for _, l := range lits {
		if l == prev {
			continue // duplicate literal
		}
		if prev >= 0 && l == prev.neg() {
			return true // tautology
		}
		switch s.value(l) {
		case valTrue:
			return true // satisfied at level 0
		case valFalse:
			continue // drop falsified literal
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		s.ok = s.propagate() == nil
		return s.ok
	}
	cl := &clause{lits: append([]ilit(nil), out...)}
	s.clauses = append(s.clauses, cl)
	s.attach(cl)
	return true
}

func (s *cdclState) attach(c *clause) {
	s.watches[c.lits[0].neg()] = append(s.watches[c.lits[0].neg()], c)
	s.watches[c.lits[1].neg()] = append(s.watches[c.lits[1].neg()], c)
}

func (s *cdclState) decisionLevel() int { return len(s.trailLim) }

func (s *cdclState) uncheckedEnqueue(l ilit, from *clause) {
	v := l.ivar()
	if l.sign() {
		s.assign[v] = valFalse
	} else {
		s.assign[v] = valTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns a conflicting clause
// or nil.
func (s *cdclState) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is true
		s.qhead++
		ws := s.watches[p]
		s.watches[p] = ws[:0]
		kept := s.watches[p]
		for i := 0; i < len(ws); i++ {
			s.stats.Propagations++
			c := ws[i]
			// Ensure the falsified literal is lits[1].
			if c.lits[0] == p.neg() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			// If lits[0] is true the clause is satisfied.
			if s.value(c.lits[0]) == valTrue {
				kept = append(kept, c)
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != valFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].neg()] = append(s.watches[c.lits[1].neg()], c)
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, c)
			if s.value(c.lits[0]) == valFalse {
				// Conflict: restore remaining watches and bail.
				kept = append(kept, ws[i+1:]...)
				s.watches[p] = kept
				s.qhead = len(s.trail)
				return c
			}
			s.uncheckedEnqueue(c.lits[0], c)
		}
		s.watches[p] = kept
	}
	return nil
}

// analyze performs first-UIP conflict analysis, returning the learned
// clause (asserting literal first) and the backjump level.
func (s *cdclState) analyze(confl *clause) ([]ilit, int) {
	learnt := []ilit{0} // slot for the asserting literal
	counter := 0
	var p ilit = -1
	idx := len(s.trail) - 1
	cleanup := make([]int32, 0, 16)

	for {
		s.bumpClause(confl)
		start := 0
		if p >= 0 {
			start = 1
		}
		for _, q := range confl.lits[start:] {
			v := q.ivar()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			cleanup = append(cleanup, v)
			s.bumpVar(v)
			if int(s.level[v]) == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Select next literal from the trail.
		for !s.seen[s.trail[idx].ivar()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.ivar()
		s.seen[v] = false
		counter--
		if counter == 0 {
			learnt[0] = p.neg()
			break
		}
		confl = s.reason[v]
	}

	// Conflict-clause minimization: drop literals implied by the rest.
	minimized := learnt[:1]
	for _, l := range learnt[1:] {
		if !s.redundant(l) {
			minimized = append(minimized, l)
		}
	}
	learnt = minimized

	// Find backjump level: max level among learnt[1:].
	back := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].ivar()] > s.level[learnt[maxI].ivar()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		back = int(s.level[learnt[1].ivar()])
	}
	for _, v := range cleanup {
		s.seen[v] = false
	}
	return learnt, back
}

// redundant reports whether literal l in a learned clause is implied by
// the other marked literals (simple local minimization: l's reason
// exists and all its literals are marked or at level 0).
func (s *cdclState) redundant(l ilit) bool {
	r := s.reason[l.ivar()]
	if r == nil {
		return false
	}
	for _, q := range r.lits {
		if q.ivar() == l.ivar() {
			continue
		}
		if s.level[q.ivar()] != 0 && !s.seen[q.ivar()] {
			return false
		}
	}
	return true
}

func (s *cdclState) backtrackTo(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= bound; i-- {
		l := s.trail[i]
		v := l.ivar()
		s.polarity[v] = l.sign()
		s.assign[v] = valUnassigned
		s.reason[v] = nil
		s.order.push(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *cdclState) bumpVar(v int32) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *cdclState) bumpClause(c *clause) {
	if !c.learned {
		return
	}
	c.activity += s.claInc
	if c.activity > 1e20 {
		for _, lc := range s.learnts {
			lc.activity *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

const (
	varDecay = 1.0 / 0.95
	claDecay = 1.0 / 0.999
)

// luby computes element x (0-based) of the Luby restart sequence
// 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,… (MiniSat's formulation).
func luby(x int64) int64 {
	size, seq := int64(1), 0
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) >> 1
		seq--
		x %= size
	}
	return int64(1) << uint(seq)
}

func (s *cdclState) search() Result {
	if !s.ok {
		return Result{Status: Unsat, Stats: s.stats}
	}
	maxLearnts := len(s.clauses)/3 + 100
	for {
		limit := 100 * luby(s.stats.Restarts)
		status, model := s.searchOnce(limit, &maxLearnts)
		if status != Unknown {
			return Result{Status: status, Model: model, Stats: s.stats}
		}
		s.stats.Restarts++
		s.backtrackTo(0)
	}
}

// searchOnce runs the CDCL loop until a result, or until conflictLimit
// conflicts have occurred (signalling a restart with Unknown).
func (s *cdclState) searchOnce(conflictLimit int64, maxLearnts *int) (Status, []bool) {
	var conflicts int64
	for {
		confl := s.propagate()
		if confl != nil {
			s.stats.Conflicts++
			conflicts++
			if s.decisionLevel() == 0 {
				return Unsat, nil
			}
			learnt, back := s.analyze(confl)
			s.backtrackTo(back)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				cl := &clause{lits: learnt, learned: true, activity: s.claInc}
				s.learnts = append(s.learnts, cl)
				s.stats.Learned++
				s.attach(cl)
				s.uncheckedEnqueue(learnt[0], cl)
			}
			s.varInc *= varDecay
			s.claInc *= claDecay
			continue
		}
		if conflicts >= conflictLimit {
			return Unknown, nil
		}
		if len(s.learnts) > *maxLearnts+len(s.trail) {
			s.reduceDB()
			*maxLearnts += *maxLearnts / 10
		}
		// Decide.
		v := s.pickBranchVar()
		if v < 0 {
			// All variables assigned: SAT.
			model := make([]bool, s.nVars+1)
			for i := 0; i < s.nVars; i++ {
				model[i+1] = s.assign[i] == valTrue
			}
			return Sat, model
		}
		s.stats.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		l := ilit(2 * v)
		if s.polarity[v] {
			l = l.neg()
		}
		s.uncheckedEnqueue(l, nil)
	}
}

func (s *cdclState) pickBranchVar() int32 {
	for !s.order.empty() {
		v := s.order.pop()
		if s.assign[v] == valUnassigned {
			return v
		}
	}
	return -1
}

// reduceDB removes the lower-activity half of the learned clauses,
// keeping binary clauses and clauses that are the reason for a current
// assignment.
func (s *cdclState) reduceDB() {
	sort.Slice(s.learnts, func(i, j int) bool {
		return s.learnts[i].activity > s.learnts[j].activity
	})
	locked := make(map[*clause]bool)
	for _, r := range s.reason {
		if r != nil {
			locked[r] = true
		}
	}
	keep := s.learnts[:0]
	limit := len(s.learnts) / 2
	for i, c := range s.learnts {
		if i < limit || len(c.lits) == 2 || locked[c] {
			keep = append(keep, c)
		} else {
			s.detach(c)
		}
	}
	s.learnts = keep
}

func (s *cdclState) detach(c *clause) {
	for _, w := range []ilit{c.lits[0].neg(), c.lits[1].neg()} {
		ws := s.watches[w]
		for i, wc := range ws {
			if wc == c {
				ws[i] = ws[len(ws)-1]
				s.watches[w] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// varHeap is a max-heap of variables ordered by VSIDS activity, with an
// index array for decrease/increase-key.
type varHeap struct {
	s     *cdclState
	heap  []int32
	index []int32 // position in heap, -1 if absent
}

func (h *varHeap) init(s *cdclState, n int) {
	h.s = s
	h.heap = make([]int32, n)
	h.index = make([]int32, n)
	for i := int32(0); i < int32(n); i++ {
		h.heap[i] = i
		h.index[i] = i
	}
}

func (h *varHeap) less(i, j int) bool {
	return h.s.activity[h.heap[i]] > h.s.activity[h.heap[j]]
}

func (h *varHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.index[h.heap[i]] = int32(i)
	h.index[h.heap[j]] = int32(j)
}

func (h *varHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *varHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(l, best) {
			best = l
		}
		if r < n && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) pop() int32 {
	v := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.index[v] = -1
	if last > 0 {
		h.down(0)
	}
	return v
}

func (h *varHeap) push(v int32) {
	if h.index[v] >= 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.index[v] = int32(len(h.heap) - 1)
	h.up(len(h.heap) - 1)
}

func (h *varHeap) update(v int32) {
	if i := h.index[v]; i >= 0 {
		h.up(int(i))
	}
}
