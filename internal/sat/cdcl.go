package sat

import (
	"sort"
	"sync/atomic"
)

// CDCL is a conflict-driven clause-learning solver in the MiniSat
// lineage: two-literal watching with blocker literals and dedicated
// binary-clause watch lists, a flat clause arena instead of per-clause
// heap objects, VSIDS variable activity with phase saving, first-UIP
// conflict analysis, Luby-sequence restarts, and activity-based
// learned-clause deletion. It also implements IncrementalSource:
// StartIncremental opens a session whose learned clauses, activity,
// and saved phases persist across SolveAssuming calls.
//
// With LogProof set, every solve (and every incremental session opened
// by StartIncremental) records a DRAT-style derivation log; UNSAT
// results then carry Result.Proof for independent checking by
// internal/certify. ProofCap bounds the log's step count (0 =
// unlimited); a capped-out proof is marked truncated and rejected by
// checkers.
type CDCL struct {
	LogProof bool
	ProofCap int
}

// NewCDCL returns a CDCL solver.
func NewCDCL() *CDCL { return &CDCL{} }

// Name implements Solver.
func (*CDCL) Name() string { return "cdcl" }

// Internal literal encoding: lit = 2*v for +v, 2*v+1 for ¬v, with v in
// [0, nVars).
type ilit int32

func toInternal(l Lit) ilit {
	v := ilit(l.Var() - 1)
	if l < 0 {
		return 2*v + 1
	}
	return 2 * v
}

func toExternal(l ilit) Lit {
	v := Lit(l.ivar() + 1)
	if l.sign() {
		return -v
	}
	return v
}

func (l ilit) ivar() int32 { return int32(l) >> 1 }
func (l ilit) neg() ilit   { return l ^ 1 }
func (l ilit) sign() bool  { return l&1 == 1 } // true for negated

const (
	valUnassigned int8 = 0
	valTrue       int8 = 1
	valFalse      int8 = -1
)

// watcher is one entry of a long-clause (size ≥ 3) watch list. The
// blocker is some other literal of the clause; if it is already true
// the clause is satisfied and propagate can skip it without touching
// the clause's arena words at all — the common case on re-visited
// clauses.
type watcher struct {
	c       cref
	blocker ilit
}

// binWatcher is one entry of a binary-clause watch list: when the
// watched literal is falsified, other is implied directly — no watch
// migration, no arena access on the hot path.
type binWatcher struct {
	other ilit
	c     cref
}

type cdclState struct {
	nVars      int
	ar         clauseArena
	clauses    []cref // problem clauses
	learnts    []cref
	watches    [][]watcher    // long clauses, per internal literal
	binWatches [][]binWatcher // binary clauses, per internal literal

	assign   []int8 // per var
	level    []int32
	reason   []cref
	trail    []ilit
	trailLim []int
	qhead    int

	// assumptions are re-posted as the first decisions of every
	// restart; assumption i occupies decision level i+1.
	assumptions []ilit
	core        []Lit // final-conflict core of the last UNSAT answer

	activity []float64
	varInc   float64
	order    varHeap
	polarity []bool // saved phase: true means last assigned false
	seen     []bool

	claInc float64
	stats  Stats
	ok     bool

	// Proof logging (see proof.go); nil when logging is off.
	proof        *Proof      // derivation log (possibly shared across a portfolio)
	proofShared  bool        // stage steps in proofPending, flush before publish
	proofPending []proofStep // staged steps awaiting flush (shared mode only)

	// Portfolio hooks (see portfolio.go); all zero outside portfolio
	// solves, in which case the solver behaves exactly like the
	// sequential reference.
	stop         *atomic.Bool // cooperative cancellation flag, checked in the search loop
	exch         *exchange    // shared learned-clause buffer
	exchID       int          // this worker's identity in exch
	exchSeq      int          // export rotation over stripes
	exchCursor   []int        // per-stripe read position
	rnd          uint64       // xorshift state for random branching (0 = none)
	randFreq     uint64       // percent of decisions branched at random
	varDecayRate float64      // VSIDS decay factor (newState sets the default)
	restartUnit  int64        // Luby restart base (newState sets the default)
	defaultPhase bool         // initial branching phase for fresh variables
	sharedIn     int64        // clauses imported from the exchange
	sharedOut    int64        // clauses exported to the exchange
	cancelled    bool         // last search ended by the stop flag
}

// Solve implements Solver.
func (c *CDCL) Solve(f *Formula) Result {
	s := newState(f.NumVars)
	if c.LogProof {
		s.proof = NewProof(c.ProofCap)
	}
	for _, cl := range f.Clauses {
		if !s.addClause(cl) {
			return Result{Status: Unsat, Stats: s.stats, Proof: s.proof}
		}
	}
	return s.search()
}

func newState(nVars int) *cdclState {
	s := &cdclState{
		varInc:       1,
		claInc:       1,
		ok:           true,
		varDecayRate: varDecay,
		restartUnit:  restartUnit,
		defaultPhase: true,
	}
	s.order.s = s
	s.ensureVars(nVars)
	return s
}

// ensureVars grows every per-variable structure to n variables; the
// incremental layer uses it when added clauses or assumptions mention
// fresh variables.
func (s *cdclState) ensureVars(n int) {
	if n <= s.nVars {
		return
	}
	for len(s.watches) < 2*n {
		s.watches = append(s.watches, nil)
		s.binWatches = append(s.binWatches, nil)
	}
	for v := s.nVars; v < n; v++ {
		s.assign = append(s.assign, valUnassigned)
		s.level = append(s.level, 0)
		s.reason = append(s.reason, crefUndef)
		s.activity = append(s.activity, 0)
		// Default branching phase: polarity[v] == true means "branch
		// on ¬v first", so fresh variables are tried false before true
		// (MiniSat's default). In Engage's configuration problems this
		// yields small models — resources not forced by a constraint
		// stay undeployed. Phase saving overwrites the default with
		// the last assigned value on backtracking. Portfolio workers
		// may flip the default to diversify their search.
		s.polarity = append(s.polarity, s.defaultPhase)
		s.seen = append(s.seen, false)
	}
	s.nVars = n
	s.order.grow(n)
}

func (s *cdclState) value(l ilit) int8 {
	v := s.assign[l.ivar()]
	if v == valUnassigned {
		return valUnassigned
	}
	if l.sign() {
		return -v
	}
	return v
}

// addClause installs a problem clause, handling duplicates, tautologies,
// and already-satisfied/falsified literals at level 0. The caller must
// be at decision level 0.
func (s *cdclState) addClause(c Clause) bool {
	if !s.ok {
		return false
	}
	maxVar := 0
	for _, l := range c {
		if l.Var() > maxVar {
			maxVar = l.Var()
		}
	}
	s.ensureVars(maxVar)

	lits := make([]ilit, 0, len(c))
	for _, l := range c {
		lits = append(lits, toInternal(l))
	}
	sort.Slice(lits, func(i, j int) bool { return lits[i] < lits[j] })
	out := lits[:0]
	var prev ilit = -1
	for _, l := range lits {
		if l == prev {
			continue // duplicate literal
		}
		if prev >= 0 && l == prev.neg() {
			return true // tautology
		}
		switch s.value(l) {
		case valTrue:
			return true // satisfied at level 0
		case valFalse:
			continue // drop falsified literal
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		// The clause is falsified by the root-level assignment, which a
		// checker re-derives by propagating the full original clauses —
		// so the empty clause is RUP here.
		s.ok = false
		s.logEmptyLemma()
		return false
	case 1:
		s.uncheckedEnqueue(out[0], crefUndef)
		s.ok = s.propagate() == crefUndef
		if !s.ok {
			s.logEmptyLemma()
		}
		return s.ok
	}
	cl := s.ar.alloc(out, false)
	s.clauses = append(s.clauses, cl)
	s.attach(cl)
	return true
}

func (s *cdclState) attach(c cref) {
	lits := s.ar.lits(c)
	if len(lits) == 2 {
		s.binWatches[lits[0].neg()] = append(s.binWatches[lits[0].neg()], binWatcher{other: lits[1], c: c})
		s.binWatches[lits[1].neg()] = append(s.binWatches[lits[1].neg()], binWatcher{other: lits[0], c: c})
		return
	}
	s.watches[lits[0].neg()] = append(s.watches[lits[0].neg()], watcher{c: c, blocker: lits[1]})
	s.watches[lits[1].neg()] = append(s.watches[lits[1].neg()], watcher{c: c, blocker: lits[0]})
}

func (s *cdclState) decisionLevel() int { return len(s.trailLim) }

func (s *cdclState) uncheckedEnqueue(l ilit, from cref) {
	v := l.ivar()
	if l.sign() {
		s.assign[v] = valFalse
	} else {
		s.assign[v] = valTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns a conflicting clause
// or crefUndef. Binary clauses are handled through their own watch
// lists (the implied literal is stored in the watcher, so no arena
// access is needed); long clauses go through the blocker check before
// their literals are loaded.
func (s *cdclState) propagate() cref {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is true
		s.qhead++

		for _, bw := range s.binWatches[p] {
			s.stats.Propagations++
			switch s.value(bw.other) {
			case valTrue:
			case valFalse:
				s.qhead = len(s.trail)
				return bw.c
			default:
				s.uncheckedEnqueue(bw.other, bw.c)
			}
		}

		ws := s.watches[p]
		j := 0
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			// Blocker hit: clause already satisfied, keep the watch
			// untouched.
			if s.value(w.blocker) == valTrue {
				ws[j] = w
				j++
				continue
			}
			s.stats.Propagations++
			lits := s.ar.lits(w.c)
			// Ensure the falsified literal is lits[1].
			if lits[0] == p.neg() {
				lits[0], lits[1] = lits[1], lits[0]
			}
			first := lits[0]
			nw := watcher{c: w.c, blocker: first}
			// If lits[0] is true the clause is satisfied.
			if first != w.blocker && s.value(first) == valTrue {
				ws[j] = nw
				j++
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(lits); k++ {
				if s.value(lits[k]) != valFalse {
					lits[1], lits[k] = lits[k], lits[1]
					nl := lits[1].neg()
					s.watches[nl] = append(s.watches[nl], nw)
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			ws[j] = nw
			j++
			if s.value(first) == valFalse {
				// Conflict: restore remaining watches and bail.
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				s.watches[p] = ws[:j]
				s.qhead = len(s.trail)
				return w.c
			}
			s.uncheckedEnqueue(first, w.c)
		}
		s.watches[p] = ws[:j]
	}
	return crefUndef
}

// analyze performs first-UIP conflict analysis, returning the learned
// clause (asserting literal first) and the backjump level.
func (s *cdclState) analyze(confl cref) ([]ilit, int) {
	learnt := []ilit{0} // slot for the asserting literal
	counter := 0
	var p ilit = -1
	idx := len(s.trail) - 1
	cleanup := make([]int32, 0, 16)

	for {
		s.bumpClause(confl)
		pv := int32(-1)
		if p >= 0 {
			pv = p.ivar()
		}
		for _, q := range s.ar.lits(confl) {
			v := q.ivar()
			// Skip the literal this clause propagated (binary reasons
			// may carry it at either position).
			if v == pv {
				continue
			}
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			cleanup = append(cleanup, v)
			s.bumpVar(v)
			if int(s.level[v]) == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Select next literal from the trail.
		for !s.seen[s.trail[idx].ivar()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.ivar()
		s.seen[v] = false
		counter--
		if counter == 0 {
			learnt[0] = p.neg()
			break
		}
		confl = s.reason[v]
	}

	// Conflict-clause minimization: drop literals implied by the rest.
	minimized := learnt[:1]
	for _, l := range learnt[1:] {
		if !s.redundant(l) {
			minimized = append(minimized, l)
		}
	}
	learnt = minimized

	// Find backjump level: max level among learnt[1:].
	back := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].ivar()] > s.level[learnt[maxI].ivar()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		back = int(s.level[learnt[1].ivar()])
	}
	for _, v := range cleanup {
		s.seen[v] = false
	}
	return learnt, back
}

// redundant reports whether literal l in a learned clause is implied by
// the other marked literals (simple local minimization: l's reason
// exists and all its literals are marked or at level 0).
func (s *cdclState) redundant(l ilit) bool {
	r := s.reason[l.ivar()]
	if r == crefUndef {
		return false
	}
	for _, q := range s.ar.lits(r) {
		if q.ivar() == l.ivar() {
			continue
		}
		if s.level[q.ivar()] != 0 && !s.seen[q.ivar()] {
			return false
		}
	}
	return true
}

// buildCore computes the final conflict under assumptions: given a
// pending assumption p whose value is already false, it walks the
// implication graph backwards from ¬p and collects the subset of the
// assumptions that forced it — the MiniSat analyzeFinal procedure. The
// returned core (external literals, including p itself) is a set of
// assumptions that is jointly inconsistent with the clause set.
func (s *cdclState) buildCore(p ilit) []Lit {
	core := []Lit{toExternal(p)}
	if s.decisionLevel() == 0 {
		return core
	}
	s.seen[p.ivar()] = true
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		q := s.trail[i]
		v := q.ivar()
		if !s.seen[v] {
			continue
		}
		s.seen[v] = false
		if r := s.reason[v]; r == crefUndef {
			// A decision above level 0 is an assumption (assumptions
			// are the only decisions still on the trail when the
			// search fails a later assumption).
			core = append(core, toExternal(q))
		} else {
			for _, u := range s.ar.lits(r) {
				if u.ivar() != v && s.level[u.ivar()] > 0 {
					s.seen[u.ivar()] = true
				}
			}
		}
	}
	s.seen[p.ivar()] = false
	return core
}

func (s *cdclState) backtrackTo(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= bound; i-- {
		l := s.trail[i]
		v := l.ivar()
		s.polarity[v] = l.sign()
		s.assign[v] = valUnassigned
		s.reason[v] = crefUndef
		s.order.push(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *cdclState) bumpVar(v int32) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *cdclState) bumpClause(c cref) {
	if !s.ar.learned(c) {
		return
	}
	act := float64(s.ar.activity(c)) + s.claInc
	s.ar.setActivity(c, float32(act))
	if act > 1e20 {
		for _, lc := range s.learnts {
			s.ar.setActivity(lc, s.ar.activity(lc)*1e-20)
		}
		s.claInc *= 1e-20
	}
}

const (
	varDecay    = 1.0 / 0.95
	claDecay    = 1.0 / 0.999
	restartUnit = 100 // conflicts per Luby restart unit
)

// luby computes element x (0-based) of the Luby restart sequence
// 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,… (MiniSat's formulation).
func luby(x int64) int64 {
	size, seq := int64(1), 0
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) >> 1
		seq--
		x %= size
	}
	return int64(1) << uint(seq)
}

func (s *cdclState) search() Result {
	s.core = nil
	s.cancelled = false
	if !s.ok {
		return Result{Status: Unsat, Stats: s.stats, Proof: s.proof}
	}
	maxLearnts := len(s.clauses)/3 + 100
	var restarts int64 // local so incremental calls restart the schedule
	for {
		limit := s.restartUnit * luby(restarts)
		status, model := s.searchOnce(limit, &maxLearnts)
		if s.cancelled {
			return Result{Status: Unknown, Stats: s.stats}
		}
		if status != Unknown {
			res := Result{Status: status, Model: model, Core: s.core, Stats: s.stats}
			if status == Unsat {
				res.Proof = s.proof
			}
			return res
		}
		restarts++
		s.stats.Restarts++
		s.backtrackTo(0)
		// Restart boundaries are the import points for clauses shared
		// by other portfolio workers: the trail is back at level 0, so
		// imported clauses can be installed and propagated soundly.
		s.importShared()
		if !s.ok {
			// A shared clause closed the formula: imported clauses are
			// implied by the (shared) problem clauses, so this is a
			// genuine root-level unsatisfiability.
			return Result{Status: Unsat, Stats: s.stats, Proof: s.proof}
		}
	}
}

// searchOnce runs the CDCL loop until a result, or until conflictLimit
// conflicts have occurred (signalling a restart with Unknown). Pending
// assumptions are re-posted as the first decisions; a falsified
// assumption terminates the search with Unsat and a final-conflict
// core in s.core.
func (s *cdclState) searchOnce(conflictLimit int64, maxLearnts *int) (Status, []bool) {
	var conflicts int64
	for {
		// Cooperative cancellation: a portfolio sibling found the
		// answer first. Checked once per propagate/decide round — cheap
		// relative to propagation, prompt enough for first-winner wins.
		if s.stop != nil && s.stop.Load() {
			s.cancelled = true
			// Drop staged proof steps promptly: a losing worker's pending
			// lemmas were never published, so nothing depends on them, and
			// holding them would keep loser memory alive past cancellation.
			s.discardProofPending()
			return Unknown, nil
		}
		confl := s.propagate()
		if confl != crefUndef {
			s.stats.Conflicts++
			conflicts++
			if s.decisionLevel() == 0 {
				// Root-level conflict: the clause set itself is
				// unsatisfiable. Latch it — an incremental session must
				// not resume from this state (the conflicting clause has
				// already been propagated past, so a later solve would
				// never rediscover it).
				s.ok = false
				s.logEmptyLemma()
				return Unsat, nil
			}
			learnt, back := s.analyze(confl)
			// Log before attaching or exporting: a first-UIP clause is RUP
			// with respect to the clause DB that produced the conflict, and
			// flush-before-publish needs it in the log ahead of any sibling
			// import.
			s.logLemma(learnt)
			s.backtrackTo(back)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], crefUndef)
			} else {
				cl := s.ar.alloc(learnt, true)
				s.ar.setActivity(cl, float32(s.claInc))
				s.learnts = append(s.learnts, cl)
				s.stats.Learned++
				s.attach(cl)
				s.uncheckedEnqueue(learnt[0], cl)
			}
			s.exportLearnt(learnt)
			s.varInc *= s.varDecayRate
			s.claInc *= claDecay
			continue
		}
		if conflicts >= conflictLimit {
			return Unknown, nil
		}
		if len(s.learnts) > *maxLearnts+len(s.trail) {
			s.reduceDB()
			*maxLearnts += *maxLearnts / 10
		}
		// Decide: pending assumptions first, then VSIDS branching.
		var next ilit = -1
		for next < 0 && s.decisionLevel() < len(s.assumptions) {
			p := s.assumptions[s.decisionLevel()]
			switch s.value(p) {
			case valTrue:
				// Already implied: open an empty level so level
				// indices stay aligned with assumption indices.
				s.trailLim = append(s.trailLim, len(s.trail))
			case valFalse:
				s.core = s.buildCore(p)
				// Certify the core while it is RUP: asserting the core
				// assumptions on the current DB propagates to this very
				// conflict, so the clause ¬core is a checkable lemma.
				s.logCoreClaim(s.core)
				return Unsat, nil
			default:
				next = p
			}
		}
		if next < 0 {
			v := int32(-1)
			// Portfolio diversification: a seeded fraction of decisions
			// branch on a random unassigned variable instead of the
			// VSIDS maximum, pushing workers into different subtrees.
			if s.randFreq > 0 && s.nextRand()%100 < s.randFreq {
				v = s.pickRandomVar()
			}
			if v < 0 {
				v = s.pickBranchVar()
			}
			if v < 0 {
				// All variables assigned: SAT.
				model := make([]bool, s.nVars+1)
				for i := 0; i < s.nVars; i++ {
					model[i+1] = s.assign[i] == valTrue
				}
				return Sat, model
			}
			s.stats.Decisions++
			next = ilit(2 * v)
			if s.polarity[v] {
				next = next.neg()
			}
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(next, crefUndef)
	}
}

func (s *cdclState) pickBranchVar() int32 {
	for !s.order.empty() {
		v := s.order.pop()
		if s.assign[v] == valUnassigned {
			return v
		}
	}
	return -1
}

// nextRand advances the worker's xorshift64 state.
func (s *cdclState) nextRand() uint64 {
	x := s.rnd
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.rnd = x
	return x
}

// pickRandomVar probes a bounded number of random variables for an
// unassigned one; -1 falls back to VSIDS. Leaving the probed variable
// in the activity heap is fine — pickBranchVar skips assigned entries.
func (s *cdclState) pickRandomVar() int32 {
	for probe := 0; probe < 16; probe++ {
		v := int32(s.nextRand() % uint64(s.nVars))
		if s.assign[v] == valUnassigned {
			return v
		}
	}
	return -1
}

// reduceDB removes the lower-activity half of the learned clauses,
// keeping binary clauses and clauses that are the reason for a current
// assignment, then compacts the arena if too much of it is waste.
func (s *cdclState) reduceDB() {
	ar := &s.ar
	sort.Slice(s.learnts, func(i, j int) bool {
		return ar.activity(s.learnts[i]) > ar.activity(s.learnts[j])
	})
	keep := s.learnts[:0]
	limit := len(s.learnts) / 2
	for i, c := range s.learnts {
		if i < limit || ar.size(c) == 2 || s.locked(c) {
			keep = append(keep, c)
		} else {
			s.logDeleteClause(c)
			s.detach(c)
			ar.free(c)
		}
	}
	s.learnts = keep
	if ar.wasted*3 > len(ar.data) {
		s.garbageCollect()
	}
}

// locked reports whether c is the reason of a current assignment — an
// O(1) check with no allocation: a long clause can only become a
// reason through uncheckedEnqueue of its first literal, and propagate
// never reorders lits[0] while it is true, so c is locked iff it is
// the recorded reason of the variable its first literal assigns.
func (s *cdclState) locked(c cref) bool {
	l := s.ar.lits(c)[0]
	return s.value(l) == valTrue && s.reason[l.ivar()] == c
}

func (s *cdclState) detach(c cref) {
	lits := s.ar.lits(c)
	if len(lits) == 2 {
		s.removeBinWatch(lits[0].neg(), c)
		s.removeBinWatch(lits[1].neg(), c)
		return
	}
	s.removeWatch(lits[0].neg(), c)
	s.removeWatch(lits[1].neg(), c)
}

func (s *cdclState) removeWatch(w ilit, c cref) {
	ws := s.watches[w]
	for i := range ws {
		if ws[i].c == c {
			ws[i] = ws[len(ws)-1]
			s.watches[w] = ws[:len(ws)-1]
			return
		}
	}
}

func (s *cdclState) removeBinWatch(w ilit, c cref) {
	ws := s.binWatches[w]
	for i := range ws {
		if ws[i].c == c {
			ws[i] = ws[len(ws)-1]
			s.binWatches[w] = ws[:len(ws)-1]
			return
		}
	}
}

// garbageCollect compacts the arena: live clauses are copied into a
// fresh backing slice and every reference (clause lists, watch lists,
// reasons) is remapped. Freed clauses' words are dropped.
func (s *cdclState) garbageCollect() {
	old := s.ar
	to := clauseArena{data: make([]ilit, 0, len(old.data)-old.wasted)}
	remap := make(map[cref]cref, len(s.clauses)+len(s.learnts))
	move := func(list []cref) {
		for i, c := range list {
			nc := to.alloc(old.lits(c), old.learned(c))
			to.setActivity(nc, old.activity(c))
			remap[c] = nc
			list[i] = nc
		}
	}
	move(s.clauses)
	move(s.learnts)
	for i := range s.watches {
		for j := range s.watches[i] {
			s.watches[i][j].c = remap[s.watches[i][j].c]
		}
	}
	for i := range s.binWatches {
		for j := range s.binWatches[i] {
			s.binWatches[i][j].c = remap[s.binWatches[i][j].c]
		}
	}
	for v := range s.reason {
		if r := s.reason[v]; r != crefUndef {
			s.reason[v] = remap[r]
		}
	}
	s.ar = to
}

// varHeap is a max-heap of variables ordered by VSIDS activity, with an
// index array for decrease/increase-key.
type varHeap struct {
	s     *cdclState
	heap  []int32
	index []int32 // position in heap, -1 if absent
}

// grow registers variables [len(index), n) and pushes them.
func (h *varHeap) grow(n int) {
	for v := int32(len(h.index)); v < int32(n); v++ {
		h.index = append(h.index, -1)
		h.push(v)
	}
}

func (h *varHeap) less(i, j int) bool {
	return h.s.activity[h.heap[i]] > h.s.activity[h.heap[j]]
}

func (h *varHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.index[h.heap[i]] = int32(i)
	h.index[h.heap[j]] = int32(j)
}

func (h *varHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *varHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(l, best) {
			best = l
		}
		if r < n && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) pop() int32 {
	v := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.index[v] = -1
	if last > 0 {
		h.down(0)
	}
	return v
}

func (h *varHeap) push(v int32) {
	if h.index[v] >= 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.index[v] = int32(len(h.heap) - 1)
	h.up(len(h.heap) - 1)
}

func (h *varHeap) update(v int32) {
	if i := h.index[v]; i >= 0 {
		h.up(int(i))
	}
}
