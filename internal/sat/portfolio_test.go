package sat

import (
	"math/rand"
	"testing"
)

// bruteLexMin enumerates assignments in lexicographic order (variable 1
// most significant, false < true) and returns the first satisfying one
// — the reference CanonicalModel must reproduce. Only for tiny nVars.
func bruteLexMin(f *Formula) []bool {
	n := f.NumVars
	model := make([]bool, n+1)
	for mask := 0; mask < 1<<n; mask++ {
		for v := 1; v <= n; v++ {
			model[v] = mask&(1<<(n-v)) != 0
		}
		if Verify(f, model) == -1 {
			return model
		}
	}
	return nil
}

func fullOrder(f *Formula) []int {
	order := make([]int, f.NumVars)
	for i := range order {
		order[i] = i + 1
	}
	return order
}

func TestPortfolioAgreesWithSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cdcl := NewCDCL()
	for trial := 0; trial < 40; trial++ {
		nVars := 8 + rng.Intn(25)
		f := randomFormula(rng, nVars, int(float64(nVars)*4.0))
		want := cdcl.Solve(f)
		for _, n := range []int{1, 2, 4, 8} {
			pr := SolvePortfolio(f, n)
			if pr.Result.Status != want.Status {
				t.Fatalf("trial %d n=%d: portfolio %v, sequential %v", trial, n, pr.Result.Status, want.Status)
			}
			if pr.Result.Status == Sat {
				if bad := Verify(f, pr.Result.Model); bad != -1 {
					t.Fatalf("trial %d n=%d: winning model falsifies clause %d", trial, n, bad)
				}
			}
			if pr.Winner < 0 || pr.Winner >= n {
				t.Fatalf("trial %d n=%d: bad winner %d", trial, n, pr.Winner)
			}
			if len(pr.Workers) != n {
				t.Fatalf("trial %d n=%d: %d worker reports", trial, n, len(pr.Workers))
			}
			winners := 0
			for _, w := range pr.Workers {
				if w.Winner {
					winners++
					if w.Worker != pr.Winner || w.Status != pr.Result.Status {
						t.Fatalf("trial %d n=%d: inconsistent winner report %+v", trial, n, w)
					}
				}
			}
			if winners != 1 {
				t.Fatalf("trial %d n=%d: %d winners", trial, n, winners)
			}
			if pr.Session() == nil {
				t.Fatalf("trial %d n=%d: nil session", trial, n)
			}
		}
	}
}

func TestCanonicalModelIsLexMin(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 120; trial++ {
		nVars := 4 + rng.Intn(8) // small enough to brute-force
		f := randomFormula(rng, nVars, int(float64(nVars)*3.5))
		want := bruteLexMin(f)
		res := NewCDCL().Solve(f)
		if (want == nil) != (res.Status == Unsat) {
			t.Fatalf("trial %d: brute force and solver disagree on satisfiability", trial)
		}
		if want == nil {
			continue
		}
		in := NewCDCL().StartIncremental(f)
		got, _, err := CanonicalModel(in, res.Model, fullOrder(f))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for v := 1; v <= nVars; v++ {
			if got[v] != want[v] {
				t.Fatalf("trial %d: canonical model differs from lex-min at var %d", trial, v)
			}
		}
	}
}

// Canonicalizing the winner of any portfolio width must yield the same
// model — the determinism contract the configuration pipeline rests on.
func TestPortfolioCanonicalDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		nVars := 10 + rng.Intn(30)
		f := randomFormula(rng, nVars, int(float64(nVars)*3.8))
		var want []bool
		for _, n := range []int{1, 2, 4, 8} {
			pr := SolvePortfolio(f, n)
			if pr.Result.Status != Sat {
				want = nil
				break
			}
			got, _, err := CanonicalModel(pr.Session(), pr.Result.Model, fullOrder(f))
			if err != nil {
				t.Fatalf("trial %d n=%d: %v", trial, n, err)
			}
			if bad := Verify(f, got); bad != -1 {
				t.Fatalf("trial %d n=%d: canonical model falsifies clause %d", trial, n, bad)
			}
			if want == nil {
				want = got
				continue
			}
			for v := 1; v <= nVars; v++ {
				if got[v] != want[v] {
					t.Fatalf("trial %d n=%d: canonical model differs at var %d", trial, n, v)
				}
			}
		}
	}
}

func TestPortfolioUnsat(t *testing.T) {
	f := NewFormula(2)
	f.Add(Lit(1), Lit(2))
	f.Add(Lit(1), Lit(-2))
	f.Add(Lit(-1), Lit(2))
	f.Add(Lit(-1), Lit(-2))
	for _, n := range []int{1, 2, 4} {
		pr := SolvePortfolio(f, n)
		if pr.Result.Status != Unsat {
			t.Fatalf("n=%d: %v, want Unsat", n, pr.Result.Status)
		}
	}
}

// The winner's session must stay usable after the portfolio is torn
// down: further assumptions, clause adds, and solves on warm state.
func TestPortfolioSessionContinues(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	f := randomFormula(rng, 30, 90)
	pr := SolvePortfolio(f, 4)
	if pr.Result.Status != Sat {
		t.Skip("random instance unsat; covered elsewhere")
	}
	in := pr.Session()
	res := in.SolveAssuming(nil)
	if res.Status != Sat {
		t.Fatalf("re-solve on winner session: %v", res.Status)
	}
	// Force a variable the current model sets true to false.
	for v := 1; v <= f.NumVars; v++ {
		if res.Model[v] {
			trial := in.SolveAssuming([]Lit{Lit(-v)})
			if trial.Status == Unknown {
				t.Fatalf("session gave up under assumption ¬%d", v)
			}
			break
		}
	}
}
