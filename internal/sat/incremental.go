package sat

// This file is the incremental solving layer: a MiniSat-style session
// interface where clauses are only ever added and each solve starts
// from the warm state the previous one left behind — learned clauses,
// VSIDS activity, and saved phases all persist. Engage's enumeration
// and re-configuration workloads (Alternatives, ConfigureMinimal, the
// E7/A2 benches) are exactly this shape: solve, add a blocking or
// strengthening clause, solve again. The incremental path makes each
// re-solve pay only for what changed instead of re-propagating the
// whole formula and re-learning every conflict from a cold start.

// IncrementalSolver is an incremental SAT session. Clauses may only be
// added, never removed, so everything learned remains valid across
// calls.
type IncrementalSolver interface {
	// AddClause installs a clause into the session. It returns false
	// if the clause set has become trivially unsatisfiable (further
	// adds are ignored and every subsequent solve answers Unsat).
	AddClause(c Clause) bool
	// SolveAssuming solves the current clause set under temporary
	// assumptions: each literal in assumps is held true for this call
	// only. On Unsat caused by the assumptions, Result.Core holds a
	// subset of assumps that is jointly inconsistent with the clause
	// set; a nil Core on Unsat means the clause set is unsatisfiable
	// on its own. Result.Stats reports the effort of this call alone.
	SolveAssuming(assumps []Lit) Result
}

// IncrementalSource is implemented by solvers that can open warm
// incremental sessions (*CDCL does). Solvers without native support
// still work through StartIncremental's cold fallback adapter.
type IncrementalSource interface {
	StartIncremental(f *Formula) IncrementalSolver
}

// StartIncremental opens an incremental session seeded with f. If the
// solver implements IncrementalSource the session is warm; otherwise a
// compatibility adapter re-solves the grown formula from scratch on
// every call, preserving one-shot semantics for solvers like DPLL. The
// input formula is never mutated.
func StartIncremental(s Solver, f *Formula) IncrementalSolver {
	if src, ok := s.(IncrementalSource); ok {
		return src.StartIncremental(f)
	}
	return newColdIncremental(s, f)
}

// StartIncremental implements IncrementalSource: it returns a warm
// CDCL session seeded with f's clauses.
func (c *CDCL) StartIncremental(f *Formula) IncrementalSolver {
	in := NewIncremental(f.NumVars)
	for _, cl := range f.Clauses {
		if !in.AddClause(cl) {
			break
		}
	}
	if c.LogProof {
		// Logging starts after seeding: f is the proof's base formula,
		// clauses added later are logged as "i" inputs.
		in.StartProof(c.ProofCap)
	}
	return in
}

// ProofLogger is implemented by incremental sessions that can record a
// checkable derivation log (*Incremental does; the cold adapter does
// not). Callers that want certified UNSAT answers assert against it and
// degrade gracefully when the session cannot log.
type ProofLogger interface {
	StartProof(capSteps int) *Proof
	Proof() *Proof
}

// Incremental is the CDCL-backed warm session. The zero value is not
// usable; construct with NewIncremental or CDCL.StartIncremental.
type Incremental struct {
	s *cdclState
}

// NewIncremental returns an empty incremental CDCL session over nVars
// variables. Clauses and assumptions mentioning higher-numbered
// variables grow the session automatically.
func NewIncremental(nVars int) *Incremental {
	return &Incremental{s: newState(nVars)}
}

// AddClause implements IncrementalSolver. The session backtracks to
// decision level 0 first, so clauses can be added between solves.
func (in *Incremental) AddClause(c Clause) bool {
	in.s.backtrackTo(0)
	if in.s.proof != nil && in.s.ok {
		// Log the clause as given, before simplification: the checker
		// installs the original and re-derives any level-0 reductions.
		in.s.logStep(ProofInput, append([]Lit(nil), c...))
	}
	return in.s.addClause(c)
}

// StartProof begins DRAT-style proof logging on the session, bounded to
// capSteps steps (0 = unlimited), and returns the log. The clauses
// already in the session form the proof's base formula; certification
// is only complete if no solve has run yet (lemmas learned before
// logging are invisible to the checker). Calling it again returns the
// existing log unchanged.
func (in *Incremental) StartProof(capSteps int) *Proof {
	s := in.s
	if s.proof == nil {
		s.proof = NewProof(capSteps)
		if !s.ok {
			// The seed clauses already closed the formula during
			// addClause-level propagation, which the checker reproduces:
			// the empty clause is RUP against the base formula.
			s.logEmptyLemma()
		}
	}
	return s.proof
}

// Proof returns the session's derivation log (nil if logging is off).
func (in *Incremental) Proof() *Proof { return in.s.proof }

// SolveAssuming implements IncrementalSolver. Learned clauses remain
// sound across calls because assumptions are posted as decisions, not
// clauses: everything learned is implied by the clause set alone.
func (in *Incremental) SolveAssuming(assumps []Lit) Result {
	s := in.s
	s.backtrackTo(0)
	base := s.stats
	var res Result
	if !s.ok {
		res = Result{Status: Unsat, Proof: s.proof}
	} else {
		maxVar := 0
		for _, a := range assumps {
			if a.Var() > maxVar {
				maxVar = a.Var()
			}
		}
		s.ensureVars(maxVar)
		s.assumptions = s.assumptions[:0]
		for _, a := range assumps {
			s.assumptions = append(s.assumptions, toInternal(a))
		}
		res = s.search()
		s.assumptions = s.assumptions[:0]
	}
	res.Stats = statsDelta(s.stats, base)
	return res
}

// TotalStats reports the cumulative effort of the whole session.
func (in *Incremental) TotalStats() Stats { return in.s.stats }

func statsDelta(now, base Stats) Stats {
	return Stats{
		Decisions:    now.Decisions - base.Decisions,
		Propagations: now.Propagations - base.Propagations,
		Conflicts:    now.Conflicts - base.Conflicts,
		Learned:      now.Learned - base.Learned,
		Restarts:     now.Restarts - base.Restarts,
		ProofSteps:   now.ProofSteps - base.ProofSteps,
	}
}

// coldIncremental adapts any one-shot Solver to the incremental
// interface by re-solving the accumulated formula from scratch on
// every call. It exists for compatibility (DPLL, test stubs) and as
// the measured baseline in BenchmarkIncrementalEnumeration.
type coldIncremental struct {
	s Solver
	f *Formula // private copy; grows with AddClause
}

func newColdIncremental(s Solver, f *Formula) *coldIncremental {
	return &coldIncremental{
		s: s,
		f: &Formula{NumVars: f.NumVars, Clauses: append([]Clause(nil), f.Clauses...)},
	}
}

func (c *coldIncremental) AddClause(cl Clause) bool {
	for _, l := range cl {
		if l.Var() > c.f.NumVars {
			c.f.NumVars = l.Var()
		}
	}
	c.f.Clauses = append(c.f.Clauses, append(Clause(nil), cl...))
	return true
}

func (c *coldIncremental) SolveAssuming(assumps []Lit) Result {
	work := c.f
	if len(assumps) > 0 {
		work = &Formula{NumVars: c.f.NumVars, Clauses: append([]Clause(nil), c.f.Clauses...)}
		for _, a := range assumps {
			if a.Var() > work.NumVars {
				work.NumVars = a.Var()
			}
			work.Clauses = append(work.Clauses, Clause{a})
		}
	}
	res := c.s.Solve(work)
	if res.Status == Unsat && len(assumps) > 0 {
		// A one-shot solver cannot attribute the conflict, so the core
		// is the whole assumption set — a sound over-approximation.
		res.Core = append([]Lit(nil), assumps...)
	}
	return res
}
