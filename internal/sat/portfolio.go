package sat

// This file is the portfolio solving layer: SolvePortfolio races N
// diversified CDCL workers over the same formula and returns the first
// answer. Each worker is an ordinary cdclState with its own arena and
// watch lists (mutable solver state cannot be shared — propagation
// reorders clause literals in place); what is shared is the input
// formula (read-only) and a lock-striped exchange buffer through which
// workers publish short learned clauses to each other. Cross-import is
// sound because portfolio solves carry no assumptions: every learned
// clause is implied by the common problem clauses alone.
//
// Worker 0 always runs the sequential reference configuration, so a
// portfolio of one is exactly the plain solver. The other workers
// diversify along the classic portfolio axes: VSIDS decay rate, Luby
// restart unit, default branching phase, and a seeded fraction of
// random decisions.
//
// Which worker wins — and therefore which model comes back — depends
// on scheduling, so portfolio answers are NOT deterministic on their
// own. Callers that need a reproducible model canonicalize the winner
// through CanonicalModel (see canonical.go) on the winner's still-warm
// session.

import (
	"sync"
	"sync/atomic"
)

const (
	exchStripes   = 8    // lock stripes in the exchange buffer
	exchMaxLen    = 8    // only clauses this short are shared
	exchStripeCap = 4096 // per-stripe bound; publishes beyond it are dropped
)

// exchange is the lock-striped learned-clause buffer shared by the
// workers of one portfolio solve. Publishers rotate over stripes so no
// single mutex serializes all traffic; entries are append-only and
// immutable once published, so readers copy nothing under the lock but
// the slice header.
type exchange struct {
	stripes [exchStripes]exchStripe
}

type exchStripe struct {
	mu      sync.Mutex
	entries []exchEntry
}

type exchEntry struct {
	from int
	lits []ilit
}

// publish appends a clause to one stripe; it reports whether the
// clause was accepted (full stripes drop, sharing is best-effort).
func (e *exchange) publish(from, seq int, lits []ilit) bool {
	st := &e.stripes[seq%exchStripes]
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.entries) >= exchStripeCap {
		return false
	}
	st.entries = append(st.entries, exchEntry{from: from, lits: lits})
	return true
}

// drain feeds every clause published since the caller's last drain —
// except the caller's own — to install, advancing cursor in place.
func (e *exchange) drain(from int, cursor []int, install func([]ilit)) {
	for si := range e.stripes {
		st := &e.stripes[si]
		st.mu.Lock()
		fresh := st.entries[cursor[si]:]
		cursor[si] = len(st.entries)
		st.mu.Unlock()
		// Entries are immutable after publish; installing outside the
		// lock copies the literals into the importer's own arena.
		for _, en := range fresh {
			if en.from == from {
				continue
			}
			install(en.lits)
		}
	}
}

// exportLearnt publishes a just-learned clause to portfolio siblings if
// sharing is on and the clause is short enough to be worth the traffic.
func (s *cdclState) exportLearnt(lits []ilit) {
	if s.exch == nil || len(lits) > exchMaxLen {
		return
	}
	// Flush-before-publish: the shared proof must contain this worker's
	// staged lemmas (this clause included) before any sibling can import
	// the clause, so every lemma a sibling later derives from it sits
	// after it in the log and stays RUP against its prefix.
	s.flushProof()
	cp := make([]ilit, len(lits))
	copy(cp, lits)
	if s.exch.publish(s.exchID, s.exchSeq, cp) {
		s.sharedOut++
	}
	s.exchSeq++
}

// importShared installs clauses published by portfolio siblings. Must
// be called at decision level 0 (search calls it at restart
// boundaries): imported units are enqueued and propagated immediately.
func (s *cdclState) importShared() {
	if s.exch == nil {
		return
	}
	s.exch.drain(s.exchID, s.exchCursor, s.installShared)
}

// installShared installs one shared clause at level 0, simplifying
// against the current root-level assignment. A conflict here latches
// s.ok = false: shared clauses are implied by the common problem
// clauses, so this is genuine unsatisfiability.
func (s *cdclState) installShared(lits []ilit) {
	if !s.ok {
		return
	}
	out := make([]ilit, 0, len(lits))
	for _, l := range lits {
		switch s.value(l) {
		case valTrue:
			return // satisfied at level 0 already
		case valFalse:
			continue
		}
		out = append(out, l)
	}
	s.sharedIn++
	switch len(out) {
	case 0:
		// The imported clause is falsified by this worker's root
		// assignment; everything involved is already in the shared log
		// (exporters flush before publishing), so the empty clause is
		// RUP against it.
		s.ok = false
		s.logEmptyLemma()
	case 1:
		s.uncheckedEnqueue(out[0], crefUndef)
		if s.propagate() != crefUndef {
			s.ok = false
			s.logEmptyLemma()
		}
	default:
		cl := s.ar.alloc(out, true)
		s.ar.setActivity(cl, float32(s.claInc))
		s.learnts = append(s.learnts, cl)
		s.attach(cl)
	}
}

// workerConfig is one portfolio worker's diversification parameters.
type workerConfig struct {
	varDecay    float64
	restartUnit int64
	phase       bool   // default branching phase (true = try false first)
	seed        uint64 // xorshift seed; 0 disables random branching
	randFreq    uint64 // percent of decisions branched at random
}

// portfolioConfig returns worker i's parameters. Worker 0 is always
// the sequential reference configuration, so SolvePortfolio(f, 1)
// searches exactly like CDCL.Solve(f).
func portfolioConfig(i int) workerConfig {
	switch i {
	case 0:
		return workerConfig{varDecay: varDecay, restartUnit: restartUnit, phase: true}
	case 1:
		// Slow decay, long restarts: persistent focus.
		return workerConfig{varDecay: 1.0 / 0.98, restartUnit: 3 * restartUnit / 2, phase: true}
	case 2:
		// Fast decay, rapid restarts, a pinch of randomness: explorer.
		return workerConfig{varDecay: 1.0 / 0.92, restartUnit: restartUnit / 2, phase: true,
			seed: splitmix(2), randFreq: 2}
	case 3:
		// Inverted default phase: searches dense models first.
		return workerConfig{varDecay: varDecay, restartUnit: restartUnit, phase: false}
	default:
		return workerConfig{
			varDecay:    1.0 / (0.90 + 0.02*float64(i%5)),
			restartUnit: int64(restartUnit/2 + (restartUnit/4)*int64(i%5)),
			phase:       i%3 != 2,
			seed:        splitmix(uint64(i)),
			randFreq:    uint64(1 + i%7),
		}
	}
}

// splitmix is SplitMix64, used to derive well-mixed per-worker seeds
// from small worker indices.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// PortfolioWorker reports one worker's outcome: the winner carries the
// answer, the losers carry the effort they had spent when the stop
// flag cancelled them (Status Unknown).
type PortfolioWorker struct {
	Worker    int
	Status    Status // Unknown = cancelled by the winner
	Winner    bool
	Stats     Stats
	SharedIn  int64 // clauses imported from siblings
	SharedOut int64 // clauses exported to siblings
}

// PortfolioResult is SolvePortfolio's answer.
type PortfolioResult struct {
	Result  Result // the winning worker's result
	Winner  int    // winning worker index
	Workers []PortfolioWorker
	session *Incremental
}

// Session returns the winning worker's warm incremental session:
// learned clauses, activity, and phases as the winner left them.
// Callers use it to canonicalize or strengthen the winning model
// without a cold start.
func (p *PortfolioResult) Session() *Incremental { return p.session }

// TotalStats sums solver effort across all workers — the honest cost
// of the portfolio solve, as opposed to Result.Stats (winner only).
func (p *PortfolioResult) TotalStats() Stats {
	var t Stats
	for _, w := range p.Workers {
		t.Decisions += w.Stats.Decisions
		t.Propagations += w.Stats.Propagations
		t.Conflicts += w.Stats.Conflicts
		t.Learned += w.Stats.Learned
		t.Restarts += w.Stats.Restarts
		t.ProofSteps += w.Stats.ProofSteps
	}
	return t
}

// testPortfolioHook, when set by a test, observes every worker's final
// state after the race settles (loser buffer-discard regression test).
var testPortfolioHook func(states []*cdclState)

// SolvePortfolio races n diversified CDCL workers on f and returns the
// first answer. The input formula is shared read-only; each worker
// owns its solver state. The first worker to finish flips the shared
// stop flag; the rest cancel at their next search-loop check and
// report Status Unknown with their effort so far. f is not mutated.
func SolvePortfolio(f *Formula, n int) PortfolioResult {
	return solvePortfolio(f, n, nil)
}

// SolvePortfolioCertified is SolvePortfolio with DRAT-style proof
// logging: all workers append to ONE shared log (deletes suppressed,
// pending steps flushed before every export), so an UNSAT answer
// carries a proof that is RUP-checkable regardless of which worker won
// or what it imported. proofCap bounds the log's step count
// (0 = unlimited). SAT answers are certified by their model alone and
// carry no proof.
func SolvePortfolioCertified(f *Formula, n, proofCap int) PortfolioResult {
	return solvePortfolio(f, n, NewProof(proofCap))
}

func solvePortfolio(f *Formula, n int, proof *Proof) PortfolioResult {
	if n < 1 {
		n = 1
	}
	var exch *exchange
	if n > 1 {
		exch = &exchange{}
	}
	var stop atomic.Bool
	var winner atomic.Int32
	winner.Store(-1)

	states := make([]*cdclState, n)
	results := make([]Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg := portfolioConfig(i)
			s := &cdclState{
				varInc:       1,
				claInc:       1,
				ok:           true,
				varDecayRate: cfg.varDecay,
				restartUnit:  cfg.restartUnit,
				defaultPhase: cfg.phase,
				rnd:          cfg.seed,
				randFreq:     cfg.randFreq,
			}
			s.order.s = s
			if n > 1 {
				s.stop = &stop
				s.exch = exch
				s.exchID = i
				s.exchCursor = make([]int, exchStripes)
			}
			if proof != nil {
				s.proof = proof
				s.proofShared = n > 1
			}
			s.ensureVars(f.NumVars)
			states[i] = s
			res := Result{Status: Unsat}
			ok := true
			for _, c := range f.Clauses {
				if !s.addClause(c) {
					ok = false
					break
				}
			}
			if ok {
				res = s.search()
			} else {
				res.Stats = s.stats
				res.Proof = s.proof
			}
			if res.Status == Unknown {
				s.discardProofPending()
			} else {
				s.flushProof()
			}
			results[i] = res
			if res.Status != Unknown && winner.CompareAndSwap(-1, int32(i)) {
				stop.Store(true)
			}
		}()
	}
	wg.Wait()

	// The stop flag is only ever set by a successful winner CAS, so at
	// least one worker finished uncancelled and w is always valid.
	w := int(winner.Load())
	pr := PortfolioResult{Winner: w, Workers: make([]PortfolioWorker, n), Result: results[w]}
	for i := range pr.Workers {
		pw := PortfolioWorker{Worker: i, Status: results[i].Status, Winner: i == w, Stats: results[i].Stats}
		if s := states[i]; s != nil {
			pw.SharedIn, pw.SharedOut = s.sharedIn, s.sharedOut
		}
		pr.Workers[i] = pw
	}
	if testPortfolioHook != nil {
		testPortfolioHook(states)
	}
	// Hand the winner's state over as a warm session. Detach it from
	// the dead portfolio first: the session must not observe the stop
	// flag or keep importing from siblings that no longer run. With the
	// siblings gone, subsequent proof steps need no staging either.
	ws := states[w]
	ws.stop = nil
	ws.exch = nil
	ws.proofShared = false
	pr.session = &Incremental{s: ws}
	return pr
}
