// Package deploy implements Engage's deployment engine (§5.2 of the
// paper): given a full installation specification, it instantiates a
// driver per resource instance and executes driver transitions — in
// dependency order, optionally in (virtual-time) parallel — until every
// state machine is active, at which point the system is deployed. It
// also implements dependency-respecting shutdown (reverse order) and
// teardown, and tracks every driver's state so it can evaluate the
// ↑s / ↓s guards.
package deploy

import (
	"fmt"
	"strings"
	"time"

	"engage/internal/conc"
	"engage/internal/driver"
	"engage/internal/machine"
	"engage/internal/pkgmgr"
	"engage/internal/resource"
	"engage/internal/spec"
	"engage/internal/telemetry"
)

// Options configure a deployment.
type Options struct {
	Registry *resource.Registry
	Drivers  *DriverRegistry
	World    *machine.World
	Index    *pkgmgr.Index
	Cache    *pkgmgr.Cache
	// Parallel deploys independent instances concurrently in virtual
	// time: total elapsed time is the dependency-graph critical path
	// rather than the sum of all action durations.
	Parallel bool
	// Parallelism bounds the worker pool used for real (wall-clock)
	// concurrency in deployment preparation: driver instantiation in
	// New and per-machine plan batching in PlanByMachine. Values ≤ 1
	// run sequentially. Orthogonal to Parallel, which concerns virtual
	// time. Driver factories must be safe to invoke concurrently for
	// distinct instances (the built-in and declarative factories are).
	Parallelism int
	// ProvisionMissing creates world machines for machine instances not
	// already present, using OSOf to derive the OS identifier.
	ProvisionMissing bool
	// NoClockAdvance computes Elapsed without advancing the world
	// clock; the multi-host coordinator uses it to combine per-slave
	// times into a critical path.
	NoClockAdvance bool
	// Plugins run after deployment lifecycle transitions (§5.2's
	// plugin framework); see the monitor package for the monit plugin.
	Plugins []Plugin
	// OSOf maps a machine instance to an OS identifier; nil uses the
	// lower-cased resource key.
	OSOf func(inst *spec.Instance) string
	// OnFailure selects what a failed deploy leaves behind: abort
	// as-is (default), retry-then-abort, or retry-then-rollback.
	OnFailure FailurePolicy
	// Retry bounds per-action retries; zero values take policy
	// defaults (see RetryPolicy).
	Retry RetryPolicy
	// ActionTimeout fails any single driver action whose virtual-time
	// cost exceeds it (0 = unlimited). Timeouts are terminal: they are
	// not retried, since the action may have partially applied.
	ActionTimeout time.Duration
	// Tracer, when non-nil, traces the deployment: a "deploy" root
	// span, one "deploy.instance" span per instance, one
	// "deploy.action" span per driver action stamped with its absolute
	// virtual-time interval, and events for retries, backoffs,
	// timeouts, snapshot, and rollback. A nil Tracer reduces the whole
	// instrumentation surface to pointer checks (zero allocations on
	// the action hot path — see BenchmarkDeployNilTracer).
	Tracer *telemetry.Tracer
	// Metrics, when non-nil, counts actions, retries, timeouts,
	// failures, and rollbacks, and observes per-action virtual cost.
	Metrics *telemetry.Registry
}

// Deployment is a managed deployment of one full installation
// specification.
type Deployment struct {
	opts  Options
	full  *spec.Full
	order []*spec.Instance

	drivers    map[string]*driver.Driver
	managers   map[string]*pkgmgr.Manager // per machine
	downstream map[string][]string
	elapsed    time.Duration
	events     []Event
}

// Event records one driver action executed by the deployment engine,
// with the virtual time consumed so far by that instance's actions.
type Event struct {
	Seq      int
	Instance string
	Action   string
	To       driver.State
	// Spent is the cumulative virtual time the instance's actions had
	// consumed when this action completed.
	Spent time.Duration
}

// Events returns the action log, in execution order.
func (d *Deployment) Events() []Event {
	out := make([]Event, len(d.events))
	copy(out, d.events)
	return out
}

// New prepares a deployment: it resolves machines, builds per-machine
// package managers, and instantiates a driver for every instance.
func New(full *spec.Full, opts Options) (*Deployment, error) {
	if opts.Registry == nil || opts.World == nil {
		return nil, fmt.Errorf("deploy: Registry and World are required")
	}
	if opts.Drivers == nil {
		opts.Drivers = NewDriverRegistry()
	}
	if opts.Index == nil {
		opts.Index = pkgmgr.NewIndex()
	}
	order, err := full.TopoOrder()
	if err != nil {
		return nil, err
	}
	d := &Deployment{
		opts:       opts,
		full:       full,
		order:      order,
		drivers:    make(map[string]*driver.Driver, len(order)),
		managers:   make(map[string]*pkgmgr.Manager),
		downstream: full.Downstream(),
	}

	// Machines first: every machine instance must exist in the world.
	for _, inst := range order {
		if inst.Inside != "" {
			continue
		}
		m, ok := opts.World.Machine(inst.ID)
		if !ok {
			if !opts.ProvisionMissing {
				return nil, fmt.Errorf("deploy: machine %q not present in world (provision it or set ProvisionMissing)", inst.ID)
			}
			os := osOf(opts, inst)
			m, err = opts.World.AddMachine(inst.ID, os)
			if err != nil {
				return nil, err
			}
		}
		d.managers[inst.ID] = pkgmgr.NewManager(opts.Index, opts.Cache, m)
	}

	// Drivers for every instance. Instantiation is independent
	// per-instance work (resolve the type, build and validate the state
	// machine), so it fans out over a worker pool; the serial fan-in
	// keeps dependency order and reports the first error in that order,
	// exactly like a sequential loop.
	type drvSlot struct {
		drv *driver.Driver
		err error
	}
	slots := make([]drvSlot, len(order))
	conc.ParallelFor(len(order), opts.Parallelism, func(i int) {
		inst := order[i]
		mname := inst.Machine
		if mname == "" {
			mname = inst.ID
		}
		m, ok := opts.World.Machine(mname)
		if !ok {
			slots[i].err = fmt.Errorf("deploy: instance %q: machine %q missing", inst.ID, mname)
			return
		}
		mgr := d.managers[mname]
		if mgr == nil {
			slots[i].err = fmt.Errorf("deploy: instance %q: no package manager for machine %q", inst.ID, mname)
			return
		}
		t, ok := opts.Registry.Lookup(inst.Key)
		if !ok {
			slots[i].err = fmt.Errorf("deploy: instance %q: unknown resource type %q", inst.ID, inst.Key)
			return
		}
		factory, err := opts.Drivers.Resolve(t)
		if err != nil {
			slots[i].err = err
			return
		}
		ctx := &driver.Context{Instance: inst, Machine: m, PkgMgr: mgr}
		sm := factory(ctx)
		if err := sm.Validate(); err != nil {
			slots[i].err = fmt.Errorf("deploy: instance %q: %v", inst.ID, err)
			return
		}
		slots[i].drv = driver.NewDriver(sm, ctx)
	})
	for i, inst := range order {
		if slots[i].err != nil {
			return nil, slots[i].err
		}
		d.drivers[inst.ID] = slots[i].drv
	}
	return d, nil
}

func osOf(opts Options, inst *spec.Instance) string {
	if opts.OSOf != nil {
		return opts.OSOf(inst)
	}
	return inst.Key.String()
}

// NeighbourStates implements driver.GuardEnv.
func (d *Deployment) NeighbourStates(id string, dir driver.Direction) []driver.State {
	var ids []string
	if dir == driver.Upstream {
		inst, ok := d.full.Find(id)
		if !ok {
			return nil
		}
		ids = inst.DependencyIDs()
	} else {
		ids = d.downstream[id]
	}
	out := make([]driver.State, 0, len(ids))
	for _, nid := range ids {
		if drv, ok := d.drivers[nid]; ok {
			out = append(out, drv.State())
		}
	}
	return out
}

// StateOf returns an instance's driver state.
func (d *Deployment) StateOf(id string) (driver.State, bool) {
	drv, ok := d.drivers[id]
	if !ok {
		return "", false
	}
	return drv.State(), true
}

// Status returns every instance's state.
func (d *Deployment) Status() map[string]driver.State {
	out := make(map[string]driver.State, len(d.drivers))
	for id, drv := range d.drivers {
		out[id] = drv.State()
	}
	return out
}

// Driver exposes an instance's driver; the monitor and upgrade
// frameworks use it.
func (d *Deployment) Driver(id string) (*driver.Driver, bool) {
	drv, ok := d.drivers[id]
	return drv, ok
}

// Instances returns the deployment's instances in dependency order.
func (d *Deployment) Instances() []*spec.Instance { return d.order }

// Elapsed reports the virtual time consumed by the last Deploy/Shutdown.
func (d *Deployment) Elapsed() time.Duration { return d.elapsed }

// Manager returns the package manager for a machine.
func (d *Deployment) Manager(machineID string) (*pkgmgr.Manager, bool) {
	m, ok := d.managers[machineID]
	return m, ok
}

// costSink accumulates charged durations.
type costSink struct{ d time.Duration }

func (s *costSink) Charge(d time.Duration) { s.d += d }

func (s *costSink) total() time.Duration { return s.d }

// accountingSink is a TimeSink whose accumulated total can be read; the
// retry layer uses it to measure per-action cost for timeouts and to
// charge backoff.
type accountingSink interface {
	machine.TimeSink
	total() time.Duration
}

// fireWithRetry fires one action, retrying per the deployment's retry
// policy with exponential backoff charged to sink as virtual time.
// Guard blocks are returned immediately (the callers own blocking
// semantics), and timeouts are terminal. It reports how many attempts
// were made. Retry and timeout events are emitted on sp stamped at
// vbase plus the instance's consumed virtual time; a nil sp traces
// nothing.
func (d *Deployment) fireWithRetry(drv *driver.Driver, id, action string, sink accountingSink, env driver.GuardEnv, sp *telemetry.Span, vbase time.Time) (int, error) {
	policy := d.opts.Retry.resolve(d.opts.OnFailure)
	for attempt := 1; ; attempt++ {
		before := sink.total()
		err := drv.Fire(action, env)
		cost := sink.total() - before
		if err == nil {
			if d.opts.ActionTimeout > 0 && cost > d.opts.ActionTimeout {
				if sp != nil {
					sp.Event("deploy.timeout").At(vbase.Add(sink.total())).
						Dur("cost", cost).Dur("limit", d.opts.ActionTimeout).Emit()
				}
				d.opts.Metrics.Counter("deploy.timeouts").Inc()
				return attempt, fmt.Errorf("action %q on %q exceeded timeout %v (cost %v)",
					action, id, d.opts.ActionTimeout, cost)
			}
			return attempt, nil
		}
		if _, blocked := err.(*driver.BlockedError); blocked {
			return attempt, err
		}
		if attempt >= policy.MaxAttempts {
			return attempt, err
		}
		bo := policy.backoff(attempt)
		if sp != nil {
			sp.Event("deploy.retry").At(vbase.Add(sink.total())).
				Int("attempt", int64(attempt)).Dur("backoff", bo).
				Str("error", err.Error()).Emit()
		}
		d.opts.Metrics.Counter("deploy.retries").Inc()
		sink.Charge(bo)
	}
}

// driveTo fires actions along the shortest path from the instance's
// current state to the target, charging durations (including retry
// backoff) to sink. Guards are evaluated against the deployment's live
// states. Failures come back as *DeployError naming the instance,
// action, and attempt count. When parent is non-nil, each action gets a
// "deploy.action" child span whose virtual interval is vbase plus the
// instance's consumed virtual time before/after the action.
func (d *Deployment) driveTo(id string, target driver.State, sink *costSink, vbase time.Time, parent *telemetry.Span) error {
	drv := d.drivers[id]
	ctx := drv.Ctx
	prevCtxSink, prevMgrSink := ctx.Sink, ctx.PkgMgr.Sink
	ctx.Sink, ctx.PkgMgr.Sink = sink, sink
	defer func() { ctx.Sink, ctx.PkgMgr.Sink = prevCtxSink, prevMgrSink }()

	path := drv.SM.PathTo(drv.State(), target)
	if path == nil {
		return fmt.Errorf("deploy: instance %q: no path from %q to %q", id, drv.State(), target)
	}
	for _, action := range path {
		sp := parent.Child("deploy.action")
		var wstart time.Time
		if sp != nil {
			wstart = time.Now() //engage:wallclock span wall-duration axis
		}
		before := sink.d
		attempts, err := d.fireWithRetry(drv, id, action, sink, d, sp, vbase)
		if sp != nil {
			sp.Str("instance", id).Str("action", action).
				Str("to", string(drv.State())).Int("attempts", int64(attempts))
			if err != nil {
				sp.Str("error", err.Error())
			}
			//engage:wallclock span wall-duration axis
			sp.At(vbase.Add(before), vbase.Add(sink.d)).Wall(time.Since(wstart)).End()
		}
		d.opts.Metrics.Counter("deploy.actions").Inc()
		d.opts.Metrics.Histogram("deploy.action_vcost_ns").Observe(int64(sink.d - before))
		if err != nil {
			d.opts.Metrics.Counter("deploy.action_failures").Inc()
			return &DeployError{Instance: id, Action: action, Attempts: attempts, Policy: d.opts.OnFailure, Err: err}
		}
		d.events = append(d.events, Event{
			Seq:      len(d.events),
			Instance: id,
			Action:   action,
			To:       drv.State(),
			Spent:    sink.d,
		})
	}
	return nil
}

// Deploy brings every instance to the active state in dependency order
// (§5.2: "executes commands on the resource drivers … such that every
// driver state machine is in its active state — at this point, the
// system is defined to be deployed"). With Parallel set, instances
// whose dependencies are satisfied proceed concurrently in virtual
// time; the world clock advances by the critical-path duration.
func (d *Deployment) Deploy() error {
	clock0 := d.opts.World.Clock.Now()
	root := d.opts.Tracer.Span("deploy")
	if root != nil {
		root.Int("instances", int64(len(d.order))).Bool("parallel", d.opts.Parallel)
	}
	var snap *worldSnapshot
	if d.opts.OnFailure == FailRollback {
		ssp := root.Child("deploy.snapshot")
		snap = d.snapshotWorld()
		if ssp != nil {
			ssp.Int("machines", int64(len(snap.machines))).At(clock0, clock0).End()
		}
	}
	finish := make(map[string]time.Duration, len(d.order))
	var total, maxFinish time.Duration
	var derr *DeployError

	for _, inst := range d.order {
		sink := &costSink{}
		// The instance's virtual start: in parallel mode the latest
		// dependency finish (valid because order is topological), in
		// sequential mode the running total so far.
		vstart := total
		if d.opts.Parallel {
			vstart = 0
			for _, dep := range inst.DependencyIDs() {
				if finish[dep] > vstart {
					vstart = finish[dep]
				}
			}
		}
		isp := root.Child("deploy.instance")
		if isp != nil {
			isp.Str("instance", inst.ID).Str("key", inst.Key.String()).
				Str("machine", d.drivers[inst.ID].Ctx.Machine.Name).
				Str("deps", strings.Join(inst.DependencyIDs(), " "))
		}
		err := d.driveTo(inst.ID, driver.Active, sink, clock0.Add(vstart), isp)
		if isp != nil {
			if err != nil {
				isp.Str("error", err.Error())
			}
			isp.At(clock0.Add(vstart), clock0.Add(vstart+sink.d)).End()
		}
		// Account the instance's cost even when it failed: retries and
		// backoff consumed real (virtual) time.
		if d.opts.Parallel {
			finish[inst.ID] = vstart + sink.d
			if finish[inst.ID] > maxFinish {
				maxFinish = finish[inst.ID]
			}
		} else {
			total += sink.d
		}
		if err != nil {
			derr = asDeployError(err, inst.ID)
			break
		}
	}
	if d.opts.Parallel {
		d.elapsed = maxFinish
	} else {
		d.elapsed = total
	}
	d.advanceClock()
	if derr != nil {
		derr.Policy = d.opts.OnFailure
		derr.States = d.Status()
		if snap != nil {
			rsp := root.Child("deploy.rollback")
			derr.RolledBack = true
			derr.RollbackErr = d.rollbackWorld(snap)
			d.opts.Metrics.Counter("deploy.rollbacks").Inc()
			if rsp != nil {
				rsp.Bool("ok", derr.RollbackErr == nil).
					At(clock0.Add(d.elapsed), clock0.Add(d.elapsed)).End()
			}
		}
		if root != nil {
			root.Str("error", derr.Error()).At(clock0, clock0.Add(d.elapsed)).End()
		}
		d.opts.Metrics.Counter("deploy.failures").Inc()
		return derr
	}
	if root != nil {
		root.At(clock0, clock0.Add(d.elapsed)).End()
	}
	return d.runPlugins("after-deploy", func(p Plugin) error { return p.AfterDeploy(d) })
}

func (d *Deployment) advanceClock() {
	if !d.opts.NoClockAdvance {
		d.opts.World.Clock.Advance(d.elapsed)
	}
}

// Shutdown stops every instance in reverse dependency order (§5.2:
// "shutting down an application goes in the reverse dependency order"),
// bringing each driver to inactive.
func (d *Deployment) Shutdown() error {
	clock0 := d.opts.World.Clock.Now()
	root := d.opts.Tracer.Span("deploy.shutdown")
	var total time.Duration
	for i := len(d.order) - 1; i >= 0; i-- {
		inst := d.order[i]
		drv := d.drivers[inst.ID]
		if drv.State() != driver.Active {
			continue
		}
		sink := &costSink{}
		if err := d.driveTo(inst.ID, driver.Inactive, sink, clock0.Add(total), root); err != nil {
			if root != nil {
				root.Str("error", err.Error()).At(clock0, clock0.Add(total+sink.d)).End()
			}
			return err
		}
		total += sink.d
	}
	d.elapsed = total
	d.advanceClock()
	if root != nil {
		root.At(clock0, clock0.Add(total)).End()
	}
	return d.runPlugins("after-shutdown", func(p Plugin) error { return p.AfterShutdown(d) })
}

// Uninstall tears the deployment down completely (reverse order, to the
// uninstalled state); the upgrade framework uses it for components that
// cannot be upgraded in place.
func (d *Deployment) Uninstall() error {
	clock0 := d.opts.World.Clock.Now()
	root := d.opts.Tracer.Span("deploy.uninstall")
	var total time.Duration
	fail := func(err error, spent time.Duration) error {
		if root != nil {
			root.Str("error", err.Error()).At(clock0, clock0.Add(spent)).End()
		}
		return err
	}
	// Pass 1: stop everything in reverse order (the ↓inactive stop
	// guards require downstream instances to be exactly inactive, so
	// nothing may be uninstalled while a dependency is still active).
	for i := len(d.order) - 1; i >= 0; i-- {
		inst := d.order[i]
		if d.drivers[inst.ID].State() != driver.Active {
			continue
		}
		sink := &costSink{}
		if err := d.driveTo(inst.ID, driver.Inactive, sink, clock0.Add(total), root); err != nil {
			return fail(err, total+sink.d)
		}
		total += sink.d
	}
	// Pass 2: uninstall in reverse order.
	for i := len(d.order) - 1; i >= 0; i-- {
		inst := d.order[i]
		sink := &costSink{}
		if err := d.driveTo(inst.ID, driver.Uninstalled, sink, clock0.Add(total), root); err != nil {
			return fail(err, total+sink.d)
		}
		total += sink.d
	}
	d.elapsed = total
	d.advanceClock()
	if root != nil {
		root.At(clock0, clock0.Add(total)).End()
	}
	return nil
}

// PlannedAction is one step of a dry-run plan.
type PlannedAction struct {
	Instance string
	Action   string
	From     driver.State
	To       driver.State
}

// Plan computes the ordered action sequence a Deploy would execute from
// the current driver states, without executing anything: a dry run. The
// plan lists, in dependency order, each driver's shortest action path to
// active.
func (d *Deployment) Plan() []PlannedAction {
	return d.planInstances(d.order)
}

// planInstances computes the dry-run action sequence for a subset of
// instances, in the given order. Each instance's path depends only on
// its own driver's current state, so disjoint subsets can be planned
// concurrently.
func (d *Deployment) planInstances(insts []*spec.Instance) []PlannedAction {
	var plan []PlannedAction
	for _, inst := range insts {
		drv := d.drivers[inst.ID]
		cur := drv.State()
		path := drv.SM.PathTo(cur, driver.Active)
		for _, action := range path {
			// Follow the transition to know intermediate states.
			var to driver.State
			for _, a := range drv.SM.Actions {
				if a.From == cur && a.Name == action {
					to = a.To
					break
				}
			}
			plan = append(plan, PlannedAction{Instance: inst.ID, Action: action, From: cur, To: to})
			cur = to
		}
	}
	return plan
}

// PlanByMachine computes each machine's dry-run action batch — the
// subsequence of Plan whose instances run on that machine, in the same
// dependency order — fanning the per-machine computation over a worker
// pool of the given width (≤ 1 = sequential). Concatenating the
// batches machine-by-machine partitions Plan exactly; the multi-host
// coordinator ships one batch per slave.
func (d *Deployment) PlanByMachine(workers int) map[string][]PlannedAction {
	var machines []string
	grouped := make(map[string][]*spec.Instance)
	for _, inst := range d.order {
		mname := inst.Machine
		if mname == "" {
			mname = inst.ID
		}
		if _, ok := grouped[mname]; !ok {
			machines = append(machines, mname)
		}
		grouped[mname] = append(grouped[mname], inst)
	}
	batches := make([][]PlannedAction, len(machines))
	conc.ParallelFor(len(machines), workers, func(i int) {
		batches[i] = d.planInstances(grouped[machines[i]])
	})
	out := make(map[string][]PlannedAction, len(machines))
	for i, m := range machines {
		out[m] = batches[i]
	}
	return out
}

// Adopt marks instances of this (not yet deployed) deployment as
// already running, transferring their driver state and runtime scratch
// (daemon PIDs) from a previous deployment. The incremental upgrade
// strategy uses it to leave unaffected components untouched: a
// subsequent Deploy finds their drivers already active and fires no
// actions for them.
func (d *Deployment) Adopt(prev *Deployment, ids []string) error {
	for _, id := range ids {
		newDrv, ok := d.drivers[id]
		if !ok {
			return fmt.Errorf("deploy: adopt: no instance %q in new deployment", id)
		}
		oldDrv, ok := prev.drivers[id]
		if !ok {
			return fmt.Errorf("deploy: adopt: no instance %q in previous deployment", id)
		}
		newDrv.SetState(oldDrv.State())
		newDrv.Ctx.Scratch = oldDrv.Ctx.Scratch
	}
	return nil
}

// Deployed reports whether every instance is active.
func (d *Deployment) Deployed() bool {
	for _, drv := range d.drivers {
		if drv.State() != driver.Active {
			return false
		}
	}
	return true
}
