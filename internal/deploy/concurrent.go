package deploy

import (
	"fmt"
	"sync"
	"time"

	"engage/internal/driver"
	"engage/internal/machine"
)

// DeployConcurrent brings every instance to the active state using one
// goroutine per instance, realizing the paper's blocking-transition
// semantics (§5.1: "the transition blocks until the guard becomes true,
// at which point the action is executed") with real concurrency: each
// worker fires its driver's actions as soon as the guards allow,
// coordinated only through the deployment's state tracking. Virtual
// time is accounted per instance and combined as the dependency
// critical path, as in the Parallel option.
//
// DeployConcurrent exists alongside the deterministic Deploy to
// demonstrate (and stress-test, under -race) that the guard discipline
// alone suffices to order a distributed deployment — no global plan is
// needed.
func (d *Deployment) DeployConcurrent() error {
	var (
		mu     sync.Mutex
		cond   = sync.NewCond(&mu)
		failed error
	)
	// concurrentEnv evaluates guards under the shared mutex and wakes
	// waiters whenever any state changes.
	env := &concurrentEnv{d: d, mu: &mu}

	finish := make(map[string]time.Duration, len(d.order))
	var wg sync.WaitGroup
	for _, inst := range d.order {
		inst := inst
		wg.Add(1)
		go func() {
			defer wg.Done()
			drv := d.drivers[inst.ID]
			sink := &atomicSink{}

			mu.Lock()
			ctx := drv.Ctx
			prevCtxSink, prevMgrSink := ctx.Sink, ctx.PkgMgr.Sink
			mu.Unlock()

			path := drv.SM.PathTo(drv.State(), driver.Active)
			if path == nil {
				mu.Lock()
				failed = fmt.Errorf("deploy: instance %q: no path to active", inst.ID)
				cond.Broadcast()
				mu.Unlock()
				return
			}
			for _, action := range path {
				mu.Lock()
				for {
					if failed != nil {
						mu.Unlock()
						return
					}
					// Fire under the lock: driver actions mutate shared
					// simulated machines, and the state update must be
					// atomic with the guard check.
					ctx.Sink, ctx.PkgMgr.Sink = sink, sink
					err := drv.Fire(action, env)
					ctx.Sink, ctx.PkgMgr.Sink = prevCtxSink, prevMgrSink
					if err == nil {
						cond.Broadcast()
						break
					}
					if _, blocked := err.(*driver.BlockedError); !blocked {
						failed = fmt.Errorf("deploy: instance %q: %w", inst.ID, err)
						cond.Broadcast()
						mu.Unlock()
						return
					}
					cond.Wait() // guard not yet true; wait for a state change
				}
				mu.Unlock()
			}
			mu.Lock()
			finish[inst.ID] = sink.total()
			mu.Unlock()
		}()
	}
	wg.Wait()
	if failed != nil {
		return failed
	}

	// Combine per-instance durations into the dependency critical path.
	var maxFinish time.Duration
	memo := make(map[string]time.Duration, len(d.order))
	var chain func(id string) time.Duration
	chain = func(id string) time.Duration {
		if v, ok := memo[id]; ok {
			return v
		}
		start := time.Duration(0)
		if inst, ok := d.full.Find(id); ok {
			for _, dep := range inst.DependencyIDs() {
				if f := chain(dep); f > start {
					start = f
				}
			}
		}
		v := start + finish[id]
		memo[id] = v
		return v
	}
	for _, inst := range d.order {
		if f := chain(inst.ID); f > maxFinish {
			maxFinish = f
		}
	}
	d.elapsed = maxFinish
	d.advanceClock()
	return nil
}

// concurrentEnv adapts the deployment's neighbour-state view for use
// under the concurrency mutex (which the caller already holds when
// guards are evaluated inside Fire).
type concurrentEnv struct {
	d  *Deployment
	mu *sync.Mutex
}

// NeighbourStates implements driver.GuardEnv; the caller holds the
// mutex.
func (e *concurrentEnv) NeighbourStates(id string, dir driver.Direction) []driver.State {
	return e.d.NeighbourStates(id, dir)
}

// atomicSink accumulates charged durations; accessed only under the
// deployment mutex but kept separate per instance.
type atomicSink struct {
	mu sync.Mutex
	d  time.Duration
}

func (s *atomicSink) Charge(d time.Duration) {
	s.mu.Lock()
	s.d += d
	s.mu.Unlock()
}

func (s *atomicSink) total() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d
}

var _ machine.TimeSink = (*atomicSink)(nil)
