package deploy

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"engage/internal/driver"
	"engage/internal/machine"
)

// retryRecord remembers one retry of a concurrent worker's action, in
// instance-relative virtual time, so the trace can be emitted post-hoc
// once critical-path accounting has fixed absolute timestamps.
type retryRecord struct {
	attempt int
	at      time.Duration // instance virtual time of the failure
	backoff time.Duration
	err     string
}

// actionRecord remembers one executed action of a concurrent worker for
// post-hoc trace emission.
type actionRecord struct {
	action   string
	to       driver.State
	start    time.Duration // instance virtual time interval
	end      time.Duration
	attempts int
	err      string
	timeout  bool
	wall     time.Duration
	retries  []retryRecord
}

// DeployConcurrent brings every instance to the active state using one
// goroutine per instance, realizing the paper's blocking-transition
// semantics (§5.1: "the transition blocks until the guard becomes true,
// at which point the action is executed") with real concurrency: each
// worker fires its driver's actions as soon as the guards allow,
// coordinated only through the deployment's state tracking. Virtual
// time is accounted per instance and combined as the dependency
// critical path, as in the Parallel option.
//
// DeployConcurrent exists alongside the deterministic Deploy to
// demonstrate (and stress-test, under -race) that the guard discipline
// alone suffices to order a distributed deployment — no global plan is
// needed.
//
// Failures follow the deployment's retry and failure policies. Only the
// first failure becomes the returned *DeployError; failures from other
// workers are collected into its Additional list. If every unfinished
// worker ends up parked on a guard that no remaining progress can
// satisfy, the deployment reports a deadlock error naming the blocked
// instances and their unsatisfied guards instead of hanging forever.
func (d *Deployment) DeployConcurrent() error {
	clock0 := d.opts.World.Clock.Now()
	trace := d.opts.Tracer != nil
	var (
		mu   sync.Mutex
		cond = sync.NewCond(&mu)
		derr *DeployError // first failure (or deadlock); others go to Additional

		unfinished = len(d.order)
		waiting    int
		// gen counts driver state changes; a parked worker records the
		// generation its guard was last evaluated against, so deadlock
		// is declared only from current evaluations, never stale ones.
		gen     int
		blocked = make(map[string]*blockedWait)
		// recsByInst collects per-action records (under mu, only when
		// tracing) for post-hoc span emission: concurrent workers learn
		// their absolute virtual start only once the critical path is
		// combined after the fact.
		recsByInst map[string][]actionRecord
	)
	if trace {
		recsByInst = make(map[string][]actionRecord, len(d.order))
	}
	var snap *worldSnapshot
	if d.opts.OnFailure == FailRollback {
		snap = d.snapshotWorld()
	}
	// concurrentEnv evaluates guards under the shared mutex and wakes
	// waiters whenever any state changes.
	env := &concurrentEnv{d: d, mu: &mu}
	policy := d.opts.Retry.resolve(d.opts.OnFailure)

	// deadlocked reports (under mu) whether every unfinished worker is
	// parked on a guard evaluated against the current state generation.
	deadlocked := func() bool {
		if unfinished == 0 || waiting != unfinished || len(blocked) != waiting {
			return false
		}
		for _, bw := range blocked {
			if bw.gen != gen {
				return false
			}
		}
		return true
	}
	// recordFailure files err as the first failure or an additional one.
	recordFailure := func(ferr *DeployError) {
		ferr.Policy = d.opts.OnFailure
		if derr == nil {
			derr = ferr
		} else {
			derr.Additional = append(derr.Additional, ferr)
		}
	}

	finish := make(map[string]time.Duration, len(d.order))
	var wg sync.WaitGroup
	for _, inst := range d.order {
		inst := inst
		wg.Add(1)
		go func() {
			defer wg.Done()
			drv := d.drivers[inst.ID]
			sink := &atomicSink{}

			// complete retires this worker (success or failure) and runs
			// the deadlock check: with one fewer unfinished worker, the
			// parked remainder may now be all there is. Caller holds mu.
			complete := func() {
				unfinished--
				if derr == nil && deadlocked() {
					derr = deadlockError(blocked)
				}
				cond.Broadcast()
			}

			mu.Lock()
			ctx := drv.Ctx
			prevCtxSink, prevMgrSink := ctx.Sink, ctx.PkgMgr.Sink
			mu.Unlock()

			path := drv.SM.PathTo(drv.State(), driver.Active)
			if path == nil {
				mu.Lock()
				recordFailure(&DeployError{Instance: inst.ID, Err: fmt.Errorf("no path to active")})
				complete()
				mu.Unlock()
				return
			}
			for _, action := range path {
				attempts := 0
				actStart := sink.total()
				var rec actionRecord
				var wstart time.Time
				if trace {
					rec = actionRecord{action: action, start: actStart}
					wstart = time.Now() //engage:wallclock span wall-duration axis
				}
				// saveRec files the action's trace record; caller holds mu.
				saveRec := func(failErr string, timedOut bool) {
					if !trace {
						return
					}
					rec.to = drv.State()
					rec.end = sink.total()
					rec.err = failErr
					rec.timeout = timedOut
					rec.wall = time.Since(wstart) //engage:wallclock span wall-duration axis
					recsByInst[inst.ID] = append(recsByInst[inst.ID], rec)
				}
				mu.Lock()
				for {
					if derr != nil {
						complete()
						mu.Unlock()
						return
					}
					// Fire under the lock: driver actions mutate shared
					// simulated machines, and the state update must be
					// atomic with the guard check.
					ctx.Sink, ctx.PkgMgr.Sink = sink, sink
					before := sink.total()
					err := drv.Fire(action, env)
					cost := sink.total() - before
					ctx.Sink, ctx.PkgMgr.Sink = prevCtxSink, prevMgrSink
					if err == nil && d.opts.ActionTimeout > 0 && cost > d.opts.ActionTimeout {
						err = fmt.Errorf("action %q on %q exceeded timeout %v (cost %v)",
							action, inst.ID, d.opts.ActionTimeout, cost)
						attempts++
						recordFailure(&DeployError{Instance: inst.ID, Action: action, Attempts: attempts, Policy: d.opts.OnFailure, Err: err})
						rec.attempts = attempts
						saveRec(err.Error(), true)
						d.opts.Metrics.Counter("deploy.timeouts").Inc()
						d.opts.Metrics.Counter("deploy.action_failures").Inc()
						complete()
						mu.Unlock()
						return
					}
					if err == nil {
						gen++
						cond.Broadcast()
						rec.attempts = attempts + 1
						saveRec("", false)
						d.opts.Metrics.Counter("deploy.actions").Inc()
						d.opts.Metrics.Histogram("deploy.action_vcost_ns").Observe(int64(sink.total() - actStart))
						break
					}
					if berr, isBlocked := err.(*driver.BlockedError); isBlocked {
						blocked[inst.ID] = &blockedWait{action: action, guard: berr.Guard, gen: gen}
						waiting++
						if derr == nil && deadlocked() {
							derr = deadlockError(blocked)
							waiting--
							delete(blocked, inst.ID)
							complete()
							mu.Unlock()
							return
						}
						cond.Wait() // guard not yet true; wait for a state change
						waiting--
						delete(blocked, inst.ID)
						continue
					}
					attempts++
					if attempts < policy.MaxAttempts {
						bo := policy.backoff(attempts)
						if trace {
							rec.retries = append(rec.retries, retryRecord{
								attempt: attempts, at: sink.total(), backoff: bo, err: err.Error(),
							})
						}
						d.opts.Metrics.Counter("deploy.retries").Inc()
						sink.Charge(bo)
						continue
					}
					recordFailure(&DeployError{Instance: inst.ID, Action: action, Attempts: attempts, Policy: d.opts.OnFailure, Err: err})
					rec.attempts = attempts
					saveRec(err.Error(), false)
					d.opts.Metrics.Counter("deploy.action_failures").Inc()
					complete()
					mu.Unlock()
					return
				}
				mu.Unlock()
			}
			mu.Lock()
			finish[inst.ID] = sink.total()
			complete()
			mu.Unlock()
		}()
	}
	wg.Wait()

	// Combine per-instance durations into the dependency critical path
	// (workers that never finished contribute what they consumed).
	var maxFinish time.Duration
	memo := make(map[string]time.Duration, len(d.order))
	var chain func(id string) time.Duration
	chain = func(id string) time.Duration {
		if v, ok := memo[id]; ok {
			return v
		}
		start := time.Duration(0)
		if inst, ok := d.full.Find(id); ok {
			for _, dep := range inst.DependencyIDs() {
				if f := chain(dep); f > start {
					start = f
				}
			}
		}
		v := start + finish[id]
		memo[id] = v
		return v
	}
	for _, inst := range d.order {
		if f := chain(inst.ID); f > maxFinish {
			maxFinish = f
		}
	}
	d.elapsed = maxFinish
	d.advanceClock()
	rolledBack := false
	if derr != nil {
		derr.States = d.Status()
		if snap != nil {
			derr.RolledBack = true
			derr.RollbackErr = d.rollbackWorld(snap)
			d.opts.Metrics.Counter("deploy.rollbacks").Inc()
			rolledBack = true
		}
		d.opts.Metrics.Counter("deploy.failures").Inc()
	}

	// Post-hoc trace emission: every instance's absolute virtual start is
	// its dependency chain's finish, now that the critical path is known.
	if trace {
		root := d.opts.Tracer.Span("deploy").
			Int("instances", int64(len(d.order))).
			Bool("parallel", true).Bool("concurrent", true)
		for _, inst := range d.order {
			recs := recsByInst[inst.ID]
			vstart := chain(inst.ID) - finish[inst.ID]
			var consumed time.Duration
			if n := len(recs); n > 0 {
				consumed = recs[n-1].end
			}
			isp := root.Child("deploy.instance").
				Str("instance", inst.ID).Str("key", inst.Key.String()).
				Str("machine", d.drivers[inst.ID].Ctx.Machine.Name).
				Str("deps", strings.Join(inst.DependencyIDs(), " "))
			for _, rec := range recs {
				sp := isp.Child("deploy.action").
					Str("instance", inst.ID).Str("action", rec.action).
					Str("to", string(rec.to)).Int("attempts", int64(rec.attempts))
				if rec.err != "" {
					sp.Str("error", rec.err)
				}
				for _, rr := range rec.retries {
					sp.Event("deploy.retry").At(clock0.Add(vstart+rr.at)).
						Int("attempt", int64(rr.attempt)).Dur("backoff", rr.backoff).
						Str("error", rr.err).Emit()
				}
				if rec.timeout {
					sp.Event("deploy.timeout").At(clock0.Add(vstart+rec.end)).
						Dur("limit", d.opts.ActionTimeout).Emit()
				}
				sp.At(clock0.Add(vstart+rec.start), clock0.Add(vstart+rec.end)).
					Wall(rec.wall).End()
			}
			if ferr := instanceError(derr, inst.ID); ferr != "" {
				isp.Str("error", ferr)
			}
			isp.At(clock0.Add(vstart), clock0.Add(vstart+consumed)).End()
		}
		if rolledBack {
			root.Child("deploy.rollback").Bool("ok", derr.RollbackErr == nil).
				At(clock0.Add(d.elapsed), clock0.Add(d.elapsed)).End()
		}
		if derr != nil {
			root.Str("error", derr.Error())
		}
		root.At(clock0, clock0.Add(d.elapsed)).End()
	}

	if derr != nil {
		return derr
	}
	return nil
}

// instanceError returns the failure message attributed to the instance
// in a structured deploy error, "" if none.
func instanceError(derr *DeployError, id string) string {
	if derr == nil {
		return ""
	}
	if derr.Instance == id {
		return derr.Error()
	}
	for _, add := range derr.Additional {
		if ae, ok := add.(*DeployError); ok && ae.Instance == id {
			return ae.Error()
		}
	}
	return ""
}

// concurrentEnv adapts the deployment's neighbour-state view for use
// under the concurrency mutex (which the caller already holds when
// guards are evaluated inside Fire).
type concurrentEnv struct {
	d  *Deployment
	mu *sync.Mutex
}

// NeighbourStates implements driver.GuardEnv; the caller holds the
// mutex.
func (e *concurrentEnv) NeighbourStates(id string, dir driver.Direction) []driver.State {
	return e.d.NeighbourStates(id, dir)
}

// atomicSink accumulates charged durations; accessed only under the
// deployment mutex but kept separate per instance.
type atomicSink struct {
	mu sync.Mutex
	d  time.Duration
}

func (s *atomicSink) Charge(d time.Duration) {
	s.mu.Lock()
	s.d += d
	s.mu.Unlock()
}

func (s *atomicSink) total() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d
}

var _ machine.TimeSink = (*atomicSink)(nil)
var _ accountingSink = (*atomicSink)(nil)
var _ accountingSink = (*costSink)(nil)
