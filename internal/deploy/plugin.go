package deploy

import "fmt"

// Plugin is the runtime's integration point for monitoring and
// management tools (§5.2: "The runtime includes a plugin framework for
// the automatic integration with monitoring and management tools").
// Plugins run after lifecycle transitions of the whole deployment.
type Plugin interface {
	// Name identifies the plugin in errors.
	Name() string
	// AfterDeploy runs once the deployment reaches the deployed state
	// (every driver active); the monit plugin uses it to register every
	// service and write its configuration.
	AfterDeploy(d *Deployment) error
	// AfterShutdown runs after a successful Shutdown.
	AfterShutdown(d *Deployment) error
}

// runPlugins applies a phase function over the options' plugins.
func (d *Deployment) runPlugins(phase string, f func(Plugin) error) error {
	for _, p := range d.opts.Plugins {
		if err := f(p); err != nil {
			return fmt.Errorf("deploy: plugin %q (%s): %w", p.Name(), phase, err)
		}
	}
	return nil
}
