package deploy

import (
	"fmt"

	"engage/internal/driver"
	"engage/internal/resource"
)

// Factory builds the driver state machine for one resource instance.
// Factories receive the bound context so action closures can capture it,
// though most simply return a shared StateMachine description whose
// actions read the context they are invoked with.
type Factory func(ctx *driver.Context) *driver.StateMachine

// DriverRegistry resolves driver factories for resource keys.
// Resolution order: exact key ("Tomcat 6.0.18"), then package name
// ("Tomcat"), then the resource type's declarative `driver { … }` clause
// compiled against the Actions registry, then the Default factory. The
// paper notes generic driver code is often reused ("No additional
// Python code was required for the driver as we were able to reuse
// existing generic driver code"); named actions and Default are those
// reuse points.
type DriverRegistry struct {
	byKey  map[string]Factory
	byName map[string]Factory
	// Actions resolves the `exec "name"` action references of
	// declarative drivers.
	Actions driver.Actions
	Default Factory
}

// NewDriverRegistry returns an empty driver registry whose Default is a
// bookkeeping-only library machine.
func NewDriverRegistry() *DriverRegistry {
	return &DriverRegistry{
		byKey:   make(map[string]Factory),
		byName:  make(map[string]Factory),
		Actions: make(driver.Actions),
		Default: func(*driver.Context) *driver.StateMachine { return driver.LibraryMachine(nil, nil) },
	}
}

// RegisterAction installs a named action implementation for declarative
// drivers.
func (r *DriverRegistry) RegisterAction(name string, fn driver.ActionFunc) {
	r.Actions[name] = fn
}

// RegisterKey installs a factory for an exact resource key.
func (r *DriverRegistry) RegisterKey(key resource.Key, f Factory) {
	r.byKey[key.String()] = f
}

// RegisterName installs a factory for every version of a package name.
func (r *DriverRegistry) RegisterName(name string, f Factory) {
	r.byName[name] = f
}

// Resolve returns the factory for a resource type.
func (r *DriverRegistry) Resolve(t *resource.Type) (Factory, error) {
	key := t.Key
	if f, ok := r.byKey[key.String()]; ok {
		return f, nil
	}
	if f, ok := r.byName[key.Name]; ok {
		return f, nil
	}
	if t.Driver != nil {
		sm, err := driver.CompileSpec(t.Driver, r.Actions)
		if err != nil {
			return nil, fmt.Errorf("deploy: resource %q: %w", key, err)
		}
		return func(*driver.Context) *driver.StateMachine { return sm }, nil
	}
	if r.Default != nil {
		return r.Default, nil
	}
	return nil, fmt.Errorf("deploy: no driver for resource %q", key)
}
