package deploy

import (
	"strings"
	"testing"

	"engage/internal/driver"
	"engage/internal/machine"
	"engage/internal/testlib"
)

func TestDeployConcurrentOpenMRS(t *testing.T) {
	log := &eventLog{}
	d, w := newDeployment(t, log, true)
	if err := d.DeployConcurrent(); err != nil {
		t.Fatal(err)
	}
	if !d.Deployed() {
		t.Fatalf("all drivers should be active: %v", d.Status())
	}
	m, _ := w.Machine("server")
	if !m.Listening(3306) || !m.Listening(8080) {
		t.Error("services should be listening")
	}

	// Ordering invariants hold even under concurrency: starts respect
	// the guard discipline.
	mysqlID := ""
	for _, inst := range d.Instances() {
		if inst.Key.Name == "MySQL" {
			mysqlID = inst.ID
		}
	}
	if log.indexOf("start:tomcat") > log.indexOf("start:openmrs") {
		t.Error("tomcat must start before openmrs")
	}
	if log.indexOf("start:"+mysqlID) > log.indexOf("start:openmrs") {
		t.Error("mysql must start before openmrs")
	}
	if log.indexOf("install:tomcat") > log.indexOf("start:tomcat") {
		t.Error("tomcat must install before starting")
	}

	// Critical-path accounting matches the deterministic parallel mode.
	logB := &eventLog{}
	det, _ := newDeployment(t, logB, true)
	if err := det.Deploy(); err != nil {
		t.Fatal(err)
	}
	if d.Elapsed() != det.Elapsed() {
		t.Errorf("concurrent elapsed %v != deterministic parallel elapsed %v",
			d.Elapsed(), det.Elapsed())
	}
}

func TestDeployConcurrentRepeatable(t *testing.T) {
	// Run several times to give the race detector material and verify
	// the outcome is always a fully deployed system.
	for i := 0; i < 10; i++ {
		log := &eventLog{}
		d, _ := newDeployment(t, log, true)
		if err := d.DeployConcurrent(); err != nil {
			t.Fatal(err)
		}
		if !d.Deployed() {
			t.Fatalf("iteration %d: %v", i, d.Status())
		}
		if err := d.Shutdown(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDeployConcurrentFailurePropagates(t *testing.T) {
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}
	dr := testDrivers(&eventLog{})
	// Override MySQL with a failing installer.
	dr.RegisterName("MySQL", func(ctx *driver.Context) *driver.StateMachine {
		return driver.ServiceMachine(
			func(*driver.Context) error { return errFailingDisk },
			nil, nil, nil, nil)
	})
	w := machine.NewWorld()
	d, err := New(openmrsFull(t), Options{
		Registry: reg, Drivers: dr, World: w, Index: testIndex(), ProvisionMissing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = d.DeployConcurrent()
	if err == nil || !strings.Contains(err.Error(), "failing disk") {
		t.Errorf("failure should propagate: %v", err)
	}
	if d.Deployed() {
		t.Error("failed concurrent deploy must not report deployed")
	}
}

var errFailingDisk = errDisk{}

type errDisk struct{}

func (errDisk) Error() string { return "failing disk" }
