package deploy

import (
	"fmt"
	"time"

	"engage/internal/driver"
	"engage/internal/spec"
)

// MultiHost coordinates a deployment across several machines in the
// paper's master/slave style (§5.2): the overall install specification
// is broken into per-node specifications, a slave instance of Engage
// runs each node's specification with no awareness of the others, and
// the master orders the slaves by the machine partial order. Slaves
// with no inter-dependencies run in parallel (virtual time).
type MultiHost struct {
	// Order is the machine partial order linearized.
	Order []string
	// Slaves maps each machine to its per-node deployment.
	Slaves map[string]*Deployment

	machineDeps map[string][]string // machine → machines it must follow
	full        *spec.Full
	opts        Options
	elapsed     time.Duration
}

// NewMultiHost splits a full specification into per-machine slave
// deployments. Cross-machine dependency links are dropped from the
// slave specs (their port values are already propagated); the machine
// ordering preserves their sequencing, per the paper's simplifying
// assumption validated by MachineOrder.
func NewMultiHost(full *spec.Full, opts Options) (*MultiHost, error) {
	order, err := full.MachineOrder()
	if err != nil {
		return nil, err
	}
	mh := &MultiHost{
		Order:       order,
		Slaves:      make(map[string]*Deployment, len(order)),
		machineDeps: make(map[string][]string, len(order)),
		full:        full,
		opts:        opts,
	}

	// Machine-level dependency edges (same computation as MachineOrder).
	byID := make(map[string]*spec.Instance, len(full.Instances))
	for _, inst := range full.Instances {
		byID[inst.ID] = inst
	}
	depSet := make(map[string]map[string]bool, len(order))
	for _, m := range order {
		depSet[m] = make(map[string]bool)
	}
	for _, inst := range full.Instances {
		for _, depID := range inst.DependencyIDs() {
			dep := byID[depID]
			if dep == nil {
				continue
			}
			m1, m2 := machineOf(dep), machineOf(inst)
			if m1 != "" && m2 != "" && m1 != m2 {
				depSet[m2][m1] = true
			}
		}
	}
	for m, set := range depSet {
		for dep := range set {
			mh.machineDeps[m] = append(mh.machineDeps[m], dep)
		}
	}

	// Build slave specs and deployments. Rollback is a whole-site
	// transaction, so it is coordinated by the master (which snapshots
	// every machine before any slave runs): slaves are downgraded to
	// FailRetry so a failing slave keeps its retries but leaves the
	// cross-machine restore to MultiHost.Deploy.
	slaveOpts := opts
	slaveOpts.NoClockAdvance = true
	if slaveOpts.OnFailure == FailRollback {
		slaveOpts.OnFailure = FailRetry
	}
	for _, m := range order {
		sub := &spec.Full{}
		for _, inst := range full.OnMachine(m) {
			clone := *inst
			clone.Deps = nil
			for _, l := range inst.Deps {
				if target, ok := byID[l.Target]; ok && machineOf(target) == m {
					clone.Deps = append(clone.Deps, l)
				}
			}
			if in, ok := byID[inst.Inside]; ok && machineOf(in) != m {
				return nil, fmt.Errorf("deploy: instance %q is inside %q on a different machine", inst.ID, inst.Inside)
			}
			sub.Instances = append(sub.Instances, &clone)
		}
		slave, err := New(sub, slaveOpts)
		if err != nil {
			return nil, fmt.Errorf("deploy: slave for machine %q: %v", m, err)
		}
		mh.Slaves[m] = slave
	}
	return mh, nil
}

func machineOf(inst *spec.Instance) string {
	if inst.Machine != "" {
		return inst.Machine
	}
	if inst.Inside == "" {
		return inst.ID
	}
	return ""
}

// Deploy runs every slave in machine order. Total virtual time is the
// machine-graph critical path when opts.Parallel is set (independent
// slaves overlap), otherwise the sum of slave times.
//
// Under the FailRollback policy the master snapshots every machine
// before the first slave runs; a slave failure (after the slave's own
// retries) rolls the whole site back — machines deployed by earlier,
// successful slaves included — so a multihost deployment is atomic.
func (mh *MultiHost) Deploy() error {
	var snap MachineSnapshots
	var snapStates map[string]map[string]driver.State
	if mh.opts.OnFailure == FailRollback {
		snap = SnapshotWorld(mh.opts.World)
		snapStates = make(map[string]map[string]driver.State, len(mh.Slaves))
		for m, slave := range mh.Slaves {
			snapStates[m] = slave.Status()
		}
	}
	finish := make(map[string]time.Duration, len(mh.Order))
	var total, maxFinish time.Duration
	for _, m := range mh.Order {
		slave := mh.Slaves[m]
		if err := slave.Deploy(); err != nil {
			// Account what the site consumed up to the failure, then
			// restore if this deployment is transactional.
			if mh.opts.Parallel {
				mh.elapsed = maxFinish + slave.Elapsed()
			} else {
				mh.elapsed = total + slave.Elapsed()
			}
			if !mh.opts.NoClockAdvance {
				mh.opts.World.Clock.Advance(mh.elapsed)
			}
			derr := asDeployError(err, m)
			if snap != nil {
				derr.RolledBack = true
				derr.RollbackErr = snap.Restore(mh.opts.World)
				for sm, states := range snapStates {
					for id, st := range states {
						if drv, ok := mh.Slaves[sm].drivers[id]; ok {
							drv.SetState(st)
						}
					}
				}
			}
			return fmt.Errorf("deploy: slave %q: %w", m, derr)
		}
		if mh.opts.Parallel {
			start := time.Duration(0)
			for _, dep := range mh.machineDeps[m] {
				if finish[dep] > start {
					start = finish[dep]
				}
			}
			finish[m] = start + slave.Elapsed()
			if finish[m] > maxFinish {
				maxFinish = finish[m]
			}
		} else {
			total += slave.Elapsed()
		}
	}
	if mh.opts.Parallel {
		mh.elapsed = maxFinish
	} else {
		mh.elapsed = total
	}
	if !mh.opts.NoClockAdvance {
		mh.opts.World.Clock.Advance(mh.elapsed)
	}
	return nil
}

// Shutdown stops the slaves in reverse machine order.
func (mh *MultiHost) Shutdown() error {
	var total time.Duration
	for i := len(mh.Order) - 1; i >= 0; i-- {
		m := mh.Order[i]
		if err := mh.Slaves[m].Shutdown(); err != nil {
			return fmt.Errorf("deploy: slave %q shutdown: %w", m, err)
		}
		total += mh.Slaves[m].Elapsed()
	}
	mh.elapsed = total
	if !mh.opts.NoClockAdvance {
		mh.opts.World.Clock.Advance(total)
	}
	return nil
}

// Elapsed reports the virtual time of the last Deploy/Shutdown.
func (mh *MultiHost) Elapsed() time.Duration { return mh.elapsed }

// Deployed reports whether every slave is fully deployed.
func (mh *MultiHost) Deployed() bool {
	for _, s := range mh.Slaves {
		if !s.Deployed() {
			return false
		}
	}
	return true
}

// Status merges the slave statuses.
func (mh *MultiHost) Status() map[string]string {
	out := make(map[string]string)
	for _, s := range mh.Slaves {
		for id, st := range s.Status() {
			out[id] = string(st)
		}
	}
	return out
}
