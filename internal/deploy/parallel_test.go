package deploy

import (
	"reflect"
	"testing"

	"engage/internal/machine"
	"engage/internal/testlib"
)

// newDeploymentP is newDeployment with a preparation worker-pool width.
func newDeploymentP(t *testing.T, log *eventLog, parallelism int) *Deployment {
	t.Helper()
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(openmrsFull(t), Options{
		Registry:         reg,
		Drivers:          testDrivers(log),
		World:            machine.NewWorld(),
		Index:            testIndex(),
		Parallelism:      parallelism,
		ProvisionMissing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// Parallel driver instantiation must be observationally identical to
// the serial loop: same instances, same states, same plan.
func TestNewParallelMatchesSerial(t *testing.T) {
	serial := newDeploymentP(t, &eventLog{}, 0)
	for _, p := range []int{2, 4, 8} {
		par := newDeploymentP(t, &eventLog{}, p)
		if !reflect.DeepEqual(par.Status(), serial.Status()) {
			t.Fatalf("P=%d: driver states differ from serial", p)
		}
		if !reflect.DeepEqual(par.Plan(), serial.Plan()) {
			t.Fatalf("P=%d: plan differs from serial", p)
		}
		if err := par.Deploy(); err != nil {
			t.Fatalf("P=%d: deploy: %v", p, err)
		}
		if !par.Deployed() {
			t.Fatalf("P=%d: not deployed", p)
		}
	}
}

// Errors from parallel instantiation must be the first error in
// dependency order, same as the serial loop reported.
func TestNewParallelFirstErrorInOrder(t *testing.T) {
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}
	full := openmrsFull(t)
	var want string
	for _, p := range []int{0, 2, 8} {
		_, err := New(full, Options{
			Registry:    reg,
			Drivers:     testDrivers(&eventLog{}),
			World:       machine.NewWorld(), // nothing provisioned
			Index:       testIndex(),
			Parallelism: p,
		})
		if err == nil {
			t.Fatalf("P=%d: expected missing-machine error", p)
		}
		if want == "" {
			want = err.Error()
		} else if err.Error() != want {
			t.Fatalf("P=%d: error %q, serial said %q", p, err, want)
		}
	}
}

// PlanByMachine must partition Plan exactly: every machine's batch is
// the Plan subsequence of that machine's instances, and nothing is
// dropped or duplicated.
func TestPlanByMachinePartitionsPlan(t *testing.T) {
	d := newDeploymentP(t, &eventLog{}, 0)
	plan := d.Plan()
	for _, workers := range []int{0, 1, 4} {
		batches := d.PlanByMachine(workers)
		total := 0
		for mname, batch := range batches {
			var want []PlannedAction
			for _, pa := range plan {
				inst, ok := d.full.Find(pa.Instance)
				if !ok {
					t.Fatalf("planned action for unknown instance %q", pa.Instance)
				}
				m := inst.Machine
				if m == "" {
					m = inst.ID
				}
				if m == mname {
					want = append(want, pa)
				}
			}
			if !reflect.DeepEqual(batch, want) {
				t.Fatalf("workers=%d machine %q: batch %v, want plan subsequence %v", workers, mname, batch, want)
			}
			total += len(batch)
		}
		if total != len(plan) {
			t.Fatalf("workers=%d: batches hold %d actions, plan has %d", workers, total, len(plan))
		}
	}
}
