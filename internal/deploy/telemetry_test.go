package deploy

// Telemetry guards for the deployment engine: the traced deploy must
// produce a schema-valid timeline whose spans reconstruct the engine's
// virtual-time accounting, and disabled tracing must cost nothing on
// the action hot path (nil-receiver pointer checks only).

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"engage/internal/config"
	"engage/internal/machine"
	"engage/internal/telemetry"
	"engage/internal/testlib"
)

func newTracedDeployment(t *testing.T, parallel bool) (*Deployment, *machine.World, *bytes.Buffer, *telemetry.Registry) {
	t.Helper()
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}
	w := machine.NewWorld()
	var buf bytes.Buffer
	metrics := telemetry.NewRegistry()
	d, err := New(openmrsFull(t), Options{
		Registry:         reg,
		Drivers:          testDrivers(&eventLog{}),
		World:            w,
		Index:            testIndex(),
		Parallel:         parallel,
		ProvisionMissing: true,
		Tracer:           telemetry.New(&buf, w.Clock),
		Metrics:          metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d, w, &buf, metrics
}

func TestDeployTraceTimeline(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		d, w, buf, metrics := newTracedDeployment(t, parallel)
		clock0 := w.Clock.Now()
		if err := d.Deploy(); err != nil {
			t.Fatal(err)
		}
		trace, err := telemetry.ReadTrace(buf)
		if err != nil {
			t.Fatalf("parallel=%v: %v", parallel, err)
		}
		roots := trace.Spans("deploy")
		if len(roots) != 1 {
			t.Fatalf("parallel=%v: want one deploy root, got %d", parallel, len(roots))
		}
		root := roots[0]
		if !root.VStart.Equal(clock0) || !root.VEnd.Equal(clock0.Add(d.Elapsed())) {
			t.Errorf("parallel=%v: root interval [%v, %v], want [%v, %v]",
				parallel, root.VStart, root.VEnd, clock0, clock0.Add(d.Elapsed()))
		}
		instances := trace.ChildSpans(root.ID)
		var instSpans []*telemetry.Line
		for _, sp := range instances {
			if sp.Name == "deploy.instance" {
				instSpans = append(instSpans, sp)
			}
		}
		if len(instSpans) != len(d.Instances()) {
			t.Fatalf("parallel=%v: %d instance spans, want %d", parallel, len(instSpans), len(d.Instances()))
		}
		// Every action span nests inside its instance span's interval,
		// and every instance span inside the root's.
		for _, isp := range instSpans {
			if isp.VStart.Before(*root.VStart) || isp.VEnd.After(*root.VEnd) {
				t.Errorf("instance %s span [%v, %v] outside root [%v, %v]",
					isp.Str("instance"), isp.VStart, isp.VEnd, root.VStart, root.VEnd)
			}
			for _, asp := range trace.ChildSpans(isp.ID) {
				if asp.Name != "deploy.action" {
					continue
				}
				if asp.VStart.Before(*isp.VStart) || asp.VEnd.After(*isp.VEnd) {
					t.Errorf("action %s/%s span [%v, %v] outside instance [%v, %v]",
						asp.Str("instance"), asp.Str("action"), asp.VStart, asp.VEnd, isp.VStart, isp.VEnd)
				}
				if asp.Str("instance") != isp.Str("instance") {
					t.Errorf("action under %s claims instance %s", isp.Str("instance"), asp.Str("instance"))
				}
			}
		}
		// Metrics absorbed the action counts.
		actionSpans := trace.Spans("deploy.action")
		if got := metrics.Counter("deploy.actions").Value(); got != int64(len(actionSpans)) {
			t.Errorf("parallel=%v: deploy.actions = %d, want %d", parallel, got, len(actionSpans))
		}
		if len(d.Events()) != len(actionSpans) {
			t.Errorf("parallel=%v: %d action spans, want %d events", parallel, len(actionSpans), len(d.Events()))
		}
	}
}

func TestDeployConcurrentTraceTimeline(t *testing.T) {
	d, w, buf, _ := newTracedDeployment(t, false)
	clock0 := w.Clock.Now()
	if err := d.DeployConcurrent(); err != nil {
		t.Fatal(err)
	}
	trace, err := telemetry.ReadTrace(buf)
	if err != nil {
		t.Fatal(err)
	}
	roots := trace.Spans("deploy")
	if len(roots) != 1 {
		t.Fatalf("want one deploy root, got %d", len(roots))
	}
	root := roots[0]
	if !root.VStart.Equal(clock0) || !root.VEnd.Equal(clock0.Add(d.Elapsed())) {
		t.Errorf("root interval [%v, %v], want [%v, %v]",
			root.VStart, root.VEnd, clock0, clock0.Add(d.Elapsed()))
	}
	if v, _ := root.Attrs["concurrent"].(bool); !v {
		t.Errorf("root should be marked concurrent: %v", root.Attrs)
	}
	n := 0
	for _, sp := range trace.ChildSpans(root.ID) {
		if sp.Name != "deploy.instance" {
			continue
		}
		n++
		if sp.VStart.Before(*root.VStart) || sp.VEnd.After(*root.VEnd) {
			t.Errorf("instance %s span [%v, %v] outside root", sp.Str("instance"), sp.VStart, sp.VEnd)
		}
	}
	if n != len(d.Instances()) {
		t.Errorf("%d instance spans, want %d", n, len(d.Instances()))
	}
}

// TestNilTracerActionPathZeroAllocs pins the overhead guarantee the
// Options.Tracer docs make: with tracing and metrics disabled (nil),
// the exact instrumentation sequence the engine runs per action — span
// creation, retry/timeout events, attribute stamping, metric updates —
// performs zero allocations.
func TestNilTracerActionPathZeroAllocs(t *testing.T) {
	var opts Options // nil Tracer, nil Metrics: tracing disabled
	var parent *telemetry.Span
	sink := &costSink{}
	var vbase time.Time
	errBoom := errors.New("boom")
	allocs := testing.AllocsPerRun(1000, func() {
		// driveTo's per-action prologue.
		sp := parent.Child("deploy.action")
		var wstart time.Time
		if sp != nil {
			wstart = time.Now()
		}
		before := sink.d
		// fireWithRetry's retry and timeout instrumentation.
		if sp != nil {
			sp.Event("deploy.timeout").At(vbase.Add(sink.total())).
				Dur("cost", 0).Dur("limit", 0).Emit()
			sp.Event("deploy.retry").At(vbase.Add(sink.total())).
				Int("attempt", 1).Dur("backoff", 0).
				Str("error", errBoom.Error()).Emit()
		}
		opts.Metrics.Counter("deploy.timeouts").Inc()
		opts.Metrics.Counter("deploy.retries").Inc()
		// driveTo's per-action epilogue.
		if sp != nil {
			sp.Str("instance", "i").Str("action", "a").
				Str("to", "active").Int("attempts", 1)
			sp.At(vbase.Add(before), vbase.Add(sink.d)).
				Wall(time.Since(wstart)).End()
		}
		opts.Metrics.Counter("deploy.actions").Inc()
		opts.Metrics.Histogram("deploy.action_vcost_ns").Observe(int64(sink.d - before))
	})
	if allocs != 0 {
		t.Errorf("disabled tracing allocates %.1f per action, want 0", allocs)
	}
}

func benchDeployment(b *testing.B, tracer *telemetry.Tracer) *Deployment {
	b.Helper()
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		b.Fatal(err)
	}
	partial, err := testlib.Fig2Partial()
	if err != nil {
		b.Fatal(err)
	}
	full, err := config.New(reg).Configure(partial)
	if err != nil {
		b.Fatal(err)
	}
	w := machine.NewWorld()
	d, err := New(full, Options{
		Registry:         reg,
		Drivers:          testDrivers(&eventLog{}),
		World:            w,
		Index:            testIndex(),
		ProvisionMissing: true,
		Tracer:           tracer,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := d.Deploy(); err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkDeployNilTracer measures the deploy/shutdown hot path with
// tracing disabled; BenchmarkDeployTraced is the same workload with a
// live tracer, so `benchstat` shows exactly what tracing costs.
func BenchmarkDeployNilTracer(b *testing.B) {
	d := benchDeployment(b, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Shutdown(); err != nil {
			b.Fatal(err)
		}
		if err := d.Deploy(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeployTraced(b *testing.B) {
	d := benchDeployment(b, telemetry.New(io.Discard, nil))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Shutdown(); err != nil {
			b.Fatal(err)
		}
		if err := d.Deploy(); err != nil {
			b.Fatal(err)
		}
	}
}
