package deploy

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"engage/internal/driver"
	"engage/internal/fault"
	"engage/internal/machine"
	"engage/internal/testlib"
)

// newFaultDeployment is newDeployment with a fault injector attached to
// the world and arbitrary option overrides.
func newFaultDeployment(t *testing.T, log *eventLog, inj machine.Injector, mutate func(*Options)) (*Deployment, *machine.World) {
	t.Helper()
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}
	w := machine.NewWorld()
	if inj != nil {
		w.SetInjector(inj)
	}
	opts := Options{
		Registry:         reg,
		Drivers:          testDrivers(log),
		World:            w,
		Index:            testIndex(),
		ProvisionMissing: true,
	}
	if mutate != nil {
		mutate(&opts)
	}
	d, err := New(openmrsFull(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	return d, w
}

// A fault that fails twice then succeeds is absorbed by FailRetry, and
// the backoff it cost shows up in Elapsed.
func TestRetryAbsorbsTransientFault(t *testing.T) {
	baseline, _ := newDeployment(t, &eventLog{}, false)
	if err := baseline.Deploy(); err != nil {
		t.Fatal(err)
	}

	plan := fault.NewPlan(1).FailTransient(machine.OpStartProcess, "", "mysql", 2)
	d, _ := newFaultDeployment(t, &eventLog{}, plan, func(o *Options) {
		o.OnFailure = FailRetry
	})
	if err := d.Deploy(); err != nil {
		t.Fatalf("retry should absorb a twice-transient fault: %v", err)
	}
	if !d.Deployed() {
		t.Fatalf("all drivers should be active: %v", d.Status())
	}
	if got := plan.Injections(); got != 2 {
		t.Errorf("Injections() = %d, want 2", got)
	}
	// Each failed attempt re-pays mysql's 10s start work, plus the
	// default backoffs (2s before attempt 2, 4s before attempt 3).
	wantExtra := 2*10*time.Second + 2*time.Second + 4*time.Second
	if got := d.Elapsed() - baseline.Elapsed(); got != wantExtra {
		t.Errorf("retry cost not visible in Elapsed: extra = %v, want %v", got, wantExtra)
	}
}

// A persistent fault under FailRollback restores the pre-deploy world:
// filesystems back to the snapshot, no processes, no claimed ports, and
// driver states reset.
func TestRollbackRestoresWorld(t *testing.T) {
	plan := fault.NewPlan(1).FailPersistent(machine.OpStartProcess, "", "openmrs")
	d, w := newFaultDeployment(t, &eventLog{}, plan, func(o *Options) {
		o.OnFailure = FailRollback
	})
	pre := SnapshotWorld(w)
	preStates := d.Status()

	err := d.Deploy()
	if err == nil {
		t.Fatal("deploy should fail under a persistent fault")
	}
	derr, ok := err.(*DeployError)
	if !ok {
		t.Fatalf("error should be *DeployError, got %T: %v", err, err)
	}
	if !derr.RolledBack || derr.RollbackErr != nil {
		t.Fatalf("RolledBack=%v RollbackErr=%v", derr.RolledBack, derr.RollbackErr)
	}
	if derr.Instance != "openmrs" || derr.Action != "start" {
		t.Errorf("failure attribution = %q/%q, want openmrs/start", derr.Instance, derr.Action)
	}
	if derr.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3 (policy default)", derr.Attempts)
	}
	var fe *fault.Error
	if !errors.As(err, &fe) {
		t.Errorf("DeployError should unwrap to the injected *fault.Error: %v", err)
	}
	if len(derr.States) == 0 {
		t.Error("States should record per-instance terminal states")
	}

	// World invariants after rollback.
	for _, name := range w.Machines() {
		m, _ := w.Machine(name)
		if procs := m.Processes(); len(procs) != 0 {
			t.Errorf("machine %s: %d orphan process(es) after rollback", name, len(procs))
		}
		if ports := m.Ports(); len(ports) != 0 {
			t.Errorf("machine %s: orphan port claims %v after rollback", name, ports)
		}
	}
	post := SnapshotWorld(w)
	for name, st := range pre {
		if !reflect.DeepEqual(post[name].FS, st.FS) {
			t.Errorf("machine %s: filesystem not restored to pre-deploy snapshot", name)
		}
	}
	if !reflect.DeepEqual(d.Status(), preStates) {
		t.Errorf("driver states not reset: %v, want %v", d.Status(), preStates)
	}
}

// Abort (the default) keeps the historical semantics: one attempt, no
// rollback, partial state left in place.
func TestAbortLeavesPartialState(t *testing.T) {
	plan := fault.NewPlan(1).FailPersistent(machine.OpStartProcess, "", "openmrs")
	d, w := newFaultDeployment(t, &eventLog{}, plan, nil)
	err := d.Deploy()
	if err == nil {
		t.Fatal("deploy should fail")
	}
	derr, ok := err.(*DeployError)
	if !ok {
		t.Fatalf("error should be *DeployError, got %T", err)
	}
	if derr.RolledBack || derr.Attempts != 1 {
		t.Errorf("abort should not retry or roll back: %+v", derr)
	}
	// Partial state survives: mysql and tomcat are deployed and running.
	m, _ := w.Machine("server")
	if !m.Listening(3306) || !m.Listening(8080) {
		t.Error("abort should leave earlier instances running")
	}
}

// An action whose virtual-time cost exceeds ActionTimeout fails
// terminally even though it succeeded functionally.
func TestActionTimeout(t *testing.T) {
	d, _ := newFaultDeployment(t, &eventLog{}, nil, func(o *Options) {
		o.ActionTimeout = time.Minute // openmrs download alone is 4min
	})
	err := d.Deploy()
	if err == nil {
		t.Fatal("deploy should fail on timeout")
	}
	if !strings.Contains(err.Error(), "exceeded timeout") {
		t.Errorf("error should name the timeout: %v", err)
	}
}

// A concurrent deployment whose guard can never hold terminates with a
// structured deadlock error instead of hanging (regression: this used
// to block forever on cond.Wait).
func TestDeployConcurrentDeadlock(t *testing.T) {
	log := &eventLog{}
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}
	drivers := testDrivers(log)
	// Rebind MySQL's start to a guard no neighbour ever satisfies.
	drivers.RegisterName("MySQL", func(ctx *driver.Context) *driver.StateMachine {
		sm := driver.ServiceMachine(
			func(c *driver.Context) error { return nil },
			func(c *driver.Context) error { return nil },
			func(c *driver.Context) error { return nil },
			func(c *driver.Context) error { return nil },
			func(c *driver.Context) error { return nil },
		)
		for i := range sm.Actions {
			if sm.Actions[i].Name == "start" {
				sm.Actions[i].Guard = driver.Guard{{Dir: driver.Upstream, State: driver.State("quiesced")}}
			}
		}
		return sm
	})
	w := machine.NewWorld()
	d, err := New(openmrsFull(t), Options{
		Registry:         reg,
		Drivers:          drivers,
		World:            w,
		Index:            testIndex(),
		ProvisionMissing: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	err = d.DeployConcurrent()
	if err == nil {
		t.Fatal("unsatisfiable guard must be reported, not hang")
	}
	derr, ok := err.(*DeployError)
	if !ok || !derr.Deadlock {
		t.Fatalf("want deadlock DeployError, got %T: %v", err, err)
	}
	var mysqlGuard string
	sawOpenMRS := false
	for _, b := range derr.Blocked {
		if strings.HasPrefix(b.Instance, "mysql") {
			mysqlGuard = b.Guard
		}
		if b.Instance == "openmrs" {
			sawOpenMRS = true
		}
	}
	if !strings.Contains(mysqlGuard, "quiesced") {
		t.Errorf("mysql should be reported blocked on its bogus guard; got %v", derr.Blocked)
	}
	if !sawOpenMRS {
		t.Errorf("openmrs (waiting on mysql) should be reported blocked; got %v", derr.Blocked)
	}
}

// Concurrent failures keep the first error and collect the rest instead
// of overwriting (regression: the old implementation kept only the last
// failure to be recorded).
func TestDeployConcurrentFailureIsStructured(t *testing.T) {
	plan := fault.NewPlan(1).FailPersistent(machine.OpStartProcess, "", "mysql")
	d, _ := newFaultDeployment(t, &eventLog{}, plan, nil)
	err := d.DeployConcurrent()
	if err == nil {
		t.Fatal("deploy should fail")
	}
	derr, ok := err.(*DeployError)
	if !ok {
		t.Fatalf("error should be *DeployError, got %T: %v", err, err)
	}
	if !strings.HasPrefix(derr.Instance, "mysql") {
		t.Errorf("first failure should name the mysql instance, got %q", derr.Instance)
	}
	for _, extra := range derr.Additional {
		if _, ok := extra.(*DeployError); !ok {
			t.Errorf("additional failures should be structured, got %T", extra)
		}
	}
	if len(derr.States) == 0 {
		t.Error("States should be populated")
	}
}

// Concurrent deployments honor FailRollback too.
func TestDeployConcurrentRollback(t *testing.T) {
	plan := fault.NewPlan(1).FailPersistent(machine.OpStartProcess, "", "openmrs")
	d, w := newFaultDeployment(t, &eventLog{}, plan, func(o *Options) {
		o.OnFailure = FailRollback
	})
	err := d.DeployConcurrent()
	if err == nil {
		t.Fatal("deploy should fail")
	}
	derr, ok := err.(*DeployError)
	if !ok || !derr.RolledBack || derr.RollbackErr != nil {
		t.Fatalf("want rolled-back DeployError, got %T: %v", err, err)
	}
	for _, name := range w.Machines() {
		m, _ := w.Machine(name)
		if len(m.Processes()) != 0 || len(m.Ports()) != 0 {
			t.Errorf("machine %s: orphans after concurrent rollback", name)
		}
	}
}
