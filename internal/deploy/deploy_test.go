package deploy

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"engage/internal/config"
	"engage/internal/driver"
	"engage/internal/machine"
	"engage/internal/pkgmgr"
	"engage/internal/resource"
	"engage/internal/spec"
	"engage/internal/testlib"
)

// eventLog records driver action invocations in order.
type eventLog struct {
	mu     sync.Mutex
	events []string
}

func (l *eventLog) add(e string) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

func (l *eventLog) list() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.events...)
}

func (l *eventLog) indexOf(e string) int {
	for i, x := range l.list() {
		if x == e {
			return i
		}
	}
	return -1
}

// testDrivers builds a driver registry for the OpenMRS stack with
// realistic simulated actions.
func testDrivers(log *eventLog) *DriverRegistry {
	dr := NewDriverRegistry()

	service := func(pkg, version string, port int, startTime time.Duration) Factory {
		return func(ctx *driver.Context) *driver.StateMachine {
			id := ctx.Instance.ID
			return driver.ServiceMachine(
				func(c *driver.Context) error {
					log.add("install:" + id)
					return c.PkgMgr.Install(pkg, version)
				},
				func(c *driver.Context) error {
					log.add("start:" + id)
					c.Charge(startTime)
					p, err := c.Machine.StartProcess(pkg, pkg+"d", port)
					if err != nil {
						return err
					}
					c.PutPID("daemon", p.PID)
					return nil
				},
				func(c *driver.Context) error {
					log.add("stop:" + id)
					pid, ok := c.PID("daemon")
					if !ok {
						return fmt.Errorf("no recorded pid")
					}
					return c.Machine.StopProcess(pid)
				},
				func(c *driver.Context) error {
					log.add("restart:" + id)
					return nil
				},
				func(c *driver.Context) error {
					log.add("uninstall:" + id)
					return c.PkgMgr.Remove(pkg)
				},
			)
		}
	}

	dr.RegisterName("Tomcat", service("tomcat", "6.0.18", 8080, 20*time.Second))
	dr.RegisterName("MySQL", service("mysql", "5.1", 3306, 10*time.Second))
	dr.RegisterName("OpenMRS", service("openmrs", "1.8", 0, 30*time.Second))
	lib := func(pkg, version string) Factory {
		return func(ctx *driver.Context) *driver.StateMachine {
			id := ctx.Instance.ID
			return driver.LibraryMachine(
				func(c *driver.Context) error {
					log.add("install:" + id)
					return c.PkgMgr.Install(pkg, version)
				},
				func(c *driver.Context) error {
					log.add("uninstall:" + id)
					return c.PkgMgr.Remove(pkg)
				},
			)
		}
	}
	dr.RegisterName("JDK", lib("jdk", "1.6"))
	dr.RegisterName("JRE", lib("jre", "1.6"))
	return dr
}

func testIndex() *pkgmgr.Index {
	idx := pkgmgr.NewIndex()
	for _, p := range []struct {
		name, ver string
		dl, inst  time.Duration
	}{
		{"tomcat", "6.0.18", 3 * time.Minute, time.Minute},
		{"mysql", "5.1", 2 * time.Minute, 30 * time.Second},
		{"openmrs", "1.8", 4 * time.Minute, 90 * time.Second},
		{"jdk", "1.6", 5 * time.Minute, 2 * time.Minute},
		{"jre", "1.6", 4 * time.Minute, time.Minute},
	} {
		idx.Publish(&pkgmgr.Package{
			Name: p.name, Version: p.ver,
			Files:        map[string]string{"/opt/" + p.name + "/installed": p.ver},
			DownloadTime: p.dl, InstallTime: p.inst,
		})
	}
	return idx
}

func openmrsFull(t *testing.T) *spec.Full {
	t.Helper()
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}
	p, err := testlib.Fig2Partial()
	if err != nil {
		t.Fatal(err)
	}
	full, err := config.New(reg).Configure(p)
	if err != nil {
		t.Fatal(err)
	}
	return full
}

func newDeployment(t *testing.T, log *eventLog, parallel bool) (*Deployment, *machine.World) {
	t.Helper()
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}
	w := machine.NewWorld()
	d, err := New(openmrsFull(t), Options{
		Registry:         reg,
		Drivers:          testDrivers(log),
		World:            w,
		Index:            testIndex(),
		Parallel:         parallel,
		ProvisionMissing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d, w
}

func TestDeployOpenMRS(t *testing.T) {
	log := &eventLog{}
	d, w := newDeployment(t, log, false)
	if d.Deployed() {
		t.Fatal("not deployed yet")
	}
	if err := d.Deploy(); err != nil {
		t.Fatal(err)
	}
	if !d.Deployed() {
		t.Fatalf("all drivers should be active: %v", d.Status())
	}

	// Services actually run on the simulated machine.
	m, _ := w.Machine("server")
	if !m.Listening(3306) || !m.Listening(8080) {
		t.Error("mysql and tomcat should be listening")
	}
	if !m.Exists("/opt/openmrs/installed") {
		t.Error("openmrs package files missing")
	}

	// Dependency ordering: installs and starts respect the DAG.
	ev := log.list()
	check := func(before, after string) {
		bi, ai := log.indexOf(before), log.indexOf(after)
		if bi < 0 || ai < 0 || bi >= ai {
			t.Errorf("%q (at %d) must precede %q (at %d); log=%v", before, bi, after, ai, ev)
		}
	}
	// Find the java node's install id.
	javaID := ""
	for _, inst := range d.Instances() {
		if inst.Key.Name == "JDK" || inst.Key.Name == "JRE" {
			javaID = inst.ID
		}
	}
	mysqlID := ""
	for _, inst := range d.Instances() {
		if inst.Key.Name == "MySQL" {
			mysqlID = inst.ID
		}
	}
	check("install:"+javaID, "start:tomcat")
	check("install:tomcat", "start:tomcat")
	check("start:tomcat", "start:openmrs")
	check("start:"+mysqlID, "start:openmrs")

	if d.Elapsed() == 0 {
		t.Error("deployment should consume virtual time")
	}
}

func TestParallelFasterThanSerial(t *testing.T) {
	logA := &eventLog{}
	serial, _ := newDeployment(t, logA, false)
	if err := serial.Deploy(); err != nil {
		t.Fatal(err)
	}
	logB := &eventLog{}
	par, _ := newDeployment(t, logB, true)
	if err := par.Deploy(); err != nil {
		t.Fatal(err)
	}
	if par.Elapsed() >= serial.Elapsed() {
		t.Errorf("parallel (%v) should beat serial (%v): mysql/java installs overlap",
			par.Elapsed(), serial.Elapsed())
	}
	if par.Elapsed() == 0 {
		t.Error("parallel elapsed should be positive")
	}
}

func TestShutdownReverseOrder(t *testing.T) {
	log := &eventLog{}
	d, w := newDeployment(t, log, false)
	if err := d.Deploy(); err != nil {
		t.Fatal(err)
	}
	if err := d.Shutdown(); err != nil {
		t.Fatal(err)
	}
	for id, st := range d.Status() {
		if st != driver.Inactive {
			t.Errorf("instance %q state %v after shutdown", id, st)
		}
	}
	m, _ := w.Machine("server")
	if m.Listening(3306) || m.Listening(8080) {
		t.Error("daemons should be stopped")
	}
	// openmrs stops before tomcat and before mysql.
	mysqlID := ""
	for _, inst := range d.Instances() {
		if inst.Key.Name == "MySQL" {
			mysqlID = inst.ID
		}
	}
	if log.indexOf("stop:openmrs") > log.indexOf("stop:tomcat") {
		t.Error("openmrs must stop before tomcat")
	}
	if log.indexOf("stop:openmrs") > log.indexOf("stop:"+mysqlID) {
		t.Error("openmrs must stop before mysql")
	}
}

func TestUninstall(t *testing.T) {
	log := &eventLog{}
	d, w := newDeployment(t, log, false)
	if err := d.Deploy(); err != nil {
		t.Fatal(err)
	}
	if err := d.Uninstall(); err != nil {
		t.Fatal(err)
	}
	for id, st := range d.Status() {
		if st != driver.Uninstalled {
			t.Errorf("instance %q state %v after uninstall", id, st)
		}
	}
	m, _ := w.Machine("server")
	if m.Exists("/opt/openmrs/installed") {
		t.Error("uninstall should remove package files")
	}
}

func TestRedeployAfterShutdown(t *testing.T) {
	log := &eventLog{}
	d, _ := newDeployment(t, log, false)
	if err := d.Deploy(); err != nil {
		t.Fatal(err)
	}
	if err := d.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := d.Deploy(); err != nil {
		t.Fatalf("restart after shutdown: %v", err)
	}
	if !d.Deployed() {
		t.Error("redeploy should reach active")
	}
}

func TestDeployMissingMachine(t *testing.T) {
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}
	w := machine.NewWorld()
	_, err = New(openmrsFull(t), Options{
		Registry: reg, World: w, Index: testIndex(),
	})
	if err == nil || !strings.Contains(err.Error(), "not present in world") {
		t.Errorf("missing machine should be an error: %v", err)
	}
}

func TestDeployRequiredOptions(t *testing.T) {
	if _, err := New(&spec.Full{}, Options{}); err == nil {
		t.Error("missing Registry/World should fail")
	}
}

func TestNeighbourStates(t *testing.T) {
	log := &eventLog{}
	d, _ := newDeployment(t, log, false)
	up := d.NeighbourStates("openmrs", driver.Upstream)
	if len(up) != 3 { // tomcat, java, mysql
		t.Errorf("openmrs upstream count = %d: %v", len(up), up)
	}
	down := d.NeighbourStates("server", driver.Downstream)
	if len(down) < 3 {
		t.Errorf("server downstream count = %d", len(down))
	}
	if got := d.NeighbourStates("ghost", driver.Upstream); got != nil {
		t.Errorf("unknown instance should have no neighbours: %v", got)
	}
}

func TestDriverActionFailureSurfaces(t *testing.T) {
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}
	dr := NewDriverRegistry()
	dr.RegisterName("MySQL", func(ctx *driver.Context) *driver.StateMachine {
		return driver.ServiceMachine(
			func(*driver.Context) error { return fmt.Errorf("simulated disk corruption") },
			nil, nil, nil, nil)
	})
	w := machine.NewWorld()
	d, err := New(openmrsFull(t), Options{
		Registry: reg, Drivers: dr, World: w, Index: testIndex(), ProvisionMissing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = d.Deploy()
	if err == nil || !strings.Contains(err.Error(), "disk corruption") {
		t.Errorf("driver failure should abort deploy: %v", err)
	}
	if d.Deployed() {
		t.Error("failed deploy must not report deployed")
	}
}

// --- Multi-host ---

func multiHostFull(t *testing.T) *spec.Full {
	t.Helper()
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}
	var p spec.Partial
	js := `[
		{"id": "dbhost", "key": "Mac-OSX 10.6"},
		{"id": "apphost", "key": "Mac-OSX 10.6"},
		{"id": "mysql", "key": "MySQL 5.1", "inside": {"id": "dbhost"}},
		{"id": "tomcat", "key": "Tomcat 6.0.18", "inside": {"id": "apphost"}},
		{"id": "openmrs", "key": "OpenMRS 1.8", "inside": {"id": "tomcat"}}
	]`
	if err := json.Unmarshal([]byte(js), &p); err != nil {
		t.Fatal(err)
	}
	full, err := config.New(reg).Configure(&p)
	if err != nil {
		t.Fatal(err)
	}
	return full
}

func TestMultiHostDeploy(t *testing.T) {
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}
	log := &eventLog{}
	w := machine.NewWorld()
	mh, err := NewMultiHost(multiHostFull(t), Options{
		Registry: reg, Drivers: testDrivers(log), World: w,
		Index: testIndex(), ProvisionMissing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mh.Order) != 2 || mh.Order[0] != "dbhost" || mh.Order[1] != "apphost" {
		t.Fatalf("machine order = %v, want [dbhost apphost]", mh.Order)
	}
	if err := mh.Deploy(); err != nil {
		t.Fatal(err)
	}
	if !mh.Deployed() {
		t.Fatalf("status: %v", mh.Status())
	}
	// Database machine deploys entirely before the app machine touches
	// openmrs.
	if log.indexOf("start:mysql") > log.indexOf("start:openmrs") {
		t.Error("mysql (dbhost) must start before openmrs (apphost)")
	}
	dbm, _ := w.Machine("dbhost")
	apm, _ := w.Machine("apphost")
	if !dbm.Listening(3306) {
		t.Error("mysql should listen on dbhost")
	}
	if !apm.Listening(8080) {
		t.Error("tomcat should listen on apphost")
	}
	if mh.Elapsed() == 0 {
		t.Error("multi-host deploy should take time")
	}
	if err := mh.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if dbm.Listening(3306) || apm.Listening(8080) {
		t.Error("shutdown should stop all daemons")
	}
}

func TestMultiHostParallelIndependentSlaves(t *testing.T) {
	// Two independent single-machine stacks: parallel multi-host should
	// take ~max of the two, serial the sum.
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}
	js := `[
		{"id": "m1", "key": "Mac-OSX 10.6"},
		{"id": "m2", "key": "Mac-OSX 10.6"},
		{"id": "db1", "key": "MySQL 5.1", "inside": {"id": "m1"}},
		{"id": "db2", "key": "MySQL 5.1", "inside": {"id": "m2"}}
	]`
	buildAndDeploy := func(parallel bool) time.Duration {
		var p spec.Partial
		if err := json.Unmarshal([]byte(js), &p); err != nil {
			t.Fatal(err)
		}
		full, err := config.New(reg).Configure(&p)
		if err != nil {
			t.Fatal(err)
		}
		w := machine.NewWorld()
		mh, err := NewMultiHost(full, Options{
			Registry: reg, Drivers: testDrivers(&eventLog{}), World: w,
			Index: testIndex(), ProvisionMissing: true, Parallel: parallel,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := mh.Deploy(); err != nil {
			t.Fatal(err)
		}
		return mh.Elapsed()
	}
	serial := buildAndDeploy(false)
	par := buildAndDeploy(true)
	if par >= serial {
		t.Errorf("independent slaves should overlap: parallel %v vs serial %v", par, serial)
	}
}

func TestPlanDryRun(t *testing.T) {
	log := &eventLog{}
	d, w := newDeployment(t, log, false)
	plan := d.Plan()
	if len(plan) == 0 {
		t.Fatal("plan should not be empty")
	}
	// A dry run executes nothing.
	if len(log.list()) != 0 {
		t.Fatal("Plan must not run actions")
	}
	m, _ := w.Machine("server")
	if m.Listening(3306) {
		t.Fatal("Plan must not start services")
	}
	// The plan respects dependency order and per-instance paths.
	pos := map[string]int{}
	for i, pa := range plan {
		if pa.Action == "start" {
			pos["start:"+pa.Instance] = i
		}
		if pa.Action == "install" {
			pos["install:"+pa.Instance] = i
		}
	}
	if pos["install:tomcat"] > pos["start:tomcat"] {
		t.Error("install must precede start in the plan")
	}
	if pos["start:tomcat"] > pos["start:openmrs"] {
		t.Error("tomcat must start before openmrs in the plan")
	}
	// Executing after planning yields exactly the planned actions.
	if err := d.Deploy(); err != nil {
		t.Fatal(err)
	}
	events := d.Events()
	if len(events) != len(plan) {
		t.Fatalf("plan had %d actions, deploy executed %d", len(plan), len(events))
	}
	for i := range plan {
		if events[i].Instance != plan[i].Instance || events[i].Action != plan[i].Action {
			t.Errorf("step %d: planned %s/%s, executed %s/%s",
				i, plan[i].Instance, plan[i].Action, events[i].Instance, events[i].Action)
		}
	}
	// A fully deployed system has an empty plan.
	if p2 := d.Plan(); len(p2) != 0 {
		t.Errorf("deployed system should have empty plan: %v", p2)
	}
}

func TestEventsRecorded(t *testing.T) {
	log := &eventLog{}
	d, _ := newDeployment(t, log, false)
	if err := d.Deploy(); err != nil {
		t.Fatal(err)
	}
	events := d.Events()
	if len(events) == 0 {
		t.Fatal("events should be recorded")
	}
	for i, e := range events {
		if e.Seq != i {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
	}
	// Virtual time accumulates within an instance's actions.
	var tomcatSpent []int64
	for _, e := range events {
		if e.Instance == "tomcat" {
			tomcatSpent = append(tomcatSpent, int64(e.Spent))
		}
	}
	if len(tomcatSpent) < 2 || tomcatSpent[len(tomcatSpent)-1] <= tomcatSpent[0] {
		t.Errorf("tomcat spent times should accumulate: %v", tomcatSpent)
	}
}

func TestDriverRegistryResolutionOrder(t *testing.T) {
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}
	dr := NewDriverRegistry()

	tomcat := reg.MustLookup(resource.MakeKey("Tomcat", "6.0.18"))
	// Default applies when nothing matches.
	if _, err := dr.Resolve(tomcat); err != nil {
		t.Fatal(err)
	}
	// Name registration beats default.
	named := func(ctx *driver.Context) *driver.StateMachine { return driver.MachineMachine() }
	dr.RegisterName("Tomcat", named)
	f, err := dr.Resolve(tomcat)
	if err != nil {
		t.Fatal(err)
	}
	if len(f(nil).Actions) != len(driver.MachineMachine().Actions) {
		t.Error("name registration should win over default")
	}
	// Key registration beats name.
	keyed := func(ctx *driver.Context) *driver.StateMachine { return driver.LibraryMachine(nil, nil) }
	dr.RegisterKey(resource.MakeKey("Tomcat", "6.0.18"), keyed)
	f, err = dr.Resolve(tomcat)
	if err != nil {
		t.Fatal(err)
	}
	if len(f(nil).Actions) != len(driver.LibraryMachine(nil, nil).Actions) {
		t.Error("key registration should win over name")
	}

	// Declarative driver beats default but loses to explicit.
	withSpec := &resource.Type{
		Key: resource.MakeKey("Spec", "1"),
		Driver: &resource.DriverSpec{
			Transitions: []resource.DriverTransition{
				{Name: "install", From: "uninstalled", To: "active", Action: "mark"},
			},
		},
	}
	dr2 := NewDriverRegistry()
	if _, err := dr2.Resolve(withSpec); err == nil {
		t.Error("unknown action should fail compilation")
	}
	dr2.RegisterAction("mark", func(*driver.Context) error { return nil })
	f, err = dr2.Resolve(withSpec)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(f(nil).Actions); got != 1 {
		t.Errorf("compiled spec should have 1 transition, got %d", got)
	}
	// Nil default with nothing else is an error.
	dr3 := &DriverRegistry{}
	if _, err := dr3.Resolve(tomcat); err == nil {
		t.Error("no driver anywhere should error")
	}
}

func TestDeploymentAccessors(t *testing.T) {
	log := &eventLog{}
	d, _ := newDeployment(t, log, false)
	if st, ok := d.StateOf("tomcat"); !ok || st != driver.Uninstalled {
		t.Errorf("StateOf = %v %v", st, ok)
	}
	if _, ok := d.StateOf("ghost"); ok {
		t.Error("unknown instance StateOf")
	}
	if _, ok := d.Driver("tomcat"); !ok {
		t.Error("Driver lookup failed")
	}
	if _, ok := d.Manager("server"); !ok {
		t.Error("Manager lookup failed")
	}
	if _, ok := d.Manager("ghost"); ok {
		t.Error("unknown machine Manager")
	}
}

func TestAdoptErrors(t *testing.T) {
	log := &eventLog{}
	d1, _ := newDeployment(t, log, false)
	d2, _ := newDeployment(t, &eventLog{}, false)
	if err := d1.Adopt(d2, []string{"ghost"}); err == nil {
		t.Error("unknown instance in new deployment should error")
	}
	// An instance present here but absent there.
	if err := d1.Adopt(&Deployment{drivers: map[string]*driver.Driver{}}, []string{"tomcat"}); err == nil {
		t.Error("instance missing from previous deployment should error")
	}
}

type failingPlugin struct{ phase string }

func (p *failingPlugin) Name() string { return "failing" }
func (p *failingPlugin) AfterDeploy(*Deployment) error {
	if p.phase == "deploy" {
		return fmt.Errorf("plugin deploy boom")
	}
	return nil
}
func (p *failingPlugin) AfterShutdown(*Deployment) error {
	if p.phase == "shutdown" {
		return fmt.Errorf("plugin shutdown boom")
	}
	return nil
}

func TestPluginErrorsSurface(t *testing.T) {
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"deploy", "shutdown"} {
		w := machine.NewWorld()
		d, err := New(openmrsFull(t), Options{
			Registry: reg, Drivers: testDrivers(&eventLog{}), World: w,
			Index: testIndex(), ProvisionMissing: true,
			Plugins: []Plugin{&failingPlugin{phase: phase}},
		})
		if err != nil {
			t.Fatal(err)
		}
		err = d.Deploy()
		if phase == "deploy" {
			if err == nil || !strings.Contains(err.Error(), "plugin deploy boom") {
				t.Errorf("deploy plugin error should surface: %v", err)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Shutdown(); err == nil || !strings.Contains(err.Error(), "plugin shutdown boom") {
			t.Errorf("shutdown plugin error should surface: %v", err)
		}
	}
}

func TestMultiHostStatus(t *testing.T) {
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}
	w := machine.NewWorld()
	mh, err := NewMultiHost(multiHostFull(t), Options{
		Registry: reg, Drivers: testDrivers(&eventLog{}), World: w,
		Index: testIndex(), ProvisionMissing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mh.Deploy(); err != nil {
		t.Fatal(err)
	}
	st := mh.Status()
	if st["openmrs"] != "active" || st["mysql"] != "active" {
		t.Errorf("multi-host status = %v", st)
	}
}
