// This file implements the engine's failure policies: per-action retry
// with exponential backoff charged as virtual time, per-action
// timeouts, a transactional rollback mode that restores every machine's
// pre-deploy filesystem and kills spawned processes, and the structured
// DeployError that reports per-instance terminal states.

package deploy

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"engage/internal/driver"
	"engage/internal/machine"
)

// FailurePolicy selects what Deploy does when a driver action fails
// terminally (after retries, if any).
type FailurePolicy int

// The failure policies.
const (
	// FailAbort returns on the first error, leaving the world as the
	// failure left it (the engine's historical behavior).
	FailAbort FailurePolicy = iota
	// FailRetry retries failed actions per the RetryPolicy, then aborts,
	// leaving partial state in place.
	FailRetry
	// FailRollback retries per the RetryPolicy, then restores every
	// machine's pre-deploy filesystem, kills every process spawned by
	// the deployment (releasing its ports), and resets driver states —
	// deploy-as-transaction.
	FailRollback
)

func (p FailurePolicy) String() string {
	switch p {
	case FailAbort:
		return "abort"
	case FailRetry:
		return "retry"
	case FailRollback:
		return "rollback"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// RetryPolicy bounds per-action retries. Backoff between attempts is
// charged to the failing instance's cost sink as virtual time, so
// critical-path accounting stays honest about what failures cost.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per action (1 = no
	// retry). Zero means: 1 under FailAbort, 3 under FailRetry and
	// FailRollback.
	MaxAttempts int
	// Backoff is the virtual-time wait before the second attempt
	// (default 2s when retrying).
	Backoff time.Duration
	// Multiplier grows the backoff per attempt (default 2).
	Multiplier float64
	// MaxBackoff caps a single backoff (0 = uncapped).
	MaxBackoff time.Duration
}

// resolve fills defaults given the failure policy in force.
func (r RetryPolicy) resolve(policy FailurePolicy) RetryPolicy {
	if r.MaxAttempts <= 0 {
		if policy == FailAbort {
			r.MaxAttempts = 1
		} else {
			r.MaxAttempts = 3
		}
	}
	if r.Backoff <= 0 {
		r.Backoff = 2 * time.Second
	}
	if r.Multiplier < 1 {
		r.Multiplier = 2
	}
	return r
}

// Resolved returns the policy with defaults filled for the given
// failure policy (the exported face of resolve, for callers outside
// the engine that share the retry discipline).
func (r RetryPolicy) Resolved(policy FailurePolicy) RetryPolicy { return r.resolve(policy) }

// Wait returns the backoff after the attempt-th failure (1-based).
func (r RetryPolicy) Wait(attempt int) time.Duration { return r.backoff(attempt) }

// backoff returns the wait after the attempt-th failure (1-based),
// growing exponentially and capped by MaxBackoff.
func (r RetryPolicy) backoff(attempt int) time.Duration {
	d := r.Backoff
	for i := 1; i < attempt; i++ {
		d = time.Duration(float64(d) * r.Multiplier)
	}
	if r.MaxBackoff > 0 && d > r.MaxBackoff {
		d = r.MaxBackoff
	}
	return d
}

// BlockedInstance names one instance stuck on an unsatisfied guard when
// a concurrent deployment deadlocks.
type BlockedInstance struct {
	Instance string
	Action   string
	Guard    string
}

// DeployError is the structured error of a failed deployment: which
// action on which instance failed after how many attempts, every
// instance's terminal state, whether the world was rolled back, and —
// for concurrent deployments — any additional failures beyond the first
// and the blocked instances of a detected deadlock.
type DeployError struct {
	// Instance and Action identify the first failure ("" for
	// deadlocks, which have no failing action).
	Instance string
	Action   string
	// Attempts is how many times the failing action was tried.
	Attempts int
	// Err is the underlying driver/substrate error (nil for deadlocks).
	Err error
	// States records every instance's terminal state at failure time
	// (before any rollback).
	States map[string]driver.State
	// Additional collects failures beyond the first from other workers
	// of a concurrent deployment.
	Additional []error
	// Deadlock is set when every unfinished worker of a concurrent
	// deployment was blocked on a guard that could never become true;
	// Blocked names them.
	Deadlock bool
	Blocked  []BlockedInstance
	// RolledBack reports that the FailRollback policy restored the
	// world; RollbackErr is non-nil if that restoration itself failed.
	RolledBack  bool
	RollbackErr error
	// Policy is the failure policy that was in force, so the message can
	// state the terminal outcome (aborted vs rolled back).
	Policy FailurePolicy
}

func (e *DeployError) Error() string {
	var b strings.Builder
	if e.Deadlock {
		fmt.Fprintf(&b, "deploy: deadlock: %d instance(s) blocked on guards that can never hold:", len(e.Blocked))
		for _, bl := range e.Blocked {
			fmt.Fprintf(&b, " [%s: action %q awaits %s]", bl.Instance, bl.Action, bl.Guard)
		}
	} else {
		fmt.Fprintf(&b, "deploy: instance %q", e.Instance)
		if e.Action != "" {
			fmt.Fprintf(&b, ": action %q", e.Action)
		}
		if e.Attempts == 1 {
			b.WriteString(" failed after 1 attempt")
		} else if e.Attempts > 1 {
			fmt.Fprintf(&b, " failed after %d attempts", e.Attempts)
		} else {
			b.WriteString(" failed")
		}
		if e.Err != nil {
			fmt.Fprintf(&b, ": %v", e.Err)
		}
	}
	if n := len(e.Additional); n > 0 {
		fmt.Fprintf(&b, " (+%d additional failure(s))", n)
	}
	if e.RolledBack {
		if e.RollbackErr != nil {
			fmt.Fprintf(&b, " [rollback FAILED: %v]", e.RollbackErr)
		} else {
			b.WriteString(" [rolled back]")
		}
	} else if !e.Deadlock {
		fmt.Fprintf(&b, " [aborted; policy %s]", e.Policy)
	}
	return b.String()
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *DeployError) Unwrap() error { return e.Err }

// asDeployError coerces an error from the drive layer into a
// *DeployError, attributing it to the given instance when it is not
// already structured.
func asDeployError(err error, instance string) *DeployError {
	if derr, ok := err.(*DeployError); ok {
		return derr
	}
	return &DeployError{Instance: instance, Err: err}
}

// MachineState is one machine's captured state: a deep filesystem
// snapshot plus the set of PIDs that were running.
type MachineState struct {
	FS   map[string]machine.File
	PIDs map[int]bool
}

// MachineSnapshots captures every machine of a world before a
// deployment; Restore reinstates it. The upgrade framework shares this
// with the FailRollback policy so both kill orphaned processes, not
// just restore files.
type MachineSnapshots map[string]MachineState

// SnapshotWorld captures the filesystem and process table of every
// machine currently in the world.
func SnapshotWorld(w *machine.World) MachineSnapshots {
	snap := make(MachineSnapshots)
	for _, name := range w.Machines() {
		m, ok := w.Machine(name)
		if !ok {
			continue
		}
		pids := make(map[int]bool)
		for _, p := range m.Processes() {
			pids[p.PID] = true
		}
		snap[name] = MachineState{FS: m.Snapshot(), PIDs: pids}
	}
	return snap
}

// Restore rolls every machine back to its captured state: processes
// started since the snapshot are stopped (releasing their ports) and
// the filesystem is restored. Machines created after the snapshot are
// emptied but left registered (a provisioned server outliving a failed
// deploy, as on a real cloud). Returns the first error encountered,
// continuing best-effort.
func (snap MachineSnapshots) Restore(w *machine.World) error {
	var firstErr error
	for _, name := range w.Machines() {
		m, ok := w.Machine(name)
		if !ok {
			continue
		}
		st, had := snap[name]
		for _, p := range m.Processes() {
			if !had || !st.PIDs[p.PID] {
				if err := m.StopProcess(p.PID); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
		if had {
			m.Restore(st.FS)
		} else {
			m.Restore(nil)
		}
	}
	return firstErr
}

// worldSnapshot pairs machine snapshots with the deployment's driver
// states so a rollback can reset both.
type worldSnapshot struct {
	machines MachineSnapshots
	states   map[string]driver.State
}

func (d *Deployment) snapshotWorld() *worldSnapshot {
	return &worldSnapshot{machines: SnapshotWorld(d.opts.World), states: d.Status()}
}

// rollbackWorld restores machines and driver states from a pre-deploy
// snapshot.
func (d *Deployment) rollbackWorld(snap *worldSnapshot) error {
	err := snap.machines.Restore(d.opts.World)
	for id, st := range snap.states {
		if drv, ok := d.drivers[id]; ok {
			drv.SetState(st)
		}
	}
	return err
}

// deadlockError builds the structured deadlock report from the blocked
// workers, sorted by instance for determinism.
func deadlockError(blocked map[string]*blockedWait) *DeployError {
	derr := &DeployError{Deadlock: true}
	for id, bw := range blocked {
		derr.Blocked = append(derr.Blocked, BlockedInstance{
			Instance: id,
			Action:   bw.action,
			Guard:    bw.guard.String(),
		})
	}
	sort.Slice(derr.Blocked, func(i, j int) bool { return derr.Blocked[i].Instance < derr.Blocked[j].Instance })
	return derr
}

// blockedWait records why a concurrent worker is parked: the action and
// guard it is waiting on, and the state generation its guard was last
// evaluated against (deadlock is declared only when every unfinished
// worker is parked with a current evaluation).
type blockedWait struct {
	action string
	guard  driver.Guard
	gen    int
}
