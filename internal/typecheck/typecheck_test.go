package typecheck

import (
	"strings"
	"testing"
	"time"

	"engage/internal/resource"
	"engage/internal/spec"
)

// openmrsRegistry builds the §2 type lattice: Server (abstract) with
// Mac-OSX/Windows subclasses, Java (abstract) with JDK/JRE, Tomcat,
// MySQL, OpenMRS.
func openmrsRegistry(t *testing.T) *resource.Registry {
	t.Helper()
	reg := resource.NewRegistry()
	add := func(ty *resource.Type) {
		t.Helper()
		if err := reg.Add(ty); err != nil {
			t.Fatalf("Add(%v): %v", ty.Key, err)
		}
	}

	hostStruct := resource.StructType(map[string]resource.PortType{
		"hostname": resource.T(resource.KindString),
	})
	add(&resource.Type{
		Key:      resource.MakeKey("Server", ""),
		Abstract: true,
		Config: []resource.Port{
			{Name: "hostname", Type: resource.T(resource.KindString), Def: resource.Lit{V: resource.Str("localhost")}},
			{Name: "os_user_name", Type: resource.T(resource.KindString), Def: resource.Lit{V: resource.Str("root")}},
		},
		Output: []resource.Port{
			{Name: "host", Type: hostStruct, Def: resource.MakeStruct{Fields: map[string]resource.Expr{
				"hostname": resource.Ref{Sec: resource.SecConfig, Name: "hostname"},
			}}},
		},
	})
	add(&resource.Type{Key: resource.MakeKey("Mac-OSX", "10.6"), Extends: &resource.Key{Name: "Server"}})
	add(&resource.Type{Key: resource.MakeKey("Windows-XP", ""), Extends: &resource.Key{Name: "Server"}})

	javaStruct := resource.StructType(map[string]resource.PortType{"home": resource.T(resource.KindString)})
	add(&resource.Type{
		Key:      resource.MakeKey("Java", ""),
		Abstract: true,
		Inside:   &resource.Dependency{Alternatives: []resource.Key{{Name: "Server"}}},
		Output: []resource.Port{
			{Name: "java", Type: javaStruct, Def: resource.MakeStruct{Fields: map[string]resource.Expr{
				"home": resource.Lit{V: resource.Str("/usr/java")},
			}}},
		},
	})
	add(&resource.Type{Key: resource.MakeKey("JDK", "1.6"), Extends: &resource.Key{Name: "Java"}})
	add(&resource.Type{Key: resource.MakeKey("JRE", "1.6"), Extends: &resource.Key{Name: "Java"}})

	add(&resource.Type{
		Key:    resource.MakeKey("Tomcat", "6.0.18"),
		Inside: &resource.Dependency{Alternatives: []resource.Key{{Name: "Server"}}},
		Input:  []resource.Port{{Name: "java", Type: javaStruct}},
		Config: []resource.Port{
			{Name: "manager_port", Type: resource.T(resource.KindPort), Def: resource.Lit{V: resource.PortV(8080)}},
		},
		Output: []resource.Port{
			{Name: "tomcat", Type: resource.StructType(map[string]resource.PortType{"port": resource.T(resource.KindPort)}),
				Def: resource.MakeStruct{Fields: map[string]resource.Expr{
					"port": resource.Ref{Sec: resource.SecConfig, Name: "manager_port"},
				}}},
		},
		Env: []resource.Dependency{
			{Alternatives: []resource.Key{{Name: "Java"}}, PortMap: map[string]string{"java": "java"}},
		},
	})

	mysqlStruct := resource.StructType(map[string]resource.PortType{"port": resource.T(resource.KindPort)})
	add(&resource.Type{
		Key:    resource.MakeKey("MySQL", "5.1"),
		Inside: &resource.Dependency{Alternatives: []resource.Key{{Name: "Server"}}},
		Config: []resource.Port{
			{Name: "port", Type: resource.T(resource.KindPort), Def: resource.Lit{V: resource.PortV(3306)}},
		},
		Output: []resource.Port{
			{Name: "mysql", Type: mysqlStruct, Def: resource.MakeStruct{Fields: map[string]resource.Expr{
				"port": resource.Ref{Sec: resource.SecConfig, Name: "port"},
			}}},
		},
	})

	add(&resource.Type{
		Key:    resource.MakeKey("OpenMRS", "1.8"),
		Inside: &resource.Dependency{Alternatives: []resource.Key{{Name: "Tomcat", Version: "6.0.18"}}},
		Input: []resource.Port{
			{Name: "java", Type: javaStruct},
			{Name: "mysql", Type: mysqlStruct},
		},
		Env: []resource.Dependency{
			{Alternatives: []resource.Key{{Name: "Java"}}, PortMap: map[string]string{"java": "java"}},
		},
		Peer: []resource.Dependency{
			{Alternatives: []resource.Key{{Name: "MySQL", Version: "5.1"}}, PortMap: map[string]string{"mysql": "mysql"}},
		},
	})
	return reg
}

func TestCheckTypesOpenMRS(t *testing.T) {
	reg := openmrsRegistry(t)
	if err := CheckTypes(reg); err != nil {
		t.Errorf("OpenMRS registry should be well-formed: %v", err)
	}
}

func TestCheckTypesPendingDependency(t *testing.T) {
	reg := resource.NewRegistry()
	if err := reg.Add(&resource.Type{
		Key:    resource.MakeKey("App", "1"),
		Inside: &resource.Dependency{Alternatives: []resource.Key{{Name: "Ghost"}}},
	}); err != nil {
		t.Fatal(err)
	}
	err := CheckTypes(reg)
	if err == nil || !strings.Contains(err.Error(), "unknown type") {
		t.Errorf("pending dependency should be reported: %v", err)
	}
}

func TestCheckTypesMachineWithInputs(t *testing.T) {
	reg := resource.NewRegistry()
	if err := reg.Add(&resource.Type{
		Key:   resource.MakeKey("BadMachine", "1"),
		Input: []resource.Port{{Name: "x", Type: resource.T(resource.KindString)}},
	}); err != nil {
		t.Fatal(err)
	}
	err := CheckTypes(reg)
	if err == nil || !strings.Contains(err.Error(), "must not have input ports") {
		t.Errorf("machine with inputs should be reported: %v", err)
	}
}

func TestCheckTypesUnmappedInput(t *testing.T) {
	reg := resource.NewRegistry()
	mustAdd(t, reg, &resource.Type{Key: resource.MakeKey("Server", "")})
	mustAdd(t, reg, &resource.Type{
		Key:    resource.MakeKey("App", "1"),
		Inside: &resource.Dependency{Alternatives: []resource.Key{{Name: "Server"}}},
		Input:  []resource.Port{{Name: "orphan", Type: resource.T(resource.KindString)}},
	})
	err := CheckTypes(reg)
	if err == nil || !strings.Contains(err.Error(), "not mapped") {
		t.Errorf("unmapped input should be reported: %v", err)
	}
}

func TestCheckTypesDoublyMappedInput(t *testing.T) {
	reg := resource.NewRegistry()
	mustAdd(t, reg, &resource.Type{Key: resource.MakeKey("Server", "")})
	mustAdd(t, reg, &resource.Type{
		Key:    resource.MakeKey("Lib", "1"),
		Inside: &resource.Dependency{Alternatives: []resource.Key{{Name: "Server"}}},
		Output: []resource.Port{{Name: "o", Type: resource.T(resource.KindString), Def: resource.Lit{V: resource.Str("v")}}},
	})
	mustAdd(t, reg, &resource.Type{
		Key:    resource.MakeKey("App", "1"),
		Inside: &resource.Dependency{Alternatives: []resource.Key{{Name: "Server"}}},
		Input:  []resource.Port{{Name: "x", Type: resource.T(resource.KindString)}},
		Env: []resource.Dependency{
			{Alternatives: []resource.Key{{Name: "Lib", Version: "1"}}, PortMap: map[string]string{"o": "x"}},
			{Alternatives: []resource.Key{{Name: "Lib", Version: "1"}}, PortMap: map[string]string{"o": "x"}},
		},
	})
	err := CheckTypes(reg)
	if err == nil || !strings.Contains(err.Error(), "mapped 2 times") {
		t.Errorf("doubly-mapped input should be reported: %v", err)
	}
}

func TestCheckTypesOutputWithoutDef(t *testing.T) {
	reg := resource.NewRegistry()
	mustAdd(t, reg, &resource.Type{
		Key:    resource.MakeKey("M", ""),
		Output: []resource.Port{{Name: "o", Type: resource.T(resource.KindString)}},
	})
	err := CheckTypes(reg)
	if err == nil || !strings.Contains(err.Error(), "no value definition") {
		t.Errorf("output without def should be reported: %v", err)
	}
}

func TestCheckTypesCycle(t *testing.T) {
	reg := resource.NewRegistry()
	mustAdd(t, reg, &resource.Type{Key: resource.MakeKey("Server", "")})
	// A and B peer-depend on each other.
	mustAdd(t, reg, &resource.Type{
		Key:    resource.MakeKey("A", "1"),
		Inside: &resource.Dependency{Alternatives: []resource.Key{{Name: "Server"}}},
	})
	b := &resource.Type{
		Key:    resource.MakeKey("B", "1"),
		Inside: &resource.Dependency{Alternatives: []resource.Key{{Name: "Server"}}},
		Peer:   []resource.Dependency{{Alternatives: []resource.Key{{Name: "A", Version: "1"}}}},
	}
	mustAdd(t, reg, b)
	// Mutate A to close the cycle (Add order prevents forward refs).
	a, _ := reg.Lookup(resource.MakeKey("A", "1"))
	a.Peer = []resource.Dependency{{Alternatives: []resource.Key{{Name: "B", Version: "1"}}}}
	err := CheckTypes(reg)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("type cycle should be reported: %v", err)
	}
}

func TestCheckTypesPortTypeMismatch(t *testing.T) {
	reg := resource.NewRegistry()
	mustAdd(t, reg, &resource.Type{Key: resource.MakeKey("Server", "")})
	mustAdd(t, reg, &resource.Type{
		Key:    resource.MakeKey("Lib", "1"),
		Inside: &resource.Dependency{Alternatives: []resource.Key{{Name: "Server"}}},
		Output: []resource.Port{{Name: "o", Type: resource.T(resource.KindBool), Def: resource.Lit{V: resource.BoolV(true)}}},
	})
	mustAdd(t, reg, &resource.Type{
		Key:    resource.MakeKey("App", "1"),
		Inside: &resource.Dependency{Alternatives: []resource.Key{{Name: "Server"}}},
		Input:  []resource.Port{{Name: "x", Type: resource.T(resource.KindString)}},
		Env: []resource.Dependency{
			{Alternatives: []resource.Key{{Name: "Lib", Version: "1"}}, PortMap: map[string]string{"o": "x"}},
		},
	})
	err := CheckTypes(reg)
	if err == nil || !strings.Contains(err.Error(), "not assignable") {
		t.Errorf("port type mismatch should be reported: %v", err)
	}
}

func TestCheckTypesMissingOutputOnDependee(t *testing.T) {
	reg := resource.NewRegistry()
	mustAdd(t, reg, &resource.Type{Key: resource.MakeKey("Server", "")})
	mustAdd(t, reg, &resource.Type{
		Key:    resource.MakeKey("Lib", "1"),
		Inside: &resource.Dependency{Alternatives: []resource.Key{{Name: "Server"}}},
	})
	mustAdd(t, reg, &resource.Type{
		Key:    resource.MakeKey("App", "1"),
		Inside: &resource.Dependency{Alternatives: []resource.Key{{Name: "Server"}}},
		Input:  []resource.Port{{Name: "x", Type: resource.T(resource.KindString)}},
		Env: []resource.Dependency{
			{Alternatives: []resource.Key{{Name: "Lib", Version: "1"}}, PortMap: map[string]string{"nope": "x"}},
		},
	})
	err := CheckTypes(reg)
	if err == nil || !strings.Contains(err.Error(), "no output port") {
		t.Errorf("missing dependee output should be reported: %v", err)
	}
}

func TestCheckTypesConfigReadsConfig(t *testing.T) {
	reg := resource.NewRegistry()
	mustAdd(t, reg, &resource.Type{
		Key: resource.MakeKey("M", ""),
		Config: []resource.Port{
			{Name: "a", Type: resource.T(resource.KindString), Def: resource.Lit{V: resource.Str("v")}},
			{Name: "b", Type: resource.T(resource.KindString), Def: resource.Ref{Sec: resource.SecConfig, Name: "a"}},
		},
	})
	err := CheckTypes(reg)
	if err == nil || !strings.Contains(err.Error(), "may only read input ports") {
		t.Errorf("config reading config should be reported: %v", err)
	}
}

func TestCheckTypesStaticRules(t *testing.T) {
	reg := resource.NewRegistry()
	mustAdd(t, reg, &resource.Type{
		Key: resource.MakeKey("M", ""),
		Config: []resource.Port{
			{Name: "c", Type: resource.T(resource.KindString), Static: true,
				Def: resource.Concat{Args: []resource.Expr{resource.Lit{V: resource.Str("x")}}}},
		},
	})
	err := CheckTypes(reg)
	if err == nil || !strings.Contains(err.Error(), "must be a constant") {
		t.Errorf("non-constant static config should be reported: %v", err)
	}

	reg2 := resource.NewRegistry()
	mustAdd(t, reg2, &resource.Type{Key: resource.MakeKey("Server", "")})
	mustAdd(t, reg2, &resource.Type{
		Key:    resource.MakeKey("N", "1"),
		Inside: &resource.Dependency{Alternatives: []resource.Key{{Name: "Server"}}},
		Input:  []resource.Port{{Name: "i", Type: resource.T(resource.KindString)}},
		Config: []resource.Port{
			{Name: "dyn", Type: resource.T(resource.KindString), Def: resource.Ref{Sec: resource.SecInput, Name: "i"}},
		},
		Output: []resource.Port{
			// Static output reading a dynamic config port: illegal.
			{Name: "so", Type: resource.T(resource.KindString), Static: true,
				Def: resource.Ref{Sec: resource.SecConfig, Name: "dyn"}},
		},
	})
	err2 := CheckTypes(reg2)
	if err2 == nil || !strings.Contains(err2.Error(), "non-static config port") {
		t.Errorf("static output reading dynamic config should be reported: %v", err2)
	}
}

func TestCheckTypesStaticInputIllegal(t *testing.T) {
	reg := resource.NewRegistry()
	mustAdd(t, reg, &resource.Type{Key: resource.MakeKey("Server", "")})
	mustAdd(t, reg, &resource.Type{
		Key:    resource.MakeKey("X", "1"),
		Inside: &resource.Dependency{Alternatives: []resource.Key{{Name: "Server"}}},
		Input:  []resource.Port{{Name: "i", Type: resource.T(resource.KindString), Static: true}},
	})
	err := CheckTypes(reg)
	if err == nil || !strings.Contains(err.Error(), "cannot be static") {
		t.Errorf("static input should be reported: %v", err)
	}
}

func mustAdd(t *testing.T, reg *resource.Registry, ty *resource.Type) {
	t.Helper()
	if err := reg.Add(ty); err != nil {
		t.Fatal(err)
	}
}

// --- CheckSpec tests ---

// openmrsFullSpec is the hand-written full installation specification for
// the §2 deployment: server, jdk, tomcat, mysql, openmrs.
func openmrsFullSpec() *spec.Full {
	javaVal := resource.StructV(map[string]resource.Value{"home": resource.Str("/usr/java")})
	mysqlVal := resource.StructV(map[string]resource.Value{"port": resource.PortV(3306)})
	return &spec.Full{Instances: []*spec.Instance{
		{
			ID: "server", Key: resource.MakeKey("Mac-OSX", "10.6"), Machine: "server",
			Config: map[string]resource.Value{"hostname": resource.Str("localhost")},
		},
		{
			ID: "jdk", Key: resource.MakeKey("JDK", "1.6"), Machine: "server", Inside: "server",
			Output: map[string]resource.Value{"java": javaVal},
			Deps:   []spec.DepLink{{Class: resource.DepInside, Target: "server"}},
		},
		{
			ID: "tomcat", Key: resource.MakeKey("Tomcat", "6.0.18"), Machine: "server", Inside: "server",
			Input: map[string]resource.Value{"java": javaVal},
			Deps: []spec.DepLink{
				{Class: resource.DepInside, Target: "server"},
				{Class: resource.DepEnv, Target: "jdk", PortMap: map[string]string{"java": "java"}},
			},
		},
		{
			ID: "mysql", Key: resource.MakeKey("MySQL", "5.1"), Machine: "server", Inside: "server",
			Config: map[string]resource.Value{"port": resource.PortV(3306)},
			Output: map[string]resource.Value{"mysql": mysqlVal},
			Deps:   []spec.DepLink{{Class: resource.DepInside, Target: "server"}},
		},
		{
			ID: "openmrs", Key: resource.MakeKey("OpenMRS", "1.8"), Machine: "server", Inside: "tomcat",
			Input: map[string]resource.Value{"java": javaVal, "mysql": mysqlVal},
			Deps: []spec.DepLink{
				{Class: resource.DepInside, Target: "tomcat"},
				{Class: resource.DepEnv, Target: "jdk", PortMap: map[string]string{"java": "java"}},
				{Class: resource.DepPeer, Target: "mysql", PortMap: map[string]string{"mysql": "mysql"}},
			},
		},
	}}
}

func TestCheckSpecValid(t *testing.T) {
	reg := openmrsRegistry(t)
	if err := CheckSpec(reg, openmrsFullSpec()); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestCheckSpecAbstractInstance(t *testing.T) {
	reg := openmrsRegistry(t)
	f := &spec.Full{Instances: []*spec.Instance{
		{ID: "j", Key: resource.MakeKey("Java", "")},
	}}
	err := CheckSpec(reg, f)
	if err == nil || !strings.Contains(err.Error(), "abstract") {
		t.Errorf("abstract instantiation should be reported: %v", err)
	}
}

func TestCheckSpecMissingDependencyLink(t *testing.T) {
	reg := openmrsRegistry(t)
	f := openmrsFullSpec()
	om := f.MustFind("openmrs")
	om.Deps = om.Deps[:2] // drop the peer link to mysql
	err := CheckSpec(reg, f)
	if err == nil || !strings.Contains(err.Error(), "peer dependency") {
		t.Errorf("missing peer link should be reported: %v", err)
	}
}

func TestCheckSpecWrongContainer(t *testing.T) {
	reg := openmrsRegistry(t)
	f := openmrsFullSpec()
	om := f.MustFind("openmrs")
	om.Inside = "server" // OpenMRS must be inside Tomcat
	om.Deps[0].Target = "server"
	err := CheckSpec(reg, f)
	if err == nil || !strings.Contains(err.Error(), "not a subtype") {
		t.Errorf("wrong container should be reported: %v", err)
	}
}

func TestCheckSpecEnvWrongMachine(t *testing.T) {
	reg := openmrsRegistry(t)
	f := openmrsFullSpec()
	// Add a second machine and move jdk there: tomcat's env dep breaks.
	f.Instances = append(f.Instances, &spec.Instance{
		ID: "server2", Key: resource.MakeKey("Mac-OSX", "10.6"), Machine: "server2",
	})
	jdk := f.MustFind("jdk")
	jdk.Inside = "server2"
	jdk.Machine = "server2"
	jdk.Deps[0].Target = "server2"
	err := CheckSpec(reg, f)
	if err == nil || !strings.Contains(err.Error(), "same machine") {
		t.Errorf("cross-machine env dep should be reported: %v", err)
	}
}

func TestCheckSpecPortValueMismatch(t *testing.T) {
	reg := openmrsRegistry(t)
	f := openmrsFullSpec()
	om := f.MustFind("openmrs")
	om.Input["mysql"] = resource.StructV(map[string]resource.Value{"port": resource.PortV(9999)})
	err := CheckSpec(reg, f)
	if err == nil || !strings.Contains(err.Error(), "differs from") {
		t.Errorf("port value mismatch should be reported: %v", err)
	}
}

func TestCheckSpecUnknownConfigPort(t *testing.T) {
	reg := openmrsRegistry(t)
	f := openmrsFullSpec()
	f.MustFind("mysql").Config["bogus"] = resource.Str("x")
	err := CheckSpec(reg, f)
	if err == nil || !strings.Contains(err.Error(), "unknown config port") {
		t.Errorf("unknown config port should be reported: %v", err)
	}
}

func TestCheckSpecUnknownType(t *testing.T) {
	reg := openmrsRegistry(t)
	f := &spec.Full{Instances: []*spec.Instance{
		{ID: "x", Key: resource.MakeKey("Mystery", "9")},
	}}
	err := CheckSpec(reg, f)
	if err == nil || !strings.Contains(err.Error(), "unknown resource type") {
		t.Errorf("unknown type should be reported: %v", err)
	}
}

func TestCheckSpecMachineWithContainer(t *testing.T) {
	reg := openmrsRegistry(t)
	f := openmrsFullSpec()
	f.MustFind("server").Inside = "tomcat"
	err := CheckSpec(reg, f)
	if err == nil {
		t.Error("machine with container should be reported")
	}
}

func TestCheckSpecExtraLink(t *testing.T) {
	reg := openmrsRegistry(t)
	f := openmrsFullSpec()
	jdk := f.MustFind("jdk")
	jdk.Deps = append(jdk.Deps, spec.DepLink{Class: resource.DepPeer, Target: "mysql"})
	err := CheckSpec(reg, f)
	if err == nil || !strings.Contains(err.Error(), "matches no dependency") {
		t.Errorf("extra link should be reported: %v", err)
	}
}

func TestCheckSpecPortConflict(t *testing.T) {
	// Two MySQL instances on one machine, both on 3306: caught
	// statically rather than at install time.
	reg := openmrsRegistry(t)
	mysqlVal := resource.StructV(map[string]resource.Value{"port": resource.PortV(3306)})
	f := &spec.Full{Instances: []*spec.Instance{
		{ID: "server", Key: resource.MakeKey("Mac-OSX", "10.6"), Machine: "server"},
		{ID: "db1", Key: resource.MakeKey("MySQL", "5.1"), Machine: "server", Inside: "server",
			Config: map[string]resource.Value{"port": resource.PortV(3306)},
			Output: map[string]resource.Value{"mysql": mysqlVal},
			Deps:   []spec.DepLink{{Class: resource.DepInside, Target: "server"}}},
		{ID: "db2", Key: resource.MakeKey("MySQL", "5.1"), Machine: "server", Inside: "server",
			Config: map[string]resource.Value{"port": resource.PortV(3306)},
			Output: map[string]resource.Value{"mysql": mysqlVal},
			Deps:   []spec.DepLink{{Class: resource.DepInside, Target: "server"}}},
	}}
	err := CheckSpec(reg, f)
	if err == nil || !strings.Contains(err.Error(), "already claimed") {
		t.Errorf("port conflict should be reported: %v", err)
	}

	// Distinct ports pass.
	f.MustFind("db2").Config["port"] = resource.PortV(3307)
	f.MustFind("db2").Output["mysql"] = resource.StructV(map[string]resource.Value{"port": resource.PortV(3307)})
	if err := CheckSpec(reg, f); err != nil {
		t.Errorf("distinct ports should pass: %v", err)
	}

	// Same port on different machines passes.
	f2 := &spec.Full{Instances: []*spec.Instance{
		{ID: "m1", Key: resource.MakeKey("Mac-OSX", "10.6"), Machine: "m1"},
		{ID: "m2", Key: resource.MakeKey("Mac-OSX", "10.6"), Machine: "m2"},
		{ID: "db1", Key: resource.MakeKey("MySQL", "5.1"), Machine: "m1", Inside: "m1",
			Config: map[string]resource.Value{"port": resource.PortV(3306)},
			Output: map[string]resource.Value{"mysql": mysqlVal},
			Deps:   []spec.DepLink{{Class: resource.DepInside, Target: "m1"}}},
		{ID: "db2", Key: resource.MakeKey("MySQL", "5.1"), Machine: "m2", Inside: "m2",
			Config: map[string]resource.Value{"port": resource.PortV(3306)},
			Output: map[string]resource.Value{"mysql": mysqlVal},
			Deps:   []spec.DepLink{{Class: resource.DepInside, Target: "m2"}}},
	}}
	if err := CheckSpec(reg, f2); err != nil {
		t.Errorf("same port on different machines should pass: %v", err)
	}
}

func TestCheckTypesInvalidExtension(t *testing.T) {
	reg := resource.NewRegistry()
	mustAdd(t, reg, &resource.Type{
		Key:      resource.MakeKey("Base", ""),
		Abstract: true,
		Output: []resource.Port{{Name: "o", Type: resource.T(resource.KindString),
			Def: resource.Lit{V: resource.Str("x")}}},
	})
	mustAdd(t, reg, &resource.Type{
		Key:     resource.MakeKey("Bad", "1"),
		Extends: &resource.Key{Name: "Base"},
		Output: []resource.Port{{Name: "o", Type: resource.T(resource.KindBool),
			Def: resource.Lit{V: resource.BoolV(true)}}},
	})
	err := CheckTypes(reg)
	if err == nil || !strings.Contains(err.Error(), "invalid extension") {
		t.Errorf("covariance-breaking override should be reported: %v", err)
	}
}

func TestCheckTypesReverseMapErrors(t *testing.T) {
	// Reverse port map naming an unknown output.
	reg := resource.NewRegistry()
	mustAdd(t, reg, &resource.Type{Key: resource.MakeKey("Server", "")})
	mustAdd(t, reg, &resource.Type{
		Key:    resource.MakeKey("Container", "1"),
		Inside: &resource.Dependency{Alternatives: []resource.Key{{Name: "Server"}}},
		Input:  []resource.Port{{Name: "c", Type: resource.T(resource.KindString)}},
	})
	mustAdd(t, reg, &resource.Type{
		Key: resource.MakeKey("App", "1"),
		Inside: &resource.Dependency{
			Alternatives:   []resource.Key{{Name: "Container", Version: "1"}},
			ReversePortMap: map[string]string{"ghost": "c"},
		},
	})
	err := CheckTypes(reg)
	if err == nil || !strings.Contains(err.Error(), "unknown output port") {
		t.Errorf("unknown reverse output should be reported: %v", err)
	}

	// Reverse port map whose source output is not static.
	reg2 := resource.NewRegistry()
	mustAdd(t, reg2, &resource.Type{Key: resource.MakeKey("Server", "")})
	mustAdd(t, reg2, &resource.Type{
		Key:    resource.MakeKey("Container", "1"),
		Inside: &resource.Dependency{Alternatives: []resource.Key{{Name: "Server"}}},
		Input:  []resource.Port{{Name: "c", Type: resource.T(resource.KindString)}},
	})
	mustAdd(t, reg2, &resource.Type{
		Key: resource.MakeKey("App", "1"),
		Inside: &resource.Dependency{
			Alternatives:   []resource.Key{{Name: "Container", Version: "1"}},
			ReversePortMap: map[string]string{"cfg": "c"},
		},
		Output: []resource.Port{{Name: "cfg", Type: resource.T(resource.KindString),
			Def: resource.Lit{V: resource.Str("x")}}}, // not static
	})
	err2 := CheckTypes(reg2)
	if err2 == nil || !strings.Contains(err2.Error(), "must be static") {
		t.Errorf("non-static reverse source should be reported: %v", err2)
	}

	// Reverse target input missing on the dependee.
	reg3 := resource.NewRegistry()
	mustAdd(t, reg3, &resource.Type{Key: resource.MakeKey("Server", "")})
	mustAdd(t, reg3, &resource.Type{
		Key:    resource.MakeKey("Container", "1"),
		Inside: &resource.Dependency{Alternatives: []resource.Key{{Name: "Server"}}},
	})
	mustAdd(t, reg3, &resource.Type{
		Key: resource.MakeKey("App", "1"),
		Inside: &resource.Dependency{
			Alternatives:   []resource.Key{{Name: "Container", Version: "1"}},
			ReversePortMap: map[string]string{"cfg": "missing"},
		},
		Output: []resource.Port{{Name: "cfg", Type: resource.T(resource.KindString), Static: true,
			Def: resource.Lit{V: resource.Str("x")}}},
	})
	err3 := CheckTypes(reg3)
	if err3 == nil || !strings.Contains(err3.Error(), "no input port") {
		t.Errorf("missing reverse target should be reported: %v", err3)
	}
}

func TestCheckTypesEmptyDependency(t *testing.T) {
	reg := resource.NewRegistry()
	mustAdd(t, reg, &resource.Type{
		Key: resource.MakeKey("A", "1"),
		Env: []resource.Dependency{{}},
	})
	err := CheckTypes(reg)
	if err == nil || !strings.Contains(err.Error(), "no alternatives") {
		t.Errorf("empty dependency should be reported: %v", err)
	}
}

func TestCheckTypesMapToUndefinedInput(t *testing.T) {
	reg := resource.NewRegistry()
	mustAdd(t, reg, &resource.Type{Key: resource.MakeKey("Server", "")})
	mustAdd(t, reg, &resource.Type{
		Key:    resource.MakeKey("Lib", "1"),
		Inside: &resource.Dependency{Alternatives: []resource.Key{{Name: "Server"}}},
		Output: []resource.Port{{Name: "o", Type: resource.T(resource.KindString),
			Def: resource.Lit{V: resource.Str("v")}}},
	})
	mustAdd(t, reg, &resource.Type{
		Key:    resource.MakeKey("App", "1"),
		Inside: &resource.Dependency{Alternatives: []resource.Key{{Name: "Server"}}},
		Env: []resource.Dependency{
			{Alternatives: []resource.Key{{Name: "Lib", Version: "1"}},
				PortMap: map[string]string{"o": "nonexistent"}},
		},
	})
	err := CheckTypes(reg)
	if err == nil || !strings.Contains(err.Error(), "undefined input port") {
		t.Errorf("map to undefined input should be reported: %v", err)
	}
}

func TestCheckTypesHealthBlock(t *testing.T) {
	mk := func(h *resource.HealthSpec) *resource.Registry {
		reg := resource.NewRegistry()
		mustAdd(t, reg, &resource.Type{Key: resource.MakeKey("Server", "")})
		mustAdd(t, reg, &resource.Type{
			Key:    resource.MakeKey("App", "1"),
			Inside: &resource.Dependency{Alternatives: []resource.Key{{Name: "Server"}}},
			Health: h,
		})
		return reg
	}
	ok := &resource.HealthSpec{
		Probes:   []string{resource.ProbePortOpen, resource.ProbeCheck},
		Interval: 30 * time.Second, Timeout: 5 * time.Second,
		FailureThreshold: 3, SuccessThreshold: 2,
	}
	if err := CheckTypes(mk(ok)); err != nil {
		t.Errorf("valid health block should pass: %v", err)
	}
	cases := []struct {
		mutate func(h *resource.HealthSpec)
		want   string
	}{
		{func(h *resource.HealthSpec) { h.Probes = nil }, "declares no probes"},
		{func(h *resource.HealthSpec) { h.Probes = []string{"ping"} }, "unknown probe kind"},
		{func(h *resource.HealthSpec) { h.Probes = []string{"check", "check"} }, "duplicate probe"},
		{func(h *resource.HealthSpec) { h.Interval = 0 }, "interval must be positive"},
		{func(h *resource.HealthSpec) { h.Timeout = -time.Second }, "timeout must be positive"},
		{func(h *resource.HealthSpec) { h.FailureThreshold = 0 }, "failures threshold"},
		{func(h *resource.HealthSpec) { h.SuccessThreshold = 0 }, "successes threshold"},
	}
	for _, c := range cases {
		h := *ok
		h.Probes = append([]string(nil), ok.Probes...)
		c.mutate(&h)
		err := CheckTypes(mk(&h))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("mutated health block: error = %v, want %q", err, c.want)
		}
	}
}
