package typecheck

import (
	"errors"
	"fmt"

	"engage/internal/resource"
	"engage/internal/spec"
)

// CheckSpec validates a full installation specification against a
// well-formed registry (§3.3): every instance's type is known and
// concrete; every dependency of the type is instantiated with a link to
// an instance whose type is a subtype of (one of) the dependency's
// target(s); environment dependencies land on the same machine; each
// input port receives a value from exactly one link; port values
// type-check; and the instance graph is acyclic (checked via TopoOrder).
func CheckSpec(reg *resource.Registry, f *spec.Full) error {
	var errs []error
	report := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	byID := make(map[string]*spec.Instance, len(f.Instances))
	for _, inst := range f.Instances {
		if byID[inst.ID] != nil {
			report("spec: duplicate instance id %q", inst.ID)
			continue
		}
		byID[inst.ID] = inst
	}

	sub := resource.NewSubtyper(reg)

	// Reverse-fed inputs: instance → input port → feed count (§3.4).
	reverseFeed := make(map[string]map[string]int)
	for _, inst := range f.Instances {
		for _, l := range inst.Deps {
			for _, in := range l.ReversePortMap {
				if reverseFeed[l.Target] == nil {
					reverseFeed[l.Target] = make(map[string]int)
				}
				reverseFeed[l.Target][in]++
			}
		}
	}

	for _, inst := range f.Instances {
		t, ok := reg.Lookup(inst.Key)
		if !ok {
			report("instance %q: unknown resource type %q", inst.ID, inst.Key)
			continue
		}
		if t.Abstract {
			report("instance %q: abstract resource type %q cannot be instantiated", inst.ID, inst.Key)
			continue
		}
		checkInstance(reg, sub, byID, inst, t, reverseFeed[inst.ID], report)
	}

	checkPortConflicts(reg, f, report)

	if _, err := f.TopoOrder(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// checkPortConflicts statically detects two instances on the same
// machine whose tcp_port-typed config ports resolve to the same value —
// the class of failure the paper's drivers discover only at install time
// ("environment checks (e.g., required TCP/IP ports are available)").
// Port 0 means "no port claimed" and is ignored.
func checkPortConflicts(reg *resource.Registry, f *spec.Full, report func(string, ...any)) {
	type claim struct {
		instance string
		port     string
	}
	perMachine := make(map[string]map[int]claim)
	for _, inst := range f.Instances {
		t, ok := reg.Lookup(inst.Key)
		if !ok {
			continue
		}
		for _, p := range t.Config {
			if p.Type.Kind != resource.KindPort {
				continue
			}
			v, ok := inst.Config[p.Name]
			if !ok || v.Int == 0 {
				continue
			}
			m := inst.Machine
			if perMachine[m] == nil {
				perMachine[m] = make(map[int]claim)
			}
			if prev, taken := perMachine[m][v.Int]; taken {
				report("instance %q: config port %q claims TCP port %d on machine %q, already claimed by %q.%s",
					inst.ID, p.Name, v.Int, m, prev.instance, prev.port)
				continue
			}
			perMachine[m][v.Int] = claim{instance: inst.ID, port: p.Name}
		}
	}
}

func checkInstance(reg *resource.Registry, sub *resource.Subtyper,
	byID map[string]*spec.Instance, inst *spec.Instance, t *resource.Type,
	reverseFeed map[string]int, report func(string, ...any)) {

	// Inside link must exist iff the type has an inside dependency.
	switch {
	case t.Inside == nil && inst.Inside != "":
		report("instance %q: machine type %q must not have a container", inst.ID, inst.Key)
	case t.Inside != nil && inst.Inside == "":
		report("instance %q: type %q requires a container (inside dependency)", inst.ID, inst.Key)
	case t.Inside != nil:
		container, ok := byID[inst.Inside]
		if !ok {
			report("instance %q: container %q not in specification", inst.ID, inst.Inside)
		} else if !matchesAny(sub, container.Key, t.Inside.Alternatives) {
			report("instance %q: container %q has type %q, not a subtype of %s",
				inst.ID, inst.Inside, container.Key, t.Inside)
		}
	}

	// Machine resolution: follow inside links.
	if m := resolveMachine(byID, inst); m == "" {
		report("instance %q: cannot resolve machine via inside chain", inst.ID)
	} else if inst.Machine != "" && inst.Machine != m {
		report("instance %q: recorded machine %q disagrees with inside chain (%q)", inst.ID, inst.Machine, m)
	}

	// Every env and peer dependency of the type must have a matching link.
	inputSource := make(map[string]int, len(t.Input))
	links := append([]spec.DepLink(nil), inst.Deps...)
	for _, cd := range t.Deps() {
		if cd.Class == resource.DepInside {
			// Inside handled above; count its port map toward inputs.
			countPortMap(cd.Dep.PortMap, inputSource)
			continue
		}
		idx := findLink(links, cd, sub, byID)
		if idx < 0 {
			report("instance %q: no link satisfying %s dependency %s", inst.ID, cd.Class, cd.Dep)
			continue
		}
		link := links[idx]
		links = append(links[:idx], links[idx+1:]...)
		countPortMap(link.PortMap, inputSource)

		target := byID[link.Target]
		if target == nil {
			report("instance %q: %s link to unknown instance %q", inst.ID, cd.Class, link.Target)
			continue
		}
		if cd.Class == resource.DepEnv {
			tm := resolveMachine(byID, target)
			im := resolveMachine(byID, inst)
			if tm != "" && im != "" && tm != im {
				report("instance %q: environment dependency %q must be on the same machine (%q vs %q)",
					inst.ID, link.Target, im, tm)
			}
		}

		// Port-value consistency: each mapped input equals the source
		// instance's output (when both sides are present).
		for outPort, inPort := range link.PortMap {
			ov, okOut := target.Output[outPort]
			iv, okIn := inst.Input[inPort]
			if okOut && okIn && !ov.Equal(iv) {
				report("instance %q: input %q (%s) differs from %q output %q (%s)",
					inst.ID, inPort, iv, link.Target, outPort, ov)
			}
		}
	}

	// Leftover links that correspond to no type dependency. Inside links
	// are excluded: they are represented both as inst.Inside and as a
	// DepLink, and their port map was already counted from the type's
	// inside dependency above.
	for _, l := range links {
		if l.Class == resource.DepInside && l.Target == inst.Inside {
			continue
		}
		report("instance %q: link %v matches no dependency of type %q", inst.ID, l.Target, inst.Key)
	}

	// Each input port of the type must be fed exactly once, counting
	// reverse feeds from dependent instances.
	for _, p := range t.Input {
		switch n := inputSource[p.Name] + reverseFeed[p.Name]; {
		case n == 0:
			report("instance %q: input port %q receives no value", inst.ID, p.Name)
		case n > 1:
			report("instance %q: input port %q receives %d values", inst.ID, p.Name, n)
		}
	}

	// Config values type-check against declared ports.
	for name, v := range inst.Config {
		p, ok := t.FindPort(resource.SecConfig, name)
		if !ok {
			report("instance %q: unknown config port %q", inst.ID, name)
			continue
		}
		if !v.Type().AssignableTo(p.Type) {
			report("instance %q: config port %q: %s not assignable to %s", inst.ID, name, v.Type(), p.Type)
		}
	}
	for name, v := range inst.Input {
		p, ok := t.FindPort(resource.SecInput, name)
		if !ok {
			report("instance %q: unknown input port %q", inst.ID, name)
			continue
		}
		if !v.Type().AssignableTo(p.Type) {
			report("instance %q: input port %q: %s not assignable to %s", inst.ID, name, v.Type(), p.Type)
		}
	}
	for name := range inst.Output {
		if _, ok := t.FindPort(resource.SecOutput, name); !ok {
			report("instance %q: unknown output port %q", inst.ID, name)
		}
	}
}

func countPortMap(pm map[string]string, into map[string]int) {
	for _, inPort := range pm {
		into[inPort]++
	}
}

func matchesAny(sub *resource.Subtyper, k resource.Key, alts []resource.Key) bool {
	for _, a := range alts {
		if sub.IsSubtype(k, a) {
			return true
		}
	}
	return false
}

// findLink locates a dependency link of the right class whose target's
// type is a subtype of one of the dependency's alternatives.
func findLink(links []spec.DepLink, cd resource.ClassedDep,
	sub *resource.Subtyper, byID map[string]*spec.Instance) int {
	for i, l := range links {
		if l.Class != cd.Class {
			continue
		}
		target := byID[l.Target]
		if target == nil {
			continue
		}
		if matchesAny(sub, target.Key, cd.Dep.Alternatives) {
			return i
		}
	}
	return -1
}

// resolveMachine follows inside links from an instance to its machine.
func resolveMachine(byID map[string]*spec.Instance, inst *spec.Instance) string {
	seen := make(map[string]bool)
	cur := inst
	for {
		if cur.Inside == "" {
			return cur.ID
		}
		if seen[cur.ID] {
			return "" // inside cycle
		}
		seen[cur.ID] = true
		next, ok := byID[cur.Inside]
		if !ok {
			return ""
		}
		cur = next
	}
}
