// Package typecheck implements Engage's static checks: well-formedness
// of a set of resource types (§3.1 of the paper) and validation of full
// installation specifications (§3.3). These are the checks that let
// Engage "statically detect configuration problems, e.g., cyclic
// dependencies between components, or unsolvable constraints".
package typecheck

import (
	"errors"
	"fmt"

	"engage/internal/resource"
)

// CheckTypes verifies the well-formedness conditions for the set of
// resource types in the registry:
//
//  1. every key in an inside/environment/peer dependency resolves to a
//     registered type (no pending dependencies);
//  2. a resource without an inside dependency (a machine) has no input
//     ports;
//  3. each input port is mapped exactly once across the port mappings of
//     all dependencies, and each output port is assigned a value;
//  4. the union of the inside, environment, and peer orderings over
//     resource types is acyclic.
//
// Beyond the paper's four conditions it validates port mappings against
// the dependee's output ports (existence and type compatibility), the
// section discipline of port-value expressions (config ports read only
// inputs; output ports read inputs and config), the static-binding rules
// of §3.4, and the §3.4 requirement that disjunctive alternatives expose
// identical port-map ranges.
func CheckTypes(reg *resource.Registry) error {
	errs := Problems(reg)
	if err := checkAcyclic(reg); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// Problems returns the individual per-type well-formedness violations
// (everything CheckTypes reports except the dependency-cycle check,
// which FindCycle exposes separately). The diagnostics engine
// (internal/lint) consumes the violations one by one instead of as one
// joined error.
func Problems(reg *resource.Registry) []error {
	var errs []error
	report := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	reverseFed := collectReverseFed(reg)
	sub := resource.NewSubtyper(reg)
	for _, key := range reg.Keys() {
		t := reg.MustLookup(key)
		checkOne(reg, t, reverseFed[key], report)
		// Every declared extension must actually be a subtype per the
		// Fig. 4 rules (an override can break co/contra-variance).
		if t.Extends != nil {
			if err := sub.Explain(key, *t.Extends); err != nil {
				report("type %q: invalid extension: %v", key, err)
			}
		}
	}
	return errs
}

// collectReverseFed returns, per resource type key, the set of input
// ports that some dependent type feeds via a reverse port map (§3.4).
// Such ports are exempt from the "mapped exactly once by own
// dependencies" rule: their value arrives from the dependent instance.
func collectReverseFed(reg *resource.Registry) map[resource.Key]map[string]bool {
	out := make(map[resource.Key]map[string]bool)
	for _, key := range reg.Keys() {
		t := reg.MustLookup(key)
		for _, cd := range t.Deps() {
			for _, alt := range cd.Dep.Alternatives {
				for _, in := range cd.Dep.ReversePortMap {
					if out[alt] == nil {
						out[alt] = make(map[string]bool)
					}
					out[alt][in] = true
				}
			}
		}
	}
	return out
}

func checkOne(reg *resource.Registry, t *resource.Type, reverseFed map[string]bool, report func(string, ...any)) {
	key := t.Key

	// Condition 2: machines have no input ports.
	if t.IsMachine() && len(t.Input) > 0 {
		report("type %q: machine (no inside dependency) must not have input ports", key)
	}

	// Track how many times each input port is mapped (condition 3).
	mapped := make(map[string]int, len(t.Input))
	inputType := make(map[string]resource.PortType, len(t.Input))
	for _, p := range t.Input {
		mapped[p.Name] = 0
		inputType[p.Name] = p.Type
		if p.Static {
			report("type %q: input port %q cannot be static", key, p.Name)
		}
	}

	for _, cd := range t.Deps() {
		checkDep(reg, t, cd, mapped, inputType, report)
	}

	// Condition 3: each input port mapped exactly once (reverse-fed
	// ports receive their value from a dependent instance instead).
	for _, p := range t.Input {
		switch n := mapped[p.Name]; {
		case n == 0 && !reverseFed[p.Name]:
			report("type %q: input port %q is not mapped by any dependency", key, p.Name)
		case n > 0 && reverseFed[p.Name]:
			report("type %q: input port %q is both dependency-mapped and reverse-fed", key, p.Name)
		case n > 1:
			report("type %q: input port %q is mapped %d times (must be exactly once)", key, p.Name, n)
		}
	}

	// Condition 3: every output port has a value definition.
	for _, p := range t.Output {
		if p.Def == nil {
			report("type %q: output port %q has no value definition", key, p.Name)
			continue
		}
		for _, r := range resource.Refs(p.Def) {
			if r.Sec == resource.SecOutput {
				report("type %q: output port %q reads another output port %q", key, p.Name, r.Name)
			}
			if _, ok := t.FindPort(r.Sec, r.Name); !ok {
				report("type %q: output port %q references undefined port %s", key, p.Name, r)
			}
		}
		if p.Static {
			checkStaticOutput(t, p, report)
		}
	}

	// Config ports: defined as default constants or functions of inputs.
	for _, p := range t.Config {
		if p.Def == nil {
			continue // config ports may be left to the partial spec / defaults
		}
		for _, r := range resource.Refs(p.Def) {
			if r.Sec != resource.SecInput {
				report("type %q: config port %q may only read input ports, reads %s", key, p.Name, r)
			}
			if _, ok := t.FindPort(r.Sec, r.Name); !ok {
				report("type %q: config port %q references undefined port %s", key, p.Name, r)
			}
		}
		if p.Static {
			if _, isLit := p.Def.(resource.Lit); !isLit {
				report("type %q: static config port %q must be a constant", key, p.Name)
			}
		}
	}

	if t.Health != nil {
		checkHealth(t, report)
	}
}

// checkHealth validates a health block: known probe kinds, positive
// virtual-time settings, and thresholds of at least one (a zero
// threshold would make the state machine flip on no evidence).
func checkHealth(t *resource.Type, report func(string, ...any)) {
	key, h := t.Key, t.Health
	if len(h.Probes) == 0 {
		report("type %q: health block declares no probes", key)
	}
	seen := make(map[string]bool, len(h.Probes))
	for _, kind := range h.Probes {
		switch kind {
		case resource.ProbePortOpen, resource.ProbeProcAlive,
			resource.ProbeConfigDigest, resource.ProbeCheck:
		default:
			report("type %q: unknown probe kind %q (want port-open, proc-alive, config-digest, or check)", key, kind)
		}
		if seen[kind] {
			report("type %q: duplicate probe %q", key, kind)
		}
		seen[kind] = true
	}
	if h.Interval <= 0 {
		report("type %q: health interval must be positive, got %v", key, h.Interval)
	}
	if h.Timeout <= 0 {
		report("type %q: health timeout must be positive, got %v", key, h.Timeout)
	}
	if h.FailureThreshold < 1 {
		report("type %q: health failures threshold must be at least 1, got %d", key, h.FailureThreshold)
	}
	if h.SuccessThreshold < 1 {
		report("type %q: health successes threshold must be at least 1, got %d", key, h.SuccessThreshold)
	}
}

// checkStaticOutput enforces §3.4: a static output port is a constant or
// a function of static config ports only.
func checkStaticOutput(t *resource.Type, p resource.Port, report func(string, ...any)) {
	for _, r := range resource.Refs(p.Def) {
		if r.Sec != resource.SecConfig {
			report("type %q: static output port %q may only read static config ports, reads %s", t.Key, p.Name, r)
			continue
		}
		cp, ok := t.FindPort(resource.SecConfig, r.Name)
		if !ok || !cp.Static {
			report("type %q: static output port %q reads non-static config port %q", t.Key, p.Name, r.Name)
		}
	}
}

func checkDep(reg *resource.Registry, t *resource.Type, cd resource.ClassedDep,
	mapped map[string]int, inputType map[string]resource.PortType, report func(string, ...any)) {

	key := t.Key
	d := cd.Dep
	if len(d.Alternatives) == 0 {
		report("type %q: %s dependency with no alternatives", key, cd.Class)
		return
	}

	// Condition 1: all alternative keys resolve.
	var targets []*resource.Type
	for _, alt := range d.Alternatives {
		at, ok := reg.Lookup(alt)
		if !ok {
			report("type %q: %s dependency on unknown type %q", key, cd.Class, alt)
			continue
		}
		targets = append(targets, at)
	}

	// Count this dependency's port-map range toward the exactly-once rule,
	// and check the map against each alternative's output ports.
	for outPort, inPort := range d.PortMap {
		if _, ok := mapped[inPort]; !ok {
			report("type %q: %s dependency %s maps to undefined input port %q", key, cd.Class, d, inPort)
			continue
		}
		mapped[inPort]++
		want := inputType[inPort]
		for _, at := range targets {
			op, ok := findOutputMaybeAbstract(reg, at, outPort)
			if !ok {
				report("type %q: %s dependency alternative %q has no output port %q", key, cd.Class, at.Key, outPort)
				continue
			}
			if !op.Type.AssignableTo(want) {
				report("type %q: output %q.%s (%s) not assignable to input %q (%s)",
					key, at.Key, outPort, op.Type, inPort, want)
			}
		}
	}

	// §3.4: disjuncts must expose every mapped output (identical ranges
	// is implied by sharing a single PortMap; existence was checked
	// above). Additionally, reverse port maps must name static outputs
	// of t and input ports of every alternative.
	for outPort, depIn := range d.ReversePortMap {
		op, ok := t.FindPort(resource.SecOutput, outPort)
		if !ok {
			report("type %q: reverse port map names unknown output port %q", key, outPort)
			continue
		}
		if !op.Static {
			report("type %q: reverse port map output %q must be static (§3.4)", key, outPort)
		}
		for _, at := range targets {
			ip, ok := at.FindPort(resource.SecInput, depIn)
			if !ok {
				report("type %q: reverse port map target %q has no input port %q", key, at.Key, depIn)
				continue
			}
			if !op.Type.AssignableTo(ip.Type) {
				report("type %q: reverse-mapped output %q (%s) not assignable to %q.%s (%s)",
					key, outPort, op.Type, at.Key, depIn, ip.Type)
			}
		}
	}

}

// findOutputMaybeAbstract finds an output port on a type; for abstract
// types whose frontier members declare the port, the abstract type
// itself must declare it (ports are inherited downward), so a plain
// lookup suffices — this helper exists to keep the call site readable.
func findOutputMaybeAbstract(_ *resource.Registry, t *resource.Type, name string) (resource.Port, bool) {
	return t.FindPort(resource.SecOutput, name)
}

// checkAcyclic verifies condition 4: the union of the three dependency
// orderings on resource *types* is acyclic.
func checkAcyclic(reg *resource.Registry) error {
	cycle := FindCycle(reg)
	if cycle == nil {
		return nil
	}
	names := make([]string, len(cycle))
	for i, c := range cycle {
		names[i] = c.String()
	}
	return fmt.Errorf("typecheck: dependency cycle among resource types: %v", names)
}

// FindCycle searches the union of the three dependency orderings on
// resource *types* for a cycle. It returns the offending dependency
// path in dependency order — each key depends on the next, and the key
// that closes the loop appears at both ends of its cycle — or nil if
// the union is acyclic. Dependencies on abstract types add edges to the
// abstract type; subtype edges do not count (a subtype may legitimately
// depend on its supertype's siblings).
func FindCycle(reg *resource.Registry) []resource.Key {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[resource.Key]int, reg.Len())
	var cycle []resource.Key

	var visit func(k resource.Key) bool
	visit = func(k resource.Key) bool {
		switch color[k] {
		case gray:
			cycle = append(cycle, k)
			return false
		case black:
			return true
		}
		color[k] = gray
		t, ok := reg.Lookup(k)
		if ok {
			for _, cd := range t.Deps() {
				for _, alt := range cd.Dep.Alternatives {
					if _, known := reg.Lookup(alt); !known {
						continue // reported by condition 1
					}
					if !visit(alt) {
						cycle = append(cycle, k)
						return false
					}
				}
			}
		}
		color[k] = black
		return true
	}

	for _, k := range reg.Keys() {
		if !visit(k) {
			// The DFS pushed the cycle innermost-first; reverse it into
			// dependency order for rendering.
			out := make([]resource.Key, len(cycle))
			for i, c := range cycle {
				out[len(cycle)-1-i] = c
			}
			return out
		}
	}
	return nil
}
