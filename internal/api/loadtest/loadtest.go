// Package loadtest drives the control plane hard enough to prove it is
// one: thousands of concurrent POST /v1/configure submissions through a
// real httptest HTTP server, with per-request latency recorded and the
// solver-effort fields of every response parsed, so the caller can
// assert the two claims the resident architecture makes —
//
//   - throughput: the warm pool sustains thousands of spec submissions
//     per second in-process (p50/p95/p99 reported);
//   - warm wins: a request served by a warm session does strictly fewer
//     SAT propagations than the cold solve of the same specification
//     (the per-call sat.Stats delta carried in the response).
//
// The harness is a library, not a test, so the CLI e2e test, the root
// load test (which emits BENCH_serve.json), and future soaks share it.
package loadtest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures a run.
type Options struct {
	// Handler is the control plane under test (api.Server.Handler()).
	// Exactly one of Handler or BaseURL must be set.
	Handler http.Handler
	// BaseURL targets an already-listening server instead.
	BaseURL string
	// Bodies are the POST /v1/configure request bodies, cycled over by
	// request index; distinct bodies exercise distinct pool keys.
	Bodies [][]byte
	// Requests is the total number of submissions (default 1000).
	Requests int
	// Concurrency is the number of in-flight workers (default 16).
	Concurrency int
}

// SpecStats aggregates responses per request body, so warm-vs-cold
// propagation comparisons never cross formulas of different sizes.
type SpecStats struct {
	Body         int   `json:"body"`
	WarmHits     int   `json:"warm_hits"`
	Cold         int   `json:"cold"`
	MinColdProps int64 `json:"min_cold_propagations"`
	MaxColdProps int64 `json:"max_cold_propagations"`
	MinWarmProps int64 `json:"min_warm_propagations"`
	MaxWarmProps int64 `json:"max_warm_propagations"`
}

// WarmStrictlyCheaper reports whether every warm solve of this spec did
// strictly fewer propagations than every cold solve of it (vacuously
// false with no warm hits — the caller should assert WarmHits > 0).
func (s SpecStats) WarmStrictlyCheaper() bool {
	return s.WarmHits > 0 && s.Cold > 0 && s.MaxWarmProps < s.MinColdProps
}

// Result is one run's aggregate.
type Result struct {
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	Errors      int     `json:"errors"`
	FirstError  string  `json:"first_error,omitempty"`
	WallMs      float64 `json:"wall_ms"`
	ReqPerSec   float64 `json:"req_per_sec"`
	P50Ns       int64   `json:"p50_ns"`
	P95Ns       int64   `json:"p95_ns"`
	P99Ns       int64   `json:"p99_ns"`
	MaxNs       int64   `json:"max_ns"`
	WarmHits    int     `json:"warm_hits"`
	Cold        int     `json:"cold"`
	WarmHitRate float64 `json:"warm_hit_rate"`
	// PerSpec holds the per-body warm/cold propagation envelope.
	PerSpec []SpecStats `json:"per_spec"`
}

// configureReply is the slice of the response schema the harness needs.
type configureReply struct {
	Warm   bool `json:"warm"`
	Solver struct {
		Propagations int64 `json:"propagations"`
	} `json:"solver"`
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// sample is one request's outcome.
type sample struct {
	body    int
	latency time.Duration
	warm    bool
	props   int64
	err     error
}

// Run fires Options.Requests concurrent configure submissions and
// aggregates latency percentiles and warm/cold solver effort.
func Run(opts Options) (Result, error) {
	if len(opts.Bodies) == 0 {
		return Result{}, fmt.Errorf("loadtest: Options.Bodies is empty")
	}
	if opts.Requests <= 0 {
		opts.Requests = 1000
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 16
	}

	base := opts.BaseURL
	client := http.DefaultClient
	if base == "" {
		if opts.Handler == nil {
			return Result{}, fmt.Errorf("loadtest: need Handler or BaseURL")
		}
		srv := httptest.NewServer(opts.Handler)
		defer srv.Close()
		base = srv.URL
		// The default transport caps idle conns per host at 2; without
		// raising it every worker pays a fresh TCP handshake per
		// request and the run measures the dialer, not the server.
		tr := srv.Client().Transport.(*http.Transport).Clone()
		tr.MaxIdleConns = opts.Concurrency * 2
		tr.MaxIdleConnsPerHost = opts.Concurrency * 2
		client = &http.Client{Transport: tr}
		defer tr.CloseIdleConnections()
	}
	url := base + "/v1/configure"

	samples := make([]sample, opts.Requests)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= opts.Requests {
					return
				}
				bodyIdx := i % len(opts.Bodies)
				samples[i] = oneRequest(client, url, bodyIdx, opts.Bodies[bodyIdx])
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	return aggregate(samples, opts.Concurrency, wall), nil
}

func oneRequest(client *http.Client, url string, bodyIdx int, body []byte) sample {
	s := sample{body: bodyIdx}
	t0 := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		s.err = err
		return s
	}
	var reply configureReply
	err = json.NewDecoder(resp.Body).Decode(&reply)
	resp.Body.Close()
	s.latency = time.Since(t0)
	switch {
	case err != nil:
		s.err = fmt.Errorf("decoding response: %v", err)
	case resp.StatusCode != http.StatusOK:
		s.err = fmt.Errorf("status %d: %s: %s", resp.StatusCode, reply.Error.Code, reply.Error.Message)
	default:
		s.warm = reply.Warm
		s.props = reply.Solver.Propagations
	}
	return s
}

func aggregate(samples []sample, concurrency int, wall time.Duration) Result {
	res := Result{Requests: len(samples), Concurrency: concurrency}
	res.WallMs = float64(wall.Nanoseconds()) / 1e6
	if wall > 0 {
		res.ReqPerSec = float64(len(samples)) / wall.Seconds()
	}

	perSpec := map[int]*SpecStats{}
	latencies := make([]int64, 0, len(samples))
	for _, s := range samples {
		if s.err != nil {
			res.Errors++
			if res.FirstError == "" {
				res.FirstError = s.err.Error()
			}
			continue
		}
		latencies = append(latencies, s.latency.Nanoseconds())
		ps, ok := perSpec[s.body]
		if !ok {
			ps = &SpecStats{Body: s.body}
			perSpec[s.body] = ps
		}
		if s.warm {
			res.WarmHits++
			ps.WarmHits++
			if ps.WarmHits == 1 || s.props < ps.MinWarmProps {
				ps.MinWarmProps = s.props
			}
			if s.props > ps.MaxWarmProps {
				ps.MaxWarmProps = s.props
			}
		} else {
			res.Cold++
			ps.Cold++
			if ps.Cold == 1 || s.props < ps.MinColdProps {
				ps.MinColdProps = s.props
			}
			if s.props > ps.MaxColdProps {
				ps.MaxColdProps = s.props
			}
		}
	}
	if ok := res.WarmHits + res.Cold; ok > 0 {
		res.WarmHitRate = float64(res.WarmHits) / float64(ok)
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	res.P50Ns = percentile(latencies, 0.50)
	res.P95Ns = percentile(latencies, 0.95)
	res.P99Ns = percentile(latencies, 0.99)
	if n := len(latencies); n > 0 {
		res.MaxNs = latencies[n-1]
	}

	bodies := make([]int, 0, len(perSpec))
	for b := range perSpec {
		bodies = append(bodies, b)
	}
	sort.Ints(bodies)
	for _, b := range bodies {
		res.PerSpec = append(res.PerSpec, *perSpec[b])
	}
	return res
}

// percentile returns the q-th percentile of sorted ns latencies
// (nearest-rank).
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
