package api

// Behavioral tests over the control plane's handler: warm-vs-cold
// configure, deploy, stacks with CAS, status, and metrics. The golden
// contract tests (golden_test.go) pin exact bodies; these assert
// semantics.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"engage/internal/deploy"
	"engage/internal/driver"
	"engage/internal/fault"
	"engage/internal/rdl"
	"engage/internal/resource"
	"engage/internal/spec"
)

// testRDL is a three-tier chain (app → db inside one server) with the
// database abstract over two versions, mirroring the bundled library's
// Java/JDK/JRE pattern: a partial that does not pin the database forces
// a real solver choice (so warm-vs-cold effort is measurable), and a
// partial that pins both versions at once breaks App's exactly-one
// dependency, giving the tests a genuinely unsatisfiable specification
// with a minimal-core story.
const testRDL = `
abstract resource "Server" {}
resource "Linux 1.0" extends "Server" {}
abstract resource "Db" {
    inside "Server"
    config { port: tcp_port = 5432 }
    output { db: struct { port: tcp_port } = { port: config.port } }
    health {
        probe "port-open"
        probe "proc-alive"
        probe "config-digest"
        interval "30s"
        timeout "2s"
        failures 3
        successes 2
    }
}
resource "Db 1.0" extends "Db" {}
resource "Db 2.0" extends "Db" {}
resource "App 1.0" {
    inside "Server"
    input { db: struct { port: tcp_port } }
    config { port: tcp_port = 9000 }
    env "Db" { db -> db }
    health {
        probe "port-open"
        probe "proc-alive"
        probe "check"
        interval "30s"
        timeout "2s"
        failures 3
        successes 2
    }
}
`

func testDrivers(t testing.TB) *deploy.DriverRegistry {
	t.Helper()
	dr := deploy.NewDriverRegistry()
	daemon := func(name string) func(*driver.Context) *driver.StateMachine {
		return func(ctx *driver.Context) *driver.StateMachine {
			spawn := func(c *driver.Context) error {
				p, err := c.Machine.StartProcess(name, name+" --serve", c.Instance.Config["port"].Int)
				if err != nil {
					return err
				}
				c.PutPID("daemon", p.PID)
				c.Charge(2 * time.Second)
				return nil
			}
			stop := func(c *driver.Context) error {
				pid, _ := c.PID("daemon")
				return c.Machine.StopProcess(pid)
			}
			return driver.ServiceMachine(nil, spawn, stop, spawn, nil)
		}
	}
	dr.RegisterName("Db", daemon("dbd"))
	dr.RegisterName("App", daemon("appd"))
	return dr
}

// newTestServer builds a control plane over testRDL with a pinned
// clock, so status responses are deterministic.
func newTestServer(t testing.TB) *Server {
	t.Helper()
	reg, err := rdl.ParseAndResolve(map[string]string{"api_test.rdl": testRDL})
	if err != nil {
		t.Fatal(err)
	}
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	s, err := New(Options{
		Registry: reg,
		Drivers:  testDrivers(t),
		Now:      func() time.Time { return epoch },
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// webPartial is the satisfiable request shape; port parameterizes the
// app so soak tests can toggle between distinct desired states.
func webPartial(appPort int) *spec.Partial {
	p := &spec.Partial{}
	p.Add("server", resource.MakeKey("Linux", "1.0"))
	p.Add("db", resource.MakeKey("Db", "1.0")).In("server")
	p.Add("app", resource.MakeKey("App", "1.0")).In("server").
		Set("port", resource.PortV(appPort))
	return p
}

// choicePartial leaves the database unpinned, so the solver must choose
// a Db version: the cold solve does real search, which the warm path's
// zero-effort model reuse is measured against.
func choicePartial() *spec.Partial {
	p := &spec.Partial{}
	p.Add("server", resource.MakeKey("Linux", "1.0"))
	p.Add("app", resource.MakeKey("App", "1.0")).In("server")
	return p
}

// unsatPartial pins both Db versions in one server, breaking App's
// exactly-one dependency.
func unsatPartial() *spec.Partial {
	p := &spec.Partial{}
	p.Add("server", resource.MakeKey("Linux", "1.0"))
	p.Add("db1", resource.MakeKey("Db", "1.0")).In("server")
	p.Add("db2", resource.MakeKey("Db", "2.0")).In("server")
	p.Add("app", resource.MakeKey("App", "1.0")).In("server")
	return p
}

// body marshals a request payload.
func body(t testing.TB, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// do executes one request against the handler and decodes the JSON
// response into a generic map.
func do(t testing.TB, h http.Handler, method, path string, payload []byte) (int, map[string]any, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if payload == nil {
		rd = bytes.NewReader(nil)
	} else {
		rd = bytes.NewReader(payload)
	}
	req := httptest.NewRequest(method, path, rd)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	raw := rw.Body.Bytes()
	var decoded map[string]any
	// The mux's own 404/405 responses are plain text; only handler
	// responses are JSON.
	if len(raw) > 0 && raw[0] == '{' {
		if err := json.Unmarshal(raw, &decoded); err != nil {
			t.Fatalf("%s %s: response is not JSON: %v\n%s", method, path, err, raw)
		}
	}
	return rw.Code, decoded, raw
}

func configureBody(t testing.TB, p *spec.Partial) []byte {
	return body(t, map[string]any{"partial": p})
}

func TestConfigureColdThenWarm(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	payload := configureBody(t, choicePartial())

	st, cold, _ := do(t, h, "POST", "/v1/configure", payload)
	if st != http.StatusOK {
		t.Fatalf("cold configure: status %d: %v", st, cold)
	}
	if cold["warm"] != false {
		t.Fatalf("first solve reported warm: %v", cold["warm"])
	}
	st, warm, _ := do(t, h, "POST", "/v1/configure", payload)
	if st != http.StatusOK || warm["warm"] != true {
		t.Fatalf("second solve: status %d warm=%v, want warm hit", st, warm["warm"])
	}

	coldProps := cold["solver"].(map[string]any)["propagations"].(float64)
	warmProps := warm["solver"].(map[string]any)["propagations"].(float64)
	if coldProps <= 0 {
		t.Errorf("cold solve of a choiceful spec did %v propagations, want > 0", coldProps)
	}
	if !(warmProps < coldProps) {
		t.Errorf("warm solve did %v propagations, cold %v — warm must be strictly cheaper", warmProps, coldProps)
	}
	if cold["instances"] != warm["instances"] {
		t.Errorf("warm and cold disagree on instances: %v vs %v", warm["instances"], cold["instances"])
	}
	// The rebuilt full specs must be byte-identical.
	cf, _ := json.Marshal(cold["full"])
	wf, _ := json.Marshal(warm["full"])
	if !bytes.Equal(cf, wf) {
		t.Error("warm rebuild produced a different full specification")
	}

	ps := s.PoolStats()
	if ps.Hits != 1 || ps.Misses != 1 || ps.Idle != 1 {
		t.Errorf("pool stats = %+v, want 1 hit / 1 miss / 1 idle", ps)
	}
}

func TestConfigureUnsatCarriesStory(t *testing.T) {
	s := newTestServer(t)
	st, resp, _ := do(t, s.Handler(), "POST", "/v1/configure", configureBody(t, unsatPartial()))
	if st != http.StatusUnprocessableEntity {
		t.Fatalf("unsat spec: status %d: %v", st, resp)
	}
	errObj := resp["error"].(map[string]any)
	if errObj["code"] != "unsat" {
		t.Errorf("error code = %v, want unsat", errObj["code"])
	}
	story, _ := errObj["story"].(string)
	if !strings.Contains(story, "jointly unsatisfiable") {
		t.Errorf("story missing conflict narrative:\n%s", story)
	}
	core, _ := errObj["core"].([]any)
	if len(core) == 0 {
		t.Error("unsat body has no minimal core")
	}
}

func TestConfigureMalformedJSON(t *testing.T) {
	s := newTestServer(t)
	st, resp, _ := do(t, s.Handler(), "POST", "/v1/configure", []byte(`{"partial": [`))
	if st != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d: %v", st, resp)
	}
	if code := resp["error"].(map[string]any)["code"]; code != "bad_request" {
		t.Errorf("error code = %v, want bad_request", code)
	}
}

// A structurally broken partial — App with no inside, so the hypergraph
// cannot even be generated — is the client's fault: 422 invalid_spec,
// never a 500.
func TestConfigureInvalidSpec(t *testing.T) {
	s := newTestServer(t)
	st, resp, _ := do(t, s.Handler(), "POST", "/v1/configure",
		body(t, map[string]any{"partial": []map[string]any{{"id": "app", "key": "App 1.0"}}}))
	if st != http.StatusUnprocessableEntity {
		t.Fatalf("invalid spec: status %d, want 422: %v", st, resp)
	}
	if code := resp["error"].(map[string]any)["code"]; code != "invalid_spec" {
		t.Errorf("error code = %v, want invalid_spec", code)
	}
}

func TestDeployEndpoint(t *testing.T) {
	s := newTestServer(t)
	st, resp, _ := do(t, s.Handler(), "POST", "/v1/deploy", configureBody(t, webPartial(9000)))
	if st != http.StatusOK {
		t.Fatalf("deploy: status %d: %v", st, resp)
	}
	if resp["instances"].(float64) != 3 {
		t.Errorf("deployed %v instances, want 3", resp["instances"])
	}
	if resp["elapsed_virtual_ns"].(float64) <= 0 {
		t.Error("deploy reported no virtual elapsed time")
	}
	for id, state := range resp["status"].(map[string]any) {
		if state != "active" && state != "installed" {
			t.Errorf("instance %s landed in state %v", id, state)
		}
	}
}

func TestLintEndpoint(t *testing.T) {
	s := newTestServer(t)
	st, resp, _ := do(t, s.Handler(), "POST", "/v1/lint", body(t, map[string]any{"partial": unsatPartial()}))
	if st != http.StatusOK {
		t.Fatalf("lint: status %d: %v", st, resp)
	}
	if resp["unsat"] == nil {
		t.Error("lint of an unsat spec carries no unsat explanation")
	}
}

func TestStackApplyCASAndReconcile(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()

	// Create with expect_version 0 (must-not-exist).
	st, resp, _ := do(t, h, "POST", "/v1/stacks/web",
		body(t, map[string]any{"action": "apply", "partial": webPartial(9000), "expect_version": 0}))
	if st != http.StatusOK {
		t.Fatalf("apply: status %d: %v", st, resp)
	}
	if resp["version"].(float64) != 1 || resp["stack_version"].(float64) != 1 {
		t.Fatalf("apply response: %v", resp)
	}

	// Re-creating conflicts: 409 with the current version.
	st, resp, _ = do(t, h, "POST", "/v1/stacks/web",
		body(t, map[string]any{"action": "apply", "partial": webPartial(9000), "expect_version": 0}))
	if st != http.StatusConflict {
		t.Fatalf("stale create: status %d: %v", st, resp)
	}
	if have := resp["error"].(map[string]any)["have"].(float64); have != 1 {
		t.Errorf("conflict body have = %v, want 1", have)
	}

	// Changed desired state with the right token: store CAS version and
	// stack version both advance.
	st, resp, _ = do(t, h, "POST", "/v1/stacks/web",
		body(t, map[string]any{"action": "apply", "partial": webPartial(9001), "expect_version": 1}))
	if st != http.StatusOK {
		t.Fatalf("reapply: status %d: %v", st, resp)
	}
	if resp["version"].(float64) != 2 || resp["stack_version"].(float64) != 2 {
		t.Fatalf("reapply response: %v", resp)
	}

	// GET returns the record with live bindings.
	st, resp, _ = do(t, h, "GET", "/v1/stacks/web", nil)
	if st != http.StatusOK {
		t.Fatalf("get: status %d", st)
	}
	if resp["live"] != true {
		t.Error("stack should be live")
	}
	bindings := resp["stack"].(map[string]any)["bindings"].(map[string]any)
	if len(bindings) != 3 {
		t.Errorf("record has %d bindings, want 3", len(bindings))
	}

	// Inject real drift into the live world, then reconcile over HTTP.
	e := s.entry("web")
	plan := fault.NewPlan(7).DriftWithProbability(1)
	drifted := 0
	for _, target := range e.applied.DriftTargets() {
		if _, ok := plan.InjectDrift(target); ok {
			drifted++
		}
	}
	if drifted == 0 {
		t.Fatal("drift injection touched nothing")
	}
	st, resp, _ = do(t, h, "POST", "/v1/stacks/web",
		body(t, map[string]any{"action": "reconcile", "expect_version": 2}))
	if st != http.StatusOK {
		t.Fatalf("reconcile: status %d: %v", st, resp)
	}
	if resp["converged"] != true {
		t.Fatalf("reconcile did not converge: %v", resp)
	}
	rounds := resp["rounds"].([]any)
	first := rounds[0].(map[string]any)
	if len(first["drifts"].([]any)) == 0 {
		t.Error("first round detected no drift despite injection")
	}
	if first["repaired"] != true {
		t.Errorf("first round not repaired: %v", first)
	}
	if resp["version"].(float64) != 3 {
		t.Errorf("reconcile version = %v, want 3", resp["version"])
	}

	// Unknown stacks 404 on GET and reconcile.
	if st, _, _ = do(t, h, "GET", "/v1/stacks/nope", nil); st != http.StatusNotFound {
		t.Errorf("GET unknown stack: status %d, want 404", st)
	}
	st, _, _ = do(t, h, "POST", "/v1/stacks/nope", body(t, map[string]any{"action": "reconcile"}))
	if st != http.StatusNotFound {
		t.Errorf("reconcile unknown stack: status %d, want 404", st)
	}

	// List shows the one stack at its final version.
	st, resp, _ = do(t, h, "GET", "/v1/stacks", nil)
	if st != http.StatusOK {
		t.Fatalf("list: status %d", st)
	}
	stacks := resp["stacks"].([]any)
	if len(stacks) != 1 {
		t.Fatalf("list has %d stacks, want 1", len(stacks))
	}
	if v := stacks[0].(map[string]any)["version"].(float64); v != 3 {
		t.Errorf("listed version = %v, want 3", v)
	}
}

func TestStatusAndMetrics(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()

	// Drive one warm pair so the instruments exist; the choiceful spec
	// guarantees nonzero solver effort on the cold leg.
	payload := configureBody(t, choicePartial())
	do(t, h, "POST", "/v1/configure", payload)
	do(t, h, "POST", "/v1/configure", payload)

	st, resp, _ := do(t, h, "GET", "/v1/status", nil)
	if st != http.StatusOK {
		t.Fatalf("status: %d", st)
	}
	if resp["requests"].(float64) != 3 {
		t.Errorf("status requests = %v, want 3 (2 configures + this)", resp["requests"])
	}
	pool := resp["pool"].(map[string]any)
	if pool["hits"].(float64) != 1 || pool["misses"].(float64) != 1 {
		t.Errorf("status pool = %v", pool)
	}

	st, resp, _ = do(t, h, "GET", "/metrics", nil)
	if st != http.StatusOK {
		t.Fatalf("metrics: %d", st)
	}
	counters := resp["counters"].(map[string]any)
	if counters["api.http.configure.requests"].(float64) != 2 {
		t.Errorf("configure request counter = %v, want 2", counters["api.http.configure.requests"])
	}
	if _, ok := resp["histograms"].(map[string]any)["api.http.configure.latency_ns"]; !ok {
		t.Error("metrics missing the configure latency histogram")
	}
	// Solver effort flowed into the resident registry too.
	if counters["sat.propagations"].(float64) <= 0 {
		t.Error("metrics missing solver effort counters")
	}
}

func TestMethodAndRouteErrors(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	if st, _, _ := do(t, h, "GET", "/v1/configure", nil); st != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/configure: status %d, want 405", st)
	}
	if st, _, _ := do(t, h, "GET", "/v1/nope", nil); st != http.StatusNotFound {
		t.Errorf("GET /v1/nope: status %d, want 404", st)
	}
}

// TestStackApplyUnsatAndEmpty covers the stack error contract.
func TestStackApplyUnsatAndEmpty(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	st, resp, _ := do(t, h, "POST", "/v1/stacks/bad",
		body(t, map[string]any{"action": "apply", "partial": unsatPartial()}))
	if st != http.StatusUnprocessableEntity {
		t.Fatalf("unsat stack apply: status %d: %v", st, resp)
	}
	st, _, _ = do(t, h, "POST", "/v1/stacks/bad", body(t, map[string]any{"action": "apply"}))
	if st != http.StatusBadRequest {
		t.Errorf("apply without partial: status %d, want 400", st)
	}
	st, _, _ = do(t, h, "POST", "/v1/stacks/bad", body(t, map[string]any{"action": "explode"}))
	if st != http.StatusBadRequest {
		t.Errorf("unknown action: status %d, want 400", st)
	}
	// Nothing was stored for the failed applies.
	if s.Store().Len() != 0 {
		t.Errorf("failed applies left %d records", s.Store().Len())
	}
}

// TestHealthEndpoint drives the fleet health contract over HTTP: a
// fresh server is vacuously healthy, an applied stack proves itself
// healthy on demand, a sick daemon flips the endpoint to 503 after the
// failure threshold, and a reconcile (which replaces the daemon and
// cures the PID-keyed sickness) brings it back to 200.
func TestHealthEndpoint(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()

	st, resp, _ := do(t, h, "GET", "/v1/health", nil)
	if st != http.StatusOK || resp["state"] != "healthy" {
		t.Fatalf("fresh health: status %d state %v", st, resp["state"])
	}
	if len(resp["stacks"].([]any)) != 0 {
		t.Fatalf("fresh health lists stacks: %v", resp["stacks"])
	}

	do(t, h, "POST", "/v1/stacks/web",
		body(t, map[string]any{"action": "apply", "partial": webPartial(9000)}))
	st, resp, _ = do(t, h, "GET", "/v1/health", nil)
	if st != http.StatusOK || resp["state"] != "healthy" {
		t.Fatalf("applied health: status %d state %v", st, resp["state"])
	}
	stacks := resp["stacks"].([]any)
	if len(stacks) != 1 {
		t.Fatalf("health lists %d stacks, want 1", len(stacks))
	}
	sum := stacks[0].(map[string]any)["summary"].(map[string]any)
	if sum["healthy"].(float64) != 2 {
		t.Fatalf("summary = %v, want 2 healthy (db + app; passive server untracked)", sum)
	}

	// Sicken the app daemon behind the API's back: the process keeps
	// running, only the synthetic check probe sees it.
	e := s.entry("web")
	plan := fault.NewPlan(7).SickenPersistent("", "app")
	e.applied.Health.Source = plan
	now := e.world.Clock.Now()
	injected := false
	for _, tgt := range e.applied.DriftTargets() {
		if _, ok := plan.InjectSickness(tgt, now); ok {
			injected = true
		}
	}
	if !injected {
		t.Fatal("sickness did not fire on app")
	}

	// Each GET forces a probe round; the third consecutive failure
	// crosses the declared threshold and the endpoint turns 503.
	for i := 0; i < 2; i++ {
		if st, resp, _ = do(t, h, "GET", "/v1/health", nil); st != http.StatusOK {
			t.Fatalf("round %d: status %d (state %v) before threshold", i+1, st, resp["state"])
		}
	}
	st, resp, _ = do(t, h, "GET", "/v1/health", nil)
	if st != http.StatusServiceUnavailable || resp["state"] != "unhealthy" {
		t.Fatalf("sick health: status %d state %v, want 503 unhealthy", st, resp["state"])
	}

	// Reconcile treats Unhealthy as drift and replaces the daemon, which
	// cures the PID-keyed sickness; the replacement re-proves itself on
	// the next on-demand round.
	st, resp, _ = do(t, h, "POST", "/v1/stacks/web", body(t, map[string]any{"action": "reconcile"}))
	if st != http.StatusOK || resp["converged"] != true {
		t.Fatalf("reconcile: status %d: %v", st, resp)
	}
	first := resp["rounds"].([]any)[0].(map[string]any)
	var sawHealthDrift bool
	for _, d := range first["drifts"].([]any) {
		if dm := d.(map[string]any); dm["kind"] == "health" && dm["instance"] == "app" {
			sawHealthDrift = true
		}
	}
	if !sawHealthDrift {
		t.Errorf("reconcile saw no health drift: %v", first["drifts"])
	}
	st, resp, _ = do(t, h, "GET", "/v1/health", nil)
	if st != http.StatusOK || resp["state"] != "healthy" {
		t.Errorf("post-repair health: status %d state %v, want 200 healthy", st, resp["state"])
	}
}

// TestMetricsPrometheusNegotiation: Accept text/plain yields the
// exposition format with engage_-prefixed families; no Accept header
// keeps the JSON snapshot byte-for-byte.
func TestMetricsPrometheusNegotiation(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	payload := configureBody(t, choicePartial())
	do(t, h, "POST", "/v1/configure", payload)
	do(t, h, "POST", "/v1/configure", payload)

	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != http.StatusOK {
		t.Fatalf("prometheus scrape: status %d", rw.Code)
	}
	if ct := rw.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q, want text/plain exposition", ct)
	}
	text := rw.Body.String()
	for _, want := range []string{
		"engage_api_http_configure_requests 2",
		"# TYPE engage_api_http_configure_latency_ns histogram",
		"engage_sat_propagations",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	// Default representation stays JSON.
	st, resp, raw := do(t, h, "GET", "/metrics", nil)
	if st != http.StatusOK || resp["counters"] == nil {
		t.Fatalf("JSON scrape: status %d body %s", st, raw)
	}
}

// silence unused-import nits if fmt drops out during edits.
var _ = fmt.Sprintf
