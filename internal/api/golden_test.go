package api

// Golden contract tests: each fixture drives a scripted request
// sequence against a fresh control plane over testRDL and pins the full
// exchange — method, path, request body, status, response body — as a
// committed golden file. The sequential solver, the pinned clock, and
// sorted JSON map rendering make every response byte-deterministic.
// Regenerate deliberately with
// `go test ./internal/api -run Golden -update`.

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenStep is one recorded exchange. ContentType is recorded only
// for requests that sent an Accept header, pinning which
// representation the negotiation served.
type goldenStep struct {
	Method      string          `json:"method"`
	Path        string          `json:"path"`
	Accept      string          `json:"accept,omitempty"`
	Body        json.RawMessage `json:"body,omitempty"`
	Status      int             `json:"status"`
	ContentType string          `json:"content_type,omitempty"`
	Response    json.RawMessage `json:"response,omitempty"`
}

// scriptReq is one request of a fixture script.
type scriptReq struct {
	method string
	path   string
	accept string
	body   []byte
}

func goldenScripts(t *testing.T) map[string][]scriptReq {
	post := func(path string, v any) scriptReq {
		return scriptReq{method: "POST", path: path, body: body(t, v)}
	}
	get := func(path string) scriptReq { return scriptReq{method: "GET", path: path} }
	return map[string][]scriptReq{
		// The happy path: a choiceful configure, cold.
		"configure_ok": {post("/v1/configure", map[string]any{"partial": choicePartial()})},
		// Unsat spec → 422 with the MUS story and structured core.
		"configure_unsat": {post("/v1/configure", map[string]any{"partial": unsatPartial()})},
		// Malformed JSON → 400 error envelope.
		"configure_malformed": {{method: "POST", path: "/v1/configure", body: []byte(`{"partial": [`)}},
		// Structurally broken partial (dangling inside) → 422 invalid_spec:
		// the client's spec is at fault, not the server.
		"configure_invalid": {post("/v1/configure", map[string]any{
			"partial": []map[string]any{{"id": "app", "key": "App 1.0"}},
		})},
		// Lint of the unsat spec: diagnostics with the same explanation.
		"lint": {post("/v1/lint", map[string]any{"partial": unsatPartial()})},
		// Configure + deploy on a fresh simulated world.
		"deploy": {post("/v1/deploy", map[string]any{"partial": webPartial(9000)})},
		// Stack lifecycle: create (CAS expect 0), stale re-create → 409
		// conflict with the current version, read back, list, and a 404.
		"stacks": {
			post("/v1/stacks/web", map[string]any{"action": "apply", "partial": webPartial(9000), "expect_version": 0}),
			post("/v1/stacks/web", map[string]any{"action": "apply", "partial": webPartial(9000), "expect_version": 0}),
			get("/v1/stacks/web"),
			get("/v1/stacks"),
			get("/v1/stacks/nope"),
		},
		// Status after one configure, with the clock pinned.
		"status": {
			post("/v1/configure", map[string]any{"partial": webPartial(9000)}),
			get("/v1/status"),
		},
		// A fresh server's metrics snapshot (no instruments yet).
		"metrics_fresh": {get("/metrics")},
		// A fresh control plane is vacuously healthy: 200, no stacks.
		"health_fresh": {get("/v1/health")},
		// Apply a stack whose daemons declare probes, then read the fleet
		// rollup: /v1/health runs the probe rounds on demand, so the
		// freshly-applied instances prove themselves Healthy in the same
		// request.
		"health_deployed": {
			post("/v1/stacks/web", map[string]any{"action": "apply", "partial": webPartial(9000), "expect_version": 0}),
			get("/v1/health"),
		},
		// Content negotiation on /metrics: Accept text/plain selects the
		// Prometheus exposition (empty on a fresh registry — the
		// negotiated Content-Type is the contract here; metrics_fresh
		// pins the JSON default, and a second step would record the
		// first's wall-clock latency histogram, so one step it is).
		"metrics_prometheus": {
			{method: "GET", path: "/metrics", accept: "text/plain"},
		},
	}
}

func TestGoldenContracts(t *testing.T) {
	for name, script := range goldenScripts(t) {
		t.Run(name, func(t *testing.T) {
			s := newTestServer(t)
			h := s.Handler()
			steps := make([]goldenStep, 0, len(script))
			for _, req := range script {
				var rd *bytes.Reader
				if req.body == nil {
					rd = bytes.NewReader(nil)
				} else {
					rd = bytes.NewReader(req.body)
				}
				r := httptest.NewRequest(req.method, req.path, rd)
				if req.accept != "" {
					r.Header.Set("Accept", req.accept)
				}
				rw := httptest.NewRecorder()
				h.ServeHTTP(rw, r)
				step := goldenStep{
					Method:   req.method,
					Path:     req.path,
					Accept:   req.accept,
					Body:     rawOrNil(req.body),
					Status:   rw.Code,
					Response: rawOrNil(rw.Body.Bytes()),
				}
				if req.accept != "" {
					step.ContentType = rw.Header().Get("Content-Type")
				}
				steps = append(steps, step)
			}
			got, err := json.MarshalIndent(steps, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')

			path := filepath.Join("testdata", "http", name+".golden.json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("API contract for %q changed; run with -update if intended.\n--- got ---\n%s\n--- want ---\n%s",
					name, got, want)
			}
		})
	}
}

// rawOrNil wraps bytes as a RawMessage, turning invalid JSON (the
// malformed-body fixture, plain-text mux errors) into a JSON string so
// the golden file stays one valid JSON document.
func rawOrNil(b []byte) json.RawMessage {
	if len(b) == 0 {
		return nil
	}
	if json.Valid(b) {
		return json.RawMessage(b)
	}
	quoted, _ := json.Marshal(string(b))
	return json.RawMessage(quoted)
}

// TestGoldenStability replays the configure_ok fixture against a warm
// server: the second, warm response must differ from the cold golden
// response only in the warm flag, solver stats, and session solve
// count — the specification payload is pinned byte-identical.
func TestGoldenStability(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	payload := configureBody(t, choicePartial())
	_, cold, _ := do(t, h, "POST", "/v1/configure", payload)
	_, warm, _ := do(t, h, "POST", "/v1/configure", payload)
	for _, volatile := range []string{"warm", "solver", "session_solves"} {
		delete(cold, volatile)
		delete(warm, volatile)
	}
	cb, _ := json.Marshal(cold)
	wb, _ := json.Marshal(warm)
	if !bytes.Equal(cb, wb) {
		t.Errorf("warm response payload drifted from cold:\ncold: %s\nwarm: %s", cb, wb)
	}
}

var _ = http.StatusOK
