package api

// The warm-session pool. A configuration request is keyed by the
// fingerprint of (resolved library, canonical partial specification);
// repeat submissions of the same spec check a warm incremental SAT
// session out of the pool and re-solve on it — learned clauses, VSIDS
// activity, and saved phases carry over, so the warm solve does
// strictly fewer propagations than the cold one (PR 1's 13–342× win,
// now amortized across HTTP requests instead of dying with each CLI
// process).
//
// Sessions are exclusive while checked out: a *config.Session is
// single-goroutine state, so the pool hands each one to at most one
// request at a time and concurrent requests for the same key either
// take another idle session or go cold and donate their session on the
// way out. A request that fails or panics while holding a session must
// Discard it — a half-solved solver stack is poisoned state nobody may
// ever check out again (the audit test proves this).

import (
	"sync"

	"engage/internal/config"
	"engage/internal/spec"
)

// PooledSession is one warm session plus the request shape it answers.
type PooledSession struct {
	// Key is the (library, partial) fingerprint this session solves.
	Key string
	// Partial is the canonical partial specification the session was
	// built from; warm rebuilds use it rather than the request's
	// equal-by-fingerprint copy.
	Partial *spec.Partial
	// Session is the warm engine state: hypergraph, encoded problem,
	// incremental solver, last model.
	Session *config.Session
	// Solves counts warm re-solves served by this session.
	Solves int64
}

// PoolStats is a point-in-time view of pool effectiveness.
type PoolStats struct {
	Idle     int   `json:"idle"`      // sessions parked and ready
	Keys     int   `json:"keys"`      // distinct request shapes pooled
	Hits     int64 `json:"hits"`      // checkouts served warm
	Misses   int64 `json:"misses"`    // checkouts that went cold
	Discards int64 `json:"discards"`  // sessions dropped (error/panic)
	Evicted  int64 `json:"evictions"` // returns dropped by the idle cap
}

// sessionPool is the concurrent warm-session cache.
type sessionPool struct {
	mu      sync.Mutex
	idle    map[string][]*PooledSession
	maxIdle int // per-key idle cap
	stats   PoolStats
}

func newSessionPool(maxIdle int) *sessionPool {
	if maxIdle <= 0 {
		maxIdle = 4
	}
	return &sessionPool{idle: make(map[string][]*PooledSession), maxIdle: maxIdle}
}

// Checkout removes and returns an idle session for key, or nil when the
// request must solve cold (and should Return its fresh session after).
func (p *sessionPool) Checkout(key string) *PooledSession {
	p.mu.Lock()
	defer p.mu.Unlock()
	q := p.idle[key]
	if len(q) == 0 {
		p.stats.Misses++
		return nil
	}
	ps := q[len(q)-1]
	q = q[:len(q)-1]
	if len(q) == 0 {
		delete(p.idle, key)
	} else {
		p.idle[key] = q
	}
	p.stats.Hits++
	p.stats.Idle--
	return ps
}

// Return parks a healthy session for reuse. Beyond the per-key idle cap
// the session is dropped — an unbounded pool would pin one solver stack
// per concurrent cold burst forever.
func (p *sessionPool) Return(ps *PooledSession) {
	if ps == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.idle[ps.Key]) >= p.maxIdle {
		p.stats.Evicted++
		return
	}
	p.idle[ps.Key] = append(p.idle[ps.Key], ps)
	p.stats.Idle++
}

// Discard drops a session that may be poisoned: the request holding it
// failed or panicked mid-solve, so its solver state is unknown.
func (p *sessionPool) Discard(ps *PooledSession) {
	if ps == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Discards++
}

// Stats snapshots the counters.
func (p *sessionPool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.stats
	st.Keys = len(p.idle)
	return st
}
