package api

// Concurrency soak: goroutines race CAS-guarded applies, reconciles,
// and stateless configure/deploy requests against ONE stack name. The
// store's accounting must stay airtight — every applied version granted
// exactly once, no version skipped, the final version equal to the
// number of granted writes — and every stack response must be either a
// success carrying the applied version or a clean 409 conflict. Run
// with -race; the CI soak does.

import (
	"net/http"
	"sync"
	"testing"
)

func TestSoakOneStackName(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()

	// Pre-create the stack at version 1, so racing reconciles never see
	// an empty store (404s are out of contract for this soak).
	st, resp, _ := do(t, h, "POST", "/v1/stacks/soak",
		body(t, map[string]any{"action": "apply", "partial": webPartial(9000), "expect_version": 0}))
	if st != http.StatusOK {
		t.Fatalf("pre-create: status %d: %v", st, resp)
	}

	const workers = 9
	iters := 12
	if testing.Short() {
		iters = 6
	}

	var mu sync.Mutex
	granted := make(map[int64]int) // applied version → times granted
	conflicts := 0

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker tracks the newest version it has seen and uses
			// it as its CAS token; losing a race yields a 409 whose
			// "have" re-synchronizes the worker.
			var lastSeen int64 = 1
			for i := 0; i < iters; i++ {
				var payload map[string]any
				switch w % 3 {
				case 0: // CAS apply with a port toggle (a real upgrade)
					payload = map[string]any{
						"action": "apply", "partial": webPartial(9000 + (i % 2)),
						"expect_version": lastSeen,
					}
				case 1: // CAS reconcile
					payload = map[string]any{"action": "reconcile", "expect_version": lastSeen}
				default: // stateless configure riding along on the pool
					st, resp, raw := do(t, h, "POST", "/v1/configure", configureBody(t, choicePartial()))
					if st != http.StatusOK {
						t.Errorf("configure during soak: status %d: %s", st, raw)
					} else if resp["instances"].(float64) != 3 {
						t.Errorf("configure during soak: %v instances", resp["instances"])
					}
					continue
				}
				st, resp, raw := do(t, h, "POST", "/v1/stacks/soak", body(t, payload))
				switch st {
				case http.StatusOK:
					v := int64(resp["version"].(float64))
					mu.Lock()
					granted[v]++
					mu.Unlock()
					lastSeen = v
				case http.StatusConflict:
					have, ok := resp["error"].(map[string]any)["have"].(float64)
					if !ok {
						t.Errorf("409 without a have version: %s", raw)
						continue
					}
					mu.Lock()
					conflicts++
					mu.Unlock()
					lastSeen = int64(have)
				default:
					t.Errorf("soak response must be 200 or 409, got %d: %s", st, raw)
				}
			}
		}(w)
	}
	wg.Wait()

	// Airtight accounting: versions 2..final granted exactly once each,
	// none skipped, and the store's global sequence saw exactly the
	// granted writes (including the pre-create).
	final := s.Store().Version("soak")
	if final < 2 {
		t.Fatalf("soak never advanced the stack: final version %d", final)
	}
	for v := int64(2); v <= final; v++ {
		if granted[v] != 1 {
			t.Errorf("version %d granted %d times, want exactly once", v, granted[v])
		}
	}
	if extra := int64(len(granted)) - (final - 1); extra != 0 {
		t.Errorf("%d granted versions beyond the final version %d", extra, final)
	}
	if seq := s.Store().Seq(); seq != final {
		t.Errorf("store seq %d != final version %d: a write was lost or double-counted", seq, final)
	}
	t.Logf("soak: %d workers × %d iters → final version %d, %d clean conflicts", workers, iters, final, conflicts)
}
