// Package api is Engage's resident control plane: a stdlib net/http
// server that keeps the expensive state of a deployment management
// system alive between requests — the resolved resource library, a pool
// of warm incremental SAT sessions (pool.go), the versioned deployment
// store (internal/store), and the telemetry registry — and serves
// concurrent JSON requests against the simulated substrate:
//
//	POST /v1/configure          partial spec in, full spec + solver stats out
//	POST /v1/deploy             configure + deploy on a fresh simulated world
//	POST /v1/lint               static diagnostics over the resident library
//	GET  /v1/stacks             list the deployment store
//	GET  /v1/stacks/{name}      one stack record
//	POST /v1/stacks/{name}      apply / reconcile, CAS-guarded (409 on conflict)
//	GET  /v1/status             uptime, request counts, pool effectiveness
//	GET  /v1/health             fleet health rollup (503 when any instance
//	                            is unhealthy; probes run on demand)
//	GET  /metrics               telemetry registry snapshot — JSON by
//	                            default, Prometheus text exposition when
//	                            Accept names text/plain
//
// The paper frames Engage as a management system, not a batch solver;
// a long-lived planner serving a request stream is the shape related
// constraint-based autonomic-management work (Dearle et al.) assumes,
// and it is what makes the warm-solver win from PR 1 visible to
// clients: repeat configurations hit warm clauses instead of re-warming
// a fresh process per invocation.
package api

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"engage/internal/config"
	"engage/internal/deploy"
	"engage/internal/library"
	"engage/internal/machine"
	"engage/internal/pkgmgr"
	"engage/internal/resource"
	"engage/internal/spec"
	"engage/internal/stack"
	"engage/internal/store"
	"engage/internal/telemetry"
)

// Options configures a Server. Registry is required; everything else
// has a sensible zero value.
type Options struct {
	Registry *resource.Registry
	// Drivers back deployments and stacks; nil means bookkeeping-only
	// state machines.
	Drivers *deploy.DriverRegistry
	// Index is the simulated package index; nil means empty.
	Index *pkgmgr.Index
	// OSOf maps machine instances to OS identifiers for provisioning;
	// nil lower-cases the resource key.
	OSOf func(inst *spec.Instance) string
	// Store seeds the deployment store (e.g. reloaded from a -state
	// flush); nil starts empty.
	Store *store.Store
	// Metrics receives configuration stats, solver effort, and the
	// per-endpoint request/latency instruments; nil creates a fresh
	// registry (GET /metrics needs one to exist).
	Metrics *telemetry.Registry
	// Tracer, when non-nil, gets one "api.request" span per request
	// (wall-clock times; nothing here advances a virtual clock) on top
	// of the usual configure/deploy/reconcile spans.
	Tracer *telemetry.Tracer
	// PoolIdle caps idle warm sessions per request shape (default 4).
	PoolIdle int
	// Parallelism is handed to every engine and deployment the server
	// builds; 0 is the sequential deterministic path.
	Parallelism int
	// Now stamps uptime in /v1/status; nil uses time.Now. Tests pin it.
	Now func() time.Time
}

// Server is the resident control plane. Construct with New; the zero
// value is not usable.
type Server struct {
	opts     Options
	libFP    string // fingerprint of the resolved library
	pool     *sessionPool
	store    *store.Store
	metrics  *telemetry.Registry
	tracer   *telemetry.Tracer
	mux      *http.ServeMux
	started  time.Time
	requests atomic.Int64

	// stacks holds the live side of each store record: the world the
	// stack runs on, its warm session, deployment, and monitor. The
	// per-entry mutex serializes apply/reconcile on one stack while
	// distinct stacks proceed in parallel.
	stacksMu sync.Mutex
	stacks   map[string]*stackEntry

	// panicOn, when non-nil, is called with an operation label at
	// instrumented points; the pool-poisoning audit test sets it to
	// panic mid-request while a session is checked out.
	panicOn func(op string)
}

// stackEntry is one stack's live state. applied stays nil for records
// reloaded from a state file until the next apply recreates the world.
type stackEntry struct {
	mu      sync.Mutex
	world   *machine.World
	applied *stack.Applied
}

// New builds a server over the given options.
func New(opts Options) (*Server, error) {
	if opts.Registry == nil {
		return nil, fmt.Errorf("api: Options.Registry is required")
	}
	if opts.Drivers == nil {
		opts.Drivers = deploy.NewDriverRegistry()
	}
	if opts.Index == nil {
		opts.Index = pkgmgr.NewIndex()
	}
	if opts.Metrics == nil {
		opts.Metrics = telemetry.NewRegistry()
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	st := opts.Store
	if st == nil {
		st = store.New()
	}
	s := &Server{
		opts:    opts,
		libFP:   registryFingerprint(opts.Registry),
		pool:    newSessionPool(opts.PoolIdle),
		store:   st,
		metrics: opts.Metrics,
		tracer:  opts.Tracer,
		started: opts.Now(),
		stacks:  make(map[string]*stackEntry),
	}
	s.mux = s.routes()
	return s, nil
}

// NewBundled builds a server over the bundled resource library — the
// paper's Java and Django stacks — with its drivers and package index,
// the same site `engage deploy` uses.
func NewBundled(opts Options) (*Server, error) {
	reg, err := library.Registry()
	if err != nil {
		return nil, err
	}
	opts.Registry = reg
	opts.Drivers = library.Drivers()
	opts.Index = library.PackageIndex()
	opts.OSOf = library.OSOf
	return New(opts)
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Store exposes the deployment store (the CLI flushes it on shutdown).
func (s *Server) Store() *store.Store { return s.store }

// Metrics exposes the resident metrics registry.
func (s *Server) Metrics() *telemetry.Registry { return s.metrics }

// PoolStats snapshots warm-session pool effectiveness.
func (s *Server) PoolStats() PoolStats { return s.pool.Stats() }

// engine builds a per-request configuration engine over the resident
// library. Engines are cheap; the expensive state (registry, warm
// sessions, metrics) is shared and concurrency-safe.
func (s *Server) engine() *config.Engine {
	e := config.New(s.opts.Registry)
	e.Parallelism = s.opts.Parallelism
	e.Tracer = s.tracer
	e.Metrics = s.metrics
	return e
}

// deployOptions assembles deploy options over a world. Each deploy and
// each stack gets its own simulated world; the driver registry, package
// index, and telemetry are resident and shared.
func (s *Server) deployOptions(w *machine.World) deploy.Options {
	return deploy.Options{
		Registry:         s.opts.Registry,
		Drivers:          s.opts.Drivers,
		World:            w,
		Index:            s.opts.Index,
		Cache:            pkgmgr.NewCache(),
		Parallelism:      s.opts.Parallelism,
		ProvisionMissing: true,
		OSOf:             s.opts.OSOf,
		Tracer:           s.tracer,
		Metrics:          s.metrics,
	}
}

// entry returns the named stack's live entry, creating it if needed.
func (s *Server) entry(name string) *stackEntry {
	s.stacksMu.Lock()
	defer s.stacksMu.Unlock()
	e, ok := s.stacks[name]
	if !ok {
		e = &stackEntry{}
		s.stacks[name] = e
	}
	return e
}

// registryFingerprint hashes the resolved library's sorted type keys.
// Two servers over the same library share fingerprints, so pool keys
// derived from it survive a restart conceptually (the sessions do not —
// they are precisely the state this server exists to keep resident).
func registryFingerprint(reg *resource.Registry) string {
	h := sha256.New()
	for _, k := range reg.Keys() {
		fmt.Fprintln(h, k.String())
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// requestKey fingerprints a configuration request: the resident library
// plus the canonical rendering of the partial specification. Requests
// that render identically hit the same warm sessions.
func (s *Server) requestKey(p *spec.Partial) (string, error) {
	text, err := spec.Render(p)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256([]byte(text))
	return s.libFP + ":" + hex.EncodeToString(sum[:8]), nil
}

// cloneStack deep-copies a stack record through its JSON form, so store
// snapshots are immune to later in-place mutation by reconcile rounds.
func cloneStack(st *stack.Stack) (*stack.Stack, error) {
	var buf bytes.Buffer
	if err := st.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return stack.ReadStack(&buf)
}
