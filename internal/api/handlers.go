package api

// HTTP handlers and the request middleware: JSON envelopes, per-endpoint
// latency histograms, panic recovery (poisoned sessions are discarded by
// the handler holding them, then the recover turns the panic into a 500
// instead of killing the daemon), and the error-body contract the golden
// tests pin:
//
//	400 {"error":{"code":"bad_request", ...}}   malformed JSON / bad operands
//	404 {"error":{"code":"not_found", ...}}
//	409 {"error":{"code":"conflict","have":N}}  CAS version mismatch
//	409 {"error":{"code":"stack_not_live"}}     reconcile on a record-only stack
//	422 {"error":{"code":"unsat","story":...}}  no full spec extends the partial,
//	                                            with the MUS conflict story
//	422 {"error":{"code":"invalid_spec", ...}}  structurally broken partial
//	                                            (dangling inside, bad ports, …)
//	500 {"error":{"code":"internal", ...}}

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"engage/internal/config"
	"engage/internal/deploy"
	"engage/internal/health"
	"engage/internal/lint"
	"engage/internal/machine"
	"engage/internal/sat"
	"engage/internal/spec"
	"engage/internal/stack"
	"engage/internal/store"
)

// routes wires every endpoint through the instrument middleware.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/configure", s.instrument("configure", s.handleConfigure))
	mux.HandleFunc("POST /v1/deploy", s.instrument("deploy", s.handleDeploy))
	mux.HandleFunc("POST /v1/lint", s.instrument("lint", s.handleLint))
	mux.HandleFunc("GET /v1/stacks", s.instrument("stacks", s.handleStackList))
	mux.HandleFunc("GET /v1/stacks/{name}", s.instrument("stack_get", s.handleStackGet))
	mux.HandleFunc("POST /v1/stacks/{name}", s.instrument("stack_post", s.handleStackPost))
	mux.HandleFunc("GET /v1/status", s.instrument("status", s.handleStatus))
	mux.HandleFunc("GET /v1/health", s.instrument("health", s.handleHealth))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	return mux
}

// statusWriter captures the response status for instruments.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the resident telemetry: a request
// counter, an error counter, a latency histogram per endpoint, an
// "api.request" trace span, and panic recovery.
func (s *Server) instrument(op string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		sp := s.tracer.Span("api.request").Str("endpoint", op).Str("method", r.Method)
		defer func() {
			if p := recover(); p != nil {
				s.metrics.Counter("api.http." + op + ".panics").Inc()
				sw.status = http.StatusInternalServerError
				writeError(sw, http.StatusInternalServerError, "internal",
					fmt.Sprintf("request panicked: %v", p), nil)
			}
			s.metrics.Counter("api.http." + op + ".requests").Inc()
			if sw.status >= 400 {
				s.metrics.Counter("api.http." + op + ".errors").Inc()
			}
			s.metrics.Histogram("api.http." + op + ".latency_ns").Observe(time.Since(start).Nanoseconds())
			sp.Int("status", int64(sw.status)).End()
		}()
		h(sw, r)
	}
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Have is the current stored version on CAS conflicts.
	Have int64 `json:"have,omitempty"`
	// Story and Core carry the MUS explanation for unsat specs.
	Story string   `json:"story,omitempty"`
	Core  []string `json:"core,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		// Marshaling our own response types cannot fail; if it does,
		// surface it rather than writing a half body.
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

func writeError(w http.ResponseWriter, status int, code, msg string, mutate func(*errorBody)) {
	body := errorBody{Code: code, Message: msg}
	if mutate != nil {
		mutate(&body)
	}
	writeJSON(w, status, struct {
		Error errorBody `json:"error"`
	}{body})
}

// internalError marks a failure of resident server state rather than of
// the client's specification — e.g. a pooled session that fails to
// rebuild a partial it already proved — so the error mapper keeps it a
// 500 while everything else the configure pipeline rejects stays a 422.
type internalError struct{ err error }

func (e internalError) Error() string { return e.err.Error() }
func (e internalError) Unwrap() error { return e.err }

// writeConfigureError maps configuration failures: an unsat partial is
// a 422 carrying the minimal-core conflict story; any other rejection
// out of the configure/apply pipeline (unresolved inside dependency,
// dangling port, propagation conflict, …) is the client's specification
// at fault against the resident library, so it is a 422 invalid_spec,
// not a 500. Only deploy failures and explicitly-marked internal errors
// stay 5xx.
func writeConfigureError(w http.ResponseWriter, err error) {
	var unsat config.UnsatError
	if errors.As(err, &unsat) {
		writeError(w, http.StatusUnprocessableEntity, "unsat",
			"no full installation specification extends the partial specification",
			func(b *errorBody) {
				if unsat.Explanation == nil {
					return
				}
				b.Story = unsat.Explanation.Story()
				for _, c := range unsat.Explanation.Core {
					b.Core = append(b.Core, c.String())
				}
			})
		return
	}
	var internal internalError
	var deployErr *deploy.DeployError
	if errors.As(err, &internal) {
		writeError(w, http.StatusInternalServerError, "internal", err.Error(), nil)
		return
	}
	if errors.As(err, &deployErr) {
		writeError(w, http.StatusInternalServerError, "deploy_failed", err.Error(), nil)
		return
	}
	writeError(w, http.StatusUnprocessableEntity, "invalid_spec", err.Error(), nil)
}

// decodeBody parses a JSON request body into v, mapping failure to the
// 400 contract. The empty-interface indirection keeps the malformed-JSON
// behavior identical across endpoints.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("malformed request body: %v", err), nil)
		return false
	}
	return true
}

// solverStats is sat.Stats in the response schema.
type solverStats struct {
	Decisions    int64 `json:"decisions"`
	Propagations int64 `json:"propagations"`
	Conflicts    int64 `json:"conflicts"`
	Learned      int64 `json:"learned"`
	Restarts     int64 `json:"restarts"`
}

func toSolverStats(st sat.Stats) solverStats {
	return solverStats{
		Decisions:    st.Decisions,
		Propagations: st.Propagations,
		Conflicts:    st.Conflicts,
		Learned:      st.Learned,
		Restarts:     st.Restarts,
	}
}

// configureRequest is the body of POST /v1/configure and /v1/deploy.
type configureRequest struct {
	Partial *spec.Partial `json:"partial"`
	// Parallel additionally deploys independent instances concurrently
	// in virtual time (deploy only).
	Parallel bool `json:"parallel,omitempty"`
}

type configureResponse struct {
	Full      *spec.Full  `json:"full"`
	Instances int         `json:"instances"`
	Lines     int         `json:"lines"`
	Warm      bool        `json:"warm"`
	Solves    int64       `json:"session_solves"`
	Solver    solverStats `json:"solver"`
}

// configureOn answers a configuration request through the warm-session
// pool: a pool hit rebuilds from the session's retained, already-proven
// model — zero solver effort, strictly fewer propagations than the cold
// search (the load test asserts it) — while a miss solves cold and
// donates the fresh session to the pool on the way out.
func (s *Server) configureOn(p *spec.Partial) (*configureResponse, error) {
	key, err := s.requestKey(p)
	if err != nil {
		return nil, err
	}
	if ps := s.pool.Checkout(key); ps != nil {
		ok := false
		defer func() {
			// A panic (or any error) mid-solve leaves the solver stack
			// in an unknown state: discard, never re-pool.
			if ok {
				s.pool.Return(ps)
			} else {
				s.pool.Discard(ps)
			}
		}()
		if s.panicOn != nil {
			s.panicOn("configure.warm")
		}
		full, st, err := ps.Session.Resolve(s.engine(), ps.Partial)
		if err != nil {
			// The pooled session already proved this exact partial once;
			// failing to rebuild it is resident-state corruption, not a
			// client error.
			return nil, internalError{err}
		}
		ps.Solves++
		ok = true
		return &configureResponse{
			Full:      full,
			Instances: len(full.Instances),
			Lines:     spec.LineCount(full),
			Warm:      true,
			Solves:    ps.Solves,
			Solver:    toSolverStats(st),
		}, nil
	}
	full, sess, st, err := s.engine().ConfigureSessionStats(p)
	if err != nil {
		return nil, err
	}
	s.pool.Return(&PooledSession{Key: key, Partial: p, Session: sess})
	return &configureResponse{
		Full:      full,
		Instances: len(full.Instances),
		Lines:     spec.LineCount(full),
		Solver:    toSolverStats(st),
	}, nil
}

func (s *Server) handleConfigure(w http.ResponseWriter, r *http.Request) {
	var req configureRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Partial == nil || len(req.Partial.Instances) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request",
			`"partial" must name at least one instance`, nil)
		return
	}
	resp, err := s.configureOn(req.Partial)
	if err != nil {
		writeConfigureError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

type deployResponse struct {
	Instances int               `json:"instances"`
	ElapsedNs int64             `json:"elapsed_virtual_ns"`
	Machines  []string          `json:"machines"`
	Status    map[string]string `json:"status"`
	Warm      bool              `json:"warm"`
	Solver    solverStats       `json:"solver"`
}

func (s *Server) handleDeploy(w http.ResponseWriter, r *http.Request) {
	var req configureRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Partial == nil || len(req.Partial.Instances) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request",
			`"partial" must name at least one instance`, nil)
		return
	}
	conf, err := s.configureOn(req.Partial)
	if err != nil {
		writeConfigureError(w, err)
		return
	}
	// Each deploy request gets a fresh simulated world: requests stay
	// isolated and the virtual elapsed time is the request's own.
	opts := s.deployOptions(machine.NewWorld())
	opts.Parallel = req.Parallel
	d, err := deploy.New(conf.Full, opts)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "deploy_failed", err.Error(), nil)
		return
	}
	if err := d.Deploy(); err != nil {
		writeError(w, http.StatusInternalServerError, "deploy_failed", err.Error(), nil)
		return
	}
	status := make(map[string]string, len(conf.Full.Instances))
	for id, st := range d.Status() {
		status[id] = string(st)
	}
	writeJSON(w, http.StatusOK, deployResponse{
		Instances: len(conf.Full.Instances),
		ElapsedNs: d.Elapsed().Nanoseconds(),
		Machines:  conf.Full.Machines(),
		Status:    status,
		Warm:      conf.Warm,
		Solver:    conf.Solver,
	})
}

type lintRequest struct {
	Partial *spec.Partial `json:"partial"`
}

func (s *Server) handleLint(w http.ResponseWriter, r *http.Request) {
	var req lintRequest
	if !decodeBody(w, r, &req) {
		return
	}
	rep := lint.Check(s.opts.Registry, req.Partial, lint.Options{Tracer: s.tracer})
	rep.Library = "<resident>"
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if err := rep.WriteJSON(w); err != nil {
		// Headers are gone; nothing to do but log through metrics.
		s.metrics.Counter("api.http.lint.write_errors").Inc()
	}
}

// stackSummary is one row of GET /v1/stacks.
type stackSummary struct {
	Name         string `json:"name"`
	Version      int64  `json:"version"`
	StackVersion int    `json:"stack_version"`
	Instances    int    `json:"instances"`
	Status       string `json:"status,omitempty"`
}

func summarize(rec store.Record) stackSummary {
	sum := stackSummary{Name: rec.Name, Version: rec.Version, Status: rec.Status}
	if rec.Stack != nil {
		sum.StackVersion = rec.Stack.Version
		sum.Instances = len(rec.Stack.Desired.Instances)
	}
	return sum
}

func (s *Server) handleStackList(w http.ResponseWriter, r *http.Request) {
	recs := s.store.List()
	out := struct {
		Stacks []stackSummary `json:"stacks"`
	}{Stacks: make([]stackSummary, 0, len(recs))}
	for _, rec := range recs {
		out.Stacks = append(out.Stacks, summarize(rec))
	}
	writeJSON(w, http.StatusOK, out)
}

type stackGetResponse struct {
	stackSummary
	Seq   int64        `json:"seq"`
	Live  bool         `json:"live"`
	Stack *stack.Stack `json:"stack"`
}

func (s *Server) handleStackGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	rec, ok := s.store.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("no stack named %q", name), nil)
		return
	}
	e := s.entry(name)
	e.mu.Lock()
	live := e.applied != nil
	e.mu.Unlock()
	writeJSON(w, http.StatusOK, stackGetResponse{
		stackSummary: summarize(rec),
		Seq:          rec.Seq,
		Live:         live,
		Stack:        rec.Stack,
	})
}

// stackPostRequest is the body of POST /v1/stacks/{name}.
type stackPostRequest struct {
	// Action is "apply" (default) or "reconcile".
	Action  string        `json:"action"`
	Partial *spec.Partial `json:"partial,omitempty"`
	// ExpectVersion, when non-nil, is the CAS token: the request fails
	// with 409 unless the store still holds exactly this version
	// (0 = the stack must not exist yet). Omitted = apply regardless.
	ExpectVersion *int64 `json:"expect_version,omitempty"`
	// MaxRounds bounds reconcile rounds (default 4).
	MaxRounds int `json:"max_rounds,omitempty"`
}

type stackApplyResponse struct {
	Name         string `json:"name"`
	Version      int64  `json:"version"`
	StackVersion int    `json:"stack_version"`
	Instances    int    `json:"instances"`
	Status       string `json:"status"`
}

// driftJSON / roundJSON mirror stack.Drift and stack.RoundReport in the
// response schema.
type driftJSON struct {
	Instance string `json:"instance"`
	Kind     string `json:"kind"`
	Detail   string `json:"detail"`
}

type roundJSON struct {
	Round       int         `json:"round"`
	Drifts      []driftJSON `json:"drifts,omitempty"`
	Damaged     []string    `json:"damaged,omitempty"`
	Cone        []string    `json:"cone,omitempty"`
	Pinned      int         `json:"pinned,omitempty"`
	SolveStatus string      `json:"solve_status,omitempty"`
	Solver      solverStats `json:"solver"`
	Repaired    bool        `json:"repaired"`
	RolledBack  bool        `json:"rolled_back"`
	Error       string      `json:"error,omitempty"`
}

type stackReconcileResponse struct {
	Name      string      `json:"name"`
	Version   int64       `json:"version"`
	Converged bool        `json:"converged"`
	Rounds    []roundJSON `json:"rounds"`
}

func (s *Server) handleStackPost(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req stackPostRequest
	if !decodeBody(w, r, &req) {
		return
	}
	switch req.Action {
	case "", "apply":
		s.stackApply(w, name, &req)
	case "reconcile":
		s.stackReconcile(w, name, &req)
	default:
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("unknown action %q (want apply or reconcile)", req.Action), nil)
	}
}

func (s *Server) stackApply(w http.ResponseWriter, name string, req *stackPostRequest) {
	if req.Partial == nil || len(req.Partial.Instances) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request",
			`apply needs a "partial" naming at least one instance`, nil)
		return
	}
	e := s.entry(name)
	e.mu.Lock()
	defer e.mu.Unlock()

	// Optimistic concurrency: the store version is read under the
	// entry lock, so a concurrent apply to the same stack either
	// serialized before us (and our expect token is now stale → 409)
	// or waits behind us.
	current := s.store.Version(name)
	if req.ExpectVersion != nil && *req.ExpectVersion != current {
		writeError(w, http.StatusConflict, "conflict",
			fmt.Sprintf("stack %q is at version %d, not %d", name, current, *req.ExpectVersion),
			func(b *errorBody) { b.Have = current })
		return
	}

	if s.panicOn != nil {
		s.panicOn("stack.apply")
	}
	if e.applied == nil {
		// Fresh apply (or a record reloaded from a state file whose
		// live world died with the previous process): build a world.
		world := machine.NewWorld()
		ctl := &stack.Controller{Options: s.deployOptions(world)}
		a, err := ctl.Apply(name, req.Partial)
		if err != nil {
			writeConfigureError(w, err)
			return
		}
		e.world, e.applied = world, a
	} else {
		if err := e.applied.Reapply(req.Partial); err != nil {
			writeConfigureError(w, err)
			return
		}
	}

	snap, err := cloneStack(e.applied.Stack)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", err.Error(), nil)
		return
	}
	rec, err := s.store.CompareAndSwap(name, current, "applied", snap)
	if err != nil {
		// Unreachable while stack posts serialize on the entry lock,
		// but surface it as the 409 contract rather than lying.
		var conflict *store.ConflictError
		if errors.As(err, &conflict) {
			writeError(w, http.StatusConflict, "conflict", err.Error(),
				func(b *errorBody) { b.Have = conflict.Have })
			return
		}
		writeError(w, http.StatusInternalServerError, "internal", err.Error(), nil)
		return
	}
	writeJSON(w, http.StatusOK, stackApplyResponse{
		Name:         name,
		Version:      rec.Version,
		StackVersion: e.applied.Stack.Version,
		Instances:    len(e.applied.Stack.Desired.Instances),
		Status:       "applied",
	})
}

func (s *Server) stackReconcile(w http.ResponseWriter, name string, req *stackPostRequest) {
	e := s.entry(name)
	e.mu.Lock()
	defer e.mu.Unlock()

	if e.applied == nil {
		if _, ok := s.store.Get(name); !ok {
			writeError(w, http.StatusNotFound, "not_found",
				fmt.Sprintf("no stack named %q", name), nil)
			return
		}
		writeError(w, http.StatusConflict, "stack_not_live",
			fmt.Sprintf("stack %q has a record but no live deployment in this server; apply it first", name), nil)
		return
	}
	current := s.store.Version(name)
	if req.ExpectVersion != nil && *req.ExpectVersion != current {
		writeError(w, http.StatusConflict, "conflict",
			fmt.Sprintf("stack %q is at version %d, not %d", name, current, *req.ExpectVersion),
			func(b *errorBody) { b.Have = current })
		return
	}

	maxRounds := req.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 4
	}
	reps, converged := e.applied.ReconcileUntilConverged(maxRounds)

	snap, err := cloneStack(e.applied.Stack)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", err.Error(), nil)
		return
	}
	rec, err := s.store.CompareAndSwap(name, current, "reconciled", snap)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", err.Error(), nil)
		return
	}

	out := stackReconcileResponse{Name: name, Version: rec.Version, Converged: converged}
	for _, rep := range reps {
		rj := roundJSON{
			Round:       rep.Round,
			Damaged:     rep.Damaged,
			Cone:        rep.Cone,
			Pinned:      rep.Pinned,
			SolveStatus: rep.SolveStatus,
			Solver:      toSolverStats(rep.Solve),
			Repaired:    rep.Repaired,
			RolledBack:  rep.RolledBack,
		}
		for _, d := range rep.Drifts {
			rj.Drifts = append(rj.Drifts, driftJSON{Instance: d.Instance, Kind: d.Kind, Detail: d.Detail})
		}
		if rep.Err != nil {
			rj.Error = rep.Err.Error()
		}
		out.Rounds = append(out.Rounds, rj)
	}
	writeJSON(w, http.StatusOK, out)
}

type statusResponse struct {
	UptimeMs int64     `json:"uptime_ms"`
	Requests int64     `json:"requests"`
	Stacks   int       `json:"stacks"`
	StoreSeq int64     `json:"store_seq"`
	Library  string    `json:"library_fingerprint"`
	Pool     PoolStats `json:"pool"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statusResponse{
		UptimeMs: s.opts.Now().Sub(s.started).Milliseconds(),
		Requests: s.requests.Load(),
		Stacks:   s.store.Len(),
		StoreSeq: s.store.Seq(),
		Library:  s.libFP,
		Pool:     s.pool.Stats(),
	})
}

// healthResponse is the body of GET /v1/health: the fleet-level
// worst-of state plus one rollup per live stack. The status code
// mirrors the state — 503 when any instance is Unhealthy, 200
// otherwise — so load balancers can point a plain HTTP check at it.
type healthResponse struct {
	State  string               `json:"state"`
	Stacks []health.StackRollup `json:"stacks"`
}

// handleHealth runs an on-demand probe round over every live stack
// (ProbeNow ignores the virtual schedule — a health check answers with
// fresh observations, not stale ones) and rolls the results up
// instance → machine → stack → fleet.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.stacksMu.Lock()
	names := make([]string, 0, len(s.stacks))
	for name := range s.stacks {
		names = append(names, name)
	}
	sort.Strings(names)
	entries := make([]*stackEntry, len(names))
	for i, name := range names {
		entries[i] = s.stacks[name]
	}
	s.stacksMu.Unlock()

	resp := healthResponse{Stacks: []health.StackRollup{}}
	worst := health.Healthy
	for _, e := range entries {
		e.mu.Lock()
		if e.applied == nil || e.applied.Health == nil {
			e.mu.Unlock()
			continue
		}
		e.applied.Health.ProbeNow()
		roll := e.applied.HealthRollup()
		e.mu.Unlock()
		resp.Stacks = append(resp.Stacks, roll)
		if w := roll.Summary.WorstState(); w > worst {
			worst = w
		}
	}
	resp.State = worst.String()
	status := http.StatusOK
	if worst == health.Unhealthy {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// handleMetrics serves the resident registry in the representation the
// client asked for: Prometheus text exposition when the Accept header
// names text/plain (or an OpenMetrics type), the JSON snapshot
// otherwise — existing JSON scrapers send no Accept header and are
// untouched.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if acceptsPrometheus(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		if err := s.metrics.WritePrometheus(w); err != nil {
			s.metrics.Counter("api.http.metrics.write_errors").Inc()
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if err := s.metrics.WriteJSON(w); err != nil {
		s.metrics.Counter("api.http.metrics.write_errors").Inc()
	}
}

// acceptsPrometheus is the /metrics content negotiation: any Accept
// value naming text/plain or an OpenMetrics media type selects the
// exposition format; everything else (including no header at all)
// keeps the JSON snapshot.
func acceptsPrometheus(accept string) bool {
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}
