package api

// Pool poisoning audit: a session checked out of the warm pool when a
// request panics must be discarded, never returned — a poisoned solver
// session re-pooled would corrupt every later request that drew it.

import (
	"net/http"
	"testing"
)

func TestPanickedRequestDiscardsSession(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	payload := configureBody(t, choicePartial())

	// Cold solve donates a warm session to the pool.
	if st, _, _ := do(t, h, "POST", "/v1/configure", payload); st != http.StatusOK {
		t.Fatalf("cold configure failed: %d", st)
	}
	if ps := s.PoolStats(); ps.Idle != 1 {
		t.Fatalf("pool idle = %d after cold solve, want 1", ps.Idle)
	}

	// Arm the fault hook: the next warm request panics while its
	// session is checked out.
	armed := true
	s.panicOn = func(op string) {
		if op == "configure.warm" && armed {
			armed = false
			panic("injected mid-request panic")
		}
	}
	st, resp, _ := do(t, h, "POST", "/v1/configure", payload)
	if st != http.StatusInternalServerError {
		t.Fatalf("panicking request: status %d: %v", st, resp)
	}
	if code := resp["error"].(map[string]any)["code"]; code != "internal" {
		t.Errorf("panicking request error code = %v", code)
	}

	ps := s.PoolStats()
	if ps.Discards != 1 {
		t.Errorf("pool discards = %d, want 1 (the poisoned session)", ps.Discards)
	}
	if ps.Idle != 0 {
		t.Errorf("pool idle = %d after panic, want 0 — the poisoned session must not be re-pooled", ps.Idle)
	}

	// The server keeps serving: the next request is a clean cold solve
	// that re-donates, and a fourth hits warm again.
	st, resp, _ = do(t, h, "POST", "/v1/configure", payload)
	if st != http.StatusOK || resp["warm"] != false {
		t.Fatalf("post-panic request: status %d warm=%v, want cold 200", st, resp["warm"])
	}
	st, resp, _ = do(t, h, "POST", "/v1/configure", payload)
	if st != http.StatusOK || resp["warm"] != true {
		t.Fatalf("recovered pool: status %d warm=%v, want warm 200", st, resp["warm"])
	}

	ps = s.PoolStats()
	if ps.Hits != 2 || ps.Misses != 2 || ps.Discards != 1 || ps.Idle != 1 {
		t.Errorf("pool stats after recovery = %+v, want 2 hits / 2 misses / 1 discard / 1 idle", ps)
	}

	// The panic was counted and surfaced in metrics.
	snap := s.Metrics().Snapshot()
	if snap.Counters["api.http.configure.panics"] != 1 {
		t.Errorf("panic counter = %d, want 1", snap.Counters["api.http.configure.panics"])
	}
}

// TestPoolEviction: idle sessions beyond the per-key cap are dropped,
// not hoarded.
func TestPoolEviction(t *testing.T) {
	p := newSessionPool(2)
	mk := func() *PooledSession { return &PooledSession{Key: "k"} }
	p.Return(mk())
	p.Return(mk())
	p.Return(mk())
	st := p.Stats()
	if st.Idle != 2 || st.Evicted != 1 {
		t.Errorf("pool stats = %+v, want 2 idle / 1 evicted", st)
	}
	if p.Checkout("k") == nil || p.Checkout("k") == nil {
		t.Fatal("both capped sessions should check out")
	}
	if p.Checkout("k") != nil {
		t.Fatal("third checkout should miss")
	}
}
