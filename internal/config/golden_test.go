package config

import (
	"flag"
	"os"
	"testing"

	"engage/internal/spec"
	"engage/internal/testlib"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestOpenMRSGolden pins the entire pipeline's output — hypergraph,
// constraint solving, port propagation, JSON rendering — against a
// committed golden file. Any unintended change to defaults, ordering,
// or encoding shows up as a diff. Regenerate deliberately with
// `go test ./internal/config -run Golden -update`.
func TestOpenMRSGolden(t *testing.T) {
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}
	p, err := testlib.Fig2Partial()
	if err != nil {
		t.Fatal(err)
	}
	full, err := New(reg).Configure(p)
	if err != nil {
		t.Fatal(err)
	}
	text, err := spec.Render(full)
	if err != nil {
		t.Fatal(err)
	}
	got := text + "\n"

	const path = "testdata/openmrs_full.golden.json"
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("full specification changed; run with -update if intended.\n--- got ---\n%s\n--- want ---\n%s",
			got, want)
	}
}
