package config

import (
	"testing"

	"engage/internal/testlib"
)

// TestAlternativesOpenMRS: the §2 constraint system has exactly two
// satisfying assignments — deploy the JDK or deploy the JRE — and
// Alternatives materializes both as full installation specifications
// (Theorem 1's bijection, enumerated).
func TestAlternativesOpenMRS(t *testing.T) {
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}
	p, err := testlib.Fig2Partial()
	if err != nil {
		t.Fatal(err)
	}
	alts, err := New(reg).Alternatives(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(alts) != 2 {
		t.Fatalf("OpenMRS has exactly 2 alternatives (jdk/jre), got %d", len(alts))
	}
	javaOf := func(f int) string {
		for _, inst := range alts[f].Instances {
			if inst.Key.Name == "JDK" || inst.Key.Name == "JRE" {
				return inst.Key.Name
			}
		}
		return ""
	}
	a, b := javaOf(0), javaOf(1)
	if a == b || a == "" || b == "" {
		t.Errorf("alternatives should differ in the Java choice: %q vs %q", a, b)
	}
	// Both alternatives are complete: 5 instances each, ports wired.
	for i, alt := range alts {
		if len(alt.Instances) != 5 {
			t.Errorf("alternative %d has %d instances", i, len(alt.Instances))
		}
		om := alt.MustFind("openmrs")
		if _, ok := om.Output["url"]; !ok {
			t.Errorf("alternative %d missing propagated output", i)
		}
	}
}

func TestAlternativesLimit(t *testing.T) {
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}
	p, err := testlib.Fig2Partial()
	if err != nil {
		t.Fatal(err)
	}
	alts, err := New(reg).Alternatives(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(alts) != 1 {
		t.Errorf("limit 1 should cap enumeration, got %d", len(alts))
	}
}

func TestAlternativesGraphError(t *testing.T) {
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}
	var p = testlib.MustBadPartial()
	if _, err := New(reg).Alternatives(p, 0); err == nil {
		t.Error("bad partial should propagate error")
	}
}

func TestConfigureMinimalOpenMRS(t *testing.T) {
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}
	p, err := testlib.Fig2Partial()
	if err != nil {
		t.Fatal(err)
	}
	full, err := New(reg).ConfigureMinimal(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Instances) != 5 {
		t.Fatalf("minimal OpenMRS should have 5 instances, got %d", len(full.Instances))
	}
	javaCount := 0
	for _, inst := range full.Instances {
		if inst.Key.Name == "JDK" || inst.Key.Name == "JRE" {
			javaCount++
		}
	}
	if javaCount != 1 {
		t.Errorf("exactly one Java implementation, got %d", javaCount)
	}
}

func TestConfigureMinimalNeverLargerThanConfigure(t *testing.T) {
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}
	p, err := testlib.Fig2Partial()
	if err != nil {
		t.Fatal(err)
	}
	e := New(reg)
	plain, err := e.Configure(p)
	if err != nil {
		t.Fatal(err)
	}
	minimal, err := e.ConfigureMinimal(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(minimal.Instances) > len(plain.Instances) {
		t.Errorf("minimal (%d) larger than plain (%d)", len(minimal.Instances), len(plain.Instances))
	}
}

func TestConfigureMinimalUnsatAndErrors(t *testing.T) {
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Registry: reg, Solver: unsatSolver{}}
	if _, err := e.ConfigureMinimal(mustFig2(t)); err == nil {
		t.Error("UNSAT should surface")
	}
	e2 := &Engine{Registry: reg, Solver: unknownSolver{}}
	if _, err := e2.ConfigureMinimal(mustFig2(t)); err == nil {
		t.Error("unknown should surface")
	}
	if _, err := New(reg).ConfigureMinimal(testlib.MustBadPartial()); err == nil {
		t.Error("graph error should surface")
	}
}
