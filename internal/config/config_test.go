package config

import (
	"encoding/json"
	"strings"
	"testing"

	"engage/internal/constraint"
	"engage/internal/rdl"
	"engage/internal/resource"
	"engage/internal/sat"
	"engage/internal/spec"
	"engage/internal/testlib"
)

func engine(t *testing.T) *Engine {
	t.Helper()
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}
	return New(reg)
}

func fig2(t *testing.T) *spec.Partial {
	t.Helper()
	p, err := testlib.Fig2Partial()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestConfigureOpenMRS is the §2 end-to-end: a 3-instance partial spec
// expands to a 5-instance full spec (server, java, tomcat, mysql,
// openmrs) with ports propagated along the stack.
func TestConfigureOpenMRS(t *testing.T) {
	e := engine(t)
	full, st, err := e.ConfigureStats(fig2(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Instances) != 5 {
		ids := make([]string, len(full.Instances))
		for i, inst := range full.Instances {
			ids[i] = inst.ID
		}
		t.Fatalf("full spec has %d instances, want 5: %v", len(full.Instances), ids)
	}
	if st.GraphNodes != 6 || st.Vars < 6 || st.Clauses == 0 {
		t.Errorf("stats look wrong: %+v", st)
	}

	// Exactly one Java implementation deployed.
	javaCount := 0
	for _, inst := range full.Instances {
		if inst.Key.Name == "JDK" || inst.Key.Name == "JRE" {
			javaCount++
		}
	}
	if javaCount != 1 {
		t.Errorf("exactly one Java implementation should deploy, got %d", javaCount)
	}

	// Port propagation: openmrs's mysql input comes from mysql's output;
	// its url output is derived from it.
	om := full.MustFind("openmrs")
	mysqlIn, ok := om.Input["mysql"]
	if !ok {
		t.Fatal("openmrs.mysql input missing")
	}
	if port, _ := mysqlIn.Field("port"); port.Int != 3306 {
		t.Errorf("openmrs.mysql.port = %v, want 3306", port)
	}
	url, ok := om.Output["url"]
	if !ok || url.Str != "jdbc:mysql://localhost:3306/openmrs" {
		t.Errorf("openmrs.url = %v", url)
	}

	// Config overrides from the partial spec survive.
	server := full.MustFind("server")
	if server.Config["hostname"].Str != "localhost" {
		t.Errorf("server.hostname = %v", server.Config["hostname"])
	}
	// Defaults fill unset config ports.
	if server.Config["os_user_name"].Str != "root" {
		t.Errorf("server.os_user_name = %v", server.Config["os_user_name"])
	}
}

// TestSpecExpansion reproduces the paper's compaction claim in shape:
// the full spec is several times larger than the partial spec.
func TestSpecExpansion(t *testing.T) {
	e := engine(t)
	p := fig2(t)
	full, err := e.Configure(p)
	if err != nil {
		t.Fatal(err)
	}
	pl := spec.LineCount(p)
	fl := spec.LineCount(full)
	if fl < 3*pl {
		t.Errorf("full spec (%d lines) should be ≥3x partial (%d lines)", fl, pl)
	}
}

func TestConfigureWithOverride(t *testing.T) {
	e := engine(t)
	p := fig2(t)
	// Override MySQL's port via an explicit partial instance.
	p.Add("mysql", resource.MakeKey("MySQL", "5.1")).In("server").
		Set("port", resource.PortV(3399))
	full, err := e.Configure(p)
	if err != nil {
		t.Fatal(err)
	}
	om := full.MustFind("openmrs")
	if port, _ := om.Input["mysql"].Field("port"); port.Int != 3399 {
		t.Errorf("override should propagate: openmrs.mysql.port = %v", port)
	}
	if url := om.Output["url"]; !strings.Contains(url.Str, ":3399/") {
		t.Errorf("derived url should use overridden port: %v", url)
	}
	// The explicit mysql instance must be reused, not duplicated.
	count := 0
	for _, inst := range full.Instances {
		if inst.Key.Name == "MySQL" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("MySQL instance duplicated: %d", count)
	}
}

func TestConfigureBothSolvers(t *testing.T) {
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}
	for _, solver := range []sat.Solver{sat.NewCDCL(), sat.NewDPLL()} {
		for _, enc := range []constraint.Encoding{constraint.Pairwise, constraint.Ladder} {
			e := &Engine{Registry: reg, Solver: solver, Encoding: enc}
			full, err := e.Configure(mustFig2(t))
			if err != nil {
				t.Errorf("%s/%v: %v", solver.Name(), enc, err)
				continue
			}
			if len(full.Instances) != 5 {
				t.Errorf("%s/%v: %d instances, want 5", solver.Name(), enc, len(full.Instances))
			}
		}
	}
}

func mustFig2(t *testing.T) *spec.Partial {
	t.Helper()
	p, err := testlib.Fig2Partial()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigureDefaultSolver(t *testing.T) {
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Registry: reg} // nil solver defaults to CDCL
	if _, err := e.Configure(mustFig2(t)); err != nil {
		t.Error(err)
	}
}

func TestConfigureUnsat(t *testing.T) {
	// Engage's generated constraints are Horn-like (implications plus
	// guarded exactly-one), so genuinely unsatisfiable systems are rare
	// by construction; verify the UnsatError path with a solver stub
	// that reports UNSAT.
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Registry: reg, Solver: unsatSolver{}}
	_, err = e.Configure(mustFig2(t))
	if err == nil {
		t.Fatal("expected UnsatError")
	}
	if _, ok := err.(UnsatError); !ok {
		t.Errorf("expected UnsatError, got %T: %v", err, err)
	}
	if !strings.Contains(err.Error(), "unsatisfiable") {
		t.Errorf("error text: %v", err)
	}
}

type unsatSolver struct{}

func (unsatSolver) Solve(*sat.Formula) sat.Result { return sat.Result{Status: sat.Unsat} }
func (unsatSolver) Name() string                  { return "always-unsat" }

type unknownSolver struct{}

func (unknownSolver) Solve(*sat.Formula) sat.Result { return sat.Result{Status: sat.Unknown} }
func (unknownSolver) Name() string                  { return "always-unknown" }

func TestConfigureSolverGivesUp(t *testing.T) {
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Registry: reg, Solver: unknownSolver{}}
	_, err = e.Configure(mustFig2(t))
	if err == nil || !strings.Contains(err.Error(), "gave up") {
		t.Errorf("expected gave-up error, got %v", err)
	}
}

func TestConfigureGraphError(t *testing.T) {
	e := engine(t)
	var p spec.Partial
	if err := json.Unmarshal([]byte(`[{"id": "x", "key": "Mystery 1"}]`), &p); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Configure(&p); err == nil {
		t.Error("unknown type should propagate from hypergraph")
	}
}

func TestConfigureMissingConfigValue(t *testing.T) {
	src := `
abstract resource "Server" {}
resource "Mac 10.6" extends "Server" {}
resource "NeedsValue 1" {
    inside "Server"
    config { required_token: string }
}`
	reg, err := parseRDL(src)
	if err != nil {
		t.Fatal(err)
	}
	e := New(reg)
	var p spec.Partial
	p.Add("m", resource.MakeKey("Mac", "10.6"))
	p.Add("n", resource.MakeKey("NeedsValue", "1")).In("m")
	_, err = e.Configure(&p)
	if err == nil || !strings.Contains(err.Error(), "no value and no default") {
		t.Errorf("missing config value should error: %v", err)
	}
	// Supplying the value fixes it.
	p2 := &spec.Partial{}
	p2.Add("m", resource.MakeKey("Mac", "10.6"))
	p2.Add("n", resource.MakeKey("NeedsValue", "1")).In("m").
		Set("required_token", resource.Str("tok"))
	if _, err := e.Configure(p2); err != nil {
		t.Errorf("supplied config value should work: %v", err)
	}
}

func TestReversePortFlow(t *testing.T) {
	// The OpenMRS→Tomcat configuration-file flow of §3.4: App's static
	// output flows into its container's input.
	src := `
abstract resource "Server" {}
resource "Mac 10.6" extends "Server" {}
resource "Container 1" {
    inside "Server"
    input  { app_config: string }
    output { started: bool = true }
}
resource "App 1" {
    inside "Container 1" { reverse cfg -> app_config }
    output { static cfg: string = "server.xml" }
}`
	reg, err := parseRDL(src)
	if err != nil {
		t.Fatal(err)
	}
	e := New(reg)
	var p spec.Partial
	p.Add("m", resource.MakeKey("Mac", "10.6"))
	p.Add("c", resource.MakeKey("Container", "1")).In("m")
	p.Add("a", resource.MakeKey("App", "1")).In("c")
	full, err := e.Configure(&p)
	if err != nil {
		t.Fatal(err)
	}
	c := full.MustFind("c")
	if c.Input["app_config"].Str != "server.xml" {
		t.Errorf("reverse flow failed: container input = %v", c.Input["app_config"])
	}
}

func parseRDL(src string) (*resource.Registry, error) {
	return testlibResolve(src)
}

func testlibResolve(src string) (*resource.Registry, error) {
	return rdl.ParseAndResolve(map[string]string{"test.rdl": src})
}
