package config

import (
	"fmt"

	"engage/internal/constraint"
	"engage/internal/hypergraph"
	"engage/internal/sat"
	"engage/internal/spec"
)

// ConfigureMinimal is Configure with a subset-minimality guarantee: the
// returned full installation specification deploys a set of instances
// such that no instance can be removed while still satisfying all
// constraints. This is the flavor of "optimal install" the paper's
// related work explores (OPIUM, apt-pbo); plain Configure relies on the
// solver's default-false branching, which yields small but not provably
// minimal models.
//
// Minimization is the standard iterative strengthening: solve once, then
// for each instance selected but not in the partial specification, try
// re-solving with that instance forced out; keep it out if still
// satisfiable. The loop runs on one incremental session: each trial is a
// SolveAssuming(¬v) on warm solver state (learned clauses, activity, and
// phases carry over), and the decision is committed as a unit AddClause —
// no cold restarts, no formula copying, at most one re-solve per graph
// node.
func (e *Engine) ConfigureMinimal(partial *spec.Partial) (*spec.Full, error) {
	g, err := hypergraph.Generate(e.Registry, partial)
	if err != nil {
		return nil, err
	}
	prob := constraint.Encode(g, e.Encoding)
	solver := e.Solver
	if solver == nil {
		solver = sat.NewCDCL()
	}

	root := e.Tracer.Span("config.minimal")
	defer root.End()
	inc := sat.Observe(sat.StartIncremental(solver, prob.Formula), e.observeSolves(root))
	res := inc.SolveAssuming(nil)
	switch res.Status {
	case sat.Sat:
	case sat.Unsat:
		return nil, e.unsatError(g, root, partial)
	default:
		return nil, fmt.Errorf("config: solver %q gave up", solver.Name())
	}
	model := res.Model

	fromSpec := make(map[string]bool, len(partial.Instances))
	for _, pi := range partial.Instances {
		fromSpec[pi.ID] = true
	}

	// Try to shed every selected non-spec instance, in graph order.
	for _, id := range g.Order {
		v := prob.VarOf[id]
		if fromSpec[id] || !model[v] {
			continue
		}
		trial := inc.SolveAssuming([]sat.Lit{sat.Lit(-v)})
		if trial.Status == sat.Sat {
			// Sheddable: commit the exclusion so later trials build on it.
			inc.AddClause(sat.Clause{sat.Lit(-v)})
			model = trial.Model
		} else {
			// Pin it in so later trials cannot flip it back.
			inc.AddClause(sat.Clause{sat.Lit(v)})
		}
	}

	full, err := e.build(g, partial, prob.Selected(model))
	if err != nil {
		return nil, err
	}
	if !e.SkipCheck {
		if err := checkAfterBuild(e, full); err != nil {
			return nil, err
		}
	}
	return full, nil
}
