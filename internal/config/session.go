package config

// This file keeps a configuration's solver session alive after the
// answer is built. Reconciliation (internal/stack) needs exactly that:
// when part of a deployed fleet is damaged, the minimal-delta replan
// pins the healthy instances as assumptions and re-solves on the warm
// session — learned clauses, activity, and saved phases carry over, so
// the re-solve touches only the damaged cone of the search space
// instead of reproving the whole configuration from scratch.

import (
	"fmt"

	"engage/internal/constraint"
	"engage/internal/hypergraph"
	"engage/internal/sat"
	"engage/internal/spec"
)

// Session is the warm state retained by ConfigureSession: the
// dependency hypergraph, the encoded constraint problem, the
// incremental solver session, and the model the returned specification
// was built from.
type Session struct {
	Graph   *hypergraph.Graph
	Problem *constraint.Problem
	Inc     sat.IncrementalSolver
	Model   []bool
}

// ConfigureSession is Configure, but the solve runs on an incremental
// session that is returned alongside the full specification for later
// warm re-solves (see Session.SolvePinned).
func (e *Engine) ConfigureSession(partial *spec.Partial) (*spec.Full, *Session, error) {
	full, sess, _, err := e.ConfigureSessionStats(partial)
	return full, sess, err
}

// ConfigureSessionStats is ConfigureSession with the initial (cold)
// solve's effort reported, so callers keeping sessions warm — the
// control plane's session pool — can compare it against later per-call
// deltas from Session.SolvePinned / Session.Resolve.
func (e *Engine) ConfigureSessionStats(partial *spec.Partial) (*spec.Full, *Session, sat.Stats, error) {
	g, err := hypergraph.Generate(e.Registry, partial)
	if err != nil {
		return nil, nil, sat.Stats{}, err
	}
	prob := constraint.Encode(g, e.Encoding)
	solver := e.Solver
	if solver == nil {
		solver = sat.NewCDCL()
	}

	root := e.Tracer.Span("config.session")
	defer root.End()
	inc := sat.Observe(sat.StartIncremental(solver, prob.Formula), e.observeSolves(root))
	res := inc.SolveAssuming(nil)
	switch res.Status {
	case sat.Sat:
	case sat.Unsat:
		return nil, nil, res.Stats, e.unsatError(g, root, partial)
	default:
		return nil, nil, res.Stats, fmt.Errorf("config: solver %q gave up", solver.Name())
	}

	full, err := e.build(g, partial, prob.Selected(res.Model))
	if err != nil {
		return nil, nil, res.Stats, err
	}
	if !e.SkipCheck {
		if err := checkAfterBuild(e, full); err != nil {
			return nil, nil, res.Stats, err
		}
	}
	root.Int("instances", int64(len(full.Instances)))
	return full, &Session{Graph: g, Problem: prob, Inc: inc, Model: res.Model}, res.Stats, nil
}

// Resolve answers a repeat of the session's original configuration
// request on the warm path. The session's clause set has not grown
// since the cold solve proved Model (pooled sessions only ever Resolve
// or SolvePinned, and assumptions are temporary), so that model is
// still a model: the warm path pays zero solver effort — no decisions,
// no propagations — and rebuilds the full specification from the
// retained model. The returned zero-valued stats are the per-call
// effort delta; compared against the cold solve's real search they are
// what the control plane's load test asserts ("warm requests do
// strictly fewer propagations"). If the model was discarded (Model
// nil), Resolve re-proves it with one warm incremental solve first.
func (s *Session) Resolve(e *Engine, partial *spec.Partial) (*spec.Full, sat.Stats, error) {
	var st sat.Stats
	if s.Model == nil {
		res := s.Inc.SolveAssuming(nil)
		if res.Status != sat.Sat {
			return nil, res.Stats, fmt.Errorf("config: warm session re-solve came back %s", res.Status)
		}
		s.Model = res.Model
		st = res.Stats
	}
	full, err := e.build(s.Graph, partial, s.Problem.Selected(s.Model))
	if err != nil {
		return nil, st, err
	}
	if !e.SkipCheck {
		if err := checkAfterBuild(e, full); err != nil {
			return nil, st, err
		}
	}
	return full, st, nil
}

// SolvePinned re-solves the session's formula with the given instance
// IDs assumed selected (pinned true), returning the solver's result —
// per-call effort deltas included. A Sat result proves the pinned
// configuration still extends to a full one; the warm session makes
// the proof cheap when the pins cover most of the fleet (only the
// unpinned cone is genuinely re-searched). Unknown IDs are an error so
// a stale desired-state record cannot silently pin nothing.
func (s *Session) SolvePinned(ids []string) (sat.Result, error) {
	assumps := make([]sat.Lit, 0, len(ids))
	for _, id := range ids {
		v, ok := s.Problem.VarOf[id]
		if !ok {
			return sat.Result{}, fmt.Errorf("config: pinned instance %q is not in the configuration problem", id)
		}
		assumps = append(assumps, sat.Lit(v))
	}
	res := s.Inc.SolveAssuming(assumps)
	if res.Status == sat.Sat {
		s.Model = res.Model
	}
	return res, nil
}

// Selected maps a model back to the selected instance IDs (the
// session-level view of Problem.Selected).
func (s *Session) Selected(model []bool) map[string]bool { return s.Problem.Selected(model) }
