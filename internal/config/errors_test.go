package config

import (
	"errors"
	"testing"

	"engage/internal/resource"
	"engage/internal/spec"
)

// Table-driven coverage of the engine's error paths — unsat constraint
// systems, dangling port references, and propagation/static-check
// conflicts — each asserting the exact error message a caller sees.

// box is the machine type shared by every fixture.
var box = resource.MakeKey("Box", "1")

func insideBox() *resource.Dependency {
	return &resource.Dependency{Alternatives: []resource.Key{box}}
}

func buildRegistry(t *testing.T, types ...*resource.Type) *resource.Registry {
	t.Helper()
	reg := resource.NewRegistry()
	if err := reg.Add(&resource.Type{Key: box}); err != nil {
		t.Fatalf("Add(Box): %v", err)
	}
	for _, ty := range types {
		if err := reg.Add(ty); err != nil {
			t.Fatalf("Add(%v): %v", ty.Key, err)
		}
	}
	return reg
}

func TestConfigureErrorPaths(t *testing.T) {
	str := resource.T(resource.KindString)
	port := resource.T(resource.KindPort)

	tests := []struct {
		name    string
		setup   func(t *testing.T) (*resource.Registry, *spec.Partial)
		wantErr string
	}{
		{
			// Two sibling versions of the same family are both pinned
			// in the partial spec; a dependency edge on the abstract
			// family then has two forced-true targets, violating
			// exactly-one.
			name: "unsat",
			setup: func(t *testing.T) (*resource.Registry, *spec.Partial) {
				db := resource.Key{Name: "Db"}
				reg := buildRegistry(t,
					&resource.Type{Key: db, Abstract: true, Inside: insideBox()},
					&resource.Type{Key: resource.MakeKey("Db", "1.0"), Extends: &db},
					&resource.Type{Key: resource.MakeKey("Db", "2.0"), Extends: &db},
					&resource.Type{Key: resource.MakeKey("App", "1"), Inside: insideBox(),
						Env: []resource.Dependency{{Alternatives: []resource.Key{db}}}},
				)
				p := &spec.Partial{}
				p.Add("m", box)
				p.Add("app", resource.MakeKey("App", "1")).In("m")
				p.Add("db1", resource.MakeKey("Db", "1.0")).In("m")
				p.Add("db2", resource.MakeKey("Db", "2.0")).In("m")
				return reg, p
			},
			wantErr: "config: no full installation specification extends the partial specification (constraints unsatisfiable)\n" +
				"these 4 constraints are jointly unsatisfiable (minimal core, shrunk from a solver core of 4):\n" +
				"  - the specification pins instance \"app\" to App 1\n" +
				"  - the specification pins instance \"db1\" to Db 1.0\n" +
				"  - the specification pins instance \"db2\" to Db 2.0\n" +
				"  - instance \"app\" (App 1) requires exactly one environment dependency among \"db1\" (Db 1.0), \"db2\" (Db 2.0)",
		},
		{
			name: "static config port without value",
			setup: func(t *testing.T) (*resource.Registry, *spec.Partial) {
				reg := buildRegistry(t,
					&resource.Type{Key: resource.MakeKey("S", "1"), Inside: insideBox(),
						Config: []resource.Port{{Name: "sp", Type: str, Static: true}}},
				)
				p := &spec.Partial{}
				p.Add("m", box)
				p.Add("s", resource.MakeKey("S", "1")).In("m")
				return reg, p
			},
			wantErr: `config: instance "s": static config port "sp" has no value`,
		},
		{
			name: "config port without value or default",
			setup: func(t *testing.T) (*resource.Registry, *spec.Partial) {
				reg := buildRegistry(t,
					&resource.Type{Key: resource.MakeKey("S", "1"), Inside: insideBox(),
						Config: []resource.Port{{Name: "cp", Type: str}}},
				)
				p := &spec.Partial{}
				p.Add("m", box)
				p.Add("s", resource.MakeKey("S", "1")).In("m")
				return reg, p
			},
			wantErr: `config: instance "s": config port "cp" has no value and no default`,
		},
		{
			// Dangling port: the dependency's port map names an output
			// the upstream type does not define.
			name: "upstream lacks mapped output",
			setup: func(t *testing.T) (*resource.Registry, *spec.Partial) {
				y := resource.MakeKey("Y", "1")
				reg := buildRegistry(t,
					&resource.Type{Key: y, Inside: insideBox()},
					&resource.Type{Key: resource.MakeKey("X", "1"), Inside: insideBox(),
						Input: []resource.Port{{Name: "in", Type: str}},
						Env: []resource.Dependency{{
							Alternatives: []resource.Key{y},
							PortMap:      map[string]string{"nope": "in"},
						}}},
				)
				p := &spec.Partial{}
				p.Add("m", box)
				p.Add("x", resource.MakeKey("X", "1")).In("m")
				return reg, p
			},
			wantErr: `config: instance "x": upstream "y-1@m" has no output "nope"`,
		},
		{
			name: "config default not assignable to port type",
			setup: func(t *testing.T) (*resource.Registry, *spec.Partial) {
				reg := buildRegistry(t,
					&resource.Type{Key: resource.MakeKey("S", "1"), Inside: insideBox(),
						Config: []resource.Port{{Name: "bad", Type: port,
							Def: resource.Lit{V: resource.Str("oops")}}}},
				)
				p := &spec.Partial{}
				p.Add("m", box)
				p.Add("s", resource.MakeKey("S", "1")).In("m")
				return reg, p
			},
			wantErr: `config: instance "s": config port "bad": string not assignable to tcp_port`,
		},
		{
			// A reverse port map may only flow static outputs; a
			// non-static output is not yet computed when reverse flows
			// run.
			name: "reverse-mapped output not static",
			setup: func(t *testing.T) (*resource.Registry, *spec.Partial) {
				y := resource.MakeKey("Y", "1")
				reg := buildRegistry(t,
					&resource.Type{Key: y, Inside: insideBox(),
						Input: []resource.Port{{Name: "rin", Type: str}}},
					&resource.Type{Key: resource.MakeKey("X", "1"), Inside: insideBox(),
						Output: []resource.Port{{Name: "ro", Type: str,
							Def: resource.Lit{V: resource.Str("v")}}},
						Env: []resource.Dependency{{
							Alternatives:   []resource.Key{y},
							ReversePortMap: map[string]string{"ro": "rin"},
						}}},
				)
				p := &spec.Partial{}
				p.Add("m", box)
				p.Add("x", resource.MakeKey("X", "1")).In("m")
				return reg, p
			},
			wantErr: `config: instance "x": reverse-mapped output "ro" not computed (must be static)`,
		},
		{
			// Propagation succeeds but the generated spec fails static
			// checking: two instances claim the same TCP port on one
			// machine. checkAfterBuild wraps the typecheck error.
			name: "generated spec fails static checking",
			setup: func(t *testing.T) (*resource.Registry, *spec.Partial) {
				reg := buildRegistry(t,
					&resource.Type{Key: resource.MakeKey("P", "1"), Inside: insideBox(),
						Config: []resource.Port{{Name: "port", Type: port,
							Def: resource.Lit{V: resource.PortV(8080)}}}},
				)
				p := &spec.Partial{}
				p.Add("m", box)
				p.Add("p1", resource.MakeKey("P", "1")).In("m")
				p.Add("p2", resource.MakeKey("P", "1")).In("m")
				return reg, p
			},
			wantErr: `config: generated specification fails static checking: instance "p2": config port "port" claims TCP port 8080 on machine "m", already claimed by "p1".port`,
		},
	}

	for _, parallelism := range []int{0, 4} {
		for _, tc := range tests {
			tc := tc
			t.Run(tc.name, func(t *testing.T) {
				reg, p := tc.setup(t)
				eng := New(reg)
				eng.Parallelism = parallelism
				_, err := eng.Configure(p)
				if err == nil {
					t.Fatalf("Configure succeeded, want error %q", tc.wantErr)
				}
				if err.Error() != tc.wantErr {
					t.Fatalf("Configure error:\n got %q\nwant %q", err.Error(), tc.wantErr)
				}
				if tc.name == "unsat" {
					var ue UnsatError
					if !errors.As(err, &ue) {
						t.Fatalf("unsat error is %T, want UnsatError", err)
					}
				}
			})
		}
	}
}

// TestUnsatExplanationCached: the MUS explanation is derived once per
// partial specification — a retry loop re-running Configure on the same
// *spec.Partial (the self-healing deployment path) gets the cached
// explanation back instead of paying the shrink again.
func TestUnsatExplanationCached(t *testing.T) {
	db := resource.Key{Name: "Db"}
	reg := buildRegistry(t,
		&resource.Type{Key: db, Abstract: true, Inside: insideBox()},
		&resource.Type{Key: resource.MakeKey("Db", "1.0"), Extends: &db},
		&resource.Type{Key: resource.MakeKey("Db", "2.0"), Extends: &db},
		&resource.Type{Key: resource.MakeKey("App", "1"), Inside: insideBox(),
			Env: []resource.Dependency{{Alternatives: []resource.Key{db}}}},
	)
	p := &spec.Partial{}
	p.Add("m", box)
	p.Add("app", resource.MakeKey("App", "1")).In("m")
	p.Add("db1", resource.MakeKey("Db", "1.0")).In("m")
	p.Add("db2", resource.MakeKey("Db", "2.0")).In("m")

	eng := New(reg)
	var ue1, ue2 UnsatError
	if _, err := eng.Configure(p); !errors.As(err, &ue1) || ue1.Explanation == nil {
		t.Fatalf("first Configure: %v", err)
	}
	if _, err := eng.Configure(p); !errors.As(err, &ue2) {
		t.Fatalf("second Configure: %v", err)
	}
	if ue1.Explanation != ue2.Explanation {
		t.Error("explanation re-derived on retry; want the cached pointer")
	}
	if len(ue1.Explanation.Core) != 4 {
		t.Errorf("MUS size = %d, want 4", len(ue1.Explanation.Core))
	}

	// A distinct partial (same content) is a new derivation.
	p2 := &spec.Partial{}
	p2.Add("m", box)
	p2.Add("app", resource.MakeKey("App", "1")).In("m")
	p2.Add("db1", resource.MakeKey("Db", "1.0")).In("m")
	p2.Add("db2", resource.MakeKey("Db", "2.0")).In("m")
	var ue3 UnsatError
	if _, err := eng.Configure(p2); !errors.As(err, &ue3) || ue3.Explanation == nil {
		t.Fatalf("third Configure: %v", err)
	}
	if ue3.Explanation == ue1.Explanation {
		t.Error("distinct partials must not share a cached explanation")
	}
}
