// Package config implements Engage's configuration engine (§4 of the
// paper): it takes a collection of resource types and a partial
// installation specification and produces a full installation
// specification, by (1) generating the dependency hypergraph,
// (2) generating Boolean constraints and solving them, and
// (3) propagating configuration options along the application stack in
// topological order of dependencies.
package config

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"engage/internal/constraint"
	"engage/internal/hypergraph"
	"engage/internal/lint"
	"engage/internal/resource"
	"engage/internal/sat"
	"engage/internal/spec"
	"engage/internal/telemetry"
	"engage/internal/typecheck"
)

// Engine is the configuration engine. The zero Solver/Encoding default
// to the CDCL solver with the paper's pairwise exactly-one encoding.
// Solvers implementing sat.IncrementalSource (CDCL does) let the
// enumeration and minimization paths (Alternatives, ConfigureMinimal)
// reuse warm solver state across re-solves; other solvers work through
// the cold compatibility adapter.
type Engine struct {
	Registry *resource.Registry
	Solver   sat.Solver
	Encoding constraint.Encoding
	// SkipCheck disables the final CheckSpec pass (used only by
	// benchmarks isolating solver cost).
	SkipCheck bool
	// Parallelism governs the whole pipeline: it bounds the worker
	// pools for hypergraph generation and constraint emission, sets the
	// portfolio width for SAT solving, and bounds the worker pools for
	// spec build and port propagation. Values ≤ 0 run the sequential
	// reference path. The front half's output is byte-identical at any
	// parallelism; the back half solves through a racing portfolio
	// whose winning model is canonicalized, so the full specification
	// is byte-identical at any parallelism ≥ 1 (and, after
	// canonicalization, to the sequential solver's canonicalized model
	// — see internal/workload's differential suites). Note the
	// sequential path (0) skips canonicalization and may therefore pick
	// a different — equally valid — model than parallel runs.
	Parallelism int
	// MeasureAllocs additionally fills the per-stage allocation
	// counters in Stats via runtime.ReadMemStats deltas. Off by
	// default: ReadMemStats stops the world.
	MeasureAllocs bool
	// Tracer, when non-nil, receives one span per pipeline stage
	// (config.graph / config.encode / config.solve / config.build under
	// a "config" root), wave and shard progress events, and one
	// "sat.solve" event per incremental re-solve in Alternatives and
	// ConfigureMinimal. For these stages wall time is authoritative —
	// nothing advances the virtual clock during configuration.
	Tracer *telemetry.Tracer
	// Metrics, when non-nil, absorbs Stats (see Stats.Publish) plus
	// per-solve solver effort counters.
	Metrics *telemetry.Registry

	// lastUnsat memoizes the lint explanation of the most recent
	// unsatisfiable partial specification, keyed by pointer identity:
	// retry loops (deployment self-healing re-runs Configure on the
	// same *spec.Partial) get the cached explanation instead of paying
	// the MUS derivation again.
	mu        sync.Mutex
	lastUnsat struct {
		partial *spec.Partial
		expl    *lint.UnsatExplanation
	}
}

// New returns an engine over a registry with default solver settings.
func New(reg *resource.Registry) *Engine {
	return &Engine{Registry: reg, Solver: sat.NewCDCL()}
}

// Stats reports the work done by a Configure call.
type Stats struct {
	GraphNodes int
	GraphEdges int
	Vars       int
	Clauses    int
	Solver     sat.Stats
	// Per-stage wall clock: hypergraph generation, constraint
	// encoding, SAT solving (portfolio + canonicalization when
	// parallel), and build+propagate+check. PropagateWall is the port
	// propagation slice of BuildWall, broken out so the back-half
	// benches can report it separately.
	GraphWall     time.Duration
	EncodeWall    time.Duration
	SolveWall     time.Duration
	BuildWall     time.Duration
	PropagateWall time.Duration
	// Per-stage heap allocation deltas (bytes), filled only when
	// Engine.MeasureAllocs is set.
	GraphAlloc  uint64
	EncodeAlloc uint64
	SolveAlloc  uint64
	BuildAlloc  uint64
}

// stageMeter times one pipeline stage and, optionally, its allocations.
type stageMeter struct {
	measureAllocs bool
	start         time.Time
	startAlloc    uint64
}

func startStage(measureAllocs bool) stageMeter {
	m := stageMeter{measureAllocs: measureAllocs}
	if measureAllocs {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		m.startAlloc = ms.TotalAlloc
	}
	m.start = time.Now()
	return m
}

func (m stageMeter) stop(wall *time.Duration, alloc *uint64) {
	*wall = time.Since(m.start)
	if m.measureAllocs {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		*alloc = ms.TotalAlloc - m.startAlloc
	}
}

// UnsatError is returned when no full installation specification extends
// the partial specification (Theorem 1's "iff" in the negative).
// Explanation, when non-nil, carries the diagnostics engine's minimal
// unsatisfiable subset naming the conflicting instances and resources.
type UnsatError struct {
	Explanation *lint.UnsatExplanation
}

func (e UnsatError) Error() string {
	const msg = "config: no full installation specification extends the partial specification (constraints unsatisfiable)"
	if e.Explanation == nil {
		return msg
	}
	return msg + "\n" + e.Explanation.Story()
}

// unsatError builds the UnsatError for a partial specification whose
// constraints came back unsatisfiable, deriving (or recalling) the
// minimal-core explanation. The derivation runs once per partial: a
// retry on the same *spec.Partial reuses the cached explanation.
func (e *Engine) unsatError(g *hypergraph.Graph, parent *telemetry.Span, partial *spec.Partial) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.lastUnsat.partial == partial {
		return UnsatError{Explanation: e.lastUnsat.expl}
	}
	sp := parent.Child("config.lint")
	expl := lint.ExplainGraphUnsat(g, lint.Options{Encoding: e.Encoding, Solver: e.Solver})
	if expl != nil && len(expl.Core) == 0 {
		// A degenerate session (e.g. a stub solver with no real core)
		// explains nothing; drop it rather than tell an empty story.
		expl = nil
	}
	if expl != nil {
		sp.Int("mus", int64(len(expl.Core))).
			Int("rawCore", int64(expl.RawCoreSize)).
			Int("solves", int64(expl.Solves))
	}
	sp.End()
	e.lastUnsat.partial = partial
	e.lastUnsat.expl = expl
	return UnsatError{Explanation: expl}
}

// Configure computes a full installation specification extending the
// partial specification, or an error.
func (e *Engine) Configure(partial *spec.Partial) (*spec.Full, error) {
	full, _, err := e.ConfigureStats(partial)
	return full, err
}

// ConfigureStats is Configure with effort statistics.
func (e *Engine) ConfigureStats(partial *spec.Partial) (full *spec.Full, st Stats, err error) {
	root := e.Tracer.Span("config")
	defer func() {
		if err != nil {
			root.Str("error", err.Error())
		}
		root.Int("graph_nodes", int64(st.GraphNodes)).
			Int("graph_edges", int64(st.GraphEdges)).
			Int("vars", int64(st.Vars)).
			Int("clauses", int64(st.Clauses)).
			End()
		st.Publish(e.Metrics)
	}()

	sp := root.Child("config.graph")
	m := startStage(e.MeasureAllocs)
	g, err := hypergraph.GenerateOpts(e.Registry, partial, hypergraph.Options{Parallelism: e.Parallelism, Span: sp})
	m.stop(&st.GraphWall, &st.GraphAlloc)
	if err != nil {
		sp.End()
		return nil, st, err
	}
	st.GraphNodes = g.Len()
	st.GraphEdges = len(g.Edges)
	sp.Int("nodes", int64(st.GraphNodes)).Int("edges", int64(st.GraphEdges)).End()

	sp = root.Child("config.encode")
	m = startStage(e.MeasureAllocs)
	var prob *constraint.Problem
	if e.Parallelism > 0 {
		prob = constraint.EncodeParallelTraced(g, e.Encoding, e.Parallelism, sp)
	} else {
		prob = constraint.Encode(g, e.Encoding)
	}
	m.stop(&st.EncodeWall, &st.EncodeAlloc)
	st.Vars = prob.Formula.NumVars
	st.Clauses = len(prob.Formula.Clauses)
	sp.Int("vars", int64(st.Vars)).Int("clauses", int64(st.Clauses)).End()

	solver := e.Solver
	if solver == nil {
		solver = sat.NewCDCL()
	}
	_, isCDCL := solver.(*sat.CDCL)
	sp = root.Child("config.solve").Str("solver", solver.Name())
	m = startStage(e.MeasureAllocs)
	var res sat.Result
	var solveErr error
	if e.Parallelism > 0 && isCDCL {
		// Portfolio solve: Parallelism diversified workers race on the
		// formula; the winning model is canonicalized on the winner's
		// warm session so the answer is deterministic regardless of
		// which worker won (and of the portfolio width).
		res, solveErr = e.solvePortfolio(g, prob, sp)
	} else {
		res = solver.Solve(prob.Formula)
	}
	m.stop(&st.SolveWall, &st.SolveAlloc)
	st.Solver = res.Stats
	spanSolverStats(sp, res).End()
	if solveErr != nil {
		return nil, st, solveErr
	}
	switch res.Status {
	case sat.Sat:
	case sat.Unsat:
		return nil, st, e.unsatError(g, root, partial)
	default:
		return nil, st, fmt.Errorf("config: solver %q gave up", solver.Name())
	}

	sp = root.Child("config.build")
	m = startStage(e.MeasureAllocs)
	selected := prob.Selected(res.Model)
	full, bt, err := e.buildOpts(g, partial, selected, e.Parallelism, sp)
	st.PropagateWall = bt.propagate
	if err != nil {
		m.stop(&st.BuildWall, &st.BuildAlloc)
		sp.End()
		return nil, st, err
	}
	if !e.SkipCheck {
		if err := checkAfterBuild(e, full); err != nil {
			m.stop(&st.BuildWall, &st.BuildAlloc)
			sp.End()
			return nil, st, err
		}
	}
	m.stop(&st.BuildWall, &st.BuildAlloc)
	sp.Int("instances", int64(len(full.Instances))).End()
	return full, st, nil
}

// solvePortfolio is the parallel solve stage: a racing portfolio of
// e.Parallelism CDCL workers followed by canonicalization of the
// winning model over the instance variables in graph order. It emits
// one "solve.portfolio" event per worker on sp (the winner's effort,
// and each loser's effort at the moment the stop flag cancelled it)
// and stamps the portfolio shape onto sp itself.
func (e *Engine) solvePortfolio(g *hypergraph.Graph, prob *constraint.Problem, sp *telemetry.Span) (sat.Result, error) {
	pr := sat.SolvePortfolio(prob.Formula, e.Parallelism)
	for _, w := range pr.Workers {
		sp.Event("solve.portfolio").
			Int("worker", int64(w.Worker)).
			Bool("winner", w.Winner).
			Str("status", w.Status.String()).
			Int("restarts", w.Stats.Restarts).
			Int("conflicts", w.Stats.Conflicts).
			Int("decisions", w.Stats.Decisions).
			Int("shared_in", w.SharedIn).
			Int("shared_out", w.SharedOut).
			Emit()
	}
	sp.Int("portfolio_workers", int64(len(pr.Workers))).Int("portfolio_winner", int64(pr.Winner))
	res := pr.Result
	res.Stats = pr.TotalStats() // honest effort: all workers, not just the winner
	if res.Status != sat.Sat {
		return res, nil
	}
	order := make([]int, 0, len(g.Order))
	for _, id := range g.Order {
		order = append(order, prob.VarOf[id])
	}
	canon, solves, err := sat.CanonicalModel(pr.Session(), res.Model, order)
	if err != nil {
		return res, fmt.Errorf("config: canonicalizing portfolio model: %w", err)
	}
	sp.Int("canon_solves", int64(solves))
	res.Model = canon
	return res, nil
}

// spanSolverStats stamps one solve's effort onto a span.
func spanSolverStats(sp *telemetry.Span, res sat.Result) *telemetry.Span {
	return sp.Str("status", res.Status.String()).
		Int("decisions", res.Stats.Decisions).
		Int("propagations", res.Stats.Propagations).
		Int("conflicts", res.Stats.Conflicts).
		Int("learned", res.Stats.Learned).
		Int("restarts", res.Stats.Restarts)
}

// Publish copies the per-call stats into a metrics registry: stage
// walls/allocs as histograms (one observation per Configure), graph and
// formula sizes as gauges, and solver effort as counters. A nil
// registry is ignored, so Stats remains usable standalone while the
// registry supersedes it as the one pipeline-wide snapshot.
func (st Stats) Publish(r *telemetry.Registry) {
	if r == nil {
		return
	}
	r.Gauge("config.graph_nodes").Set(int64(st.GraphNodes))
	r.Gauge("config.graph_edges").Set(int64(st.GraphEdges))
	r.Gauge("config.vars").Set(int64(st.Vars))
	r.Gauge("config.clauses").Set(int64(st.Clauses))
	r.Counter("sat.decisions").Add(st.Solver.Decisions)
	r.Counter("sat.propagations").Add(st.Solver.Propagations)
	r.Counter("sat.conflicts").Add(st.Solver.Conflicts)
	r.Counter("sat.learned").Add(st.Solver.Learned)
	r.Counter("sat.restarts").Add(st.Solver.Restarts)
	r.Histogram("config.graph_wall_ns").Observe(int64(st.GraphWall))
	r.Histogram("config.encode_wall_ns").Observe(int64(st.EncodeWall))
	r.Histogram("config.solve_wall_ns").Observe(int64(st.SolveWall))
	r.Histogram("config.build_wall_ns").Observe(int64(st.BuildWall))
	r.Histogram("config.propagate_wall_ns").Observe(int64(st.PropagateWall))
}

// observeSolves returns a sat.Observe callback emitting one "sat.solve"
// event per SolveAssuming on sp and bumping solver-effort counters, or
// nil when telemetry is disabled (Observe then returns the session
// unwrapped, keeping the hot path free).
func (e *Engine) observeSolves(sp *telemetry.Span) func([]sat.Lit, sat.Result) {
	if e.Tracer == nil && e.Metrics == nil {
		return nil
	}
	call := int64(0)
	return func(assumps []sat.Lit, res sat.Result) {
		call++
		sp.Event("sat.solve").
			Int("call", call).
			Int("assumptions", int64(len(assumps))).
			Str("status", res.Status.String()).
			Int("decisions", res.Stats.Decisions).
			Int("propagations", res.Stats.Propagations).
			Int("conflicts", res.Stats.Conflicts).
			Int("learned", res.Stats.Learned).
			Int("restarts", res.Stats.Restarts).
			Emit()
		if e.Metrics != nil {
			e.Metrics.Counter("sat.solves").Inc()
			e.Metrics.Counter("sat.decisions").Add(res.Stats.Decisions)
			e.Metrics.Counter("sat.propagations").Add(res.Stats.Propagations)
			e.Metrics.Counter("sat.conflicts").Add(res.Stats.Conflicts)
			e.Metrics.Counter("sat.learned").Add(res.Stats.Learned)
			e.Metrics.Counter("sat.restarts").Add(res.Stats.Restarts)
		}
	}
}

// checkAfterBuild validates an engine-generated specification.
func checkAfterBuild(e *Engine, full *spec.Full) error {
	if err := typecheck.CheckSpec(e.Registry, full); err != nil {
		return fmt.Errorf("config: generated specification fails static checking: %w", err)
	}
	return nil
}

// build assembles the full specification from the solved selection and
// propagates port values (the sequential reference path; the parallel
// pipeline goes through buildOpts, see parallel.go).
func (e *Engine) build(g *hypergraph.Graph, partial *spec.Partial, selected map[string]bool) (*spec.Full, error) {
	full, _, err := e.buildOpts(g, partial, selected, 0, nil)
	return full, err
}

// instanceFromNode materializes one selected graph node as a spec
// instance. Pure per-node work — the parallel build runs it
// concurrently for distinct nodes.
func instanceFromNode(n *hypergraph.Node) *spec.Instance {
	inst := &spec.Instance{
		ID:      n.ID,
		Key:     n.Key,
		Machine: n.Machine,
		Inside:  n.Inside,
		Config:  make(map[string]resource.Value, len(n.Config)),
		Input:   make(map[string]resource.Value),
		Output:  make(map[string]resource.Value),
	}
	for k, v := range n.Config {
		inst.Config[k] = v
	}
	return inst
}

// propagate computes port values: static ports first (they are known at
// instantiation time and may flow in reverse), then a linear pass in
// topological order filling input ports from upstream outputs, config
// ports from overrides or defaults, and output ports from their
// definitions (§4, final paragraph). This is the sequential reference;
// propagateParallel (parallel.go) runs the same three passes with the
// first and third fanned out over a worker pool, and falls back to
// this walk on error so error messages stay identical.
func (e *Engine) propagate(full *spec.Full, byID map[string]*spec.Instance) error {
	// Pass 0: static config and output ports.
	for _, inst := range full.Instances {
		if err := e.propagateStatic(inst); err != nil {
			return err
		}
	}

	if err := e.propagateReverse(full, byID); err != nil {
		return err
	}

	// Main pass in dependency order.
	order, err := full.TopoOrder()
	if err != nil {
		return err
	}
	for _, inst := range order {
		if err := e.propagateNode(inst, byID); err != nil {
			return err
		}
	}
	return nil
}

// propagateStatic fills one instance's static config and output ports.
// It reads and writes only inst.
func (e *Engine) propagateStatic(inst *spec.Instance) error {
	t := e.Registry.MustLookup(inst.Key)
	for _, p := range t.Config {
		if !p.Static {
			continue
		}
		if _, overridden := inst.Config[p.Name]; overridden {
			continue
		}
		if p.Def == nil {
			return fmt.Errorf("config: instance %q: static config port %q has no value", inst.ID, p.Name)
		}
		v, err := p.Def.Eval(resource.MapScope{})
		if err != nil {
			return fmt.Errorf("config: instance %q: static config port %q: %v", inst.ID, p.Name, err)
		}
		inst.Config[p.Name] = v
	}
	for _, p := range t.Output {
		if !p.Static {
			continue
		}
		v, err := p.Def.Eval(resource.MapScope{Configs: inst.Config})
		if err != nil {
			return fmt.Errorf("config: instance %q: static output port %q: %v", inst.ID, p.Name, err)
		}
		inst.Output[p.Name] = v
	}
	return nil
}

// propagateReverse applies reverse flows: static outputs of dependents
// feed dependee inputs. Writes cross instance boundaries, so this pass
// stays serial even in the parallel pipeline.
func (e *Engine) propagateReverse(full *spec.Full, byID map[string]*spec.Instance) error {
	for _, inst := range full.Instances {
		for _, l := range inst.Deps {
			for outPort, inPort := range l.ReversePortMap {
				v, ok := inst.Output[outPort]
				if !ok {
					return fmt.Errorf("config: instance %q: reverse-mapped output %q not computed (must be static)", inst.ID, outPort)
				}
				target := byID[l.Target]
				if target == nil {
					return fmt.Errorf("config: instance %q: reverse map targets unknown instance %q", inst.ID, l.Target)
				}
				target.Input[inPort] = v
			}
		}
	}
	return nil
}

// propagateNode runs the main propagation pass for one instance whose
// dependencies have all been propagated: inputs from upstream outputs,
// config ports from overrides or defaults, output ports from their
// definitions. It writes only to inst and reads upstream instances'
// Output maps — which the wave schedule guarantees are complete and
// no longer written.
func (e *Engine) propagateNode(inst *spec.Instance, byID map[string]*spec.Instance) error {
	t := e.Registry.MustLookup(inst.Key)

	// Inputs from upstream outputs.
	for _, l := range inst.Deps {
		target := byID[l.Target]
		for outPort, inPort := range l.PortMap {
			v, ok := target.Output[outPort]
			if !ok {
				return fmt.Errorf("config: instance %q: upstream %q has no output %q", inst.ID, l.Target, outPort)
			}
			inst.Input[inPort] = v
		}
	}

	scope := resource.MapScope{Inputs: inst.Input, Configs: inst.Config}

	// Config ports: override > default expression.
	for _, p := range t.Config {
		if _, done := inst.Config[p.Name]; done {
			continue
		}
		if p.Def == nil {
			return fmt.Errorf("config: instance %q: config port %q has no value and no default", inst.ID, p.Name)
		}
		v, err := p.Def.Eval(scope)
		if err != nil {
			return fmt.Errorf("config: instance %q: config port %q: %v", inst.ID, p.Name, err)
		}
		if !v.Type().AssignableTo(p.Type) {
			return fmt.Errorf("config: instance %q: config port %q: %s not assignable to %s",
				inst.ID, p.Name, v.Type(), p.Type)
		}
		inst.Config[p.Name] = v
	}

	// Output ports.
	for _, p := range t.Output {
		if _, done := inst.Output[p.Name]; done {
			continue // static, already computed
		}
		v, err := p.Def.Eval(scope)
		if err != nil {
			return fmt.Errorf("config: instance %q: output port %q: %v", inst.ID, p.Name, err)
		}
		inst.Output[p.Name] = v
	}
	return nil
}
