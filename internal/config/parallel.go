package config

// This file is the parallel back half of the configuration pipeline:
// concurrent instance construction and hyperedge resolution, and
// Kahn-style wave scheduling of port propagation over the instance
// DAG. It mirrors the front half's wave machinery (see
// internal/hypergraph/parallel.go) but is much simpler: port values
// are pure functions of upstream outputs, so there is no speculation
// to invalidate — a wave's instances touch disjoint state by
// construction, and every dependency was finished by an earlier wave.
//
// Error semantics match the sequential path exactly: on any error in a
// parallel pass the engine reruns the serial walk, which — because all
// port evaluations are pure and idempotent — reproduces the exact
// first error the sequential pipeline would have reported.

import (
	"fmt"
	"time"

	"engage/internal/conc"
	"engage/internal/constraint"
	"engage/internal/hypergraph"
	"engage/internal/spec"
	"engage/internal/telemetry"
)

// buildTiming carries sub-stage timings out of buildOpts so Stats can
// report the port-propagation slice of the build wall separately.
type buildTiming struct {
	propagate time.Duration
	waves     int
}

// buildOpts assembles the full specification from the solved selection
// and propagates port values, fanning instance construction, hyperedge
// resolution, and propagation over a pool of the given width. workers
// ≤ 1 is the sequential reference path with identical output and
// errors; workers > 1 produces byte-identical output (instance order
// follows graph order, dep links follow edge order, and port values
// are pure functions of the DAG).
func (e *Engine) buildOpts(g *hypergraph.Graph, partial *spec.Partial, selected map[string]bool, workers int, sp *telemetry.Span) (*spec.Full, buildTiming, error) {
	var bt buildTiming

	// Instance construction: one independent slot per graph node, then
	// a serial fan-in that preserves graph order.
	nodes := g.Nodes()
	slots := make([]*spec.Instance, len(nodes))
	conc.ParallelFor(len(nodes), workers, func(i int) {
		if selected[nodes[i].ID] {
			slots[i] = instanceFromNode(nodes[i])
		}
	})
	full := &spec.Full{}
	byID := make(map[string]*spec.Instance, len(nodes))
	for _, inst := range slots {
		if inst == nil {
			continue
		}
		full.Instances = append(full.Instances, inst)
		byID[inst.ID] = inst
	}

	// Hyperedge resolution: ChosenTarget per edge is independent; the
	// serial fan-in appends dep links in edge order and returns the
	// first error in edge order, exactly like the sequential loop.
	type edgeRes struct {
		target string
		err    error
	}
	eres := make([]edgeRes, len(g.Edges))
	conc.ParallelFor(len(g.Edges), workers, func(i int) {
		edge := g.Edges[i]
		if byID[edge.Source] == nil {
			return // source not deployed
		}
		eres[i].target, eres[i].err = constraint.ChosenTarget(edge, selected)
	})
	for i, edge := range g.Edges {
		src := byID[edge.Source]
		if src == nil {
			continue
		}
		if eres[i].err != nil {
			return nil, bt, eres[i].err
		}
		src.Deps = append(src.Deps, spec.DepLink{
			Class:          edge.Class,
			Target:         eres[i].target,
			PortMap:        edge.PortMap,
			ReversePortMap: edge.ReversePortMap,
		})
	}

	start := time.Now()
	var err error
	if workers > 1 {
		err = e.propagateParallel(full, byID, workers, sp, &bt)
	} else {
		err = e.propagate(full, byID)
	}
	bt.propagate = time.Since(start)
	if err != nil {
		return nil, bt, err
	}
	if bt.waves > 0 {
		sp.Int("propagate_waves", int64(bt.waves))
	}
	return full, bt, nil
}

// propagateParallel runs the three propagation passes with the static
// and main passes fanned out over the worker pool. The static pass is
// embarrassingly parallel (each instance touches only itself); the
// reverse pass stays serial (its writes cross instance boundaries and
// it is a tiny fraction of the work); the main pass runs as Kahn waves
// over the instance DAG — every instance whose dependencies have all
// been propagated is ready, and ready instances propagate concurrently
// because propagateNode writes only its own instance and reads only
// finished upstream Output maps.
//
// On any error in a parallel pass the serial walk is rerun and its
// error returned, so failures report exactly what the sequential
// pipeline would have said, in the same order.
func (e *Engine) propagateParallel(full *spec.Full, byID map[string]*spec.Instance, workers int, sp *telemetry.Span, bt *buildTiming) error {
	n := len(full.Instances)

	// Pass 0: static config and output ports, one instance per task.
	errs := make([]error, n)
	conc.ParallelFor(n, workers, func(i int) {
		errs[i] = e.propagateStatic(full.Instances[i])
	})
	for _, err := range errs {
		if err != nil {
			return e.serialFallback(full, byID, err)
		}
	}

	// Reverse flows: serial, writes cross instance boundaries.
	if err := e.propagateReverse(full, byID); err != nil {
		return err
	}

	// Main pass: Kahn waves over the dependency DAG.
	indeg := make(map[string]int, n)
	dependents := make(map[string][]*spec.Instance, n)
	wave := make([]*spec.Instance, 0, n)
	for _, inst := range full.Instances {
		deps := 0
		for _, d := range inst.DependencyIDs() {
			if d == inst.ID {
				continue
			}
			if _, ok := byID[d]; !ok {
				continue // dependency outside the deployed set
			}
			deps++
			dependents[d] = append(dependents[d], inst)
		}
		indeg[inst.ID] = deps
		if deps == 0 {
			wave = append(wave, inst)
		}
	}

	done := 0
	for len(wave) > 0 {
		werrs := make([]error, len(wave))
		conc.ParallelFor(len(wave), workers, func(i int) {
			werrs[i] = e.propagateNode(wave[i], byID)
		})
		for _, err := range werrs {
			if err != nil {
				return e.serialFallback(full, byID, err)
			}
		}
		done += len(wave)
		sp.Event("build.wave").
			Int("wave", int64(bt.waves)).
			Int("size", int64(len(wave))).
			Emit()
		bt.waves++

		var next []*spec.Instance
		for _, inst := range wave {
			for _, dep := range dependents[inst.ID] {
				indeg[dep.ID]--
				if indeg[dep.ID] == 0 {
					next = append(next, dep)
				}
			}
		}
		wave = next
	}
	if done != n {
		// Dependency cycle: report it through the same path the serial
		// walk uses so the error text is identical.
		if _, err := full.TopoOrder(); err != nil {
			return err
		}
		return fmt.Errorf("config: propagation stalled with %d of %d instances unreached", n-done, n)
	}
	return nil
}

// serialFallback reruns the sequential propagation walk after a
// parallel pass hit an error. Port evaluations are pure and their
// writes idempotent, so the rerun reproduces exactly the first error
// the sequential pipeline would have reported. If the rerun somehow
// succeeds, the parallel error is returned instead of silently
// accepting a state the reference path was never observed to produce.
func (e *Engine) serialFallback(full *spec.Full, byID map[string]*spec.Instance, parErr error) error {
	if err := e.propagate(full, byID); err != nil {
		return err
	}
	return parErr
}
