package config

import (
	"engage/internal/constraint"
	"engage/internal/hypergraph"
	"engage/internal/sat"
	"engage/internal/spec"
)

// Alternatives enumerates up to limit distinct full installation
// specifications extending the partial specification — one per
// satisfying assignment of the install constraints, projected onto the
// resource-instance variables. For the §2 OpenMRS example this returns
// exactly two: one deploying the JDK, one the JRE.
//
// The enumeration runs on one incremental solver session: each
// alternative after the first costs a single blocking clause plus a
// re-solve on warm state (learned clauses, activity, saved phases),
// not a cold solve of the whole constraint system.
//
// A limit ≤ 0 enumerates everything; the solution count is bounded by
// the product of the disjunction widths, so bound it for large stacks.
func (e *Engine) Alternatives(partial *spec.Partial, limit int) ([]*spec.Full, error) {
	root := e.Tracer.Span("config.alternatives")
	defer root.End()
	g, err := hypergraph.Generate(e.Registry, partial)
	if err != nil {
		return nil, err
	}
	prob := constraint.Encode(g, e.Encoding)
	solver := e.Solver
	if solver == nil {
		solver = sat.NewCDCL()
	}

	// Project onto the instance variables only (the ladder encoding's
	// auxiliaries must not multiply solutions).
	project := make([]int, 0, g.Len())
	for _, id := range g.Order {
		project = append(project, prob.VarOf[id])
	}

	inc := sat.Observe(sat.StartIncremental(solver, prob.Formula), e.observeSolves(root))
	models, _ := sat.EnumerateModelsOn(inc, prob.Formula, project, limit)
	root.Int("models", int64(len(models)))
	out := make([]*spec.Full, 0, len(models))
	for _, model := range models {
		full, err := e.build(g, partial, prob.Selected(model))
		if err != nil {
			return nil, err
		}
		out = append(out, full)
	}
	return out, nil
}
