// Package workload generates seeded synthetic fleets for benchmarks and
// property tests: a resource library of N families × V versions with
// configurable inside/env/peer fan-out, and a partial installation
// specification spreading instances over M machines.
//
// The generated library is well-formed by construction:
//
//   - Families are numbered and dependencies only ever target
//     lower-numbered families, so the dependency relation is a DAG and
//     every generated full specification is acyclic.
//   - Each family has one abstract base type and V concrete versions
//     extending it. Dependencies target the abstract base, so hypergraph
//     generation frontier-expands every dependency into a width-V
//     exactly-one disjunction — the combinatorial shape the paper's §5
//     encoding exists for.
//   - Every declared input port is fed by exactly one dependency's port
//     map, and all ports are strings, so generated full specifications
//     pass typecheck.CheckSpec (no port-number conflicts by chance).
//
// Generation is a pure function of Spec (including Seed): the same Spec
// always yields the same registry and partial, which the differential
// harness relies on.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"engage/internal/resource"
	"engage/internal/spec"
)

// Spec parameterizes a synthetic fleet.
type Spec struct {
	Seed     int64
	Families int // N: resource families (types)
	Versions int // V: concrete versions per family
	// EnvFanout and PeerFanout are the number of same-machine and
	// any-machine dependencies per family, capped by the number of
	// lower-numbered families available.
	EnvFanout  int
	PeerFanout int
	Machines   int // M: machines in the partial spec
	Instances  int // partial-spec instances per machine
	// PinConfigP is the probability that a partial-spec instance pins
	// its "tag" config port (exercising partial-value propagation).
	PinConfigP float64
	// Conflicts seeds this many version conflicts, each on a dedicated
	// machine: an instance of a family with an env dependency is pinned
	// alongside TWO different versions of that dependency's target
	// family, so the dependency edge's exactly-one constraint sees two
	// forced-true targets. Conflicts > 0 makes the fleet unsatisfiable
	// by construction (requires Versions >= 2 and EnvFanout >= 1).
	Conflicts int
	// Probes attaches a health block with this many probe kinds (capped
	// at 4, drawn in the order proc-alive, port-open, config-digest,
	// check) to every family base, inherited by all concrete versions.
	// 0 — the default — declares no health block, so the monitor sweep
	// carries no probe work: the baseline of the probe-overhead
	// experiment.
	Probes int
}

// WithDefaults fills zero fields with a small but non-trivial fleet.
func (s Spec) WithDefaults() Spec {
	if s.Families <= 0 {
		s.Families = 8
	}
	if s.Versions <= 0 {
		s.Versions = 3
	}
	if s.EnvFanout < 0 {
		s.EnvFanout = 0
	}
	if s.EnvFanout == 0 && s.PeerFanout == 0 {
		s.EnvFanout, s.PeerFanout = 2, 1
	}
	if s.Machines <= 0 {
		s.Machines = 4
	}
	if s.Instances <= 0 {
		s.Instances = 3
	}
	if s.PinConfigP == 0 {
		s.PinConfigP = 0.5
	}
	return s
}

// String names the fleet shape for benchmark sub-tests.
func (s Spec) String() string {
	name := fmt.Sprintf("fam%d_v%d_e%d_p%d_m%d_i%d",
		s.Families, s.Versions, s.EnvFanout, s.PeerFanout, s.Machines, s.Instances)
	if s.Probes > 0 {
		name += fmt.Sprintf("_pr%d", s.Probes)
	}
	return name
}

// probeKinds is the draw order for Spec.Probes, cheapest first.
var probeKinds = []string{
	resource.ProbeProcAlive,
	resource.ProbePortOpen,
	resource.ProbeConfigDigest,
	resource.ProbeCheck,
}

// healthSpec builds the health block Spec.Probes asks for, nil when
// Probes is 0.
func (s Spec) healthSpec() *resource.HealthSpec {
	if s.Probes <= 0 {
		return nil
	}
	return &resource.HealthSpec{
		Probes:           probeKinds[:min(s.Probes, len(probeKinds))],
		Interval:         30 * time.Second,
		Timeout:          2 * time.Second,
		FailureThreshold: 3,
		SuccessThreshold: 2,
	}
}

// MachineKey is the type of every generated machine.
var MachineKey = resource.MakeKey("FleetMachine", "1")

func familyBase(i int) resource.Key {
	return resource.Key{Name: fmt.Sprintf("Fam%03d", i)}
}

func familyVersion(i, v int) resource.Key {
	return resource.Key{Name: fmt.Sprintf("Fam%03d", i), Version: fmt.Sprintf("%d.0", v)}
}

func outPort(i int) string { return fmt.Sprintf("out_%03d", i) }
func inPort(j int) string  { return fmt.Sprintf("in_%03d", j) }

// Generate builds the resource library and partial specification for a
// fleet. The result is deterministic in s.
func Generate(s Spec) (*resource.Registry, *spec.Partial, error) {
	s = s.WithDefaults()
	rng := rand.New(rand.NewSource(s.Seed))
	reg := resource.NewRegistry()

	if err := reg.Add(&resource.Type{Key: MachineKey}); err != nil {
		return nil, nil, err
	}

	envOf := make([][]int, s.Families)
	for i := 0; i < s.Families; i++ {
		// Pick this family's dependency targets among lower families:
		// a random permutation split into disjoint env and peer sets,
		// so no input port is fed twice.
		perm := rng.Perm(i)
		ne := min(s.EnvFanout, len(perm))
		np := min(s.PeerFanout, len(perm)-ne)
		envTargets, peerTargets := perm[:ne], perm[ne:ne+np]
		envOf[i] = envTargets

		input := make([]resource.Port, 0, ne+np)
		deps := func(targets []int) []resource.Dependency {
			out := make([]resource.Dependency, len(targets))
			for di, j := range targets {
				out[di] = resource.Single(familyBase(j),
					map[string]string{outPort(j): inPort(j)})
				input = append(input, resource.Port{
					Name: inPort(j), Type: resource.T(resource.KindString)})
			}
			return out
		}
		env := deps(envTargets)
		peer := deps(peerTargets)

		base := &resource.Type{
			Key:      familyBase(i),
			Abstract: true,
			Inside:   ptr(resource.Single(MachineKey, nil)),
			Config: []resource.Port{{
				Name: "tag",
				Type: resource.T(resource.KindString),
				Def:  resource.Lit{V: resource.Str(fmt.Sprintf("fam%03d", i))},
			}},
			Input: input,
			Output: []resource.Port{{
				Name: outPort(i),
				Type: resource.T(resource.KindString),
				Def:  resource.Ref{Sec: resource.SecConfig, Name: "tag"},
			}},
			Env:    env,
			Peer:   peer,
			Health: s.healthSpec(),
		}
		if err := reg.Add(base); err != nil {
			return nil, nil, fmt.Errorf("workload: family %d base: %v", i, err)
		}
		for v := 1; v <= s.Versions; v++ {
			child := &resource.Type{
				Key:     familyVersion(i, v),
				Extends: ptr(familyBase(i)),
				Config: []resource.Port{{
					Name: "tag",
					Type: resource.T(resource.KindString),
					Def:  resource.Lit{V: resource.Str(fmt.Sprintf("fam%03d-v%d", i, v))},
				}},
			}
			if err := reg.Add(child); err != nil {
				return nil, nil, fmt.Errorf("workload: family %d v%d: %v", i, v, err)
			}
		}
	}

	// Partial-spec instances pin one version per family fleet-wide.
	// Two pinned instances of the same family at *different* versions
	// would both be forced true while sharing a dependency edge's
	// target set, making exactly-one — and the fleet — unsatisfiable.
	// (The engine still chooses freely among all V versions for every
	// auto-created dependency.)
	famVer := make([]int, s.Families)
	for i := range famVer {
		famVer[i] = 1 + rng.Intn(s.Versions)
	}

	partial := &spec.Partial{}
	for m := 0; m < s.Machines; m++ {
		machineID := fmt.Sprintf("machine-%02d", m)
		partial.Add(machineID, MachineKey)
		for k := 0; k < s.Instances; k++ {
			// Bias toward upper families so partial instances sit on
			// top of real dependency chains.
			lo := s.Families / 2
			fam := lo + rng.Intn(s.Families-lo)
			inst := partial.Add(fmt.Sprintf("app-%02d-%02d", m, k), familyVersion(fam, famVer[fam])).
				In(machineID)
			if rng.Float64() < s.PinConfigP {
				inst.Set("tag", resource.Str(fmt.Sprintf("pinned-%02d-%02d", m, k)))
			}
		}
	}

	if s.Conflicts > 0 {
		var candidates []int
		for i, env := range envOf {
			if len(env) > 0 {
				candidates = append(candidates, i)
			}
		}
		if len(candidates) == 0 || s.Versions < 2 {
			return nil, nil, fmt.Errorf(
				"workload: Conflicts requires EnvFanout >= 1 and Versions >= 2 (spec %v)", s)
		}
		for c := 0; c < s.Conflicts; c++ {
			fam := candidates[rng.Intn(len(candidates))]
			target := envOf[fam][0]
			machineID := fmt.Sprintf("conflict-machine-%02d", c)
			partial.Add(machineID, MachineKey)
			// The depending instance's env edge resolves to the pinned
			// same-machine instances of the target family — both of
			// them, at different versions, forced true at once.
			partial.Add(fmt.Sprintf("conflict-%02d-app", c), familyVersion(fam, famVer[fam])).
				In(machineID)
			partial.Add(fmt.Sprintf("conflict-%02d-a", c), familyVersion(target, 1)).
				In(machineID)
			partial.Add(fmt.Sprintf("conflict-%02d-b", c), familyVersion(target, 2)).
				In(machineID)
		}
	}
	return reg, partial, nil
}

func ptr[T any](v T) *T { return &v }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
