package workload_test

import (
	"fmt"
	"strings"
	"testing"

	"engage/internal/lint"
	"engage/internal/sat"
	"engage/internal/workload"
)

// TestFleetLintCleanOfErrors is the lint property test: fleets are
// satisfiable by construction (Conflicts = 0), so the static
// diagnostics engine must find no error-severity diagnostic — no dead
// resources, no empty frontiers, no port mismatches, and no spec-unsat.
func TestFleetLintCleanOfErrors(t *testing.T) {
	shapes := []workload.Spec{
		{Families: 6, Versions: 2, Machines: 2, Instances: 2},
		{Families: 8, Versions: 3, EnvFanout: 2, PeerFanout: 1, Machines: 3, Instances: 2},
		{Families: 5, Versions: 4, EnvFanout: 1, PeerFanout: 2, Machines: 2, Instances: 3},
	}
	for _, shape := range shapes {
		for seed := int64(0); seed < 5; seed++ {
			shape.Seed = seed
			t.Run(fmt.Sprintf("%v_seed%d", shape, seed), func(t *testing.T) {
				reg, partial, err := workload.Generate(shape)
				if err != nil {
					t.Fatal(err)
				}
				rep := lint.Check(reg, partial, lint.Options{})
				if rep.HasErrors() {
					t.Errorf("satisfiable fleet has lint errors:\n%v", rep.Diagnostics)
				}
				if rep.Unsat != nil {
					t.Errorf("satisfiable fleet got an unsat explanation: %s", rep.Unsat.Summary())
				}
			})
		}
	}
}

// TestSeededConflictMUS pins the acceptance criteria for MUS
// extraction on a fleet with a seeded version conflict.
//
// Two raw-core regimes exist. A one-shot solver behind the cold
// incremental adapter (DPLL here) cannot attribute the conflict, so its
// raw assumption core is the entire selector set — deletion-based
// shrinking must collapse hundreds of constraints to the handful that
// actually conflict, strictly smaller than the raw core. The CDCL's
// analyzeFinal core is already tight for spec-pinned conflicts (they
// fail during assumption assertion by pure unit propagation, so the
// implication graph behind the failed assumption is exactly one
// derivation), and shrinking verifies minimality without removing
// anything. In both regimes the story must name the actual conflicting
// instances.
func TestSeededConflictMUS(t *testing.T) {
	reg, partial, err := workload.Generate(workload.Spec{
		Seed: 42, Families: 8, Versions: 3, Machines: 3, Instances: 2, Conflicts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	rep := lint.Check(reg, partial, lint.Options{})
	if rep.Unsat == nil {
		t.Fatalf("seeded-conflict fleet linted satisfiable:\n%v", rep.Diagnostics)
	}
	if len(rep.ByCode(lint.CodeSpecUnsat)) != 1 {
		t.Errorf("want one spec-unsat diagnostic, got %v", rep.Diagnostics)
	}
	cdcl := rep.Unsat
	if len(cdcl.Core) > cdcl.RawCoreSize || len(cdcl.Core) != 4 {
		t.Errorf("CDCL: MUS %d, raw %d; want a 4-constraint MUS within the raw core",
			len(cdcl.Core), cdcl.RawCoreSize)
	}
	story := cdcl.Story()
	for _, name := range []string{`"conflict-00-a"`, `"conflict-00-b"`} {
		if !strings.Contains(story, name) {
			t.Errorf("story does not name conflicting instance %s:\n%s", name, story)
		}
	}

	dpll := lint.ExplainUnsat(reg, partial, lint.Options{Solver: sat.NewDPLL()})
	if dpll == nil {
		t.Fatal("DPLL explanation missing")
	}
	if dpll.RawCoreSize != dpll.Selectors {
		t.Errorf("one-shot raw core = %d, want the whole selector set (%d)",
			dpll.RawCoreSize, dpll.Selectors)
	}
	if len(dpll.Core) >= dpll.RawCoreSize {
		t.Errorf("MUS size %d not strictly smaller than raw core %d",
			len(dpll.Core), dpll.RawCoreSize)
	}
	if len(dpll.Core) != 4 {
		t.Errorf("DPLL MUS size = %d, want 4", len(dpll.Core))
	}
}

// TestConflictsValidation: conflict seeding needs at least two versions
// and an env dependency to conflict over.
func TestConflictsValidation(t *testing.T) {
	_, _, err := workload.Generate(workload.Spec{
		Families: 4, Versions: 1, EnvFanout: 1, Conflicts: 1,
	})
	if err == nil || !strings.Contains(err.Error(), "Conflicts requires") {
		t.Errorf("err = %v", err)
	}
}
