package workload

import (
	"testing"

	"engage/internal/certify"
	"engage/internal/config"
	"engage/internal/constraint"
	"engage/internal/hypergraph"
	"engage/internal/sat"
	"engage/internal/spec"
)

// The back-half differential suite proves the parallel solve exact: for
// seeded fleets, portfolio solving at any width yields — after
// canonicalization — the same model the sequential solver's
// canonicalized model is, and the configuration pipeline renders
// byte-identical full specifications at every Parallelism ≥ 1. CI runs
// this under -race.

var portfolioWidths = []int{1, 2, 4, 8}

// portfolioSeeds is the seed sweep width: 100 distinct fleets per the
// acceptance bar, each solved at every portfolio width.
const portfolioSeeds = 100

func portfolioShape(seed int64) Spec {
	return Spec{Seed: seed, Families: 8, Versions: 3, EnvFanout: 2, PeerFanout: 1, Machines: 3, Instances: 3}
}

// TestPortfolioSolveDifferential encodes 100 seeded fleets and checks
// that for every portfolio width the canonicalized winning model is
// bit-identical to the canonicalized sequential model.
func TestPortfolioSolveDifferential(t *testing.T) {
	for seed := int64(0); seed < portfolioSeeds; seed++ {
		reg, partial, err := Generate(portfolioShape(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		g, err := hypergraph.Generate(reg, partial)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prob := constraint.Encode(g, constraint.Pairwise)
		order := make([]int, 0, len(g.Order))
		for _, id := range g.Order {
			order = append(order, prob.VarOf[id])
		}

		seq := sat.NewCDCL()
		res := seq.Solve(prob.Formula)
		if res.Status != sat.Sat {
			t.Fatalf("seed %d: sequential solve: %v", seed, res.Status)
		}
		if err := certify.CheckModel(prob.Formula, res.Model); err != nil {
			t.Fatalf("seed %d: sequential model refuted: %v", seed, err)
		}
		want, _, err := sat.CanonicalModel(seq.StartIncremental(prob.Formula), res.Model, order)
		if err != nil {
			t.Fatalf("seed %d: canonicalize sequential: %v", seed, err)
		}

		for _, n := range portfolioWidths {
			pr := sat.SolvePortfolio(prob.Formula, n)
			if pr.Result.Status != sat.Sat {
				t.Fatalf("seed %d n=%d: portfolio solve: %v", seed, n, pr.Result.Status)
			}
			// Every portfolio model must survive independent
			// certification (DESIGN.md §15), not just canonical equality.
			if err := certify.CheckModel(prob.Formula, pr.Result.Model); err != nil {
				t.Fatalf("seed %d n=%d: portfolio model refuted: %v", seed, n, err)
			}
			got, _, err := sat.CanonicalModel(pr.Session(), pr.Result.Model, order)
			if err != nil {
				t.Fatalf("seed %d n=%d: canonicalize portfolio: %v", seed, n, err)
			}
			for _, v := range order {
				if got[v] != want[v] {
					t.Fatalf("seed %d n=%d: canonical models differ at var %d", seed, n, v)
				}
			}
		}
	}
}

// TestPortfolioConfigureDifferential runs the full pipeline on seeded
// fleets and checks the rendered full specification is byte-identical
// at every Parallelism ≥ 1. (Parallelism 0 skips canonicalization and
// may legitimately pick a different — equally valid — model, so it is
// compared structurally via CheckSpec inside Configure, not by bytes.)
func TestPortfolioConfigureDifferential(t *testing.T) {
	seeds := int64(portfolioSeeds)
	if testing.Short() {
		seeds = 10
	}
	for seed := int64(0); seed < seeds; seed++ {
		reg, partial, err := Generate(portfolioShape(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var want string
		for _, p := range portfolioWidths {
			e := config.New(reg)
			e.Parallelism = p
			full, err := e.Configure(partial)
			if err != nil {
				t.Fatalf("seed %d P=%d: %v", seed, p, err)
			}
			got, err := spec.Render(full)
			if err != nil {
				t.Fatalf("seed %d P=%d: render: %v", seed, p, err)
			}
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("seed %d: rendered full spec at P=%d differs from P=%d", seed, p, portfolioWidths[0])
			}
		}
	}
}
