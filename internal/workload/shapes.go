package workload

// FleetShape is a named fleet size shared by the scale benchmarks, the
// differential suites, and the CI smoke steps, so "fleet570" means the
// same workload everywhere.
type FleetShape struct {
	Name string
	Spec Spec
	// Big marks fleets large enough that benchmarks skip them in
	// -short mode and skip the sequential (P=0) reference, whose front
	// half is quadratic in fleet size.
	Big bool
}

// FleetShapes returns the named fleet ladder in ascending size. Names
// state the approximate full-specification instance count. The big
// fleets reuse the same seeded family pool sizes as fleet570 — instance
// count scales through machines × instances per machine, so library
// generation time stays flat while the configured fleet grows.
func FleetShapes() []FleetShape {
	return []FleetShape{
		{Name: "fleet90", Spec: Spec{Seed: 1, Families: 12, Versions: 3, EnvFanout: 2, PeerFanout: 1, Machines: 8, Instances: 4}},
		{Name: "fleet250", Spec: Spec{Seed: 1, Families: 20, Versions: 4, EnvFanout: 3, PeerFanout: 1, Machines: 16, Instances: 5}},
		{Name: "fleet570", Spec: Spec{Seed: 1, Families: 28, Versions: 5, EnvFanout: 3, PeerFanout: 2, Machines: 24, Instances: 6}},
		{Name: "fleet2000", Spec: Spec{Seed: 1, Families: 28, Versions: 5, EnvFanout: 3, PeerFanout: 2, Machines: 85, Instances: 6}, Big: true},
		{Name: "fleet5000", Spec: Spec{Seed: 1, Families: 28, Versions: 5, EnvFanout: 3, PeerFanout: 2, Machines: 220, Instances: 6}, Big: true},
	}
}

// FleetShapeByName returns the named shape from FleetShapes.
func FleetShapeByName(name string) (FleetShape, bool) {
	for _, sh := range FleetShapes() {
		if sh.Name == name {
			return sh, true
		}
	}
	return FleetShape{}, false
}
