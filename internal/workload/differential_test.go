package workload

import (
	"fmt"
	"reflect"
	"testing"

	"engage/internal/constraint"
	"engage/internal/hypergraph"
	"engage/internal/resource"
	"engage/internal/sat"
	"engage/internal/spec"
	"engage/internal/testlib"
)

// The differential suite proves the parallel front half of the pipeline
// exact: for seeded fleets (and the paper's OpenMRS fixture), hypergraph
// generation and constraint emission at Parallelism 1, 4, and 16 are
// byte-identical to the sequential reference — same node order, node
// contents, edge list, clause list (compared as DIMACS text), variable
// numbering, and errors. CI runs this under -race.

var parallelisms = []int{1, 4, 16}

func diffFixtures(t *testing.T) []struct {
	name    string
	reg     *resource.Registry
	partial *spec.Partial
} {
	t.Helper()
	var out []struct {
		name    string
		reg     *resource.Registry
		partial *spec.Partial
	}
	add := func(name string, reg *resource.Registry, partial *spec.Partial) {
		out = append(out, struct {
			name    string
			reg     *resource.Registry
			partial *spec.Partial
		}{name, reg, partial})
	}

	omrsReg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatalf("OpenMRSRegistry: %v", err)
	}
	omrsPartial, err := testlib.Fig2Partial()
	if err != nil {
		t.Fatalf("Fig2Partial: %v", err)
	}
	add("openmrs", omrsReg, omrsPartial)

	shapes := []Spec{
		{},                                      // defaults
		{Families: 4, Versions: 2, Machines: 2}, // tiny
		{Families: 12, Versions: 4, EnvFanout: 3, PeerFanout: 2, Machines: 6, Instances: 4},
	}
	for si, shape := range shapes {
		for seed := int64(0); seed < 4; seed++ {
			shape.Seed = seed
			reg, partial, err := Generate(shape)
			if err != nil {
				t.Fatalf("workload.Generate(shape %d, seed %d): %v", si, seed, err)
			}
			add(fmt.Sprintf("fleet%d_seed%d", si, seed), reg, partial)
		}
	}
	return out
}

func TestParallelGraphGenDifferential(t *testing.T) {
	for _, fx := range diffFixtures(t) {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			want, err := hypergraph.Generate(fx.reg, fx.partial)
			if err != nil {
				t.Fatalf("sequential Generate: %v", err)
			}
			for _, p := range parallelisms {
				got, err := hypergraph.GenerateOpts(fx.reg, fx.partial, hypergraph.Options{Parallelism: p})
				if err != nil {
					t.Fatalf("P=%d: %v", p, err)
				}
				assertSameGraph(t, p, want, got)
			}
		})
	}
}

func assertSameGraph(t *testing.T, p int, want, got *hypergraph.Graph) {
	t.Helper()
	if !reflect.DeepEqual(got.Order, want.Order) {
		t.Fatalf("P=%d: node order differs:\n got %v\nwant %v", p, got.Order, want.Order)
	}
	for _, id := range want.Order {
		wn, _ := want.Node(id)
		gn, ok := got.Node(id)
		if !ok || !reflect.DeepEqual(gn, wn) {
			t.Fatalf("P=%d: node %q differs:\n got %+v\nwant %+v", p, id, gn, wn)
		}
	}
	if !reflect.DeepEqual(got.Edges, want.Edges) {
		t.Fatalf("P=%d: edge list differs:\n got %+v\nwant %+v", p, got.Edges, want.Edges)
	}
}

func TestParallelEncodeDifferential(t *testing.T) {
	for _, fx := range diffFixtures(t) {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			g, err := hypergraph.Generate(fx.reg, fx.partial)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			for _, enc := range []constraint.Encoding{constraint.Pairwise, constraint.Ladder} {
				want := constraint.Encode(g, enc)
				wantDimacs := sat.Dimacs(want.Formula)
				for _, p := range parallelisms {
					got := constraint.EncodeParallel(g, enc, p)
					if d := sat.Dimacs(got.Formula); d != wantDimacs {
						t.Fatalf("enc=%v P=%d: DIMACS differs:\n got:\n%s\nwant:\n%s", enc, p, d, wantDimacs)
					}
					if got.Formula.NumVars != want.Formula.NumVars {
						t.Fatalf("enc=%v P=%d: NumVars %d != %d", enc, p, got.Formula.NumVars, want.Formula.NumVars)
					}
					if !reflect.DeepEqual(got.VarOf, want.VarOf) {
						t.Fatalf("enc=%v P=%d: VarOf differs", enc, p)
					}
					if !reflect.DeepEqual(got.IDOf, want.IDOf) {
						t.Fatalf("enc=%v P=%d: IDOf differs", enc, p)
					}
				}
			}
		})
	}
}

// TestParallelGenerateErrorDifferential: generation errors must also be
// identical between the sequential and parallel paths.
func TestParallelGenerateErrorDifferential(t *testing.T) {
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatalf("OpenMRSRegistry: %v", err)
	}
	partial := testlib.MustBadPartial()
	_, wantErr := hypergraph.Generate(reg, partial)
	if wantErr == nil {
		t.Fatal("expected sequential Generate to fail on the bad partial")
	}
	for _, p := range parallelisms {
		_, err := hypergraph.GenerateOpts(reg, partial, hypergraph.Options{Parallelism: p})
		if err == nil || err.Error() != wantErr.Error() {
			t.Fatalf("P=%d: error %v, want %v", p, err, wantErr)
		}
	}

	// An error raised mid-generation (during wave expansion, not during
	// the shared init pass): an env dependency whose target can only
	// live inside a machine type that is not present.
	reg2 := resource.NewRegistry()
	mustAdd := func(ts ...*resource.Type) {
		for _, ty := range ts {
			if err := reg2.Add(ty); err != nil {
				t.Fatalf("Add(%v): %v", ty.Key, err)
			}
		}
	}
	boxA := resource.MakeKey("BoxA", "1")
	boxB := resource.MakeKey("BoxB", "1")
	depY := resource.Single(resource.MakeKey("Y", "1"), nil)
	mustAdd(
		&resource.Type{Key: boxA},
		&resource.Type{Key: boxB},
		&resource.Type{Key: resource.MakeKey("Y", "1"),
			Inside: &resource.Dependency{Alternatives: []resource.Key{boxB}}},
		&resource.Type{Key: resource.MakeKey("X", "1"),
			Inside: &resource.Dependency{Alternatives: []resource.Key{boxA}},
			Env:    []resource.Dependency{depY}},
	)
	bad2 := &spec.Partial{}
	bad2.Add("m", boxA)
	bad2.Add("x", resource.MakeKey("X", "1")).In("m")
	_, wantErr2 := hypergraph.Generate(reg2, bad2)
	if wantErr2 == nil {
		t.Fatal("expected mid-generation error")
	}
	for _, p := range parallelisms {
		_, err := hypergraph.GenerateOpts(reg2, bad2, hypergraph.Options{Parallelism: p})
		if err == nil || err.Error() != wantErr2.Error() {
			t.Fatalf("P=%d: mid-generation error %v, want %v", p, err, wantErr2)
		}
	}
}
