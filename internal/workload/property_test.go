package workload

import (
	"fmt"
	"os"
	"testing"

	"engage/internal/config"
	"engage/internal/constraint"
	"engage/internal/typecheck"
)

// The property test: every spec.Full returned by Configure on a
// generator-produced partial passes typecheck.CheckSpec — no pending
// dependencies, every input port fed exactly once, acyclic ≤i ∪ ≤e ∪ ≤p.
// 100 seeds by default, 1000 when ENGAGE_SOAK is set. Parallelism and
// encoding rotate across seeds so every pipeline variant is exercised.
func TestConfigurePropertyCheckSpec(t *testing.T) {
	seeds := 100
	if os.Getenv("ENGAGE_SOAK") != "" {
		seeds = 1000
	}
	parallelisms := []int{0, 1, 4, 16}
	encodings := []constraint.Encoding{constraint.Pairwise, constraint.Ladder}

	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			// Vary the fleet shape with the seed, deterministically.
			shape := Spec{
				Seed:       int64(seed),
				Families:   3 + seed%7,
				Versions:   1 + seed%4,
				EnvFanout:  1 + seed%3,
				PeerFanout: seed % 2,
				Machines:   1 + seed%5,
				Instances:  1 + seed%3,
			}
			reg, partial, err := Generate(shape)
			if err != nil {
				t.Fatalf("Generate(%v): %v", shape, err)
			}

			eng := config.New(reg)
			eng.Parallelism = parallelisms[seed%len(parallelisms)]
			eng.Encoding = encodings[seed%len(encodings)]
			full, err := eng.Configure(partial)
			if err != nil {
				t.Fatalf("Configure(%v): %v", shape, err)
			}
			if len(full.Instances) < len(partial.Instances) {
				t.Fatalf("full spec has %d instances, fewer than the %d partial instances",
					len(full.Instances), len(partial.Instances))
			}
			// Configure already runs CheckSpec, but the property is
			// about the returned value: re-check it independently.
			if err := typecheck.CheckSpec(reg, full); err != nil {
				t.Fatalf("CheckSpec on Configure output (%v): %v", shape, err)
			}
		})
	}
}
