// Package hypergraph implements the hypergraph-generation phase of
// Engage's configuration engine (§4 of the paper, procedure
// GraphGen(R, I) and Lemma 1): a worklist algorithm that takes a partial
// installation specification and constructs a directed hypergraph whose
// nodes are resource instances and whose hyperedges represent
// dependencies between them.
//
// Two generators produce the same graph: Generate is the sequential
// reference implementation, a direct transcription of the paper's
// worklist algorithm; GenerateOpts with Options.Parallelism ≥ 1 runs the
// wave-parallel generator (parallel.go), which is proven byte-identical
// to Generate by the differential suite in internal/workload.
package hypergraph

import (
	"fmt"
	"strings"

	"engage/internal/resource"
	"engage/internal/spec"
)

// Node is a resource instance in the hypergraph.
type Node struct {
	ID       string
	Key      resource.Key
	Machine  string // ID of the machine node
	Inside   string // ID of the container node; "" for machines
	FromSpec bool   // appeared in the partial installation specification (the ✓ of Fig. 5)
	Config   map[string]resource.Value
}

// Hyperedge is a dependency hyperedge: from Source to the disjunction of
// Targets (exactly one of which must be deployed when Source is).
type Hyperedge struct {
	Source         string
	Class          resource.DependencyClass
	Targets        []string
	PortMap        map[string]string
	ReversePortMap map[string]string
}

// Graph is the generated hypergraph.
type Graph struct {
	nodes map[string]*Node
	// Order lists node IDs in creation order (deterministic).
	Order []string
	Edges []Hyperedge
}

// NewGraph returns an empty graph; Generate is the usual constructor,
// but synthetic graphs are useful in tests and benchmarks.
func NewGraph() *Graph {
	return &Graph{nodes: make(map[string]*Node)}
}

// AddNode inserts a node; it panics on duplicate IDs.
func (g *Graph) AddNode(n *Node) {
	if _, dup := g.nodes[n.ID]; dup {
		panic(fmt.Sprintf("hypergraph: duplicate node %q", n.ID))
	}
	g.add(n)
}

// AddEdge appends a hyperedge.
func (g *Graph) AddEdge(e Hyperedge) { g.Edges = append(g.Edges, e) }

// Node returns the node with the given ID.
func (g *Graph) Node(id string) (*Node, bool) {
	n, ok := g.nodes[id]
	return n, ok
}

// Nodes returns all nodes in creation order.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, len(g.Order))
	for i, id := range g.Order {
		out[i] = g.nodes[id]
	}
	return out
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.Order) }

func (g *Graph) add(n *Node) {
	g.nodes[n.ID] = n
	g.Order = append(g.Order, n.ID)
}

// Generate runs GraphGen(R, I): it processes the partial install
// specification I against the registry R, creating nodes for every
// resource instance that may participate in a full installation
// specification extending I, and hyperedges for their dependencies.
//
// Per the paper: abstract dependency targets are replaced by their
// concrete frontier; environment dependencies are resolved against
// nodes on the same machine (creating new instances on that machine
// when absent); peer dependencies are resolved against nodes anywhere
// (new instances conservatively land on the dependent's machine); and
// no new machines are ever created.
func Generate(reg *resource.Registry, partial *spec.Partial) (*Graph, error) {
	g, worklist, err := initFromPartial(reg, partial)
	if err != nil {
		return nil, err
	}
	r := &graphResolver{g: g, sub: resource.NewSubtyper(reg), frontierFn: reg.Frontier}

	// Pass 2: worklist processing.
	for len(worklist) > 0 {
		id := worklist[0]
		worklist = worklist[1:]
		edges, created, err := processNode(r, reg, g.nodes[id])
		if err != nil {
			return nil, err
		}
		g.Edges = append(g.Edges, edges...)
		worklist = append(worklist, created...)
	}
	return g, nil
}

// initFromPartial runs pass 1 of GraphGen: one node per instance of the
// partial specification, with machines resolved along inside chains. The
// returned worklist lists the spec nodes in specification order.
func initFromPartial(reg *resource.Registry, partial *spec.Partial) (*Graph, []string, error) {
	g := &Graph{nodes: make(map[string]*Node)}
	var worklist []string
	for _, pi := range partial.Instances {
		if _, dup := g.nodes[pi.ID]; dup {
			return nil, nil, fmt.Errorf("hypergraph: duplicate instance id %q", pi.ID)
		}
		t, ok := reg.Lookup(pi.Key)
		if !ok {
			return nil, nil, fmt.Errorf("hypergraph: instance %q: unknown resource type %q", pi.ID, pi.Key)
		}
		if t.Abstract {
			return nil, nil, fmt.Errorf("hypergraph: instance %q: abstract type %q cannot be instantiated", pi.ID, pi.Key)
		}
		g.add(&Node{ID: pi.ID, Key: pi.Key, Inside: pi.Inside, FromSpec: true, Config: pi.Config})
		worklist = append(worklist, pi.ID)
	}

	// Resolve machines for the spec nodes (inside chains must stay
	// within the partial specification, per the paper's assumption).
	for _, id := range g.Order {
		m, err := g.resolveMachine(id)
		if err != nil {
			return nil, nil, err
		}
		g.nodes[id].Machine = m
	}
	return g, worklist, nil
}

// resolver provides the graph-state queries and mutations the per-node
// expansion step needs. Implementations: graphResolver (sequential
// generation and the parallel generator's redo path) and overlay
// (parallel speculation against a frozen snapshot).
type resolver interface {
	node(id string) (*Node, bool)
	// findMatch returns the first node in creation order whose key is a
	// subtype of k, excluding source. machine == "" searches all
	// machines (peer dependencies); otherwise only nodes on that
	// machine match (environment dependencies).
	findMatch(k resource.Key, machine, source string) string
	// findContainer returns the first node in creation order on the
	// machine whose key satisfies one of the inside alternatives.
	findContainer(machine string, alts []resource.Key) string
	// freshID derives the deterministic unique ID a new (key, machine)
	// node would get.
	freshID(k resource.Key, machine string) string
	addNode(n *Node)
	subtyper() resource.SubtypeChecker
	frontier(k resource.Key) ([]resource.Key, error)
}

// graphResolver resolves directly against a live graph; it is the
// resolver of the sequential reference path.
type graphResolver struct {
	g          *Graph
	sub        resource.SubtypeChecker
	frontierFn func(resource.Key) ([]resource.Key, error)
}

func (r *graphResolver) node(id string) (*Node, bool) { return r.g.Node(id) }

func (r *graphResolver) findMatch(k resource.Key, machine, source string) string {
	for _, id := range r.g.Order {
		if id == source {
			continue
		}
		node := r.g.nodes[id]
		if machine != "" && node.Machine != machine {
			continue
		}
		if r.sub.IsSubtype(node.Key, k) {
			return id
		}
	}
	return ""
}

func (r *graphResolver) findContainer(machine string, alts []resource.Key) string {
	for _, cid := range r.g.Order {
		c := r.g.nodes[cid]
		if c.Machine != machine {
			continue
		}
		if matchesAny(r.sub, c.Key, alts) {
			return cid
		}
	}
	return ""
}

func (r *graphResolver) freshID(k resource.Key, machine string) string {
	return freshIDIn(k, machine, func(id string) bool {
		_, taken := r.g.nodes[id]
		return taken
	})
}

func (r *graphResolver) addNode(n *Node)                   { r.g.add(n) }
func (r *graphResolver) subtyper() resource.SubtypeChecker { return r.sub }
func (r *graphResolver) frontier(k resource.Key) ([]resource.Key, error) {
	return r.frontierFn(k)
}

// processNode runs one worklist step for node n: its inside check plus
// the resolution of every environment and peer dependency. Newly created
// nodes are added through the resolver as they appear (later disjuncts
// may match them); the hyperedges and the created IDs are returned in
// emission order so callers append both deterministically.
func processNode(r resolver, reg *resource.Registry, n *Node) ([]Hyperedge, []string, error) {
	t := reg.MustLookup(n.Key)
	var edges []Hyperedge
	var created []string

	// Inside dependency.
	if t.Inside != nil {
		if n.Inside == "" {
			return nil, nil, fmt.Errorf("hypergraph: instance %q (type %q) has an unresolved inside dependency", n.ID, n.Key)
		}
		container, ok := r.node(n.Inside)
		if !ok {
			return nil, nil, fmt.Errorf("hypergraph: instance %q: container %q not in specification", n.ID, n.Inside)
		}
		if !matchesAny(r.subtyper(), container.Key, t.Inside.Alternatives) {
			return nil, nil, fmt.Errorf("hypergraph: instance %q: container %q (type %q) does not satisfy inside dependency %s",
				n.ID, container.ID, container.Key, t.Inside)
		}
		edges = append(edges, Hyperedge{
			Source:         n.ID,
			Class:          resource.DepInside,
			Targets:        []string{container.ID},
			PortMap:        t.Inside.PortMap,
			ReversePortMap: t.Inside.ReversePortMap,
		})
	}

	// Environment dependencies: targets on the same machine.
	for _, d := range t.Env {
		edge, made, err := resolveDep(r, reg, n, d, resource.DepEnv)
		if err != nil {
			return nil, nil, err
		}
		edges = append(edges, edge)
		created = append(created, made...)
	}

	// Peer dependencies: targets anywhere; new nodes on n's machine.
	for _, d := range t.Peer {
		edge, made, err := resolveDep(r, reg, n, d, resource.DepPeer)
		if err != nil {
			return nil, nil, err
		}
		edges = append(edges, edge)
		created = append(created, made...)
	}
	return edges, created, nil
}

// resolveDep resolves one environment or peer dependency of node n: for
// each (frontier-expanded) disjunct, find a matching existing node or
// create a new instance. Returns the hyperedge and the IDs of newly
// created nodes.
func resolveDep(r resolver, reg *resource.Registry,
	n *Node, d resource.Dependency, class resource.DependencyClass) (Hyperedge, []string, error) {

	var concrete []resource.Key
	for _, alt := range d.Alternatives {
		frontier, err := r.frontier(alt)
		if err != nil {
			return Hyperedge{}, nil, fmt.Errorf("hypergraph: instance %q: %v", n.ID, err)
		}
		concrete = append(concrete, frontier...)
	}

	edge := Hyperedge{
		Source:         n.ID,
		Class:          class,
		PortMap:        d.PortMap,
		ReversePortMap: d.ReversePortMap,
	}
	machineScope := ""
	if class == resource.DepEnv {
		machineScope = n.Machine
	}
	var created []string
	seen := make(map[string]bool)
	for _, k := range concrete {
		target := r.findMatch(k, machineScope, n.ID)
		if target == "" {
			var err error
			target, err = createNode(r, reg, k, n.Machine)
			if err != nil {
				return Hyperedge{}, nil, fmt.Errorf("hypergraph: resolving %s dependency of %q: %v", class, n.ID, err)
			}
			created = append(created, target)
		}
		if !seen[target] {
			seen[target] = true
			edge.Targets = append(edge.Targets, target)
		}
	}
	return edge, created, nil
}

// createNode instantiates a new node for key k on the given machine,
// resolving its container: the machine itself when the type's inside
// dependency admits it, otherwise an existing node on the machine whose
// key satisfies the dependency.
func createNode(r resolver, reg *resource.Registry, k resource.Key, machine string) (string, error) {
	t, ok := reg.Lookup(k)
	if !ok {
		return "", fmt.Errorf("unknown resource type %q", k)
	}
	if t.Abstract {
		return "", fmt.Errorf("abstract type %q cannot be instantiated", k)
	}
	id := r.freshID(k, machine)
	node := &Node{ID: id, Key: k, Machine: machine}
	if t.Inside != nil {
		mnode, ok := r.node(machine)
		if !ok {
			return "", fmt.Errorf("no machine %q for new instance of %q", machine, k)
		}
		if matchesAny(r.subtyper(), mnode.Key, t.Inside.Alternatives) {
			node.Inside = machine
		} else {
			container := r.findContainer(machine, t.Inside.Alternatives)
			if container == "" {
				return "", fmt.Errorf("no container on machine %q satisfying inside dependency %s of %q",
					machine, t.Inside, k)
			}
			node.Inside = container
		}
	} else {
		// A machine-type dependency would require provisioning a new
		// machine; the constraint-generation process assumes no new
		// machines are created (§2).
		return "", fmt.Errorf("dependency on machine type %q cannot be auto-instantiated (no new machines)", k)
	}
	r.addNode(node)
	return id, nil
}

// freshIDIn derives a deterministic unique node ID from a key and
// machine, probing candidates against the given taken predicate.
func freshIDIn(k resource.Key, machine string, taken func(string) bool) string {
	base := strings.ToLower(strings.ReplaceAll(k.Name, " ", "-"))
	if k.Version != "" {
		base += "-" + k.Version
	}
	if machine != "" {
		base += "@" + machine
	}
	id := base
	for i := 2; ; i++ {
		if !taken(id) {
			return id
		}
		id = fmt.Sprintf("%s#%d", base, i)
	}
}

// resolveMachine follows inside links of spec nodes to a machine.
func (g *Graph) resolveMachine(id string) (string, error) {
	seen := make(map[string]bool)
	cur := g.nodes[id]
	for {
		if cur.Inside == "" {
			return cur.ID, nil
		}
		if seen[cur.ID] {
			return "", fmt.Errorf("hypergraph: inside cycle at instance %q", id)
		}
		seen[cur.ID] = true
		next, ok := g.nodes[cur.Inside]
		if !ok {
			return "", fmt.Errorf("hypergraph: instance %q: container %q not in specification", cur.ID, cur.Inside)
		}
		cur = next
	}
}

func matchesAny(sub resource.SubtypeChecker, k resource.Key, alts []resource.Key) bool {
	for _, a := range alts {
		if sub.IsSubtype(k, a) {
			return true
		}
	}
	return false
}

// EdgesFrom returns the hyperedges with the given source, in order.
func (g *Graph) EdgesFrom(source string) []Hyperedge {
	var out []Hyperedge
	for _, e := range g.Edges {
		if e.Source == source {
			out = append(out, e)
		}
	}
	return out
}
