// Package hypergraph implements the hypergraph-generation phase of
// Engage's configuration engine (§4 of the paper, procedure
// GraphGen(R, I) and Lemma 1): a worklist algorithm that takes a partial
// installation specification and constructs a directed hypergraph whose
// nodes are resource instances and whose hyperedges represent
// dependencies between them.
package hypergraph

import (
	"fmt"
	"strings"

	"engage/internal/resource"
	"engage/internal/spec"
)

// Node is a resource instance in the hypergraph.
type Node struct {
	ID       string
	Key      resource.Key
	Machine  string // ID of the machine node
	Inside   string // ID of the container node; "" for machines
	FromSpec bool   // appeared in the partial installation specification (the ✓ of Fig. 5)
	Config   map[string]resource.Value
}

// Hyperedge is a dependency hyperedge: from Source to the disjunction of
// Targets (exactly one of which must be deployed when Source is).
type Hyperedge struct {
	Source         string
	Class          resource.DependencyClass
	Targets        []string
	PortMap        map[string]string
	ReversePortMap map[string]string
}

// Graph is the generated hypergraph.
type Graph struct {
	nodes map[string]*Node
	// Order lists node IDs in creation order (deterministic).
	Order []string
	Edges []Hyperedge
}

// NewGraph returns an empty graph; Generate is the usual constructor,
// but synthetic graphs are useful in tests and benchmarks.
func NewGraph() *Graph {
	return &Graph{nodes: make(map[string]*Node)}
}

// AddNode inserts a node; it panics on duplicate IDs.
func (g *Graph) AddNode(n *Node) {
	if _, dup := g.nodes[n.ID]; dup {
		panic(fmt.Sprintf("hypergraph: duplicate node %q", n.ID))
	}
	g.add(n)
}

// AddEdge appends a hyperedge.
func (g *Graph) AddEdge(e Hyperedge) { g.Edges = append(g.Edges, e) }

// Node returns the node with the given ID.
func (g *Graph) Node(id string) (*Node, bool) {
	n, ok := g.nodes[id]
	return n, ok
}

// Nodes returns all nodes in creation order.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, len(g.Order))
	for i, id := range g.Order {
		out[i] = g.nodes[id]
	}
	return out
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.Order) }

func (g *Graph) add(n *Node) {
	g.nodes[n.ID] = n
	g.Order = append(g.Order, n.ID)
}

// Generate runs GraphGen(R, I): it processes the partial install
// specification I against the registry R, creating nodes for every
// resource instance that may participate in a full installation
// specification extending I, and hyperedges for their dependencies.
//
// Per the paper: abstract dependency targets are replaced by their
// concrete frontier; environment dependencies are resolved against
// nodes on the same machine (creating new instances on that machine
// when absent); peer dependencies are resolved against nodes anywhere
// (new instances conservatively land on the dependent's machine); and
// no new machines are ever created.
func Generate(reg *resource.Registry, partial *spec.Partial) (*Graph, error) {
	g := &Graph{nodes: make(map[string]*Node)}
	sub := resource.NewSubtyper(reg)
	var worklist []string

	// Pass 1: create nodes for every instance in the partial spec.
	for _, pi := range partial.Instances {
		if _, dup := g.nodes[pi.ID]; dup {
			return nil, fmt.Errorf("hypergraph: duplicate instance id %q", pi.ID)
		}
		t, ok := reg.Lookup(pi.Key)
		if !ok {
			return nil, fmt.Errorf("hypergraph: instance %q: unknown resource type %q", pi.ID, pi.Key)
		}
		if t.Abstract {
			return nil, fmt.Errorf("hypergraph: instance %q: abstract type %q cannot be instantiated", pi.ID, pi.Key)
		}
		g.add(&Node{ID: pi.ID, Key: pi.Key, Inside: pi.Inside, FromSpec: true, Config: pi.Config})
		worklist = append(worklist, pi.ID)
	}

	// Resolve machines for the spec nodes (inside chains must stay
	// within the partial specification, per the paper's assumption).
	for _, id := range g.Order {
		m, err := g.resolveMachine(id)
		if err != nil {
			return nil, err
		}
		g.nodes[id].Machine = m
	}

	// Pass 2: worklist processing.
	for len(worklist) > 0 {
		id := worklist[0]
		worklist = worklist[1:]
		n := g.nodes[id]
		t := reg.MustLookup(n.Key)

		// Inside dependency.
		if t.Inside != nil {
			if n.Inside == "" {
				return nil, fmt.Errorf("hypergraph: instance %q (type %q) has an unresolved inside dependency", n.ID, n.Key)
			}
			container, ok := g.nodes[n.Inside]
			if !ok {
				return nil, fmt.Errorf("hypergraph: instance %q: container %q not in specification", n.ID, n.Inside)
			}
			if !matchesAny(sub, container.Key, t.Inside.Alternatives) {
				return nil, fmt.Errorf("hypergraph: instance %q: container %q (type %q) does not satisfy inside dependency %s",
					n.ID, container.ID, container.Key, t.Inside)
			}
			g.Edges = append(g.Edges, Hyperedge{
				Source:         n.ID,
				Class:          resource.DepInside,
				Targets:        []string{container.ID},
				PortMap:        t.Inside.PortMap,
				ReversePortMap: t.Inside.ReversePortMap,
			})
		}

		// Environment dependencies: targets on the same machine.
		for _, d := range t.Env {
			edge, created, err := g.resolveDep(reg, sub, n, d, resource.DepEnv)
			if err != nil {
				return nil, err
			}
			g.Edges = append(g.Edges, edge)
			worklist = append(worklist, created...)
		}

		// Peer dependencies: targets anywhere; new nodes on n's machine.
		for _, d := range t.Peer {
			edge, created, err := g.resolveDep(reg, sub, n, d, resource.DepPeer)
			if err != nil {
				return nil, err
			}
			g.Edges = append(g.Edges, edge)
			worklist = append(worklist, created...)
		}
	}
	return g, nil
}

// resolveDep resolves one environment or peer dependency of node n: for
// each (frontier-expanded) disjunct, find a matching existing node or
// create a new instance. Returns the hyperedge and the IDs of newly
// created nodes.
func (g *Graph) resolveDep(reg *resource.Registry, sub *resource.Subtyper,
	n *Node, d resource.Dependency, class resource.DependencyClass) (Hyperedge, []string, error) {

	var concrete []resource.Key
	for _, alt := range d.Alternatives {
		frontier, err := reg.Frontier(alt)
		if err != nil {
			return Hyperedge{}, nil, fmt.Errorf("hypergraph: instance %q: %v", n.ID, err)
		}
		concrete = append(concrete, frontier...)
	}

	edge := Hyperedge{
		Source:         n.ID,
		Class:          class,
		PortMap:        d.PortMap,
		ReversePortMap: d.ReversePortMap,
	}
	var created []string
	seen := make(map[string]bool)
	for _, k := range concrete {
		target := g.findMatch(sub, k, n.Machine, class, n.ID)
		if target == "" {
			var err error
			target, err = g.create(reg, sub, k, n.Machine)
			if err != nil {
				return Hyperedge{}, nil, fmt.Errorf("hypergraph: resolving %s dependency of %q: %v", class, n.ID, err)
			}
			created = append(created, target)
		}
		if !seen[target] {
			seen[target] = true
			edge.Targets = append(edge.Targets, target)
		}
	}
	return edge, created, nil
}

// findMatch looks for an existing node whose key is a subtype of k; for
// environment dependencies the node must live on the given machine. The
// dependent itself is never a match — a resource cannot satisfy its own
// dependency (that would be a self-cycle), even when structural
// subtyping relates the types.
func (g *Graph) findMatch(sub *resource.Subtyper, k resource.Key, machine string, class resource.DependencyClass, source string) string {
	for _, id := range g.Order {
		if id == source {
			continue
		}
		node := g.nodes[id]
		if class == resource.DepEnv && node.Machine != machine {
			continue
		}
		if sub.IsSubtype(node.Key, k) {
			return id
		}
	}
	return ""
}

// create instantiates a new node for key k on the given machine,
// resolving its container: the machine itself when the type's inside
// dependency admits it, otherwise an existing node on the machine whose
// key satisfies the dependency.
func (g *Graph) create(reg *resource.Registry, sub *resource.Subtyper, k resource.Key, machine string) (string, error) {
	t, ok := reg.Lookup(k)
	if !ok {
		return "", fmt.Errorf("unknown resource type %q", k)
	}
	if t.Abstract {
		return "", fmt.Errorf("abstract type %q cannot be instantiated", k)
	}
	id := g.freshID(k, machine)
	node := &Node{ID: id, Key: k, Machine: machine}
	if t.Inside != nil {
		mnode := g.nodes[machine]
		if mnode == nil {
			return "", fmt.Errorf("no machine %q for new instance of %q", machine, k)
		}
		if matchesAny(sub, mnode.Key, t.Inside.Alternatives) {
			node.Inside = machine
		} else {
			container := ""
			for _, cid := range g.Order {
				c := g.nodes[cid]
				if c.Machine != machine {
					continue
				}
				if matchesAny(sub, c.Key, t.Inside.Alternatives) {
					container = cid
					break
				}
			}
			if container == "" {
				return "", fmt.Errorf("no container on machine %q satisfying inside dependency %s of %q",
					machine, t.Inside, k)
			}
			node.Inside = container
		}
	} else {
		// A machine-type dependency would require provisioning a new
		// machine; the constraint-generation process assumes no new
		// machines are created (§2).
		return "", fmt.Errorf("dependency on machine type %q cannot be auto-instantiated (no new machines)", k)
	}
	g.add(node)
	return id, nil
}

// freshID derives a deterministic unique node ID from a key and machine.
func (g *Graph) freshID(k resource.Key, machine string) string {
	base := strings.ToLower(strings.ReplaceAll(k.Name, " ", "-"))
	if k.Version != "" {
		base += "-" + k.Version
	}
	if machine != "" {
		base += "@" + machine
	}
	id := base
	for i := 2; ; i++ {
		if _, taken := g.nodes[id]; !taken {
			return id
		}
		id = fmt.Sprintf("%s#%d", base, i)
	}
}

// resolveMachine follows inside links of spec nodes to a machine.
func (g *Graph) resolveMachine(id string) (string, error) {
	seen := make(map[string]bool)
	cur := g.nodes[id]
	for {
		if cur.Inside == "" {
			return cur.ID, nil
		}
		if seen[cur.ID] {
			return "", fmt.Errorf("hypergraph: inside cycle at instance %q", id)
		}
		seen[cur.ID] = true
		next, ok := g.nodes[cur.Inside]
		if !ok {
			return "", fmt.Errorf("hypergraph: instance %q: container %q not in specification", cur.ID, cur.Inside)
		}
		cur = next
	}
}

func matchesAny(sub *resource.Subtyper, k resource.Key, alts []resource.Key) bool {
	for _, a := range alts {
		if sub.IsSubtype(k, a) {
			return true
		}
	}
	return false
}

// EdgesFrom returns the hyperedges with the given source, in order.
func (g *Graph) EdgesFrom(source string) []Hyperedge {
	var out []Hyperedge
	for _, e := range g.Edges {
		if e.Source == source {
			out = append(out, e)
		}
	}
	return out
}
