package hypergraph

import (
	"strings"
	"testing"

	"engage/internal/rdl"
	"engage/internal/resource"
	"engage/internal/spec"
	"engage/internal/testlib"
)

func fig2Graph(t *testing.T) *Graph {
	t.Helper()
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}
	p, err := testlib.Fig2Partial()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Generate(reg, p)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestFig5Shape verifies the generated hypergraph matches Fig. 5 of the
// paper: nodes {server, tomcat, openmrs, jdk, jre, mysql}; the three
// spec nodes marked; inside edges to server/tomcat; env hyperedges from
// tomcat and openmrs to {jdk, jre}; a peer edge from openmrs to mysql.
func TestFig5Shape(t *testing.T) {
	g := fig2Graph(t)

	if g.Len() != 6 {
		t.Fatalf("Fig. 5 has 6 nodes, got %d: %v", g.Len(), g.Order)
	}
	wantKeys := map[string]string{
		"server":  "Mac-OSX 10.6",
		"tomcat":  "Tomcat 6.0.18",
		"openmrs": "OpenMRS 1.8",
	}
	for id, key := range wantKeys {
		n, ok := g.Node(id)
		if !ok {
			t.Fatalf("missing node %q", id)
		}
		if n.Key.String() != key {
			t.Errorf("node %q key = %q, want %q", id, n.Key, key)
		}
		if !n.FromSpec {
			t.Errorf("node %q should be marked FromSpec", id)
		}
	}

	// The auto-created nodes: JDK, JRE, MySQL — all on machine "server".
	var jdk, jre, mysql *Node
	for _, n := range g.Nodes() {
		switch n.Key.Name {
		case "JDK":
			jdk = n
		case "JRE":
			jre = n
		case "MySQL":
			mysql = n
		}
	}
	if jdk == nil || jre == nil || mysql == nil {
		t.Fatalf("expected auto-created JDK, JRE, MySQL nodes: %v", g.Order)
	}
	for _, n := range []*Node{jdk, jre, mysql} {
		if n.Machine != "server" {
			t.Errorf("node %q machine = %q, want server", n.ID, n.Machine)
		}
		if n.FromSpec {
			t.Errorf("auto-created node %q must not be FromSpec", n.ID)
		}
		if n.Inside != "server" {
			t.Errorf("node %q inside = %q, want server", n.ID, n.Inside)
		}
	}

	// Machines resolve through the inside chain.
	om, _ := g.Node("openmrs")
	if om.Machine != "server" || om.Inside != "tomcat" {
		t.Errorf("openmrs machine/inside = %q/%q", om.Machine, om.Inside)
	}

	// Edges: tomcat --env--> {jdk, jre}; openmrs --env--> {jdk, jre};
	// openmrs --peer--> {mysql}; inside edges from tomcat, openmrs, and
	// the auto-created nodes.
	tomcatEnv := findEdge(g, "tomcat", resource.DepEnv)
	if tomcatEnv == nil || len(tomcatEnv.Targets) != 2 {
		t.Fatalf("tomcat env hyperedge wrong: %+v", tomcatEnv)
	}
	openmrsEnv := findEdge(g, "openmrs", resource.DepEnv)
	if openmrsEnv == nil || len(openmrsEnv.Targets) != 2 {
		t.Fatalf("openmrs env hyperedge wrong: %+v", openmrsEnv)
	}
	// Both env hyperedges must share the same JDK/JRE nodes (no
	// duplicate instantiation on the same machine).
	if !sameTargets(tomcatEnv.Targets, openmrsEnv.Targets) {
		t.Errorf("tomcat and openmrs env targets differ: %v vs %v", tomcatEnv.Targets, openmrsEnv.Targets)
	}
	peer := findEdge(g, "openmrs", resource.DepPeer)
	if peer == nil || len(peer.Targets) != 1 || peer.Targets[0] != mysql.ID {
		t.Fatalf("openmrs peer hyperedge wrong: %+v", peer)
	}
	inside := findEdge(g, "openmrs", resource.DepInside)
	if inside == nil || len(inside.Targets) != 1 || inside.Targets[0] != "tomcat" {
		t.Fatalf("openmrs inside edge wrong: %+v", inside)
	}
}

func findEdge(g *Graph, source string, class resource.DependencyClass) *Hyperedge {
	for i := range g.Edges {
		if g.Edges[i].Source == source && g.Edges[i].Class == class {
			return &g.Edges[i]
		}
	}
	return nil
}

func sameTargets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[string]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	for _, y := range b {
		if !set[y] {
			return false
		}
	}
	return true
}

func TestGenerateDeterministic(t *testing.T) {
	g1 := fig2Graph(t)
	g2 := fig2Graph(t)
	if strings.Join(g1.Order, ",") != strings.Join(g2.Order, ",") {
		t.Errorf("node order not deterministic: %v vs %v", g1.Order, g2.Order)
	}
	if len(g1.Edges) != len(g2.Edges) {
		t.Errorf("edge count not deterministic")
	}
}

func TestGeneratePortMapsCarried(t *testing.T) {
	g := fig2Graph(t)
	e := findEdge(g, "openmrs", resource.DepPeer)
	if e.PortMap["mysql"] != "mysql" {
		t.Errorf("peer edge port map lost: %+v", e.PortMap)
	}
}

func TestGenerateErrors(t *testing.T) {
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		p    *spec.Partial
		want string
	}{
		{
			"unknown type",
			partial(t, `[{"id": "x", "key": "Mystery 1"}]`),
			"unknown resource type",
		},
		{
			"abstract type",
			partial(t, `[{"id": "x", "key": "Java"}]`),
			"abstract",
		},
		{
			"duplicate id",
			partial(t, `[{"id": "a", "key": "Mac-OSX 10.6"}, {"id": "a", "key": "Mac-OSX 10.6"}]`),
			"duplicate",
		},
		{
			"missing container",
			partial(t, `[{"id": "t", "key": "Tomcat 6.0.18", "inside": {"id": "ghost"}}]`),
			"not in specification",
		},
		{
			"unresolved inside",
			partial(t, `[{"id": "t", "key": "Tomcat 6.0.18"}]`),
			"unresolved inside",
		},
		{
			"wrong container type",
			partial(t, `[
				{"id": "server", "key": "Mac-OSX 10.6"},
				{"id": "db", "key": "MySQL 5.1", "inside": {"id": "server"}},
				{"id": "t", "key": "Tomcat 6.0.18", "inside": {"id": "db"}}]`),
			"does not satisfy inside dependency",
		},
	}
	for _, c := range cases {
		_, err := Generate(reg, c.p)
		if err == nil {
			t.Errorf("%s: expected error containing %q", c.name, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q, want substring %q", c.name, err, c.want)
		}
	}
}

func partial(t *testing.T, js string) *spec.Partial {
	t.Helper()
	var p spec.Partial
	if err := p.UnmarshalJSON([]byte(js)); err != nil {
		t.Fatal(err)
	}
	return &p
}

// TestPeerReuseAcrossMachines: a peer dependency may be satisfied by an
// instance on another machine (unlike env).
func TestPeerReuseAcrossMachines(t *testing.T) {
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}
	p := partial(t, `[
		{"id": "dbhost", "key": "Mac-OSX 10.6"},
		{"id": "apphost", "key": "Mac-OSX 10.6"},
		{"id": "mysql", "key": "MySQL 5.1", "inside": {"id": "dbhost"}},
		{"id": "tomcat", "key": "Tomcat 6.0.18", "inside": {"id": "apphost"}},
		{"id": "openmrs", "key": "OpenMRS 1.8", "inside": {"id": "tomcat"}}
	]`)
	g, err := Generate(reg, p)
	if err != nil {
		t.Fatal(err)
	}
	// The peer edge must target the existing mysql on dbhost, not create
	// a new one on apphost.
	e := findEdge(g, "openmrs", resource.DepPeer)
	if e == nil || len(e.Targets) != 1 || e.Targets[0] != "mysql" {
		t.Fatalf("peer should reuse remote mysql: %+v", e)
	}
	// Env deps (Java) must NOT be satisfied across machines: tomcat and
	// openmrs need Java on apphost; none exists on dbhost to confuse it,
	// but check the created java nodes are on apphost.
	for _, n := range g.Nodes() {
		if n.Key.Name == "JDK" || n.Key.Name == "JRE" {
			if n.Machine != "apphost" {
				t.Errorf("java node %q on machine %q, want apphost", n.ID, n.Machine)
			}
		}
	}
}

// TestEnvNotSharedAcrossMachines: an env dependency creates a fresh
// instance per machine even when one exists elsewhere.
func TestEnvNotSharedAcrossMachines(t *testing.T) {
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}
	p := partial(t, `[
		{"id": "m1", "key": "Mac-OSX 10.6"},
		{"id": "m2", "key": "Mac-OSX 10.6"},
		{"id": "t1", "key": "Tomcat 6.0.18", "inside": {"id": "m1"}},
		{"id": "t2", "key": "Tomcat 6.0.18", "inside": {"id": "m2"}}
	]`)
	g, err := Generate(reg, p)
	if err != nil {
		t.Fatal(err)
	}
	count := map[string]int{}
	for _, n := range g.Nodes() {
		if n.Key.Name == "JDK" {
			count[n.Machine]++
		}
	}
	if count["m1"] != 1 || count["m2"] != 1 {
		t.Errorf("each machine needs its own JDK: %v", count)
	}
}

// TestLemma1: every node is either from the spec or transitively
// depended on by a spec node, and every non-machine node has an inside
// edge (Lemma 1 of the paper).
func TestLemma1(t *testing.T) {
	g := fig2Graph(t)

	// (ii)-(iv): every node with an inside container has an inside edge.
	for _, n := range g.Nodes() {
		if n.Inside == "" {
			continue
		}
		if e := findEdge(g, n.ID, resource.DepInside); e == nil {
			t.Errorf("node %q has container but no inside edge", n.ID)
		}
	}

	// (i): reachability from spec nodes via hyperedges covers all
	// non-spec nodes.
	reach := make(map[string]bool)
	var stack []string
	for _, n := range g.Nodes() {
		if n.FromSpec {
			reach[n.ID] = true
			stack = append(stack, n.ID)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.EdgesFrom(id) {
			for _, tgt := range e.Targets {
				if !reach[tgt] {
					reach[tgt] = true
					stack = append(stack, tgt)
				}
			}
		}
	}
	for _, n := range g.Nodes() {
		if !reach[n.ID] {
			t.Errorf("node %q unreachable from spec nodes", n.ID)
		}
	}
}

func TestFreshIDCollision(t *testing.T) {
	g := &Graph{nodes: make(map[string]*Node)}
	taken := func(id string) bool { _, ok := g.nodes[id]; return ok }
	k := resource.MakeKey("JDK", "1.6")
	id1 := freshIDIn(k, "server", taken)
	g.add(&Node{ID: id1, Key: k})
	id2 := freshIDIn(k, "server", taken)
	if id1 == id2 {
		t.Errorf("freshID returned duplicate %q", id1)
	}
}

// TestNoSelfMatch: a resource whose type is structurally a subtype of
// its own dependency target must not satisfy that dependency itself.
func TestNoSelfMatch(t *testing.T) {
	src := `
abstract resource "Server" {}
resource "Base 1" { inside "Server" output { o: string = "b" } }
resource "Wrap 1" {
    inside "Server"
    input { o: string }
    peer "Base 1" { o -> o }
    output { o: string = "w" }
}`
	reg, err := rdl.ParseAndResolve(map[string]string{"t.rdl": src})
	if err != nil {
		t.Fatal(err)
	}
	// Wrap is structurally a subtype of Base (same output o plus more),
	// so naive matching could resolve Wrap's peer dep to Wrap itself.
	p := partial(t, `[
		{"id": "box", "key": "Server"},
		{"id": "wrap", "key": "Wrap 1", "inside": {"id": "box"}}
	]`)
	// Server is abstract — use a concrete machine instead.
	_ = p
	src2 := src + "\nresource \"Box 1\" extends \"Server\" {}\n"
	reg, err = rdl.ParseAndResolve(map[string]string{"t.rdl": src2})
	if err != nil {
		t.Fatal(err)
	}
	p2 := partial(t, `[
		{"id": "box", "key": "Box 1"},
		{"id": "wrap", "key": "Wrap 1", "inside": {"id": "box"}}
	]`)
	g, err := Generate(reg, p2)
	if err != nil {
		t.Fatal(err)
	}
	e := findEdge(g, "wrap", resource.DepPeer)
	if e == nil {
		t.Fatal("missing peer edge")
	}
	for _, tgt := range e.Targets {
		if tgt == "wrap" {
			t.Fatal("a node must not satisfy its own dependency")
		}
	}
	// A fresh Base instance was created instead.
	found := false
	for _, n := range g.Nodes() {
		if n.Key.Name == "Base" {
			found = true
		}
	}
	if !found {
		t.Error("expected auto-created Base instance")
	}
}
