package hypergraph

import (
	"fmt"
	"strings"

	"engage/internal/resource"
)

// Dot renders the hypergraph in Graphviz DOT format, in the style of
// Fig. 5: spec instances are drawn with doubled borders (the figure's ✓
// marks), machines as boxes, and hyperedges as a fan of styled arrows —
// solid for inside, dashed for environment, dotted for peer. Disjunctive
// hyperedges (more than one target) fan out through a small point node
// so the exactly-one choice is visible.
func (g *Graph) Dot() string {
	var b strings.Builder
	b.WriteString("digraph engage {\n")
	b.WriteString("  rankdir=BT;\n")
	b.WriteString("  node [fontname=\"Helvetica\"];\n")

	for _, n := range g.Nodes() {
		attrs := []string{fmt.Sprintf("label=\"%s\\n%s\"", n.ID, n.Key)}
		if n.Inside == "" {
			attrs = append(attrs, "shape=box")
		} else {
			attrs = append(attrs, "shape=ellipse")
		}
		if n.FromSpec {
			attrs = append(attrs, "peripheries=2")
		}
		fmt.Fprintf(&b, "  %q [%s];\n", n.ID, strings.Join(attrs, ", "))
	}

	style := func(c resource.DependencyClass) string {
		switch c {
		case resource.DepInside:
			return "solid"
		case resource.DepEnv:
			return "dashed"
		default:
			return "dotted"
		}
	}
	for i, e := range g.Edges {
		if len(e.Targets) == 1 {
			fmt.Fprintf(&b, "  %q -> %q [style=%s, label=%q];\n",
				e.Source, e.Targets[0], style(e.Class), e.Class.String())
			continue
		}
		// Disjunction: fan through a choice point.
		point := fmt.Sprintf("choice_%d", i)
		fmt.Fprintf(&b, "  %q [shape=point, label=\"\"];\n", point)
		fmt.Fprintf(&b, "  %q -> %q [style=%s, label=\"%s ⊕\"];\n",
			e.Source, point, style(e.Class), e.Class.String())
		for _, t := range e.Targets {
			fmt.Fprintf(&b, "  %q -> %q [style=%s];\n", point, t, style(e.Class))
		}
	}
	b.WriteString("}\n")
	return b.String()
}
