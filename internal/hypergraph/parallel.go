package hypergraph

import (
	"sync"

	"engage/internal/conc"
	"engage/internal/resource"
	"engage/internal/spec"
	"engage/internal/telemetry"
)

// This file implements the wave-parallel GraphGen. The sequential
// reference (Generate) processes the worklist one node at a time; here
// the worklist is processed in waves — all nodes currently queued — and
// the per-node expansion step runs concurrently on a bounded worker
// pool. Output is byte-identical to Generate for any schedule:
//
//   speculate  Each wave node is expanded by processNode against a
//              frozen snapshot of the graph (the state at wave start)
//              through an overlay that collects created nodes privately
//              and records a probe for every resolution query whose
//              answer was NOT a pre-snapshot node. Pre-snapshot answers
//              are stable: the graph only ever appends, and resolution
//              always returns the first match in creation order, so a
//              later append cannot displace an earlier answer.
//   commit     Plans are applied strictly in worklist order. A plan is
//              valid iff no node committed since its snapshot could
//              change any recorded probe's answer (subtype match under
//              the probe's machine scope) and no planned ID has been
//              taken. Valid plans append their edges and nodes exactly
//              as the sequential step would have; invalid plans are
//              discarded and the node is re-expanded sequentially
//              against the live graph (the redo), which by definition
//              reproduces the sequential result.
//
// Created nodes join the next wave in commit order, which reproduces
// the sequential FIFO worklist exactly.
//
// Shared lookups are memoized across expansions: the subtype relation
// (resource.SharedSubtyper), concrete frontiers (frontierMemo), and
// first-match resolution (matchCache, which remembers the first two
// matches per (key, machine) and resumes its scan incrementally instead
// of rescanning the node list per query).

// Options configure GenerateOpts.
type Options struct {
	// Parallelism bounds the worker pool expanding independent frontier
	// nodes concurrently. Values ≤ 0 select the sequential reference
	// implementation; 1 runs the wave machinery on a single worker
	// (useful to exercise the speculate/commit path deterministically).
	Parallelism int
	// Span, when non-nil, receives one "graphgen.wave" event per wave
	// with the wave size, nodes created, and speculative-commit
	// invalidations (plans discarded and redone sequentially).
	Span *telemetry.Span
}

// GenerateOpts is Generate with a parallelism option. The result is
// byte-identical to Generate (same node order, edge order, IDs, and
// errors) for every Parallelism value; the differential suite in
// internal/workload enforces this.
func GenerateOpts(reg *resource.Registry, partial *spec.Partial, opts Options) (*Graph, error) {
	if opts.Parallelism <= 0 {
		return Generate(reg, partial)
	}
	return generateWaves(reg, partial, opts.Parallelism, opts.Span)
}

func generateWaves(reg *resource.Registry, partial *spec.Partial, workers int, sp *telemetry.Span) (*Graph, error) {
	g, worklist, err := initFromPartial(reg, partial)
	if err != nil {
		return nil, err
	}
	sub := resource.NewSharedSubtyper(reg)
	fr := newFrontierMemo(reg)
	cache := newMatchCache(g, sub)
	redo := &cachedResolver{g: g, sub: sub, cache: cache, fr: fr}

	waveIdx := 0
	for len(worklist) > 0 {
		wave := worklist
		worklist = nil
		snapLen := len(g.Order)
		invalidated := 0

		// Speculation: expand every wave node against the frozen
		// snapshot. The graph is not mutated until all workers finish.
		plans := make([]*plan, len(wave))
		conc.ParallelFor(len(wave), workers, func(i int) {
			ov := &overlay{base: g, snapLen: snapLen, cache: cache, sub: sub, fr: fr}
			edges, _, err := processNode(ov, reg, g.nodes[wave[i]])
			plans[i] = &plan{edges: edges, created: ov.local, probes: ov.probes, err: err}
		})

		// Commit in worklist order.
		for i, id := range wave {
			p := plans[i]
			if p.valid(g, sub, snapLen) {
				if p.err != nil {
					return nil, p.err
				}
				for _, c := range p.created {
					g.add(c)
					worklist = append(worklist, c.ID)
				}
				g.Edges = append(g.Edges, p.edges...)
				continue
			}
			// Stale: re-expand sequentially against the live graph.
			invalidated++
			edges, created, err := processNode(redo, reg, g.nodes[id])
			if err != nil {
				return nil, err
			}
			g.Edges = append(g.Edges, edges...)
			worklist = append(worklist, created...)
		}
		sp.Event("graphgen.wave").
			Int("wave", int64(waveIdx)).
			Int("size", int64(len(wave))).
			Int("created", int64(len(g.Order)-snapLen)).
			Int("invalidated", int64(invalidated)).
			Emit()
		waveIdx++
	}
	return g, nil
}

// plan is the speculative expansion of one wave node.
type plan struct {
	edges   []Hyperedge
	created []*Node // private creations, in creation order
	probes  []probe
	err     error
}

// probe records a resolution query whose answer depended on
// post-snapshot state (it matched a speculative creation, or nothing).
// A node committed after the snapshot invalidates the plan iff it could
// have answered the query: its key is a subtype of one of the probe's
// keys, within the probe's machine scope ("" = any machine).
type probe struct {
	keys    []resource.Key
	machine string
}

// valid reports whether the plan can be committed as-is: no node
// committed since the plan's snapshot interferes with any probe, and no
// planned creation's ID has been taken. A plan that errored is only
// valid while the graph is still exactly at its snapshot (the error is
// then exactly the sequential one).
func (p *plan) valid(g *Graph, sub resource.SubtypeChecker, snapLen int) bool {
	if len(g.Order) == snapLen {
		return true
	}
	if p.err != nil {
		return false
	}
	for _, c := range p.created {
		if _, taken := g.nodes[c.ID]; taken {
			return false
		}
	}
	if len(p.probes) == 0 {
		return true
	}
	for _, id := range g.Order[snapLen:] {
		n := g.nodes[id]
		for _, pr := range p.probes {
			if pr.machine != "" && n.Machine != pr.machine {
				continue
			}
			for _, k := range pr.keys {
				if sub.IsSubtype(n.Key, k) {
					return false
				}
			}
		}
	}
	return true
}

// overlay is the speculation resolver: reads see the frozen snapshot
// (through the shared match cache) plus this expansion's own private
// creations; writes stay private.
type overlay struct {
	base    *Graph
	snapLen int
	cache   *matchCache
	sub     resource.SubtypeChecker
	fr      *frontierMemo
	local   []*Node
	probes  []probe
}

func (o *overlay) node(id string) (*Node, bool) {
	if n, ok := o.base.nodes[id]; ok {
		return n, true
	}
	for _, n := range o.local {
		if n.ID == id {
			return n, true
		}
	}
	return nil, false
}

func (o *overlay) findMatch(k resource.Key, machine, source string) string {
	if id, _ := o.cache.query(k, machine, o.snapLen, source); id != "" {
		return id // pre-snapshot answer: stable, no probe needed
	}
	o.probes = append(o.probes, probe{keys: []resource.Key{k}, machine: machine})
	for _, n := range o.local {
		if n.ID == source {
			continue
		}
		if machine != "" && n.Machine != machine {
			continue
		}
		if o.sub.IsSubtype(n.Key, k) {
			return n.ID
		}
	}
	return ""
}

func (o *overlay) findContainer(machine string, alts []resource.Key) string {
	// First match in creation order across all alternatives: base nodes
	// precede every local node, so a base answer (minimum index over
	// the per-alternative first matches) is final and stable.
	best, bestIdx := "", -1
	for _, a := range alts {
		if id, idx := o.cache.query(a, machine, o.snapLen, ""); id != "" {
			if bestIdx < 0 || idx < bestIdx {
				best, bestIdx = id, idx
			}
		}
	}
	if best != "" {
		return best
	}
	o.probes = append(o.probes, probe{keys: alts, machine: machine})
	for _, n := range o.local {
		if n.Machine != machine {
			continue
		}
		if matchesAny(o.sub, n.Key, alts) {
			return n.ID
		}
	}
	return ""
}

func (o *overlay) freshID(k resource.Key, machine string) string {
	return freshIDIn(k, machine, func(id string) bool {
		if _, taken := o.base.nodes[id]; taken {
			return true
		}
		for _, n := range o.local {
			if n.ID == id {
				return true
			}
		}
		return false
	})
}

func (o *overlay) addNode(n *Node)                   { o.local = append(o.local, n) }
func (o *overlay) subtyper() resource.SubtypeChecker { return o.sub }
func (o *overlay) frontier(k resource.Key) ([]resource.Key, error) {
	return o.fr.frontier(k)
}

// cachedResolver is the redo resolver: it reads and writes the live
// graph like graphResolver, but answers first-match queries through the
// shared match cache.
type cachedResolver struct {
	g     *Graph
	sub   resource.SubtypeChecker
	cache *matchCache
	fr    *frontierMemo
}

func (r *cachedResolver) node(id string) (*Node, bool) { return r.g.Node(id) }

func (r *cachedResolver) findMatch(k resource.Key, machine, source string) string {
	id, _ := r.cache.query(k, machine, len(r.g.Order), source)
	return id
}

func (r *cachedResolver) findContainer(machine string, alts []resource.Key) string {
	best, bestIdx := "", -1
	for _, a := range alts {
		if id, idx := r.cache.query(a, machine, len(r.g.Order), ""); id != "" {
			if bestIdx < 0 || idx < bestIdx {
				best, bestIdx = id, idx
			}
		}
	}
	return best
}

func (r *cachedResolver) freshID(k resource.Key, machine string) string {
	return freshIDIn(k, machine, func(id string) bool {
		_, taken := r.g.nodes[id]
		return taken
	})
}

func (r *cachedResolver) addNode(n *Node)                   { r.g.add(n) }
func (r *cachedResolver) subtyper() resource.SubtypeChecker { return r.sub }
func (r *cachedResolver) frontier(k resource.Key) ([]resource.Key, error) {
	return r.fr.frontier(k)
}

// matchCache memoizes first-match resolution over the (append-only)
// node list. For each (key, machine) pair it remembers the first two
// matching nodes and how far the scan got; a query resumes the scan
// instead of restarting it, so resolving a given pair costs one
// amortized pass over the node list no matter how many dependency
// disjuncts ask. Two matches suffice because a query excludes at most
// one node (the dependent itself). Answers are a pure function of
// (graph prefix, key, machine, limit, source) and therefore
// schedule-independent, even though the internal scan positions vary.
type matchCache struct {
	mu  sync.Mutex
	g   *Graph
	sub resource.SubtypeChecker
	m   map[matchKey]*matchEntry
}

type matchKey struct {
	key     resource.Key
	machine string // "" = any machine
}

type matchEntry struct {
	ids     [2]string
	idxs    [2]int
	n       int // filled entries of ids/idxs
	scanned int // g.Order[:scanned] has been scanned
}

func newMatchCache(g *Graph, sub resource.SubtypeChecker) *matchCache {
	return &matchCache{g: g, sub: sub, m: make(map[matchKey]*matchEntry)}
}

// query returns the first node among g.Order[:limit] whose key is a
// subtype of k (restricted to the machine when non-empty), excluding
// source, together with its position in creation order; ("", -1) when
// there is none.
func (c *matchCache) query(k resource.Key, machine string, limit int, source string) (string, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	mk := matchKey{key: k, machine: machine}
	e := c.m[mk]
	if e == nil {
		e = &matchEntry{}
		c.m[mk] = e
	}
	for e.n < 2 && e.scanned < limit {
		id := c.g.Order[e.scanned]
		n := c.g.nodes[id]
		if (machine == "" || n.Machine == machine) && c.sub.IsSubtype(n.Key, k) {
			e.ids[e.n] = id
			e.idxs[e.n] = e.scanned
			e.n++
		}
		e.scanned++
	}
	for i := 0; i < e.n; i++ {
		if e.idxs[i] >= limit {
			break
		}
		if e.ids[i] != source {
			return e.ids[i], e.idxs[i]
		}
	}
	return "", -1
}

// frontierMemo memoizes Registry.Frontier, which is a pure function of
// the (immutable during generation) registry. Callers must not mutate
// the returned slice.
type frontierMemo struct {
	mu  sync.RWMutex
	reg *resource.Registry
	m   map[resource.Key]frontierResult
}

type frontierResult struct {
	keys []resource.Key
	err  error
}

func newFrontierMemo(reg *resource.Registry) *frontierMemo {
	return &frontierMemo{reg: reg, m: make(map[resource.Key]frontierResult)}
}

func (f *frontierMemo) frontier(k resource.Key) ([]resource.Key, error) {
	f.mu.RLock()
	r, ok := f.m[k]
	f.mu.RUnlock()
	if ok {
		return r.keys, r.err
	}
	keys, err := f.reg.Frontier(k)
	f.mu.Lock()
	f.m[k] = frontierResult{keys: keys, err: err}
	f.mu.Unlock()
	return keys, err
}
