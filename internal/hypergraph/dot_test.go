package hypergraph

import (
	"strings"
	"testing"
)

func TestDotFig5(t *testing.T) {
	g := fig2Graph(t)
	dot := g.Dot()

	// Structure checks against Fig. 5.
	for _, want := range []string{
		"digraph engage",
		`"server" [label="server\nMac-OSX 10.6", shape=box, peripheries=2];`,
		`"tomcat" [label="tomcat\nTomcat 6.0.18", shape=ellipse, peripheries=2];`,
		"style=dashed", // environment edges
		"style=dotted", // peer edge
		"shape=point",  // the jdk/jre choice fan
		`label="environment ⊕"`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Auto-created nodes are single-bordered.
	if strings.Contains(dot, `jdk-1.6@server", shape=ellipse, peripheries=2`) {
		t.Error("auto-created nodes must not be double-bordered")
	}
	// Exactly two choice points: tomcat→{jdk,jre} and openmrs→{jdk,jre}.
	if n := strings.Count(dot, "shape=point"); n != 2 {
		t.Errorf("expected 2 disjunction fans, got %d", n)
	}
	// Deterministic.
	if g.Dot() != dot {
		t.Error("Dot output should be deterministic")
	}
}
