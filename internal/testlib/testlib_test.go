package testlib

import (
	"testing"

	"engage/internal/config"
	"engage/internal/resource"
	"engage/internal/typecheck"
)

// The fixtures other packages test against deserve tests of their own:
// the OpenMRS RDL must parse into the §2 lattice, the Fig. 2 partial
// must name instances of it, and the pair must configure end to end.

func TestOpenMRSRegistry(t *testing.T) {
	reg, err := OpenMRSRegistry()
	if err != nil {
		t.Fatalf("OpenMRSRegistry: %v", err)
	}

	wantConcrete := []string{
		"Mac-OSX 10.6", "Windows-XP", "JDK 1.6", "JRE 1.6",
		"Tomcat 6.0.18", "MySQL 5.1", "OpenMRS 1.8",
	}
	for _, s := range wantConcrete {
		k := resource.ParseKey(s)
		ty, ok := reg.Lookup(k)
		if !ok {
			t.Fatalf("registry lacks %q", s)
		}
		if ty.Abstract {
			t.Errorf("%q should be concrete", s)
		}
	}
	for _, s := range []string{"Server", "Java"} {
		ty, ok := reg.Lookup(resource.ParseKey(s))
		if !ok {
			t.Fatalf("registry lacks abstract %q", s)
		}
		if !ty.Abstract {
			t.Errorf("%q should be abstract", s)
		}
	}

	// The Java frontier is the two concrete runtimes, sorted.
	front, err := reg.Frontier(resource.ParseKey("Java"))
	if err != nil {
		t.Fatalf("Frontier(Java): %v", err)
	}
	if len(front) != 2 || front[0].Name != "JDK" || front[1].Name != "JRE" {
		t.Fatalf("Frontier(Java) = %v, want [JDK 1.6, JRE 1.6]", front)
	}

	// Inheritance flattening: JDK gets Java's inside dep and output.
	jdk, _ := reg.Lookup(resource.ParseKey("JDK 1.6"))
	if jdk.Inside == nil || len(jdk.Inside.Alternatives) != 1 || jdk.Inside.Alternatives[0].Name != "Server" {
		t.Errorf("JDK inside dependency = %+v, want Server", jdk.Inside)
	}
	if _, ok := jdk.FindPort(resource.SecOutput, "java"); !ok {
		t.Errorf("JDK lacks inherited output port %q", "java")
	}

	// The declared extends edges are genuine subtypes.
	sub := resource.NewSubtyper(reg)
	for sub2, super := range map[string]string{
		"JDK 1.6":      "Java",
		"JRE 1.6":      "Java",
		"Mac-OSX 10.6": "Server",
		"Windows-XP":   "Server",
	} {
		if err := sub.Explain(resource.ParseKey(sub2), resource.ParseKey(super)); err != nil {
			t.Errorf("%q ≤RT %q: %v", sub2, super, err)
		}
	}
	if sub.IsSubtype(resource.ParseKey("JDK 1.6"), resource.ParseKey("JRE 1.6")) {
		t.Error("JDK 1.6 must not be a subtype of its sibling JRE 1.6")
	}
}

func TestFig2Partial(t *testing.T) {
	p, err := Fig2Partial()
	if err != nil {
		t.Fatalf("Fig2Partial: %v", err)
	}
	if len(p.Instances) != 3 {
		t.Fatalf("Fig. 2 partial has %d instances, want 3", len(p.Instances))
	}
	// The inside chain of Fig. 2: openmrs → tomcat → server.
	wantInside := map[string]string{"server": "", "tomcat": "server", "openmrs": "tomcat"}
	for _, inst := range p.Instances {
		want, ok := wantInside[inst.ID]
		if !ok {
			t.Fatalf("unexpected instance %q", inst.ID)
		}
		if inst.Inside != want {
			t.Errorf("instance %q inside = %q, want %q", inst.ID, inst.Inside, want)
		}
	}
	srv, ok := p.Find("server")
	if !ok {
		t.Fatal("no server instance")
	}
	if got := srv.Config["hostname"]; got.Str != "localhost" {
		t.Errorf("server hostname config = %v, want localhost", got)
	}
}

func TestMustBadPartial(t *testing.T) {
	reg, err := OpenMRSRegistry()
	if err != nil {
		t.Fatalf("OpenMRSRegistry: %v", err)
	}
	bad := MustBadPartial()
	if _, err := config.New(reg).Configure(bad); err == nil {
		t.Fatal("Configure(MustBadPartial()) succeeded, want unknown-type error")
	}
}

// TestFixturesConfigureEndToEnd: the canonical fixture pair drives the
// whole engine and yields a checkable full specification containing the
// paper's auto-created instances (a Java runtime and a MySQL server).
func TestFixturesConfigureEndToEnd(t *testing.T) {
	reg, err := OpenMRSRegistry()
	if err != nil {
		t.Fatalf("OpenMRSRegistry: %v", err)
	}
	p, err := Fig2Partial()
	if err != nil {
		t.Fatalf("Fig2Partial: %v", err)
	}
	full, err := config.New(reg).Configure(p)
	if err != nil {
		t.Fatalf("Configure: %v", err)
	}
	if err := typecheck.CheckSpec(reg, full); err != nil {
		t.Fatalf("CheckSpec: %v", err)
	}
	var haveJava, haveMySQL bool
	for _, inst := range full.Instances {
		switch inst.Key.Name {
		case "JDK", "JRE":
			haveJava = true
		case "MySQL":
			haveMySQL = true
		}
	}
	if !haveJava || !haveMySQL {
		t.Errorf("full spec lacks auto-created dependencies (java=%v mysql=%v): %v",
			haveJava, haveMySQL, full.Instances)
	}
}
