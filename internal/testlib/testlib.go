// Package testlib provides shared test fixtures: the §2 OpenMRS resource
// lattice in RDL form and its Fig. 2 partial installation specification.
// It is imported only by tests.
package testlib

import (
	"encoding/json"
	"fmt"

	"engage/internal/rdl"
	"engage/internal/resource"
	"engage/internal/spec"
)

// OpenMRSRDL is the §2 resource library: Server (abstract; Mac OSX and
// Windows concrete), Java (abstract; JDK/JRE concrete), Tomcat, MySQL,
// OpenMRS, with the paper's dependency structure.
const OpenMRSRDL = `
// A physical or virtual machine.
abstract resource "Server" {
    config {
        hostname: string = "localhost"
        os_user_name: string = "root"
    }
    output {
        host: struct { hostname: string } = { hostname: config.hostname }
    }
}

resource "Mac-OSX 10.6" extends "Server" {}
resource "Windows-XP" extends "Server" {}

// The Java runtime, abstract over JDK and JRE.
abstract resource "Java" {
    inside "Server"
    output {
        java: struct { home: string } = { home: "/usr/java" }
    }
}

resource "JDK 1.6" extends "Java" {
    output { jdk_tools: string = "/usr/java/bin" }
}
resource "JRE 1.6" extends "Java" {
    output { jre_lib: string = "/usr/java/lib" }
}

resource "Tomcat 6.0.18" {
    inside "Server"
    input  { java: struct { home: string } }
    config { manager_port: tcp_port = 8080 }
    output {
        tomcat: struct { port: tcp_port } = { port: config.manager_port }
    }
    env "Java" { java -> java }
}

resource "MySQL 5.1" {
    inside "Server"
    config {
        port: tcp_port = 3306
        admin_password: secret = secret("changeme")
    }
    output {
        mysql: struct { host: string, port: tcp_port } = {
            host: "localhost", port: config.port
        }
    }
}

resource "OpenMRS 1.8" {
    inside "Tomcat [5.5, 6.0.29)"
    input {
        java: struct { home: string }
        mysql: struct { host: string, port: tcp_port }
    }
    config { db_name: string = "openmrs" }
    output {
        url: string = concat("jdbc:mysql://", input.mysql.host, ":", input.mysql.port, "/", config.db_name)
    }
    env "Java" { java -> java }
    peer "MySQL 5.1" { mysql -> mysql }
}
`

// OpenMRSRegistry parses and resolves OpenMRSRDL.
func OpenMRSRegistry() (*resource.Registry, error) {
	return rdl.ParseAndResolve(map[string]string{"openmrs.rdl": OpenMRSRDL})
}

// Fig2JSON is the Fig. 2 partial installation specification.
const Fig2JSON = `[
  { "id": "server", "key": "Mac-OSX 10.6",
    "config_port": { "hostname": "localhost", "os_user_name": "root" } },
  { "id": "tomcat", "key": "Tomcat 6.0.18", "inside": { "id": "server" } },
  { "id": "openmrs", "key": "OpenMRS 1.8", "inside": { "id": "tomcat" } }
]`

// Fig2Partial parses Fig2JSON.
func Fig2Partial() (*spec.Partial, error) {
	var p spec.Partial
	if err := json.Unmarshal([]byte(Fig2JSON), &p); err != nil {
		return nil, fmt.Errorf("testlib: %v", err)
	}
	return &p, nil
}

// MustBadPartial returns a partial spec referencing an unknown resource
// type, for error-path tests.
func MustBadPartial() *spec.Partial {
	p := &spec.Partial{}
	p.Add("x", resource.MakeKey("Mystery", "1"))
	return p
}
