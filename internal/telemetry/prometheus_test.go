package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestWriteJSONSortedAndStable pins the satellite contract: WriteJSON
// emits sections and instrument names in sorted order, byte-identically
// across calls, regardless of insertion order.
func TestWriteJSONSortedAndStable(t *testing.T) {
	build := func(names []string) *Registry {
		r := NewRegistry()
		for _, n := range names {
			r.Counter("c." + n).Inc()
			r.Gauge("g." + n).Set(7)
		}
		r.Histogram("h.lat").Observe(3)
		r.Histogram("h.lat").Observe(0)
		r.Histogram("h.lat").Observe(1 << 11)
		return r
	}
	// Two insertion orders must produce identical bytes.
	a, b := bytes.Buffer{}, bytes.Buffer{}
	if err := build([]string{"zz", "aa", "mm"}).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build([]string{"mm", "zz", "aa"}).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("WriteJSON not insertion-order independent:\n%s\nvs\n%s", a.String(), b.String())
	}
	want := `{
  "counters": {
    "c.aa": 1,
    "c.mm": 1,
    "c.zz": 1
  },
  "gauges": {
    "g.aa": 7,
    "g.mm": 7,
    "g.zz": 7
  },
  "histograms": {
    "h.lat": {
      "count": 3,
      "sum": 2051,
      "buckets": {
        "\u003c2^12": 1,
        "\u003c2^2": 1,
        "\u003c=0": 1
      }
    }
  }
}
`
	if a.String() != want {
		t.Errorf("WriteJSON = %s, want %s", a.String(), want)
	}
	// The explicit marshaler must stay byte-identical to the default
	// struct encoding (the shape every existing golden was pinned to).
	snap := build([]string{"zz", "aa", "mm"}).Snapshot()
	type plain struct {
		Counters   map[string]int64             `json:"counters,omitempty"`
		Gauges     map[string]int64             `json:"gauges,omitempty"`
		Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	}
	got, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	def, err := json.Marshal(plain{snap.Counters, snap.Gauges, snap.Histograms})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, def) {
		t.Errorf("MarshalJSON diverges from default encoding:\n%s\nvs\n%s", got, def)
	}
	// Empty snapshot stays "{}".
	var empty bytes.Buffer
	if err := NewRegistry().WriteJSON(&empty); err != nil {
		t.Fatal(err)
	}
	if empty.String() != "{}\n" {
		t.Errorf("empty snapshot = %q", empty.String())
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("monitor.restarts").Add(4)
	r.Gauge("deploy.active").Set(12)
	r.Gauge("health.state.app").Set(3)
	r.Gauge("health.state.db").Set(0)
	h := r.Histogram("health.probe.latency_ns")
	h.Observe(0)
	h.Observe(3)    // bucket 2 (<2^2)
	h.Observe(2000) // bucket 11 (<2^11)
	h.Observe(2001)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE engage_deploy_active gauge
engage_deploy_active 12
# TYPE engage_health_probe_latency_ns histogram
engage_health_probe_latency_ns_bucket{le="0"} 1
engage_health_probe_latency_ns_bucket{le="3"} 2
engage_health_probe_latency_ns_bucket{le="2047"} 4
engage_health_probe_latency_ns_bucket{le="+Inf"} 4
engage_health_probe_latency_ns_sum 4004
engage_health_probe_latency_ns_count 4
# TYPE engage_health_state gauge
engage_health_state{instance="app"} 3
engage_health_state{instance="db"} 0
# TYPE engage_monitor_restarts counter
engage_monitor_restarts 4
`
	if buf.String() != want {
		t.Errorf("WritePrometheus =\n%s\nwant\n%s", buf.String(), want)
	}

	// Byte-stable across calls.
	var again bytes.Buffer
	if err := r.WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if buf.String() != again.String() {
		t.Error("WritePrometheus is not byte-stable")
	}

	// Nil and empty registries write nothing.
	var nilBuf bytes.Buffer
	var nilReg *Registry
	if err := nilReg.WritePrometheus(&nilBuf); err != nil || nilBuf.Len() != 0 {
		t.Errorf("nil registry: %q, %v", nilBuf.String(), err)
	}
	if err := NewRegistry().WritePrometheus(&nilBuf); err != nil || nilBuf.Len() != 0 {
		t.Errorf("empty registry: %q, %v", nilBuf.String(), err)
	}
}

func TestPromNameSanitizes(t *testing.T) {
	cases := map[string]string{
		"monitor.restarts":   "engage_monitor_restarts",
		"probe-latency ns":   "engage_probe_latency_ns",
		"plain":              "engage_plain",
		"already_underscore": "engage_already_underscore",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
	if !strings.Contains(promName("a/b"), "a_b") {
		t.Error("slash should sanitize to underscore")
	}
}
