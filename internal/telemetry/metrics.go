package telemetry

// Metrics registry. Counters and gauges are single atomic words;
// histograms are fixed power-of-two buckets over int64 values (we track
// durations in nanoseconds and counts, so ~63 buckets cover the range).
// Instruments are created up front or on first use via the registry's
// lock; the hot-path operations (Add/Set/Observe) never lock or
// allocate. All methods tolerate nil receivers so disabled metrics cost
// a pointer check.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds named instruments. The zero value is not usable;
// construct with NewRegistry. A nil *Registry is a valid disabled
// registry: lookups return nil instruments whose methods no-op.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the stored value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

const histBuckets = 64 // bucket i holds values with bit length i; 63 = rest

// Histogram counts int64 observations in power-of-two buckets: bucket i
// holds values v with bits.Len64(v) == i (bucket 0 is v<=0). That gives
// order-of-magnitude resolution over the full nanosecond range with a
// fixed footprint and lock-free observation.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// HistogramSnapshot is one histogram's state in a Snapshot.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Buckets map[string]int64 `json:"buckets,omitempty"` // "2^i" upper-bound label -> count
}

// Snapshot is a point-in-time copy of every instrument, JSON-friendly.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies all instruments. Values written concurrently with the
// snapshot may or may not be included; each instrument is internally
// consistent.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters { //engage:maporder — map-to-map copy, order-free
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges { //engage:maporder — map-to-map copy, order-free
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms { //engage:maporder — map-to-map copy, order-free
			hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
			for i := 0; i < histBuckets; i++ {
				if n := h.buckets[i].Load(); n > 0 {
					if hs.Buckets == nil {
						hs.Buckets = make(map[string]int64)
					}
					hs.Buckets[bucketLabel(i)] = n
				}
			}
			s.Histograms[name] = hs
		}
	}
	return s
}

func bucketLabel(i int) string {
	// Upper bound of bucket i: values v with bits.Len64(v)==i satisfy
	// v < 2^i. Bucket 0 is "<=0".
	if i == 0 {
		return "<=0"
	}
	const digits = "0123456789"
	n := i
	var buf [2]byte
	w := len(buf)
	for n > 0 {
		w--
		buf[w] = digits[n%10]
		n /= 10
	}
	return "<2^" + string(buf[w:])
}

// MarshalJSON renders the snapshot with every section and every
// instrument name in sorted order, explicitly — not by leaning on
// encoding/json's map-key sorting — so /metrics goldens are byte-stable
// by construction. The encoding is byte-identical to the default struct
// encoding.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte('{')
	wrote := false
	section := func(name string) {
		if wrote {
			b.WriteByte(',')
		}
		wrote = true
		b.WriteString(`"` + name + `":`)
	}
	if len(s.Counters) > 0 {
		section("counters")
		writeSortedInt64Map(&b, s.Counters)
	}
	if len(s.Gauges) > 0 {
		section("gauges")
		writeSortedInt64Map(&b, s.Gauges)
	}
	if len(s.Histograms) > 0 {
		section("histograms")
		b.WriteByte('{')
		for i, name := range sortedKeys(s.Histograms) {
			if i > 0 {
				b.WriteByte(',')
			}
			writeJSONString(&b, name)
			hs := s.Histograms[name]
			fmt.Fprintf(&b, `:{"count":%d,"sum":%d`, hs.Count, hs.Sum)
			if len(hs.Buckets) > 0 {
				b.WriteString(`,"buckets":`)
				writeSortedInt64Map(&b, hs.Buckets)
			}
			b.WriteByte('}')
		}
		b.WriteByte('}')
	}
	b.WriteByte('}')
	return b.Bytes(), nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //engage:maporder — collected then sorted below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func writeSortedInt64Map(b *bytes.Buffer, m map[string]int64) {
	b.WriteByte('{')
	for i, k := range sortedKeys(m) {
		if i > 0 {
			b.WriteByte(',')
		}
		writeJSONString(b, k)
		fmt.Fprintf(b, ":%d", m[k])
	}
	b.WriteByte('}')
}

func writeJSONString(b *bytes.Buffer, s string) {
	enc, _ := json.Marshal(s) // marshaling a string cannot fail
	b.Write(enc)
}

// WriteJSON writes the snapshot as indented JSON, instruments in
// sorted-key order (see Snapshot.MarshalJSON).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Names returns all instrument names, sorted, for tests and reports.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for name := range r.counters { //engage:maporder — collected then sorted below
		out = append(out, name)
	}
	for name := range r.gauges { //engage:maporder — collected then sorted below
		out = append(out, name)
	}
	for name := range r.histograms { //engage:maporder — collected then sorted below
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
