package telemetry

// This file defines the on-disk JSON-lines schema and the reader used
// by `engage trace report`, `engage trace validate`, and the trace
// assertions in tests. One Line per record; spans are emitted when they
// End, so a child span precedes its parent in the file and readers
// order by VStart instead of file position.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Record kinds.
const (
	KindSpan  = "span"
	KindEvent = "event"
)

// Line is one trace record: a span (interval) or an event (point).
type Line struct {
	Kind   string         `json:"kind"`
	ID     int64          `json:"id"`
	Parent int64          `json:"parent,omitempty"` // spans: enclosing span ID
	Span   int64          `json:"span,omitempty"`   // events: owning span ID
	Name   string         `json:"name"`
	VStart *time.Time     `json:"vstart,omitempty"` // spans: virtual interval
	VEnd   *time.Time     `json:"vend,omitempty"`
	VDurNS int64          `json:"vdur_ns,omitempty"` // spans: VEnd-VStart
	WallNS int64          `json:"wall_ns,omitempty"` // spans: real elapsed
	VTime  *time.Time     `json:"vtime,omitempty"`   // events: virtual stamp
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// Str returns a string attribute ("" if absent or not a string).
func (l *Line) Str(k string) string {
	s, _ := l.Attrs[k].(string)
	return s
}

// Int returns an integer attribute (0 if absent). JSON numbers decode
// as float64; emission-side int64 values are converted back.
func (l *Line) Int(k string) int64 {
	switch v := l.Attrs[k].(type) {
	case float64:
		return int64(v)
	case int64:
		return v
	case int:
		return int64(v)
	}
	return 0
}

// Validate checks one line against the schema; the error names the
// offending field.
func (l *Line) Validate() error {
	switch l.Kind {
	case KindSpan:
		if l.ID <= 0 {
			return fmt.Errorf("span id %d must be positive", l.ID)
		}
		if l.Name == "" {
			return fmt.Errorf("span %d has no name", l.ID)
		}
		if l.VStart == nil || l.VEnd == nil {
			return fmt.Errorf("span %d (%s) missing vstart/vend", l.ID, l.Name)
		}
		if l.VEnd.Before(*l.VStart) {
			return fmt.Errorf("span %d (%s) ends before it starts", l.ID, l.Name)
		}
		if l.VDurNS != l.VEnd.Sub(*l.VStart).Nanoseconds() {
			return fmt.Errorf("span %d (%s) vdur_ns %d disagrees with interval", l.ID, l.Name, l.VDurNS)
		}
		if l.WallNS < 0 {
			return fmt.Errorf("span %d (%s) negative wall_ns", l.ID, l.Name)
		}
		if l.VTime != nil {
			return fmt.Errorf("span %d (%s) carries an event vtime", l.ID, l.Name)
		}
	case KindEvent:
		if l.ID <= 0 {
			return fmt.Errorf("event id %d must be positive", l.ID)
		}
		if l.Name == "" {
			return fmt.Errorf("event %d has no name", l.ID)
		}
		if l.VTime == nil {
			return fmt.Errorf("event %d (%s) missing vtime", l.ID, l.Name)
		}
		if l.VStart != nil || l.VEnd != nil {
			return fmt.Errorf("event %d (%s) carries span interval fields", l.ID, l.Name)
		}
	default:
		return fmt.Errorf("unknown kind %q", l.Kind)
	}
	for k, v := range l.Attrs { //engage:maporder — validation verdict is order-free
		switch v.(type) {
		case string, float64, bool, int64, int:
		default:
			return fmt.Errorf("%s %d (%s): attr %q is not a scalar", l.Kind, l.ID, l.Name, k)
		}
	}
	return nil
}

// Trace is a parsed trace with lookup helpers.
type Trace struct {
	Lines []Line
}

// ReadTrace parses and validates a JSON-lines trace. Errors identify
// the first offending line by number.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var tr Trace
	lineno := 0
	for sc.Scan() {
		lineno++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var l Line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			return nil, fmt.Errorf("line %d: %v", lineno, err)
		}
		if err := l.Validate(); err != nil {
			return nil, fmt.Errorf("line %d: %v", lineno, err)
		}
		tr.Lines = append(tr.Lines, l)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return &tr, nil
}

// Spans returns the spans with the given name, ordered by virtual start
// (then ID, for spans sharing a timestamp). An empty name matches all.
func (t *Trace) Spans(name string) []*Line {
	var out []*Line
	for i := range t.Lines {
		l := &t.Lines[i]
		if l.Kind == KindSpan && (name == "" || l.Name == name) {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].VStart.Equal(*out[j].VStart) {
			return out[i].VStart.Before(*out[j].VStart)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Events returns the events with the given name in virtual-time order.
// An empty name matches all.
func (t *Trace) Events(name string) []*Line {
	var out []*Line
	for i := range t.Lines {
		l := &t.Lines[i]
		if l.Kind == KindEvent && (name == "" || l.Name == name) {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].VTime.Equal(*out[j].VTime) {
			return out[i].VTime.Before(*out[j].VTime)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Span returns the span with the given ID, or nil.
func (t *Trace) Span(id int64) *Line {
	for i := range t.Lines {
		l := &t.Lines[i]
		if l.Kind == KindSpan && l.ID == id {
			return l
		}
	}
	return nil
}

// ChildSpans returns the spans parented under id, by virtual start.
func (t *Trace) ChildSpans(id int64) []*Line {
	var out []*Line
	for _, l := range t.Spans("") {
		if l.Parent == id {
			out = append(out, l)
		}
	}
	return out
}

// SpanEvents returns the events attached to span id, in virtual order.
func (t *Trace) SpanEvents(id int64) []*Line {
	var out []*Line
	for _, l := range t.Events("") {
		if l.Span == id {
			out = append(out, l)
		}
	}
	return out
}
