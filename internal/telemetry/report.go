package telemetry

// This file renders a parsed trace as the human-readable report behind
// `engage trace report`: a stage-level summary, a per-machine
// deployment timeline in virtual time, the fault-injection log matched
// against the actions it hit, and the critical path through the
// instance dependency graph.

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// WriteReport renders t to w. It is purely a reader: traces from any
// combination of stages (configure only, deploy only, both, several
// deploys) produce sensible output.
func WriteReport(w io.Writer, t *Trace) {
	spans, events := 0, 0
	for i := range t.Lines {
		if t.Lines[i].Kind == KindSpan {
			spans++
		} else {
			events++
		}
	}
	fmt.Fprintf(w, "trace: %d records (%d spans, %d events)\n", len(t.Lines), spans, events)

	writeStages(w, t)
	for _, root := range t.Spans("deploy") {
		writeTimeline(w, t, root)
		writeCriticalPath(w, t, root)
	}
	writeFaults(w, t)
	writeReconcile(w, t)
	writeMonitor(w, t)
	writeHealth(w, t)
}

// writeStages summarizes the front half: every lint or configuration
// run with its per-stage breakdown, then each deploy root.
func writeStages(w io.Writer, t *Trace) {
	lints := t.Spans("lint")
	cfgs := t.Spans("config")
	deps := t.Spans("deploy")
	if len(lints) == 0 && len(cfgs) == 0 && len(deps) == 0 {
		return
	}
	fmt.Fprintf(w, "\nstages:\n")
	for _, l := range lints {
		fmt.Fprintf(w, "  %-28s %s wall (%d errors, %d warnings)\n",
			"lint", wall(l), l.Int("errors"), l.Int("warnings"))
		for _, ch := range t.ChildSpans(l.ID) {
			fmt.Fprintf(w, "    %-26s %s\n", ch.Name, wall(ch))
		}
	}
	for _, c := range cfgs {
		fmt.Fprintf(w, "  %-28s %s wall\n", "config", wall(c))
		for _, ch := range t.ChildSpans(c.ID) {
			fmt.Fprintf(w, "    %-26s %s\n", ch.Name, wall(ch))
			writeSolveWorkers(w, t, ch)
		}
	}
	for _, d := range deps {
		mode := "sequential"
		if b, _ := d.Attrs["concurrent"].(bool); b {
			mode = "concurrent"
		} else if b, _ := d.Attrs["parallel"].(bool); b {
			mode = "parallel"
		}
		detail := fmt.Sprintf("%d instances, %s", d.Int("instances"), mode)
		if e := d.Str("error"); e != "" {
			detail += ", FAILED"
		}
		fmt.Fprintf(w, "  %-28s %s virtual (%s)  %s wall\n",
			"deploy", vdur(d), detail, wall(d))
	}
}

// writeSolveWorkers renders the portfolio breakdown of a solve span,
// if it has one: one line per racing worker from its "solve.portfolio"
// events — the winner with its status, the losers with the effort they
// had spent when the stop flag cancelled them.
func writeSolveWorkers(w io.Writer, t *Trace, solve *Line) {
	var workers []*Line
	for _, ev := range t.SpanEvents(solve.ID) {
		if ev.Name == "solve.portfolio" {
			workers = append(workers, ev)
		}
	}
	if len(workers) == 0 {
		return
	}
	sort.Slice(workers, func(i, j int) bool {
		return workers[i].Int("worker") < workers[j].Int("worker")
	})
	fmt.Fprintf(w, "      portfolio: %d workers, winner %d (%d canonicalization solves)\n",
		solve.Int("portfolio_workers"), solve.Int("portfolio_winner"), solve.Int("canon_solves"))
	for _, ev := range workers {
		mark := ""
		if b, _ := ev.Attrs["winner"].(bool); b {
			mark = "  ← winner"
		}
		fmt.Fprintf(w, "        worker %-2d %-8s restarts=%d conflicts=%d shared=%d/%d%s\n",
			ev.Int("worker"), strings.ToLower(ev.Str("status")),
			ev.Int("restarts"), ev.Int("conflicts"),
			ev.Int("shared_in"), ev.Int("shared_out"), mark)
	}
}

// writeTimeline prints the per-machine deployment timeline: instance
// spans grouped by hosting machine, each with its action spans and
// retry/timeout events, all as offsets from the deploy root's start.
func writeTimeline(w io.Writer, t *Trace, root *Line) {
	t0 := *root.VStart
	instances := childrenNamed(t, root.ID, "deploy.instance")
	if len(instances) == 0 {
		return
	}
	byMachine := make(map[string][]*Line)
	var machines []string
	for _, isp := range instances {
		m := isp.Str("machine")
		if _, ok := byMachine[m]; !ok {
			machines = append(machines, m)
		}
		byMachine[m] = append(byMachine[m], isp)
	}
	sort.Strings(machines)
	fmt.Fprintf(w, "\ndeployment timeline (virtual time since deploy start):\n")
	for _, m := range machines {
		fmt.Fprintf(w, "  machine %s\n", m)
		for _, isp := range byMachine[m] {
			status := ""
			if e := isp.Str("error"); e != "" {
				status = "  FAILED: " + e
			}
			fmt.Fprintf(w, "    %s %-24s %s%s\n",
				interval(isp, t0), isp.Str("instance"), isp.Str("key"), status)
			for _, asp := range childrenNamed(t, isp.ID, "deploy.action") {
				mark := ""
				if asp.Int("attempts") > 1 {
					mark = fmt.Sprintf("  (%d attempts)", asp.Int("attempts"))
				}
				if e := asp.Str("error"); e != "" {
					mark += "  FAILED: " + e
				}
				fmt.Fprintf(w, "      %s %s → %s%s\n",
					interval(asp, t0), asp.Str("action"), asp.Str("to"), mark)
				for _, ev := range t.SpanEvents(asp.ID) {
					switch ev.Name {
					case "deploy.retry":
						fmt.Fprintf(w, "        %s retry #%d after %s backoff: %s\n",
							offset(ev.VTime, t0), ev.Int("attempt"),
							time.Duration(ev.Int("backoff")), ev.Str("error"))
					case "deploy.timeout":
						fmt.Fprintf(w, "        %s timeout: cost %s > limit %s\n",
							offset(ev.VTime, t0),
							time.Duration(ev.Int("cost")), time.Duration(ev.Int("limit")))
					}
				}
			}
		}
	}
	for _, ch := range t.ChildSpans(root.ID) {
		if ch.Name == "deploy.rollback" {
			ok, _ := ch.Attrs["ok"].(bool)
			fmt.Fprintf(w, "  rollback at %s: ok=%v\n", offset(ch.VStart, t0), ok)
		}
	}
}

// writeFaults lists every fault injection and matches it to what it
// did to the deployment. Injected errors embed the failed operation's
// description, so a fault links to the retry event or action-span
// error that carries it — virtual-time containment cannot be used,
// because the world clock stands still while a deployment runs.
func writeFaults(w io.Writer, t *Trace) {
	faults := t.Events("fault.inject")
	if len(faults) == 0 {
		return
	}
	retries := t.Events("deploy.retry")
	actions := t.Spans("deploy.action")
	fmt.Fprintf(w, "\nfault injections:\n")
	for _, f := range faults {
		op := FaultOp(f)
		verdict := "no retry or failure recorded"
		if f.Str("effect") == "crash" {
			verdict = fmt.Sprintf("crash scheduled in %s",
				time.Duration(f.Int("crash_after")))
		} else if asp := firstMentioning(actions, op, "error"); asp != nil {
			verdict = fmt.Sprintf("terminal for %s/%s after %d attempts",
				asp.Str("instance"), asp.Str("action"), asp.Int("attempts"))
		} else if rv := firstMentioning(retries, op, "error"); rv != nil {
			verdict = "absorbed by retry"
			if asp := t.Span(rv.Span); asp != nil {
				verdict = fmt.Sprintf("absorbed by %s/%s (%d attempts)",
					asp.Str("instance"), asp.Str("action"), asp.Int("attempts"))
			}
		}
		fmt.Fprintf(w, "  %s rule %d %s: %s — %s\n",
			f.Str("plan"), f.Int("rule"), f.Str("mode"), op, verdict)
	}
}

// FaultOp reconstructs the injected operation's description from a
// "fault.inject" event's attributes, in the same format the injected
// error embeds — the join key between fault events and the retry /
// failure records they caused.
func FaultOp(f *Line) string {
	s := f.Str("op")
	if m := f.Str("machine"); m != "" {
		s += " on " + m
	}
	if n := f.Str("name"); n != "" {
		s += " (" + n + ")"
	}
	if p := f.Int("port"); p != 0 {
		s += fmt.Sprintf(" port %d", p)
	}
	return s
}

// firstMentioning returns the first line whose attr contains needle.
func firstMentioning(lines []*Line, needle, attr string) *Line {
	for _, l := range lines {
		if strings.Contains(l.Str(attr), needle) {
			return l
		}
	}
	return nil
}

// writeCriticalPath walks back from the latest-finishing instance span
// through its "deps" attribute, at each step following the dependency
// that finished last — the chain that bounded the deployment's
// virtual makespan.
func writeCriticalPath(w io.Writer, t *Trace, root *Line) {
	t0 := *root.VStart
	instances := childrenNamed(t, root.ID, "deploy.instance")
	if len(instances) == 0 {
		return
	}
	byID := make(map[string]*Line, len(instances))
	var totalWork time.Duration
	var last *Line
	for _, isp := range instances {
		byID[isp.Str("instance")] = isp
		totalWork += time.Duration(isp.VDurNS)
		if last == nil || isp.VEnd.After(*last.VEnd) {
			last = isp
		}
	}
	var path []*Line
	for isp := last; isp != nil; {
		path = append(path, isp)
		var next *Line
		for _, dep := range strings.Fields(isp.Str("deps")) {
			d, ok := byID[dep]
			if !ok {
				continue
			}
			if next == nil || d.VEnd.After(*next.VEnd) {
				next = d
			}
		}
		isp = next
	}
	makespan := root.VEnd.Sub(t0)
	fmt.Fprintf(w, "\ncritical path (%s makespan, %s total work", makespan, totalWork)
	if makespan > 0 && totalWork > makespan {
		fmt.Fprintf(w, ", %.1fx parallel speedup", float64(totalWork)/float64(makespan))
	}
	fmt.Fprintf(w, "):\n")
	for i := len(path) - 1; i >= 0; i-- {
		isp := path[i]
		fmt.Fprintf(w, "  %s %-24s %s\n", interval(isp, t0), isp.Str("instance"), isp.Str("key"))
	}
}

// writeReconcile renders the reconciliation rounds, one block per
// "reconcile.round" span: the drift verdicts found by detection, the
// minimal replan's pin/cone/effort numbers, and the repair outcome
// (repaired, rolled back, or converged with nothing to do).
func writeReconcile(w io.Writer, t *Trace) {
	rounds := t.Spans("reconcile.round")
	if len(rounds) == 0 {
		return
	}
	fmt.Fprintf(w, "\nreconcile:\n")
	for _, r := range rounds {
		label := fmt.Sprintf("  round %d (stack %s):", r.Int("round"), r.Str("stack"))
		if b, _ := r.Attrs["converged"].(bool); b {
			fmt.Fprintf(w, "%s converged\n", label)
			continue
		}
		outcome := "FAILED"
		if b, _ := r.Attrs["repaired"].(bool); b {
			outcome = "repaired"
		} else if b, _ := r.Attrs["rolled_back"].(bool); b {
			outcome = "ROLLED BACK"
		}
		fmt.Fprintf(w, "%s %d drift(s), delta %d — %s\n",
			label, r.Int("drifts"), r.Int("delta"), outcome)
		for _, ch := range t.ChildSpans(r.ID) {
			switch ch.Name {
			case "reconcile.detect":
				for _, ev := range t.SpanEvents(ch.ID) {
					if ev.Name != "reconcile.drift" {
						continue
					}
					fmt.Fprintf(w, "    %s: %s drift (%s)\n",
						ev.Str("instance"), ev.Str("kind"), ev.Str("detail"))
				}
			case "reconcile.plan":
				fmt.Fprintf(w, "    replan %s: %d pinned, cone %d, %d decisions, %d conflicts\n",
					strings.ToLower(ch.Str("status")), ch.Int("pinned"), ch.Int("cone"),
					ch.Int("decisions"), ch.Int("conflicts"))
			}
		}
		if e := r.Str("error"); e != "" {
			fmt.Fprintf(w, "    error: %s\n", e)
		}
	}
}

// writeMonitor summarizes monitor activity, if any was traced.
func writeMonitor(w io.Writer, t *Trace) {
	restarts := t.Events("monitor.restart")
	degraded := t.Events("monitor.degraded")
	cleared := t.Events("monitor.cleared")
	if len(restarts) == 0 && len(degraded) == 0 && len(cleared) == 0 {
		return
	}
	fmt.Fprintf(w, "\nmonitor:\n")
	for _, ev := range restarts {
		ok, _ := ev.Attrs["ok"].(bool)
		fmt.Fprintf(w, "  %s restart %s (pid %d) after %s backoff: ok=%v\n",
			stamp(ev.VTime), ev.Str("instance"), ev.Int("pid"),
			time.Duration(ev.Int("backoff")), ok)
	}
	for _, ev := range degraded {
		fmt.Fprintf(w, "  %s DEGRADED %s: %d restarts in window\n",
			stamp(ev.VTime), ev.Str("instance"), ev.Int("restarts_in_window"))
	}
	for _, ev := range cleared {
		fmt.Fprintf(w, "  %s cleared %s\n", stamp(ev.VTime), ev.Str("instance"))
	}
}

// writeHealth summarizes health-probe activity, if any was traced:
// per-round probe counts and every state transition with its exact
// virtual stamp.
func writeHealth(w io.Writer, t *Trace) {
	probes := t.Events("health.probe")
	transitions := t.Events("health.transition")
	if len(probes) == 0 && len(transitions) == 0 {
		return
	}
	fmt.Fprintf(w, "\nhealth:\n")
	failed := 0
	for _, ev := range probes {
		if ok, _ := ev.Attrs["ok"].(bool); !ok {
			failed++
		}
	}
	fmt.Fprintf(w, "  %d probe round(s), %d failed\n", len(probes), failed)
	for _, ev := range transitions {
		fmt.Fprintf(w, "  %s %s: %s -> %s (%s)\n",
			stamp(ev.VTime), ev.Str("instance"),
			ev.Str("from"), ev.Str("to"), ev.Str("why"))
	}
}

// childrenNamed returns the spans of one name parented under id, by
// virtual start.
func childrenNamed(t *Trace, id int64, name string) []*Line {
	var out []*Line
	for _, l := range t.ChildSpans(id) {
		if l.Name == name {
			out = append(out, l)
		}
	}
	return out
}

func vdur(l *Line) string { return time.Duration(l.VDurNS).String() }

func wall(l *Line) string {
	return time.Duration(l.WallNS).Round(time.Microsecond).String()
}

func offset(at *time.Time, t0 time.Time) string {
	if at == nil {
		return "+?"
	}
	return "+" + at.Sub(t0).String()
}

func interval(l *Line, t0 time.Time) string {
	return fmt.Sprintf("[%-8s %-8s]", offset(l.VStart, t0), offset(l.VEnd, t0))
}

func stamp(at *time.Time) string {
	if at == nil {
		return "?"
	}
	return at.Format("15:04:05")
}
