package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestReportSolveWorkerBreakdown pins the exact rendering of the
// portfolio solve-worker breakdown in the stage summary: the portfolio
// shape line and one line per worker — losers with the effort they had
// spent at cancellation, the winner marked.
func TestReportSolveWorkerBreakdown(t *testing.T) {
	var buf bytes.Buffer
	clock := newFakeClock()
	tr := New(&buf, clock)

	root := tr.Span("config")
	solve := root.Child("config.solve")
	solve.Event("solve.portfolio").
		Int("worker", 0).Bool("winner", false).Str("status", "UNKNOWN").
		Int("restarts", 3).Int("conflicts", 120).Int("decisions", 400).
		Int("shared_in", 5).Int("shared_out", 2).Emit()
	solve.Event("solve.portfolio").
		Int("worker", 2).Bool("winner", true).Str("status", "SAT").
		Int("restarts", 1).Int("conflicts", 80).Int("decisions", 310).
		Int("shared_in", 0).Int("shared_out", 4).Emit()
	solve.Int("portfolio_workers", 4).Int("portfolio_winner", 2).Int("canon_solves", 7).
		Wall(1500 * time.Microsecond).End()
	root.Wall(2 * time.Millisecond).End()
	if err := tr.Err(); err != nil {
		t.Fatalf("tracer error: %v", err)
	}

	trace, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	var out bytes.Buffer
	WriteReport(&out, trace)

	want := strings.Join([]string{
		"stages:",
		"  config                       2ms wall",
		"    config.solve               1.5ms",
		"      portfolio: 4 workers, winner 2 (7 canonicalization solves)",
		"        worker 0  unknown  restarts=3 conflicts=120 shared=5/2",
		"        worker 2  sat      restarts=1 conflicts=80 shared=0/4  ← winner",
		"",
	}, "\n")
	if !strings.Contains(out.String(), want) {
		t.Fatalf("report missing exact solve-worker breakdown.\nwant:\n%s\ngot:\n%s", want, out.String())
	}
}

// A solve span without portfolio events renders exactly as before —
// the breakdown is strictly additive.
func TestReportSolveNoPortfolio(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf, newFakeClock())
	root := tr.Span("config")
	root.Child("config.solve").Wall(time.Millisecond).End()
	root.Wall(2 * time.Millisecond).End()
	trace, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	var out bytes.Buffer
	WriteReport(&out, trace)
	if strings.Contains(out.String(), "portfolio") {
		t.Fatalf("unexpected portfolio section:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "    config.solve               1ms\n") {
		t.Fatalf("missing plain solve line:\n%s", out.String())
	}
}

// TestReportReconcileSection pins the exact rendering of the reconcile
// section: one line per round (drift count, replan delta, outcome), the
// detected drifts, the replan summary, a rolled-back round's error, and
// the bare converged line.
func TestReportReconcileSection(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf, newFakeClock())

	r1 := tr.Span("reconcile.round")
	det := r1.Child("reconcile.detect")
	det.Event("reconcile.drift").
		Str("instance", "app").Str("kind", "process").
		Str("detail", "recorded pid 7 not running").Emit()
	det.Event("reconcile.drift").
		Str("instance", "db").Str("kind", "config").
		Str("detail", "manifest diverged").Emit()
	det.Int("drifts", 2).End()
	r1.Child("reconcile.plan").
		Str("status", "SAT").Int("pinned", 3).Int("cone", 2).
		Int("decisions", 41).Int("conflicts", 2).End()
	r1.Child("reconcile.repair").Bool("rolled_back", false).End()
	r1.Str("stack", "web").Int("round", 1).Int("drifts", 2).Int("delta", 2).
		Bool("converged", false).Bool("repaired", true).Bool("rolled_back", false).End()

	r2 := tr.Span("reconcile.round")
	r2.Child("reconcile.plan").
		Str("status", "SAT").Int("pinned", 4).Int("cone", 1).
		Int("decisions", 9).Int("conflicts", 0).End()
	r2.Str("stack", "web").Int("round", 2).Int("drifts", 1).Int("delta", 1).
		Bool("converged", false).Bool("repaired", false).Bool("rolled_back", true).
		Str("error", "injected transient failure: start-process on m1 (appd)").End()

	r3 := tr.Span("reconcile.round")
	r3.Str("stack", "web").Int("round", 3).Int("drifts", 0).
		Bool("converged", true).End()
	if err := tr.Err(); err != nil {
		t.Fatalf("tracer error: %v", err)
	}

	trace, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	var out bytes.Buffer
	WriteReport(&out, trace)

	want := strings.Join([]string{
		"reconcile:",
		"  round 1 (stack web): 2 drift(s), delta 2 — repaired",
		"    app: process drift (recorded pid 7 not running)",
		"    db: config drift (manifest diverged)",
		"    replan sat: 3 pinned, cone 2, 41 decisions, 2 conflicts",
		"  round 2 (stack web): 1 drift(s), delta 1 — ROLLED BACK",
		"    replan sat: 4 pinned, cone 1, 9 decisions, 0 conflicts",
		"    error: injected transient failure: start-process on m1 (appd)",
		"  round 3 (stack web): converged",
		"",
	}, "\n")
	if !strings.Contains(out.String(), want) {
		t.Fatalf("report missing exact reconcile section.\nwant:\n%s\ngot:\n%s", want, out.String())
	}
}

// A trace without reconcile.round spans renders no reconcile section —
// the section is strictly additive.
func TestReportNoReconcileSection(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf, newFakeClock())
	tr.Span("config").Wall(time.Millisecond).End()
	trace, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	var out bytes.Buffer
	WriteReport(&out, trace)
	if strings.Contains(out.String(), "reconcile:") {
		t.Fatalf("unexpected reconcile section:\n%s", out.String())
	}
}
