package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestReportSolveWorkerBreakdown pins the exact rendering of the
// portfolio solve-worker breakdown in the stage summary: the portfolio
// shape line and one line per worker — losers with the effort they had
// spent at cancellation, the winner marked.
func TestReportSolveWorkerBreakdown(t *testing.T) {
	var buf bytes.Buffer
	clock := newFakeClock()
	tr := New(&buf, clock)

	root := tr.Span("config")
	solve := root.Child("config.solve")
	solve.Event("solve.portfolio").
		Int("worker", 0).Bool("winner", false).Str("status", "UNKNOWN").
		Int("restarts", 3).Int("conflicts", 120).Int("decisions", 400).
		Int("shared_in", 5).Int("shared_out", 2).Emit()
	solve.Event("solve.portfolio").
		Int("worker", 2).Bool("winner", true).Str("status", "SAT").
		Int("restarts", 1).Int("conflicts", 80).Int("decisions", 310).
		Int("shared_in", 0).Int("shared_out", 4).Emit()
	solve.Int("portfolio_workers", 4).Int("portfolio_winner", 2).Int("canon_solves", 7).
		Wall(1500 * time.Microsecond).End()
	root.Wall(2 * time.Millisecond).End()
	if err := tr.Err(); err != nil {
		t.Fatalf("tracer error: %v", err)
	}

	trace, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	var out bytes.Buffer
	WriteReport(&out, trace)

	want := strings.Join([]string{
		"stages:",
		"  config                       2ms wall",
		"    config.solve               1.5ms",
		"      portfolio: 4 workers, winner 2 (7 canonicalization solves)",
		"        worker 0  unknown  restarts=3 conflicts=120 shared=5/2",
		"        worker 2  sat      restarts=1 conflicts=80 shared=0/4  ← winner",
		"",
	}, "\n")
	if !strings.Contains(out.String(), want) {
		t.Fatalf("report missing exact solve-worker breakdown.\nwant:\n%s\ngot:\n%s", want, out.String())
	}
}

// A solve span without portfolio events renders exactly as before —
// the breakdown is strictly additive.
func TestReportSolveNoPortfolio(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf, newFakeClock())
	root := tr.Span("config")
	root.Child("config.solve").Wall(time.Millisecond).End()
	root.Wall(2 * time.Millisecond).End()
	trace, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	var out bytes.Buffer
	WriteReport(&out, trace)
	if strings.Contains(out.String(), "portfolio") {
		t.Fatalf("unexpected portfolio section:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "    config.solve               1ms\n") {
		t.Fatalf("missing plain solve line:\n%s", out.String())
	}
}
