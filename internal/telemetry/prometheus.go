package telemetry

// Prometheus text exposition (format version 0.0.4) over the metrics
// registry. Instrument names are prefixed "engage_" and sanitized
// (dots → underscores); histograms render cumulative _bucket series
// with power-of-two le bounds plus _sum and _count; the per-instance
// "health.state.<id>" gauges collapse into one engage_health_state
// family with an instance label. Families and series are emitted in
// sorted order, so the output is byte-stable for goldens.

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// healthStatePrefix is the registry-name prefix of the per-instance
// health gauges, collapsed into one labeled Prometheus family.
const healthStatePrefix = "health.state."

// WritePrometheus renders every instrument in Prometheus text
// exposition format. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	s := r.Snapshot()
	var b strings.Builder

	// Families keyed by exposition name, each a sorted set of lines.
	type family struct {
		typ   string
		lines []string
	}
	fams := make(map[string]*family)
	add := func(name, typ, line string) {
		f, ok := fams[name]
		if !ok {
			f = &family{typ: typ}
			fams[name] = f
		}
		f.lines = append(f.lines, line)
	}

	// Iterate in sorted name order: a multi-line family (health.state
	// gauges labelled by instance) must emit its lines deterministically.
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name)
		add(pn, "counter", fmt.Sprintf("%s %d", pn, s.Counters[name]))
	}
	for _, name := range sortedKeys(s.Gauges) {
		v := s.Gauges[name]
		if inst, ok := strings.CutPrefix(name, healthStatePrefix); ok {
			pn := promName("health.state")
			add(pn, "gauge", fmt.Sprintf(`%s{instance="%s"} %d`, pn, escapeLabel(inst), v))
			continue
		}
		pn := promName(name)
		add(pn, "gauge", fmt.Sprintf("%s %d", pn, v))
	}
	for _, name := range sortedKeys(s.Histograms) {
		hs := s.Histograms[name]
		pn := promName(name)
		f := &family{typ: "histogram"}
		fams[pn] = f
		// Cumulative buckets: registry bucket i counts values v with
		// bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i); since values are
		// integers the inclusive upper bound is 2^i - 1. Bucket 0 is
		// v <= 0.
		labels := make([]string, 0, len(hs.Buckets))
		for l := range hs.Buckets { //engage:maporder — collected then sorted below
			labels = append(labels, l)
		}
		sort.Slice(labels, func(i, j int) bool { return bucketExp(labels[i]) < bucketExp(labels[j]) })
		cum := int64(0)
		for _, l := range labels {
			cum += hs.Buckets[l]
			f.lines = append(f.lines, fmt.Sprintf(`%s_bucket{le="%s"} %d`, pn, bucketBound(l), cum))
		}
		f.lines = append(f.lines,
			fmt.Sprintf(`%s_bucket{le="+Inf"} %d`, pn, hs.Count),
			fmt.Sprintf("%s_sum %d", pn, hs.Sum),
			fmt.Sprintf("%s_count %d", pn, hs.Count))
	}

	names := make([]string, 0, len(fams))
	for name := range fams { //engage:maporder — collected then sorted below
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, f.typ)
		if f.typ != "histogram" {
			sort.Strings(f.lines)
		}
		for _, line := range f.lines {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// promName maps a registry instrument name to a Prometheus metric
// name: "engage_" prefix, every character outside [a-zA-Z0-9_:]
// replaced with '_'.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("engage_")
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// bucketExp orders snapshot bucket labels: "<=0" is exponent 0, "<2^i"
// is exponent i.
func bucketExp(label string) int {
	if label == "<=0" {
		return 0
	}
	var i int
	fmt.Sscanf(label, "<2^%d", &i)
	return i
}

// bucketBound renders a snapshot bucket label as its inclusive upper
// bound: "<=0" → "0", "<2^i" → 2^i − 1.
func bucketBound(label string) string {
	i := bucketExp(label)
	if i == 0 {
		return "0"
	}
	if i >= 63 {
		// Bucket 63 holds everything with the top bit set; its upper
		// bound is the int64 range itself.
		return "9223372036854775807"
	}
	return fmt.Sprintf("%d", (int64(1)<<uint(i))-1)
}

// escapeLabel escapes a Prometheus label value.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}
