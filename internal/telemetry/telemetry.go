// Package telemetry is Engage's dependency-free tracing and metrics
// subsystem. Every stage of the pipeline — RDL resolve, typechecking,
// hypergraph generation, constraint encoding, SAT solving, deployment
// actions with their retries and rollbacks, fault injections, and
// monitor restarts — reports through it, so a single JSON-lines trace
// answers "where did this deployment spend its time, and which injected
// fault triggered which retry?".
//
// Two kinds of record are emitted:
//
//   - Spans are intervals with a name, a parent, a virtual-time
//     interval stamped from the simulated clock (machine.Clock
//     satisfies the Clock interface), and the wall-clock duration
//     recorded alongside — virtual time is authoritative for deployment
//     stages, wall time for real-perf stages like the SAT solve.
//   - Events are points in virtual time attached to a span (or free-
//     standing), used for retries, backoffs, fault injections, monitor
//     restarts, and wave/shard progress.
//
// Disabled telemetry is free: every method is nil-safe, so a nil
// *Tracer (and the nil *Span / *Event values it hands out) turns the
// whole instrumentation surface into pointer checks with zero
// allocations — the deploy hot path pays nothing when tracing is off
// (see the overhead guard in internal/deploy).
package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Clock yields virtual timestamps. *machine.Clock satisfies it; nil
// clocks fall back to the wall clock.
type Clock interface {
	Now() time.Time
}

// Tracer emits spans and events as JSON lines. The zero value is not
// usable; construct with New. A nil *Tracer is a valid disabled tracer:
// every method no-ops without allocating.
type Tracer struct {
	mu     sync.Mutex
	w      io.Writer
	clock  Clock
	nextID int64
	err    error // first write/encode error, sticky
}

// New returns a tracer writing JSON lines to w, stamping virtual times
// from clock (nil = wall clock). Emission is serialized internally, so
// one tracer may be shared by concurrent deployment workers.
func New(w io.Writer, clock Clock) *Tracer {
	return &Tracer{w: w, clock: clock}
}

// Err returns the first emission error, if any (short writes, closed
// files). Tracing continues best-effort after an error.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

func (t *Tracer) now() time.Time {
	if t.clock != nil {
		return t.clock.Now()
	}
	// Round(0) strips the monotonic reading: durations must be
	// recomputable from the serialized wall timestamps, and monotonic
	// deltas need not agree with wall-clock arithmetic.
	return time.Now().Round(0)
}

func (t *Tracer) id() int64 {
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	return id
}

// emit marshals one line and writes it; errors are sticky.
func (t *Tracer) emit(l *Line) {
	data, err := json.Marshal(l)
	t.mu.Lock()
	defer t.mu.Unlock()
	if err != nil {
		if t.err == nil {
			t.err = err
		}
		return
	}
	if _, err := t.w.Write(append(data, '\n')); err != nil && t.err == nil {
		t.err = err
	}
}

// Span is one traced interval under construction. Attribute setters
// chain; End emits the span as a single JSON line. All methods are
// nil-safe.
type Span struct {
	t      *Tracer
	id     int64
	parent int64
	name   string
	vstart time.Time
	vend   time.Time // zero until End or At
	wstart time.Time
	wall   time.Duration // explicit override; 0 = measure at End
	attrs  map[string]any
}

// Span starts a root span. Virtual start is sampled from the tracer's
// clock now; override with At for post-hoc emission.
func (t *Tracer) Span(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, id: t.id(), name: name, vstart: t.now(), wstart: time.Now()}
}

// Child starts a span parented under s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	sp := s.t.Span(name)
	sp.parent = s.id
	return sp
}

// ID returns the span's identifier (0 for a nil span).
func (s *Span) ID() int64 {
	if s == nil {
		return 0
	}
	return s.id
}

func (s *Span) attr(k string, v any) *Span {
	if s == nil {
		return nil
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[k] = v
	return s
}

// Str sets a string attribute.
func (s *Span) Str(k, v string) *Span {
	if s == nil {
		return nil
	}
	return s.attr(k, v)
}

// Int sets an integer attribute.
func (s *Span) Int(k string, v int64) *Span {
	if s == nil {
		return nil
	}
	return s.attr(k, v)
}

// Dur sets a duration attribute in nanoseconds.
func (s *Span) Dur(k string, v time.Duration) *Span {
	if s == nil {
		return nil
	}
	return s.attr(k, int64(v))
}

// Bool sets a boolean attribute.
func (s *Span) Bool(k string, v bool) *Span {
	if s == nil {
		return nil
	}
	return s.attr(k, v)
}

// At overrides the span's virtual interval; deployment emits action
// spans after critical-path accounting has fixed their absolute virtual
// times.
func (s *Span) At(vstart, vend time.Time) *Span {
	if s == nil {
		return nil
	}
	s.vstart, s.vend = vstart, vend
	return s
}

// Wall overrides the measured wall duration (for post-hoc emission).
func (s *Span) Wall(d time.Duration) *Span {
	if s == nil {
		return nil
	}
	s.wall = d
	return s
}

// End closes the span and emits it. Virtual end defaults to the clock
// now; wall duration to the elapsed real time since the span started.
func (s *Span) End() {
	if s == nil {
		return
	}
	vstart := s.vstart.Round(0)
	vend := s.vend.Round(0)
	if s.vend.IsZero() {
		vend = s.t.now()
	}
	wall := s.wall
	if wall == 0 {
		wall = time.Since(s.wstart)
	}
	s.t.emit(&Line{
		Kind:   KindSpan,
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		VStart: &vstart,
		VEnd:   &vend,
		VDurNS: vend.Sub(vstart).Nanoseconds(),
		WallNS: wall.Nanoseconds(),
		Attrs:  s.attrs,
	})
}

// Event is one point-in-virtual-time record under construction.
// Attribute setters chain; Emit writes it. All methods are nil-safe.
type Event struct {
	t     *Tracer
	span  int64
	name  string
	vtime time.Time
	attrs map[string]any
}

// Event starts a free-standing event stamped at the clock now.
func (t *Tracer) Event(name string) *Event {
	if t == nil {
		return nil
	}
	return &Event{t: t, name: name, vtime: t.now()}
}

// Event starts an event attached to the span.
func (s *Span) Event(name string) *Event {
	if s == nil {
		return nil
	}
	ev := s.t.Event(name)
	ev.span = s.id
	return ev
}

func (e *Event) attr(k string, v any) *Event {
	if e == nil {
		return nil
	}
	if e.attrs == nil {
		e.attrs = make(map[string]any, 4)
	}
	e.attrs[k] = v
	return e
}

// Str sets a string attribute.
func (e *Event) Str(k, v string) *Event {
	if e == nil {
		return nil
	}
	return e.attr(k, v)
}

// Int sets an integer attribute.
func (e *Event) Int(k string, v int64) *Event {
	if e == nil {
		return nil
	}
	return e.attr(k, v)
}

// Dur sets a duration attribute in nanoseconds.
func (e *Event) Dur(k string, v time.Duration) *Event {
	if e == nil {
		return nil
	}
	return e.attr(k, int64(v))
}

// Bool sets a boolean attribute.
func (e *Event) Bool(k string, v bool) *Event {
	if e == nil {
		return nil
	}
	return e.attr(k, v)
}

// At overrides the event's virtual timestamp.
func (e *Event) At(vtime time.Time) *Event {
	if e == nil {
		return nil
	}
	e.vtime = vtime
	return e
}

// Emit writes the event.
func (e *Event) Emit() {
	if e == nil {
		return
	}
	e.t.emit(&Line{
		Kind:  KindEvent,
		ID:    e.t.id(),
		Span:  e.span,
		Name:  e.name,
		VTime: &e.vtime,
		Attrs: e.attrs,
	})
}
