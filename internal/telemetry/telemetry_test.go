package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

type fakeClock struct{ t time.Time }

func (c *fakeClock) Now() time.Time          { return c.t }
func (c *fakeClock) Advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Date(2012, 6, 11, 0, 0, 0, 0, time.UTC)} }

func TestSpanEventRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	clock := newFakeClock()
	tr := New(&buf, clock)

	root := tr.Span("deploy").Str("plan", "p1").Int("instances", 3)
	clock.Advance(10 * time.Second)
	child := root.Child("action").Str("instance", "web#0")
	child.Event("retry").Int("attempt", 1).Dur("backoff", 2*time.Second).Emit()
	clock.Advance(5 * time.Second)
	child.End()
	clock.Advance(time.Second)
	root.Bool("ok", true).End()
	tr.Event("fault.inject").Str("site", "host1").Emit()

	if err := tr.Err(); err != nil {
		t.Fatalf("tracer error: %v", err)
	}
	trace, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if got := len(trace.Lines); got != 4 {
		t.Fatalf("got %d lines, want 4", got)
	}

	roots := trace.Spans("deploy")
	if len(roots) != 1 {
		t.Fatalf("got %d deploy spans, want 1", len(roots))
	}
	r := roots[0]
	if r.Parent != 0 || r.Str("plan") != "p1" || r.Int("instances") != 3 {
		t.Errorf("root span wrong: %+v", r)
	}
	if r.VDurNS != (16 * time.Second).Nanoseconds() {
		t.Errorf("root vdur = %d, want 16s", r.VDurNS)
	}

	kids := trace.ChildSpans(r.ID)
	if len(kids) != 1 || kids[0].Name != "action" {
		t.Fatalf("children of root = %+v", kids)
	}
	action := kids[0]
	if action.VStart.Sub(*r.VStart) != 10*time.Second {
		t.Errorf("action vstart offset = %v, want 10s", action.VStart.Sub(*r.VStart))
	}
	if action.VDurNS != (5 * time.Second).Nanoseconds() {
		t.Errorf("action vdur = %d, want 5s", action.VDurNS)
	}

	evs := trace.SpanEvents(action.ID)
	if len(evs) != 1 || evs[0].Name != "retry" {
		t.Fatalf("action events = %+v", evs)
	}
	if evs[0].Int("attempt") != 1 || evs[0].Int("backoff") != (2*time.Second).Nanoseconds() {
		t.Errorf("retry attrs wrong: %+v", evs[0].Attrs)
	}

	free := trace.Events("fault.inject")
	if len(free) != 1 || free[0].Span != 0 || free[0].Str("site") != "host1" {
		t.Errorf("free event wrong: %+v", free)
	}
}

func TestSpanAtOverride(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf, newFakeClock())
	v0 := time.Date(2012, 6, 11, 1, 0, 0, 0, time.UTC)
	v1 := v0.Add(42 * time.Second)
	tr.Span("install").At(v0, v1).Wall(3 * time.Millisecond).End()

	trace, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	sp := trace.Spans("install")[0]
	if !sp.VStart.Equal(v0) || !sp.VEnd.Equal(v1) {
		t.Errorf("interval = [%v, %v], want [%v, %v]", sp.VStart, sp.VEnd, v0, v1)
	}
	if sp.VDurNS != (42 * time.Second).Nanoseconds() {
		t.Errorf("vdur = %d, want 42s", sp.VDurNS)
	}
	if sp.WallNS != (3 * time.Millisecond).Nanoseconds() {
		t.Errorf("wall = %d, want 3ms", sp.WallNS)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		line string
		want string
	}{
		{"bad kind", `{"kind":"zork","id":1,"name":"x","vtime":"2012-06-11T00:00:00Z"}`, "unknown kind"},
		{"span no interval", `{"kind":"span","id":1,"name":"x"}`, "missing vstart/vend"},
		{"span bad dur", `{"kind":"span","id":1,"name":"x","vstart":"2012-06-11T00:00:00Z","vend":"2012-06-11T00:00:01Z","vdur_ns":5}`, "disagrees"},
		{"event no vtime", `{"kind":"event","id":1,"name":"x"}`, "missing vtime"},
		{"zero id", `{"kind":"event","id":0,"name":"x","vtime":"2012-06-11T00:00:00Z"}`, "positive"},
		{"no name", `{"kind":"event","id":1,"vtime":"2012-06-11T00:00:00Z"}`, "no name"},
		{"nested attr", `{"kind":"event","id":1,"name":"x","vtime":"2012-06-11T00:00:00Z","attrs":{"a":{"b":1}}}`, "not a scalar"},
	}
	for _, tc := range cases {
		_, err := ReadTrace(strings.NewReader(tc.line + "\n"))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	if err := tr.Err(); err != nil {
		t.Fatalf("nil tracer Err = %v", err)
	}
	sp := tr.Span("x")
	if sp != nil {
		t.Fatal("nil tracer returned non-nil span")
	}
	// Every chained call must tolerate the nil values.
	sp.Child("y").Str("a", "b").Int("n", 1).Dur("d", time.Second).Bool("b", true).
		At(time.Time{}, time.Time{}).Wall(0).End()
	sp.Event("e").Str("a", "b").Int("n", 1).Dur("d", time.Second).Bool("b", true).
		At(time.Time{}).Emit()
	tr.Event("free").Emit()
	if sp.ID() != 0 {
		t.Fatal("nil span has nonzero ID")
	}
}

func TestNilTracerZeroAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Span("deploy.action").Str("instance", "web#0").Int("attempt", 2)
		sp.Event("retry").Dur("backoff", time.Second).Emit()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil tracer allocates %v per op, want 0", allocs)
	}
	var reg *Registry
	allocs = testing.AllocsPerRun(1000, func() {
		reg.Counter("deploy.retries").Inc()
		reg.Gauge("deploy.inflight").Set(3)
		reg.Histogram("deploy.backoff_ns").Observe(1e9)
	})
	if allocs != 0 {
		t.Fatalf("nil registry allocates %v per op, want 0", allocs)
	}
}

func TestConcurrentEmission(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf, newFakeClock())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sp := tr.Span("worker")
				sp.Event("tick").Emit()
				sp.End()
			}
		}()
	}
	wg.Wait()
	if err := tr.Err(); err != nil {
		t.Fatalf("tracer error: %v", err)
	}
	trace, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace after concurrent emission: %v", err)
	}
	if got := len(trace.Lines); got != 800 {
		t.Fatalf("got %d lines, want 800", got)
	}
	seen := make(map[int64]bool)
	for _, l := range trace.Lines {
		if seen[l.ID] {
			t.Fatalf("duplicate record id %d", l.ID)
		}
		seen[l.ID] = true
	}
}

func TestRegistrySnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sat.conflicts").Add(7)
	reg.Counter("sat.conflicts").Add(3)
	reg.Gauge("fleet.instances").Set(254)
	h := reg.Histogram("deploy.action_ns")
	h.Observe(0)
	h.Observe(1)
	h.Observe(int64(time.Second))
	h.Observe(int64(2 * time.Second))

	s := reg.Snapshot()
	if s.Counters["sat.conflicts"] != 10 {
		t.Errorf("counter = %d, want 10", s.Counters["sat.conflicts"])
	}
	if s.Gauges["fleet.instances"] != 254 {
		t.Errorf("gauge = %d, want 254", s.Gauges["fleet.instances"])
	}
	hs := s.Histograms["deploy.action_ns"]
	if hs.Count != 4 || hs.Sum != 1+int64(3*time.Second) {
		t.Errorf("histogram count/sum = %d/%d", hs.Count, hs.Sum)
	}
	var total int64
	for _, n := range hs.Buckets {
		total += n
	}
	if total != 4 {
		t.Errorf("bucket counts sum to %d, want 4", total)
	}
	if hs.Buckets["<=0"] != 1 {
		t.Errorf("zero bucket = %d, want 1", hs.Buckets["<=0"])
	}

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.Contains(buf.String(), "sat.conflicts") {
		t.Errorf("JSON snapshot missing counter: %s", buf.String())
	}

	want := []string{"deploy.action_ns", "fleet.instances", "sat.conflicts"}
	got := reg.Names()
	if len(got) != len(want) {
		t.Fatalf("Names = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names = %v, want %v", got, want)
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				reg.Counter("c").Inc()
				reg.Histogram("h").Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("c").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := reg.Histogram("h").Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}
