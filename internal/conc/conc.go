// Package conc holds the one concurrency primitive the parallel
// pipeline stages share: a bounded worker pool over an index space.
// Hypergraph generation, constraint emission, spec build, port
// propagation, and deploy-plan construction all fan out the same way —
// n independent items, w workers pulling the next index from an atomic
// counter — so the pool lives here once instead of as per-package
// copies.
package conc

import (
	"sync"
	"sync/atomic"
)

// ParallelFor invokes fn(i) for every i in [0, n), spread over at most
// workers goroutines pulling indices from a shared atomic counter.
// workers ≤ 1 (or n ≤ 1) degenerates to a plain sequential loop on the
// calling goroutine — no goroutines, no synchronization. ParallelFor
// returns when every call has returned. fn must be safe to call
// concurrently for distinct indices.
func ParallelFor(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
