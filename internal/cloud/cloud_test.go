package cloud

import (
	"testing"
	"time"

	"engage/internal/machine"
)

func TestProvisionBasics(t *testing.T) {
	w := machine.NewWorld()
	p := NewRackspaceSim(w)
	t0 := w.Clock.Now()
	m, err := p.Provision("web1", "ubuntu-12.04")
	if err != nil {
		t.Fatal(err)
	}
	if w.Clock.Since(t0) != 45*time.Second {
		t.Errorf("provision latency = %v", w.Clock.Since(t0))
	}
	if m.OS != "ubuntu-12.04" || m.IP == "" {
		t.Errorf("node metadata wrong: %+v", m)
	}
	if _, ok := w.Machine("web1"); !ok {
		t.Error("machine should join the world")
	}
	info, err := p.Describe("web1")
	if err != nil || info.Hostname != "web1" || info.OS != "ubuntu-12.04" || info.Arch != "x86_64" {
		t.Errorf("Describe = %+v, %v", info, err)
	}
	if nodes := p.Nodes(); len(nodes) != 1 || nodes[0] != "web1" {
		t.Errorf("Nodes = %v", nodes)
	}
}

func TestProvisionDuplicate(t *testing.T) {
	w := machine.NewWorld()
	p := NewAWSSim(w)
	if _, err := p.Provision("n", "ubuntu-12.04"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Provision("n", "ubuntu-12.04"); err == nil {
		t.Error("duplicate provision should fail")
	}
}

func TestCapacity(t *testing.T) {
	w := machine.NewWorld()
	p := &Provider{Name: "tiny", World: w, Capacity: 2}
	if _, err := p.Provision("a", "os"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Provision("b", "os"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Provision("c", "os"); err == nil {
		t.Error("capacity should be enforced")
	}
	if err := p.Terminate("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Provision("c", "os"); err != nil {
		t.Errorf("terminate should free capacity: %v", err)
	}
}

func TestTerminate(t *testing.T) {
	w := machine.NewWorld()
	p := NewAWSSim(w)
	if _, err := p.Provision("n", "os"); err != nil {
		t.Fatal(err)
	}
	if err := p.Terminate("n"); err != nil {
		t.Fatal(err)
	}
	if _, ok := w.Machine("n"); ok {
		t.Error("terminated machine should leave the world")
	}
	if err := p.Terminate("n"); err == nil {
		t.Error("double terminate should error")
	}
	if _, err := p.Describe("n"); err == nil {
		t.Error("describe of terminated node should error")
	}
}
