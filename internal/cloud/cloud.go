// Package cloud implements simulated cloud providers in the shape of the
// paper's libcloud integration with Rackspace and Amazon Web Services:
// provisioning a node yields a machine with hostname, IP, and OS
// metadata that Engage merges into the installation specification before
// configuration. Provisioning latency advances the simulated clock, and
// providers enforce a capacity limit.
package cloud

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"engage/internal/machine"
)

// Provider is a simulated cloud provider.
type Provider struct {
	Name             string
	World            *machine.World
	ProvisionLatency time.Duration
	Capacity         int // 0 = unlimited

	mu    sync.Mutex
	seq   int
	nodes map[string]*machine.Machine
}

// NewRackspaceSim returns a provider shaped like the paper's Rackspace
// integration: moderate capacity, tens of seconds of provisioning time.
func NewRackspaceSim(w *machine.World) *Provider {
	return &Provider{Name: "rackspace-sim", World: w, ProvisionLatency: 45 * time.Second, Capacity: 64,
		nodes: make(map[string]*machine.Machine)}
}

// NewAWSSim returns a provider shaped like the paper's AWS integration.
func NewAWSSim(w *machine.World) *Provider {
	return &Provider{Name: "aws-sim", World: w, ProvisionLatency: 60 * time.Second, Capacity: 256,
		nodes: make(map[string]*machine.Machine)}
}

// Provision creates a node running the given OS, advancing the clock by
// the provisioning latency, and returns its machine.
func (p *Provider) Provision(name, os string) (*machine.Machine, error) {
	p.mu.Lock()
	if p.nodes == nil {
		p.nodes = make(map[string]*machine.Machine)
	}
	if p.Capacity > 0 && len(p.nodes) >= p.Capacity {
		p.mu.Unlock()
		return nil, fmt.Errorf("cloud %s: capacity %d exhausted", p.Name, p.Capacity)
	}
	if _, dup := p.nodes[name]; dup {
		p.mu.Unlock()
		return nil, fmt.Errorf("cloud %s: node %q already provisioned", p.Name, name)
	}
	p.seq++
	p.mu.Unlock()

	if inj := p.World.Injector(); inj != nil {
		if err := inj.Inject(machine.Op{Kind: machine.OpProvision, Machine: name, Name: p.Name}); err != nil {
			return nil, fmt.Errorf("cloud %s: provision %q: %w", p.Name, name, err)
		}
	}
	p.World.Clock.Advance(p.ProvisionLatency)
	m, err := p.World.AddMachine(name, os)
	if err != nil {
		return nil, fmt.Errorf("cloud %s: %v", p.Name, err)
	}

	p.mu.Lock()
	p.nodes[name] = m
	p.mu.Unlock()
	return m, nil
}

// Terminate destroys a node.
func (p *Provider) Terminate(name string) error {
	p.mu.Lock()
	_, ok := p.nodes[name]
	delete(p.nodes, name)
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("cloud %s: no node %q", p.Name, name)
	}
	p.World.Remove(name)
	return nil
}

// Nodes lists provisioned node names, sorted.
func (p *Provider) Nodes() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.nodes))
	for n := range p.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NodeInfo is the host metadata a provider reports for a provisioned
// node; Engage merges it into the installation specification (§5.2,
// Provisioning).
type NodeInfo struct {
	Hostname string
	IP       string
	OS       string
	Arch     string
}

// Describe returns metadata for a node.
func (p *Provider) Describe(name string) (NodeInfo, error) {
	p.mu.Lock()
	m, ok := p.nodes[name]
	p.mu.Unlock()
	if !ok {
		return NodeInfo{}, fmt.Errorf("cloud %s: no node %q", p.Name, name)
	}
	return NodeInfo{Hostname: m.Hostname, IP: m.IP, OS: m.OS, Arch: m.Arch}, nil
}
