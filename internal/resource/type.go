package resource

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"engage/internal/version"
)

// Key is the globally unique identifier of a resource type: typically
// the component name plus its version (e.g., "Tomcat 6.0.18"). Abstract
// resources often have no version ("Server", "Java").
type Key struct {
	Name    string
	Version string // canonical version string; empty for unversioned types
}

// MakeKey builds a key from a name and optional version string.
func MakeKey(name, ver string) Key { return Key{Name: name, Version: ver} }

// ParseKey parses "Name" or "Name Version" where Version is the last
// space-separated token iff it parses as a version.
func ParseKey(s string) Key {
	s = strings.TrimSpace(s)
	i := strings.LastIndexByte(s, ' ')
	if i < 0 {
		return Key{Name: s}
	}
	tail := s[i+1:]
	if _, err := version.Parse(tail); err == nil {
		// Keep the version text verbatim: canonicalizing would turn
		// "Ubuntu 12.04" into "Ubuntu 12.4" and break key identity.
		return Key{Name: strings.TrimSpace(s[:i]), Version: tail}
	}
	return Key{Name: s}
}

// String renders the key as "Name Version".
func (k Key) String() string {
	if k.Version == "" {
		return k.Name
	}
	return k.Name + " " + k.Version
}

// IsZero reports whether the key is the zero key.
func (k Key) IsZero() bool { return k.Name == "" && k.Version == "" }

// Ver parses the key's version; ok is false for unversioned keys.
func (k Key) Ver() (version.Version, bool) {
	if k.Version == "" {
		return version.Version{}, false
	}
	v, err := version.Parse(k.Version)
	if err != nil {
		return version.Version{}, false
	}
	return v, true
}

// Port is a named, typed port (§3.1). Binding records whether the port
// is static (value fixed at instantiation time) or dynamic (value fixed
// at installation time); see §3.4. Only config and output ports may be
// static.
type Port struct {
	Name   string
	Type   PortType
	Def    Expr // value definition; nil for input ports
	Static bool
	// Origin is the source position of the declaring RDL port clause
	// ("file:line:col"); empty for programmatically built types.
	// Diagnostics (internal/lint) point here.
	Origin string
}

// Dependency is an inside, environment, or peer dependency (§3.1),
// extended with the §3.4 sugar: Alternatives is a disjunction of target
// keys (a singleton for a plain dependency), any of which may be
// abstract (resolved to its concrete frontier during hypergraph
// generation). PortMap maps output ports of the dependee to input ports
// of this resource. ReversePortMap maps static output ports of this
// resource to input ports of the dependee (§3.4 extension; used for the
// OpenMRS→Tomcat configuration-file flow).
type Dependency struct {
	Alternatives   []Key
	PortMap        map[string]string // dependee output -> this input
	ReversePortMap map[string]string // this static output -> dependee input
}

// Single builds a plain (non-disjunctive) dependency.
func Single(k Key, portMap map[string]string) Dependency {
	return Dependency{Alternatives: []Key{k}, PortMap: portMap}
}

// OneOf builds a disjunctive dependency. The well-formedness rules
// require all disjuncts to share an identical port-map range, which is
// why a single PortMap suffices.
func OneOf(keys []Key, portMap map[string]string) Dependency {
	return Dependency{Alternatives: keys, PortMap: portMap}
}

// String renders the dependency target list.
func (d Dependency) String() string {
	if len(d.Alternatives) == 1 {
		return d.Alternatives[0].String()
	}
	parts := make([]string, len(d.Alternatives))
	for i, k := range d.Alternatives {
		parts[i] = k.String()
	}
	return "one_of(" + strings.Join(parts, ", ") + ")"
}

// DependencyClass distinguishes the three dependency relations.
type DependencyClass int

// Dependency classes (§3.1).
const (
	DepInside DependencyClass = iota
	DepEnv
	DepPeer
)

func (c DependencyClass) String() string {
	switch c {
	case DepInside:
		return "inside"
	case DepEnv:
		return "environment"
	case DepPeer:
		return "peer"
	default:
		return "dep?"
	}
}

// DriverGuard is one basic-state predicate of a declarative driver
// transition: ↑state (Up) or ↓state (!Up).
type DriverGuard struct {
	Up    bool
	State string
}

// DriverTransition is one guarded transition of a declarative driver.
// Action names are resolved against the deployment engine's action
// registry when the driver is compiled.
type DriverTransition struct {
	Name   string
	From   string
	To     string
	Guards []DriverGuard
	Action string // "" = bookkeeping-only transition
}

// DriverSpec is the declarative form of a resource driver (§5.1): the
// state machine is data in the resource definition language; the
// actions are named and implemented in the host language. Keeping this
// in the resource package (pure data, no function values) lets the RDL
// front end populate it without depending on the runtime.
type DriverSpec struct {
	States      []string
	Transitions []DriverTransition
}

// Probe kinds a health block may declare. "check" is the synthetic
// probe: it consults the fault plan's sickness rules, so chaos soaks
// can make a running daemon report unhealthy.
const (
	ProbePortOpen     = "port-open"
	ProbeProcAlive    = "proc-alive"
	ProbeConfigDigest = "config-digest"
	ProbeCheck        = "check"
)

// HealthSpec is the declarative form of a resource's health block:
// which probes to run against a deployed instance, how often (virtual
// time), and how many consecutive results flip the instance's health
// state. Like DriverSpec it is pure data, populated by the RDL front
// end and interpreted by internal/health.
type HealthSpec struct {
	// Probes lists probe kinds (Probe* constants), in declaration order.
	Probes []string
	// Interval is the virtual-time probe period.
	Interval time.Duration
	// Timeout is the virtual-time cost charged to a failed probe round.
	Timeout time.Duration
	// FailureThreshold is how many consecutive failed rounds take a
	// Suspect instance to Unhealthy (and bound detection latency at
	// FailureThreshold × Interval).
	FailureThreshold int
	// SuccessThreshold is how many consecutive passing rounds take a
	// Recovering instance back to Healthy.
	SuccessThreshold int
	// Origin is the source position of the declaring RDL health clause
	// ("file:line:col"); empty for programmatically built types.
	Origin string
}

// Type is a resource type: the formal model
// R = (key, InP, ConfP, OutP, Inside, Env, Peer) of §3.1, extended with
// abstractness and inheritance (§3.2).
type Type struct {
	Key      Key
	Abstract bool
	Extends  *Key // parent resource type, or nil

	Config []Port
	Input  []Port
	Output []Port

	Inside *Dependency // nil for machines
	Env    []Dependency
	Peer   []Dependency

	// Driver is the declarative driver state machine, if the resource
	// declares one; a child type's driver overrides the parent's.
	Driver *DriverSpec

	// Health is the declarative probe specification, if the resource
	// declares one; a child type's health block overrides the parent's.
	Health *HealthSpec

	// Doc is the doc comment from the RDL source, if any.
	Doc string

	// Origin is the source position of the RDL declaration
	// ("file:line:col"); empty for programmatically built types.
	// Diagnostics (internal/lint) point here.
	Origin string
}

// IsMachine reports whether this type represents a physical or virtual
// machine: a resource with no inside dependency (§3.1).
func (t *Type) IsMachine() bool { return t.Inside == nil }

// FindPort looks up a port by section and name.
func (t *Type) FindPort(sec Section, name string) (Port, bool) {
	var ports []Port
	switch sec {
	case SecInput:
		ports = t.Input
	case SecConfig:
		ports = t.Config
	case SecOutput:
		ports = t.Output
	}
	for _, p := range ports {
		if p.Name == name {
			return p, true
		}
	}
	return Port{}, false
}

// Deps iterates all dependencies with their class: the inside dependency
// (if any) first, then environment, then peer.
func (t *Type) Deps() []ClassedDep {
	var out []ClassedDep
	if t.Inside != nil {
		out = append(out, ClassedDep{Class: DepInside, Dep: *t.Inside})
	}
	for _, d := range t.Env {
		out = append(out, ClassedDep{Class: DepEnv, Dep: d})
	}
	for _, d := range t.Peer {
		out = append(out, ClassedDep{Class: DepPeer, Dep: d})
	}
	return out
}

// ClassedDep pairs a dependency with its class.
type ClassedDep struct {
	Class DependencyClass
	Dep   Dependency
}

// Registry holds a set of resource types indexed by key, the subclassing
// tree, and supports inheritance flattening and concrete-frontier
// computation (§4's abstract-dependency expansion).
type Registry struct {
	types    map[Key]*Type
	children map[Key][]Key
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		types:    make(map[Key]*Type),
		children: make(map[Key][]Key),
	}
}

// Add registers a resource type. The type's inherited fields are
// flattened immediately: ports and dependencies of the parent are
// replicated into the child unless the child overrides the port by name
// (per §3.2 "fields from a super-resource type are implicitly replicated
// in the sub-resource type, or overridden"). The parent must already be
// registered.
func (r *Registry) Add(t *Type) error {
	if t.Key.IsZero() {
		return fmt.Errorf("resource type with empty key")
	}
	if _, dup := r.types[t.Key]; dup {
		return fmt.Errorf("duplicate resource type %q", t.Key)
	}
	if t.Extends != nil {
		parent, ok := r.types[*t.Extends]
		if !ok {
			return fmt.Errorf("resource type %q extends unknown type %q", t.Key, *t.Extends)
		}
		flattenInheritance(t, parent)
		r.children[parent.Key] = append(r.children[parent.Key], t.Key)
	}
	r.types[t.Key] = t
	return nil
}

// flattenInheritance copies parent ports and dependencies into child,
// honoring child overrides by port name. The child's inside dependency
// (if present) overrides the parent's entirely; environment and peer
// dependencies accumulate (§3.2: sub-resource types "add additional
// environment and peer dependencies").
func flattenInheritance(child, parent *Type) {
	child.Config = mergePorts(parent.Config, child.Config)
	child.Input = mergePorts(parent.Input, child.Input)
	child.Output = mergePorts(parent.Output, child.Output)
	if child.Inside == nil && parent.Inside != nil {
		d := *parent.Inside
		child.Inside = &d
	}
	child.Env = append(cloneDeps(parent.Env), child.Env...)
	child.Peer = append(cloneDeps(parent.Peer), child.Peer...)
	if child.Driver == nil && parent.Driver != nil {
		d := *parent.Driver
		child.Driver = &d
	}
	if child.Health == nil && parent.Health != nil {
		h := *parent.Health
		child.Health = &h
	}
}

func mergePorts(parent, child []Port) []Port {
	out := make([]Port, 0, len(parent)+len(child))
	overridden := make(map[string]bool, len(child))
	for _, p := range child {
		overridden[p.Name] = true
	}
	for _, p := range parent {
		if !overridden[p.Name] {
			out = append(out, p)
		}
	}
	return append(out, child...)
}

func cloneDeps(deps []Dependency) []Dependency {
	out := make([]Dependency, len(deps))
	copy(out, deps)
	return out
}

// Lookup returns the type for a key.
func (r *Registry) Lookup(k Key) (*Type, bool) {
	t, ok := r.types[k]
	return t, ok
}

// MustLookup returns the type for a key or panics; for library code
// operating on keys already validated by the type checker.
func (r *Registry) MustLookup(k Key) *Type {
	t, ok := r.types[k]
	if !ok {
		panic(fmt.Sprintf("resource: unknown key %q", k))
	}
	return t
}

// Children returns the direct subtypes of a key.
func (r *Registry) Children(k Key) []Key {
	out := make([]Key, len(r.children[k]))
	copy(out, r.children[k])
	return out
}

// Keys returns all registered keys in deterministic order.
func (r *Registry) Keys() []Key {
	out := make([]Key, 0, len(r.types))
	for k := range r.types {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Version < out[j].Version
	})
	return out
}

// Len reports the number of registered types.
func (r *Registry) Len() int { return len(r.types) }

// Frontier computes the concrete frontier of a key (§4): traversing the
// subclassing tree from k, stopping at each concrete type encountered.
// If k itself is concrete, the frontier is {k}. An error is returned if
// some leaf of the tree is abstract (the paper's "stop with an error"
// case) or if the key is unknown.
func (r *Registry) Frontier(k Key) ([]Key, error) {
	t, ok := r.types[k]
	if !ok {
		return nil, fmt.Errorf("frontier: unknown resource type %q", k)
	}
	if !t.Abstract {
		return []Key{k}, nil
	}
	kids := r.children[k]
	if len(kids) == 0 {
		return nil, fmt.Errorf("frontier: abstract resource type %q has no concrete subtype", k)
	}
	var out []Key
	for _, c := range kids {
		sub, err := r.Frontier(c)
		if err != nil {
			return nil, err
		}
		out = append(out, sub...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Version < out[j].Version
	})
	return out, nil
}

// VersionsOf returns, in ascending version order, the keys of all
// concrete registered types whose name matches and whose version lies in
// the given range. This implements the §3.4 version-range sugar.
func (r *Registry) VersionsOf(name string, rng version.Range) []Key {
	type kv struct {
		k Key
		v version.Version
	}
	var matches []kv
	for k, t := range r.types {
		if k.Name != name || t.Abstract {
			continue
		}
		v, ok := k.Ver()
		if !ok {
			continue
		}
		if rng.Contains(v) {
			matches = append(matches, kv{k, v})
		}
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i].v.Less(matches[j].v) })
	out := make([]Key, len(matches))
	for i, m := range matches {
		out[i] = m.k
	}
	return out
}
