// Package resource implements Engage's fundamental abstraction: the
// resource. A resource type (§3.1 of the paper) models how a software or
// hardware component may be instantiated — its key, its input /
// configuration / output ports, and its inside / environment / peer
// dependencies. Resource types support abstraction and subtyping (§3.2,
// Fig. 4). Resource instances live in package spec.
package resource

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the base types over which ports are defined. The paper
// leaves the set of base types unspecified; we provide the ones needed
// by the case studies plus a top type Any used by generic resources.
type Kind int

// Base type kinds.
const (
	KindInvalid Kind = iota
	KindString
	KindInt
	KindBool
	KindPort   // a TCP/UDP port number
	KindSecret // a string that must not be logged
	KindStruct // a structure with named fields (§3.4 syntactic sugar)
	KindList   // a list of values (used for package lists)
	KindAny    // top of the base-type lattice
)

var kindNames = map[Kind]string{
	KindInvalid: "invalid",
	KindString:  "string",
	KindInt:     "int",
	KindBool:    "bool",
	KindPort:    "tcp_port",
	KindSecret:  "secret",
	KindStruct:  "struct",
	KindList:    "list",
	KindAny:     "any",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// KindFromName resolves a base type name from the RDL surface syntax.
func KindFromName(s string) (Kind, bool) {
	for k, n := range kindNames {
		if n == s && k != KindInvalid {
			return k, true
		}
	}
	return KindInvalid, false
}

// PortType is the type of a port: a base kind, plus field types when the
// kind is KindStruct and an element type when the kind is KindList.
type PortType struct {
	Kind   Kind
	Fields map[string]PortType // for KindStruct
	Elem   *PortType           // for KindList
}

// T is shorthand for a scalar port type.
func T(k Kind) PortType { return PortType{Kind: k} }

// StructType builds a struct port type from field name/type pairs.
func StructType(fields map[string]PortType) PortType {
	return PortType{Kind: KindStruct, Fields: fields}
}

// ListType builds a list port type with the given element type.
func ListType(elem PortType) PortType {
	return PortType{Kind: KindList, Elem: &elem}
}

// String renders the port type.
func (t PortType) String() string {
	switch t.Kind {
	case KindStruct:
		names := make([]string, 0, len(t.Fields))
		for n := range t.Fields {
			names = append(names, n)
		}
		sort.Strings(names)
		var b strings.Builder
		b.WriteString("struct{")
		for i, n := range names {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s: %s", n, t.Fields[n])
		}
		b.WriteString("}")
		return b.String()
	case KindList:
		if t.Elem == nil {
			return "list[any]"
		}
		return "list[" + t.Elem.String() + "]"
	default:
		return t.Kind.String()
	}
}

// AssignableTo reports whether a value of type t may flow into a port of
// type u. This is the base-type relation "≤" of Fig. 4. The lattice:
// every type is assignable to itself and to Any; KindPort and KindInt
// are mutually assignable (a port number is an int); KindString is
// assignable to KindSecret (you may store a plain string in a secret
// port, not vice versa). Structs are width- and depth-compatible.
func (t PortType) AssignableTo(u PortType) bool {
	if u.Kind == KindAny {
		return true
	}
	switch {
	case t.Kind == u.Kind:
	case t.Kind == KindPort && u.Kind == KindInt,
		t.Kind == KindInt && u.Kind == KindPort:
	case t.Kind == KindString && u.Kind == KindSecret:
	default:
		return false
	}
	switch u.Kind {
	case KindStruct:
		// Width subtyping: t must provide every field u requires.
		for name, ft := range u.Fields {
			st, ok := t.Fields[name]
			if !ok || !st.AssignableTo(ft) {
				return false
			}
		}
	case KindList:
		// A nil element type means "unknown" (e.g., the type of an
		// empty list value) and is compatible with any element type.
		if u.Elem != nil && t.Elem != nil && !t.Elem.AssignableTo(*u.Elem) {
			return false
		}
	}
	return true
}

// Value is a runtime configuration value carried on a port.
type Value struct {
	Kind   Kind
	Str    string           // KindString, KindSecret
	Int    int              // KindInt, KindPort
	Bool   bool             // KindBool
	Fields map[string]Value // KindStruct
	List   []Value          // KindList
}

// Convenience constructors.

// Str builds a string value.
func Str(s string) Value { return Value{Kind: KindString, Str: s} }

// Int builds an int value.
func IntV(n int) Value { return Value{Kind: KindInt, Int: n} }

// PortV builds a TCP port value.
func PortV(n int) Value { return Value{Kind: KindPort, Int: n} }

// BoolV builds a bool value.
func BoolV(b bool) Value { return Value{Kind: KindBool, Bool: b} }

// SecretV builds a secret string value.
func SecretV(s string) Value { return Value{Kind: KindSecret, Str: s} }

// StructV builds a struct value.
func StructV(fields map[string]Value) Value {
	return Value{Kind: KindStruct, Fields: fields}
}

// ListV builds a list value.
func ListV(elems ...Value) Value { return Value{Kind: KindList, List: elems} }

// Type computes the port type of the value.
func (v Value) Type() PortType {
	switch v.Kind {
	case KindStruct:
		fs := make(map[string]PortType, len(v.Fields))
		for n, f := range v.Fields {
			fs[n] = f.Type()
		}
		return PortType{Kind: KindStruct, Fields: fs}
	case KindList:
		var elem *PortType
		if len(v.List) > 0 {
			t := v.List[0].Type()
			elem = &t
		}
		return PortType{Kind: KindList, Elem: elem}
	default:
		return PortType{Kind: v.Kind}
	}
}

// Field returns the named field of a struct value.
func (v Value) Field(name string) (Value, bool) {
	if v.Kind != KindStruct {
		return Value{}, false
	}
	f, ok := v.Fields[name]
	return f, ok
}

// Equal reports deep equality of two values.
func (v Value) Equal(w Value) bool {
	if v.Kind != w.Kind {
		return false
	}
	switch v.Kind {
	case KindString, KindSecret:
		return v.Str == w.Str
	case KindInt, KindPort:
		return v.Int == w.Int
	case KindBool:
		return v.Bool == w.Bool
	case KindStruct:
		if len(v.Fields) != len(w.Fields) {
			return false
		}
		for n, f := range v.Fields {
			g, ok := w.Fields[n]
			if !ok || !f.Equal(g) {
				return false
			}
		}
		return true
	case KindList:
		if len(v.List) != len(w.List) {
			return false
		}
		for i := range v.List {
			if !v.List[i].Equal(w.List[i]) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// String renders the value; secrets are redacted.
func (v Value) String() string {
	switch v.Kind {
	case KindString:
		return strconv.Quote(v.Str)
	case KindSecret:
		return `"<redacted>"`
	case KindInt, KindPort:
		return strconv.Itoa(v.Int)
	case KindBool:
		return strconv.FormatBool(v.Bool)
	case KindStruct:
		names := make([]string, 0, len(v.Fields))
		for n := range v.Fields {
			names = append(names, n)
		}
		sort.Strings(names)
		var b strings.Builder
		b.WriteByte('{')
		for i, n := range names {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s=%s", n, v.Fields[n])
		}
		b.WriteByte('}')
		return b.String()
	case KindList:
		var b strings.Builder
		b.WriteByte('[')
		for i, e := range v.List {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.String())
		}
		b.WriteByte(']')
		return b.String()
	default:
		return "<invalid>"
	}
}

// Reveal renders the value including secret contents; for writing
// configuration files on the simulated machines.
func (v Value) Reveal() string {
	if v.Kind == KindSecret {
		return strconv.Quote(v.Str)
	}
	return v.String()
}

// AsString extracts a string-ish payload: the string of a string or
// secret, the decimal form of an int or port, "true"/"false" for bools.
func (v Value) AsString() string {
	switch v.Kind {
	case KindString, KindSecret:
		return v.Str
	case KindInt, KindPort:
		return strconv.Itoa(v.Int)
	case KindBool:
		return strconv.FormatBool(v.Bool)
	default:
		return v.String()
	}
}
