package resource

import (
	"fmt"
	"sync"
)

// This file implements the subtyping relation ≤RT. Subtyping is
// *declared* — "sub-resource types extend base resource type
// definitions" (§3.2) — and *verified* by the structural rules of
// Fig. 4: R' ≤RT R holds iff R is reachable from R' along extends
// declarations AND the Fig. 4 port/dependency obligations hold. Pure
// structural coincidence is not subtyping: two sibling caches that
// happen to expose the same ports remain distinct types, so the
// configuration engine's exactly-one choices stay meaningful.
//
// The relations, for a candidate subtype R' and supertype R:
//
//	p' ≤in  p   — input ports: names equal, base types contravariant
//	p' ≤conf p  — config ports: names equal, base types covariant
//	p' ≤out p   — output ports: names equal, base types covariant
//	P' ≤IN P, P' ≤CONF P, P' ≤OUT P — for every port of the supertype,
//	              the subtype has a corresponding related port
//	m' ≤pm m    — port mappings: every pair of the supertype's mapping
//	              has a corresponding pair in the subtype's mapping
//	R' ≤RT R    — resource types: ports related per the above; the
//	              inside dependency is subtyped (or both null); every
//	              environment and peer dependency of R has a
//	              corresponding, subtyped dependency in R'
//
// ≤RT is additionally reflexive and transitive (Refl/Trans rules); the
// recursive checker below is reflexive by construction and transitive
// because the component relations are.

// SubInputPort reports p' ≤in p. Input ports are contravariant in the
// base type: the subtype must accept at least what the supertype
// accepts, so p.Type must be assignable to p'.Type.
func SubInputPort(pp, p Port) bool {
	return pp.Name == p.Name && p.Type.AssignableTo(pp.Type)
}

// SubConfigPort reports p' ≤conf p (covariant).
func SubConfigPort(pp, p Port) bool {
	return pp.Name == p.Name && pp.Type.AssignableTo(p.Type)
}

// SubOutputPort reports p' ≤out p (covariant).
func SubOutputPort(pp, p Port) bool {
	return pp.Name == p.Name && pp.Type.AssignableTo(p.Type)
}

func subPortSet(sub, super []Port, rel func(pp, p Port) bool) error {
	for _, p := range super {
		found := false
		for _, pp := range sub {
			if rel(pp, p) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("no port matching %q (type %s)", p.Name, p.Type)
		}
	}
	return nil
}

// SubPortMap reports m' ≤pm m: every (output, input) pair in m has a
// corresponding pair in m'. Both maps are dependee-output → self-input.
func SubPortMap(sub, super map[string]string) bool {
	for out, in := range super {
		if sub[out] != in {
			return false
		}
	}
	return true
}

// SubtypeChecker is the query interface shared by Subtyper and
// SharedSubtyper; consumers that only ask "is sub ≤RT super?" should
// accept this so either checker can be plugged in.
type SubtypeChecker interface {
	IsSubtype(sub, super Key) bool
}

// Subtyper checks ≤RT over a registry, memoizing results. The relation
// is used (a) by the hypergraph generator when matching an existing
// instance against a dependency key, and (b) by the static checker when
// validating that `extends` declarations produce genuine subtypes.
type Subtyper struct {
	reg  *Registry
	memo map[[2]Key]bool
	// inProgress guards against cycles in malformed registries: a pair
	// currently being derived is assumed true (coinductive reading),
	// which is sound for the acyclic registries the checker admits.
	inProgress map[[2]Key]bool
}

// NewSubtyper returns a subtype checker over a registry.
func NewSubtyper(reg *Registry) *Subtyper {
	return &Subtyper{
		reg:        reg,
		memo:       make(map[[2]Key]bool),
		inProgress: make(map[[2]Key]bool),
	}
}

// IsSubtype reports sub ≤RT super.
func (s *Subtyper) IsSubtype(sub, super Key) bool {
	return s.Explain(sub, super) == nil
}

// Explain reports why sub is not a subtype of super, or nil if it is.
func (s *Subtyper) Explain(sub, super Key) error {
	if sub == super {
		return nil // Refl
	}
	pair := [2]Key{sub, super}
	if v, ok := s.memo[pair]; ok {
		if v {
			return nil
		}
		return fmt.Errorf("%q is not a subtype of %q", sub, super)
	}
	if s.inProgress[pair] {
		return nil
	}
	s.inProgress[pair] = true
	err := s.derive(sub, super)
	delete(s.inProgress, pair)
	s.memo[pair] = err == nil
	return err
}

func (s *Subtyper) derive(sub, super Key) error {
	// Distinct versions of the same package are distinct types even
	// when structurally identical: a dependency on "Tomcat 6.0.18" is
	// not satisfied by "Tomcat 7.0". Version interchange happens only
	// through explicit disjunctions (the §3.4 version-range sugar).
	if sub.Name == super.Name && sub.Version != "" && super.Version != "" && sub.Version != super.Version {
		return fmt.Errorf("%q and %q are distinct versions of the same package", sub, super)
	}
	st, ok := s.reg.Lookup(sub)
	if !ok {
		return fmt.Errorf("unknown resource type %q", sub)
	}
	pt, ok := s.reg.Lookup(super)
	if !ok {
		return fmt.Errorf("unknown resource type %q", super)
	}

	// Nominal precondition: super must be an extends-ancestor of sub.
	if !s.declaredAncestor(st, super) {
		return fmt.Errorf("%q does not extend %q", sub, super)
	}

	if err := subPortSet(st.Input, pt.Input, SubInputPort); err != nil {
		return fmt.Errorf("%q ≤RT %q: input ports: %v", sub, super, err)
	}
	if err := subPortSet(st.Config, pt.Config, SubConfigPort); err != nil {
		return fmt.Errorf("%q ≤RT %q: config ports: %v", sub, super, err)
	}
	if err := subPortSet(st.Output, pt.Output, SubOutputPort); err != nil {
		return fmt.Errorf("%q ≤RT %q: output ports: %v", sub, super, err)
	}

	// Inside dependency: both null, or subtype's inside target is a
	// subtype of supertype's inside target with a compatible port map.
	switch {
	case pt.Inside == nil && st.Inside == nil:
		// machines on both sides; fine
	case pt.Inside == nil || st.Inside == nil:
		return fmt.Errorf("%q ≤RT %q: inside dependency nullability differs", sub, super)
	default:
		if err := s.subDep(*st.Inside, *pt.Inside); err != nil {
			return fmt.Errorf("%q ≤RT %q: inside: %v", sub, super, err)
		}
	}

	// Every env dep of the supertype must have a subtyped counterpart.
	for _, pd := range pt.Env {
		if !s.hasSubDep(st.Env, pd) {
			return fmt.Errorf("%q ≤RT %q: no environment dependency matching %s", sub, super, pd)
		}
	}
	for _, pd := range pt.Peer {
		if !s.hasSubDep(st.Peer, pd) {
			return fmt.Errorf("%q ≤RT %q: no peer dependency matching %s", sub, super, pd)
		}
	}
	return nil
}

// declaredAncestor walks the extends chain from t looking for super.
func (s *Subtyper) declaredAncestor(t *Type, super Key) bool {
	seen := make(map[Key]bool)
	for cur := t; cur != nil && cur.Extends != nil; {
		parent := *cur.Extends
		if parent == super {
			return true
		}
		if seen[parent] {
			return false // malformed cycle; reported elsewhere
		}
		seen[parent] = true
		next, ok := s.reg.Lookup(parent)
		if !ok {
			return false
		}
		cur = next
	}
	return false
}

func (s *Subtyper) hasSubDep(deps []Dependency, super Dependency) bool {
	for _, d := range deps {
		if s.subDep(d, super) == nil {
			return true
		}
	}
	return false
}

// subDep checks a dependency of the subtype against a dependency of the
// supertype: each alternative of the sub's dependency must be a subtype
// of some alternative of the super's, and the port maps must be related.
func (s *Subtyper) subDep(sub, super Dependency) error {
	for _, sk := range sub.Alternatives {
		ok := false
		for _, pk := range super.Alternatives {
			if s.Explain(sk, pk) == nil {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("alternative %q matches no supertype alternative of %s", sk, super)
		}
	}
	if !SubPortMap(sub.PortMap, super.PortMap) {
		return fmt.Errorf("port map not related")
	}
	if !SubPortMap(sub.ReversePortMap, super.ReversePortMap) {
		return fmt.Errorf("reverse port map not related")
	}
	return nil
}

// SharedSubtyper is a concurrency-safe ≤RT checker for use by parallel
// hypergraph expansion: answered pairs are published in a lock-free map
// so the hot path (memo hits from many workers scanning candidate nodes)
// costs one atomic load; misses serialize on a mutex around the inner
// Subtyper's derivation. Answers are identical to Subtyper's — the
// relation is a pure function of the registry.
type SharedSubtyper struct {
	hits  sync.Map // [2]Key -> bool
	mu    sync.Mutex
	inner *Subtyper
}

// NewSharedSubtyper returns a concurrency-safe subtype checker.
func NewSharedSubtyper(reg *Registry) *SharedSubtyper {
	return &SharedSubtyper{inner: NewSubtyper(reg)}
}

// IsSubtype reports sub ≤RT super; safe for concurrent use.
func (s *SharedSubtyper) IsSubtype(sub, super Key) bool {
	if sub == super {
		return true // Refl, no map traffic
	}
	pair := [2]Key{sub, super}
	if v, ok := s.hits.Load(pair); ok {
		return v.(bool)
	}
	s.mu.Lock()
	v := s.inner.IsSubtype(sub, super)
	s.mu.Unlock()
	s.hits.Store(pair, v)
	return v
}
