package resource

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if T(KindString).String() != "string" {
		t.Errorf("got %q", T(KindString).String())
	}
	if T(KindPort).String() != "tcp_port" {
		t.Errorf("got %q", T(KindPort).String())
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should render something")
	}
}

func TestKindFromName(t *testing.T) {
	for _, name := range []string{"string", "int", "bool", "tcp_port", "secret", "struct", "list", "any"} {
		k, ok := KindFromName(name)
		if !ok {
			t.Fatalf("KindFromName(%q) failed", name)
		}
		if k.String() != name {
			t.Errorf("KindFromName(%q) = %v", name, k)
		}
	}
	if _, ok := KindFromName("float"); ok {
		t.Error("float should not resolve")
	}
	if _, ok := KindFromName("invalid"); ok {
		t.Error("invalid should not resolve")
	}
}

func TestAssignableScalar(t *testing.T) {
	cases := []struct {
		from, to Kind
		want     bool
	}{
		{KindString, KindString, true},
		{KindString, KindAny, true},
		{KindInt, KindPort, true},
		{KindPort, KindInt, true},
		{KindString, KindSecret, true},
		{KindSecret, KindString, false},
		{KindBool, KindInt, false},
		{KindInt, KindString, false},
		{KindAny, KindString, false},
	}
	for _, c := range cases {
		if got := T(c.from).AssignableTo(T(c.to)); got != c.want {
			t.Errorf("%v assignable to %v = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

func TestAssignableStruct(t *testing.T) {
	narrow := StructType(map[string]PortType{"host": T(KindString)})
	wide := StructType(map[string]PortType{"host": T(KindString), "port": T(KindPort)})
	if !wide.AssignableTo(narrow) {
		t.Error("wide struct should be assignable to narrow (width subtyping)")
	}
	if narrow.AssignableTo(wide) {
		t.Error("narrow struct should not be assignable to wide")
	}
	badField := StructType(map[string]PortType{"host": T(KindBool)})
	if badField.AssignableTo(narrow) {
		t.Error("field type mismatch should fail")
	}
}

func TestAssignableList(t *testing.T) {
	ls := ListType(T(KindString))
	li := ListType(T(KindInt))
	if !ls.AssignableTo(ls) {
		t.Error("list[string] to itself")
	}
	if ls.AssignableTo(li) {
		t.Error("list[string] to list[int] should fail")
	}
	if !ls.AssignableTo(ListType(T(KindAny))) {
		t.Error("list[string] to list[any] should hold")
	}
}

func TestValueConstructorsAndType(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Str("x"), KindString},
		{IntV(3), KindInt},
		{PortV(3306), KindPort},
		{BoolV(true), KindBool},
		{SecretV("pw"), KindSecret},
		{StructV(map[string]Value{"a": IntV(1)}), KindStruct},
		{ListV(Str("a")), KindList},
	}
	for _, c := range cases {
		if c.v.Kind != c.kind {
			t.Errorf("constructor kind = %v, want %v", c.v.Kind, c.kind)
		}
		if c.v.Type().Kind != c.kind {
			t.Errorf("Type().Kind = %v, want %v", c.v.Type().Kind, c.kind)
		}
	}
}

func TestValueEqual(t *testing.T) {
	a := StructV(map[string]Value{"host": Str("localhost"), "port": PortV(3306)})
	b := StructV(map[string]Value{"host": Str("localhost"), "port": PortV(3306)})
	c := StructV(map[string]Value{"host": Str("otherhost"), "port": PortV(3306)})
	if !a.Equal(b) {
		t.Error("identical structs should be equal")
	}
	if a.Equal(c) {
		t.Error("different structs should not be equal")
	}
	if Str("x").Equal(IntV(1)) {
		t.Error("different kinds should not be equal")
	}
	if !ListV(IntV(1), IntV(2)).Equal(ListV(IntV(1), IntV(2))) {
		t.Error("equal lists")
	}
	if ListV(IntV(1)).Equal(ListV(IntV(2))) {
		t.Error("unequal lists")
	}
}

func TestSecretRedaction(t *testing.T) {
	s := SecretV("hunter2")
	if strings.Contains(s.String(), "hunter2") {
		t.Error("String() must redact secrets")
	}
	if !strings.Contains(s.Reveal(), "hunter2") {
		t.Error("Reveal() must expose secrets")
	}
	nested := StructV(map[string]Value{"password": SecretV("hunter2")})
	if strings.Contains(nested.String(), "hunter2") {
		t.Error("nested secrets must be redacted by String()")
	}
}

func TestValueString(t *testing.T) {
	v := StructV(map[string]Value{"b": IntV(2), "a": Str("x")})
	got := v.String()
	want := `{a="x", b=2}`
	if got != want {
		t.Errorf("String() = %s, want %s", got, want)
	}
	if ListV(IntV(1), BoolV(true)).String() != "[1, true]" {
		t.Errorf("list String() = %s", ListV(IntV(1), BoolV(true)).String())
	}
}

func TestAsString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Str("abc"), "abc"},
		{SecretV("pw"), "pw"},
		{IntV(42), "42"},
		{PortV(8080), "8080"},
		{BoolV(false), "false"},
	}
	for _, c := range cases {
		if got := c.v.AsString(); got != c.want {
			t.Errorf("AsString(%v) = %q, want %q", c.v.Kind, got, c.want)
		}
	}
}

func TestValueField(t *testing.T) {
	v := StructV(map[string]Value{"port": PortV(3306)})
	f, ok := v.Field("port")
	if !ok || f.Int != 3306 {
		t.Error("Field lookup failed")
	}
	if _, ok := v.Field("missing"); ok {
		t.Error("missing field should not resolve")
	}
	if _, ok := Str("x").Field("y"); ok {
		t.Error("Field on non-struct should fail")
	}
}

// Property: Equal is reflexive and AssignableTo is reflexive on
// arbitrary scalar values/types.
func TestValueProperties(t *testing.T) {
	scalarOf := func(sel uint8, n int, s string) Value {
		switch sel % 5 {
		case 0:
			return Str(s)
		case 1:
			return IntV(n)
		case 2:
			return PortV(n & 0xffff)
		case 3:
			return BoolV(n%2 == 0)
		default:
			return SecretV(s)
		}
	}
	refl := func(sel uint8, n int, s string) bool {
		v := scalarOf(sel, n, s)
		return v.Equal(v) && v.Type().AssignableTo(v.Type())
	}
	if err := quick.Check(refl, nil); err != nil {
		t.Error(err)
	}
	// Equality is symmetric.
	sym := func(s1, s2 uint8, n1, n2 int, str1, str2 string) bool {
		a, b := scalarOf(s1, n1, str1), scalarOf(s2, n2, str2)
		return a.Equal(b) == b.Equal(a)
	}
	if err := quick.Check(sym, nil); err != nil {
		t.Error(err)
	}
}
