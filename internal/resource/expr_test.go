package resource

import (
	"strings"
	"testing"
)

func testScope() MapScope {
	return MapScope{
		Inputs: map[string]Value{
			"db": StructV(map[string]Value{
				"host": Str("dbhost"),
				"port": PortV(3306),
			}),
		},
		Configs: map[string]Value{
			"name": Str("openmrs"),
		},
	}
}

func TestLitEval(t *testing.T) {
	v, err := Lit{V: IntV(7)}.Eval(testScope())
	if err != nil || v.Int != 7 {
		t.Fatalf("Lit eval: %v %v", v, err)
	}
}

func TestRefEval(t *testing.T) {
	v, err := Ref{Sec: SecConfig, Name: "name"}.Eval(testScope())
	if err != nil || v.Str != "openmrs" {
		t.Fatalf("Ref config eval: %v %v", v, err)
	}
	v, err = Ref{Sec: SecInput, Name: "db", Path: []string{"port"}}.Eval(testScope())
	if err != nil || v.Int != 3306 {
		t.Fatalf("Ref path eval: %v %v", v, err)
	}
}

func TestRefEvalErrors(t *testing.T) {
	if _, err := (Ref{Sec: SecInput, Name: "missing"}).Eval(testScope()); err == nil {
		t.Error("missing port should error")
	}
	if _, err := (Ref{Sec: SecInput, Name: "db", Path: []string{"nope"}}).Eval(testScope()); err == nil {
		t.Error("missing field should error")
	}
	if _, err := (Ref{Sec: SecConfig, Name: "name", Path: []string{"x"}}).Eval(testScope()); err == nil {
		t.Error("field access on scalar should error")
	}
}

func TestConcatEval(t *testing.T) {
	e := Concat{Args: []Expr{
		Lit{V: Str("jdbc:mysql://")},
		Ref{Sec: SecInput, Name: "db", Path: []string{"host"}},
		Lit{V: Str(":")},
		Ref{Sec: SecInput, Name: "db", Path: []string{"port"}},
		Lit{V: Str("/")},
		Ref{Sec: SecConfig, Name: "name"},
	}}
	v, err := e.Eval(testScope())
	if err != nil {
		t.Fatal(err)
	}
	want := "jdbc:mysql://dbhost:3306/openmrs"
	if v.Str != want {
		t.Errorf("Concat = %q, want %q", v.Str, want)
	}
}

func TestConcatPropagatesError(t *testing.T) {
	e := Concat{Args: []Expr{Ref{Sec: SecInput, Name: "missing"}}}
	if _, err := e.Eval(testScope()); err == nil {
		t.Error("Concat should propagate reference errors")
	}
}

func TestMakeStructEval(t *testing.T) {
	e := MakeStruct{Fields: map[string]Expr{
		"host": Ref{Sec: SecInput, Name: "db", Path: []string{"host"}},
		"name": Ref{Sec: SecConfig, Name: "name"},
	}}
	v, err := e.Eval(testScope())
	if err != nil {
		t.Fatal(err)
	}
	if h, _ := v.Field("host"); h.Str != "dbhost" {
		t.Errorf("host = %v", h)
	}
	if n, _ := v.Field("name"); n.Str != "openmrs" {
		t.Errorf("name = %v", n)
	}
}

func TestMakeStructError(t *testing.T) {
	e := MakeStruct{Fields: map[string]Expr{"x": Ref{Sec: SecInput, Name: "missing"}}}
	if _, err := e.Eval(testScope()); err == nil {
		t.Error("MakeStruct should propagate errors")
	}
}

func TestRefs(t *testing.T) {
	e := Concat{Args: []Expr{
		Lit{V: Str("x")},
		Ref{Sec: SecInput, Name: "a"},
		MakeStruct{Fields: map[string]Expr{"f": Ref{Sec: SecConfig, Name: "b"}}},
	}}
	rs := Refs(e)
	if len(rs) != 2 {
		t.Fatalf("Refs = %v, want 2 refs", rs)
	}
	names := map[string]bool{}
	for _, r := range rs {
		names[r.Name] = true
	}
	if !names["a"] || !names["b"] {
		t.Errorf("Refs missing expected names: %v", rs)
	}
	if Refs(nil) != nil {
		t.Error("Refs(nil) should be nil")
	}
}

func TestExprString(t *testing.T) {
	r := Ref{Sec: SecInput, Name: "db", Path: []string{"host"}}
	if r.String() != "input.db.host" {
		t.Errorf("Ref.String() = %q", r.String())
	}
	c := Concat{Args: []Expr{Lit{V: Str("a")}, r}}
	if !strings.Contains(c.String(), "input.db.host") {
		t.Errorf("Concat.String() = %q", c.String())
	}
	m := MakeStruct{Fields: map[string]Expr{"b": Lit{V: IntV(1)}, "a": Lit{V: IntV(2)}}}
	if m.String() != "{a: 2, b: 1}" {
		t.Errorf("MakeStruct.String() = %q", m.String())
	}
}

func TestSectionString(t *testing.T) {
	if SecInput.String() != "input" || SecConfig.String() != "config" || SecOutput.String() != "output" {
		t.Error("section names wrong")
	}
	if Section(42).String() != "section?" {
		t.Error("unknown section should render placeholder")
	}
}
