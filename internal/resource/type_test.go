package resource

import (
	"testing"

	"engage/internal/version"
)

func TestParseKey(t *testing.T) {
	cases := []struct {
		in        string
		name, ver string
	}{
		{"Tomcat 6.0.18", "Tomcat", "6.0.18"},
		{"Mac-OSX 10.6", "Mac-OSX", "10.6"},
		{"Server", "Server", ""},
		{"Apache HTTP Server 2.2", "Apache HTTP Server", "2.2"},
		{"Java", "Java", ""},
		{"OpenMRS 1.8", "OpenMRS", "1.8"},
	}
	for _, c := range cases {
		k := ParseKey(c.in)
		if k.Name != c.name || k.Version != c.ver {
			t.Errorf("ParseKey(%q) = %+v, want name=%q ver=%q", c.in, k, c.name, c.ver)
		}
		if c.ver != "" && k.String() != c.in {
			t.Errorf("round trip of %q = %q", c.in, k.String())
		}
	}
}

func TestKeyVer(t *testing.T) {
	k := ParseKey("MySQL 5.1")
	v, ok := k.Ver()
	if !ok || v.String() != "5.1" {
		t.Errorf("Ver() = %v, %v", v, ok)
	}
	if _, ok := ParseKey("Server").Ver(); ok {
		t.Error("unversioned key should have no version")
	}
	if !(Key{}).IsZero() {
		t.Error("zero key should report IsZero")
	}
}

// buildTestRegistry constructs the OpenMRS-style type lattice from §2 of
// the paper: abstract Server with Mac OSX and Windows subclasses,
// abstract Java with JDK/JRE subclasses, Tomcat, MySQL, OpenMRS.
func buildTestRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	add := func(ty *Type) {
		t.Helper()
		if err := reg.Add(ty); err != nil {
			t.Fatalf("Add(%v): %v", ty.Key, err)
		}
	}

	server := &Type{
		Key:      MakeKey("Server", ""),
		Abstract: true,
		Config: []Port{
			{Name: "hostname", Type: T(KindString), Def: Lit{V: Str("localhost")}},
			{Name: "os_user_name", Type: T(KindString), Def: Lit{V: Str("root")}},
		},
		Output: []Port{
			{Name: "host", Type: StructType(map[string]PortType{
				"hostname": T(KindString),
			}), Def: MakeStruct{Fields: map[string]Expr{
				"hostname": Ref{Sec: SecConfig, Name: "hostname"},
			}}},
		},
	}
	add(server)

	macosx := &Type{
		Key:     MakeKey("Mac-OSX", "10.6"),
		Extends: &Key{Name: "Server"},
		Output: []Port{
			{Name: "os", Type: T(KindString), Def: Lit{V: Str("macosx")}},
		},
	}
	add(macosx)
	add(&Type{
		Key:     MakeKey("Windows-XP", ""),
		Extends: &Key{Name: "Server"},
		Output: []Port{
			{Name: "os", Type: T(KindString), Def: Lit{V: Str("windows")}},
		},
	})

	java := &Type{
		Key:      MakeKey("Java", ""),
		Abstract: true,
		Inside:   &Dependency{Alternatives: []Key{{Name: "Server"}}},
		Output: []Port{
			{Name: "java", Type: StructType(map[string]PortType{"home": T(KindString)}),
				Def: MakeStruct{Fields: map[string]Expr{"home": Lit{V: Str("/usr/java")}}}},
		},
	}
	add(java)
	add(&Type{
		Key:     MakeKey("JDK", "1.6"),
		Extends: &Key{Name: "Java"},
		Output: []Port{
			{Name: "jdk_tools", Type: T(KindString), Def: Lit{V: Str("/usr/java/bin")}},
		},
	})
	add(&Type{
		Key:     MakeKey("JRE", "1.6"),
		Extends: &Key{Name: "Java"},
		Output: []Port{
			{Name: "jre_lib", Type: T(KindString), Def: Lit{V: Str("/usr/java/lib")}},
		},
	})

	tomcat := &Type{
		Key:    MakeKey("Tomcat", "6.0.18"),
		Inside: &Dependency{Alternatives: []Key{{Name: "Server"}}},
		Input: []Port{
			{Name: "java", Type: StructType(map[string]PortType{"home": T(KindString)})},
		},
		Config: []Port{
			{Name: "manager_port", Type: T(KindPort), Def: Lit{V: PortV(8080)}},
		},
		Output: []Port{
			{Name: "tomcat", Type: StructType(map[string]PortType{"port": T(KindPort)}),
				Def: MakeStruct{Fields: map[string]Expr{"port": Ref{Sec: SecConfig, Name: "manager_port"}}}},
		},
		Env: []Dependency{
			{Alternatives: []Key{{Name: "Java"}}, PortMap: map[string]string{"java": "java"}},
		},
	}
	add(tomcat)

	mysql := &Type{
		Key:    MakeKey("MySQL", "5.1"),
		Inside: &Dependency{Alternatives: []Key{{Name: "Server"}}},
		Config: []Port{
			{Name: "port", Type: T(KindPort), Def: Lit{V: PortV(3306)}},
		},
		Output: []Port{
			{Name: "mysql", Type: StructType(map[string]PortType{"port": T(KindPort)}),
				Def: MakeStruct{Fields: map[string]Expr{"port": Ref{Sec: SecConfig, Name: "port"}}}},
		},
	}
	add(mysql)

	openmrs := &Type{
		Key:    MakeKey("OpenMRS", "1.8"),
		Inside: &Dependency{Alternatives: []Key{{Name: "Tomcat", Version: "6.0.18"}}},
		Input: []Port{
			{Name: "java", Type: StructType(map[string]PortType{"home": T(KindString)})},
			{Name: "mysql", Type: StructType(map[string]PortType{"port": T(KindPort)})},
		},
		Env: []Dependency{
			{Alternatives: []Key{{Name: "Java"}}, PortMap: map[string]string{"java": "java"}},
		},
		Peer: []Dependency{
			{Alternatives: []Key{{Name: "MySQL", Version: "5.1"}}, PortMap: map[string]string{"mysql": "mysql"}},
		},
	}
	add(openmrs)

	return reg
}

func TestRegistryAddErrors(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Add(&Type{}); err == nil {
		t.Error("empty key should fail")
	}
	ty := &Type{Key: MakeKey("X", "1")}
	if err := reg.Add(ty); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(&Type{Key: MakeKey("X", "1")}); err == nil {
		t.Error("duplicate key should fail")
	}
	if err := reg.Add(&Type{Key: MakeKey("Y", "1"), Extends: &Key{Name: "Missing"}}); err == nil {
		t.Error("unknown parent should fail")
	}
}

func TestInheritanceFlattening(t *testing.T) {
	reg := buildTestRegistry(t)
	mac, ok := reg.Lookup(MakeKey("Mac-OSX", "10.6"))
	if !ok {
		t.Fatal("Mac-OSX missing")
	}
	// Inherited config ports from Server.
	if _, ok := mac.FindPort(SecConfig, "hostname"); !ok {
		t.Error("Mac-OSX should inherit hostname config port")
	}
	if _, ok := mac.FindPort(SecOutput, "host"); !ok {
		t.Error("Mac-OSX should inherit host output port")
	}
	if !mac.IsMachine() {
		t.Error("Mac-OSX should be a machine (no inside dependency)")
	}

	jdk := reg.MustLookup(MakeKey("JDK", "1.6"))
	if jdk.IsMachine() {
		t.Error("JDK should inherit the inside dependency from Java")
	}
	if _, ok := jdk.FindPort(SecOutput, "java"); !ok {
		t.Error("JDK should inherit the java output port")
	}
}

func TestInheritanceOverride(t *testing.T) {
	reg := NewRegistry()
	parent := &Type{
		Key:      MakeKey("Base", ""),
		Abstract: true,
		Config:   []Port{{Name: "p", Type: T(KindInt), Def: Lit{V: IntV(1)}}},
	}
	if err := reg.Add(parent); err != nil {
		t.Fatal(err)
	}
	child := &Type{
		Key:     MakeKey("Child", "1.0"),
		Extends: &Key{Name: "Base"},
		Config:  []Port{{Name: "p", Type: T(KindInt), Def: Lit{V: IntV(2)}}},
	}
	if err := reg.Add(child); err != nil {
		t.Fatal(err)
	}
	if len(child.Config) != 1 {
		t.Fatalf("override should not duplicate ports: %v", child.Config)
	}
	v, err := child.Config[0].Def.Eval(MapScope{})
	if err != nil || v.Int != 2 {
		t.Errorf("child override should win: %v %v", v, err)
	}
}

func TestFrontier(t *testing.T) {
	reg := buildTestRegistry(t)
	f, err := reg.Frontier(Key{Name: "Java"})
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 2 {
		t.Fatalf("Frontier(Java) = %v, want 2 entries", f)
	}
	names := map[string]bool{}
	for _, k := range f {
		names[k.Name] = true
	}
	if !names["JDK"] || !names["JRE"] {
		t.Errorf("Frontier(Java) = %v", f)
	}

	// Concrete types are their own frontier.
	f, err = reg.Frontier(MakeKey("Tomcat", "6.0.18"))
	if err != nil || len(f) != 1 || f[0].Name != "Tomcat" {
		t.Errorf("Frontier(Tomcat) = %v, %v", f, err)
	}

	// Abstract leaf is an error.
	reg2 := NewRegistry()
	if err := reg2.Add(&Type{Key: MakeKey("Lonely", ""), Abstract: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg2.Frontier(Key{Name: "Lonely"}); err == nil {
		t.Error("abstract leaf should be a frontier error")
	}
	if _, err := reg2.Frontier(Key{Name: "Unknown"}); err == nil {
		t.Error("unknown key should be a frontier error")
	}
}

func TestFrontierNested(t *testing.T) {
	// Abstract under abstract: frontier must stop at first concrete level.
	reg := NewRegistry()
	mustAdd := func(ty *Type) {
		if err := reg.Add(ty); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(&Type{Key: MakeKey("A", ""), Abstract: true})
	mustAdd(&Type{Key: MakeKey("B", ""), Abstract: true, Extends: &Key{Name: "A"}})
	mustAdd(&Type{Key: MakeKey("C", "1"), Extends: &Key{Name: "B"}})
	mustAdd(&Type{Key: MakeKey("D", "1"), Extends: &Key{Name: "A"}})
	// D is concrete but has a child; frontier stops at D.
	mustAdd(&Type{Key: MakeKey("E", "1"), Extends: &Key{Name: "D", Version: "1"}})
	f, err := reg.Frontier(Key{Name: "A"})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"C": true, "D": true}
	if len(f) != 2 {
		t.Fatalf("Frontier(A) = %v", f)
	}
	for _, k := range f {
		if !want[k.Name] {
			t.Errorf("unexpected frontier member %v", k)
		}
	}
}

func TestVersionsOf(t *testing.T) {
	reg := NewRegistry()
	for _, v := range []string{"5.5", "6.0.18", "6.0.29", "7.0"} {
		if err := reg.Add(&Type{Key: MakeKey("Tomcat", v), Inside: &Dependency{Alternatives: []Key{{Name: "Server"}}}}); err != nil {
			t.Fatal(err)
		}
	}
	rng, err := version.ParseRange("[5.5, 6.0.29)")
	if err != nil {
		t.Fatal(err)
	}
	keys := reg.VersionsOf("Tomcat", rng)
	if len(keys) != 2 {
		t.Fatalf("VersionsOf = %v, want 2", keys)
	}
	if keys[0].Version != "5.5" || keys[1].Version != "6.0.18" {
		t.Errorf("VersionsOf order/content wrong: %v", keys)
	}
}

func TestKeysAndLen(t *testing.T) {
	reg := buildTestRegistry(t)
	keys := reg.Keys()
	if len(keys) != reg.Len() {
		t.Error("Keys/Len mismatch")
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1].Name > keys[i].Name {
			t.Error("Keys not sorted")
		}
	}
}

func TestDepsIteration(t *testing.T) {
	reg := buildTestRegistry(t)
	openmrs := reg.MustLookup(MakeKey("OpenMRS", "1.8"))
	deps := openmrs.Deps()
	if len(deps) != 3 {
		t.Fatalf("OpenMRS should have 3 deps, got %v", deps)
	}
	if deps[0].Class != DepInside || deps[1].Class != DepEnv || deps[2].Class != DepPeer {
		t.Errorf("deps order wrong: %v", deps)
	}
}

func TestMustLookupPanics(t *testing.T) {
	reg := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("MustLookup on missing key should panic")
		}
	}()
	reg.MustLookup(MakeKey("Nope", ""))
}

func TestDependencyString(t *testing.T) {
	d := Single(MakeKey("MySQL", "5.1"), nil)
	if d.String() != "MySQL 5.1" {
		t.Errorf("Single.String() = %q", d.String())
	}
	d2 := OneOf([]Key{{Name: "JDK", Version: "1.6"}, {Name: "JRE", Version: "1.6"}}, nil)
	if d2.String() != "one_of(JDK 1.6, JRE 1.6)" {
		t.Errorf("OneOf.String() = %q", d2.String())
	}
}

func TestDependencyClassString(t *testing.T) {
	if DepInside.String() != "inside" || DepEnv.String() != "environment" || DepPeer.String() != "peer" {
		t.Error("class names wrong")
	}
	if DependencyClass(9).String() != "dep?" {
		t.Error("unknown class placeholder wrong")
	}
}
