package resource

import (
	"fmt"
	"strings"
)

// Section identifies the port section an expression reference reads
// from. Per §3.1, a configuration port may read from input ports of the
// same resource, and an output port may read from input or config ports.
type Section int

// Port sections.
const (
	SecInput Section = iota
	SecConfig
	SecOutput
)

func (s Section) String() string {
	switch s {
	case SecInput:
		return "input"
	case SecConfig:
		return "config"
	case SecOutput:
		return "output"
	default:
		return "section?"
	}
}

// Scope supplies port values during expression evaluation. Input lookups
// resolve against already-propagated input ports; config lookups against
// already-evaluated config ports.
type Scope interface {
	Lookup(sec Section, name string) (Value, bool)
}

// MapScope is a Scope backed by two maps.
type MapScope struct {
	Inputs  map[string]Value
	Configs map[string]Value
}

// Lookup implements Scope.
func (m MapScope) Lookup(sec Section, name string) (Value, bool) {
	switch sec {
	case SecInput:
		v, ok := m.Inputs[name]
		return v, ok
	case SecConfig:
		v, ok := m.Configs[name]
		return v, ok
	default:
		return Value{}, false
	}
}

// Expr is a port value definition: a default constant or a function of
// upstream ports (§3.1). Expressions are pure and total over a scope
// that defines every referenced port.
type Expr interface {
	// Eval computes the expression's value in the given scope.
	Eval(s Scope) (Value, error)
	// String renders RDL-like surface syntax.
	String() string
	// refs appends the port references the expression reads.
	refs(dst []Ref) []Ref
}

// Lit is a literal constant expression.
type Lit struct{ V Value }

// Eval implements Expr.
func (l Lit) Eval(Scope) (Value, error) { return l.V, nil }

func (l Lit) String() string       { return l.V.Reveal() }
func (l Lit) refs(dst []Ref) []Ref { return dst }

// Ref reads a port, optionally descending into struct fields via Path.
type Ref struct {
	Sec  Section
	Name string
	Path []string
}

// Eval implements Expr.
func (r Ref) Eval(s Scope) (Value, error) {
	v, ok := s.Lookup(r.Sec, r.Name)
	if !ok {
		return Value{}, fmt.Errorf("undefined port %s.%s", r.Sec, r.Name)
	}
	for _, f := range r.Path {
		fv, ok := v.Field(f)
		if !ok {
			return Value{}, fmt.Errorf("port %s.%s: no field %q in %s", r.Sec, r.Name, f, v)
		}
		v = fv
	}
	return v, nil
}

func (r Ref) String() string {
	s := r.Sec.String() + "." + r.Name
	if len(r.Path) > 0 {
		s += "." + strings.Join(r.Path, ".")
	}
	return s
}

func (r Ref) refs(dst []Ref) []Ref { return append(dst, r) }

// Concat concatenates the AsString forms of its arguments into a string
// value; this is the workhorse for deriving connection URLs and paths.
type Concat struct{ Args []Expr }

// Eval implements Expr.
func (c Concat) Eval(s Scope) (Value, error) {
	var b strings.Builder
	for _, a := range c.Args {
		v, err := a.Eval(s)
		if err != nil {
			return Value{}, err
		}
		b.WriteString(v.AsString())
	}
	return Str(b.String()), nil
}

func (c Concat) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return "concat(" + strings.Join(parts, ", ") + ")"
}

func (c Concat) refs(dst []Ref) []Ref {
	for _, a := range c.Args {
		dst = a.refs(dst)
	}
	return dst
}

// MakeStruct builds a struct value from named sub-expressions.
type MakeStruct struct{ Fields map[string]Expr }

// Eval implements Expr.
func (m MakeStruct) Eval(s Scope) (Value, error) {
	out := make(map[string]Value, len(m.Fields))
	for n, e := range m.Fields {
		v, err := e.Eval(s)
		if err != nil {
			return Value{}, err
		}
		out[n] = v
	}
	return StructV(out), nil
}

func (m MakeStruct) String() string {
	names := make([]string, 0, len(m.Fields))
	for n := range m.Fields {
		names = append(names, n)
	}
	// Stable order for rendering.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = n + ": " + m.Fields[n].String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func (m MakeStruct) refs(dst []Ref) []Ref {
	for _, e := range m.Fields {
		dst = e.refs(dst)
	}
	return dst
}

// MakeList builds a list value from element expressions.
type MakeList struct{ Elems []Expr }

// Eval implements Expr.
func (m MakeList) Eval(s Scope) (Value, error) {
	out := make([]Value, len(m.Elems))
	for i, e := range m.Elems {
		v, err := e.Eval(s)
		if err != nil {
			return Value{}, err
		}
		out[i] = v
	}
	return ListV(out...), nil
}

func (m MakeList) String() string {
	parts := make([]string, len(m.Elems))
	for i, e := range m.Elems {
		parts[i] = e.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

func (m MakeList) refs(dst []Ref) []Ref {
	for _, e := range m.Elems {
		dst = e.refs(dst)
	}
	return dst
}

// Refs returns every port reference an expression reads, for static
// checking (e.g., a config port must only read input ports).
func Refs(e Expr) []Ref {
	if e == nil {
		return nil
	}
	return e.refs(nil)
}
