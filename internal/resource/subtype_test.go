package resource

import (
	"testing"
	"testing/quick"
)

func TestSubInputPortContravariance(t *testing.T) {
	// Subtype input port may be MORE general than supertype's.
	general := Port{Name: "x", Type: T(KindAny)}
	specific := Port{Name: "x", Type: T(KindString)}
	if !SubInputPort(general, specific) {
		t.Error("any-typed input should subtype string-typed input (contravariant)")
	}
	if SubInputPort(specific, general) {
		t.Error("string-typed input should not subtype any-typed input")
	}
	if SubInputPort(Port{Name: "y", Type: T(KindString)}, specific) {
		t.Error("name mismatch must fail")
	}
}

func TestSubOutputPortCovariance(t *testing.T) {
	wide := Port{Name: "o", Type: StructType(map[string]PortType{
		"host": T(KindString), "port": T(KindPort),
	})}
	narrow := Port{Name: "o", Type: StructType(map[string]PortType{
		"host": T(KindString),
	})}
	if !SubOutputPort(wide, narrow) {
		t.Error("wider output struct should subtype narrower (covariant)")
	}
	if SubOutputPort(narrow, wide) {
		t.Error("narrower output must not subtype wider")
	}
}

func TestSubConfigPort(t *testing.T) {
	a := Port{Name: "c", Type: T(KindString)}
	b := Port{Name: "c", Type: T(KindSecret)}
	if !SubConfigPort(a, b) {
		t.Error("string config should subtype secret config (string ≤ secret)")
	}
	if SubConfigPort(b, a) {
		t.Error("secret config should not subtype string config")
	}
}

func TestSubPortMap(t *testing.T) {
	super := map[string]string{"java": "java"}
	if !SubPortMap(map[string]string{"java": "java", "extra": "e"}, super) {
		t.Error("superset map should be a sub-portmap")
	}
	if SubPortMap(map[string]string{}, super) {
		t.Error("missing pair should fail")
	}
	if SubPortMap(map[string]string{"java": "other"}, super) {
		t.Error("retargeted pair should fail")
	}
	if !SubPortMap(nil, nil) {
		t.Error("empty maps relate")
	}
}

func TestIsSubtypeReflexive(t *testing.T) {
	reg := buildTestRegistry(t)
	st := NewSubtyper(reg)
	for _, k := range reg.Keys() {
		if !st.IsSubtype(k, k) {
			t.Errorf("IsSubtype(%v, %v) should hold by Refl", k, k)
		}
	}
}

func TestIsSubtypeViaExtends(t *testing.T) {
	reg := buildTestRegistry(t)
	st := NewSubtyper(reg)
	cases := []struct {
		sub, super Key
		want       bool
	}{
		{MakeKey("Mac-OSX", "10.6"), Key{Name: "Server"}, true},
		{MakeKey("Windows-XP", ""), Key{Name: "Server"}, true},
		{MakeKey("JDK", "1.6"), Key{Name: "Java"}, true},
		{MakeKey("JRE", "1.6"), Key{Name: "Java"}, true},
		{Key{Name: "Server"}, MakeKey("Mac-OSX", "10.6"), false},
		{MakeKey("Tomcat", "6.0.18"), Key{Name: "Java"}, false},
		{MakeKey("MySQL", "5.1"), Key{Name: "Server"}, false}, // has inside dep; Server does not
	}
	for _, c := range cases {
		if got := st.IsSubtype(c.sub, c.super); got != c.want {
			t.Errorf("IsSubtype(%v, %v) = %v, want %v", c.sub, c.super, got, c.want)
		}
	}
}

func TestIsSubtypeTransitive(t *testing.T) {
	reg := NewRegistry()
	mustAdd := func(ty *Type) {
		if err := reg.Add(ty); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(&Type{Key: MakeKey("A", ""), Abstract: true})
	mustAdd(&Type{Key: MakeKey("B", ""), Abstract: true, Extends: &Key{Name: "A"}})
	mustAdd(&Type{Key: MakeKey("C", "1"), Extends: &Key{Name: "B"}})
	st := NewSubtyper(reg)
	if !st.IsSubtype(MakeKey("C", "1"), Key{Name: "A"}) {
		t.Error("C ≤RT B ≤RT A should give C ≤RT A")
	}
}

func TestSubtypeDeclaredNotMerelyStructural(t *testing.T) {
	// ≤RT requires a declared extends relation; structural coincidence
	// alone is not subtyping (two structurally identical sibling types
	// must stay distinct, or exactly-one choices collapse).
	reg := NewRegistry()
	mustAdd := func(ty *Type) {
		if err := reg.Add(ty); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(&Type{
		Key:      MakeKey("Iface", ""),
		Abstract: true,
		Output:   []Port{{Name: "o", Type: T(KindString), Def: Lit{V: Str("x")}}},
	})
	// Structurally compatible but undeclared: not a subtype.
	mustAdd(&Type{
		Key: MakeKey("Lookalike", "1"),
		Output: []Port{
			{Name: "o", Type: T(KindString), Def: Lit{V: Str("y")}},
			{Name: "extra", Type: T(KindInt), Def: Lit{V: IntV(1)}},
		},
	})
	// Declared and structurally compatible: a subtype.
	mustAdd(&Type{
		Key:     MakeKey("Impl", "1"),
		Extends: &Key{Name: "Iface"},
		Output: []Port{
			{Name: "extra", Type: T(KindInt), Def: Lit{V: IntV(1)}},
		},
	})
	st := NewSubtyper(reg)
	if st.IsSubtype(MakeKey("Lookalike", "1"), Key{Name: "Iface"}) {
		t.Error("undeclared structural lookalike must not be a subtype")
	}
	if !st.IsSubtype(MakeKey("Impl", "1"), Key{Name: "Iface"}) {
		t.Error("declared, structurally valid extension should be a subtype")
	}
}

func TestSubtypeDeclaredButStructurallyBroken(t *testing.T) {
	// A declared extension that violates Fig. 4 (output port overridden
	// with an incompatible type) is rejected by the structural check.
	reg := NewRegistry()
	if err := reg.Add(&Type{
		Key:      MakeKey("Base", ""),
		Abstract: true,
		Output:   []Port{{Name: "o", Type: T(KindString), Def: Lit{V: Str("x")}}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(&Type{
		Key:     MakeKey("Bad", "1"),
		Extends: &Key{Name: "Base"},
		Output:  []Port{{Name: "o", Type: T(KindBool), Def: Lit{V: BoolV(true)}}},
	}); err != nil {
		t.Fatal(err)
	}
	st := NewSubtyper(reg)
	if st.IsSubtype(MakeKey("Bad", "1"), Key{Name: "Base"}) {
		t.Error("covariance violation must break ≤RT despite the declaration")
	}
	if err := st.Explain(MakeKey("Bad", "1"), Key{Name: "Base"}); err == nil {
		t.Error("Explain should report the structural violation")
	}
}

func TestSubtypeRejectsMissingEnvDep(t *testing.T) {
	reg := NewRegistry()
	mustAdd := func(ty *Type) {
		if err := reg.Add(ty); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(&Type{Key: MakeKey("Server", ""), Abstract: true})
	mustAdd(&Type{Key: MakeKey("Lib", "1"), Inside: &Dependency{Alternatives: []Key{{Name: "Server"}}}})
	mustAdd(&Type{
		Key:    MakeKey("Super", "1"),
		Inside: &Dependency{Alternatives: []Key{{Name: "Server"}}},
		Env:    []Dependency{{Alternatives: []Key{MakeKey("Lib", "1")}}},
	})
	mustAdd(&Type{
		Key:    MakeKey("SubNoDep", "1"),
		Inside: &Dependency{Alternatives: []Key{{Name: "Server"}}},
	})
	st := NewSubtyper(reg)
	if st.IsSubtype(MakeKey("SubNoDep", "1"), MakeKey("Super", "1")) {
		t.Error("missing env dependency should break subtyping")
	}
	if err := st.Explain(MakeKey("SubNoDep", "1"), MakeKey("Super", "1")); err == nil {
		t.Error("Explain should report the failure")
	}
}

func TestDistinctVersionsNotSubtypes(t *testing.T) {
	// Structurally identical versions of the same package must remain
	// distinct types, or version-range constraints would be vacuous.
	reg := NewRegistry()
	mustAdd := func(ty *Type) {
		if err := reg.Add(ty); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(&Type{Key: MakeKey("Server", ""), Abstract: true})
	mustAdd(&Type{Key: MakeKey("Tomcat", ""), Abstract: true,
		Inside: &Dependency{Alternatives: []Key{{Name: "Server"}}}})
	mustAdd(&Type{Key: MakeKey("Tomcat", "5.5"), Extends: &Key{Name: "Tomcat"}})
	mustAdd(&Type{Key: MakeKey("Tomcat", "7.0"), Extends: &Key{Name: "Tomcat"}})
	st := NewSubtyper(reg)
	if st.IsSubtype(MakeKey("Tomcat", "7.0"), MakeKey("Tomcat", "5.5")) {
		t.Error("Tomcat 7.0 must not be a subtype of Tomcat 5.5")
	}
	if !st.IsSubtype(MakeKey("Tomcat", "5.5"), Key{Name: "Tomcat"}) {
		t.Error("versions remain subtypes of the unversioned abstract type")
	}
}

func TestSubtypeUnknownKeys(t *testing.T) {
	reg := NewRegistry()
	st := NewSubtyper(reg)
	if st.IsSubtype(MakeKey("A", "1"), MakeKey("B", "1")) {
		t.Error("unknown keys are not subtypes")
	}
}

func TestSubtypeMemoization(t *testing.T) {
	reg := buildTestRegistry(t)
	st := NewSubtyper(reg)
	sub, super := MakeKey("JDK", "1.6"), Key{Name: "Java"}
	first := st.IsSubtype(sub, super)
	second := st.IsSubtype(sub, super)
	if first != second || !first {
		t.Error("memoized result should be stable and true")
	}
	// Negative results are memoized too.
	n1 := st.IsSubtype(Key{Name: "Java"}, MakeKey("JDK", "1.6"))
	n2 := st.IsSubtype(Key{Name: "Java"}, MakeKey("JDK", "1.6"))
	if n1 || n2 {
		t.Error("Java is not a subtype of JDK")
	}
}

// Property: SubPortMap is reflexive and monotone under extension.
func TestSubPortMapProperties(t *testing.T) {
	refl := func(pairs map[string]string) bool {
		return SubPortMap(pairs, pairs)
	}
	if err := quick.Check(refl, nil); err != nil {
		t.Error(err)
	}
	mono := func(pairs map[string]string, extraKey, extraVal string) bool {
		if pairs == nil {
			pairs = map[string]string{}
		}
		bigger := make(map[string]string, len(pairs)+1)
		for k, v := range pairs {
			bigger[k] = v
		}
		if _, exists := bigger[extraKey]; !exists {
			bigger[extraKey] = extraVal
		}
		return SubPortMap(bigger, pairs)
	}
	if err := quick.Check(mono, nil); err != nil {
		t.Error(err)
	}
}
