package packager

import (
	"strings"
	"testing"
	"testing/quick"
)

const blogSettings = `
# Django settings for the blog project.
import os  # skipped by the parser

DEBUG = True
TEMPLATE_DEBUG = DEBUG  # unsupported expr on rhs: line skipped? no — name head matches
SITE_ID = 1
SECRET_KEY = 'abc\'123'

DATABASES = {
    'default': {
        'ENGINE': 'django.db.backends.mysql',
        'NAME': 'blog',
        'USER': 'bloguser',
        'PORT': 3306,
    }
}

INSTALLED_APPS = (
    'django.contrib.admin',
    'south',
    'blog',
)

CACHES = {
    'default': {
        'BACKEND': 'django.core.cache.backends.memcached.MemcachedCache',
    }
}

BROKER_URL = "amqp://guest@localhost//"
CRON_JOBS = ["0 3 * * * cleanup", "*/5 * * * * poll"]
USE_TZ = False
EMPTY = None
`

func TestParseSettingsBasics(t *testing.T) {
	s, err := ParseSettings(blogSettings)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get("DEBUG"); !ok || v.Kind != PyBool || !v.Bool {
		t.Errorf("DEBUG = %+v", v)
	}
	if v, ok := s.Get("SITE_ID"); !ok || v.Int != 1 {
		t.Errorf("SITE_ID = %+v", v)
	}
	if got := s.GetString("SECRET_KEY"); got != "abc'123" {
		t.Errorf("SECRET_KEY = %q", got)
	}
	if v, ok := s.Get("USE_TZ"); !ok || v.Bool {
		t.Errorf("USE_TZ = %+v", v)
	}
	if v, ok := s.Get("EMPTY"); !ok || v.Kind != PyNone {
		t.Errorf("EMPTY = %+v", v)
	}
	apps := s.GetStrings("INSTALLED_APPS")
	if len(apps) != 3 || apps[1] != "south" {
		t.Errorf("INSTALLED_APPS = %v", apps)
	}
	engine, ok := s.Lookup("DATABASES", "default", "ENGINE")
	if !ok || engine.Str != "django.db.backends.mysql" {
		t.Errorf("ENGINE = %+v", engine)
	}
	port, ok := s.Lookup("DATABASES", "default", "PORT")
	if !ok || port.Int != 3306 {
		t.Errorf("PORT = %+v", port)
	}
	if got := s.GetString("BROKER_URL"); !strings.HasPrefix(got, "amqp://") {
		t.Errorf("BROKER_URL = %q", got)
	}
}

func TestParseSettingsSkipsNonAssignments(t *testing.T) {
	src := `
import os
from django.conf import settings
if DEBUG:
    X = 1
NAME = "ok"
func_call(arg)
ALSO = 2
`
	s, err := ParseSettings(src)
	if err != nil {
		t.Fatal(err)
	}
	if s.GetString("NAME") != "ok" {
		t.Error("NAME lost")
	}
	if v, ok := s.Get("ALSO"); !ok || v.Int != 2 {
		t.Errorf("ALSO = %+v", v)
	}
}

func TestParseSettingsErrors(t *testing.T) {
	for _, src := range []string{
		`X = [1, 2`,
		`X = {"a": }`,
		`X = {"a" 1}`,
		`X = {1: "a"}`,
		`X = "unterminated`,
		`X = `,
	} {
		if _, err := ParseSettings(src); err == nil {
			t.Errorf("ParseSettings(%q): expected error", src)
		}
	}
}

func TestLookupMisses(t *testing.T) {
	s, err := ParseSettings(`X = {"a": 1}`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Lookup(); ok {
		t.Error("empty path should miss")
	}
	if _, ok := s.Lookup("Y"); ok {
		t.Error("unknown var should miss")
	}
	if _, ok := s.Lookup("X", "b"); ok {
		t.Error("unknown key should miss")
	}
	if _, ok := s.Lookup("X", "a", "deeper"); ok {
		t.Error("descending into scalar should miss")
	}
	if s.GetString("X") != "" {
		t.Error("GetString on dict should be empty")
	}
	if s.GetStrings("X") != nil {
		t.Error("GetStrings on dict should be nil")
	}
}

func blogApp() App {
	return App{
		Name:    "django-blog",
		Version: "2.1",
		Files: map[string]string{
			"manage.py":                       "#!/usr/bin/env python",
			"settings.py":                     blogSettings,
			"requirements.txt":                "Django==1.3\nsouth\nredis==2.4.9\ncelery==2.4.6\nMarkdown\n# comment\n",
			"blog/models.py":                  "class Post: pass",
			"blog/migrations/0001_initial.py": "...",
		},
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(blogApp()); err != nil {
		t.Fatal(err)
	}
	app := blogApp()
	delete(app.Files, "manage.py")
	if err := Validate(app); err == nil || !strings.Contains(err.Error(), "manage.py") {
		t.Errorf("missing manage.py: %v", err)
	}
	app2 := blogApp()
	delete(app2.Files, "settings.py")
	if err := Validate(app2); err == nil || !strings.Contains(err.Error(), "settings.py") {
		t.Errorf("missing settings.py: %v", err)
	}
	app3 := blogApp()
	app3.Files["settings.py"] = `X = [`
	if err := Validate(app3); err == nil {
		t.Error("unparseable settings should fail validation")
	}
	app4 := blogApp()
	app4.Name = ""
	if err := Validate(app4); err == nil {
		t.Error("empty name should fail")
	}
}

func TestExtract(t *testing.T) {
	man, err := Extract(blogApp())
	if err != nil {
		t.Fatal(err)
	}
	if man.Name != "django-blog" || man.Version != "2.1" {
		t.Errorf("identity = %s %s", man.Name, man.Version)
	}
	if len(man.PythonPackages) != 5 {
		t.Errorf("PythonPackages = %v", man.PythonPackages)
	}
	if man.DatabaseEngine != "mysql" {
		t.Errorf("DatabaseEngine = %q", man.DatabaseEngine)
	}
	if !man.UsesCelery || !man.UsesRedis || !man.UsesMemcached {
		t.Errorf("optional components: celery=%v redis=%v memcached=%v",
			man.UsesCelery, man.UsesRedis, man.UsesMemcached)
	}
	if !man.HasMigrations {
		t.Error("south in requirements should imply migrations")
	}
	if len(man.CronJobs) != 2 {
		t.Errorf("CronJobs = %v", man.CronJobs)
	}
}

func TestExtractMinimalApp(t *testing.T) {
	app := App{
		Name: "areneae",
		Files: map[string]string{
			"manage.py":   "#!/usr/bin/env python",
			"settings.py": `DATABASES = {"default": {"ENGINE": "django.db.backends.sqlite3", "NAME": "db.sqlite"}}`,
		},
	}
	man, err := Extract(app)
	if err != nil {
		t.Fatal(err)
	}
	if man.Version != "1.0" {
		t.Errorf("default version = %q", man.Version)
	}
	if man.DatabaseEngine != "sqlite" {
		t.Errorf("DatabaseEngine = %q", man.DatabaseEngine)
	}
	if man.UsesCelery || man.UsesRedis || man.UsesMemcached || man.HasMigrations {
		t.Errorf("minimal app should use nothing optional: %+v", man)
	}
}

func TestPackageAndArchiveRoundTrip(t *testing.T) {
	arch, err := Package(blogApp())
	if err != nil {
		t.Fatal(err)
	}
	files := arch.FileList()
	if len(files) != 5 {
		t.Fatalf("FileList = %v", files)
	}
	for _, f := range files {
		if !strings.HasPrefix(f, "app/") {
			t.Errorf("archive layout should prefix app/: %q", f)
		}
	}
	data, err := arch.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadArchive(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Manifest.Name != "django-blog" || len(back.Files) != 5 {
		t.Errorf("round trip lost data: %+v", back.Manifest)
	}
	if _, err := ReadArchive([]byte("{")); err == nil {
		t.Error("corrupt archive should fail")
	}
	if _, err := ReadArchive([]byte("{}")); err == nil {
		t.Error("archive without name should fail")
	}
}

// Property: the settings parser never panics on arbitrary input.
func TestParseSettingsNeverPanics(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = ParseSettings(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
