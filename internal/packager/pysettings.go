package packager

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// This file implements a parser for the restricted subset of Python that
// Django settings files use in practice: top-level `NAME = value`
// assignments where value is a string, number, boolean, None, list,
// tuple, or dict of such values. Engage's application packager reads
// settings.py through this parser to extract deployment-relevant
// metadata (databases, caches, installed apps, broker URLs) without
// executing Python.

// PyValue is a parsed Python literal.
type PyValue struct {
	Kind PyKind
	Str  string
	Int  int
	Bool bool
	List []PyValue
	Dict map[string]PyValue
}

// PyKind enumerates the literal kinds the subset supports.
type PyKind int

// Literal kinds.
const (
	PyNone PyKind = iota
	PyStr
	PyInt
	PyBool
	PyList
	PyDict
)

// Settings is the result of parsing a settings file: top-level
// assignments in order of appearance (later assignments win).
type Settings struct {
	vars map[string]PyValue
}

// Get returns a top-level variable.
func (s *Settings) Get(name string) (PyValue, bool) {
	v, ok := s.vars[name]
	return v, ok
}

// GetString returns a string variable ("" when missing or non-string).
func (s *Settings) GetString(name string) string {
	if v, ok := s.vars[name]; ok && v.Kind == PyStr {
		return v.Str
	}
	return ""
}

// GetStrings returns the string elements of a list/tuple variable.
func (s *Settings) GetStrings(name string) []string {
	v, ok := s.vars[name]
	if !ok || v.Kind != PyList {
		return nil
	}
	var out []string
	for _, e := range v.List {
		if e.Kind == PyStr {
			out = append(out, e.Str)
		}
	}
	return out
}

// Lookup descends into nested dicts: Lookup("DATABASES", "default",
// "ENGINE") returns the engine string.
func (s *Settings) Lookup(path ...string) (PyValue, bool) {
	if len(path) == 0 {
		return PyValue{}, false
	}
	v, ok := s.vars[path[0]]
	if !ok {
		return PyValue{}, false
	}
	for _, key := range path[1:] {
		if v.Kind != PyDict {
			return PyValue{}, false
		}
		v, ok = v.Dict[key]
		if !ok {
			return PyValue{}, false
		}
	}
	return v, true
}

// ParseSettings parses a settings.py-style source. Lines that are not
// recognizable top-level assignments (imports, comments, function calls,
// conditionals) are skipped — Django settings commonly mix those in, and
// the packager only needs the declarative assignments.
func ParseSettings(src string) (*Settings, error) {
	p := &pyParser{src: src}
	s := &Settings{vars: make(map[string]PyValue)}
	for !p.eof() {
		p.skipSpaceAndComments()
		if p.eof() {
			break
		}
		name, ok := p.tryAssignmentHead()
		if !ok {
			p.skipLine()
			continue
		}
		v, err := p.parseValue()
		if err != nil {
			var unsup *unsupportedExprError
			if errors.As(err, &unsup) {
				// Expressions outside the literal subset (references to
				// other settings, function calls, string formatting) are
				// common in real settings files; skip the assignment.
				p.skipLine()
				continue
			}
			return nil, fmt.Errorf("settings.py line %d: %v", p.line(), err)
		}
		s.vars[name] = v
	}
	return s, nil
}

type pyParser struct {
	src   string
	off   int
	depth int // bracket nesting depth
}

func (p *pyParser) eof() bool { return p.off >= len(p.src) }

func (p *pyParser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.off]
}

func (p *pyParser) line() int {
	return strings.Count(p.src[:p.off], "\n") + 1
}

func (p *pyParser) skipLine() {
	for !p.eof() && p.src[p.off] != '\n' {
		p.off++
	}
	if !p.eof() {
		p.off++
	}
}

// skipSpaceAndComments skips whitespace (including newlines) and `#`
// comments.
func (p *pyParser) skipSpaceAndComments() {
	for !p.eof() {
		c := p.src[p.off]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			p.off++
		case c == '#':
			p.skipLine()
		default:
			return
		}
	}
}

// skipInlineSpace skips spaces, comments, and newlines inside brackets.
func (p *pyParser) skipInlineSpace() { p.skipSpaceAndComments() }

// tryAssignmentHead matches `IDENT =` (not `==`) at the current
// position; on success it consumes through the '=' and returns the name.
func (p *pyParser) tryAssignmentHead() (string, bool) {
	start := p.off
	if p.eof() {
		return "", false
	}
	c := p.src[p.off]
	if c != '_' && !unicode.IsLetter(rune(c)) {
		return "", false
	}
	i := p.off
	for i < len(p.src) {
		c := p.src[i]
		if c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) {
			i++
		} else {
			break
		}
	}
	name := p.src[p.off:i]
	j := i
	for j < len(p.src) && (p.src[j] == ' ' || p.src[j] == '\t') {
		j++
	}
	if j >= len(p.src) || p.src[j] != '=' || (j+1 < len(p.src) && p.src[j+1] == '=') {
		p.off = start
		return "", false
	}
	p.off = j + 1
	return name, true
}

func (p *pyParser) parseValue() (PyValue, error) {
	p.skipInlineSpace()
	if p.eof() {
		return PyValue{}, fmt.Errorf("unexpected end of file")
	}
	switch c := p.peek(); {
	case c == '\'' || c == '"':
		s, err := p.parseString()
		if err != nil {
			return PyValue{}, err
		}
		return PyValue{Kind: PyStr, Str: s}, nil
	case c == '[' || c == '(':
		return p.parseList(c)
	case c == '{':
		return p.parseDict()
	case c == '-' || unicode.IsDigit(rune(c)):
		return p.parseNumber()
	default:
		word := p.parseWord()
		switch word {
		case "True":
			return PyValue{Kind: PyBool, Bool: true}, nil
		case "False":
			return PyValue{Kind: PyBool, Bool: false}, nil
		case "None":
			return PyValue{Kind: PyNone}, nil
		default:
			if p.depth > 0 {
				// Inside a list or dict the subset is strict: a
				// non-literal is a malformed settings file, not a
				// skippable top-level assignment.
				return PyValue{}, fmt.Errorf("unsupported expression starting with %q", word)
			}
			return PyValue{}, &unsupportedExprError{word: word}
		}
	}
}

// unsupportedExprError marks an expression outside the literal subset.
type unsupportedExprError struct{ word string }

func (e *unsupportedExprError) Error() string {
	return fmt.Sprintf("unsupported expression starting with %q", e.word)
}

func (p *pyParser) parseWord() string {
	i := p.off
	for i < len(p.src) {
		c := p.src[i]
		if c == '_' || c == '.' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) {
			i++
		} else {
			break
		}
	}
	w := p.src[p.off:i]
	p.off = i
	return w
}

func (p *pyParser) parseString() (string, error) {
	quote := p.src[p.off]
	p.off++
	var b strings.Builder
	for !p.eof() {
		c := p.src[p.off]
		switch c {
		case quote:
			p.off++
			return b.String(), nil
		case '\\':
			p.off++
			if p.eof() {
				return "", fmt.Errorf("unterminated escape")
			}
			esc := p.src[p.off]
			p.off++
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\'', '"', '\\':
				b.WriteByte(esc)
			default:
				b.WriteByte(esc)
			}
		case '\n':
			return "", fmt.Errorf("unterminated string")
		default:
			b.WriteByte(c)
			p.off++
		}
	}
	return "", fmt.Errorf("unterminated string")
}

func (p *pyParser) parseNumber() (PyValue, error) {
	i := p.off
	if p.src[i] == '-' {
		i++
	}
	for i < len(p.src) && unicode.IsDigit(rune(p.src[i])) {
		i++
	}
	n, err := strconv.Atoi(p.src[p.off:i])
	if err != nil {
		return PyValue{}, fmt.Errorf("bad number %q", p.src[p.off:i])
	}
	p.off = i
	return PyValue{Kind: PyInt, Int: n}, nil
}

func (p *pyParser) parseList(open byte) (PyValue, error) {
	closer := byte(']')
	if open == '(' {
		closer = ')'
	}
	p.off++ // consume opener
	p.depth++
	defer func() { p.depth-- }()
	out := PyValue{Kind: PyList}
	for {
		p.skipInlineSpace()
		if p.eof() {
			return PyValue{}, fmt.Errorf("unterminated list")
		}
		if p.peek() == closer {
			p.off++
			return out, nil
		}
		v, err := p.parseValue()
		if err != nil {
			return PyValue{}, err
		}
		out.List = append(out.List, v)
		p.skipInlineSpace()
		if p.peek() == ',' {
			p.off++
		}
	}
}

func (p *pyParser) parseDict() (PyValue, error) {
	p.off++ // consume '{'
	p.depth++
	defer func() { p.depth-- }()
	out := PyValue{Kind: PyDict, Dict: make(map[string]PyValue)}
	for {
		p.skipInlineSpace()
		if p.eof() {
			return PyValue{}, fmt.Errorf("unterminated dict")
		}
		if p.peek() == '}' {
			p.off++
			return out, nil
		}
		if c := p.peek(); c != '\'' && c != '"' {
			return PyValue{}, fmt.Errorf("dict keys must be strings")
		}
		key, err := p.parseString()
		if err != nil {
			return PyValue{}, err
		}
		p.skipInlineSpace()
		if p.peek() != ':' {
			return PyValue{}, fmt.Errorf("expected ':' after dict key %q", key)
		}
		p.off++
		v, err := p.parseValue()
		if err != nil {
			return PyValue{}, err
		}
		out.Dict[key] = v
		p.skipInlineSpace()
		if p.peek() == ',' {
			p.off++
		}
	}
}
