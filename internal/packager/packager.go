// Package packager implements Engage's Django application packager
// (§6.2 of the paper): it validates a Django application, extracts the
// metadata Engage needs (package dependencies, database engine, optional
// components, migrations, cron jobs), and packages the application into
// an archive with a pre-defined layout that the Django driver deploys.
// The goal, per the paper, is that "Django developers deploy their
// existing applications … with little changes and no need to understand
// the internals of Engage".
package packager

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// App is a Django application source tree: file paths to contents.
type App struct {
	Name    string
	Version string
	Files   map[string]string
}

// Manifest is the deployment-relevant metadata extracted from an app.
type Manifest struct {
	Name    string `json:"name"`
	Version string `json:"version"`
	// PythonPackages are the PyPI requirements ("name" or
	// "name==version" lines from requirements.txt).
	PythonPackages []string `json:"python_packages,omitempty"`
	// DatabaseEngine is "mysql", "sqlite", or "" (no preference).
	DatabaseEngine string `json:"database_engine,omitempty"`
	UsesCelery     bool   `json:"uses_celery,omitempty"`
	UsesRedis      bool   `json:"uses_redis,omitempty"`
	UsesMemcached  bool   `json:"uses_memcached,omitempty"`
	// HasMigrations reports a South migration chain in the app.
	HasMigrations bool `json:"has_migrations,omitempty"`
	// CronJobs are crontab entries the app registers.
	CronJobs []string `json:"cron_jobs,omitempty"`
}

// Validate checks the application layout: manage.py and settings.py
// must exist and settings.py must parse.
func Validate(app App) error {
	if app.Name == "" {
		return fmt.Errorf("packager: application has no name")
	}
	if _, ok := app.Files["manage.py"]; !ok {
		return fmt.Errorf("packager: %s: missing manage.py", app.Name)
	}
	src, ok := app.Files["settings.py"]
	if !ok {
		return fmt.Errorf("packager: %s: missing settings.py", app.Name)
	}
	if _, err := ParseSettings(src); err != nil {
		return fmt.Errorf("packager: %s: %v", app.Name, err)
	}
	return nil
}

// Extract derives the manifest from a validated application.
func Extract(app App) (Manifest, error) {
	if err := Validate(app); err != nil {
		return Manifest{}, err
	}
	man := Manifest{Name: app.Name, Version: app.Version}
	if man.Version == "" {
		man.Version = "1.0"
	}

	settings, err := ParseSettings(app.Files["settings.py"])
	if err != nil {
		return Manifest{}, err
	}

	// requirements.txt → PyPI packages.
	if reqs, ok := app.Files["requirements.txt"]; ok {
		for _, line := range strings.Split(reqs, "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			man.PythonPackages = append(man.PythonPackages, line)
		}
	}

	// Database engine from DATABASES.default.ENGINE.
	if engine, ok := settings.Lookup("DATABASES", "default", "ENGINE"); ok && engine.Kind == PyStr {
		switch {
		case strings.HasSuffix(engine.Str, "mysql"):
			man.DatabaseEngine = "mysql"
		case strings.HasSuffix(engine.Str, "sqlite3"):
			man.DatabaseEngine = "sqlite"
		}
	}

	apps := settings.GetStrings("INSTALLED_APPS")
	hasApp := func(name string) bool {
		for _, a := range apps {
			if a == name || strings.HasSuffix(a, "."+name) {
				return true
			}
		}
		return false
	}
	hasReq := func(name string) bool {
		for _, r := range man.PythonPackages {
			pkg := strings.SplitN(r, "==", 2)[0]
			if strings.EqualFold(pkg, name) {
				return true
			}
		}
		return false
	}

	man.UsesCelery = hasApp("djcelery") || hasReq("celery") || settings.GetString("BROKER_URL") != ""
	man.UsesRedis = hasReq("redis") || settings.GetString("REDIS_HOST") != ""
	if backend, ok := settings.Lookup("CACHES", "default", "BACKEND"); ok && backend.Kind == PyStr {
		man.UsesMemcached = strings.Contains(backend.Str, "memcached")
	}
	man.HasMigrations = hasApp("south") || hasReq("south")
	if !man.HasMigrations {
		for path := range app.Files {
			if strings.Contains(path, "migrations/") {
				man.HasMigrations = true
				break
			}
		}
	}
	man.CronJobs = settings.GetStrings("CRON_JOBS")
	return man, nil
}

// Archive is a packaged application: the manifest plus the application
// files under a pre-defined layout.
type Archive struct {
	Manifest Manifest          `json:"manifest"`
	Files    map[string]string `json:"files"`
}

// Package validates, extracts, and packages an application.
func Package(app App) (Archive, error) {
	man, err := Extract(app)
	if err != nil {
		return Archive{}, err
	}
	files := make(map[string]string, len(app.Files))
	for p, c := range app.Files {
		files["app/"+p] = c
	}
	return Archive{Manifest: man, Files: files}, nil
}

// Bytes serializes the archive deterministically.
func (a Archive) Bytes() ([]byte, error) {
	return json.MarshalIndent(a, "", "  ")
}

// ReadArchive deserializes an archive.
func ReadArchive(data []byte) (Archive, error) {
	var a Archive
	if err := json.Unmarshal(data, &a); err != nil {
		return Archive{}, fmt.Errorf("packager: corrupt archive: %v", err)
	}
	if a.Manifest.Name == "" {
		return Archive{}, fmt.Errorf("packager: archive has no application name")
	}
	return a, nil
}

// FileList returns archive paths, sorted; for tests and tooling.
func (a Archive) FileList() []string {
	out := make([]string, 0, len(a.Files))
	for p := range a.Files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
