package monitor

import (
	"strings"
	"testing"
	"time"

	"engage/internal/deploy"
	"engage/internal/driver"
	"engage/internal/health"
	"engage/internal/machine"
	"engage/internal/rdl"
	"engage/internal/resource"
	"engage/internal/spec"
)

const monRDL = `
abstract resource "Server" {}
resource "Mac 10.6" extends "Server" {}
resource "Webapp 1.0" {
    inside "Server"
    config { port: tcp_port = 9000 }
}
`

func setup(t *testing.T) (*deploy.Deployment, *machine.Machine) {
	t.Helper()
	reg, err := rdl.ParseAndResolve(map[string]string{"mon.rdl": monRDL})
	if err != nil {
		t.Fatal(err)
	}
	full := &spec.Full{Instances: []*spec.Instance{
		{ID: "m", Key: resource.MakeKey("Mac", "10.6"), Machine: "m"},
		{ID: "web", Key: resource.MakeKey("Webapp", "1.0"), Machine: "m", Inside: "m",
			Config: map[string]resource.Value{"port": resource.PortV(9000)},
			Deps:   []spec.DepLink{{Class: resource.DepInside, Target: "m"}}},
	}}

	dr := deploy.NewDriverRegistry()
	spawn := func(c *driver.Context) error {
		port := c.Instance.Config["port"].Int
		p, err := c.Machine.StartProcess("webapp", "webapp -p", port)
		if err != nil {
			return err
		}
		c.PutPID("daemon", p.PID)
		c.Charge(5 * time.Second)
		return nil
	}
	dr.RegisterName("Webapp", func(ctx *driver.Context) *driver.StateMachine {
		return driver.ServiceMachine(
			nil,   // install
			spawn, // start
			func(c *driver.Context) error { // stop
				pid, _ := c.PID("daemon")
				return c.Machine.StopProcess(pid)
			},
			spawn, // restart respawns
			nil,
		)
	})

	w := machine.NewWorld()
	d, err := deploy.New(full, deploy.Options{
		Registry: reg, Drivers: dr, World: w, ProvisionMissing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Deploy(); err != nil {
		t.Fatal(err)
	}
	m, _ := w.Machine("m")
	return d, m
}

func TestAutoRegisterAndStatus(t *testing.T) {
	d, m := setup(t)
	mon := New(d)
	if n := mon.AutoRegister(); n != 1 {
		t.Fatalf("AutoRegister = %d, want 1", n)
	}
	if got := mon.Watched(); len(got) != 1 || got[0] != "web" {
		t.Fatalf("Watched = %v", got)
	}
	m.Clock().Advance(2 * time.Minute)
	sts := mon.Status()
	if len(sts) != 1 {
		t.Fatalf("Status = %v", sts)
	}
	st := sts[0]
	if !st.Running || st.State != driver.Active || st.Uptime < 2*time.Minute {
		t.Errorf("status = %+v", st)
	}
}

func TestCheckRestartsDeadProcess(t *testing.T) {
	d, m := setup(t)
	mon := New(d)
	mon.AutoRegister()

	// Healthy sweep: no events.
	if evs := mon.Check(); len(evs) != 0 {
		t.Fatalf("healthy check should be quiet: %v", evs)
	}

	// Failure injection: kill the daemon.
	drv, _ := d.Driver("web")
	pid, _ := drv.Ctx.PID("daemon")
	if err := m.KillProcess(pid); err != nil {
		t.Fatal(err)
	}
	if m.Listening(9000) {
		t.Fatal("port should be free after kill")
	}

	evs := mon.Check()
	if len(evs) != 1 {
		t.Fatalf("expected one event, got %v", evs)
	}
	if !evs[0].Dead || !evs[0].Restarted || evs[0].Err != nil {
		t.Errorf("event = %+v", evs[0])
	}
	// The service is back with a new PID on its port.
	if !m.Listening(9000) {
		t.Error("restart should re-listen")
	}
	newPID, _ := drv.Ctx.PID("daemon")
	if newPID == pid {
		t.Error("restart should record a fresh PID")
	}
	// Next sweep is quiet again.
	if evs := mon.Check(); len(evs) != 0 {
		t.Errorf("post-restart check should be quiet: %v", evs)
	}
}

func TestCrashLoopMarksDegraded(t *testing.T) {
	d, m := setup(t)
	mon := New(d)
	mon.AutoRegister()
	drv, _ := d.Driver("web")

	kill := func() {
		t.Helper()
		pid, _ := drv.Ctx.PID("daemon")
		if err := m.KillProcess(pid); err != nil {
			t.Fatal(err)
		}
	}

	// The first MaxRestarts crashes are restarted, with doubling backoff.
	var backoffs []time.Duration
	for i := 0; i < mon.MaxRestarts; i++ {
		kill()
		evs := mon.Check()
		if len(evs) != 1 || !evs[0].Restarted || !evs[0].Crashed {
			t.Fatalf("crash %d: event = %+v", i+1, evs)
		}
		backoffs = append(backoffs, evs[0].Backoff)
	}
	for i := 1; i < len(backoffs); i++ {
		if backoffs[i] != 2*backoffs[i-1] {
			t.Errorf("backoff should double: %v", backoffs)
		}
	}

	// The next crash within the window exhausts the budget: degraded,
	// not restarted.
	kill()
	evs := mon.Check()
	if len(evs) != 1 || evs[0].Restarted || !evs[0].Degraded {
		t.Fatalf("crash-loop event = %+v", evs)
	}
	if m.Listening(9000) {
		t.Error("degraded service must not be restarted")
	}
	if got := mon.Degraded(); len(got) != 1 || got[0] != "web" {
		t.Errorf("Degraded() = %v", got)
	}
	sts := mon.Status()
	if len(sts) != 1 || !sts[0].Degraded {
		t.Errorf("status should surface degradation: %+v", sts)
	}
	// Degradation is sticky across sweeps...
	if evs := mon.Check(); len(evs) != 1 || evs[0].Restarted || !evs[0].Degraded {
		t.Errorf("degraded service must stay down: %+v", evs)
	}
	// ...until an operator forgives it.
	mon.ClearDegraded("web")
	if evs := mon.Check(); len(evs) != 1 || !evs[0].Restarted {
		t.Errorf("cleared service should restart again: %+v", evs)
	}
	if !m.Listening(9000) {
		t.Error("service should be back after ClearDegraded")
	}
}

func TestRestartBackoffExactVirtualTimes(t *testing.T) {
	d, m := setup(t)
	mon := New(d)
	mon.AutoRegister()
	mon.MaxRestarts = 10
	mon.Window = time.Hour // keep every restart inside one window
	drv, _ := d.Driver("web")
	clock := m.Clock()

	// Each consecutive crash within the window doubles the backoff:
	// 2s, 4s, 8s, 16s. The restart must fire at exactly t_crash +
	// backoff on the virtual clock.
	want := []time.Duration{2 * time.Second, 4 * time.Second, 8 * time.Second, 16 * time.Second}
	for i, wantBo := range want {
		pid, _ := drv.Ctx.PID("daemon")
		if err := m.KillProcess(pid); err != nil {
			t.Fatal(err)
		}
		t0 := clock.Now()
		evs := mon.Check()
		if len(evs) != 1 || !evs[0].Restarted {
			t.Fatalf("crash %d: event = %+v", i+1, evs)
		}
		if evs[0].Backoff != wantBo {
			t.Errorf("crash %d: backoff = %v, want %v", i+1, evs[0].Backoff, wantBo)
		}
		if wantAt := t0.Add(wantBo); !evs[0].At.Equal(wantAt) {
			t.Errorf("crash %d: restart at %v, want %v", i+1, evs[0].At, wantAt)
		}
	}
}

func TestClearDegradedReArmsAtBaseBackoff(t *testing.T) {
	d, m := setup(t)
	mon := New(d)
	mon.AutoRegister()
	drv, _ := d.Driver("web")
	clock := m.Clock()

	kill := func() {
		t.Helper()
		pid, _ := drv.Ctx.PID("daemon")
		if err := m.KillProcess(pid); err != nil {
			t.Fatal(err)
		}
	}
	// Exhaust the restart budget, then one more crash degrades.
	for i := 0; i < mon.MaxRestarts; i++ {
		kill()
		if evs := mon.Check(); len(evs) != 1 || !evs[0].Restarted {
			t.Fatalf("crash %d should restart: %+v", i+1, evs)
		}
	}
	kill()
	evs := mon.Check()
	if len(evs) != 1 || !evs[0].Degraded || evs[0].Restarted {
		t.Fatalf("budget exhausted: event = %+v", evs)
	}
	// Degraded observations carry the sweep's virtual time and do not
	// advance the clock.
	t0 := clock.Now()
	evs = mon.Check()
	if len(evs) != 1 || !evs[0].Degraded {
		t.Fatalf("degraded sweep: %+v", evs)
	}
	if !evs[0].At.Equal(t0) {
		t.Errorf("degraded event at %v, want sweep time %v", evs[0].At, t0)
	}
	if !clock.Now().Equal(t0) {
		t.Errorf("degraded sweep advanced the clock: %v -> %v", t0, clock.Now())
	}

	// Forgiveness drops the restart history: the next restart waits only
	// the base backoff again, at exactly t_clear + RestartBackoff.
	mon.ClearDegraded("web")
	t1 := clock.Now()
	evs = mon.Check()
	if len(evs) != 1 || !evs[0].Restarted {
		t.Fatalf("cleared service should restart: %+v", evs)
	}
	if evs[0].Backoff != mon.RestartBackoff {
		t.Errorf("re-armed backoff = %v, want base %v", evs[0].Backoff, mon.RestartBackoff)
	}
	if wantAt := t1.Add(mon.RestartBackoff); !evs[0].At.Equal(wantAt) {
		t.Errorf("re-armed restart at %v, want %v", evs[0].At, wantAt)
	}
}

func TestClearDegradedReentersProbeScheduleAtSuspect(t *testing.T) {
	d, m := setup(t)
	mon := New(d)
	mon.AutoRegister()
	drv, _ := d.Driver("web")
	clock := m.Clock()

	// Attach a probe schedule to the monitor loop and prove the service
	// healthy: one passing probe round promotes Suspect → Healthy.
	hc := health.NewChecker(clock)
	mon.Health = hc
	pid, _ := drv.Ctx.PID("daemon")
	hc.Track(health.Target{Instance: "web", Machine: m, PID: pid, Ports: []int{9000}},
		&resource.HealthSpec{
			Probes:           []string{resource.ProbePortOpen, resource.ProbeProcAlive},
			Interval:         30 * time.Second,
			Timeout:          time.Second,
			FailureThreshold: 3,
			SuccessThreshold: 2,
		})
	mon.Check()
	if st, _ := hc.State("web"); st != health.Healthy {
		t.Fatalf("setup: state = %v, want healthy", st)
	}

	kill := func() {
		t.Helper()
		pid, _ := drv.Ctx.PID("daemon")
		if err := m.KillProcess(pid); err != nil {
			t.Fatal(err)
		}
	}
	// Degrade the service: budget exhausted, monitor gives up.
	for i := 0; i < mon.MaxRestarts; i++ {
		kill()
		if evs := mon.Check(); len(evs) != 1 || !evs[0].Restarted {
			t.Fatalf("crash %d should restart: %+v", i+1, evs)
		}
	}
	kill()
	if evs := mon.Check(); len(evs) != 1 || !evs[0].Degraded {
		t.Fatal("budget should be exhausted")
	}

	// ClearDegraded must NOT forgive health: the instance re-enters the
	// probe schedule at Suspect, not Healthy.
	mon.ClearDegraded("web")
	if st, ok := hc.State("web"); !ok || st != health.Suspect {
		t.Fatalf("cleared instance = %v, want suspect", st)
	}

	// The next sweep both probes (immediately due after MarkSuspect) and
	// restarts at exactly the base backoff — the two are independent:
	// the probe fires at sweep time, before the restart charges backoff.
	t0 := clock.Now()
	evs := mon.Check()
	if len(evs) != 1 || !evs[0].Restarted {
		t.Fatalf("cleared service should restart: %+v", evs)
	}
	if evs[0].Backoff != mon.RestartBackoff {
		t.Errorf("re-armed backoff = %v, want base %v", evs[0].Backoff, mon.RestartBackoff)
	}
	if wantAt := t0.Add(mon.RestartBackoff); !evs[0].At.Equal(wantAt) {
		t.Errorf("re-armed restart at %v, want %v", evs[0].At, wantAt)
	}
	// That probe round ran against the dead PID, so the instance stays
	// Suspect; after the restart is re-tracked and a round passes, it is
	// Healthy again.
	if st, _ := hc.State("web"); st == health.Healthy {
		t.Error("instance must not read healthy before passing a probe round")
	}
	newPID, _ := drv.Ctx.PID("daemon")
	hc.Track(health.Target{Instance: "web", Machine: m, PID: newPID, Ports: []int{9000}},
		&resource.HealthSpec{
			Probes:           []string{resource.ProbePortOpen, resource.ProbeProcAlive},
			Interval:         30 * time.Second,
			Timeout:          time.Second,
			FailureThreshold: 3,
			SuccessThreshold: 2,
		})
	clock.Advance(30 * time.Second)
	mon.Check()
	if st, _ := hc.State("web"); st != health.Healthy {
		t.Errorf("re-proved instance = %v, want healthy", st)
	}
}

func TestRestartBudgetRecoversOutsideWindow(t *testing.T) {
	d, m := setup(t)
	mon := New(d)
	mon.AutoRegister()
	drv, _ := d.Driver("web")

	kill := func() {
		t.Helper()
		pid, _ := drv.Ctx.PID("daemon")
		if err := m.KillProcess(pid); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < mon.MaxRestarts; i++ {
		kill()
		if evs := mon.Check(); len(evs) != 1 || !evs[0].Restarted {
			t.Fatalf("crash %d should restart: %+v", i+1, evs)
		}
	}
	// A crash after the window has passed starts a fresh budget.
	m.Clock().Advance(mon.Window)
	kill()
	if evs := mon.Check(); len(evs) != 1 || !evs[0].Restarted || evs[0].Degraded {
		t.Errorf("stale restarts must not count against the window: %+v", evs)
	}
}

func TestCheckSkipsInactiveServices(t *testing.T) {
	d, m := setup(t)
	mon := New(d)
	mon.AutoRegister()
	if err := d.Shutdown(); err != nil {
		t.Fatal(err)
	}
	// Process stopped by shutdown; driver is inactive — no restart.
	evs := mon.Check()
	for _, e := range evs {
		if e.Restarted {
			t.Errorf("inactive service must not be restarted: %+v", e)
		}
	}
	if m.Listening(9000) {
		t.Error("service should remain down")
	}
}

func TestWatchUnknownInstance(t *testing.T) {
	d, _ := setup(t)
	mon := New(d)
	if err := mon.Watch("ghost", "daemon"); err == nil {
		t.Error("unknown instance should error")
	}
	if err := mon.Watch("web", "daemon"); err != nil {
		t.Error(err)
	}
}

func TestWriteConfig(t *testing.T) {
	d, m := setup(t)
	mon := New(d)
	mon.AutoRegister()
	mon.WriteConfig()
	content, err := m.ReadFile("/etc/monit/monitrc")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(content, "check process web") {
		t.Errorf("monitrc = %q", content)
	}
}

func TestPluginFramework(t *testing.T) {
	// Wire the monit plugin into the deployment engine: registration
	// and config generation happen automatically at deploy time.
	reg, err := rdl.ParseAndResolve(map[string]string{"mon.rdl": monRDL})
	if err != nil {
		t.Fatal(err)
	}
	full := &spec.Full{Instances: []*spec.Instance{
		{ID: "m", Key: resource.MakeKey("Mac", "10.6"), Machine: "m"},
		{ID: "web", Key: resource.MakeKey("Webapp", "1.0"), Machine: "m", Inside: "m",
			Config: map[string]resource.Value{"port": resource.PortV(9100)},
			Deps:   []spec.DepLink{{Class: resource.DepInside, Target: "m"}}},
	}}
	dr := deploy.NewDriverRegistry()
	dr.RegisterName("Webapp", func(ctx *driver.Context) *driver.StateMachine {
		spawn := func(c *driver.Context) error {
			p, err := c.Machine.StartProcess("webapp", "webapp", c.Instance.Config["port"].Int)
			if err != nil {
				return err
			}
			c.PutPID("daemon", p.PID)
			return nil
		}
		return driver.ServiceMachine(nil, spawn, func(c *driver.Context) error {
			pid, _ := c.PID("daemon")
			return c.Machine.StopProcess(pid)
		}, spawn, nil)
	})
	plugin := &Plugin{}
	w := machine.NewWorld()
	d, err := deploy.New(full, deploy.Options{
		Registry: reg, Drivers: dr, World: w,
		ProvisionMissing: true, Plugins: []deploy.Plugin{plugin},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Deploy(); err != nil {
		t.Fatal(err)
	}
	if plugin.Monitor == nil {
		t.Fatal("plugin should have built a monitor")
	}
	if got := plugin.Monitor.Watched(); len(got) != 1 || got[0] != "web" {
		t.Errorf("Watched = %v", got)
	}
	m, _ := w.Machine("m")
	if content, err := m.ReadFile("/etc/monit/monitrc"); err != nil || !strings.Contains(content, "web") {
		t.Errorf("monitrc = %q, %v", content, err)
	}
	if err := d.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if plugin.Monitor != nil {
		t.Error("plugin should drop the monitor after shutdown")
	}
}
