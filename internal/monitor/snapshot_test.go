package monitor

import (
	"testing"
	"time"
)

// TestFailedRestartsEscalate pins the failure-escalation half of the
// backoff counter: a restart action that keeps failing (here: an
// impostor process squatting on the service's port) must double the
// backoff per attempt and eventually degrade the service, not retry at
// the base backoff forever.
func TestFailedRestartsEscalate(t *testing.T) {
	d, m := setup(t)
	mon := New(d)
	mon.AutoRegister()
	drv, _ := d.Driver("web")

	pid, _ := drv.Ctx.PID("daemon")
	if err := m.KillProcess(pid); err != nil {
		t.Fatal(err)
	}
	// Squat on the port so every restart attempt fails to bind.
	blocker, err := m.StartProcess("blocker", "blocker", 9000)
	if err != nil {
		t.Fatal(err)
	}

	wantBackoffs := []time.Duration{2 * time.Second, 4 * time.Second, 8 * time.Second}
	for i, want := range wantBackoffs {
		evs := mon.Check()
		if len(evs) != 1 || evs[0].Restarted || evs[0].Err == nil {
			t.Fatalf("attempt %d: want a failed restart, got %+v", i+1, evs)
		}
		if evs[0].Backoff != want {
			t.Errorf("attempt %d: backoff = %v, want %v (failures must escalate)",
				i+1, evs[0].Backoff, want)
		}
	}

	// The budget is exhausted by failures alone: degraded, no restart.
	evs := mon.Check()
	if len(evs) != 1 || !evs[0].Degraded || evs[0].Restarted {
		t.Fatalf("after %d failed restarts: event = %+v", len(wantBackoffs), evs)
	}

	// ClearDegraded resets the failure counter too: with the port free
	// again, the next restart fires at the base backoff and succeeds.
	mon.ClearDegraded("web")
	if err := m.KillProcess(blocker.PID); err != nil {
		t.Fatal(err)
	}
	evs = mon.Check()
	if len(evs) != 1 || !evs[0].Restarted || evs[0].Err != nil {
		t.Fatalf("after forgiveness: event = %+v", evs)
	}
	if evs[0].Backoff != mon.RestartBackoff {
		t.Errorf("forgiven backoff = %v, want base %v (failure counter must reset)",
			evs[0].Backoff, mon.RestartBackoff)
	}
	if !m.Listening(9000) {
		t.Error("service should be back on its port")
	}
}

// TestSnapshot pins the reconciler's view of the monitor: per-service
// restart/degraded bookkeeping, read without restarting anything or
// advancing the virtual clock.
func TestSnapshot(t *testing.T) {
	d, m := setup(t)
	mon := New(d)
	mon.AutoRegister()
	drv, _ := d.Driver("web")
	clock := m.Clock()

	// Healthy: running, no restarts, level 0.
	st, ok := mon.Snapshot()["web"]
	if !ok {
		t.Fatal("snapshot should cover the watched service")
	}
	if !st.Running || st.Degraded || st.RestartsInWindow != 0 || st.BackoffLevel != 0 {
		t.Errorf("healthy snapshot = %+v", st)
	}

	// One crash-and-restart: one restart in the window, level 1.
	pid, _ := drv.Ctx.PID("daemon")
	if err := m.KillProcess(pid); err != nil {
		t.Fatal(err)
	}
	if evs := mon.Check(); len(evs) != 1 || !evs[0].Restarted {
		t.Fatalf("restart sweep: %+v", evs)
	}
	st = mon.Snapshot()["web"]
	if !st.Running || st.RestartsInWindow != 1 || st.BackoffLevel != 1 || st.FailedRestarts != 0 {
		t.Errorf("post-restart snapshot = %+v", st)
	}

	// A failed restart shows up in FailedRestarts and the level.
	pid, _ = drv.Ctx.PID("daemon")
	if err := m.KillProcess(pid); err != nil {
		t.Fatal(err)
	}
	if _, err := m.StartProcess("blocker", "blocker", 9000); err != nil {
		t.Fatal(err)
	}
	if evs := mon.Check(); len(evs) != 1 || evs[0].Err == nil {
		t.Fatalf("blocked restart sweep: %+v", evs)
	}
	t0 := clock.Now()
	st = mon.Snapshot()["web"]
	if st.Running || st.FailedRestarts != 1 || st.BackoffLevel != 2 {
		t.Errorf("post-failure snapshot = %+v", st)
	}
	if !clock.Now().Equal(t0) {
		t.Errorf("Snapshot advanced the clock: %v -> %v", t0, clock.Now())
	}

	// Degradation is surfaced.
	for i := 0; i < mon.MaxRestarts; i++ {
		mon.Check()
	}
	st = mon.Snapshot()["web"]
	if !st.Degraded {
		t.Errorf("degraded snapshot = %+v", st)
	}
}
