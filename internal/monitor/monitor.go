// Package monitor implements Engage's monitoring integration (§5.2,
// "Installation, Monitoring, and Shutdown"): a monit-style process
// watcher. The runtime registers each service process with the monitor;
// Check sweeps the watched processes, and when a service's process has
// died while its driver believes it active, the monitor restarts it via
// the driver's restart action — the paper's "if the process associated
// with a service fails, it will be automatically restarted by monit
// using a set of runtime services provided by Engage".
package monitor

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"engage/internal/deploy"
	"engage/internal/driver"
	"engage/internal/health"
	"engage/internal/machine"
	"engage/internal/telemetry"
)

// Monitor watches the service processes of one deployment. Restarts
// are rate-limited: each consecutive restart of the same service within
// Window doubles a virtual-time backoff, and once a service has been
// restarted MaxRestarts times within Window it is declared crash-looping
// — the monitor stops restarting it and reports it degraded instead of
// burning restarts forever (monit's "timeout" clause).
type Monitor struct {
	// MaxRestarts is how many restarts within Window mark a service
	// degraded (default 3).
	MaxRestarts int
	// Window is the virtual-time window over which restarts are counted
	// (default 10 minutes).
	Window time.Duration
	// RestartBackoff is the virtual-time wait before the first restart;
	// it doubles for each additional restart within the window
	// (default 2s).
	RestartBackoff time.Duration
	// Tracer, when non-nil, emits "monitor.restart" and
	// "monitor.degraded" events stamped with the virtual clock.
	Tracer *telemetry.Tracer
	// Metrics, when non-nil, counts restarts, restart failures, and
	// degradations.
	Metrics *telemetry.Registry
	// Health, when non-nil, is the probe scheduler ticked by every Check
	// sweep: monitoring and health probing share the monitor loop (and
	// therefore the virtual clock). A service cleared from degraded
	// re-enters the probe schedule at Suspect — it must prove itself
	// healthy again rather than being assumed so.
	Health *health.Checker

	dep      *deploy.Deployment
	watched  map[string]string      // instance ID → scratch PID name
	restarts map[string][]time.Time // instance ID → restart times (virtual)
	failures map[string]int         // instance ID → consecutive failed restarts
	degraded map[string]bool        // instance ID → crash-looping
}

// New returns a monitor over a deployment.
func New(dep *deploy.Deployment) *Monitor {
	return &Monitor{
		MaxRestarts:    3,
		Window:         10 * time.Minute,
		RestartBackoff: 2 * time.Second,
		dep:            dep,
		watched:        make(map[string]string),
		restarts:       make(map[string][]time.Time),
		failures:       make(map[string]int),
		degraded:       make(map[string]bool),
	}
}

// Watch registers an instance whose driver records its daemon PID in
// scratch under pidName (conventionally "daemon").
func (m *Monitor) Watch(instanceID, pidName string) error {
	if _, ok := m.dep.Driver(instanceID); !ok {
		return fmt.Errorf("monitor: unknown instance %q", instanceID)
	}
	m.watched[instanceID] = pidName
	return nil
}

// AutoRegister watches every instance whose driver has recorded a
// "daemon" PID; called after deployment, it mirrors the paper's plugin
// that adds monitoring for each installed service automatically.
func (m *Monitor) AutoRegister() int {
	n := 0
	for _, inst := range m.dep.Instances() {
		drv, ok := m.dep.Driver(inst.ID)
		if !ok {
			continue
		}
		if _, ok := drv.Ctx.PID("daemon"); ok {
			m.watched[inst.ID] = "daemon"
			n++
		}
	}
	return n
}

// Watched lists watched instance IDs, sorted.
func (m *Monitor) Watched() []string {
	out := make([]string, 0, len(m.watched))
	for id := range m.watched {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Event records one monitoring observation.
type Event struct {
	Instance string
	PID      int
	Dead     bool
	// At is the virtual time of the observation — for restarts, the
	// moment the restart fired (after its backoff).
	At        time.Time
	Restarted bool
	// Crashed reports the process died abnormally (killed / non-zero
	// exit) rather than via a clean stop.
	Crashed bool
	// Degraded reports the service is crash-looping: it exhausted
	// MaxRestarts within Window and was NOT restarted.
	Degraded bool
	// Backoff is the virtual time waited before this restart.
	Backoff time.Duration
	Err     error
}

// Check sweeps the watched services once: every watched instance whose
// driver is active but whose process is gone is restarted through its
// driver, after a doubling virtual-time backoff. A service restarted
// MaxRestarts times within Window is marked degraded and no longer
// restarted (see Degraded / ClearDegraded). It returns an event per
// dead process found.
func (m *Monitor) Check() []Event {
	if m.Health != nil {
		// Probes ride the monitor sweep: due entries fire at the current
		// virtual instant, before restart decisions charge any backoff.
		m.Health.Tick()
	}
	var events []Event
	ids := m.Watched()
	for _, id := range ids {
		pidName := m.watched[id]
		drv, ok := m.dep.Driver(id)
		if !ok {
			continue
		}
		pid, ok := drv.Ctx.PID(pidName)
		if !ok {
			continue
		}
		if drv.Ctx.Machine.Running(pid) {
			continue
		}
		clock := drv.Ctx.Machine.Clock()
		ev := Event{Instance: id, PID: pid, Dead: true, At: clock.Now()}
		if _, killed, ok := drv.Ctx.Machine.ExitInfo(pid); ok {
			ev.Crashed = killed
		}
		if m.degraded[id] {
			ev.Degraded = true
			events = append(events, ev)
			continue
		}
		if drv.State() == driver.Active {
			// The backoff counter: restarts within the window plus
			// consecutive failed restart attempts, so a restart action
			// that keeps failing escalates (and eventually degrades)
			// instead of retrying at the base backoff forever.
			recent := m.recentRestarts(id, clock.Now())
			level := len(recent) + m.failures[id]
			if level >= m.MaxRestarts {
				m.degraded[id] = true
				ev.Degraded = true
				m.Tracer.Event("monitor.degraded").
					Str("instance", id).Int("pid", int64(pid)).
					Int("restarts_in_window", int64(len(recent))).Emit()
				m.Metrics.Counter("monitor.degradations").Inc()
				events = append(events, ev)
				continue
			}
			// Consecutive restarts back off exponentially so a flapping
			// service doesn't spin the monitor.
			ev.Backoff = m.RestartBackoff << uint(level)
			clock.Advance(ev.Backoff)
			ev.At = clock.Now()
			err := drv.Fire("restart", m.dep)
			if err != nil {
				ev.Err = err
				m.failures[id]++
				m.Metrics.Counter("monitor.restart_failures").Inc()
			} else {
				ev.Restarted = true
				delete(m.failures, id)
				m.restarts[id] = append(recent, clock.Now())
				m.Metrics.Counter("monitor.restarts").Inc()
			}
			if m.Tracer != nil {
				tev := m.Tracer.Event("monitor.restart").
					Str("instance", id).Int("pid", int64(pid)).
					Dur("backoff", ev.Backoff).Bool("crashed", ev.Crashed).
					Bool("ok", err == nil)
				if err != nil {
					tev.Str("error", err.Error())
				}
				tev.Emit()
			}
		}
		events = append(events, ev)
	}
	return events
}

// recentRestarts prunes the restart history of a service to the sliding
// window ending now and returns what remains.
func (m *Monitor) recentRestarts(id string, now time.Time) []time.Time {
	var recent []time.Time
	for _, t := range m.restarts[id] {
		if m.Window <= 0 || now.Sub(t) < m.Window {
			recent = append(recent, t)
		}
	}
	m.restarts[id] = recent
	return recent
}

// Degraded lists crash-looping services (restart budget exhausted),
// sorted.
func (m *Monitor) Degraded() []string {
	var out []string
	for id, d := range m.degraded {
		if d {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// ClearDegraded forgives a degraded service (say, after an operator or
// the reconciler fixed its configuration): its restart history AND its
// backoff counter — including the failed-restart escalation — are
// reset, so the monitor resumes restarting it at the base backoff. The
// forgiveness does not extend to health: if the service is probed, it
// re-enters the schedule at Suspect and must pass a probe round before
// it reads Healthy again.
func (m *Monitor) ClearDegraded(id string) {
	delete(m.degraded, id)
	delete(m.restarts, id)
	delete(m.failures, id)
	if m.Health != nil {
		m.Health.MarkSuspect(id)
	}
	m.Tracer.Event("monitor.cleared").Str("instance", id).Emit()
}

// ProcessState is one watched service's restart bookkeeping, as a
// reconciler needs it: a crash-looping (degraded) instance calls for
// replacement, a transiently restarting one (some restarts in the
// window, process currently running) should be left alone.
type ProcessState struct {
	Instance string
	PID      int
	Running  bool
	// Degraded reports the restart budget is exhausted: the monitor
	// has given up and an external repair must step in.
	Degraded bool
	// RestartsInWindow counts successful restarts within Window.
	RestartsInWindow int
	// FailedRestarts counts consecutive failed restart attempts.
	FailedRestarts int
	// BackoffLevel is the exponent of the next restart's wait: the
	// monitor would wait RestartBackoff << BackoffLevel.
	BackoffLevel int
}

// Snapshot captures every watched service's restart/degraded state
// without restarting anything or advancing the virtual clock.
func (m *Monitor) Snapshot() map[string]ProcessState {
	out := make(map[string]ProcessState, len(m.watched))
	for _, id := range m.Watched() {
		drv, ok := m.dep.Driver(id)
		if !ok {
			continue
		}
		st := ProcessState{Instance: id, Degraded: m.degraded[id], FailedRestarts: m.failures[id]}
		if pid, ok := drv.Ctx.PID(m.watched[id]); ok {
			st.PID = pid
			st.Running = drv.Ctx.Machine.Running(pid)
		}
		st.RestartsInWindow = len(m.recentRestarts(id, drv.Ctx.Machine.Clock().Now()))
		st.BackoffLevel = st.RestartsInWindow + st.FailedRestarts
		out[id] = st
	}
	return out
}

// ServiceStatus is the user-visible status of one watched service (the
// paper: "users can view the status and resource usage of each
// installed service").
type ServiceStatus struct {
	Instance string
	PID      int
	Running  bool
	Uptime   time.Duration
	MemMB    int
	State    driver.State
	// Degraded reports the service is crash-looping and no longer being
	// restarted.
	Degraded bool
}

// Status reports every watched service's status, sorted by instance.
func (m *Monitor) Status() []ServiceStatus {
	var out []ServiceStatus
	for _, id := range m.Watched() {
		drv, ok := m.dep.Driver(id)
		if !ok {
			continue
		}
		st := ServiceStatus{Instance: id, State: drv.State(), Degraded: m.degraded[id]}
		if pid, ok := drv.Ctx.PID(m.watched[id]); ok {
			st.PID = pid
			st.Running = drv.Ctx.Machine.Running(pid)
			if proc, found := findProc(drv, pid); found && st.Running {
				st.Uptime = drv.Ctx.Machine.Clock().Since(proc.Started)
				st.MemMB = proc.MemMB
			}
		}
		out = append(out, st)
	}
	return out
}

func findProc(drv *driver.Driver, pid int) (*machine.Process, bool) {
	for _, p := range drv.Ctx.Machine.Processes() {
		if p.PID == pid {
			return p, true
		}
	}
	return nil, false
}

// Plugin adapts the monitor to the deployment engine's plugin framework
// (§5.2): after a deployment completes, every daemon-backed service is
// auto-registered and the monit configuration written to each host;
// after shutdown the registrations are dropped.
type Plugin struct {
	// Monitor is populated by AfterDeploy; callers keep the plugin and
	// read the monitor from it.
	Monitor *Monitor
}

// Name implements deploy.Plugin.
func (*Plugin) Name() string { return "monit" }

// AfterDeploy implements deploy.Plugin.
func (p *Plugin) AfterDeploy(d *deploy.Deployment) error {
	p.Monitor = New(d)
	p.Monitor.AutoRegister()
	return p.Monitor.WriteConfig()
}

// AfterShutdown implements deploy.Plugin.
func (p *Plugin) AfterShutdown(*deploy.Deployment) error {
	p.Monitor = nil
	return nil
}

var _ deploy.Plugin = (*Plugin)(nil)

// WriteConfig writes a monit-style configuration file to each machine
// hosting watched services, mirroring the paper's generated monit
// configuration registered with the daemon.
func (m *Monitor) WriteConfig() error {
	perMachine := make(map[string][]string)
	for _, id := range m.Watched() {
		drv, ok := m.dep.Driver(id)
		if !ok {
			continue
		}
		name := drv.Ctx.Machine.Name
		perMachine[name] = append(perMachine[name], fmt.Sprintf("check process %s", id))
	}
	for _, id := range m.Watched() {
		drv, _ := m.dep.Driver(id)
		name := drv.Ctx.Machine.Name
		lines := perMachine[name]
		sort.Strings(lines)
		if err := drv.Ctx.Machine.WriteFile("/etc/monit/monitrc", strings.Join(lines, "\n")+"\n"); err != nil {
			return err
		}
	}
	return nil
}
