// Package monitor implements Engage's monitoring integration (§5.2,
// "Installation, Monitoring, and Shutdown"): a monit-style process
// watcher. The runtime registers each service process with the monitor;
// Check sweeps the watched processes, and when a service's process has
// died while its driver believes it active, the monitor restarts it via
// the driver's restart action — the paper's "if the process associated
// with a service fails, it will be automatically restarted by monit
// using a set of runtime services provided by Engage".
package monitor

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"engage/internal/deploy"
	"engage/internal/driver"
	"engage/internal/machine"
)

// Monitor watches the service processes of one deployment.
type Monitor struct {
	dep     *deploy.Deployment
	watched map[string]string // instance ID → scratch PID name
}

// New returns a monitor over a deployment.
func New(dep *deploy.Deployment) *Monitor {
	return &Monitor{dep: dep, watched: make(map[string]string)}
}

// Watch registers an instance whose driver records its daemon PID in
// scratch under pidName (conventionally "daemon").
func (m *Monitor) Watch(instanceID, pidName string) error {
	if _, ok := m.dep.Driver(instanceID); !ok {
		return fmt.Errorf("monitor: unknown instance %q", instanceID)
	}
	m.watched[instanceID] = pidName
	return nil
}

// AutoRegister watches every instance whose driver has recorded a
// "daemon" PID; called after deployment, it mirrors the paper's plugin
// that adds monitoring for each installed service automatically.
func (m *Monitor) AutoRegister() int {
	n := 0
	for _, inst := range m.dep.Instances() {
		drv, ok := m.dep.Driver(inst.ID)
		if !ok {
			continue
		}
		if _, ok := drv.Ctx.PID("daemon"); ok {
			m.watched[inst.ID] = "daemon"
			n++
		}
	}
	return n
}

// Watched lists watched instance IDs, sorted.
func (m *Monitor) Watched() []string {
	out := make([]string, 0, len(m.watched))
	for id := range m.watched {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Event records one monitoring observation.
type Event struct {
	Instance  string
	PID       int
	Dead      bool
	Restarted bool
	Err       error
}

// Check sweeps the watched services once: every watched instance whose
// driver is active but whose process is gone is restarted through its
// driver. It returns an event per dead process found.
func (m *Monitor) Check() []Event {
	var events []Event
	ids := m.Watched()
	for _, id := range ids {
		pidName := m.watched[id]
		drv, ok := m.dep.Driver(id)
		if !ok {
			continue
		}
		pid, ok := drv.Ctx.PID(pidName)
		if !ok {
			continue
		}
		if drv.Ctx.Machine.Running(pid) {
			continue
		}
		ev := Event{Instance: id, PID: pid, Dead: true}
		if drv.State() == driver.Active {
			if err := drv.Fire("restart", m.dep); err != nil {
				ev.Err = err
			} else {
				ev.Restarted = true
			}
		}
		events = append(events, ev)
	}
	return events
}

// ServiceStatus is the user-visible status of one watched service (the
// paper: "users can view the status and resource usage of each
// installed service").
type ServiceStatus struct {
	Instance string
	PID      int
	Running  bool
	Uptime   time.Duration
	MemMB    int
	State    driver.State
}

// Status reports every watched service's status, sorted by instance.
func (m *Monitor) Status() []ServiceStatus {
	var out []ServiceStatus
	for _, id := range m.Watched() {
		drv, ok := m.dep.Driver(id)
		if !ok {
			continue
		}
		st := ServiceStatus{Instance: id, State: drv.State()}
		if pid, ok := drv.Ctx.PID(m.watched[id]); ok {
			st.PID = pid
			st.Running = drv.Ctx.Machine.Running(pid)
			if proc, found := findProc(drv, pid); found && st.Running {
				st.Uptime = drv.Ctx.Machine.Clock().Since(proc.Started)
				st.MemMB = proc.MemMB
			}
		}
		out = append(out, st)
	}
	return out
}

func findProc(drv *driver.Driver, pid int) (*machine.Process, bool) {
	for _, p := range drv.Ctx.Machine.Processes() {
		if p.PID == pid {
			return p, true
		}
	}
	return nil, false
}

// Plugin adapts the monitor to the deployment engine's plugin framework
// (§5.2): after a deployment completes, every daemon-backed service is
// auto-registered and the monit configuration written to each host;
// after shutdown the registrations are dropped.
type Plugin struct {
	// Monitor is populated by AfterDeploy; callers keep the plugin and
	// read the monitor from it.
	Monitor *Monitor
}

// Name implements deploy.Plugin.
func (*Plugin) Name() string { return "monit" }

// AfterDeploy implements deploy.Plugin.
func (p *Plugin) AfterDeploy(d *deploy.Deployment) error {
	p.Monitor = New(d)
	p.Monitor.AutoRegister()
	p.Monitor.WriteConfig()
	return nil
}

// AfterShutdown implements deploy.Plugin.
func (p *Plugin) AfterShutdown(*deploy.Deployment) error {
	p.Monitor = nil
	return nil
}

var _ deploy.Plugin = (*Plugin)(nil)

// WriteConfig writes a monit-style configuration file to each machine
// hosting watched services, mirroring the paper's generated monit
// configuration registered with the daemon.
func (m *Monitor) WriteConfig() {
	perMachine := make(map[string][]string)
	for _, id := range m.Watched() {
		drv, ok := m.dep.Driver(id)
		if !ok {
			continue
		}
		name := drv.Ctx.Machine.Name
		perMachine[name] = append(perMachine[name], fmt.Sprintf("check process %s", id))
	}
	for _, id := range m.Watched() {
		drv, _ := m.dep.Driver(id)
		name := drv.Ctx.Machine.Name
		lines := perMachine[name]
		sort.Strings(lines)
		drv.Ctx.Machine.WriteFile("/etc/monit/monitrc", strings.Join(lines, "\n")+"\n")
	}
}
