package store

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"engage/internal/resource"
	"engage/internal/spec"
	"engage/internal/stack"
)

// testStack builds a minimal but valid stack record for store entries.
func testStack(version int) *stack.Stack {
	full := &spec.Full{}
	full.Instances = append(full.Instances, &spec.Instance{
		ID: "server", Key: resource.MakeKey("Linux", "1.0"), Machine: "server",
	})
	return &stack.Stack{
		Name:    "web",
		Version: version,
		Desired: full,
		Bindings: map[string]stack.Binding{
			"server": {Instance: "server", Machine: "server", ManifestPath: "/etc/engage/stacks/web/server.conf"},
		},
	}
}

func TestCASCreateUpdateConflict(t *testing.T) {
	s := New()
	if _, ok := s.Get("web"); ok {
		t.Fatal("empty store has a record")
	}

	rec, err := s.CompareAndSwap("web", 0, "applied", testStack(1))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Version != 1 || rec.Seq != 1 {
		t.Fatalf("created record = v%d seq%d, want v1 seq1", rec.Version, rec.Seq)
	}

	// Re-creating (expect 0) conflicts now.
	_, err = s.CompareAndSwap("web", 0, "applied", testStack(1))
	var conflict *ConflictError
	if !errors.As(err, &conflict) || conflict.Have != 1 || conflict.Want != 0 {
		t.Fatalf("create-over-existing: err = %v, want ConflictError{Have:1,Want:0}", err)
	}

	// Updating with the right token works and bumps the version.
	rec, err = s.CompareAndSwap("web", 1, "applied", testStack(2))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Version != 2 {
		t.Fatalf("updated record = v%d, want v2", rec.Version)
	}

	// A stale token conflicts and changes nothing.
	_, err = s.CompareAndSwap("web", 1, "applied", testStack(3))
	if !errors.As(err, &conflict) || conflict.Have != 2 {
		t.Fatalf("stale CAS: err = %v, want ConflictError{Have:2}", err)
	}
	if got, _ := s.Get("web"); got.Stack.Version != 2 {
		t.Fatalf("failed CAS mutated the record: stack v%d", got.Stack.Version)
	}
}

func TestDelete(t *testing.T) {
	s := New()
	if _, err := s.CompareAndSwap("web", 0, "applied", testStack(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("web", 7); err == nil {
		t.Fatal("stale delete succeeded")
	}
	if err := s.Delete("web", 1); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("store has %d records after delete", s.Len())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := New()
	for i, name := range []string{"api", "web", "worker"} {
		if _, err := s.CompareAndSwap(name, 0, "applied", testStack(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq() != s.Seq() || got.Len() != s.Len() {
		t.Fatalf("round trip: seq %d len %d, want seq %d len %d",
			got.Seq(), got.Len(), s.Seq(), s.Len())
	}
	// CAS tokens resume where the flush left off.
	if _, err := got.CompareAndSwap("web", 1, "applied", testStack(9)); err != nil {
		t.Fatal(err)
	}
	// Each flushed record's stack is readable on its own via
	// stack.ReadStack — the CLI -state contract.
	rec, _ := got.Get("api")
	var one bytes.Buffer
	if err := rec.Stack.WriteJSON(&one); err != nil {
		t.Fatal(err)
	}
	st, err := stack.ReadStack(&one)
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != rec.Stack.Name || st.Version != rec.Stack.Version {
		t.Fatalf("stack round trip: %s v%d", st.Name, st.Version)
	}
}

func TestReadStoreRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		`{"seq":1,"records":[{"version":1}]}`,        // nameless record
		`{"seq":1,"records":[{"name":"w"}]}`,         // non-positive version
		`{"seq":1,"records":[{"name":"w","version":`, // truncated
	} {
		if _, err := ReadStore(bytes.NewReader([]byte(bad))); err == nil {
			t.Errorf("ReadStore(%q) accepted malformed input", bad)
		}
	}
}

// TestConcurrentCASLosesNothing races writers CAS-looping on one name
// and on private names: the store must hand out each version of the
// shared record exactly once, and the final sequence must equal the
// number of successes — no update is lost, none double-counted.
func TestConcurrentCASLosesNothing(t *testing.T) {
	const writers = 16
	const perWriter = 50

	s := New()
	var mu sync.Mutex
	seen := make(map[int64]int) // shared-record version -> times granted
	successes := 0

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			private := fmt.Sprintf("private-%d", w)
			for i := 0; i < perWriter; i++ {
				// CAS-loop on the shared record until one update lands.
				for {
					expect := s.Version("shared")
					rec, err := s.CompareAndSwap("shared", expect, "applied", testStack(1))
					if err == nil {
						mu.Lock()
						seen[rec.Version]++
						successes++
						mu.Unlock()
						break
					}
					var conflict *ConflictError
					if !errors.As(err, &conflict) {
						t.Errorf("unexpected CAS error: %v", err)
						return
					}
				}
				// And an uncontended private update.
				if _, err := s.CompareAndSwap(private, int64(i), "applied", testStack(1)); err != nil {
					t.Errorf("private CAS: %v", err)
					return
				}
				mu.Lock()
				successes++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	want := int64(writers * perWriter)
	if got := s.Version("shared"); got != want {
		t.Errorf("shared record version = %d, want %d", got, want)
	}
	for v := int64(1); v <= want; v++ {
		if seen[v] != 1 {
			t.Errorf("shared version %d granted %d times, want exactly once", v, seen[v])
		}
	}
	if got := s.Seq(); got != int64(successes) {
		t.Errorf("global seq = %d, want %d successful updates", got, successes)
	}
}
