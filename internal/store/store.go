// Package store is the control plane's resident deployment store: a
// thread-safe, versioned map of named stack records with optimistic
// concurrency. Every record carries a monotonically increasing version
// — the compare-and-swap token — and updates name the version they
// expect; a mismatch is a ConflictError, which the API layer surfaces
// as HTTP 409 so racing clients retry against fresh state instead of
// silently clobbering each other (the influxdb pkger "stacks" model,
// with etcd-style mod-revision CAS in place of last-write-wins).
//
// The store also keeps a global apply sequence so tests can prove no
// successful update is ever lost: the number of successful CAS calls
// equals the final sequence, and every success observed a distinct
// version.
package store

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"engage/internal/stack"
)

// Record is one versioned entry: the stack's desired-state record plus
// the store's own CAS bookkeeping. Version is the CAS token and
// increments on every successful update — including a no-op re-apply
// that leaves stack.Stack.Version alone, so "somebody applied since I
// read" is always detectable. Seq is the global apply sequence at the
// time of the update.
type Record struct {
	Name    string       `json:"name"`
	Version int64        `json:"version"`
	Seq     int64        `json:"seq"`
	Status  string       `json:"status,omitempty"`
	Stack   *stack.Stack `json:"stack,omitempty"`
}

// ConflictError reports a compare-and-swap whose expected version no
// longer matches the stored one.
type ConflictError struct {
	Name string
	Have int64 // current stored version (0 = record absent)
	Want int64 // version the caller expected
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("store: stack %q is at version %d, not %d (concurrent update)",
		e.Name, e.Have, e.Want)
}

// Store is the concurrent record map. The zero value is not usable;
// construct with New.
type Store struct {
	mu   sync.RWMutex
	recs map[string]Record
	seq  int64
}

// New returns an empty store.
func New() *Store {
	return &Store{recs: make(map[string]Record)}
}

// Get returns the named record.
func (s *Store) Get(name string) (Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.recs[name]
	return r, ok
}

// Version returns the named record's current CAS version (0 = absent).
func (s *Store) Version(name string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.recs[name].Version
}

// Len returns the number of records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.recs)
}

// Seq returns the global apply sequence: the count of successful
// CompareAndSwap calls over the store's lifetime (loads included).
func (s *Store) Seq() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.seq
}

// List returns all records sorted by name.
func (s *Store) List() []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Record, 0, len(s.recs))
	for _, r := range s.recs { //engage:maporder — collected then sorted below
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CompareAndSwap installs a new record body for name iff the stored
// version still equals expect (0 = record must be absent). On success
// the stored version becomes expect+1 and the updated record is
// returned; on mismatch nothing changes and the error is a
// *ConflictError carrying the current version.
func (s *Store) CompareAndSwap(name string, expect int64, status string, st *stack.Stack) (Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	have := s.recs[name].Version
	if have != expect {
		return Record{}, &ConflictError{Name: name, Have: have, Want: expect}
	}
	s.seq++
	rec := Record{Name: name, Version: expect + 1, Seq: s.seq, Status: status, Stack: st}
	s.recs[name] = rec
	return rec, nil
}

// Delete removes the named record iff its version still equals expect.
func (s *Store) Delete(name string, expect int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	have := s.recs[name].Version
	if have != expect {
		return &ConflictError{Name: name, Have: have, Want: expect}
	}
	delete(s.recs, name)
	return nil
}

// fileJSON is the flush format: records sorted by name plus the global
// sequence, so a restarted server resumes CAS tokens exactly where the
// previous one stopped.
type fileJSON struct {
	Seq     int64    `json:"seq"`
	Records []Record `json:"records"`
}

// WriteJSON flushes the whole store as indented JSON. Each record's
// stack round-trips through the same spec/stack marshaling the CLI's
// `stack apply -state` file uses, so a single record extracted from the
// flush is readable by stack.ReadStack.
func (s *Store) WriteJSON(w io.Writer) error {
	s.mu.RLock()
	out := fileJSON{Seq: s.seq, Records: make([]Record, 0, len(s.recs))}
	for _, r := range s.recs { //engage:maporder — collected then sorted below
		out.Records = append(out.Records, r)
	}
	s.mu.RUnlock()
	sort.Slice(out.Records, func(i, j int) bool { return out.Records[i].Name < out.Records[j].Name })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadStore parses a flush written by WriteJSON.
func ReadStore(r io.Reader) (*Store, error) {
	var in fileJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("store: %v", err)
	}
	s := New()
	s.seq = in.Seq
	for _, rec := range in.Records {
		if rec.Name == "" {
			return nil, fmt.Errorf("store: record without a name")
		}
		if rec.Version <= 0 {
			return nil, fmt.Errorf("store: record %q has non-positive version %d", rec.Name, rec.Version)
		}
		s.recs[rec.Name] = rec
	}
	return s, nil
}
