package certify

import (
	"math/rand"
	"testing"

	"engage/internal/sat"
)

// randomCNF generates a random 3-CNF near the SAT/UNSAT threshold so
// the 100-seed sweep exercises both verdicts.
func randomCNF(rng *rand.Rand) *sat.Formula {
	nv := 20 + rng.Intn(30)
	nc := int(4.4 * float64(nv))
	f := sat.NewFormula(nv)
	for i := 0; i < nc; i++ {
		var c sat.Clause
		seen := map[int]bool{}
		for len(c) < 3 {
			v := 1 + rng.Intn(nv)
			if seen[v] {
				continue
			}
			seen[v] = true
			l := sat.Lit(v)
			if rng.Intn(2) == 1 {
				l = -l
			}
			c = append(c, l)
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

// mutateFlip returns a copy of the proof with one literal of one "a"
// lemma flipped; ok=false if no suitable lemma exists.
func mutateFlip(p *sat.Proof, rng *rand.Rand) (*sat.Proof, bool) {
	var adds []int
	for i := 0; i < p.Len(); i++ {
		if op, lits := p.Step(i); op == sat.ProofAdd && len(lits) > 0 {
			adds = append(adds, i)
		}
	}
	if len(adds) == 0 {
		return nil, false
	}
	target := adds[rng.Intn(len(adds))]
	out := sat.NewProof(0)
	for i := 0; i < p.Len(); i++ {
		op, lits := p.Step(i)
		if i == target {
			mut := append([]sat.Lit(nil), lits...)
			mut[rng.Intn(len(mut))] = mut[rng.Intn(len(mut))].Neg()
			out.Append(op, mut)
			continue
		}
		out.Append(op, lits)
	}
	return out, true
}

// mutateDrop returns a copy of the proof with one "a" lemma removed.
func mutateDrop(p *sat.Proof, rng *rand.Rand) (*sat.Proof, bool) {
	var adds []int
	for i := 0; i < p.Len(); i++ {
		if op, lits := p.Step(i); op == sat.ProofAdd && len(lits) > 0 {
			adds = append(adds, i)
		}
	}
	if len(adds) == 0 {
		return nil, false
	}
	target := adds[rng.Intn(len(adds))]
	out := sat.NewProof(0)
	for i := 0; i < p.Len(); i++ {
		if i == target {
			continue
		}
		op, lits := p.Step(i)
		out.Append(op, lits)
	}
	return out, true
}

// TestCheckerFuzz is the 100-seed certification sweep: for every random
// CNF, the checker must accept the solver's verdict — SAT by model
// evaluation, UNSAT by full RUP replay — and refute mutated claims.
// Guaranteed-invalid mutations (an injected non-RUP lemma, a model that
// falsifies a clause, an empty proof for a formula unit propagation
// cannot refute) must be rejected every time; flipped-literal and
// dropped-lemma mutations can occasionally leave a proof valid, so the
// sweep asserts they are refuted in aggregate.
func TestCheckerFuzz(t *testing.T) {
	var satSeeds, unsatSeeds int
	var flipTried, flipRejected, dropTried, dropRejected int

	for seed := int64(1); seed <= 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		f := randomCNF(rng)

		var res sat.Result
		if seed%3 == 0 {
			// Every third seed solves through the certified portfolio so
			// shared-proof logging (flush-before-publish, suppressed
			// deletes, loser discard) is fuzzed too.
			pr := sat.SolvePortfolioCertified(f, 4, 0)
			res = pr.Result
		} else {
			res = (&sat.CDCL{LogProof: true}).Solve(f)
		}

		switch res.Status {
		case sat.Sat:
			satSeeds++
			if err := CheckModel(f, res.Model); err != nil {
				t.Fatalf("seed %d: checker rejected a solver model: %v", seed, err)
			}
			// Flipped model literal chosen to falsify a clause: set every
			// literal of clause 0 false.
			bad := append([]bool(nil), res.Model...)
			for _, l := range f.Clauses[0] {
				bad[l.Var()] = l < 0
			}
			if err := CheckModel(f, bad); err == nil {
				t.Fatalf("seed %d: checker accepted a model that falsifies clause 0", seed)
			}

		case sat.Unsat:
			unsatSeeds++
			if res.Proof == nil {
				t.Fatalf("seed %d: UNSAT verdict carries no proof", seed)
			}
			if _, err := CheckUnsat(f, res.Proof); err != nil {
				t.Fatalf("seed %d: checker rejected a genuine UNSAT proof: %v", seed, err)
			}
			// Injected non-RUP lemma: always refuted.
			inj := sat.NewProof(0)
			inj.Append(sat.ProofAdd, []sat.Lit{sat.Lit(f.NumVars + 1)})
			for i := 0; i < res.Proof.Len(); i++ {
				op, lits := res.Proof.Step(i)
				inj.Append(op, lits)
			}
			if _, err := CheckUnsat(f, inj); err == nil {
				t.Fatalf("seed %d: checker accepted an injected non-RUP lemma", seed)
			}
			// Empty proof: must be refuted unless UP alone refutes f.
			if ch, err := Replay(f, nil); err == nil && !ch.ConflictUnder(nil) {
				if _, err := CheckUnsat(f, sat.NewProof(0)); err == nil {
					t.Fatalf("seed %d: checker accepted an empty proof", seed)
				}
			}
			// Flipped-literal and dropped-lemma mutations: aggregate.
			if mut, ok := mutateFlip(res.Proof, rng); ok {
				flipTried++
				if _, err := CheckUnsat(f, mut); err != nil {
					flipRejected++
				}
			}
			if mut, ok := mutateDrop(res.Proof, rng); ok {
				dropTried++
				if _, err := CheckUnsat(f, mut); err != nil {
					dropRejected++
				}
			}

		default:
			t.Fatalf("seed %d: solver returned %v", seed, res.Status)
		}

		// Assumption fuzz on satisfiable-leaning instances: solve under
		// random assumptions; an Unsat-with-core answer must check.
		inc := (&sat.CDCL{LogProof: true}).StartIncremental(f).(*sat.Incremental)
		var assumps []sat.Lit
		for v := 1; v <= f.NumVars; v++ {
			if rng.Intn(4) == 0 {
				l := sat.Lit(v)
				if rng.Intn(2) == 1 {
					l = -l
				}
				assumps = append(assumps, l)
			}
		}
		ares := inc.SolveAssuming(assumps)
		switch ares.Status {
		case sat.Sat:
			if err := CheckModelAssuming(f, ares.Model, assumps); err != nil {
				t.Fatalf("seed %d: checker rejected an assumption model: %v", seed, err)
			}
		case sat.Unsat:
			if ares.Core != nil {
				if _, err := CheckCore(f, ares.Proof, ares.Core); err != nil {
					t.Fatalf("seed %d: checker rejected a genuine core: %v", seed, err)
				}
			} else {
				if _, err := CheckUnsat(f, ares.Proof); err != nil {
					t.Fatalf("seed %d: checker rejected root UNSAT under assumptions: %v", seed, err)
				}
			}
		}
	}

	if satSeeds == 0 || unsatSeeds == 0 {
		t.Fatalf("fuzz sweep unbalanced: %d SAT, %d UNSAT seeds — tune the clause ratio", satSeeds, unsatSeeds)
	}
	if flipTried > 0 && flipRejected == 0 {
		t.Errorf("no flipped-literal mutation was refuted across %d tries", flipTried)
	}
	if dropTried > 0 && dropRejected == 0 {
		t.Errorf("no dropped-lemma mutation was refuted across %d tries", dropTried)
	}
	t.Logf("fuzz: %d SAT / %d UNSAT seeds; flip refuted %d/%d, drop refuted %d/%d",
		satSeeds, unsatSeeds, flipRejected, flipTried, dropRejected, dropTried)
}
