package certify

// Solver-free plan verification: re-validate a resolved full
// installation specification against the library and the partial
// specification it claims to extend, without trusting the constraint
// encoder, the SAT solver, or the propagation engine. The hypergraph is
// regenerated (the generator is a deterministic worklist — no search),
// the selection is checked directly against every hyperedge, the
// dependency closure and machine placement are re-derived from first
// principles, and every port value is confirmed to satisfy its defining
// equation. Findings surface as lint diagnostics under the plan-*
// codes.

import (
	"fmt"
	"sort"

	"engage/internal/hypergraph"
	"engage/internal/lint"
	"engage/internal/resource"
	"engage/internal/spec"
)

// planReport accumulates diagnostics with the fixed lint severities.
type planReport struct {
	diags []lint.Diagnostic
}

func (r *planReport) add(code, pos, subject, format string, args ...any) {
	sev, _ := lint.CodeSeverity(code)
	r.diags = append(r.diags, lint.Diagnostic{
		Code:     code,
		Severity: sev,
		Pos:      pos,
		Subject:  subject,
		Message:  fmt.Sprintf(format, args...),
	})
}

// CheckPlan re-validates a full installation specification. With a
// non-nil partial it regenerates the dependency hypergraph and checks
// the selection against every hyperedge constraint plus the config-port
// override discipline; with a nil partial (a bare record, e.g. a stack
// file without its source specification) those checks are skipped and
// only the self-contained invariants run: dependency closure, machine
// placement, and the port-propagation equations. An empty result means
// the plan is certified at the requested strength.
func CheckPlan(reg *resource.Registry, partial *spec.Partial, full *spec.Full) []lint.Diagnostic {
	r := &planReport{}

	byID := make(map[string]*spec.Instance, len(full.Instances))
	for _, inst := range full.Instances {
		if _, dup := byID[inst.ID]; dup {
			r.add(lint.CodePlanClosure, "", inst.ID, "duplicate instance %q in the full specification", inst.ID)
			continue
		}
		byID[inst.ID] = inst
	}

	checkClosure(reg, full, byID, r)
	checkPorts(reg, partial, full, byID, r)
	if partial != nil {
		checkSelection(reg, partial, full, byID, r)
	}
	return r.diags
}

// checkClosure verifies the specification is dependency-closed and
// placed consistently: every link lands on a present instance, every
// inside chain terminates in a machine, and each instance's recorded
// machine matches the chain.
func checkClosure(reg *resource.Registry, full *spec.Full, byID map[string]*spec.Instance, r *planReport) {
	for _, inst := range full.Instances {
		t, ok := reg.Lookup(inst.Key)
		if !ok {
			r.add(lint.CodePlanClosure, "", inst.ID, "instance %q has unknown resource type %q", inst.ID, inst.Key)
			continue
		}
		if t.Abstract {
			r.add(lint.CodePlanClosure, t.Origin, inst.ID, "instance %q instantiates abstract type %q", inst.ID, inst.Key)
		}
		if t.IsMachine() != (inst.Inside == "") {
			if t.IsMachine() {
				r.add(lint.CodePlanClosure, t.Origin, inst.ID, "machine instance %q claims container %q", inst.ID, inst.Inside)
			} else {
				r.add(lint.CodePlanClosure, t.Origin, inst.ID, "instance %q of type %q has no container", inst.ID, inst.Key)
			}
		}
		if inst.Inside != "" {
			if _, ok := byID[inst.Inside]; !ok {
				r.add(lint.CodePlanClosure, "", inst.ID, "instance %q names absent container %q", inst.ID, inst.Inside)
			}
		}
		for _, d := range inst.Deps {
			if _, ok := byID[d.Target]; !ok {
				r.add(lint.CodePlanClosure, "", inst.ID, "instance %q has a %s link to absent instance %q", inst.ID, d.Class, d.Target)
			}
		}
		if m := followInside(inst, byID); m != "" && m != inst.Machine {
			r.add(lint.CodePlanClosure, "", inst.ID, "instance %q records machine %q but its container chain reaches %q", inst.ID, inst.Machine, m)
		}
	}
}

// followInside walks container links to the machine; "" when the chain
// is broken or cyclic (reported separately by the closure checks).
func followInside(inst *spec.Instance, byID map[string]*spec.Instance) string {
	seen := map[string]bool{}
	cur := inst
	for {
		if cur.Inside == "" {
			return cur.ID
		}
		if seen[cur.ID] {
			return ""
		}
		seen[cur.ID] = true
		next, ok := byID[cur.Inside]
		if !ok {
			return ""
		}
		cur = next
	}
}

// checkSelection regenerates the hypergraph from the partial
// specification and confirms the deployed set satisfies it: every spec
// instance deployed, every deployed instance a graph node of the same
// type, and every hyperedge of a deployed source resolved by exactly
// one deployed target that the instance's links actually name.
func checkSelection(reg *resource.Registry, partial *spec.Partial, full *spec.Full, byID map[string]*spec.Instance, r *planReport) {
	g, err := hypergraph.Generate(reg, partial)
	if err != nil {
		r.add(lint.CodePlanConstraint, "", "", "cannot regenerate the dependency hypergraph: %v", err)
		return
	}
	for _, n := range g.Nodes() {
		if n.FromSpec {
			if _, ok := byID[n.ID]; !ok {
				r.add(lint.CodePlanConstraint, "", n.ID, "specified instance %q is missing from the full specification", n.ID)
			}
		}
	}
	for _, inst := range full.Instances {
		n, ok := g.Node(inst.ID)
		if !ok {
			r.add(lint.CodePlanConstraint, "", inst.ID, "deployed instance %q is not a node of the dependency hypergraph", inst.ID)
			continue
		}
		if n.Key != inst.Key {
			r.add(lint.CodePlanConstraint, "", inst.ID, "deployed instance %q has type %q; the hypergraph assigns %q", inst.ID, inst.Key, n.Key)
		}
	}
	for _, e := range g.Edges {
		src, deployed := byID[e.Source]
		if !deployed {
			continue
		}
		var chosen []string
		for _, tgt := range e.Targets {
			if _, ok := byID[tgt]; ok {
				chosen = append(chosen, tgt)
			}
		}
		if len(chosen) != 1 {
			r.add(lint.CodePlanConstraint, "", e.Source,
				"the %s dependency of %q must be satisfied by exactly one deployed target, found %d of %v",
				e.Class, e.Source, len(chosen), e.Targets)
			continue
		}
		if !hasLink(src, e, chosen[0]) {
			r.add(lint.CodePlanConstraint, "", e.Source,
				"instance %q does not link its %s dependency to the selected target %q", e.Source, e.Class, chosen[0])
		}
	}
}

// hasLink reports whether the instance records a dependency link
// matching the hyperedge's class and chosen target. Inside edges are
// satisfied by either the Inside field or an explicit link.
func hasLink(inst *spec.Instance, e hypergraph.Hyperedge, target string) bool {
	if e.Class == resource.DepInside && inst.Inside == target {
		return true
	}
	for _, d := range inst.Deps {
		if d.Class == e.Class && d.Target == target {
			return true
		}
	}
	return false
}

// checkPorts confirms every port value satisfies its defining equation
// — an order-free restatement of the propagation semantics:
//
//   - linked inputs equal the mapped upstream outputs (forward and
//     reverse port maps);
//   - config ports equal their partial-specification override when one
//     exists, and their default expression otherwise;
//   - output ports equal their defining expression under the instance's
//     final scope;
//   - no undeclared ports appear.
//
// With a nil partial, config values that diverge from their default
// cannot be told apart from overrides, so only missing values are
// reported for config ports.
func checkPorts(reg *resource.Registry, partial *spec.Partial, full *spec.Full, byID map[string]*spec.Instance, r *planReport) {
	for _, inst := range full.Instances {
		t, ok := reg.Lookup(inst.Key)
		if !ok {
			continue // closure check already reported it
		}
		checkLinkedPorts(inst, byID, r)
		checkDeclaredPorts(t, partial, inst, r)
		checkNoUndeclared(t, inst, r)
	}
}

// checkLinkedPorts re-derives the dependency port flows.
func checkLinkedPorts(inst *spec.Instance, byID map[string]*spec.Instance, r *planReport) {
	for _, l := range inst.Deps {
		target := byID[l.Target]
		if target == nil {
			continue // closure check already reported it
		}
		for _, outPort := range sortedKeys(l.PortMap) {
			inPort := l.PortMap[outPort]
			up, ok := target.Output[outPort]
			if !ok {
				r.add(lint.CodePlanPort, "", inst.ID, "instance %q maps output %q of %q, which has no such value", inst.ID, outPort, l.Target)
				continue
			}
			got, ok := inst.Input[inPort]
			if !ok {
				r.add(lint.CodePlanPort, "", inst.ID, "instance %q input %q was never filled from %q.%s", inst.ID, inPort, l.Target, outPort)
				continue
			}
			if !got.Equal(up) {
				r.add(lint.CodePlanPort, "", inst.ID, "instance %q input %q = %s differs from upstream %q.%s = %s",
					inst.ID, inPort, got, l.Target, outPort, up)
			}
		}
		for _, outPort := range sortedKeys(l.ReversePortMap) {
			inPort := l.ReversePortMap[outPort]
			down, ok := inst.Output[outPort]
			if !ok {
				r.add(lint.CodePlanPort, "", inst.ID, "instance %q reverse-maps output %q, which has no value", inst.ID, outPort)
				continue
			}
			got, ok := target.Input[inPort]
			if !ok {
				r.add(lint.CodePlanPort, "", inst.ID, "instance %q input %q was never filled by the reverse map from %q", l.Target, inPort, inst.ID)
				continue
			}
			if !got.Equal(down) {
				r.add(lint.CodePlanPort, "", inst.ID, "instance %q input %q = %s differs from reverse-mapped %q.%s = %s",
					l.Target, inPort, got, inst.ID, outPort, down)
			}
		}
	}
}

// checkDeclaredPorts re-evaluates config and output definitions.
func checkDeclaredPorts(t *resource.Type, partial *spec.Partial, inst *spec.Instance, r *planReport) {
	var overrides map[string]resource.Value
	if partial != nil {
		if pi, ok := partial.Find(inst.ID); ok {
			overrides = pi.Config
		}
	}
	scope := resource.MapScope{Inputs: inst.Input, Configs: inst.Config}
	for _, p := range t.Config {
		got, present := inst.Config[p.Name]
		if !present {
			r.add(lint.CodePlanPort, p.Origin, inst.ID, "instance %q has no value for config port %q", inst.ID, p.Name)
			continue
		}
		if ov, overridden := overrides[p.Name]; overridden {
			if !got.Equal(ov) {
				r.add(lint.CodePlanPort, p.Origin, inst.ID, "instance %q config %q = %s ignores the specification override %s",
					inst.ID, p.Name, got, ov)
			}
			continue
		}
		if partial == nil || p.Def == nil {
			// Without the partial an off-default value may be a legitimate
			// override; without a default there is nothing to compare.
			continue
		}
		want, err := evalPort(p, scope)
		if err != nil {
			r.add(lint.CodePlanPort, p.Origin, inst.ID, "instance %q config %q: %v", inst.ID, p.Name, err)
			continue
		}
		if !got.Equal(want) {
			r.add(lint.CodePlanPort, p.Origin, inst.ID, "instance %q config %q = %s differs from its re-derived default %s",
				inst.ID, p.Name, got, want)
		}
	}
	for _, p := range t.Output {
		got, present := inst.Output[p.Name]
		if !present {
			r.add(lint.CodePlanPort, p.Origin, inst.ID, "instance %q has no value for output port %q", inst.ID, p.Name)
			continue
		}
		want, err := evalPort(p, scope)
		if err != nil {
			r.add(lint.CodePlanPort, p.Origin, inst.ID, "instance %q output %q: %v", inst.ID, p.Name, err)
			continue
		}
		if !got.Equal(want) {
			r.add(lint.CodePlanPort, p.Origin, inst.ID, "instance %q output %q = %s differs from its re-derived value %s",
				inst.ID, p.Name, got, want)
		}
	}
}

// evalPort re-evaluates a port definition: static config ports see an
// empty scope and static outputs only the config section, exactly as at
// instantiation time; dynamic ports see the full final scope.
func evalPort(p resource.Port, scope resource.MapScope) (resource.Value, error) {
	if p.Def == nil {
		return resource.Value{}, fmt.Errorf("port %q has no defining expression", p.Name)
	}
	if p.Static {
		return p.Def.Eval(resource.MapScope{Configs: scope.Configs})
	}
	return p.Def.Eval(scope)
}

// checkNoUndeclared flags values for ports the type does not declare.
func checkNoUndeclared(t *resource.Type, inst *spec.Instance, r *planReport) {
	report := func(sec resource.Section, name, label string) {
		if _, ok := t.FindPort(sec, name); !ok {
			r.add(lint.CodePlanPort, t.Origin, inst.ID, "instance %q carries a value for undeclared %s port %q", inst.ID, label, name)
		}
	}
	for _, name := range sortedValueKeys(inst.Config) {
		report(resource.SecConfig, name, "config")
	}
	for _, name := range sortedValueKeys(inst.Input) {
		report(resource.SecInput, name, "input")
	}
	for _, name := range sortedValueKeys(inst.Output) {
		report(resource.SecOutput, name, "output")
	}
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m { //engage:maporder — collected then sorted below
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedValueKeys(m map[string]resource.Value) []string {
	out := make([]string, 0, len(m))
	for k := range m { //engage:maporder — collected then sorted below
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
