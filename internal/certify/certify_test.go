package certify

import (
	"sort"
	"strings"
	"testing"

	"engage/internal/sat"
)

// php returns the pigeonhole formula PHP(holes+1, holes) — UNSAT and
// nontrivial for the solver.
func php(holes int) *sat.Formula {
	pigeons := holes + 1
	f := sat.NewFormula(pigeons * holes)
	v := func(p, h int) sat.Lit { return sat.Lit(p*holes + h + 1) }
	for p := 0; p < pigeons; p++ {
		c := make(sat.Clause, holes)
		for h := 0; h < holes; h++ {
			c[h] = v(p, h)
		}
		f.Clauses = append(f.Clauses, c)
	}
	for h := 0; h < holes; h++ {
		for p := 0; p < pigeons; p++ {
			for q := p + 1; q < pigeons; q++ {
				f.Add(v(p, h).Neg(), v(q, h).Neg())
			}
		}
	}
	return f
}

func TestCheckModelAcceptsSolverModel(t *testing.T) {
	f := sat.NewFormula(5)
	f.Add(1, 2)
	f.Add(-1, 3)
	f.Add(-3, -2, 4)
	f.AddExactlyOne(4, 5)
	res := sat.NewCDCL().Solve(f)
	if res.Status != sat.Sat {
		t.Fatalf("status = %v, want Sat", res.Status)
	}
	if err := CheckModel(f, res.Model); err != nil {
		t.Fatalf("CheckModel rejected a solver model: %v", err)
	}
}

func TestCheckModelRejectsFalsifyingAssignment(t *testing.T) {
	f := sat.NewFormula(2)
	f.Add(1, 2)
	bad := []bool{false, false, false} // falsifies clause 0
	if err := CheckModel(f, bad); err == nil {
		t.Fatalf("CheckModel accepted an assignment that falsifies clause 0")
	}
}

func TestCheckUnsatAcceptsSolverProof(t *testing.T) {
	f := php(4)
	res := (&sat.CDCL{LogProof: true}).Solve(f)
	if res.Status != sat.Unsat {
		t.Fatalf("status = %v, want Unsat", res.Status)
	}
	st, err := CheckUnsat(f, res.Proof)
	if err != nil {
		t.Fatalf("CheckUnsat rejected a genuine proof: %v", err)
	}
	if st.Lemmas == 0 {
		t.Errorf("proof checked with zero lemmas — suspicious for PHP")
	}
}

func TestCheckUnsatRejectsInjectedLemma(t *testing.T) {
	f := php(4)
	res := (&sat.CDCL{LogProof: true}).Solve(f)
	if res.Status != sat.Unsat {
		t.Fatalf("status = %v, want Unsat", res.Status)
	}
	// Re-encode the proof with a bogus lemma up front: a unit clause
	// over a fresh variable is never RUP (nothing constrains it).
	mut := sat.NewProof(0)
	fresh := sat.Lit(f.NumVars + 1)
	writeStep(t, mut, sat.ProofAdd, []sat.Lit{fresh})
	copySteps(t, mut, res.Proof)
	if _, err := CheckUnsat(f, mut); err == nil {
		t.Fatalf("CheckUnsat accepted a proof with an injected non-RUP lemma")
	} else if !strings.Contains(err.Error(), "not RUP") {
		t.Errorf("unexpected rejection reason: %v", err)
	}
}

func TestCheckUnsatRejectsEmptyProof(t *testing.T) {
	f := php(4)
	// PHP(5,4) is not refutable by unit propagation alone, so an empty
	// proof must not certify it.
	if _, err := CheckUnsat(f, sat.NewProof(0)); err == nil {
		t.Fatalf("CheckUnsat accepted an empty proof for a formula UP cannot refute")
	}
}

func TestCheckUnsatRejectsTruncatedProof(t *testing.T) {
	f := php(4)
	res := (&sat.CDCL{LogProof: true, ProofCap: 3}).Solve(f)
	if res.Status != sat.Unsat || !res.Proof.Truncated() {
		t.Fatalf("want truncated Unsat proof")
	}
	if _, err := CheckUnsat(f, res.Proof); err == nil {
		t.Fatalf("CheckUnsat accepted a truncated proof")
	}
}

func TestCheckCoreCertifiesAssumptionUnsat(t *testing.T) {
	f := sat.NewFormula(5)
	f.Add(-1, 3)
	f.Add(-2, -3)
	inc := (&sat.CDCL{LogProof: true}).StartIncremental(f).(*sat.Incremental)
	res := inc.SolveAssuming([]sat.Lit{1, 2, 4})
	if res.Status != sat.Unsat || res.Core == nil {
		t.Fatalf("want assumption Unsat with core, got %v / %v", res.Status, res.Core)
	}
	if _, err := CheckCore(f, res.Proof, res.Core); err != nil {
		t.Fatalf("CheckCore rejected a genuine core: %v", err)
	}
	// A disjoint assumption set must NOT be accepted as a core.
	if _, err := CheckCore(f, res.Proof, []sat.Lit{4}); err == nil {
		t.Fatalf("CheckCore accepted a non-conflicting assumption set")
	}
}

func TestCheckMUSEndToEnd(t *testing.T) {
	// Selector-guarded constraints in the lint style: selector si
	// activates constraint i. s1→x, s2→¬x conflict; s3→y is satisfiable
	// padding.
	f := sat.NewFormula(5)
	x, y := sat.Lit(4), sat.Lit(5)
	s1, s2, s3 := sat.Lit(1), sat.Lit(2), sat.Lit(3)
	f.Add(s1.Neg(), x)
	f.Add(s2.Neg(), x.Neg())
	f.Add(s3.Neg(), y)
	inc := (&sat.CDCL{LogProof: true}).StartIncremental(f).(*sat.Incremental)
	res := inc.SolveAssuming([]sat.Lit{s1, s2, s3})
	if res.Status != sat.Unsat || res.Core == nil {
		t.Fatalf("want assumption Unsat, got %v", res.Status)
	}
	mus, wit, _ := sat.ShrinkCoreWitnessed(inc, res.Core)
	if len(mus) != 2 {
		t.Fatalf("MUS = %v, want the two conflicting selectors", mus)
	}
	sort.Slice(mus, func(i, j int) bool { return mus[i].Var() < mus[j].Var() })
	witnesses := make([][]bool, len(mus))
	for i, m := range mus {
		witnesses[i] = wit[m]
		if witnesses[i] == nil {
			t.Fatalf("no witness captured for MUS member %v", m)
		}
	}
	spot, _, err := CheckMUS(f, inc.Proof(), mus, witnesses)
	if err != nil {
		t.Fatalf("CheckMUS rejected a genuine MUS story: %v", err)
	}
	if spot != len(mus) {
		t.Errorf("spot-checked %d of %d members", spot, len(mus))
	}
	// A mutated witness (flip the satisfying literal) must be refuted.
	bad := append([]bool(nil), witnesses[0]...)
	bad[x.Var()] = !bad[x.Var()]
	if _, _, err := CheckMUS(f, inc.Proof(), mus, [][]bool{bad, witnesses[1]}); err == nil {
		t.Fatalf("CheckMUS accepted a flipped witness model")
	}
}

func TestReplayAppliesDeletes(t *testing.T) {
	// Force enough conflicts that reduceDB fires and deletions appear,
	// then confirm the proof still replays. 10 holes keeps it fast but
	// produces thousands of conflicts.
	f := php(6)
	res := (&sat.CDCL{LogProof: true}).Solve(f)
	if res.Status != sat.Unsat {
		t.Fatalf("status = %v, want Unsat", res.Status)
	}
	deletes := 0
	for i := 0; i < res.Proof.Len(); i++ {
		if op, _ := res.Proof.Step(i); op == sat.ProofDelete {
			deletes++
		}
	}
	st, err := CheckUnsat(f, res.Proof)
	if err != nil {
		t.Fatalf("CheckUnsat: %v", err)
	}
	if deletes > 0 && st.Deletes+st.SkippedDel+st.MissingDel != deletes {
		t.Errorf("delete accounting: %d logged, %d applied + %d skipped + %d missing",
			deletes, st.Deletes, st.SkippedDel, st.MissingDel)
	}
}

func writeStep(t *testing.T, p *sat.Proof, op sat.ProofOp, lits []sat.Lit) {
	t.Helper()
	if !p.Append(op, lits) {
		t.Fatalf("proof append rejected")
	}
}

func copySteps(t *testing.T, dst, src *sat.Proof) {
	t.Helper()
	for i := 0; i < src.Len(); i++ {
		op, lits := src.Step(i)
		if !dst.Append(op, lits) {
			t.Fatalf("proof copy rejected at step %d", i)
		}
	}
}
