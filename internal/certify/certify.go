package certify

// This file is the claim-checking layer on top of the dumb propagator:
// replaying a solver proof, and the four verdict checks the rest of
// Engage calls — SAT models, UNSAT proofs, assumption cores, and MUS
// stories. The trust boundary is deliberate: everything here accepts
// only what unit propagation or direct clause evaluation can confirm.

import (
	"fmt"

	"engage/internal/sat"
)

// Checker is a replayed proof: the original formula plus every
// accepted lemma and input, with deletions applied. It answers further
// queries (core conflicts) against that database.
type Checker struct {
	c *checker
}

// Replay verifies a proof against its base formula: every "a" lemma
// must be RUP with respect to the formula, the trusted "i" inputs, and
// the accepted lemmas preceding it. The first refuted lemma fails the
// replay. Truncated proofs are rejected outright — a capped log cannot
// certify anything.
func Replay(f *sat.Formula, p *sat.Proof) (*Checker, error) {
	c := newChecker(f.NumVars)
	for _, cl := range f.Clauses {
		c.addClause(cl)
	}
	if p != nil {
		if p.Truncated() {
			return nil, fmt.Errorf("certify: proof truncated at %d steps; cannot certify", p.Len())
		}
		for i, n := 0, p.Len(); i < n; i++ {
			op, lits := p.Step(i)
			switch op {
			case sat.ProofAdd:
				if !c.rup(lits) {
					return nil, fmt.Errorf("certify: proof step %d: lemma %v is not RUP", i, lits)
				}
				c.addClause(lits)
				c.stats.Lemmas++
			case sat.ProofInput:
				c.addClause(lits)
				c.stats.Inputs++
			case sat.ProofDelete:
				c.deleteClause(lits)
			default:
				return nil, fmt.Errorf("certify: proof step %d: unknown op %q", i, op)
			}
		}
	}
	return &Checker{c: c}, nil
}

// Stats reports the replay effort so far.
func (ch *Checker) Stats() CheckStats { return ch.c.stats }

// ConflictUnder reports whether asserting the given literals on the
// replayed database propagates to a conflict — the check behind UNSAT
// and core claims. An empty assumption set asks whether the database
// itself is UP-refutable.
func (ch *Checker) ConflictUnder(assumps []sat.Lit) bool {
	neg := make([]sat.Lit, len(assumps))
	for i, l := range assumps {
		neg[i] = l.Neg()
	}
	// rup asserts the negation of each clause literal, so the clause
	// ¬a1 ∨ … ∨ ¬ak asserts exactly a1…ak.
	return ch.c.rup(neg)
}

// CheckUnsat verifies an unconditional UNSAT claim end-to-end: the
// proof must replay cleanly and its conclusion must leave the database
// UP-refutable (the solver logs the empty clause at every root
// conflict, so a complete proof always ends refutable).
func CheckUnsat(f *sat.Formula, p *sat.Proof) (CheckStats, error) {
	if p == nil {
		return CheckStats{}, fmt.Errorf("certify: UNSAT claim carries no proof")
	}
	ch, err := Replay(f, p)
	if err != nil {
		return CheckStats{}, err
	}
	if !ch.ConflictUnder(nil) {
		return ch.Stats(), fmt.Errorf("certify: proof replayed but does not derive a contradiction")
	}
	return ch.Stats(), nil
}

// CheckCore verifies an assumption-conditional UNSAT claim: after
// replaying the proof, asserting the core literals must propagate to a
// conflict. The solver logs a core claim lemma (¬core) at every
// assumption failure, which the replay has already RUP-checked, so a
// truthful core conflicts immediately.
func CheckCore(f *sat.Formula, p *sat.Proof, core []sat.Lit) (CheckStats, error) {
	ch, err := Replay(f, p)
	if err != nil {
		return CheckStats{}, err
	}
	if !ch.ConflictUnder(core) {
		return ch.Stats(), fmt.Errorf("certify: core %v does not conflict with the clause set under the replayed proof", core)
	}
	return ch.Stats(), nil
}

// CheckModel verifies a SAT claim by direct evaluation: every clause of
// f must contain a literal the model satisfies. No propagation, no
// solver state — just the definition of satisfiability.
func CheckModel(f *sat.Formula, model []bool) error {
	return CheckModelAssuming(f, model, nil)
}

// CheckModelAssuming additionally requires every assumption literal to
// hold under the model.
func CheckModelAssuming(f *sat.Formula, model []bool, assumps []sat.Lit) error {
	if model == nil {
		return fmt.Errorf("certify: SAT claim carries no model")
	}
	litTrue := func(l sat.Lit) bool {
		v := l.Var()
		return v < len(model) && model[v] == (l > 0)
	}
	for i, c := range f.Clauses {
		satisfied := false
		for _, l := range c {
			if litTrue(l) {
				satisfied = true
				break
			}
		}
		if !satisfied {
			return fmt.Errorf("certify: model falsifies clause %d: %v", i, c)
		}
	}
	for _, a := range assumps {
		if !litTrue(a) {
			return fmt.Errorf("certify: model violates assumption %v", a)
		}
	}
	return nil
}

// CheckMUS certifies a shrunk-core conflict story end-to-end:
//
//  1. the MUS itself is unsatisfiable with the clause set, by the
//     solver's own proof (replayed and RUP-checked independently), and
//  2. the MUS is minimal: for each member, the recorded witness model
//     satisfies the formula together with the other members — so
//     removing that member restores satisfiability.
//
// witnesses[i] is the model backing the removal of mus[i]; a nil entry
// leaves that member's minimality unverified (counted in the returned
// number of spot-checked members), which happens when the shrink was
// cut short. Witness models are checked against f plus the proof's
// trusted input clauses — valid because Engage's shrink loop adds no
// clauses mid-extraction.
func CheckMUS(f *sat.Formula, p *sat.Proof, mus []sat.Lit, witnesses [][]bool) (spotChecked int, stats CheckStats, err error) {
	stats, err = CheckCore(f, p, mus)
	if err != nil {
		return 0, stats, err
	}
	inputs := proofInputs(p)
	rest := make([]sat.Lit, 0, len(mus))
	for i, m := range mus {
		if i >= len(witnesses) || witnesses[i] == nil {
			continue
		}
		rest = rest[:0]
		for j, other := range mus {
			if j != i {
				rest = append(rest, other)
			}
		}
		work := f
		if len(inputs) > 0 {
			work = &sat.Formula{NumVars: f.NumVars, Clauses: append(append([]sat.Clause(nil), f.Clauses...), inputs...)}
		}
		if werr := CheckModelAssuming(work, witnesses[i], rest); werr != nil {
			return spotChecked, stats, fmt.Errorf("certify: minimality witness for %v rejected: %w", m, werr)
		}
		spotChecked++
	}
	return spotChecked, stats, nil
}

// proofInputs collects the trusted "i" clauses of a proof.
func proofInputs(p *sat.Proof) []sat.Clause {
	if p == nil {
		return nil
	}
	var out []sat.Clause
	for i, n := 0, p.Len(); i < n; i++ {
		op, lits := p.Step(i)
		if op == sat.ProofInput {
			out = append(out, append(sat.Clause(nil), lits...))
		}
	}
	return out
}
