package certify_test

import (
	"testing"

	"engage/internal/certify"
	"engage/internal/config"
	"engage/internal/lint"
	"engage/internal/resource"
	"engage/internal/spec"
	"engage/internal/stack"
	"engage/internal/testlib"
)

func configured(t *testing.T) (*resource.Registry, *spec.Partial, *spec.Full) {
	t.Helper()
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}
	partial, err := testlib.Fig2Partial()
	if err != nil {
		t.Fatal(err)
	}
	full, err := config.New(reg).Configure(partial)
	if err != nil {
		t.Fatal(err)
	}
	return reg, partial, full
}

func codesOf(diags []lint.Diagnostic) map[string]int {
	out := map[string]int{}
	for _, d := range diags {
		out[d.Code]++
	}
	return out
}

func TestCheckPlanAcceptsEngineOutput(t *testing.T) {
	reg, partial, full := configured(t)
	if diags := certify.CheckPlan(reg, partial, full); len(diags) != 0 {
		t.Fatalf("engine output refuted: %v", diags)
	}
	// A bare record (no partial) must still verify its self-contained
	// invariants cleanly.
	if diags := certify.CheckPlan(reg, nil, full); len(diags) != 0 {
		t.Fatalf("engine output refuted without partial: %v", diags)
	}
}

func TestCheckPlanFlagsCorruptedPort(t *testing.T) {
	reg, partial, full := configured(t)
	om := full.MustFind("openmrs")
	om.Output["url"] = resource.Str("http://evil.example")
	diags := certify.CheckPlan(reg, partial, full)
	if codesOf(diags)[lint.CodePlanPort] == 0 {
		t.Fatalf("corrupted output port not flagged: %v", diags)
	}
}

func TestCheckPlanFlagsDroppedInstance(t *testing.T) {
	reg, partial, full := configured(t)
	// Drop the tomcat instance: openmrs's inside link dangles and the
	// hyperedge loses its only deployed target.
	kept := full.Instances[:0]
	for _, inst := range full.Instances {
		if inst.Key.Name != "Tomcat" {
			kept = append(kept, inst)
		}
	}
	full.Instances = kept
	got := codesOf(certify.CheckPlan(reg, partial, full))
	if got[lint.CodePlanClosure] == 0 {
		t.Errorf("dangling links not flagged as plan-closure: %v", got)
	}
	if got[lint.CodePlanConstraint] == 0 {
		t.Errorf("unsatisfied hyperedge not flagged as plan-constraint: %v", got)
	}
}

func TestCheckPlanFlagsWrongMachine(t *testing.T) {
	reg, partial, full := configured(t)
	full.MustFind("openmrs").Machine = "nowhere"
	got := codesOf(certify.CheckPlan(reg, partial, full))
	if got[lint.CodePlanClosure] == 0 {
		t.Errorf("machine mismatch not flagged: %v", got)
	}
}

func TestCheckPlanFlagsIgnoredOverride(t *testing.T) {
	reg, partial, full := configured(t)
	// The partial pins a config value; forging a different value in the
	// full specification must be refuted against the override.
	var pinned *spec.PartialInstance
	for _, pi := range partial.Instances {
		if len(pi.Config) > 0 {
			pinned = pi
			break
		}
	}
	if pinned == nil {
		t.Skip("fixture has no config override")
	}
	inst := full.MustFind(pinned.ID)
	for name := range pinned.Config {
		inst.Config[name] = resource.Str("forged")
		break
	}
	got := codesOf(certify.CheckPlan(reg, partial, full))
	if got[lint.CodePlanPort] == 0 {
		t.Errorf("ignored override not flagged: %v", got)
	}
}

func recordFor(name string, full *spec.Full) *stack.Stack {
	st := &stack.Stack{Name: name, Version: 1, Desired: full, Bindings: map[string]stack.Binding{}}
	for _, inst := range full.Instances {
		st.Bindings[inst.ID] = stack.Binding{
			Instance:     inst.ID,
			Machine:      inst.Machine,
			ManifestPath: stack.ManifestPath(name, inst.ID),
			Manifest:     stack.ManifestFor(inst),
		}
	}
	return st
}

func TestCheckStackAcceptsConsistentRecord(t *testing.T) {
	_, _, full := configured(t)
	st := recordFor("web", full)
	if diags := certify.CheckStack(st, nil); len(diags) != 0 {
		t.Fatalf("consistent record refuted: %v", diags)
	}
}

func TestCheckStackFlagsViolations(t *testing.T) {
	_, _, full := configured(t)
	st := recordFor("web", full)

	b := st.Bindings["openmrs"]
	b.Machine = "other"
	b.ManifestPath = "/tmp/oops.conf"
	b.Manifest = "stale"
	st.Bindings["openmrs"] = b
	st.Bindings["ghost"] = stack.Binding{Instance: "ghost", Machine: "server"}
	delete(st.Bindings, "tomcat")

	got := codesOf(certify.CheckStack(st, nil))
	if got[lint.CodePlanBinding] < 5 {
		t.Fatalf("want at least 5 plan-binding findings (machine, path, manifest, orphan, missing), got %v", got)
	}
}

func TestCheckStackFlagsDeadDaemon(t *testing.T) {
	_, _, full := configured(t)
	st := recordFor("web", full)
	b := st.Bindings["openmrs"]
	b.PID = 4242
	st.Bindings["openmrs"] = b

	if diags := certify.CheckStack(st, map[string]bool{"openmrs": true}); len(diags) != 0 {
		t.Fatalf("live daemon refuted: %v", diags)
	}
	diags := certify.CheckStack(st, map[string]bool{"openmrs": false})
	if codesOf(diags)[lint.CodePlanBinding] == 0 {
		t.Fatalf("dead daemon not flagged: %v", diags)
	}
	// Unobserved instances are not judged.
	if diags := certify.CheckStack(st, map[string]bool{}); len(diags) != 0 {
		t.Fatalf("unobserved daemon refuted: %v", diags)
	}
}
